// Scenario: an irregular switch-based cluster (NOW), the paper's
// evaluation environment. Walks the full deployment pipeline explicitly:
//   1. generate the cluster wiring (16 eight-port switches, 64 hosts),
//   2. derive up*/down* routes and check deadlock-freedom,
//   3. build the chain-concatenated ordering (CCO),
//   4. pick the optimal fan-out k for the multicast at hand (Theorem 3),
//   5. construct the contention-free k-binomial tree on the ordering,
//   6. run the multicast on the simulated system and report per-
//      destination completion times and contention.
//
// Run: ./build/examples/irregular_cluster [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"

int main(int argc, char** argv) {
  using namespace nimcast;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1997;

  // 1. Cluster wiring.
  sim::Rng rng{seed};
  const topo::Topology cluster =
      topo::make_irregular(topo::IrregularConfig{}, rng);
  std::printf("cluster: %s, %d inter-switch links\n",
              cluster.name().c_str(), cluster.switches().num_edges());

  // 2. Routing.
  const routing::UpDownRouter router{cluster.switches()};
  const routing::RouteTable routes{cluster, router};
  std::printf("routing: %s rooted at switch %d, deadlock-free: %s\n",
              router.name(), router.root(),
              routing::deadlock_free(cluster.switches(), router) ? "yes"
                                                                 : "NO!");

  // 3. Base ordering.
  const core::Chain cco = core::cco_ordering(cluster, router);
  std::printf("CCO chain head: ");
  for (std::size_t i = 0; i < 8; ++i) std::printf("%d ", cco[i]);
  std::printf("...\n\n");

  // 4. The multicast: host `cco[5]` sends a 1 KiB message (16 packets of
  //    64 B) to 23 destinations.
  const std::int32_t m = 16;
  const topo::HostId source = cco[5];
  std::vector<topo::HostId> dests;
  for (topo::HostId h = 0; h < cluster.num_hosts() && dests.size() < 23;
       h += 3) {
    if (h != source) dests.push_back(h);
  }
  const auto n = static_cast<std::int32_t>(dests.size()) + 1;
  const core::OptimalChoice choice = core::optimal_k(n, m);
  std::printf("multicast: %d packets to %d destinations -> optimal k = %d "
              "(t1 = %d, %lld steps predicted)\n",
              m, n - 1, choice.k, choice.t1,
              static_cast<long long>(choice.total_steps));

  // 5. Contention-free tree on the ordering.
  const core::Chain members = core::arrange_participants(cco, source, dests);
  const core::RankTree shape = core::make_kbinomial(n, choice.k);
  const core::HostTree tree = core::HostTree::bind(shape, members);
  std::printf("tree (over chain ranks): %s\n\n", shape.to_string().c_str());

  // 6. Simulate.
  mcast::MulticastEngine engine{
      cluster, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{},
                                     net::NetworkConfig{},
                                     mcast::NiStyle::kSmartFpfs}};
  mcast::MulticastResult result = engine.run(tree, m);

  std::sort(result.completions.begin(), result.completions.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::printf("first destination done: host %d at %s\n",
              result.completions.front().first,
              result.completions.front().second.to_string().c_str());
  std::printf("last  destination done: host %d at %s\n",
              result.completions.back().first,
              result.completions.back().second.to_string().c_str());
  std::printf("multicast latency: %s  (channel block time %s, peak NI "
              "buffer %.0f packets)\n",
              result.latency.to_string().c_str(),
              result.total_channel_block_time.to_string().c_str(),
              result.peak_buffer());

  // Reference point: the same multicast over the plain binomial tree.
  const core::HostTree binomial_tree =
      core::HostTree::bind(core::make_binomial(n), members);
  const auto binomial = engine.run(binomial_tree, m);
  std::printf("binomial tree would take: %s  (%.2fx slower)\n",
              binomial.latency.to_string().c_str(),
              binomial.latency.as_us() / result.latency.as_us());
  return 0;
}
