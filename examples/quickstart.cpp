// Quickstart: multicast one 8-packet message to 15 destinations on a
// 64-host irregular switch-based network, comparing the conventional
// binomial tree against the paper's optimal k-binomial tree under FPFS
// smart-NI forwarding.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>

#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "harness/testbed.hpp"
#include "mcast/step_model.hpp"

int main() {
  using namespace nimcast;

  // 1. The analytic side needs no network at all: Theorem 3 picks the
  //    fan-out bound k that minimizes t_1 + (m-1)k pipelined steps.
  const std::int32_t n = 16;  // multicast set size (source + 15 dests)
  const std::int32_t m = 8;   // packets per message
  const core::OptimalChoice choice = core::optimal_k(n, m);
  std::printf("Theorem 3: n=%d m=%d  ->  k*=%d, t1=%d, total=%lld steps\n",
              n, m, choice.k, choice.t1,
              static_cast<long long>(choice.total_steps));

  const core::RankTree kbin = core::make_kbinomial(n, choice.k);
  const core::RankTree bin = core::make_binomial(n);
  std::printf("binomial:  %d steps for m=%d packets (step model)\n",
              mcast::step_schedule(bin, m, mcast::Discipline::kFpfs)
                  .total_steps,
              m);
  std::printf("k-binomial:%d steps for m=%d packets (step model)\n",
              mcast::step_schedule(kbin, m, mcast::Discipline::kFpfs)
                  .total_steps,
              m);

  // 2. Full-system simulation: random irregular 64-host network,
  //    up*/down* routing, CCO ordering, FPFS smart NIs (paper Sec. 5.2
  //    parameters are the defaults). One topology and a handful of
  //    destination draws keep the quickstart fast.
  harness::IrregularTestbed::Config cfg;
  cfg.num_topologies = 2;
  cfg.sets_per_topology = 10;
  harness::IrregularTestbed testbed{cfg};

  const auto binomial = testbed.measure(n, m, harness::TreeSpec::binomial(),
                                        mcast::NiStyle::kSmartFpfs);
  const auto optimal = testbed.measure(n, m, harness::TreeSpec::optimal(),
                                       mcast::NiStyle::kSmartFpfs);
  std::printf("\nsimulated multicast latency (mean over %zu runs):\n",
              binomial.latency_us.count());
  std::printf("  binomial tree     : %7.1f us\n", binomial.latency_us.mean());
  std::printf("  opt k-binomial    : %7.1f us   (%.2fx faster)\n",
              optimal.latency_us.mean(),
              binomial.latency_us.mean() / optimal.latency_us.mean());
  return 0;
}
