// Scenario: broadcast on an MPP-style regular network — an 8x8 mesh of
// routers with dimension-ordered (e-cube) wormhole routing, the setting
// of the paper's Section 4.3.2 remark that dimension-ordered chains give
// contention-free k-binomial trees on k-ary n-cubes.
//
// A broadcast (all 64 nodes) of messages from 64 B to 4 KiB is run over
// the linear, binomial, and optimal k-binomial trees, showing where each
// wins and how the optimal k moves with message length.
//
// Run: ./build/examples/mpp_mesh

#include <cstdio>

#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/dimension_ordered.hpp"
#include "topology/kary_ncube.hpp"

int main() {
  using namespace nimcast;

  const topo::KAryNCubeConfig cfg{8, 2, false};
  const topo::Topology mesh = topo::make_kary_ncube(cfg);
  const routing::DimensionOrderedRouter router{mesh.switches(), cfg};
  const routing::RouteTable routes{mesh, router};
  std::printf("network: %s, routing: %s, deadlock-free: %s\n\n",
              mesh.name().c_str(), router.name(),
              routing::deadlock_free(mesh.switches(), router) ? "yes"
                                                              : "NO!");

  // Broadcast from node 0 over the dimension-ordered chain.
  const core::Chain chain = core::dimension_chain(mesh);
  const std::int32_t n = mesh.num_hosts();
  std::vector<topo::HostId> dests;
  for (topo::HostId h = 1; h < n; ++h) dests.push_back(h);
  const core::Chain members = core::arrange_participants(chain, 0, dests);

  mcast::MulticastEngine engine{
      mesh, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{},
                                     net::NetworkConfig{},
                                     mcast::NiStyle::kSmartFpfs}};

  std::printf("broadcast latency from node 0 (64 B packets):\n\n");
  std::printf("%-10s %-4s %-6s %-12s %-12s %-12s\n", "message", "m", "k*",
              "linear", "binomial", "opt k-bin");
  for (const std::int32_t m : {1, 2, 4, 8, 16, 32, 64}) {
    const core::OptimalChoice choice = core::optimal_k(n, m);
    const auto run = [&](const core::RankTree& shape) {
      return engine.run(core::HostTree::bind(shape, members), m)
          .latency.as_us();
    };
    std::printf("%5d B   %-4d %-6d %-12.1f %-12.1f %-12.1f\n", m * 64, m,
                choice.k, run(core::make_linear(n)),
                run(core::make_binomial(n)),
                run(core::make_kbinomial(n, choice.k)));
  }

  std::printf(
      "\nNote how the binomial tree wins short messages, the 2-binomial\n"
      "tree takes over as packet count grows, and for very long messages\n"
      "the optimum collapses to the chain (k=1) — whose pipeline finally\n"
      "amortizes the huge first-packet latency and overtakes binomial.\n");
  return 0;
}
