// Tour of the high-level API: everything the lower layers do — topology
// generation, deadlock-free routing, contention-free ordering, Theorem 3
// tree planning, packetization — behind one object.
//
// Run: ./build/examples/api_tour

#include <cstdio>
#include <vector>

#include "api/communicator.hpp"

int main() {
  using namespace nimcast;

  // A 64-host irregular cluster with the paper's default parameters.
  const auto cluster = api::Communicator::irregular();
  std::printf("system: %s (%d hosts)\n\n", cluster.system_name().c_str(),
              cluster.num_hosts());

  // Planning without simulating: what tree would a 4 KiB multicast to 47
  // destinations use?
  std::printf("planning: 4096 B to 47 dests -> %d packets, fan-out bound "
              "k=%d\n\n",
              cluster.packetize(4096), cluster.plan_fanout(48, 4096));

  // One multicast, sized in bytes; the library fragments, plans and runs.
  const std::vector<topo::HostId> team{3, 9, 17, 21, 36, 44, 58};
  for (const std::int64_t bytes : {64, 1024, 4096}) {
    const auto r = cluster.multicast(0, team, bytes);
    std::printf("multicast %5lld B to %zu dests: %8.1f us  (m=%d, k=%d, "
                "depth=%d, contention=%.1f us)\n",
                static_cast<long long>(bytes), team.size(),
                r.latency.as_us(), r.packets, r.fanout_bound, r.tree_depth,
                r.contention.as_us());
  }

  // The full collective family over the same machinery.
  std::printf("\ncollectives, 1 KiB per message, root 0:\n");
  const auto b = cluster.broadcast(0, 1024);
  const auto s = cluster.scatter(0, 1024);
  const auto g = cluster.gather(0, 1024);
  const auto r = cluster.reduce(0, 1024);
  const auto ar = cluster.allreduce(0, 1024);
  std::printf("  broadcast: %8.1f us (%lld packets on wire)\n",
              b.latency.as_us(), static_cast<long long>(b.packets_on_wire));
  std::printf("  scatter  : %8.1f us (%lld)\n", s.latency.as_us(),
              static_cast<long long>(s.packets_on_wire));
  std::printf("  gather   : %8.1f us (%lld)\n", g.latency.as_us(),
              static_cast<long long>(g.packets_on_wire));
  std::printf("  reduce   : %8.1f us (%lld)  <- in-network combining\n",
              r.latency.as_us(), static_cast<long long>(r.packets_on_wire));
  std::printf("  allreduce: %8.1f us (%lld)\n", ar.latency.as_us(),
              static_cast<long long>(ar.packets_on_wire));

  // The same API on a regular MPP.
  const auto mpp =
      api::Communicator::mesh(topo::KAryNCubeConfig{8, 2, false});
  std::printf("\nsystem: %s — broadcast 2 KiB: %.1f us\n",
              mpp.system_name().c_str(),
              mpp.broadcast(0, 2048).latency.as_us());
  return 0;
}
