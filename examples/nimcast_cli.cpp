// Command-line front end: run any supported operation on any supported
// system from the shell, optionally dumping a Perfetto-compatible trace.
//
//   ./build/examples/nimcast_cli --op multicast --dests 15 --bytes 1024
//   ./build/examples/nimcast_cli --system mesh --radix 8 --op broadcast
//       --tree binomial --style fcfs --trace /tmp/run.json
//
// Exit code 0 on success; 2 on bad usage.

#include <cstdio>
#include <memory>
#include <optional>

#include "collectives/collective_engine.hpp"
#include "core/host_tree.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering_quality.hpp"
#include "harness/cli.hpp"
#include "harness/tree_spec.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/dimension_ordered.hpp"
#include "routing/up_down.hpp"
#include "sim/trace_export.hpp"
#include "topology/irregular.hpp"
#include "topology/kary_ncube.hpp"

namespace {

using namespace nimcast;

struct System {
  std::unique_ptr<topo::Topology> topology;
  std::unique_ptr<routing::Router> router;
  std::unique_ptr<routing::RouteTable> routes;
  core::Chain chain;
};

System build_system(const std::string& kind, std::int64_t radix,
                    std::int64_t dims, std::uint64_t seed) {
  System s;
  if (kind == "irregular") {
    sim::Rng rng{seed};
    s.topology = std::make_unique<topo::Topology>(
        topo::make_irregular(topo::IrregularConfig{}, rng));
    auto updown =
        std::make_unique<routing::UpDownRouter>(s.topology->switches());
    s.chain = core::cco_ordering(*s.topology, *updown);
    s.router = std::move(updown);
  } else if (kind == "mesh") {
    const topo::KAryNCubeConfig cfg{static_cast<std::int32_t>(radix),
                                    static_cast<std::int32_t>(dims), false};
    s.topology =
        std::make_unique<topo::Topology>(topo::make_kary_ncube(cfg));
    s.router = std::make_unique<routing::DimensionOrderedRouter>(
        s.topology->switches(), cfg);
    s.chain = core::dimension_chain(*s.topology);
  } else {
    throw std::invalid_argument("--system must be irregular or mesh");
  }
  s.routes = std::make_unique<routing::RouteTable>(*s.topology, *s.router);
  return s;
}

harness::TreeSpec parse_tree(const std::string& t) {
  if (t == "optimal") return harness::TreeSpec::optimal();
  if (t == "binomial") return harness::TreeSpec::binomial();
  if (t == "linear") return harness::TreeSpec::linear();
  if (t.rfind("k=", 0) == 0) {
    return harness::TreeSpec::kbinomial(std::stoi(t.substr(2)));
  }
  throw std::invalid_argument("--tree must be optimal|binomial|linear|k=K");
}

mcast::NiStyle parse_style(const std::string& s) {
  if (s == "fpfs") return mcast::NiStyle::kSmartFpfs;
  if (s == "fcfs") return mcast::NiStyle::kSmartFcfs;
  if (s == "conventional") return mcast::NiStyle::kConventional;
  if (s == "reliable") return mcast::NiStyle::kReliableFpfs;
  throw std::invalid_argument(
      "--style must be fpfs|fcfs|conventional|reliable");
}

std::optional<collectives::CollectiveKind> parse_collective(
    const std::string& op) {
  using K = collectives::CollectiveKind;
  if (op == "broadcast") return K::kBroadcast;
  if (op == "scatter") return K::kScatter;
  if (op == "gather") return K::kGather;
  if (op == "reduce") return K::kReduce;
  if (op == "allreduce") return K::kAllReduce;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  harness::Cli cli{argc, argv};
  cli.describe("system", "irregular (default) or mesh")
      .describe("radix", "mesh radix k (default 8)")
      .describe("dims", "mesh dimensions n (default 2)")
      .describe("seed", "topology seed (default 1997)")
      .describe("op",
                "multicast (default) | broadcast | scatter | gather | "
                "reduce | allreduce | assess-ordering")
      .describe("dests", "multicast destination count (default 15)")
      .describe("bytes", "message bytes (default 512)")
      .describe("tree", "optimal (default) | binomial | linear | k=K")
      .describe("style", "fpfs (default) | fcfs | conventional | reliable")
      .describe("loss", "packet loss probability in [0,1) (default 0)")
      .describe("source", "source/root host id (default 0)")
      .describe("trace", "write a Perfetto JSON trace to this path");

  try {
    const auto system_kind = cli.get_string("system", "irregular");
    const auto radix = cli.get_int("radix", 8);
    const auto dims = cli.get_int("dims", 2);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1997));
    const auto op = cli.get_string("op", "multicast");
    const auto dest_count = cli.get_int("dests", 15);
    const auto bytes = cli.get_int("bytes", 512);
    const auto tree_spec = parse_tree(cli.get_string("tree", "optimal"));
    const auto style = parse_style(cli.get_string("style", "fpfs"));
    const auto source =
        static_cast<topo::HostId>(cli.get_int("source", 0));
    const auto loss = cli.get_double("loss", 0.0);
    const auto trace_path = cli.get_string("trace", "");
    if (!cli.finish()) {
      std::fputs(cli.usage().c_str(), stdout);
      return 0;
    }

    const System system = build_system(system_kind, radix, dims, seed);
    const std::int32_t hosts = system.topology->num_hosts();
    net::NetworkConfig netcfg;
    netcfg.loss_rate = loss;
    const auto m = static_cast<std::int32_t>(
        std::max<std::int64_t>(1, (bytes + netcfg.packet_bytes - 1) /
                                      netcfg.packet_bytes));
    std::printf("system: %s, %d hosts, routing %s\n",
                system.topology->name().c_str(), hosts,
                system.router->name());

    sim::Trace trace;
    sim::Trace* trace_ptr = nullptr;
    if (!trace_path.empty()) {
      trace.enable();
      trace_ptr = &trace;
    }

    if (op == "assess-ordering") {
      sim::Rng rng{seed + 1};
      const auto q = core::assess_ordering_sampled(
          *system.topology, *system.routes, system.chain, 50'000, rng);
      std::printf("ordering violation rate: %.4f (%lld / %lld quadruples)\n",
                  q.violation_rate(),
                  static_cast<long long>(q.violations),
                  static_cast<long long>(q.checked));
      return 0;
    }

    if (const auto kind = parse_collective(op)) {
      // Collective over all hosts.
      std::vector<topo::HostId> dests;
      for (topo::HostId h = 0; h < hosts; ++h) {
        if (h != source) dests.push_back(h);
      }
      const auto choice = core::optimal_k(hosts, m);
      const auto members =
          core::arrange_participants(system.chain, source, dests);
      const auto tree = core::HostTree::bind(
          tree_spec.build(hosts, m), members);
      const collectives::CollectiveEngine engine{
          *system.topology, *system.routes,
          collectives::CollectiveEngine::Config{}, trace_ptr};
      const auto result = engine.run(*kind, tree, m);
      std::printf("%s: %d hosts, %lld B -> %d packets, k=%d\n", op.c_str(),
                  hosts, static_cast<long long>(bytes), m, choice.k);
      std::printf("latency %.1f us, %lld packets on wire, contention %.1f "
                  "us\n",
                  result.latency.as_us(),
                  static_cast<long long>(result.packets_injected),
                  result.total_channel_block_time.as_us());
    } else if (op == "multicast") {
      if (dest_count < 1 || dest_count >= hosts) {
        throw std::invalid_argument("--dests out of range");
      }
      std::vector<topo::HostId> dests;
      for (topo::HostId h = 0; h < hosts && static_cast<std::int64_t>(
                                                dests.size()) < dest_count;
           ++h) {
        if (h != source) dests.push_back(h);
      }
      const auto n = static_cast<std::int32_t>(dests.size()) + 1;
      const auto members =
          core::arrange_participants(system.chain, source, dests);
      const auto tree =
          core::HostTree::bind(tree_spec.build(n, m), members);
      const mcast::MulticastEngine engine{
          *system.topology, *system.routes,
          mcast::MulticastEngine::Config{netif::SystemParams{}, netcfg,
                                         style},
          trace_ptr};
      const auto result = engine.run(tree, m);
      std::printf("multicast: %lld B to %d dests over %s tree, %s NI\n",
                  static_cast<long long>(bytes), n - 1,
                  tree_spec.name().c_str(), mcast::to_string(style));
      std::printf("latency %.1f us (NI-level %.1f us), contention %.1f us, "
                  "peak NI buffer %.0f packets\n",
                  result.latency.as_us(), result.ni_latency.as_us(),
                  result.total_channel_block_time.as_us(),
                  result.peak_buffer());
    } else {
      throw std::invalid_argument("unknown --op " + op);
    }

    if (trace_ptr != nullptr) {
      sim::write_chrome_trace(trace, trace_path);
      std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                  trace.records().size());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n\n%s", e.what(), cli.usage().c_str());
    return 2;
  }
}
