// Scenario: a network-interface designer evaluating multicast firmware
// options — the Section 2/3 design space of the paper:
//   (a) does smart forwarding (NI replicates packets) pay off over the
//       conventional host-forwarded path?
//   (b) FCFS or FPFS replication discipline? (buffer memory is the
//       scarce resource on an NI)
//   (c) how big is the optimal-k lookup table the firmware must carry?
//
// Run: ./build/examples/ni_design_study

#include <cstdio>

#include "analysis/buffer_model.hpp"
#include "analysis/latency_model.hpp"
#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/up_down.hpp"

namespace {

using namespace nimcast;

/// Fan-out fixture: source -> intermediate -> `children` leaves on one
/// switch; the intermediate NI is the object of study.
mcast::MulticastResult run_fanout(std::int32_t children, std::int32_t m,
                                  mcast::NiStyle style) {
  const auto hosts = static_cast<std::size_t>(children) + 2;
  topo::Topology topology{topo::Graph{1, {}},
                          std::vector<topo::SwitchId>(hosts, 0), "star"};
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  core::HostTree tree;
  tree.root = 0;
  tree.nodes = {0, 1};
  tree.children[0] = {1};
  tree.children[1] = {};
  for (std::int32_t c = 0; c < children; ++c) {
    tree.nodes.push_back(2 + c);
    tree.children[1].push_back(2 + c);
    tree.children[2 + c] = {};
  }
  mcast::MulticastEngine engine{
      topology, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{},
                                     net::NetworkConfig{}, style}};
  return engine.run(tree, m);
}

double intermediate_buffer_integral(const mcast::MulticastResult& r) {
  for (const auto& b : r.buffers) {
    if (b.host == 1) return b.packet_us_integral;
  }
  return 0.0;
}

}  // namespace

int main() {
  using namespace nimcast;
  const netif::SystemParams params;

  std::printf("=== NI design study ===\n\n");

  // (a) Smart vs conventional forwarding through one intermediate node.
  std::printf("(a) forwarding path, 8-packet message through one "
              "intermediate with 4 children:\n");
  const auto conv = run_fanout(4, 8, mcast::NiStyle::kConventional);
  const auto smart = run_fanout(4, 8, mcast::NiStyle::kSmartFpfs);
  std::printf("    conventional (host forwards): %s\n",
              conv.latency.to_string().c_str());
  std::printf("    smart NI (coprocessor forwards): %s  -> %.2fx faster\n\n",
              smart.latency.to_string().c_str(),
              conv.latency.as_us() / smart.latency.as_us());

  // (b) FCFS vs FPFS buffer demand at that intermediate NI.
  std::printf("(b) replication discipline, buffer demand at the "
              "intermediate NI (packet-us integral):\n");
  std::printf("    %-4s %-4s %-12s %-12s %-22s\n", "c", "m", "FCFS sim",
              "FPFS sim", "model T_f/T_p ratio");
  for (const std::int32_t c : {2, 4, 7}) {
    for (const std::int32_t m : {4, 16}) {
      const auto fc = run_fanout(c, m, mcast::NiStyle::kSmartFcfs);
      const auto fp = run_fanout(c, m, mcast::NiStyle::kSmartFpfs);
      std::printf("    %-4d %-4d %-12.1f %-12.1f %-22.1f\n", c, m,
                  intermediate_buffer_integral(fc),
                  intermediate_buffer_integral(fp),
                  analysis::fcfs_holding_time(c, m, params.t_snd).as_us() /
                      analysis::fpfs_holding_time(c, params.t_snd).as_us());
    }
  }
  std::printf("    -> FPFS: per-packet buffering independent of message "
              "length; FCFS: grows ~linearly with it.\n\n");

  // (c) Firmware table for the optimal k (Section 4.3.1).
  const core::OptimalKTable table{64, 32};
  std::printf("(c) optimal-k firmware table for n <= 64, m <= 32:\n");
  std::printf("    dense entries: %d, breakpoint-compressed entries: %zu "
              "(%.1f%% of dense)\n",
              63 * 32, table.stored_entries(),
              100.0 * static_cast<double>(table.stored_entries()) /
                  (63.0 * 32.0));
  std::printf("    example lookups: (n=48,m=4) -> k=%d; (n=64,m=16) -> "
              "k=%d; (n=16,m=32) -> k=%d\n",
              table.lookup(48, 4).k, table.lookup(64, 16).k,
              table.lookup(16, 32).k);

  return 0;
}
