// Scenario: a network of workstations with a *lossy* interconnect — the
// setting of the reliable-multicast systems the paper cites ([4] over
// ATM, [12] over Myrinet). Runs the same optimal k-binomial multicast
// with plain FPFS firmware (which silently never completes under loss)
// and with the reliable ACK/retransmit firmware, across loss rates, and
// dumps a Perfetto trace plus Graphviz renderings of the tree and the
// cluster for inspection.
//
// Run: ./build/examples/reliable_now [loss_percent]

#include <cstdio>
#include <cstdlib>

#include "core/dot_export.hpp"
#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/up_down.hpp"
#include "sim/trace_export.hpp"
#include "topology/irregular.hpp"

int main(int argc, char** argv) {
  using namespace nimcast;
  const double loss =
      (argc > 1 ? std::strtod(argv[1], nullptr) : 10.0) / 100.0;

  sim::Rng rng{2026};
  const auto now = topo::make_irregular(topo::IrregularConfig{}, rng);
  const routing::UpDownRouter router{now.switches()};
  const routing::RouteTable routes{now, router};
  const auto chain = core::cco_ordering(now, router);

  const std::int32_t n = 24;
  const std::int32_t m = 8;
  const auto choice = core::optimal_k(n, m);
  std::vector<topo::HostId> dests{chain.begin() + 1, chain.begin() + n};
  const auto members = core::arrange_participants(chain, chain[0], dests);
  const auto tree =
      core::HostTree::bind(core::make_kbinomial(n, choice.k), members);

  std::printf("system: %s, multicast %d packets to %d dests, k*=%d\n",
              now.name().c_str(), m, n - 1, choice.k);
  core::write_dot(core::to_dot(tree), "/tmp/reliable_now_tree.dot");
  core::write_dot(core::to_dot(now), "/tmp/reliable_now_cluster.dot");
  std::printf("wrote /tmp/reliable_now_tree.dot and "
              "/tmp/reliable_now_cluster.dot (render with graphviz)\n\n");

  net::NetworkConfig lossless;
  mcast::MulticastEngine baseline{
      now, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{}, lossless,
                                     mcast::NiStyle::kSmartFpfs}};
  const auto ref = baseline.run(tree, m);
  std::printf("lossless fabric, plain FPFS     : %8.1f us\n",
              ref.latency.as_us());

  net::NetworkConfig lossy;
  lossy.loss_rate = loss;
  // Plain FPFS under loss: packets vanish, destinations starve, and the
  // engine reports the incomplete operation.
  mcast::MulticastEngine fragile{
      now, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{}, lossy,
                                     mcast::NiStyle::kSmartFpfs}};
  try {
    (void)fragile.run(tree, m);
    std::printf("plain FPFS at %.0f%% loss       : completed (lucky run)\n",
                loss * 100);
  } catch (const std::exception&) {
    std::printf("plain FPFS at %.0f%% loss        : NEVER COMPLETES "
                "(packets lost, no recovery)\n",
                loss * 100);
  }

  sim::Trace trace;
  trace.enable();
  mcast::MulticastEngine reliable{
      now, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{}, lossy,
                                     mcast::NiStyle::kReliableFpfs},
      &trace};
  const auto rel = reliable.run(tree, m);
  std::printf("reliable FPFS at %.0f%% loss     : %8.1f us  (%.2fx "
              "lossless)\n",
              loss * 100, rel.latency.as_us(),
              rel.latency.as_us() / ref.latency.as_us());
  sim::write_chrome_trace(trace, "/tmp/reliable_now_trace.json");
  std::printf("\nwrote /tmp/reliable_now_trace.json (%zu events) — open in "
              "ui.perfetto.dev, look for retx/DROP lines\n",
              trace.records().size());
  return 0;
}
