// Reproduces paper Figure 14: head-to-head simulated latency of the
// optimal k-binomial tree against the conventional binomial tree.
//   (a) vs number of packets m, for 15 and 47 destinations;
//   (b) vs multicast set size n, for 2 and 8 packets.
// Headline result: the k-binomial tree wins everywhere it differs, by a
// factor approaching 2x at large packet counts, and the advantage grows
// with m.

#include "bench/common.hpp"

using namespace nimcast;

namespace {

struct Pair {
  double binomial;
  double kbinomial;
  [[nodiscard]] double ratio() const { return binomial / kbinomial; }
};

Pair measure_pair(const harness::IrregularTestbed& bed, std::int32_t n,
                  std::int32_t m) {
  const auto b = bed.measure(n, m, harness::TreeSpec::binomial(),
                             mcast::NiStyle::kSmartFpfs);
  const auto k = bed.measure(n, m, harness::TreeSpec::optimal(),
                             mcast::NiStyle::kSmartFpfs);
  return Pair{b.latency_us.mean(), k.latency_us.mean()};
}

void figure_14a(const harness::IrregularTestbed& bed) {
  std::printf("Figure 14(a): binomial vs optimal k-binomial latency (us) "
              "vs m\n\n");
  harness::Table table{{"m", "n=16 bin", "n=16 kbin", "ratio16",
                        "n=48 bin", "n=48 kbin", "ratio48"}};
  std::vector<double> ratio16;
  std::vector<double> ratio48;
  for (const std::int32_t m : {1, 2, 4, 8, 12, 16, 24, 32}) {
    const Pair p16 = measure_pair(bed, 16, m);
    const Pair p48 = measure_pair(bed, 48, m);
    ratio16.push_back(p16.ratio());
    ratio48.push_back(p48.ratio());
    table.add_row({harness::Table::num(std::int64_t{m}),
                   harness::Table::num(p16.binomial),
                   harness::Table::num(p16.kbinomial),
                   harness::Table::num(p16.ratio(), 2),
                   harness::Table::num(p48.binomial),
                   harness::Table::num(p48.kbinomial),
                   harness::Table::num(p48.ratio(), 2)});
  }
  table.print(std::cout);
  table.write_csv("fig14a.csv");

  // Paper: k-binomial at least as fast everywhere (identical at m=1),
  // improvement grows with m, reaching ~2x at the large-m end.
  for (const auto& ratios : {ratio16, ratio48}) {
    for (double r : ratios) {
      bench::expect_shape(r >= 0.999, "Fig14a: k-binomial never loses");
    }
    bench::expect_shape(std::abs(ratios.front() - 1.0) < 0.01,
                        "Fig14a: trees coincide at m=1");
    bench::expect_shape(ratios.back() > ratios[1],
                        "Fig14a: improvement grows with m");
  }
  bench::expect_shape(ratio48.back() >= 1.6,
                      "Fig14a: ~2x improvement at m=32 for 47 dests");
}

void figure_14b(const harness::IrregularTestbed& bed) {
  std::printf("\nFigure 14(b): binomial vs optimal k-binomial latency (us) "
              "vs n\n\n");
  harness::Table table{{"n", "m=2 bin", "m=2 kbin", "ratio2", "m=8 bin",
                        "m=8 kbin", "ratio8"}};
  std::vector<double> ratio2;
  std::vector<double> ratio8;
  for (std::int32_t n = 8; n <= 64; n += 8) {
    const Pair p2 = measure_pair(bed, n, 2);
    const Pair p8 = measure_pair(bed, n, 8);
    ratio2.push_back(p2.ratio());
    ratio8.push_back(p8.ratio());
    table.add_row({harness::Table::num(std::int64_t{n}),
                   harness::Table::num(p2.binomial),
                   harness::Table::num(p2.kbinomial),
                   harness::Table::num(p2.ratio(), 2),
                   harness::Table::num(p8.binomial),
                   harness::Table::num(p8.kbinomial),
                   harness::Table::num(p8.ratio(), 2)});
  }
  table.print(std::cout);
  table.write_csv("fig14b.csv");

  for (std::size_t i = 0; i < ratio2.size(); ++i) {
    bench::expect_shape(ratio2[i] >= 0.999 && ratio8[i] >= 0.999,
                        "Fig14b: k-binomial never loses");
    // More packets -> bigger advantage, at every n (paper's observation).
    bench::expect_shape(ratio8[i] >= ratio2[i] - 0.02,
                        "Fig14b: m=8 advantage >= m=2 advantage");
  }
}

}  // namespace

int main() {
  std::printf("=== Fig. 14 reproduction: k-binomial vs binomial on the "
              "64-host irregular network ===\n\n");
  const harness::IrregularTestbed bed{bench::paper_testbed_config()};
  figure_14a(bed);
  figure_14b(bed);
  return bench::finish("bench_fig14_kbinomial_vs_binomial");
}
