// Chaos robustness sweep: delivery ratio and completion-latency tail of
// smart-FPFS multicast as the probability of a mid-operation *initiator
// kill* rises, with the root-handoff policy on vs off, over a constant
// 20% link-fault background. The shape this bench guards: handoff never
// delivers less than no-handoff, and when the dead root still owed
// repair resends it turns truncated partials back into completions —
// paying the repair-tail latency the no-handoff run dodges by giving
// up. Emits BENCH_chaos.json (deterministic: same seeds, same bytes —
// the TSan CI job diffs two runs) and chaos.csv.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "mcast/multicast_engine.hpp"
#include "network/fault_plan.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"

using namespace nimcast;

namespace {

struct Rig {
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  core::Chain cco;

  explicit Rig(std::uint64_t seed)
      : topology{[&] {
          sim::Rng rng{seed};
          return topo::make_irregular(topo::IrregularConfig{}, rng);
        }()},
        router{topology.switches()},
        routes{topology, router},
        cco{core::cco_ordering(topology, router)} {}
};

struct Point {
  double kill_rate = 0.0;
  bool handoff = false;
  double delivery_ratio = 0.0;  ///< mean over ops
  double complete_rate = 0.0;   ///< fraction of ops ending kComplete
  double failed_rate = 0.0;     ///< fraction of ops ending kFailed
  double handoffs_per_op = 0.0;
  double p95_latency_us = 0.0;  ///< completion tail over delivering ops
};

Point sweep_point(const Rig& rig, double kill_rate, bool handoff, int reps) {
  // 16 packets keep the root on duty (initial sends plus repair
  // resends) long enough that a mid-operation kill strands real work;
  // at m=4 the root retires before any destination holds the full
  // payload and a kill is either pre-arrival (kFailed regardless of
  // policy) or a no-op.
  constexpr std::int32_t kN = 16;
  constexpr std::int32_t kM = 16;
  const auto choice = core::optimal_k(kN, kM);
  Point pt;
  pt.kill_rate = kill_rate;
  pt.handoff = handoff;
  double ratio_sum = 0.0;
  int complete = 0, failed = 0;
  std::int64_t handoffs = 0;
  std::vector<double> latencies;
  for (int rep = 0; rep < reps; ++rep) {
    // Participants, background faults and the kill draw are all paired
    // across (kill_rate, handoff) cells: only the policy differs.
    sim::Rng rng{static_cast<std::uint64_t>(rep) * 977 + 19};
    const auto draw = rng.sample_without_replacement(
        static_cast<std::size_t>(rig.topology.num_hosts()),
        static_cast<std::size_t>(kN));
    std::vector<topo::HostId> dests;
    for (std::size_t i = 1; i < draw.size(); ++i) {
      dests.push_back(static_cast<topo::HostId>(draw[i]));
    }
    const auto members = core::arrange_participants(
        rig.cco, static_cast<topo::HostId>(draw.front()), dests);
    const auto tree =
        core::HostTree::bind(core::make_kbinomial(kN, choice.k), members);

    net::FaultPlan::RandomConfig fcfg;
    fcfg.link_fail_prob = 0.20;
    fcfg.window_end = sim::Time::us(80.0);
    sim::Rng fault_rng{0xC4A05 + static_cast<std::uint64_t>(rep) * 131};
    auto faults =
        net::FaultPlan::random(rig.topology.switches(), fcfg, fault_rng);

    mcast::MulticastEngine::Config cfg;
    cfg.network.faults = faults;
    cfg.repair.root_handoff = handoff;

    // A baseline run (background faults only, no kill) measures this
    // rep's own completion time; the kill then lands at a drawn
    // fraction of it, so "mid-operation" tracks the rep instead of a
    // fixed instant. The baseline never kills the root, so it is
    // byte-identical across the handoff on/off cells and the kill
    // instant stays paired.
    const mcast::MulticastEngine baseline{rig.topology, rig.routes, cfg};
    const double op_span = baseline.run(tree, kM).latency.as_us();
    const double frac = 0.3 + fault_rng.next_double() * 0.6;
    const double kill_at = op_span > 0.0 ? frac * op_span : 30.0;
    const bool killed = fault_rng.next_double() < kill_rate;
    if (killed) faults.host_down(sim::Time::us(kill_at), tree.root);

    cfg.network.faults = faults;
    const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
    const auto r = engine.run(tree, kM);
    ratio_sum += r.delivery_ratio();
    handoffs += r.root_handoffs;
    if (r.outcome == mcast::Outcome::kComplete) ++complete;
    if (r.outcome == mcast::Outcome::kFailed) ++failed;
    if (r.delivered_count() > 0) latencies.push_back(r.latency.as_us());
  }
  pt.delivery_ratio = ratio_sum / reps;
  pt.complete_rate = static_cast<double>(complete) / reps;
  pt.failed_rate = static_cast<double>(failed) / reps;
  pt.handoffs_per_op = static_cast<double>(handoffs) / reps;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto idx = static_cast<std::size_t>(
        0.95 * static_cast<double>(latencies.size() - 1));
    pt.p95_latency_us = latencies[idx];
  }
  return pt;
}

}  // namespace

int main() {
  std::printf("=== Chaos: root-kill rate vs delivery, handoff on/off "
              "(irregular 64-host rig, 20%% link background) ===\n\n");
  const bool quick = std::getenv("NIMCAST_QUICK") != nullptr;
  const int reps = quick ? 8 : 30;
  const Rig rig{3};

  const std::vector<double> kill_rates = {0.0, 0.25, 0.5, 1.0};
  harness::Table table{{"kill rate", "handoff", "delivery", "complete",
                        "failed", "handoffs/op", "p95 latency (us)"}};
  std::vector<Point> points;
  for (const double rate : kill_rates) {
    for (const bool handoff : {false, true}) {
      Point pt = sweep_point(rig, rate, handoff, reps);
      table.add_row({harness::Table::num(rate, 2), handoff ? "on" : "off",
                     harness::Table::num(pt.delivery_ratio, 3),
                     harness::Table::num(pt.complete_rate, 2),
                     harness::Table::num(pt.failed_rate, 2),
                     harness::Table::num(pt.handoffs_per_op, 2),
                     harness::Table::num(pt.p95_latency_us)});
      points.push_back(pt);
    }
  }
  table.print(std::cout);
  table.write_csv("chaos.csv");

  // Shape: per kill rate, cells are paired — handoff off at index 2i,
  // on at 2i+1.
  for (std::size_t i = 0; i < kill_rates.size(); ++i) {
    const Point& off = points[2 * i];
    const Point& on = points[2 * i + 1];
    bench::expect_shape(
        on.delivery_ratio >= off.delivery_ratio - 1e-9,
        "root handoff never delivers less than no handoff");
    if (kill_rates[i] == 0.0) {
      bench::expect_shape(on.delivery_ratio == off.delivery_ratio,
                          "handoff is a no-op when the root survives");
      bench::expect_shape(on.handoffs_per_op == 0.0,
                          "no handoffs without a root kill");
    }
  }
  const Point& off_all = points[points.size() - 2];
  const Point& on_all = points.back();
  bench::expect_shape(on_all.handoffs_per_op > 0.0,
                      "certain root kill exercises the handoff");
  bench::expect_shape(
      on_all.delivery_ratio >= off_all.delivery_ratio + 0.10,
      "at certain root kill, handoff recovers a substantial share of "
      "deliveries");
  bench::expect_shape(
      on_all.complete_rate >= off_all.complete_rate + 0.10,
      "handoff turns truncated partials back into completions");
  // A kill before any destination holds the payload fails under both
  // policies — handoff needs a holder to elect, so it never *reduces*
  // the failure rate below the no-holder floor, and never raises it.
  bench::expect_shape(on_all.failed_rate <= off_all.failed_rate + 1e-9,
                      "handoff never makes an operation fail outright");

  const char* out_path = std::getenv("NIMCAST_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_chaos.json";
  if (FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"chaos\",\n"
                 "  \"config\": {\n"
                 "    \"quick\": %s,\n"
                 "    \"reps\": %d,\n"
                 "    \"rig\": \"irregular 64-host, seed 3, smart-fpfs, "
                 "n=16 m=16, link_fail_prob=0.20\",\n"
                 "    \"kill_at\": \"0.3..0.9 of each rep's own span\"\n"
                 "  },\n"
                 "  \"points\": [\n",
                 quick ? "true" : "false", reps);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::fprintf(out,
                   "    {\"kill_rate\": %.2f, \"handoff\": %s, "
                   "\"delivery_ratio\": %.6f, \"complete_rate\": %.6f, "
                   "\"failed_rate\": %.6f, \"handoffs_per_op\": %.6f, "
                   "\"p95_latency_us\": %.3f}%s\n",
                   p.kill_rate, p.handoff ? "true" : "false",
                   p.delivery_ratio, p.complete_rate, p.failed_rate,
                   p.handoffs_per_op, p.p95_latency_us,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"git_rev\": \"%s\"\n"
                 "}\n",
                 bench::git_rev().c_str());
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    bench::expect_shape(false, std::string("could not write ") + out_path);
  }

  return bench::finish("bench_chaos");
}
