#pragma once

// Shared scaffolding for the figure-regeneration benches. Each bench
// binary reproduces one table/figure of the paper, prints it in the
// harness::Table format, optionally writes CSV next to the binary, and
// self-checks the qualitative *shape* the paper reports (who wins, how
// trends move). A failed shape check exits non-zero so CI catches drift.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "core/rotation.hpp"
#include "harness/report.hpp"
#include "harness/testbed.hpp"
#include "sim/event_queue.hpp"

namespace nimcast::bench {

/// The paper's evaluation rig (Section 5.2): 64 hosts, 16 eight-port
/// switches, 10 random topologies x 30 random destination sets, default
/// system parameters. NIMCAST_QUICK=1 shrinks repetitions for smoke runs.
inline harness::IrregularTestbed::Config paper_testbed_config() {
  harness::IrregularTestbed::Config cfg;
  if (std::getenv("NIMCAST_QUICK") != nullptr) {
    cfg.num_topologies = 2;
    cfg.sets_per_topology = 5;
  }
  return cfg;
}

/// Atomic so shape checks may run from testbed worker threads.
inline std::atomic<int> g_shape_failures{0};

/// Records a qualitative expectation from the paper's figure. Prints and
/// counts failures instead of aborting so the full table still appears.
inline void expect_shape(bool ok, const std::string& what) {
  if (!ok) {
    g_shape_failures.fetch_add(1, std::memory_order_relaxed);
    std::printf("SHAPE-CHECK FAILED: %s\n", what.c_str());
  }
}

/// Call at the end of main().
inline int finish(const char* bench_name) {
  const int failures = g_shape_failures.load(std::memory_order_relaxed);
  if (failures == 0) {
    std::printf("\n[%s] all shape checks passed\n", bench_name);
    return 0;
  }
  std::printf("\n[%s] %d shape check(s) FAILED\n", bench_name, failures);
  return 1;
}

// ---------------------------------------------------------------------------
// Event-core churn microbench: a simulator-shaped loop keeping `depth`
// events pending; each fired event reschedules itself ahead, and every
// fourth event also schedules-then-cancels a retry timer (the reliable_ni
// pattern that exercises cancellation). Shared by bench_sim_core_throughput
// (events/sec vs the seed queue) and bench_scale (its result doubles as a
// machine-speed probe that normalizes recorded baselines to the current
// box before gating).

struct ChurnResult {
  double events_per_sec = 0.0;
  std::uint64_t checksum = 0;  // defeats dead-code elimination
};

template <typename Queue, typename Schedule, typename Cancel, typename Pop>
ChurnResult churn(Queue& q, std::uint64_t total_events, int depth,
                  Schedule schedule, Cancel cancel, Pop pop) {
  using Clock = std::chrono::steady_clock;
  std::uint64_t checksum = 0;
  std::uint64_t fired = 0;
  std::uint64_t t = 0;
  for (int i = 0; i < depth; ++i) {
    const std::uint64_t offset = 17 * (static_cast<std::uint64_t>(i) + 1);
    schedule(q, sim::Time::ns(static_cast<sim::Time::rep>(t + offset)),
             [&checksum, i] { checksum += static_cast<std::uint64_t>(i); });
  }
  const auto start = Clock::now();
  while (fired < total_events) {
    auto [when, cb] = pop(q);
    cb();
    ++fired;
    t = static_cast<std::uint64_t>(when.count_ns());
    // Reschedule ahead; the delta pattern produces frequent time ties so
    // the FIFO tie-break path is exercised too.
    const std::uint64_t delta = 13 + (fired * 7) % 64;
    schedule(q, sim::Time::ns(static_cast<sim::Time::rep>(t + delta)),
             [&checksum, fired] { checksum += fired; });
    if (fired % 4 == 0) {
      auto id = schedule(
          q, sim::Time::ns(static_cast<sim::Time::rep>(t + 100000)),
          [&checksum] { checksum += 1; });
      cancel(q, id);
    }
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  return ChurnResult{static_cast<double>(fired) / (elapsed_ms / 1000.0),
                     checksum};
}

inline ChurnResult churn_new(std::uint64_t total_events, int depth) {
  sim::EventQueue q;
  q.reserve(static_cast<std::size_t>(depth) + 2);
  return churn(
      q, total_events, depth,
      [](sim::EventQueue& qq, sim::Time when, auto cb) {
        return qq.schedule(when, std::move(cb));
      },
      [](sim::EventQueue& qq, sim::EventId id) { return qq.cancel(id); },
      [](sim::EventQueue& qq) {
        auto fired = qq.pop();
        return std::pair<sim::Time, sim::EventCallback>{
            fired.time, std::move(fired.cb)};
      });
}

/// JSON object describing a rotation set's measured channel overlap —
/// how decorrelated the planner actually got the member trees. Fixed
/// formatting so bench JSON stays byte-identical across runs.
inline std::string overlap_json(const core::RotationPlan& plan) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"rotation_requested\": %d, \"rotation_planned\": %d, "
                "\"overlap_mean\": %.6f, \"overlap_max\": %.6f}",
                plan.requested, plan.size(), plan.overlap_mean(),
                plan.overlap_max());
  return std::string{buf};
}

/// Short git revision for bench JSON provenance ("unknown" off-repo).
inline std::string git_rev() {
  std::string rev = "unknown";
  if (FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (fgets(buf, sizeof(buf), pipe) != nullptr) {
      rev = buf;
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
        rev.pop_back();
      }
    }
    pclose(pipe);
    if (rev.empty()) rev = "unknown";
  }
  return rev;
}

}  // namespace nimcast::bench
