#pragma once

// Shared scaffolding for the figure-regeneration benches. Each bench
// binary reproduces one table/figure of the paper, prints it in the
// harness::Table format, optionally writes CSV next to the binary, and
// self-checks the qualitative *shape* the paper reports (who wins, how
// trends move). A failed shape check exits non-zero so CI catches drift.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/report.hpp"
#include "harness/testbed.hpp"

namespace nimcast::bench {

/// The paper's evaluation rig (Section 5.2): 64 hosts, 16 eight-port
/// switches, 10 random topologies x 30 random destination sets, default
/// system parameters. NIMCAST_QUICK=1 shrinks repetitions for smoke runs.
inline harness::IrregularTestbed::Config paper_testbed_config() {
  harness::IrregularTestbed::Config cfg;
  if (std::getenv("NIMCAST_QUICK") != nullptr) {
    cfg.num_topologies = 2;
    cfg.sets_per_topology = 5;
  }
  return cfg;
}

/// Atomic so shape checks may run from testbed worker threads.
inline std::atomic<int> g_shape_failures{0};

/// Records a qualitative expectation from the paper's figure. Prints and
/// counts failures instead of aborting so the full table still appears.
inline void expect_shape(bool ok, const std::string& what) {
  if (!ok) {
    g_shape_failures.fetch_add(1, std::memory_order_relaxed);
    std::printf("SHAPE-CHECK FAILED: %s\n", what.c_str());
  }
}

/// Call at the end of main().
inline int finish(const char* bench_name) {
  const int failures = g_shape_failures.load(std::memory_order_relaxed);
  if (failures == 0) {
    std::printf("\n[%s] all shape checks passed\n", bench_name);
    return 0;
  }
  std::printf("\n[%s] %d shape check(s) FAILED\n", bench_name, failures);
  return 1;
}

}  // namespace nimcast::bench
