// Ablation (ours, motivated by the paper's reference [2]): the effect of
// the network's fixed packet size. The paper takes 64 B as given by the
// network design; [2] (De Coster et al.) instead optimized packet size in
// software. For a fixed 2 KiB message multicast to 31 destinations we
// sweep the hardware packet size: small packets pipeline better but pay
// the per-packet NI overheads more often; large packets amortize
// overheads but serialize the pipeline. The sweet spot under the paper's
// constants sits in the hundreds of bytes — a quantitative justification
// for mid-90s interconnect packet sizes.

#include <algorithm>

#include "bench/common.hpp"
#include "core/optimal_k.hpp"

using namespace nimcast;

int main() {
  std::printf("=== Ablation: fixed hardware packet size (2 KiB message, 31 "
              "dests) ===\n\n");
  const std::int64_t message_bytes = 2048;
  const std::int32_t n = 32;

  harness::Table table{{"packet (B)", "packets m", "k*",
                        "opt k-bin (us)", "binomial (us)"}};
  std::vector<double> latencies;
  for (const std::int32_t psize : {32, 64, 128, 256, 512, 1024, 2048}) {
    auto cfg = bench::paper_testbed_config();
    cfg.network.packet_bytes = psize;
    const harness::IrregularTestbed bed{cfg};
    const auto m = static_cast<std::int32_t>(
        (message_bytes + psize - 1) / psize);
    const auto opt = bed.measure(n, m, harness::TreeSpec::optimal(),
                                 mcast::NiStyle::kSmartFpfs);
    const auto bin = bed.measure(n, m, harness::TreeSpec::binomial(),
                                 mcast::NiStyle::kSmartFpfs);
    latencies.push_back(opt.latency_us.mean());
    table.add_row({harness::Table::num(std::int64_t{psize}),
                   harness::Table::num(std::int64_t{m}),
                   harness::Table::num(
                       std::int64_t{core::optimal_k(n, m).k}),
                   harness::Table::num(opt.latency_us.mean()),
                   harness::Table::num(bin.latency_us.mean())});
  }
  table.print(std::cout);
  table.write_csv("ablation_packet_size.csv");

  // The curve is U-shaped (or at least not monotone): both extremes are
  // worse than the best interior point.
  const double best = *std::min_element(latencies.begin(), latencies.end());
  bench::expect_shape(latencies.front() > best * 1.1,
                      "tiny packets pay per-packet NI overhead");
  bench::expect_shape(latencies.back() > best * 1.1,
                      "one giant packet forfeits pipelining");
  std::printf("\nbest latency %.1f us; 32 B costs %.2fx, single-packet "
              "(2048 B) costs %.2fx\n",
              best, latencies.front() / best, latencies.back() / best);

  return bench::finish("bench_ablation_packet_size");
}
