// Reproduces paper Figure 4 / Section 2.5: the benefit of smart network
// interface support. A binomial multicast over a conventional NI pays the
// host software overheads (t_s, t_r) at every tree level; the smart NI
// pays them once. Prints both the closed-form expressions and the
// full-system simulation, for single-packet (the paper's Fig. 4) and
// multi-packet messages (the motivating case).

#include "analysis/latency_model.hpp"
#include "bench/common.hpp"

using namespace nimcast;

int main() {
  std::printf("=== Fig. 4 reproduction: smart vs conventional network "
              "interface ===\n\n");
  const harness::IrregularTestbed bed{bench::paper_testbed_config()};

  // Analytic t_step over a typical 2-link path of the irregular network.
  const auto model = analysis::LatencyModel::from_network(
      netif::SystemParams{}, net::NetworkConfig{}, 2);
  std::printf("analytic t_step = %s (t_snd + wire + t_rcv over 2 hops)\n\n",
              model.t_step().to_string().c_str());

  for (const std::int32_t m : {1, 4}) {
    std::printf("--- %d-packet multicast, binomial tree ---\n", m);
    harness::Table table{{"n", "conv (model)", "smart (model)",
                          "conv (sim)", "smart (sim)", "sim ratio"}};
    std::vector<double> ratios;
    for (const std::int32_t n : {2, 4, 8, 16, 32, 64}) {
      const auto conv_sim = bed.measure(n, m, harness::TreeSpec::binomial(),
                                        mcast::NiStyle::kConventional);
      const auto smart_sim = bed.measure(n, m, harness::TreeSpec::binomial(),
                                         mcast::NiStyle::kSmartFpfs);
      const double ratio =
          conv_sim.latency_us.mean() / smart_sim.latency_us.mean();
      ratios.push_back(ratio);
      table.add_row({harness::Table::num(std::int64_t{n}),
                     harness::Table::num(
                         model.conventional_binomial(n, m).as_us()),
                     harness::Table::num(model.smart_binomial(n, m).as_us()),
                     harness::Table::num(conv_sim.latency_us.mean()),
                     harness::Table::num(smart_sim.latency_us.mean()),
                     harness::Table::num(ratio, 2)});

      // With a single destination nothing is forwarded, so the NI styles
      // tie; every n with an intermediate level must show a strict win.
      bench::expect_shape(
          n == 2 ? conv_sim.latency_us.mean() >=
                       smart_sim.latency_us.mean() - 1e-9
                 : conv_sim.latency_us.mean() > smart_sim.latency_us.mean(),
          "Fig4: smart NI never slower, strictly faster for n>=4 (n=" +
              std::to_string(n) + ")");
    }
    table.print(std::cout);
    table.write_csv(m == 1 ? "fig4_m1.csv" : "fig4_m4.csv");
    std::printf("\n");

    // The gap grows with the multicast set size (more levels paying
    // t_s + t_r again).
    for (std::size_t i = 2; i < ratios.size(); ++i) {
      bench::expect_shape(ratios[i] >= ratios[i - 1] - 0.05,
                          "Fig4: advantage grows with set size");
    }
    bench::expect_shape(ratios.back() > 2.0,
                        "Fig4: smart NI at least 2x faster at n=64");
  }

  return bench::finish("bench_fig4_smart_vs_conventional");
}
