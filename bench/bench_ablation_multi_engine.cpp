// Ablation (ours, forward-looking): what do parallel NI send engines (a
// modern multi-queue NIC instead of the paper's single 1997 coprocessor)
// buy, and do they change the optimal fan-out bound?
//
// Finding worth having: engines cut latency dramatically (~1.9x at 4
// engines) because copy preparation overlaps, but the *optimal k barely
// moves* — once the coprocessor stops being the serializer, the NI's
// single injection port (one packet on the wire at a time) takes over as
// the per-node bottleneck, and that serialization is fan-out-independent.
// Widening the optimal k needs multiple network ports, not just engines
// — a concrete design lesson the paper's framework produces when pushed
// past its era.

#include "bench/common.hpp"
#include "core/coverage.hpp"
#include "core/optimal_k.hpp"

using namespace nimcast;

int main() {
  std::printf("=== Ablation: multi-engine NI (n=48, m=16) ===\n\n");
  auto base = bench::paper_testbed_config();
  base.num_topologies = std::min(base.num_topologies, 4);
  base.sets_per_topology = std::min(base.sets_per_topology, 10);

  const std::int32_t n = 48;
  const std::int32_t m = 16;
  const std::int32_t k_max = core::ceil_log2(static_cast<std::uint64_t>(n));

  harness::Table table{{"engines", "best k (sim)", "latency at best k (us)",
                        "latency at paper k* (us)", "paper k*"}};
  const std::int32_t paper_k = core::optimal_k(n, m).k;
  std::vector<std::int32_t> best_ks;
  std::vector<double> best_lats;
  for (const std::int32_t engines : {1, 2, 4}) {
    auto cfg = base;
    cfg.params.ni_engines = engines;
    const harness::IrregularTestbed bed{cfg};
    double best_latency = 0;
    std::int32_t best_k = 0;
    double paper_latency = 0;
    for (std::int32_t k = 1; k <= k_max; ++k) {
      const auto p = bed.measure(n, m, harness::TreeSpec::kbinomial(k),
                                 mcast::NiStyle::kSmartFpfs);
      const double lat = p.latency_us.mean();
      if (best_k == 0 || lat < best_latency) {
        best_latency = lat;
        best_k = k;
      }
      if (k == paper_k) paper_latency = lat;
    }
    best_ks.push_back(best_k);
    best_lats.push_back(best_latency);
    table.add_row({harness::Table::num(std::int64_t{engines}),
                   harness::Table::num(std::int64_t{best_k}),
                   harness::Table::num(best_latency),
                   harness::Table::num(paper_latency),
                   harness::Table::num(std::int64_t{paper_k})});
  }
  table.print(std::cout);
  table.write_csv("ablation_multi_engine.csv");

  bench::expect_shape(best_lats[2] < best_lats[0] / 1.5,
                      "4 engines give a large latency win");

  bench::expect_shape(best_ks[0] <= best_ks[1] && best_ks[1] <= best_ks[2],
                      "more engines never narrow the best fan-out");
  std::printf("\nbest simulated k: %d (1 engine) -> %d (2) -> %d (4); "
              "paper's single-engine rule says k*=%d\n",
              best_ks[0], best_ks[1], best_ks[2], paper_k);

  return bench::finish("bench_ablation_multi_engine");
}
