// Micro-benchmarks (google-benchmark) of the library's hot paths: tree
// construction, the Theorem 3 solver, the step-model executor, the event
// queue, and a full end-to-end multicast simulation. These guard the
// experiment harness's own performance — regenerating the figures runs
// hundreds of thousands of these operations.

#include <benchmark/benchmark.h>

#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "harness/testbed.hpp"
#include "mcast/step_model.hpp"
#include "routing/up_down.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace {

using namespace nimcast;

void BM_MakeKBinomial(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::make_kbinomial(n, 3));
  }
}
BENCHMARK(BM_MakeKBinomial)->Arg(16)->Arg(64)->Arg(1024);

void BM_OptimalK(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  core::CoverageTable cov;
  for (auto _ : state) {
    for (std::int32_t m = 1; m <= 32; ++m) {
      benchmark::DoNotOptimize(core::optimal_k(n, m, cov));
    }
  }
}
BENCHMARK(BM_OptimalK)->Arg(64)->Arg(1024);

void BM_OptimalKTableBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::OptimalKTable{64, 32});
  }
}
BENCHMARK(BM_OptimalKTableBuild);

void BM_StepSchedule(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto m = static_cast<std::int32_t>(state.range(1));
  const auto tree = core::make_kbinomial(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mcast::step_schedule(tree, m, mcast::Discipline::kFpfs));
  }
}
BENCHMARK(BM_StepSchedule)->Args({64, 8})->Args({64, 64})->Args({1024, 8});

void BM_EventQueueChurn(benchmark::State& state) {
  const auto batch = state.range(0);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::int64_t i = 0; i < batch; ++i) {
      q.schedule(sim::Time::ns(i * 37 % 1000), [] {});
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueChurn)->Arg(1000)->Arg(10000);

void BM_UpDownRouteTable(benchmark::State& state) {
  sim::Rng rng{5};
  const auto topology = topo::make_irregular(topo::IrregularConfig{}, rng);
  const routing::UpDownRouter router{topology.switches()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::RouteTable{topology, router});
  }
}
BENCHMARK(BM_UpDownRouteTable);

void BM_FullMulticastSimulation(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto m = static_cast<std::int32_t>(state.range(1));
  sim::Rng rng{5};
  const auto topology = topo::make_irregular(topo::IrregularConfig{}, rng);
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  const auto chain = core::cco_ordering(topology, router);
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::measure_point(
        topology, routes, chain, netif::SystemParams{}, net::NetworkConfig{},
        n, m, harness::TreeSpec::optimal(), mcast::NiStyle::kSmartFpfs,
        harness::OrderingKind::kCco, 1, 42));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n - 1) * m);
}
BENCHMARK(BM_FullMulticastSimulation)
    ->Args({16, 8})
    ->Args({64, 8})
    ->Args({64, 32});

}  // namespace

BENCHMARK_MAIN();
