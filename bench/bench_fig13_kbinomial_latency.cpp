// Reproduces paper Figure 13: simulated multicast latency of the optimal
// k-binomial tree on the 64-host irregular switch network.
//   (a) latency vs number of packets m, destination counts {15,31,47,63};
//   (b) latency vs multicast set size n, packet counts {1,2,4,8}.
// Workload and averaging follow Section 5.2: 30 random destination sets
// on each of 10 random topologies, up*/down* routing, CCO base ordering,
// FPFS smart NIs.

#include "bench/common.hpp"
#include "core/optimal_k.hpp"

using namespace nimcast;

namespace {

void figure_13a(const harness::IrregularTestbed& bed) {
  std::printf(
      "Figure 13(a): latency (us) of optimal k-binomial tree vs m\n\n");
  const std::int32_t sizes[] = {16, 32, 48, 64};
  const std::int32_t ms[] = {1, 2, 4, 8, 12, 16, 24, 32};
  harness::Table table{{"m", "n=16", "n=32", "n=48", "n=64", "k*(64)"}};
  std::vector<std::vector<double>> curves(4);
  for (const std::int32_t m : ms) {
    std::vector<std::string> row{harness::Table::num(std::int64_t{m})};
    for (std::size_t i = 0; i < 4; ++i) {
      const auto p = bed.measure(sizes[i], m, harness::TreeSpec::optimal(),
                                 mcast::NiStyle::kSmartFpfs);
      curves[i].push_back(p.latency_us.mean());
      row.push_back(harness::Table::num(p.latency_us.mean()));
    }
    row.push_back(
        harness::Table::num(std::int64_t{core::optimal_k(64, m).k}));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  table.write_csv("fig13a.csv");

  for (std::size_t i = 0; i < 4; ++i) {
    // Latency grows with m ...
    for (std::size_t j = 1; j < curves[i].size(); ++j) {
      bench::expect_shape(curves[i][j] > curves[i][j - 1],
                          "Fig13a: latency increases with m");
    }
    // ... and with n at fixed m in the stable-k region (m <= 8, indices
    // 0..3). Past each curve's k -> 1 switch point (m = 12 for n=16,
    // m = 27 for n=32) the paper-rule k is transiently suboptimal for
    // our finer NI model and curves may cross; see EXPERIMENTS.md.
    if (i > 0) {
      for (std::size_t j :
           {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
        bench::expect_shape(curves[i][j] >= curves[i - 1][j] - 0.5,
                            "Fig13a: latency increases with n (stable-k "
                            "region)");
      }
    }
  }
  // The paper's stated observation: "the slope for 15 destinations
  // reduces when m >= 12" (optimal k drops to 1 there). Compare the
  // n=16 per-packet slope after the switch with the n=32 slope (still
  // k = 2) over the same interval.
  const double slope16 = (curves[0].back() - curves[0][6]) / (32 - 24);
  const double slope32 = (curves[1].back() - curves[1][6]) / (32 - 24);
  bench::expect_shape(slope16 < slope32,
                      "Fig13a: n=16 slope reduces once optimal k hits 1");
  // Pipeline slope: once the optimal k settles, latency grows modestly
  // per extra packet rather than with full tree depth.
  for (std::size_t i = 0; i < 4; ++i) {
    const double early =
        (curves[i][3] - curves[i][0]) / (8 - 1);  // m in [1, 8]
    const double late =
        (curves[i].back() - curves[i][5]) / (32 - 16);  // m in [16, 32]
    bench::expect_shape(late <= early * 1.5 + 1e-9,
                        "Fig13a: slope flattens once optimal k settles");
  }
}

void figure_13b(const harness::IrregularTestbed& bed) {
  std::printf("\nFigure 13(b): latency (us) of optimal k-binomial tree vs "
              "n\n\n");
  const std::int32_t packets[] = {1, 2, 4, 8};
  harness::Table table{{"n", "m=1", "m=2", "m=4", "m=8"}};
  std::vector<std::vector<double>> curves(4);
  std::vector<std::int32_t> ns;
  for (std::int32_t n = 8; n <= 64; n += 8) ns.push_back(n);
  for (const std::int32_t n : ns) {
    std::vector<std::string> row{harness::Table::num(std::int64_t{n})};
    for (std::size_t i = 0; i < 4; ++i) {
      const auto p = bed.measure(n, packets[i], harness::TreeSpec::optimal(),
                                 mcast::NiStyle::kSmartFpfs);
      curves[i].push_back(p.latency_us.mean());
      row.push_back(harness::Table::num(p.latency_us.mean()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  table.write_csv("fig13b.csv");

  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 1; j < curves[i].size(); ++j) {
      // Non-decreasing: adjacent n sharing the same (k*, t_1) produce
      // nearly identical trees, so allow exact ties within noise.
      bench::expect_shape(curves[i][j] >= curves[i][j - 1] - 0.5,
                          "Fig13b: latency non-decreasing in n");
    }
    if (i > 0) {
      for (std::size_t j = 0; j < curves[i].size(); ++j) {
        bench::expect_shape(curves[i][j] > curves[i - 1][j],
                            "Fig13b: more packets cost more");
      }
    }
  }
  // The n-slope is logarithmic-ish (tree depth), far below linear: going
  // 16 -> 64 destinations must not quadruple latency.
  for (std::size_t i = 0; i < 4; ++i) {
    bench::expect_shape(curves[i].back() < 2.5 * curves[i][1],
                        "Fig13b: latency grows sub-linearly in n");
  }
}

}  // namespace

int main() {
  std::printf("=== Fig. 13 reproduction: optimal k-binomial latency on the "
              "64-host irregular network ===\n\n");
  const harness::IrregularTestbed bed{bench::paper_testbed_config()};
  figure_13a(bed);
  figure_13b(bed);
  return bench::finish("bench_fig13_kbinomial_latency");
}
