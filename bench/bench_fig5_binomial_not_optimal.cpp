// Reproduces paper Figure 5 / Section 2.6: the binomial tree is NOT
// optimal for packetized multicast over a smart (FPFS) NI. The canonical
// counterexample — 3 packets to 3 destinations — takes 6 steps binomial
// vs 5 steps linear. The bench then maps the whole (n, m) plane to show
// where each plain tree wins and how much the optimal k-binomial saves.

#include "bench/common.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "mcast/step_model.hpp"

using namespace nimcast;

int main() {
  std::printf("=== Fig. 5 reproduction: binomial is not optimal under "
              "packetization ===\n\n");

  const auto steps = [](const core::RankTree& t, std::int32_t m) {
    return mcast::step_schedule(t, m, mcast::Discipline::kFpfs).total_steps;
  };

  const std::int32_t bin_steps = steps(core::make_binomial(4), 3);
  const std::int32_t lin_steps = steps(core::make_linear(4), 3);
  std::printf("m=3 packets to 3 destinations:\n");
  std::printf("  binomial tree : %d steps   (paper: 6)\n", bin_steps);
  std::printf("  linear tree   : %d steps   (paper: 5)\n\n", lin_steps);
  bench::expect_shape(bin_steps == 6, "Fig5: binomial takes 6 steps");
  bench::expect_shape(lin_steps == 5, "Fig5: linear takes 5 steps");
  bench::expect_shape(lin_steps < bin_steps,
                      "Fig5: linear beats binomial at n=4, m=3");

  std::printf("Step counts across the (n, m) plane (FPFS step model):\n\n");
  harness::Table table{{"n", "m", "binomial", "linear", "opt k-binomial",
                        "k*", "winner among plain trees"}};
  for (const std::int32_t n : {4, 8, 16, 32, 64}) {
    for (const std::int32_t m : {1, 2, 3, 4, 8, 16, 32, 64}) {
      const std::int32_t b = steps(core::make_binomial(n), m);
      const std::int32_t l = steps(core::make_linear(n), m);
      const auto choice = core::optimal_k(n, m);
      const std::int32_t o =
          steps(core::make_kbinomial(n, choice.k), m);
      table.add_row({harness::Table::num(std::int64_t{n}),
                     harness::Table::num(std::int64_t{m}),
                     harness::Table::num(std::int64_t{b}),
                     harness::Table::num(std::int64_t{l}),
                     harness::Table::num(std::int64_t{o}),
                     harness::Table::num(std::int64_t{choice.k}),
                     b < l ? "binomial" : (l < b ? "linear" : "tie")});
      bench::expect_shape(o <= b && o <= l,
                          "Fig5: optimal k-binomial dominates both plain "
                          "trees");
      bench::expect_shape(o == choice.total_steps,
                          "Fig5: executed steps match Theorem 3 value");
    }
  }
  table.print(std::cout);
  table.write_csv("fig5_plane.csv");

  // Binomial wins the small-m corner, linear the large-m corner: there
  // must exist both a binomial-wins point and a linear-wins point.
  bench::expect_shape(
      steps(core::make_binomial(64), 1) < steps(core::make_linear(64), 1),
      "Fig5: binomial wins at m=1");
  bench::expect_shape(
      steps(core::make_linear(8), 64) < steps(core::make_binomial(8), 64),
      "Fig5: linear wins at large m, small n");

  return bench::finish("bench_fig5_binomial_not_optimal");
}
