// Extension (paper related work [4], [12]): reliable multicast over a
// lossy fabric. The cited systems built reliability layers over ATM and
// Myrinet NIs; this bench measures what reliability costs on top of the
// paper's optimal trees: latency and retransmission overhead vs loss
// rate, and the ACK tax at zero loss.

#include "bench/common.hpp"
#include "core/host_tree.hpp"
#include "core/optimal_k.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"

using namespace nimcast;

namespace {

struct Rig {
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  core::Chain cco;

  explicit Rig(std::uint64_t seed)
      : topology{[&] {
          sim::Rng rng{seed};
          return topo::make_irregular(topo::IrregularConfig{}, rng);
        }()},
        router{topology.switches()},
        routes{topology, router},
        cco{core::cco_ordering(topology, router)} {}
};

double mean_latency(const Rig& rig, std::int32_t n, std::int32_t m,
                    double loss, mcast::NiStyle style, int reps) {
  const auto choice = core::optimal_k(n, m);
  net::NetworkConfig netcfg;
  netcfg.loss_rate = loss;
  double total = 0;
  for (int rep = 0; rep < reps; ++rep) {
    netcfg.loss_seed = static_cast<std::uint64_t>(rep) * 7919 + 5;
    sim::Rng rng{static_cast<std::uint64_t>(rep) + 11};
    const auto draw = rng.sample_without_replacement(
        static_cast<std::size_t>(rig.topology.num_hosts()),
        static_cast<std::size_t>(n));
    std::vector<topo::HostId> dests;
    for (std::size_t i = 1; i < draw.size(); ++i) {
      dests.push_back(static_cast<topo::HostId>(draw[i]));
    }
    const auto members = core::arrange_participants(
        rig.cco, static_cast<topo::HostId>(draw.front()), dests);
    const auto tree =
        core::HostTree::bind(core::make_kbinomial(n, choice.k), members);
    const mcast::MulticastEngine engine{
        rig.topology, rig.routes,
        mcast::MulticastEngine::Config{netif::SystemParams{}, netcfg, style}};
    total += engine.run(tree, m).latency.as_us();
  }
  return total / reps;
}

}  // namespace

int main() {
  std::printf("=== Extension: reliable multicast over a lossy fabric "
              "(n=32, m=8, optimal tree) ===\n\n");
  const int reps = std::getenv("NIMCAST_QUICK") != nullptr ? 5 : 20;
  const Rig rig{3};

  const double baseline =
      mean_latency(rig, 32, 8, 0.0, mcast::NiStyle::kSmartFpfs, reps);
  std::printf("plain FPFS, lossless fabric: %.1f us (reference)\n\n",
              baseline);

  harness::Table table{{"loss rate", "reliable FPFS (us)",
                        "vs lossless plain"}};
  std::vector<double> curve;
  for (const double loss : {0.0, 0.01, 0.05, 0.1, 0.2, 0.4}) {
    const double lat =
        mean_latency(rig, 32, 8, loss, mcast::NiStyle::kReliableFpfs, reps);
    curve.push_back(lat);
    table.add_row({harness::Table::num(loss, 2), harness::Table::num(lat),
                   harness::Table::num(lat / baseline, 2)});
  }
  table.print(std::cout);
  table.write_csv("reliability.csv");

  bench::expect_shape(curve.front() < baseline * 1.3,
                      "ACK tax at zero loss stays under ~30%");
  for (std::size_t i = 1; i < curve.size(); ++i) {
    bench::expect_shape(curve[i] >= curve[i - 1] - 2.0,
                        "latency degrades monotonically with loss");
  }
  // Retransmissions back off exponentially (1.5^attempt, capped), so the
  // extreme-loss tail pays in waiting what it saves in retransmit storms;
  // 40% loss lands around 11-13x lossless rather than the ~8x a fixed
  // timeout would give.
  bench::expect_shape(curve.back() < baseline * 16.0,
                      "even 40% loss stays within ~16x of lossless");
  std::printf("\nACK tax at zero loss: %.2fx; 40%% loss costs %.2fx "
              "lossless plain FPFS\n",
              curve.front() / baseline, curve.back() / baseline);

  return bench::finish("bench_reliability");
}
