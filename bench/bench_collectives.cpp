// Extension experiment (paper Section 7 future work): other collective
// operations with packetization and smart NI support, over the same
// 64-host irregular evaluation rig. Compares:
//   - gather vs in-network reduce (the NI-combining payoff),
//   - reduce vs allreduce (pipelined down-phase cost),
//   - scatter over the optimal k-binomial tree vs a flat source-direct
//     star (tree forwarding vs source serialization trade-off).

#include "bench/common.hpp"
#include "collectives/collective_engine.hpp"
#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"

using namespace nimcast;

namespace {

struct Rig {
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  core::Chain chain;
  collectives::CollectiveEngine engine;

  explicit Rig(std::uint64_t seed)
      : topology{[&] {
          sim::Rng rng{seed};
          return topo::make_irregular(topo::IrregularConfig{}, rng);
        }()},
        router{topology.switches()},
        routes{topology, router},
        chain{core::cco_ordering(topology, router)},
        engine{topology, routes, collectives::CollectiveEngine::Config{}} {}

  [[nodiscard]] core::HostTree tree(std::int32_t n, std::int32_t k) const {
    return core::HostTree::bind(core::make_kbinomial(n, k),
                                core::Chain{chain.begin(), chain.begin() + n});
  }

  [[nodiscard]] core::HostTree star(std::int32_t n) const {
    core::HostTree t;
    t.root = chain[0];
    t.nodes.assign(chain.begin(), chain.begin() + n);
    t.children[t.root] = {};
    for (std::int32_t i = 1; i < n; ++i) {
      t.children[t.root].push_back(chain[static_cast<std::size_t>(i)]);
      t.children[chain[static_cast<std::size_t>(i)]] = {};
    }
    return t;
  }
};

double mean_latency(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace

int main() {
  std::printf("=== Extension: collectives with packetization + smart NI "
              "support ===\n\n");
  const int num_seeds = std::getenv("NIMCAST_QUICK") != nullptr ? 2 : 6;

  std::printf("gather vs in-network reduce vs allreduce (64-host irregular "
              "nets, optimal trees, avg of %d wirings):\n\n", num_seeds);
  harness::Table table{{"n", "m", "gather (us)", "reduce (us)",
                        "allreduce (us)", "gather/reduce"}};
  for (const std::int32_t n : {16, 64}) {
    for (const std::int32_t m : {1, 4, 16}) {
      std::vector<double> g;
      std::vector<double> r;
      std::vector<double> a;
      const std::int32_t k = core::optimal_k(n, m).k;
      for (int seed = 0; seed < num_seeds; ++seed) {
        const Rig rig{static_cast<std::uint64_t>(seed)};
        const auto tree = rig.tree(n, k);
        g.push_back(rig.engine
                        .run(collectives::CollectiveKind::kGather, tree, m)
                        .latency.as_us());
        r.push_back(rig.engine
                        .run(collectives::CollectiveKind::kReduce, tree, m)
                        .latency.as_us());
        a.push_back(rig.engine
                        .run(collectives::CollectiveKind::kAllReduce, tree, m)
                        .latency.as_us());
      }
      const double gm = mean_latency(g);
      const double rm = mean_latency(r);
      const double am = mean_latency(a);
      table.add_row({harness::Table::num(std::int64_t{n}),
                     harness::Table::num(std::int64_t{m}),
                     harness::Table::num(gm), harness::Table::num(rm),
                     harness::Table::num(am),
                     harness::Table::num(gm / rm, 2)});
      bench::expect_shape(rm < gm,
                          "in-network reduce beats gather everywhere");
      bench::expect_shape(am > rm, "allreduce costs more than reduce");
      if (n == 64 && m >= 4) {
        bench::expect_shape(gm / rm > 2.0,
                            "combining pays off >2x at scale");
      }
    }
  }
  table.print(std::cout);
  table.write_csv("collectives_reduce.csv");

  std::printf("\nscatter: optimal k-binomial tree vs source-direct star "
              "(n=64):\n\n");
  harness::Table t2{{"m", "tree scatter (us)", "direct scatter (us)"}};
  for (const std::int32_t m : {1, 4, 16}) {
    std::vector<double> tree_lat;
    std::vector<double> star_lat;
    const std::int32_t k = core::optimal_k(64, m).k;
    for (int seed = 0; seed < num_seeds; ++seed) {
      const Rig rig{static_cast<std::uint64_t>(seed)};
      tree_lat.push_back(
          rig.engine
              .run(collectives::CollectiveKind::kScatter, rig.tree(64, k), m)
              .latency.as_us());
      star_lat.push_back(
          rig.engine
              .run(collectives::CollectiveKind::kScatter, rig.star(64), m)
              .latency.as_us());
    }
    t2.add_row({harness::Table::num(std::int64_t{m}),
                harness::Table::num(mean_latency(tree_lat)),
                harness::Table::num(mean_latency(star_lat))});
  }
  t2.print(std::cout);
  std::printf(
      "\n(scatter moves distinct data, so the tree repeats every byte at\n"
      "every level — with a cheap source NI the direct star competes;\n"
      "the numbers above quantify that trade-off on this system.)\n");

  return bench::finish("bench_collectives");
}
