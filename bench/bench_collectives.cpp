// Extension experiment (paper Section 7 future work): other collective
// operations with packetization and smart NI support, over the same
// 64-host irregular evaluation rig. Compares:
//   - gather vs in-network reduce (the NI-combining payoff),
//   - reduce vs allreduce (pipelined down-phase cost),
//   - scatter over the optimal k-binomial tree vs a flat source-direct
//     star (tree forwarding vs source serialization trade-off).

#include <memory>

#include "bench/common.hpp"
#include "collectives/collective_engine.hpp"
#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "network/fault_plan.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/fat_tree.hpp"

using namespace nimcast;

namespace {

struct Rig {
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  core::Chain chain;
  collectives::CollectiveEngine engine;

  explicit Rig(std::uint64_t seed)
      : topology{[&] {
          sim::Rng rng{seed};
          return topo::make_irregular(topo::IrregularConfig{}, rng);
        }()},
        router{topology.switches()},
        routes{topology, router},
        chain{core::cco_ordering(topology, router)},
        engine{topology, routes, collectives::CollectiveEngine::Config{}} {}

  [[nodiscard]] core::HostTree tree(std::int32_t n, std::int32_t k) const {
    return core::HostTree::bind(core::make_kbinomial(n, k),
                                core::Chain{chain.begin(), chain.begin() + n});
  }

  [[nodiscard]] core::HostTree star(std::int32_t n) const {
    core::HostTree t;
    t.root = chain[0];
    t.nodes.assign(chain.begin(), chain.begin() + n);
    t.children[t.root] = {};
    for (std::int32_t i = 1; i < n; ++i) {
      t.children[t.root].push_back(chain[static_cast<std::size_t>(i)]);
      t.children[chain[static_cast<std::size_t>(i)]] = {};
    }
    return t;
  }
};

double mean_latency(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

// ---------------------------------------------------------------------------
// Fault sweep: degraded-mode collectives on two 64-host fabrics.

/// Self-owning rig for the fault sweep (the plain Rig above holds its
/// engine by value and is irregular-only).
struct FaultRig {
  std::string name;
  std::unique_ptr<topo::Topology> topology;
  std::unique_ptr<routing::UpDownRouter> router;
  std::unique_ptr<routing::RouteTable> routes;
  core::Chain cco;
};

FaultRig make_fault_rig(bool fat_tree) {
  FaultRig rig;
  if (fat_tree) {
    topo::FatTreeConfig cfg;  // 8 edge x 4 spine x 8 hosts = 64
    cfg.trunk = 2;  // trunked uplinks: the fabric's redundancy headline
    rig.name = "fat_tree";
    rig.topology =
        std::make_unique<topo::Topology>(topo::make_fat_tree(cfg));
    rig.router = std::make_unique<routing::UpDownRouter>(
        rig.topology->switches(), topo::fat_tree_levels(cfg));
  } else {
    rig.name = "irregular";
    sim::Rng rng{3};
    rig.topology = std::make_unique<topo::Topology>(
        topo::make_irregular(topo::IrregularConfig{}, rng));
    rig.router =
        std::make_unique<routing::UpDownRouter>(rig.topology->switches());
  }
  rig.routes =
      std::make_unique<routing::RouteTable>(*rig.topology, *rig.router);
  rig.cco = core::cco_ordering(*rig.topology, *rig.router);
  return rig;
}

struct FaultPoint {
  std::string rig;
  collectives::CollectiveKind kind = collectives::CollectiveKind::kBroadcast;
  double rate = 0.0;
  double delivery_ratio = 0.0;
  double delivery_no_repair = 0.0;  ///< repair + reroute disabled
  double latency_us = 0.0;  ///< mean over ops that delivered anything
  double repairs_per_op = 0.0;
  int complete = 0;
  int partial = 0;
  int failed = 0;
};

FaultPoint sweep_collective(const FaultRig& rig,
                            collectives::CollectiveKind kind, double rate,
                            int reps) {
  constexpr std::int32_t n = 32;
  constexpr std::int32_t m = 4;
  const auto choice = core::optimal_k(n, m);
  FaultPoint pt;
  pt.rig = rig.name;
  pt.kind = kind;
  pt.rate = rate;
  double ratio_sum = 0.0, ratio_nr_sum = 0.0, lat_sum = 0.0, repairs = 0.0;
  int lat_count = 0;
  for (int rep = 0; rep < reps; ++rep) {
    // Same participants and tree at every fault rate; only the plan
    // varies across rates, so the curves are paired per rep.
    sim::Rng rng{static_cast<std::uint64_t>(rep) * 7 + 5};
    const auto draw = rng.sample_without_replacement(
        static_cast<std::size_t>(rig.topology->num_hosts()),
        static_cast<std::size_t>(n));
    std::vector<topo::HostId> dests;
    for (std::size_t i = 1; i < draw.size(); ++i) {
      dests.push_back(static_cast<topo::HostId>(draw[i]));
    }
    const auto members = core::arrange_participants(
        rig.cco, static_cast<topo::HostId>(draw.front()), dests);
    const auto tree =
        core::HostTree::bind(core::make_kbinomial(n, choice.k), members);

    net::NetworkConfig netcfg;
    if (rate > 0.0) {
      // Coupled fault draws (same scheme as bench_fault_tolerance): one
      // uniform and one fault time per fabric element per rep, shared
      // across rates, so lower-rate fault sets nest inside higher-rate
      // ones and the degradation curves are monotone by construction.
      sim::Rng fault_rng{0xC011EC7 + static_cast<std::uint64_t>(rep) * 131};
      const auto& g = rig.topology->switches();
      // Link faults only: switch deaths remove unequal host counts on
      // the two fabrics (a fat-tree edge switch carries 8 hosts, an
      // irregular switch 4), which would compare fabric *granularity*
      // rather than the path-diversity story this sweep guards.
      for (topo::LinkId e = 0; e < g.num_edges(); ++e) {
        const double u = fault_rng.next_double();
        const double at = fault_rng.next_double() * 150.0;
        if (u < rate) netcfg.faults.link_down(sim::Time::us(at), e);
      }
    }

    collectives::CollectiveEngine::Config cfg;
    cfg.network = netcfg;  // degrade-and-continue is the default mode
    const collectives::CollectiveEngine engine{*rig.topology, *rig.routes,
                                               cfg};
    const auto r = engine.run(kind, tree, m);
    ratio_sum += r.delivery_ratio();
    repairs += r.repairs;
    switch (r.outcome) {
      case mcast::Outcome::kComplete: ++pt.complete; break;
      case mcast::Outcome::kPartial: ++pt.partial; break;
      case mcast::Outcome::kFailed: ++pt.failed; break;
    }
    if (r.delivery_ratio() > 0.0) {
      lat_sum += r.latency.as_us();
      ++lat_count;
    }

    collectives::CollectiveEngine::Config nr_cfg = cfg;
    nr_cfg.repair.max_attempts = 0;
    nr_cfg.repair.reroute = false;
    const collectives::CollectiveEngine nr_engine{*rig.topology, *rig.routes,
                                                  nr_cfg};
    ratio_nr_sum += nr_engine.run(kind, tree, m).delivery_ratio();
  }
  pt.delivery_ratio = ratio_sum / reps;
  pt.delivery_no_repair = ratio_nr_sum / reps;
  pt.latency_us = lat_count > 0 ? lat_sum / lat_count : 0.0;
  pt.repairs_per_op = repairs / reps;
  return pt;
}

std::string git_rev() {
  std::string rev = "unknown";
  if (FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, p) != nullptr) {
      rev.assign(buf);
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
        rev.pop_back();
      }
    }
    pclose(p);
  }
  return rev;
}

}  // namespace

int main() {
  std::printf("=== Extension: collectives with packetization + smart NI "
              "support ===\n\n");
  const int num_seeds = std::getenv("NIMCAST_QUICK") != nullptr ? 2 : 6;

  std::printf("gather vs in-network reduce vs allreduce (64-host irregular "
              "nets, optimal trees, avg of %d wirings):\n\n", num_seeds);
  harness::Table table{{"n", "m", "gather (us)", "reduce (us)",
                        "allreduce (us)", "gather/reduce"}};
  for (const std::int32_t n : {16, 64}) {
    for (const std::int32_t m : {1, 4, 16}) {
      std::vector<double> g;
      std::vector<double> r;
      std::vector<double> a;
      const std::int32_t k = core::optimal_k(n, m).k;
      for (int seed = 0; seed < num_seeds; ++seed) {
        const Rig rig{static_cast<std::uint64_t>(seed)};
        const auto tree = rig.tree(n, k);
        g.push_back(rig.engine
                        .run(collectives::CollectiveKind::kGather, tree, m)
                        .latency.as_us());
        r.push_back(rig.engine
                        .run(collectives::CollectiveKind::kReduce, tree, m)
                        .latency.as_us());
        a.push_back(rig.engine
                        .run(collectives::CollectiveKind::kAllReduce, tree, m)
                        .latency.as_us());
      }
      const double gm = mean_latency(g);
      const double rm = mean_latency(r);
      const double am = mean_latency(a);
      table.add_row({harness::Table::num(std::int64_t{n}),
                     harness::Table::num(std::int64_t{m}),
                     harness::Table::num(gm), harness::Table::num(rm),
                     harness::Table::num(am),
                     harness::Table::num(gm / rm, 2)});
      bench::expect_shape(rm < gm,
                          "in-network reduce beats gather everywhere");
      bench::expect_shape(am > rm, "allreduce costs more than reduce");
      if (n == 64 && m >= 4) {
        bench::expect_shape(gm / rm > 2.0,
                            "combining pays off >2x at scale");
      }
    }
  }
  table.print(std::cout);
  table.write_csv("collectives_reduce.csv");

  std::printf("\nscatter: optimal k-binomial tree vs source-direct star "
              "(n=64):\n\n");
  harness::Table t2{{"m", "tree scatter (us)", "direct scatter (us)"}};
  for (const std::int32_t m : {1, 4, 16}) {
    std::vector<double> tree_lat;
    std::vector<double> star_lat;
    const std::int32_t k = core::optimal_k(64, m).k;
    for (int seed = 0; seed < num_seeds; ++seed) {
      const Rig rig{static_cast<std::uint64_t>(seed)};
      tree_lat.push_back(
          rig.engine
              .run(collectives::CollectiveKind::kScatter, rig.tree(64, k), m)
              .latency.as_us());
      star_lat.push_back(
          rig.engine
              .run(collectives::CollectiveKind::kScatter, rig.star(64), m)
              .latency.as_us());
    }
    t2.add_row({harness::Table::num(std::int64_t{m}),
                harness::Table::num(mean_latency(tree_lat)),
                harness::Table::num(mean_latency(star_lat))});
  }
  t2.print(std::cout);
  std::printf(
      "\n(scatter moves distinct data, so the tree repeats every byte at\n"
      "every level — with a cheap source NI the direct star competes;\n"
      "the numbers above quantify that trade-off on this system.)\n");

  // -------------------------------------------------------------------------
  // Degraded-mode fault sweep: every kind under random link/switch
  // failures, on the irregular 64-host testbed and the 64-host fat-tree.
  // The shape guarded: zero-fault runs deliver exactly, delivery degrades
  // monotonically with the fault rate, and the fat-tree's path diversity
  // dominates the irregular fabric at every rate.
  const int fault_reps = std::getenv("NIMCAST_QUICK") != nullptr ? 3 : 8;
  std::printf("\ncollectives under link faults (n=32, m=4, %d reps, "
              "degrade-and-continue):\n\n",
              fault_reps);
  const std::vector<double> rates = {0.0, 0.05, 0.1, 0.2, 0.3, 0.4};
  constexpr collectives::CollectiveKind kKinds[] = {
      collectives::CollectiveKind::kBroadcast,
      collectives::CollectiveKind::kScatter,
      collectives::CollectiveKind::kGather,
      collectives::CollectiveKind::kReduce,
      collectives::CollectiveKind::kAllReduce};

  harness::Table t3{{"rig", "kind", "fault rate", "delivery", "no-repair",
                     "latency (us)", "repairs/op", "C/P/F"}};
  std::vector<FaultPoint> points;
  for (const bool fat : {false, true}) {
    const FaultRig rig = make_fault_rig(fat);
    for (const auto kind : kKinds) {
      for (const double rate : rates) {
        FaultPoint pt = sweep_collective(rig, kind, rate, fault_reps);
        t3.add_row({rig.name, collectives::to_string(kind),
                    harness::Table::num(rate, 2),
                    harness::Table::num(pt.delivery_ratio, 3),
                    harness::Table::num(pt.delivery_no_repair, 3),
                    harness::Table::num(pt.latency_us),
                    harness::Table::num(pt.repairs_per_op, 2),
                    std::to_string(pt.complete) + "/" +
                        std::to_string(pt.partial) + "/" +
                        std::to_string(pt.failed)});
        points.push_back(std::move(pt));
      }
    }
  }
  t3.print(std::cout);
  t3.write_csv("collective_faults.csv");

  const std::size_t per_curve = rates.size();
  const std::size_t curves_per_rig = std::size(kKinds);
  for (std::size_t c = 0; c < points.size() / per_curve; ++c) {
    const FaultPoint* curve = &points[c * per_curve];
    bench::expect_shape(curve[0].delivery_ratio == 1.0,
                        "zero-fault collectives deliver everywhere, exactly");
    for (std::size_t i = 1; i < per_curve; ++i) {
      bench::expect_shape(
          curve[i].delivery_ratio <= curve[i - 1].delivery_ratio + 0.02,
          "collective delivery degrades monotonically with fault rate");
    }
    for (std::size_t i = 0; i < per_curve; ++i) {
      bench::expect_shape(
          curve[i].delivery_ratio >= curve[i].delivery_no_repair - 1e-9,
          "tree repair never delivers less than no repair");
    }
  }
  for (std::size_t c = 0; c < curves_per_rig; ++c) {
    for (std::size_t i = 0; i < per_curve; ++i) {
      const FaultPoint& irr = points[c * per_curve + i];
      const FaultPoint& fat = points[(curves_per_rig + c) * per_curve + i];
      bench::expect_shape(
          fat.delivery_ratio >= irr.delivery_ratio - 1e-9,
          "fat-tree path diversity dominates the irregular fabric");
    }
  }

  const char* out_path = std::getenv("NIMCAST_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_collective_faults.json";
  if (FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"collective_faults\",\n"
                 "  \"config\": {\n"
                 "    \"quick\": %s,\n"
                 "    \"reps\": %d,\n"
                 "    \"rigs\": \"irregular 64-host seed 3 + fat-tree "
                 "8x4x8 trunk 2, n=32, m=4, degrade-and-continue, repair "
                 "max_attempts=2, link faults only\",\n"
                 "    \"window_us\": 150\n"
                 "  },\n"
                 "  \"points\": [\n",
                 fault_reps == 3 ? "true" : "false", fault_reps);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const FaultPoint& p = points[i];
      std::fprintf(out,
                   "    {\"rig\": \"%s\", \"kind\": \"%s\", \"rate\": %.3f, "
                   "\"delivery_ratio\": %.6f, \"delivery_no_repair\": %.6f, "
                   "\"latency_us\": %.3f, "
                   "\"repairs_per_op\": %.3f, \"complete\": %d, "
                   "\"partial\": %d, \"failed\": %d}%s\n",
                   p.rig.c_str(), collectives::to_string(p.kind), p.rate,
                   p.delivery_ratio, p.delivery_no_repair, p.latency_us,
                   p.repairs_per_op, p.complete, p.partial, p.failed,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"git_rev\": \"%s\"\n"
                 "}\n",
                 git_rev().c_str());
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    bench::expect_shape(false, std::string("could not write ") + out_path);
  }

  return bench::finish("bench_collectives");
}
