// Extension experiment: streaming broadcast at saturation. A sustained
// stream of fixed-size packets leaves one source for every other host,
// packet g dispatched down rotation tree g mod R — R channel-decorrelated
// k-binomial trees planned over distinct up*/down* route alternatives
// (core::plan_rotation). The paper's fixed tree (R = 1) pins the
// per-packet NI forwarding cost t_rcv + k*t_snd on the same interior
// hosts for every packet; rotating the tree amortizes that hot spot
// across members, so sustained flits/sec rises with R until the fabric,
// not any one NI, is the bottleneck.
//
// Member fan-out is the latency-SLO choice optimal_k(n, m_ref = 4).k —
// one k across all R so the comparison is apples-to-apples (Theorem 3
// over the whole stream would collapse to the chain: throughput-optimal
// but O(n) per-packet depth).
//
// Shapes guarded: R > 1 sustains at least the R = 1 throughput at
// saturation on every rig, and rotation pays >= 1.3x at R = 4 on at
// least one rig. Output: results/BENCH_streaming.json (byte-identical
// across runs; CI double-runs and cmps it).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "core/rotation.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/fat_tree.hpp"
#include "topology/irregular.hpp"

using namespace nimcast;

namespace {

struct RigSpec {
  std::string name;
  harness::TestbedSpec spec;
  std::vector<std::int32_t> stream_sizes;  ///< last entry = saturation
};

struct StreamPoint {
  std::string rig;
  std::int32_t hosts = 0;
  std::int32_t rotation = 1;
  std::int32_t stream_packets = 0;
  std::int32_t k = 1;
  double flits_per_us = 0.0;
  double makespan_us = 0.0;
  double p99_gap_us = 0.0;
  double overlap_mean = 0.0;
  double rotation_used = 0.0;
};

/// One representative rotation set per (rig, R) for the JSON overlap
/// report: the plan over the rig's CCO chain rooted at its head. The
/// measured sweep plans per-source; this fixed plan is what the
/// overlap_json fractions in the output describe.
struct PlanRig {
  std::unique_ptr<topo::Topology> topology;
  std::unique_ptr<routing::UpDownRouter> router;
  std::unique_ptr<routing::RouteTable> routes;
  core::Chain cco;
};

PlanRig make_plan_rig(const harness::TestbedSpec& spec) {
  PlanRig rig;
  if (spec.fabric == harness::FabricKind::kIrregular) {
    topo::IrregularConfig cfg = spec.irregular;
    cfg.num_hosts = spec.num_hosts;
    sim::Rng rng{spec.seed};
    rig.topology =
        std::make_unique<topo::Topology>(topo::make_irregular(cfg, rng));
    rig.router =
        std::make_unique<routing::UpDownRouter>(rig.topology->switches());
  } else {
    rig.topology =
        std::make_unique<topo::Topology>(topo::make_fat_tree(spec.fat_tree));
    rig.router = std::make_unique<routing::UpDownRouter>(
        rig.topology->switches(), topo::fat_tree_levels(spec.fat_tree));
  }
  rig.routes =
      std::make_unique<routing::RouteTable>(*rig.topology, *rig.router);
  rig.cco = core::cco_ordering(*rig.topology, *rig.router);
  return rig;
}

core::RotationPlan plan_for(const PlanRig& rig, std::int32_t rotation,
                            std::int32_t k) {
  core::RotationConfig rc;
  rc.rotation_trees = rotation;
  rc.fanout_bound = k;
  return core::plan_rotation(*rig.topology, *rig.routes, *rig.router, rig.cco,
                             rc);
}

}  // namespace

int main() {
  const bool quick = std::getenv("NIMCAST_QUICK") != nullptr;
  std::printf("=== Extension: streaming broadcast over rotated "
              "edge-decorrelated k-binomial trees ===\n\n");

  const std::vector<std::int32_t> rotations = {1, 2, 4, 8};
  std::vector<RigSpec> rigs;
  {
    // The largest S is the saturation point; it must be big enough that
    // the per-packet steady-state period, not the pipeline-fill latency,
    // dominates the makespan (startup is ~60 us, the fixed-tree period
    // is 8 us/packet).
    const std::vector<std::int32_t> sizes =
        quick ? std::vector<std::int32_t>{16, 64}
              : std::vector<std::int32_t>{16, 64, 256};

    RigSpec irr{"irregular64", harness::TestbedSpec::make_irregular(64),
                sizes};
    irr.spec.num_topologies = quick ? 2 : 5;
    irr.spec.sets_per_topology = quick ? 2 : 3;
    rigs.push_back(std::move(irr));

    RigSpec f64{"fat_tree64", harness::TestbedSpec::make_fat_tree(64), sizes};
    f64.spec.sets_per_topology = quick ? 2 : 3;
    rigs.push_back(std::move(f64));

    if (!quick) {
      RigSpec f256{"fat_tree256", harness::TestbedSpec::make_fat_tree(256),
                   {16, 64, 256}};
      f256.spec.sets_per_topology = 2;
      rigs.push_back(std::move(f256));

      RigSpec f1k{"fat_tree1024", harness::TestbedSpec::make_fat_tree(1024),
                  {16, 64}};
      f1k.spec.sets_per_topology = 2;
      rigs.push_back(std::move(f1k));
    }
  }

  harness::Table table{{"rig", "hosts", "R", "S", "k", "flits/us",
                        "makespan (us)", "p99 gap (us)", "overlap"}};
  std::vector<StreamPoint> points;
  std::vector<std::string> rotation_sets;  // JSON objects, rig-major

  for (const RigSpec& rig : rigs) {
    const harness::Testbed testbed{rig.spec};
    const std::int32_t n = rig.spec.num_hosts;
    const std::int32_t k = core::optimal_k(n, 4).k;
    const PlanRig plan_rig = make_plan_rig(rig.spec);
    for (const std::int32_t rotation : rotations) {
      rotation_sets.push_back(
          "{\"rig\": \"" + rig.name + "\", \"overlap\": " +
          bench::overlap_json(plan_for(plan_rig, rotation, k)) + "}");
      for (const std::int32_t S : rig.stream_sizes) {
        const harness::StreamingPoint p =
            testbed.measure_streaming(S, rotation, k);
        StreamPoint pt;
        pt.rig = rig.name;
        pt.hosts = n;
        pt.rotation = rotation;
        pt.stream_packets = S;
        pt.k = k;
        pt.flits_per_us = p.flits_per_us.mean();
        pt.makespan_us = p.makespan_us.mean();
        pt.p99_gap_us = p.p99_gap_us.mean();
        pt.overlap_mean = p.overlap_mean.mean();
        pt.rotation_used = p.rotation_used.mean();
        table.add_row({pt.rig, harness::Table::num(std::int64_t{pt.hosts}),
                       harness::Table::num(std::int64_t{pt.rotation}),
                       harness::Table::num(std::int64_t{pt.stream_packets}),
                       harness::Table::num(std::int64_t{pt.k}),
                       harness::Table::num(pt.flits_per_us, 2),
                       harness::Table::num(pt.makespan_us),
                       harness::Table::num(pt.p99_gap_us, 2),
                       harness::Table::num(pt.overlap_mean, 3)});
        points.push_back(std::move(pt));
      }
    }
  }
  table.print(std::cout);

  // Shape checks at each rig's saturation point (largest S).
  const auto at = [&](const std::string& rig, std::int32_t rotation,
                      std::int32_t S) -> const StreamPoint* {
    for (const StreamPoint& p : points) {
      if (p.rig == rig && p.rotation == rotation && p.stream_packets == S) {
        return &p;
      }
    }
    return nullptr;
  };
  double best_r4_gain = 0.0;
  for (const RigSpec& rig : rigs) {
    const std::int32_t sat = rig.stream_sizes.back();
    const StreamPoint* base = at(rig.name, 1, sat);
    for (const std::int32_t rotation : rotations) {
      if (rotation == 1) continue;
      const StreamPoint* p = at(rig.name, rotation, sat);
      bench::expect_shape(
          p != nullptr && base != nullptr &&
              p->flits_per_us >= base->flits_per_us,
          rig.name + ": R=" + std::to_string(rotation) +
              " sustains at least the fixed-tree throughput at saturation");
      if (rotation == 4 && p != nullptr && base != nullptr) {
        best_r4_gain =
            std::max(best_r4_gain, p->flits_per_us / base->flits_per_us);
      }
    }
    // Rotation trades in-order smoothness for throughput: packets of a
    // window complete down trees of different depth, so in-order
    // completions arrive in bursts whose p99 gap is ~(depth spread +
    // R * period) — a constant, not a backlog that grows with S. Guard
    // both properties: bounded relative to the fixed tree's gap, and
    // flat in stream length.
    const StreamPoint* r4 = at(rig.name, 4, sat);
    if (r4 != nullptr && base != nullptr && base->p99_gap_us > 0.0) {
      bench::expect_shape(r4->p99_gap_us <= 8.0 * base->p99_gap_us,
                          rig.name + ": rotation keeps the in-order p99 gap "
                                     "within 8x of the fixed tree");
    }
    const StreamPoint* r4_short = at(rig.name, 4, rig.stream_sizes.front());
    if (r4 != nullptr && r4_short != nullptr && r4_short->p99_gap_us > 0.0) {
      bench::expect_shape(
          r4->p99_gap_us <= 1.5 * r4_short->p99_gap_us,
          rig.name + ": the rotation in-order p99 gap is flat in stream "
                     "length (bounded jitter, not a growing backlog)");
    }
  }
  bench::expect_shape(best_r4_gain >= 1.3,
                      "rotation R=4 sustains >= 1.3x the fixed-tree "
                      "throughput at saturation on at least one rig "
                      "(best " + std::to_string(best_r4_gain) + ")");

  const char* out_path = std::getenv("NIMCAST_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_streaming.json";
  if (FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"streaming_broadcast\",\n"
                 "  \"config\": {\n"
                 "    \"quick\": %s,\n"
                 "    \"k_rule\": \"optimal_k(n, m_ref=4)\",\n"
                 "    \"flit_bytes\": 8,\n"
                 "    \"rotations\": [1, 2, 4, 8]\n"
                 "  },\n"
                 "  \"rotation_sets\": [\n",
                 quick ? "true" : "false");
    for (std::size_t i = 0; i < rotation_sets.size(); ++i) {
      std::fprintf(out, "    %s%s\n", rotation_sets[i].c_str(),
                   i + 1 < rotation_sets.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const StreamPoint& p = points[i];
      std::fprintf(
          out,
          "    {\"rig\": \"%s\", \"hosts\": %d, \"rotation\": %d, "
          "\"stream_packets\": %d, \"k\": %d, \"flits_per_us\": %.6f, "
          "\"makespan_us\": %.3f, \"p99_gap_us\": %.3f, "
          "\"overlap_mean\": %.6f, \"rotation_used\": %.3f}%s\n",
          p.rig.c_str(), p.hosts, p.rotation, p.stream_packets, p.k,
          p.flits_per_us, p.makespan_us, p.p99_gap_us, p.overlap_mean,
          p.rotation_used, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"git_rev\": \"%s\"\n"
                 "}\n",
                 bench::git_rev().c_str());
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    bench::expect_shape(false, std::string("could not write ") + out_path);
  }

  return bench::finish("bench_streaming_broadcast");
}
