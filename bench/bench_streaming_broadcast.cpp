// Extension experiment: streaming broadcast at saturation. A sustained
// stream of fixed-size packets leaves one source for every other host,
// packet g dispatched down rotation tree g mod R — R channel-decorrelated
// k-binomial trees planned over distinct up*/down* route alternatives
// (core::plan_rotation). The paper's fixed tree (R = 1) pins the
// per-packet NI forwarding cost t_rcv + k*t_snd on the same interior
// hosts for every packet; rotating the tree amortizes that hot spot
// across members, so sustained flits/sec rises with R until the fabric,
// not any one NI, is the bottleneck.
//
// Member fan-out is the latency-SLO choice optimal_k(n, m_ref = 4).k —
// one k across all R so the comparison is apples-to-apples (Theorem 3
// over the whole stream would collapse to the chain: throughput-optimal
// but O(n) per-packet depth).
//
// A second section compares the static g mod R rotation against the
// congestion-aware adaptive selector (Config::selection = kAdaptive) on
// one fixed irregular64 plan under four fabrics: clean, contended
// (background unicast flows burying two members' relays), lossy
// (the same flows plus packet loss), and a mid-stream link fault on a
// channel only one member crosses.
//
// Shapes guarded: R > 1 sustains at least the R = 1 throughput at
// saturation on every rig, and rotation pays >= 1.3x at R = 4 on at
// least one rig; adaptive selection is byte-identical to static on the
// clean fabric and strictly faster on the three perturbed ones.
// Output: results/BENCH_streaming.json (byte-identical across runs; CI
// double-runs and cmps it).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/optimal_k.hpp"
#include "mcast/multicast_engine.hpp"
#include "core/ordering.hpp"
#include "core/rotation.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/fat_tree.hpp"
#include "topology/irregular.hpp"

using namespace nimcast;

namespace {

struct RigSpec {
  std::string name;
  harness::TestbedSpec spec;
  std::vector<std::int32_t> stream_sizes;  ///< last entry = saturation
};

struct StreamPoint {
  std::string rig;
  std::int32_t hosts = 0;
  std::int32_t rotation = 1;
  std::int32_t stream_packets = 0;
  std::int32_t k = 1;
  double flits_per_us = 0.0;
  double makespan_us = 0.0;
  double p99_gap_us = 0.0;
  double overlap_mean = 0.0;
  double rotation_used = 0.0;
};

/// One representative rotation set per (rig, R) for the JSON overlap
/// report: the plan over the rig's CCO chain rooted at its head. The
/// measured sweep plans per-source; this fixed plan is what the
/// overlap_json fractions in the output describe.
struct PlanRig {
  std::unique_ptr<topo::Topology> topology;
  std::unique_ptr<routing::UpDownRouter> router;
  std::unique_ptr<routing::RouteTable> routes;
  core::Chain cco;
};

PlanRig make_plan_rig(const harness::TestbedSpec& spec) {
  PlanRig rig;
  if (spec.fabric == harness::FabricKind::kIrregular) {
    topo::IrregularConfig cfg = spec.irregular;
    cfg.num_hosts = spec.num_hosts;
    sim::Rng rng{spec.seed};
    rig.topology =
        std::make_unique<topo::Topology>(topo::make_irregular(cfg, rng));
    rig.router =
        std::make_unique<routing::UpDownRouter>(rig.topology->switches());
  } else {
    rig.topology =
        std::make_unique<topo::Topology>(topo::make_fat_tree(spec.fat_tree));
    rig.router = std::make_unique<routing::UpDownRouter>(
        rig.topology->switches(), topo::fat_tree_levels(spec.fat_tree));
  }
  rig.routes =
      std::make_unique<routing::RouteTable>(*rig.topology, *rig.router);
  rig.cco = core::cco_ordering(*rig.topology, *rig.router);
  return rig;
}

core::RotationPlan plan_for(const PlanRig& rig, std::int32_t rotation,
                            std::int32_t k) {
  core::RotationConfig rc;
  rc.rotation_trees = rotation;
  rc.fanout_bound = k;
  return core::plan_rotation(*rig.topology, *rig.routes, *rig.router, rig.cco,
                             rc);
}

/// The first hop below `member`'s virtual root: the host all of this
/// member's packets funnel through.
topo::HostId relay_of(const core::RotationMember& member) {
  return member.tree.children.at(member.tree.root).front();
}

/// Deepest first-child descent from the relay — a destination whose
/// route shares the member's subtree wires.
topo::HostId deep_leaf_of(const core::RotationMember& member) {
  topo::HostId h = relay_of(member);
  while (!member.tree.children.at(h).empty()) {
    h = member.tree.children.at(h).front();
  }
  return h;
}

/// Background unicasts that bury the relays of members 1 and 2 under
/// `packets` queued sends each — the interference the adaptive selector
/// is supposed to detect and dodge.
std::vector<mcast::MulticastEngine::Config::BackgroundFlow> relay_flows(
    const core::RotationPlan& plan, std::int32_t packets) {
  std::vector<mcast::MulticastEngine::Config::BackgroundFlow> flows;
  for (const std::size_t m : {std::size_t{1}, std::size_t{2}}) {
    mcast::MulticastEngine::Config::BackgroundFlow flow;
    flow.src = relay_of(plan.members[m]);
    flow.dst = deep_leaf_of(plan.members[m]);
    flow.packets = packets;
    flow.start = sim::Time::zero();
    flows.push_back(flow);
  }
  return flows;
}

/// A link that member 1's footprint crosses and no other member's does,
/// so downing it breaks exactly one rotation member. kInvalidId when
/// the plan's footprints are too entangled (never on the bench rig).
topo::LinkId link_unique_to_member_1(const core::RotationPlan& plan,
                                     std::int32_t vcs) {
  for (const std::int32_t chan : plan.members[1].footprint) {
    bool shared = false;
    for (std::size_t m = 0; m < plan.members.size() && !shared; ++m) {
      if (m == 1) continue;
      const auto& other = plan.members[m].footprint;
      shared = std::binary_search(other.begin(), other.end(), chan);
    }
    if (!shared) return chan / (2 * vcs);
  }
  return topo::kInvalidId;
}

struct ScenarioPoint {
  std::string name;
  double static_flits = 0.0;
  double adaptive_flits = 0.0;
  double static_imbalance = 1.0;
  double adaptive_imbalance = 1.0;
  std::int64_t snapshots = 0;
};

double member_imbalance(const std::vector<std::int64_t>& member_packets) {
  std::int64_t total = 0;
  std::int64_t peak = 0;
  for (const std::int64_t n : member_packets) {
    total += n;
    peak = std::max(peak, n);
  }
  if (total <= 0) return 1.0;
  return static_cast<double>(peak) *
         static_cast<double>(member_packets.size()) /
         static_cast<double>(total);
}

}  // namespace

int main() {
  const bool quick = std::getenv("NIMCAST_QUICK") != nullptr;
  std::printf("=== Extension: streaming broadcast over rotated "
              "edge-decorrelated k-binomial trees ===\n\n");

  const std::vector<std::int32_t> rotations = {1, 2, 4, 8};
  std::vector<RigSpec> rigs;
  {
    // The largest S is the saturation point; it must be big enough that
    // the per-packet steady-state period, not the pipeline-fill latency,
    // dominates the makespan (startup is ~60 us, the fixed-tree period
    // is 8 us/packet).
    const std::vector<std::int32_t> sizes =
        quick ? std::vector<std::int32_t>{16, 64}
              : std::vector<std::int32_t>{16, 64, 256};

    RigSpec irr{"irregular64", harness::TestbedSpec::make_irregular(64),
                sizes};
    irr.spec.num_topologies = quick ? 2 : 5;
    irr.spec.sets_per_topology = quick ? 2 : 3;
    rigs.push_back(std::move(irr));

    RigSpec f64{"fat_tree64", harness::TestbedSpec::make_fat_tree(64), sizes};
    f64.spec.sets_per_topology = quick ? 2 : 3;
    rigs.push_back(std::move(f64));

    if (!quick) {
      RigSpec f256{"fat_tree256", harness::TestbedSpec::make_fat_tree(256),
                   {16, 64, 256}};
      f256.spec.sets_per_topology = 2;
      rigs.push_back(std::move(f256));

      RigSpec f1k{"fat_tree1024", harness::TestbedSpec::make_fat_tree(1024),
                  {16, 64}};
      f1k.spec.sets_per_topology = 2;
      rigs.push_back(std::move(f1k));
    }
  }

  harness::Table table{{"rig", "hosts", "R", "S", "k", "flits/us",
                        "makespan (us)", "p99 gap (us)", "overlap"}};
  std::vector<StreamPoint> points;
  std::vector<std::string> rotation_sets;  // JSON objects, rig-major

  for (const RigSpec& rig : rigs) {
    const harness::Testbed testbed{rig.spec};
    const std::int32_t n = rig.spec.num_hosts;
    const std::int32_t k = core::optimal_k(n, 4).k;
    const PlanRig plan_rig = make_plan_rig(rig.spec);
    for (const std::int32_t rotation : rotations) {
      rotation_sets.push_back(
          "{\"rig\": \"" + rig.name + "\", \"overlap\": " +
          bench::overlap_json(plan_for(plan_rig, rotation, k)) + "}");
      for (const std::int32_t S : rig.stream_sizes) {
        const harness::StreamingPoint p =
            testbed.measure_streaming(S, rotation, k);
        StreamPoint pt;
        pt.rig = rig.name;
        pt.hosts = n;
        pt.rotation = rotation;
        pt.stream_packets = S;
        pt.k = k;
        pt.flits_per_us = p.flits_per_us.mean();
        pt.makespan_us = p.makespan_us.mean();
        pt.p99_gap_us = p.p99_gap_us.mean();
        pt.overlap_mean = p.overlap_mean.mean();
        pt.rotation_used = p.rotation_used.mean();
        table.add_row({pt.rig, harness::Table::num(std::int64_t{pt.hosts}),
                       harness::Table::num(std::int64_t{pt.rotation}),
                       harness::Table::num(std::int64_t{pt.stream_packets}),
                       harness::Table::num(std::int64_t{pt.k}),
                       harness::Table::num(pt.flits_per_us, 2),
                       harness::Table::num(pt.makespan_us),
                       harness::Table::num(pt.p99_gap_us, 2),
                       harness::Table::num(pt.overlap_mean, 3)});
        points.push_back(std::move(pt));
      }
    }
  }
  table.print(std::cout);

  // Shape checks at each rig's saturation point (largest S).
  const auto at = [&](const std::string& rig, std::int32_t rotation,
                      std::int32_t S) -> const StreamPoint* {
    for (const StreamPoint& p : points) {
      if (p.rig == rig && p.rotation == rotation && p.stream_packets == S) {
        return &p;
      }
    }
    return nullptr;
  };
  double best_r4_gain = 0.0;
  for (const RigSpec& rig : rigs) {
    const std::int32_t sat = rig.stream_sizes.back();
    const StreamPoint* base = at(rig.name, 1, sat);
    for (const std::int32_t rotation : rotations) {
      if (rotation == 1) continue;
      const StreamPoint* p = at(rig.name, rotation, sat);
      bench::expect_shape(
          p != nullptr && base != nullptr &&
              p->flits_per_us >= base->flits_per_us,
          rig.name + ": R=" + std::to_string(rotation) +
              " sustains at least the fixed-tree throughput at saturation");
      if (rotation == 4 && p != nullptr && base != nullptr) {
        best_r4_gain =
            std::max(best_r4_gain, p->flits_per_us / base->flits_per_us);
      }
    }
    // Rotation trades in-order smoothness for throughput: packets of a
    // window complete down trees of different depth, so in-order
    // completions arrive in bursts whose p99 gap is ~(depth spread +
    // R * period) — a constant, not a backlog that grows with S. Guard
    // both properties: bounded relative to the fixed tree's gap, and
    // flat in stream length.
    const StreamPoint* r4 = at(rig.name, 4, sat);
    if (r4 != nullptr && base != nullptr && base->p99_gap_us > 0.0) {
      bench::expect_shape(r4->p99_gap_us <= 8.0 * base->p99_gap_us,
                          rig.name + ": rotation keeps the in-order p99 gap "
                                     "within 8x of the fixed tree");
    }
    const StreamPoint* r4_short = at(rig.name, 4, rig.stream_sizes.front());
    if (r4 != nullptr && r4_short != nullptr && r4_short->p99_gap_us > 0.0) {
      bench::expect_shape(
          r4->p99_gap_us <= 1.5 * r4_short->p99_gap_us,
          rig.name + ": the rotation in-order p99 gap is flat in stream "
                     "length (bounded jitter, not a growing backlog)");
    }
  }
  bench::expect_shape(best_r4_gain >= 1.3,
                      "rotation R=4 sustains >= 1.3x the fixed-tree "
                      "throughput at saturation on at least one rig "
                      "(best " + std::to_string(best_r4_gain) + ")");

  // --- Static vs adaptive member selection under interference. One
  // fixed irregular64 plan (R = 4), engine driven directly so the
  // scenarios control exactly what else is on the fabric.
  std::printf("\n--- member selection: static g mod R vs congestion-aware "
              "adaptive ---\n\n");
  const harness::TestbedSpec sel_spec =
      harness::TestbedSpec::make_irregular(64);
  const PlanRig sel_rig = make_plan_rig(sel_spec);
  const std::int32_t sel_k = core::optimal_k(64, 4).k;
  const core::RotationPlan sel_plan = plan_for(sel_rig, 4, sel_k);
  const std::int32_t sel_S = 64;
  const std::int32_t flow_packets = 400;

  struct Scenario {
    std::string name;
    std::vector<mcast::MulticastEngine::Config::BackgroundFlow> background;
    double loss_rate = 0.0;
    topo::LinkId faulted_link = topo::kInvalidId;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"clean", {}, 0.0, topo::kInvalidId});
  scenarios.push_back(
      {"contended", relay_flows(sel_plan, flow_packets), 0.0,
       topo::kInvalidId});
  scenarios.push_back(
      {"lossy", relay_flows(sel_plan, flow_packets), 0.02, topo::kInvalidId});
  const topo::LinkId unique_link =
      link_unique_to_member_1(sel_plan, sel_rig.routes->virtual_channels());
  bench::expect_shape(unique_link != topo::kInvalidId,
                      "the R=4 plan keeps a link unique to member 1 "
                      "(footprint decorrelation)");
  scenarios.push_back({"link_fault", {}, 0.0, unique_link});

  harness::Table sel_table{{"scenario", "static flits/us", "adaptive flits/us",
                            "gain", "adaptive imbalance", "snapshots"}};
  std::vector<ScenarioPoint> scenario_points;
  for (const Scenario& sc : scenarios) {
    ScenarioPoint pt;
    pt.name = sc.name;
    for (const mcast::Selection selection :
         {mcast::Selection::kStatic, mcast::Selection::kAdaptive}) {
      mcast::MulticastEngine::Config cfg;
      cfg.style = mcast::NiStyle::kSmartFpfs;
      cfg.selection = selection;
      cfg.background = sc.background;
      cfg.network.loss_rate = sc.loss_rate;
      if (sc.faulted_link != topo::kInvalidId) {
        cfg.network.faults.link_down(sim::Time::us(50.0), sc.faulted_link);
      }
      const mcast::MulticastEngine engine{*sel_rig.topology, *sel_rig.routes,
                                          cfg};
      const mcast::StreamingResult r = engine.run_streaming(sel_plan, sel_S);
      if (selection == mcast::Selection::kStatic) {
        pt.static_flits = r.flits_per_us;
        pt.static_imbalance = member_imbalance(r.member_packets);
      } else {
        pt.adaptive_flits = r.flits_per_us;
        pt.adaptive_imbalance = member_imbalance(r.member_packets);
        pt.snapshots = r.telemetry_snapshots;
      }
    }
    sel_table.add_row({pt.name, harness::Table::num(pt.static_flits, 2),
                       harness::Table::num(pt.adaptive_flits, 2),
                       harness::Table::num(pt.adaptive_flits /
                                               std::max(pt.static_flits, 1e-9),
                                           3),
                       harness::Table::num(pt.adaptive_imbalance, 3),
                       harness::Table::num(pt.snapshots)});
    scenario_points.push_back(std::move(pt));
  }
  sel_table.print(std::cout);
  for (const ScenarioPoint& pt : scenario_points) {
    if (pt.name == "clean") {
      // Idle fabric: the decisive-signal rule never fires, so adaptive
      // is byte-identical to the static rotation — not merely close.
      bench::expect_shape(pt.adaptive_flits == pt.static_flits,
                          "adaptive selection is byte-identical to static "
                          "on the clean fabric");
    } else {
      bench::expect_shape(
          pt.adaptive_flits > pt.static_flits,
          "adaptive selection beats static under " + pt.name + " (" +
              std::to_string(pt.adaptive_flits) + " vs " +
              std::to_string(pt.static_flits) + " flits/us)");
    }
  }

  const char* out_path = std::getenv("NIMCAST_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_streaming.json";
  if (FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"streaming_broadcast\",\n"
                 "  \"config\": {\n"
                 "    \"quick\": %s,\n"
                 "    \"k_rule\": \"optimal_k(n, m_ref=4)\",\n"
                 "    \"flit_bytes\": 8,\n"
                 "    \"rotations\": [1, 2, 4, 8]\n"
                 "  },\n"
                 "  \"rotation_sets\": [\n",
                 quick ? "true" : "false");
    for (std::size_t i = 0; i < rotation_sets.size(); ++i) {
      std::fprintf(out, "    %s%s\n", rotation_sets[i].c_str(),
                   i + 1 < rotation_sets.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const StreamPoint& p = points[i];
      std::fprintf(
          out,
          "    {\"rig\": \"%s\", \"hosts\": %d, \"rotation\": %d, "
          "\"stream_packets\": %d, \"k\": %d, \"flits_per_us\": %.6f, "
          "\"makespan_us\": %.3f, \"p99_gap_us\": %.3f, "
          "\"overlap_mean\": %.6f, \"rotation_used\": %.3f}%s\n",
          p.rig.c_str(), p.hosts, p.rotation, p.stream_packets, p.k,
          p.flits_per_us, p.makespan_us, p.p99_gap_us, p.overlap_mean,
          p.rotation_used, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"selection_scenarios\": [\n");
    for (std::size_t i = 0; i < scenario_points.size(); ++i) {
      const ScenarioPoint& p = scenario_points[i];
      std::fprintf(
          out,
          "    {\"scenario\": \"%s\", \"static_flits_per_us\": %.6f, "
          "\"adaptive_flits_per_us\": %.6f, \"static_imbalance\": %.3f, "
          "\"adaptive_imbalance\": %.3f, \"telemetry_snapshots\": %lld}%s\n",
          p.name.c_str(), p.static_flits, p.adaptive_flits,
          p.static_imbalance, p.adaptive_imbalance,
          static_cast<long long>(p.snapshots),
          i + 1 < scenario_points.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"git_rev\": \"%s\"\n"
                 "}\n",
                 bench::git_rev().c_str());
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    bench::expect_shape(false, std::string("could not write ") + out_path);
  }

  return bench::finish("bench_streaming_broadcast");
}
