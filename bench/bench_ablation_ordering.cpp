// Ablation (ours): how much does the contention-free base ordering
// matter? The Fig. 11 construction assumes chain segments route over
// disjoint links; binding the same k-binomial tree onto a *random*
// permutation instead of the CCO chain destroys that property. We
// measure both end latency and raw channel block time.

#include "bench/common.hpp"

using namespace nimcast;

int main() {
  std::printf("=== Ablation: CCO ordering vs random ordering ===\n\n");
  const harness::IrregularTestbed bed{bench::paper_testbed_config()};

  harness::Table table{{"n", "m", "CCO lat (us)", "rand lat (us)",
                        "CCO block (us)", "rand block (us)"}};
  double cco_block_total = 0;
  double rand_block_total = 0;
  double cco_lat_total = 0;
  double rand_lat_total = 0;
  for (const std::int32_t n : {16, 32, 64}) {
    for (const std::int32_t m : {2, 8, 16}) {
      const auto cco =
          bed.measure(n, m, harness::TreeSpec::optimal(),
                      mcast::NiStyle::kSmartFpfs, harness::OrderingKind::kCco);
      const auto rnd = bed.measure(n, m, harness::TreeSpec::optimal(),
                                   mcast::NiStyle::kSmartFpfs,
                                   harness::OrderingKind::kRandom);
      table.add_row({harness::Table::num(std::int64_t{n}),
                     harness::Table::num(std::int64_t{m}),
                     harness::Table::num(cco.latency_us.mean()),
                     harness::Table::num(rnd.latency_us.mean()),
                     harness::Table::num(cco.block_us.mean(), 2),
                     harness::Table::num(rnd.block_us.mean(), 2)});
      cco_block_total += cco.block_us.mean();
      rand_block_total += rnd.block_us.mean();
      cco_lat_total += cco.latency_us.mean();
      rand_lat_total += rnd.latency_us.mean();
      bench::expect_shape(cco.block_us.mean() <= rnd.block_us.mean() + 0.5,
                          "CCO never blocks (noticeably) more than random");
    }
  }
  table.print(std::cout);
  table.write_csv("ablation_ordering.csv");

  std::printf("\naggregate: CCO block %.2f us vs random %.2f us; "
              "CCO latency %.1f us vs random %.1f us\n",
              cco_block_total, rand_block_total, cco_lat_total,
              rand_lat_total);
  bench::expect_shape(cco_block_total < rand_block_total,
                      "CCO reduces aggregate channel blocking");
  bench::expect_shape(cco_lat_total <= rand_lat_total + 1.0,
                      "CCO never worse on aggregate latency");

  return bench::finish("bench_ablation_ordering");
}
