// Reproduces the paper's pipelined model (Section 4.1, Theorems 1 & 2,
// Figure 8): the multicast of an m-packet message over a tree behaves as
// m pipelined single-packet multicasts, successive packets completing
// exactly c_R steps apart, for a total of t_1 + (m-1) * c_R steps.

#include "bench/common.hpp"
#include "core/coverage.hpp"
#include "core/kbinomial.hpp"
#include "mcast/step_model.hpp"

using namespace nimcast;

int main() {
  std::printf("=== Theorems 1 & 2 / Fig. 8: the pipelined multicast model "
              "===\n\n");

  // Fig. 8 exactly: binomial tree, 7 destinations, 3 packets.
  {
    const auto tree = core::make_binomial(8);
    const auto sched =
        mcast::step_schedule(tree, 3, mcast::Discipline::kFpfs);
    std::printf("Fig. 8 (binomial, 7 dests, 3 packets): packets complete "
                "at steps %d, %d, %d; total %d (paper: 3, 6, 9; 9)\n\n",
                sched.completion[0], sched.completion[1],
                sched.completion[2], sched.total_steps);
    bench::expect_shape(sched.completion[0] == 3 &&
                            sched.completion[1] == 6 &&
                            sched.completion[2] == 9,
                        "Fig8: packet completions at 3, 6, 9");
  }

  std::printf("Pipeline gap and total vs Theorem prediction (FPFS step "
              "model):\n\n");
  harness::Table table{{"n", "k", "m", "c_R", "t1", "gap (measured)",
                        "total (measured)", "total (Thm 2)"}};
  core::CoverageTable cov;
  for (const std::int32_t n : {8, 16, 31, 48, 64}) {
    for (const std::int32_t k : {1, 2, 3, 6}) {
      for (const std::int32_t m : {2, 8}) {
        const auto tree = core::make_kbinomial(n, k);
        const auto sched =
            mcast::step_schedule(tree, m, mcast::Discipline::kFpfs);
        const std::int32_t c_root = tree.root_children();
        const std::int32_t t1 =
            cov.min_steps(static_cast<std::uint64_t>(n), k);
        // Gap between every successive pair must be identical.
        std::int32_t gap = -1;
        bool uniform = true;
        for (std::int32_t j = 0; j + 1 < m; ++j) {
          const std::int32_t g =
              sched.completion[static_cast<std::size_t>(j + 1)] -
              sched.completion[static_cast<std::size_t>(j)];
          if (gap < 0) gap = g;
          uniform &= (g == gap);
        }
        const std::int64_t predicted =
            t1 + static_cast<std::int64_t>(m - 1) * c_root;
        table.add_row({harness::Table::num(std::int64_t{n}),
                       harness::Table::num(std::int64_t{k}),
                       harness::Table::num(std::int64_t{m}),
                       harness::Table::num(std::int64_t{c_root}),
                       harness::Table::num(std::int64_t{t1}),
                       harness::Table::num(std::int64_t{gap}),
                       harness::Table::num(std::int64_t{sched.total_steps}),
                       harness::Table::num(predicted)});
        bench::expect_shape(uniform, "Thm1: gap uniform across packets");
        bench::expect_shape(gap == c_root, "Thm1: gap equals c_R");
        bench::expect_shape(sched.total_steps == predicted,
                            "Thm2: total = t1 + (m-1)*c_R");
      }
    }
  }
  table.print(std::cout);
  table.write_csv("theorem_pipeline.csv");

  return bench::finish("bench_theorem_pipeline");
}
