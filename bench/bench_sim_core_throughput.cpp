// Tracks the throughput of the simulation core, the hot path under every
// figure/ablation bench: (a) raw EventQueue events/sec against an inline
// reimplementation of the seed queue (std::priority_queue +
// std::unordered_map<seq, std::function> with lazy cancellation), and
// (b) end-to-end wall time of the paper's Section 5.2 testbed sweep,
// serial vs. the NIMCAST_THREADS worker pool, with a bit-identity check
// between the two. Emits BENCH_sim_core.json (see docs/perf.md) so the
// perf trajectory is recorded run over run.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>

#include "bench/common.hpp"
#include "harness/parallel.hpp"
#include "sim/event_queue.hpp"

using namespace nimcast;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// The seed's event queue, kept verbatim as the events/sec baseline.

class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  std::uint64_t schedule(sim::Time when, Callback cb) {
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{when, seq});
    callbacks_.emplace(seq, std::move(cb));
    return seq;
  }

  bool cancel(std::uint64_t seq) { return callbacks_.erase(seq) > 0; }

  [[nodiscard]] bool empty() const { return callbacks_.empty(); }

  std::pair<sim::Time, Callback> pop() {
    while (!callbacks_.contains(heap_.top().seq)) heap_.pop();
    const Entry top = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(top.seq);
    std::pair<sim::Time, Callback> fired{top.time, std::move(it->second)};
    callbacks_.erase(it);
    return fired;
  }

 private:
  struct Entry {
    sim::Time time;
    std::uint64_t seq;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::uint64_t next_seq_ = 1;
};

// ---------------------------------------------------------------------------
// The churn microbench loop itself lives in bench/common.hpp (shared with
// bench_scale's machine-speed probe); this binary supplies the legacy-queue
// flavor for the speedup comparison.

using bench::ChurnResult;

ChurnResult churn_legacy(std::uint64_t total_events, int depth) {
  LegacyEventQueue q;
  return bench::churn(
      q, total_events, depth,
      [](LegacyEventQueue& qq, sim::Time when, auto cb) {
        return qq.schedule(when, std::move(cb));
      },
      [](LegacyEventQueue& qq, std::uint64_t id) { return qq.cancel(id); },
      [](LegacyEventQueue& qq) { return qq.pop(); });
}

// ---------------------------------------------------------------------------
// Sweep wall-time: the paper rig replayed at several (n, m) points, the
// workload every figure bench replays.

struct SweepResult {
  double wall_ms = 0.0;
  std::vector<harness::MeasurePoint> points;
};

SweepResult run_sweep(const harness::IrregularTestbed& bed, int threads) {
  SweepResult result;
  const auto start = Clock::now();
  for (const std::int32_t n : {16, 32, 64}) {
    for (const std::int32_t m : {1, 4}) {
      result.points.push_back(bed.measure(n, m, harness::TreeSpec::optimal(),
                                          mcast::NiStyle::kSmartFpfs,
                                          harness::OrderingKind::kCco,
                                          threads));
    }
  }
  result.wall_ms = ms_since(start);
  return result;
}

bool identical(const sim::Summary& a, const sim::Summary& b) {
  return a.count() == b.count() && a.mean() == b.mean() &&
         a.variance() == b.variance() && a.min() == b.min() &&
         a.max() == b.max();
}

bool identical(const harness::MeasurePoint& a,
               const harness::MeasurePoint& b) {
  return identical(a.latency_us, b.latency_us) &&
         identical(a.block_us, b.block_us) &&
         identical(a.peak_buffer, b.peak_buffer) &&
         identical(a.buffer_integral, b.buffer_integral) &&
         identical(a.events, b.events);
}

}  // namespace

int main() {
  std::printf("=== simulation-core throughput ===\n\n");
  const bool quick = std::getenv("NIMCAST_QUICK") != nullptr;
  const std::uint64_t churn_events = quick ? 200'000 : 2'000'000;
  const int churn_depth = 512;

  // Warm-up + measured run for each queue.
  (void)bench::churn_new(churn_events / 10, churn_depth);
  (void)churn_legacy(churn_events / 10, churn_depth);
  const ChurnResult fast = bench::churn_new(churn_events, churn_depth);
  const ChurnResult slow = churn_legacy(churn_events, churn_depth);
  bench::expect_shape(fast.checksum == slow.checksum,
                      "churn workloads diverged (checksum mismatch)");
  const double core_speedup = fast.events_per_sec / slow.events_per_sec;
  std::printf("event core     : %.3g events/sec (slab 4-ary heap)\n",
              fast.events_per_sec);
  std::printf("seed baseline  : %.3g events/sec (priority_queue + "
              "unordered_map)\n",
              slow.events_per_sec);
  std::printf("single-thread speedup: %.2fx\n\n", core_speedup);
  bench::expect_shape(core_speedup >= 1.3,
                      "event core >= 1.3x seed queue events/sec");

  const int threads = harness::configured_threads();
  const harness::IrregularTestbed bed{bench::paper_testbed_config()};

  const SweepResult serial = run_sweep(bed, 1);
  const SweepResult parallel = run_sweep(bed, threads);
  bool all_identical = true;
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    all_identical =
        all_identical && identical(serial.points[i], parallel.points[i]);
  }
  bench::expect_shape(all_identical,
                      "parallel sweep bit-identical to serial sweep");
  const double sweep_speedup = serial.wall_ms / parallel.wall_ms;
  std::printf("paper-rig sweep: serial %.1f ms, %d threads %.1f ms "
              "(%.2fx)\n",
              serial.wall_ms, threads, parallel.wall_ms, sweep_speedup);
  // The >= 3x gate only means something when the threads map onto real
  // cores and the sweep is long enough to dominate timing noise; quick
  // mode (~10 ms sweeps) and oversubscribed single-core boxes would
  // false-fail on scheduler jitter, not on a perf regression.
  const unsigned hw = std::thread::hardware_concurrency();
  if (!quick && threads >= 4 && hw >= 4) {
    bench::expect_shape(sweep_speedup >= 3.0,
                        "parallel sweep >= 3x serial wall time with >= 4 "
                        "threads");
  } else {
    std::printf("(speedup shape check skipped: threads=%d, hardware=%u, "
                "quick=%d)\n",
                threads, hw, quick ? 1 : 0);
  }

  const char* out_path = std::getenv("NIMCAST_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_sim_core.json";
  if (FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"sim_core_throughput\",\n"
        "  \"config\": {\n"
        "    \"quick\": %s,\n"
        "    \"churn_events\": %" PRIu64 ",\n"
        "    \"churn_depth\": %d,\n"
        "    \"sweep\": \"irregular 64-host rig, n in {16,32,64}, m in "
        "{1,4}, optimal tree, smart-fpfs\"\n"
        "  },\n"
        "  \"events_per_sec\": %.1f,\n"
        "  \"events_per_sec_seed_baseline\": %.1f,\n"
        "  \"event_core_speedup\": %.3f,\n"
        "  \"wall_ms\": %.2f,\n"
        "  \"wall_ms_serial\": %.2f,\n"
        "  \"sweep_speedup\": %.3f,\n"
        "  \"parallel_bit_identical\": %s,\n"
        "  \"threads\": %d,\n"
        "  \"git_rev\": \"%s\"\n"
        "}\n",
        quick ? "true" : "false", churn_events, churn_depth,
        fast.events_per_sec, slow.events_per_sec, core_speedup,
        parallel.wall_ms, serial.wall_ms, sweep_speedup,
        all_identical ? "true" : "false", threads, bench::git_rev().c_str());
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    bench::expect_shape(false, std::string("could not write ") + out_path);
  }

  return bench::finish("bench_sim_core_throughput");
}
