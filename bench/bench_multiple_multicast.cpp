// Extension (the authors' companion "multiple multicast" line, ref [6]):
// several simultaneous multicasts sharing the network. We measure how
// per-operation latency inflates with the number of concurrent
// operations, and how much the contention-free CCO ordering helps when
// the network is actually loaded (the single-multicast ablation showed
// ordering barely moves end latency when the network is idle).

#include "bench/common.hpp"
#include "core/host_tree.hpp"
#include "core/optimal_k.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"

using namespace nimcast;

namespace {

struct Rig {
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  core::Chain cco;

  explicit Rig(std::uint64_t seed)
      : topology{[&] {
          sim::Rng rng{seed};
          return topo::make_irregular(topo::IrregularConfig{}, rng);
        }()},
        router{topology.switches()},
        routes{topology, router},
        cco{core::cco_ordering(topology, router)} {}
};

struct Load {
  double mean_latency_us = 0;
  double block_us = 0;
};

Load run_concurrent(const Rig& rig, std::int32_t ops, std::int32_t n,
                    std::int32_t m, bool use_cco, std::uint64_t seed) {
  sim::Rng rng{seed};
  const auto choice = core::optimal_k(n, m);
  std::vector<mcast::MulticastSpec> specs;
  for (std::int32_t op = 0; op < ops; ++op) {
    const auto draw = rng.sample_without_replacement(
        static_cast<std::size_t>(rig.topology.num_hosts()),
        static_cast<std::size_t>(n));
    const auto source = static_cast<topo::HostId>(draw.front());
    std::vector<topo::HostId> dests;
    for (std::size_t i = 1; i < draw.size(); ++i) {
      dests.push_back(static_cast<topo::HostId>(draw[i]));
    }
    const core::Chain base =
        use_cco ? rig.cco
                : core::random_ordering(rig.topology.num_hosts(), rng);
    const auto members = core::arrange_participants(base, source, dests);
    specs.push_back(mcast::MulticastSpec{
        core::HostTree::bind(core::make_kbinomial(n, choice.k), members), m,
        sim::Time::zero()});
  }
  const mcast::MulticastEngine engine{
      rig.topology, rig.routes,
      mcast::MulticastEngine::Config{netif::SystemParams{},
                                     net::NetworkConfig{},
                                     mcast::NiStyle::kSmartFpfs}};
  const auto batch = engine.run_many(specs);
  Load load;
  for (const auto& op : batch.operations) {
    load.mean_latency_us += op.latency.as_us();
  }
  load.mean_latency_us /= static_cast<double>(ops);
  load.block_us = batch.total_channel_block_time.as_us();
  return load;
}

}  // namespace

int main() {
  std::printf("=== Extension: multiple simultaneous multicasts ===\n\n");
  // Quick mode still needs 3 seeds: the CCO-vs-random blocking
  // comparison is qualitative and 2 rigs are not enough to average out
  // one unlucky topology draw (it flaked in CI's quick smoke).
  const int seeds = std::getenv("NIMCAST_QUICK") != nullptr ? 3 : 5;
  const std::int32_t n = 16;
  const std::int32_t m = 8;

  harness::Table table{{"concurrent ops", "CCO latency (us)",
                        "random latency (us)", "CCO block (us)",
                        "random block (us)"}};
  std::vector<double> cco_lat;
  for (const std::int32_t ops : {1, 2, 4, 8, 16}) {
    Load cco{};
    Load rnd{};
    for (int s = 0; s < seeds; ++s) {
      const Rig rig{static_cast<std::uint64_t>(s)};
      const auto a = run_concurrent(rig, ops, n, m, true,
                                    static_cast<std::uint64_t>(s) * 7 + 1);
      const auto b = run_concurrent(rig, ops, n, m, false,
                                    static_cast<std::uint64_t>(s) * 7 + 1);
      cco.mean_latency_us += a.mean_latency_us / seeds;
      cco.block_us += a.block_us / seeds;
      rnd.mean_latency_us += b.mean_latency_us / seeds;
      rnd.block_us += b.block_us / seeds;
    }
    cco_lat.push_back(cco.mean_latency_us);
    table.add_row({harness::Table::num(std::int64_t{ops}),
                   harness::Table::num(cco.mean_latency_us),
                   harness::Table::num(rnd.mean_latency_us),
                   harness::Table::num(cco.block_us),
                   harness::Table::num(rnd.block_us)});
    bench::expect_shape(cco.block_us <= rnd.block_us + 1.0,
                        "CCO blocks less under load");
  }
  table.print(std::cout);
  table.write_csv("multiple_multicast.csv");

  // Latency inflates monotonically with offered load.
  for (std::size_t i = 1; i < cco_lat.size(); ++i) {
    bench::expect_shape(cco_lat[i] >= cco_lat[i - 1] - 0.5,
                        "per-op latency non-decreasing in concurrency");
  }
  bench::expect_shape(cco_lat.back() > cco_lat.front() * 1.05,
                      "16 concurrent ops visibly contend");

  return bench::finish("bench_multiple_multicast");
}
