// Extension experiment: multi-tenant traffic at scale. A seeded open-loop
// mix of concurrent multicast / streaming / collective tenant groups
// (Poisson arrivals, bounded-Zipf group sizes, mid-stream membership
// churn) runs end to end over ONE shared wormhole fabric, admitted either
// FIFO (every op launches the instant it arrives — the no-pacing
// baseline) or by the contention-aware group scheduler
// (traffic::Policy::kPaced), which defers an arriving tree while too much
// of its switch-channel footprint is held by in-flight trees or measured
// hot by the per-channel block-time telemetry.
//
// The sweep raises offered load (ops per millisecond) to saturation on a
// bandwidth-constrained fabric (one 64-byte packet serializes in 4 us, so
// channels — not NI overheads — are the bottleneck and wormhole blocking
// convoys actually form). At light load the scheduler must be a strict
// no-op: every decision sees an empty fabric, so the paced point is
// byte-identical to FIFO — digest and all.
//
// What saturation shows, and what the shape checks encode, is the honest
// scheduling result for a lossless fabric that releases channels
// per-packet: FIFO is close to work-conserving (a blocked worm's
// channels stall, but the worm blocking it is always advancing and frees
// the channel within one serialization), so admission pacing cannot beat
// it on drain throughput — the two policies tie within a few percent of
// ops/sec. And because FCT here is what a tenant observes —
// arrival-to-completion, queueing wait included — the tail at an offered
// burst is makespan-dominated: deferral converts fabric convoy time into
// queue wait roughly one-for-one, so pacing cannot slash the p99 either.
// Both policies' p99 blows up ~7x from single-group load to saturation.
// What the light-touch pacing operating point below delivers, and what
// the gates pin, is bounded admission at zero cost: the scheduler defers
// real work at saturation (capping instantaneous footprint overlap, with
// starvation bounded by max_defer_ticks) while holding drain throughput
// at >= 95% of FIFO and landing the saturation p99 FCT at or slightly
// below FIFO's (0.98x irregular / 0.99x fat-tree on the full sweep —
// strictly lower, deterministically, but a trim rather than a win).
// Heavier pacing only hurts: tolerance 100 with a 1024-tick aging bound
// serializes the mix down to 0.39x FIFO throughput and 2.4x its tail.
//
// Shapes guarded: byte-identity (digest equality) at the lightest load;
// FIFO never defers; pacing holds ops/sec within 10% of FIFO at every
// load and within 5% at saturation; paced p99 FCT strictly below FIFO's
// at saturation on the full sweep (the 40-op quick mix has too little
// tail mass for a strict ordering, so quick mode gates parity at
// <= 1.02x instead); FIFO's p99 tail at saturation has actually blown
// up (>= 1.5x its single-group value) while the paced scheduler was
// deferring real work. Output: results/BENCH_traffic.json
// (byte-identical across runs and across serial/sharded; CI double-runs
// and cmps it).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "traffic/scheduler.hpp"
#include "traffic/workload.hpp"

using namespace nimcast;

namespace {

struct RigSpec {
  std::string name;
  harness::TestbedSpec spec;
};

struct TrafficRow {
  std::string rig;
  std::int32_t hosts = 0;
  double ops_per_ms = 0.0;
  std::string policy;
  double ops_per_sec = 0.0;
  double flits_per_us = 0.0;
  double makespan_us = 0.0;
  double fct_p50_us = 0.0;
  double fct_p99_us = 0.0;
  double fct_stream_p99_us = 0.0;
  double deferrals = 0.0;
  std::uint64_t digest = 0;
};

}  // namespace

int main() {
  const bool quick = std::getenv("NIMCAST_QUICK") != nullptr;
  std::printf("=== Extension: multi-tenant traffic — contention-aware "
              "pacing vs FIFO admission ===\n\n");

  // Offered-load sweep (mean operations per millisecond). The lightest
  // point spaces arrivals ~4 orders of magnitude past any single op's
  // completion (pacing must no-op); the heaviest offers the whole mix in
  // a burst a few op-durations wide.
  const std::vector<double> loads =
      quick ? std::vector<double>{0.002, 160.0, 2560.0}
            : std::vector<double>{0.002, 40.0, 160.0, 640.0, 2560.0};

  // One packet serializes in 4 us: the channel-bound regime where
  // admission control has real work to do. On the default 160 MB/s
  // fabric the NI send overhead dominates and contention never bites.
  constexpr double kConstrainedBandwidth = 16.0;

  std::vector<RigSpec> rigs;
  {
    RigSpec irr{"irregular64", harness::TestbedSpec::make_irregular(64)};
    irr.spec.num_topologies = quick ? 2 : 4;
    irr.spec.sets_per_topology = quick ? 2 : 4;
    irr.spec.network.bandwidth_bytes_per_us = kConstrainedBandwidth;
    rigs.push_back(std::move(irr));
    if (!quick) {
      RigSpec ft{"fat_tree64", harness::TestbedSpec::make_fat_tree(64)};
      ft.spec.sets_per_topology = 8;
      ft.spec.network.bandwidth_bytes_per_us = kConstrainedBandwidth;
      rigs.push_back(std::move(ft));
    }
  }

  traffic::WorkloadConfig mix;
  mix.num_ops = quick ? 40 : 96;
  mix.min_group = 4;
  mix.max_group = 24;

  // Tuned on the constrained rigs (tolerance x defer-bound grid, both
  // rigs): admit while <= 50% of the footprint is busy and force-admit
  // after 2 ticks, re-scoring on a 5 us tick (roughly one serialization
  // time, so released capacity backfills within a tick). This is
  // deliberately light-touch — deferrals last at most ~10 us against
  // service times of 100-2500 us — because the per-packet-release fabric
  // punishes anything stricter: every longer aging bound or lower
  // tolerance measured strictly worse on BOTH throughput and
  // tenant-observed p99 at saturation.
  traffic::SchedulerConfig paced;
  paced.policy = traffic::Policy::kPaced;
  paced.overlap_tolerance_x1000 = 500;
  paced.max_defer_ticks = 2;
  paced.tick = sim::Time::us(5.0);
  // The baseline differs ONLY in policy. In particular it keeps the same
  // tick: the coordinator tick also quantizes compound-op phase
  // transitions (collective gather -> broadcast, churn re-bind), so a
  // different cadence would shift completions and break the light-load
  // byte-identity the A/B rests on.
  traffic::SchedulerConfig fifo = paced;
  fifo.policy = traffic::Policy::kFifo;

  harness::Table table{{"rig", "load (ops/ms)", "policy", "ops/sec",
                        "flits/us", "fct p50 (us)", "fct p99 (us)",
                        "deferrals"}};
  std::vector<TrafficRow> rows;

  for (const RigSpec& rig : rigs) {
    const harness::Testbed testbed{rig.spec};
    for (const double load : loads) {
      traffic::WorkloadConfig wcfg = mix;
      wcfg.ops_per_ms = load;
      for (const traffic::SchedulerConfig* sched : {&fifo, &paced}) {
        const harness::TrafficPoint p =
            testbed.measure_traffic(wcfg, *sched);
        TrafficRow row;
        row.rig = rig.name;
        row.hosts = rig.spec.num_hosts;
        row.ops_per_ms = load;
        row.policy = traffic::to_string(sched->policy);
        row.ops_per_sec = p.ops_per_sec.mean();
        row.flits_per_us = p.flits_per_us.mean();
        row.makespan_us = p.makespan_us.mean();
        row.fct_p50_us = p.fct_us.percentile(50.0);
        row.fct_p99_us = p.fct_us.percentile(99.0);
        row.fct_stream_p99_us = p.fct_stream_us.percentile(99.0);
        row.deferrals = p.deferral_ticks.mean();
        row.digest = p.digest;
        table.add_row({row.rig, harness::Table::num(load, 3), row.policy,
                       harness::Table::num(row.ops_per_sec),
                       harness::Table::num(row.flits_per_us, 2),
                       harness::Table::num(row.fct_p50_us, 1),
                       harness::Table::num(row.fct_p99_us, 1),
                       harness::Table::num(row.deferrals, 1)});
        rows.push_back(std::move(row));
      }
    }
  }
  table.print(std::cout);

  const auto at = [&](const std::string& rig, double load,
                      const std::string& policy) -> const TrafficRow* {
    for (const TrafficRow& r : rows) {
      if (r.rig == rig && r.ops_per_ms == load && r.policy == policy) {
        return &r;
      }
    }
    return nullptr;
  };

  for (const RigSpec& rig : rigs) {
    // Lightest load: one group at a time — pacing is a strict no-op, so
    // the two sweeps are byte-identical (digests chain per-replication
    // completion streams; equality means every completion matched).
    const TrafficRow* f0 = at(rig.name, loads.front(), "fifo");
    const TrafficRow* p0 = at(rig.name, loads.front(), "paced");
    bench::expect_shape(f0 != nullptr && p0 != nullptr &&
                            f0->digest == p0->digest,
                        rig.name + ": paced is byte-identical to FIFO at "
                                   "single-group load");
    bench::expect_shape(p0 != nullptr && p0->deferrals == 0.0,
                        rig.name + ": no deferrals at single-group load");

    // Every load: FIFO never defers, and pacing never costs more than
    // 10% of drain throughput.
    for (const double load : loads) {
      const TrafficRow* f = at(rig.name, load, "fifo");
      const TrafficRow* p = at(rig.name, load, "paced");
      if (f == nullptr || p == nullptr) continue;
      bench::expect_shape(f->deferrals == 0.0,
                          rig.name + ": FIFO never defers");
      bench::expect_shape(p->ops_per_sec >= 0.90 * f->ops_per_sec,
                          rig.name + " @" + std::to_string(load) +
                              ": pacing holds >= 90% of FIFO ops/sec");
    }

    // Saturation: FIFO's tail has actually blown up, and pacing holds
    // drain-throughput parity with a saturation p99 at or below FIFO's
    // while genuinely deferring work. Arrival-inclusive FCT at an
    // offered burst is makespan-dominated, so a large tail cut is not
    // physically available (see header comment); the full sweep's tail
    // trim is strict and deterministic, the 40-op quick mix only has
    // enough tail mass to gate parity.
    const TrafficRow* fs = at(rig.name, loads.back(), "fifo");
    const TrafficRow* ps = at(rig.name, loads.back(), "paced");
    if (f0 != nullptr && fs != nullptr && ps != nullptr) {
      bench::expect_shape(fs->fct_p99_us >= 1.5 * f0->fct_p99_us,
                          rig.name + ": FIFO's p99 FCT grows >= 1.5x from "
                                     "single-group load to saturation");
      bench::expect_shape(ps->ops_per_sec >= 0.95 * fs->ops_per_sec,
                          rig.name + ": pacing holds >= 95% of FIFO "
                                     "ops/sec at saturation");
      const bool tail_ok = quick
                               ? ps->fct_p99_us <= 1.02 * fs->fct_p99_us
                               : ps->fct_p99_us < fs->fct_p99_us;
      bench::expect_shape(tail_ok,
                          rig.name + ": paced saturation p99 FCT " +
                              (quick ? "within 2% of" : "strictly below") +
                              " FIFO's (" + std::to_string(ps->fct_p99_us) +
                              " vs " + std::to_string(fs->fct_p99_us) +
                              " us)");
      bench::expect_shape(ps->deferrals > 0.0,
                          rig.name + ": the paced scheduler deferred work "
                                     "at saturation");
    }
  }

  const char* out_path = std::getenv("NIMCAST_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_traffic.json";
  if (FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"traffic\",\n"
                 "  \"config\": {\n"
                 "    \"quick\": %s,\n"
                 "    \"num_ops\": %d,\n"
                 "    \"group_range\": [%d, %d],\n"
                 "    \"bandwidth_bytes_per_us\": %.1f,\n"
                 "    \"overlap_tolerance_x1000\": %d,\n"
                 "    \"max_defer_ticks\": %d,\n"
                 "    \"tick_us\": %.1f\n"
                 "  },\n"
                 "  \"points\": [\n",
                 quick ? "true" : "false", mix.num_ops, mix.min_group,
                 mix.max_group, kConstrainedBandwidth,
                 paced.overlap_tolerance_x1000, paced.max_defer_ticks,
                 static_cast<double>(paced.tick.count_ns()) / 1000.0);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const TrafficRow& r = rows[i];
      std::fprintf(
          out,
          "    {\"rig\": \"%s\", \"hosts\": %d, \"ops_per_ms\": %.3f, "
          "\"policy\": \"%s\", \"ops_per_sec\": %.3f, "
          "\"flits_per_us\": %.6f, \"makespan_us\": %.3f, "
          "\"fct_p50_us\": %.3f, \"fct_p99_us\": %.3f, "
          "\"fct_stream_p99_us\": %.3f, \"deferral_ticks\": %.3f, "
          "\"digest\": \"%016llx\"}%s\n",
          r.rig.c_str(), r.hosts, r.ops_per_ms, r.policy.c_str(),
          r.ops_per_sec, r.flits_per_us, r.makespan_us, r.fct_p50_us,
          r.fct_p99_us, r.fct_stream_p99_us, r.deferrals,
          static_cast<unsigned long long>(r.digest),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"git_rev\": \"%s\"\n"
                 "}\n",
                 bench::git_rev().c_str());
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    bench::expect_shape(false, std::string("could not write ") + out_path);
  }

  return bench::finish("bench_traffic");
}
