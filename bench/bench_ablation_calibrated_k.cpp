// Ablation (ours): the paper's Theorem 3 minimizes abstract *steps*,
// t_1 + (m-1)k, which assumes a send occupies its NI for a full t_step.
// Real NIs (and our simulator) overlap: the per-packet pipeline interval
// at a node is t_rcv + k * t_snd. Re-solving the optimization against
// that calibrated cost shifts the k -> 1 crossover to larger m and
// removes the transient latency bump visible in Fig. 13(a) at the
// paper-rule switch points. This bench quantifies the gap.

#include "analysis/latency_model.hpp"
#include "bench/common.hpp"
#include "core/optimal_k.hpp"

using namespace nimcast;

int main() {
  std::printf("=== Ablation: paper-rule k* vs simulator-calibrated k* "
              "===\n\n");
  const harness::IrregularTestbed bed{bench::paper_testbed_config()};
  const auto model = analysis::LatencyModel::from_network(
      netif::SystemParams{}, net::NetworkConfig{}, 2);

  harness::Table table{{"n", "m", "paper k*", "calib k*", "paper sim (us)",
                        "calib sim (us)", "calib gain"}};
  double worst_regression = 0.0;
  double best_gain = 0.0;
  for (const std::int32_t n : {16, 32, 48, 64}) {
    for (const std::int32_t m : {4, 8, 12, 16, 24, 32}) {
      const std::int32_t paper_k = core::optimal_k(n, m).k;
      const std::int32_t calib_k = model.calibrated_optimal(n, m).k;
      const auto paper_point =
          bed.measure(n, m, harness::TreeSpec::kbinomial(paper_k),
                      mcast::NiStyle::kSmartFpfs);
      const auto calib_point =
          bed.measure(n, m, harness::TreeSpec::kbinomial(calib_k),
                      mcast::NiStyle::kSmartFpfs);
      const double gain =
          paper_point.latency_us.mean() / calib_point.latency_us.mean();
      best_gain = std::max(best_gain, gain);
      worst_regression = std::min(gain, worst_regression == 0.0
                                            ? gain
                                            : worst_regression);
      table.add_row({harness::Table::num(std::int64_t{n}),
                     harness::Table::num(std::int64_t{m}),
                     harness::Table::num(std::int64_t{paper_k}),
                     harness::Table::num(std::int64_t{calib_k}),
                     harness::Table::num(paper_point.latency_us.mean()),
                     harness::Table::num(calib_point.latency_us.mean()),
                     harness::Table::num(gain, 3)});
      bench::expect_shape(calib_k >= paper_k,
                          "calibrated rule keeps fan-out at least as wide "
                          "(its pipeline interval penalizes k less)");
    }
  }
  table.print(std::cout);
  table.write_csv("ablation_calibrated_k.csv");

  std::printf("\nbest calibrated gain: %.3fx, worst: %.3fx\n", best_gain,
              worst_regression);
  bench::expect_shape(worst_regression >= 0.98,
                      "calibrated k never meaningfully worse in-simulator");
  bench::expect_shape(best_gain >= 1.1,
                      "calibrated k clearly better somewhere (the Fig. 13 "
                      "transient)");

  return bench::finish("bench_ablation_calibrated_k");
}
