// Reproduces paper Figure 12: behaviour of the optimal k of the
// k-binomial tree (Theorem 3).
//   (a) optimal k vs number of packets m, for fixed destination counts
//       {15, 31, 47, 63} (multicast set sizes 16/32/48/64);
//   (b) optimal k vs multicast set size n, for fixed m in {1, 2, 4, 8}.
// Purely analytic — no simulation — exactly like the paper's Section 5.1
// study.

#include "bench/common.hpp"
#include "core/optimal_k.hpp"

using namespace nimcast;

namespace {

void figure_12a() {
  std::printf("Figure 12(a): optimal k vs m (fixed multicast set size)\n\n");
  const std::int32_t sizes[] = {16, 32, 48, 64};
  harness::Table table{{"m", "n=16 (15 dest)", "n=32 (31 dest)",
                        "n=48 (47 dest)", "n=64 (63 dest)"}};
  core::CoverageTable cov;
  std::vector<std::vector<std::int32_t>> curves(4);
  for (std::int32_t m = 1; m <= 32; ++m) {
    std::vector<std::string> row{harness::Table::num(std::int64_t{m})};
    for (std::size_t i = 0; i < 4; ++i) {
      const auto choice = core::optimal_k(sizes[i], m, cov);
      curves[i].push_back(choice.k);
      row.push_back(harness::Table::num(std::int64_t{choice.k}));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // Paper: at m=1 the optimal k is ceil(log2 n); it is non-increasing in
  // m; and it converges toward 1 (smaller n crossing earlier).
  for (std::size_t i = 0; i < 4; ++i) {
    bench::expect_shape(
        curves[i].front() == core::ceil_log2(
                                 static_cast<std::uint64_t>(sizes[i])),
        "Fig12a: optimal k at m=1 equals ceil(log2 n)");
    for (std::size_t j = 1; j < curves[i].size(); ++j) {
      bench::expect_shape(curves[i][j] <= curves[i][j - 1],
                          "Fig12a: optimal k non-increasing in m");
    }
  }
  // n=16 reaches k=1 before n=32 does (paper Section 5.1).
  const auto first_one = [&](std::size_t i) {
    core::CoverageTable c2;
    for (std::int32_t m = 1; m <= 4096; ++m) {
      if (core::optimal_k(sizes[i], m, c2).k == 1) return m;
    }
    return 1 << 30;
  };
  bench::expect_shape(first_one(0) < first_one(1),
                      "Fig12a: n=16 converges to linear before n=32");
}

void figure_12b() {
  std::printf("\nFigure 12(b): optimal k vs n (fixed packet count)\n\n");
  const std::int32_t packets[] = {1, 2, 4, 8};
  harness::Table table{{"n", "m=1", "m=2", "m=4", "m=8"}};
  core::CoverageTable cov;
  std::vector<std::vector<std::int32_t>> curves(4);
  for (std::int32_t n = 2; n <= 64; ++n) {
    std::vector<std::string> row{harness::Table::num(std::int64_t{n})};
    for (std::size_t i = 0; i < 4; ++i) {
      const auto choice = core::optimal_k(n, packets[i], cov);
      curves[i].push_back(choice.k);
      row.push_back(harness::Table::num(std::int64_t{choice.k}));
    }
    if (n % 4 == 0 || n <= 8) table.add_row(std::move(row));
  }
  table.print(std::cout);

  // Paper: the m=1 curve is ceil(log2 n); for m in {4, 8} the optimal k
  // settles at 2 across the upper range of n (Fig. 12(b)).
  for (std::int32_t n = 2; n <= 64; ++n) {
    bench::expect_shape(
        curves[0][static_cast<std::size_t>(n - 2)] ==
            core::ceil_log2(static_cast<std::uint64_t>(n)),
        "Fig12b: m=1 curve equals ceil(log2 n)");
  }
  for (std::size_t i : {std::size_t{2}, std::size_t{3}}) {  // m = 4, 8
    for (std::int32_t n = 16; n <= 64; ++n) {
      bench::expect_shape(curves[i][static_cast<std::size_t>(n - 2)] == 2,
                          "Fig12b: optimal k plateaus at 2 for m>=4, n in "
                          "[16,64]");
    }
  }
  // Larger m never wants a larger k than smaller m at the same n.
  for (std::int32_t n = 2; n <= 64; ++n) {
    for (std::size_t i = 1; i < 4; ++i) {
      bench::expect_shape(
          curves[i][static_cast<std::size_t>(n - 2)] <=
              curves[i - 1][static_cast<std::size_t>(n - 2)],
          "Fig12b: optimal k non-increasing in m at fixed n");
    }
  }
}

}  // namespace

int main() {
  std::printf("=== Fig. 12 reproduction: optimal k of the k-binomial tree "
              "===\n\n");
  figure_12a();
  figure_12b();
  return bench::finish("bench_fig12_optimal_k");
}
