// Fault-tolerance sweep: delivery ratio and latency inflation of
// reliable FPFS multicast under randomly scheduled link/switch failures,
// with and without tree repair. The shape this bench guards is *graceful
// degradation*: the delivery-ratio curve falls monotonically with the
// fault rate, with no cliff as the rate leaves zero, and repair never
// hurts. Emits BENCH_faults.json (deterministic: same seeds, same bytes
// — the TSan CI job diffs two runs) and fault_tolerance.csv.

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/host_tree.hpp"
#include "core/optimal_k.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"

using namespace nimcast;

namespace {

struct Rig {
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  core::Chain cco;

  explicit Rig(std::uint64_t seed)
      : topology{[&] {
          sim::Rng rng{seed};
          return topo::make_irregular(topo::IrregularConfig{}, rng);
        }()},
        router{topology.switches()},
        routes{topology, router},
        cco{core::cco_ordering(topology, router)} {}
};

std::string git_rev() {
  std::string rev = "unknown";
  if (FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, p) != nullptr) {
      rev.assign(buf);
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
        rev.pop_back();
      }
    }
    pclose(p);
  }
  return rev;
}

struct Point {
  std::int32_t n = 0;
  std::int32_t m = 0;
  double rate = 0.0;
  double delivery_ratio = 0.0;     ///< with repair
  double delivery_no_repair = 0.0; ///< repair disabled
  double latency_us = 0.0;         ///< mean over ops that delivered anything
  double retx_per_op = 0.0;
  double repairs_per_op = 0.0;
  double killed_per_op = 0.0;
};

Point sweep_point(const Rig& rig, std::int32_t n, std::int32_t m, double rate,
                  int reps) {
  const auto choice = core::optimal_k(n, m);
  Point pt;
  pt.n = n;
  pt.m = m;
  pt.rate = rate;
  double ratio_sum = 0.0, ratio_nr_sum = 0.0, lat_sum = 0.0;
  int lat_count = 0;
  std::int64_t retx = 0, repairs = 0, killed = 0;
  for (int rep = 0; rep < reps; ++rep) {
    // Same participants and tree at every fault rate; only the fault
    // plan varies, so curves across rates are paired.
    sim::Rng rng{static_cast<std::uint64_t>(rep) + 11};
    const auto draw = rng.sample_without_replacement(
        static_cast<std::size_t>(rig.topology.num_hosts()),
        static_cast<std::size_t>(n));
    std::vector<topo::HostId> dests;
    for (std::size_t i = 1; i < draw.size(); ++i) {
      dests.push_back(static_cast<topo::HostId>(draw[i]));
    }
    const auto members = core::arrange_participants(
        rig.cco, static_cast<topo::HostId>(draw.front()), dests);
    const auto tree =
        core::HostTree::bind(core::make_kbinomial(n, choice.k), members);

    net::NetworkConfig netcfg;
    if (rate > 0.0) {
      // Coupled fault draws: one uniform (and one fault time) per fabric
      // element per rep, shared across rates, so the fault set at a
      // lower rate is a subset of the set at any higher rate. The
      // degradation curves are then nested by construction — without
      // this, independent per-rate plans at modest rep counts produce
      // non-monotone sampling noise that swamps the shape check.
      sim::Rng fault_rng{0xFA0170 + static_cast<std::uint64_t>(rep) * 131};
      const auto& g = rig.topology.switches();
      for (topo::LinkId e = 0; e < g.num_edges(); ++e) {
        const double u = fault_rng.next_double();
        const double at = fault_rng.next_double() * 150.0;
        if (u < rate) netcfg.faults.link_down(sim::Time::us(at), e);
      }
      for (topo::SwitchId s = 0; s < g.num_vertices(); ++s) {
        const double u = fault_rng.next_double();
        const double at = fault_rng.next_double() * 150.0;
        if (u < rate / 4.0) netcfg.faults.switch_down(sim::Time::us(at), s);
      }
    }

    mcast::MulticastEngine::Config cfg;
    cfg.network = netcfg;
    cfg.style = mcast::NiStyle::kReliableFpfs;
    const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
    const auto batch =
        engine.run_many({mcast::MulticastSpec{tree, m, sim::Time::zero()}});
    const auto& r = batch.operations.front();
    ratio_sum += r.delivery_ratio();
    retx += batch.retransmissions;
    repairs += r.repairs;
    killed += batch.packets_killed;
    if (r.delivered_count() > 0) {
      lat_sum += r.latency.as_us();
      ++lat_count;
    }

    mcast::MulticastEngine::Config nr_cfg = cfg;
    nr_cfg.repair.max_attempts = 0;
    nr_cfg.repair.reroute = false;
    const mcast::MulticastEngine nr_engine{rig.topology, rig.routes, nr_cfg};
    const auto nr = nr_engine.run(tree, m);
    ratio_nr_sum += nr.delivery_ratio();
  }
  pt.delivery_ratio = ratio_sum / reps;
  pt.delivery_no_repair = ratio_nr_sum / reps;
  pt.latency_us = lat_count > 0 ? lat_sum / lat_count : 0.0;
  pt.retx_per_op = static_cast<double>(retx) / reps;
  pt.repairs_per_op = static_cast<double>(repairs) / reps;
  pt.killed_per_op = static_cast<double>(killed) / reps;
  return pt;
}

}  // namespace

int main() {
  std::printf("=== Fault tolerance: reliable FPFS multicast under "
              "link/switch failures (irregular 64-host rig) ===\n\n");
  const bool quick = std::getenv("NIMCAST_QUICK") != nullptr;
  const int reps = quick ? 5 : 15;
  const Rig rig{3};

  const std::vector<double> rates = {0.0, 0.02, 0.05, 0.1, 0.2};
  const std::vector<std::pair<std::int32_t, std::int32_t>> shapes = {
      {16, 4}, {32, 8}};

  harness::Table table{{"n", "m", "fault rate", "delivery", "no-repair",
                        "latency (us)", "latency x", "retx/op",
                        "repairs/op"}};
  std::vector<Point> points;
  for (const auto& [n, m] : shapes) {
    double base_latency = 0.0;
    for (const double rate : rates) {
      Point pt = sweep_point(rig, n, m, rate, reps);
      if (rate == 0.0) base_latency = pt.latency_us;
      const double inflation =
          base_latency > 0.0 ? pt.latency_us / base_latency : 0.0;
      table.add_row({harness::Table::num(static_cast<std::int64_t>(n)),
                     harness::Table::num(static_cast<std::int64_t>(m)),
                     harness::Table::num(rate, 2),
                     harness::Table::num(pt.delivery_ratio, 3),
                     harness::Table::num(pt.delivery_no_repair, 3),
                     harness::Table::num(pt.latency_us),
                     harness::Table::num(inflation, 2),
                     harness::Table::num(pt.retx_per_op, 1),
                     harness::Table::num(pt.repairs_per_op, 2)});
      points.push_back(pt);
    }
  }
  table.print(std::cout);
  table.write_csv("fault_tolerance.csv");

  // Graceful degradation, per (n, m) curve:
  //  - a pristine fabric delivers everywhere, exactly;
  //  - the ratio falls monotonically with the fault rate (small slack
  //    for cross-plan sampling noise);
  //  - no cliff at rate -> 0+;
  //  - repair never delivers less than no-repair.
  const std::size_t per_curve = rates.size();
  for (std::size_t c = 0; c < shapes.size(); ++c) {
    const Point* curve = &points[c * per_curve];
    bench::expect_shape(curve[0].delivery_ratio == 1.0,
                        "zero-fault runs deliver everywhere, exactly");
    for (std::size_t i = 1; i < per_curve; ++i) {
      bench::expect_shape(
          curve[i].delivery_ratio <= curve[i - 1].delivery_ratio + 0.02,
          "delivery ratio degrades monotonically with fault rate");
    }
    bench::expect_shape(curve[1].delivery_ratio >= 0.90,
                        "no delivery cliff at small fault rates");
    for (std::size_t i = 0; i < per_curve; ++i) {
      bench::expect_shape(
          curve[i].delivery_ratio >= curve[i].delivery_no_repair - 1e-9,
          "tree repair never delivers less than no repair");
    }
  }

  const char* out_path = std::getenv("NIMCAST_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_faults.json";
  if (FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"fault_tolerance\",\n"
                 "  \"config\": {\n"
                 "    \"quick\": %s,\n"
                 "    \"reps\": %d,\n"
                 "    \"rig\": \"irregular 64-host, seed 3, reliable-fpfs, "
                 "repair max_attempts=2\",\n"
                 "    \"switch_fail_prob\": \"rate / 4\",\n"
                 "    \"window_us\": 150\n"
                 "  },\n"
                 "  \"points\": [\n",
                 quick ? "true" : "false", reps);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::fprintf(out,
                   "    {\"n\": %d, \"m\": %d, \"rate\": %.3f, "
                   "\"delivery_ratio\": %.6f, \"delivery_no_repair\": %.6f, "
                   "\"latency_us\": %.3f, \"retx_per_op\": %.3f, "
                   "\"repairs_per_op\": %.3f}%s\n",
                   p.n, p.m, p.rate, p.delivery_ratio, p.delivery_no_repair,
                   p.latency_us, p.retx_per_op, p.repairs_per_op,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"git_rev\": \"%s\"\n"
                 "}\n",
                 git_rev().c_str());
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    bench::expect_shape(false, std::string("could not write ") + out_path);
  }

  return bench::finish("bench_fault_tolerance");
}
