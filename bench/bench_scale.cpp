// Scale-out sweep: the testbed harness driven far past the paper's
// 64-host rig. For fat-tree and irregular fabrics at n in {64, 256, 1024}
// hosts x m in {1, 16} packets it measures broadcast latency over random
// destination sets and reports simulator events/sec, peak RSS, and
// route-table build time/footprint, then compares the compressed (lazy)
// RouteTable against an eager all-pairs build of the same largest fabric,
// and sweeps the intra-run sharding grid (n x threads, plus an
// eager-vs-overlapped merge barrier comparison). Emits BENCH_scale.json
// and BENCH_sharded.json (see docs/perf.md).
//
// Flags:
//   --quick           smoke sizing (also triggered by NIMCAST_QUICK=1);
//                     the eager-vs-compressed comparison drops to n=256
//   --gate-baseline [path]
//                     perf gate against a recorded BENCH_sim_core.json
//                     (default results/BENCH_sim_core.json): re-runs that
//                     bench's serial 64-host sweep and fails if wall time
//                     exceeds 1.10x the recorded value after normalizing
//                     by the churn microbench ratio (machine speed), i.e.
//                     if 64-host throughput regressed > 10%.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/host_tree.hpp"
#include "core/ordering.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/route_table.hpp"
#include "routing/up_down.hpp"
#include "topology/fat_tree.hpp"

using namespace nimcast;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// VmHWM (peak resident set) in kB from /proc/self/status; 0 when the
/// proc interface is unavailable.
std::size_t peak_rss_kb() {
  std::size_t kb = 0;
  if (FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
    }
    std::fclose(f);
  }
  return kb;
}

struct PointResult {
  const char* fabric = "";
  std::int32_t hosts = 0;
  std::int32_t m = 0;
  std::int32_t reps = 0;
  double build_ms = 0.0;          ///< topology + routes + CCO construction
  double wall_ms = 0.0;           ///< measure() wall time
  double events_total = 0.0;      ///< simulator events across all reps
  double events_per_sec = 0.0;    ///< events_total / measure wall time
  double latency_us_mean = 0.0;
  std::size_t route_bytes = 0;    ///< compressed footprint after the sweep
  std::size_t rss_kb = 0;         ///< process VmHWM after the point
};

/// Replication counts shrink with scale so the full sweep stays in
/// minutes on one core; quick mode is a smoke run.
void size_spec(harness::TestbedSpec& spec, bool quick) {
  const std::int32_t hosts = spec.num_hosts;
  if (spec.fabric == harness::FabricKind::kIrregular) {
    if (hosts <= 64) {
      spec.num_topologies = quick ? 2 : 10;
      spec.sets_per_topology = quick ? 3 : 30;
    } else if (hosts <= 256) {
      spec.num_topologies = quick ? 1 : 3;
      spec.sets_per_topology = quick ? 2 : 10;
    } else {
      spec.num_topologies = 1;
      spec.sets_per_topology = quick ? 1 : 3;
    }
  } else {
    spec.num_topologies = 1;  // deterministic fabric
    if (hosts <= 64) {
      spec.sets_per_topology = quick ? 3 : 30;
    } else if (hosts <= 256) {
      spec.sets_per_topology = quick ? 2 : 10;
    } else {
      spec.sets_per_topology = quick ? 1 : 3;
    }
  }
}

PointResult run_point(harness::FabricKind fabric, std::int32_t hosts,
                      std::int32_t m, bool quick) {
  harness::TestbedSpec spec =
      fabric == harness::FabricKind::kFatTree
          ? harness::TestbedSpec::make_fat_tree(hosts)
          : harness::TestbedSpec::make_irregular(hosts);
  size_spec(spec, quick);

  PointResult r;
  r.fabric =
      fabric == harness::FabricKind::kFatTree ? "fat_tree" : "irregular";
  r.hosts = hosts;
  r.m = m;
  r.reps = spec.num_topologies * spec.sets_per_topology;

  const harness::Testbed bed{spec};
  r.build_ms = bed.build_ms();

  const auto start = Clock::now();
  // Full broadcast (n = hosts): the densest traffic the fabric carries,
  // and the point where route-table coverage is widest.
  const harness::MeasurePoint p =
      bed.measure(hosts, m, harness::TreeSpec::optimal(),
                  mcast::NiStyle::kSmartFpfs);
  r.wall_ms = ms_since(start);

  r.events_total = p.events.mean() * static_cast<double>(p.events.count());
  r.events_per_sec = r.events_total / (r.wall_ms / 1000.0);
  r.latency_us_mean = p.latency_us.mean();
  r.route_bytes = bed.route_memory_bytes();
  r.rss_kb = peak_rss_kb();

  std::printf("%-9s n=%-5d m=%-3d reps=%-3d build %8.1f ms | sweep "
              "%9.1f ms | %10.3g events/sec | routes %8.1f KiB | "
              "RSS %7zu MB\n",
              r.fabric, r.hosts, r.m, r.reps, r.build_ms, r.wall_ms,
              r.events_per_sec,
              static_cast<double>(r.route_bytes) / 1024.0, r.rss_kb / 1024);
  bench::expect_shape(r.events_total > 0.0,
                      std::string(r.fabric) + " sweep dispatched events");
  return r;
}

// ---------------------------------------------------------------------------
// Eager-vs-compressed comparison on one fat-tree fabric: build both
// tables on the identical topology/router, compare construction wall
// time and heap footprint. The compressed side is measured *after*
// materializing every switch pair the broadcast sweep can touch (all of
// them, via path()), so the ratio is an upper bound on its footprint.

struct StorageCompare {
  std::int32_t hosts = 0;
  double eager_build_ms = 0.0;
  double compressed_build_ms = 0.0;
  std::size_t eager_bytes = 0;
  std::size_t compressed_bytes = 0;
  double memory_ratio = 0.0;
};

StorageCompare compare_storage(std::int32_t hosts) {
  const harness::TestbedSpec spec = harness::TestbedSpec::make_fat_tree(hosts);
  const topo::Topology topology = topo::make_fat_tree(spec.fat_tree);
  const auto router = std::make_shared<const routing::UpDownRouter>(
      topology.switches(), topo::fat_tree_levels(spec.fat_tree));

  StorageCompare c;
  c.hosts = hosts;

  auto start = Clock::now();
  {
    const routing::RouteTable eager{topology, *router};
    c.eager_build_ms = ms_since(start);
    c.eager_bytes = eager.memory_bytes();
  }

  start = Clock::now();
  const routing::RouteTable compressed{topology, router};
  c.compressed_build_ms = ms_since(start);
  // Touch every pair so the compressed footprint is its worst case (the
  // sweeps above only materialize pairs traffic crosses).
  for (std::int32_t s = 0; s < hosts; ++s) {
    for (std::int32_t d = 0; d < hosts; ++d) {
      if (s != d) (void)compressed.path(s, d);
    }
  }
  c.compressed_bytes = compressed.memory_bytes();
  c.memory_ratio = static_cast<double>(c.eager_bytes) /
                   static_cast<double>(c.compressed_bytes);

  std::printf("\nstorage @ n=%d fat-tree: eager %.1f ms / %.1f MiB vs "
              "compressed %.3f ms / %.1f KiB fully materialized "
              "(%.1fx smaller)\n",
              c.hosts, c.eager_build_ms,
              static_cast<double>(c.eager_bytes) / (1024.0 * 1024.0),
              c.compressed_build_ms,
              static_cast<double>(c.compressed_bytes) / 1024.0,
              c.memory_ratio);
  bench::expect_shape(c.memory_ratio >= 5.0,
                      "compressed route table >= 5x smaller than eager "
                      "all-pairs at scale");
  return c;
}

// ---------------------------------------------------------------------------
// Intra-run sharding grid: the identical fat-tree broadcast run through
// the same engine code at n in {256, 1024} hosts x threads in
// {1, 2, 4, 8} (one shard per thread; threads == 1 is the serial
// engine), with a bit-identity check at every point. The speedup column
// is what the sharded engine buys a *single* replication when
// replication-level parallelism cannot fill the machine (see
// docs/perf.md); it only materializes when the box has cores to spare,
// so the monotonicity and >= 2x shape checks arm only on 8+ hardware
// threads and the JSON records whatever this machine actually measured.
// A separate eager-vs-overlapped pass isolates the window-barrier cost
// the merge worker removed (NIMCAST_EAGER_MERGE=1 restores the PR 4
// merge-inside-the-barrier behaviour).

struct ShardedPoint {
  std::int32_t hosts = 0;
  std::int32_t threads = 0;
  std::int32_t shards = 0;
  std::int32_t reps = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double speedup = 0.0;            ///< serial wall / this wall, same n
  std::int64_t window_ns = 0;      ///< conservative window (0 = serial)
  std::int64_t barrier_wall_ns = 0;  ///< mean window-planning wall per rep
  std::int64_t windows_planned = 0;
  bool identical = false;
};

struct BarrierCompare {
  std::int64_t eager_ns = 0;       ///< merge joined inside the barrier
  std::int64_t overlapped_ns = 0;  ///< merge overlapped with next drain
  double reduction = 0.0;          ///< 1 - overlapped/eager
  bool identical = false;
};

struct ShardedGrid {
  unsigned hw_threads = 0;
  std::int32_t m = 0;
  std::int32_t reps = 0;
  std::vector<ShardedPoint> points;
  BarrierCompare barrier;
};

bool same_multi(const mcast::MultiMulticastResult& a,
                const mcast::MultiMulticastResult& b) {
  if (a.makespan != b.makespan ||
      a.total_channel_block_time != b.total_channel_block_time ||
      a.retransmissions != b.retransmissions ||
      a.events_dispatched != b.events_dispatched ||
      a.operations.size() != b.operations.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.operations.size(); ++i) {
    if (a.operations[i].latency != b.operations[i].latency ||
        a.operations[i].completions != b.operations[i].completions ||
        a.operations[i].packets_delivered !=
            b.operations[i].packets_delivered) {
      return false;
    }
  }
  return true;
}

ShardedGrid measure_sharded_grid(bool quick) {
  constexpr std::int32_t kPackets = 16;
  ShardedGrid g;
  g.hw_threads = std::thread::hardware_concurrency();
  g.m = kPackets;
  g.reps = quick ? 1 : 3;

  std::printf("\nintra-run sharding grid (fat-tree full broadcast, m=%d, "
              "%d rep(s), %u hw threads)\n",
              g.m, g.reps, g.hw_threads);

  for (const std::int32_t hosts : {256, 1024}) {
    const harness::TestbedSpec spec =
        harness::TestbedSpec::make_fat_tree(hosts);
    const topo::Topology topology = topo::make_fat_tree(spec.fat_tree);
    const auto router = std::make_shared<const routing::UpDownRouter>(
        topology.switches(), topo::fat_tree_levels(spec.fat_tree));
    const routing::RouteTable routes{topology, router};
    const core::Chain cco = core::cco_ordering(topology, *router);

    // Full broadcast from host 0 in CCO order — the same traffic shape
    // the scale sweep above measured.
    const core::RankTree rank_tree =
        harness::TreeSpec::optimal().build(hosts, kPackets);
    std::vector<topo::HostId> dests;
    dests.reserve(static_cast<std::size_t>(hosts) - 1);
    for (std::int32_t h = 1; h < hosts; ++h) dests.push_back(h);
    const core::Chain members = core::arrange_participants(cco, 0, dests);
    const std::vector<mcast::MulticastSpec> specs{mcast::MulticastSpec{
        core::HostTree::bind(rank_tree, members), kPackets,
        sim::Time::zero()}};

    const mcast::MulticastEngine::Config base_cfg{
        spec.params, spec.network, mcast::NiStyle::kSmartFpfs};
    mcast::MultiMulticastResult serial_res;
    double serial_wall_ms = 0.0;

    for (const std::int32_t threads : {1, 2, 4, 8}) {
      mcast::MulticastEngine::Config cfg = base_cfg;
      cfg.shards = threads;  // one shard per thread
      cfg.shard_threads = threads;
      const mcast::MulticastEngine engine{topology, routes, cfg};

      // One untimed run first: page in the arenas and routes so the
      // timed loop measures steady-state dispatch, not first-touch cost.
      mcast::MultiMulticastResult res = engine.run_many(specs);
      std::int64_t barrier_ns = 0;
      const auto start = Clock::now();
      for (std::int32_t rep = 0; rep < g.reps; ++rep) {
        res = engine.run_many(specs);
        barrier_ns += res.barrier_wall_ns;
      }

      ShardedPoint p;
      p.hosts = hosts;
      p.threads = threads;
      p.shards = threads;
      p.reps = g.reps;
      p.wall_ms = ms_since(start);
      p.events_per_sec = static_cast<double>(res.events_dispatched) *
                         g.reps / (p.wall_ms / 1000.0);
      p.window_ns = res.window_ns;
      p.barrier_wall_ns = barrier_ns / g.reps;
      p.windows_planned = res.windows_planned;
      if (threads == 1) {
        serial_res = res;
        serial_wall_ms = p.wall_ms;
        p.identical = true;
      } else {
        p.identical = same_multi(serial_res, res);
        bench::expect_shape(
            p.window_ns > 0,
            "n=" + std::to_string(hosts) + " threads=" +
                std::to_string(threads) + " actually ran sharded");
      }
      p.speedup = serial_wall_ms / p.wall_ms;
      std::printf("  n=%-5d threads=%d shards=%d %9.1f ms %10.3g "
                  "events/sec %5.2fx window %4" PRId64 " ns barrier "
                  "%8" PRId64 " ns (%s)\n",
                  p.hosts, p.threads, p.shards, p.wall_ms,
                  p.events_per_sec, p.speedup, p.window_ns,
                  p.barrier_wall_ns,
                  p.identical ? "bit-identical" : "DIVERGED");
      bench::expect_shape(p.identical,
                          "sharded n=" + std::to_string(hosts) +
                              " threads=" + std::to_string(threads) +
                              " broadcast bit-identical to serial");
      g.points.push_back(p);
    }

    // Isolate the window-barrier cost: the same n=1024 4-shard run with
    // the merge joined inside the barrier (PR 4 behaviour) vs the
    // overlapped merge worker. Both must stay bit-identical to serial.
    if (hosts == 1024) {
      mcast::MulticastEngine::Config cfg = base_cfg;
      cfg.shards = 4;
      cfg.shard_threads = 4;
      const mcast::MulticastEngine engine{topology, routes, cfg};

      setenv("NIMCAST_EAGER_MERGE", "1", 1);
      mcast::MultiMulticastResult eager = engine.run_many(specs);  // warm
      std::int64_t eager_ns = 0;
      for (std::int32_t rep = 0; rep < g.reps; ++rep) {
        eager = engine.run_many(specs);
        eager_ns += eager.barrier_wall_ns;
      }
      unsetenv("NIMCAST_EAGER_MERGE");

      mcast::MultiMulticastResult over = engine.run_many(specs);  // warm
      std::int64_t over_ns = 0;
      for (std::int32_t rep = 0; rep < g.reps; ++rep) {
        over = engine.run_many(specs);
        over_ns += over.barrier_wall_ns;
      }

      g.barrier.eager_ns = eager_ns / g.reps;
      g.barrier.overlapped_ns = over_ns / g.reps;
      g.barrier.reduction =
          g.barrier.eager_ns > 0
              ? 1.0 - static_cast<double>(g.barrier.overlapped_ns) /
                          static_cast<double>(g.barrier.eager_ns)
              : 0.0;
      g.barrier.identical =
          same_multi(eager, over) && same_multi(serial_res, over);
      std::printf("  barrier @ n=1024 shards=4: eager %" PRId64
                  " ns vs overlapped %" PRId64 " ns (%.0f%% less, %s)\n",
                  g.barrier.eager_ns, g.barrier.overlapped_ns,
                  g.barrier.reduction * 100.0,
                  g.barrier.identical ? "bit-identical" : "DIVERGED");
      bench::expect_shape(g.barrier.identical,
                          "eager and overlapped merges bit-identical");
    }
  }

  if (g.hw_threads >= 8) {
    double best_1024 = 0.0;
    const ShardedPoint* prev = nullptr;
    for (const ShardedPoint& p : g.points) {
      if (p.hosts != 1024) continue;
      if (prev != nullptr) {
        bench::expect_shape(
            p.events_per_sec >= 0.95 * prev->events_per_sec,
            "n=1024 events/sec non-decreasing from threads=" +
                std::to_string(prev->threads) + " to " +
                std::to_string(p.threads));
      }
      prev = &p;
      best_1024 = std::max(best_1024, p.speedup);
    }
    bench::expect_shape(best_1024 >= 2.0,
                        "sharded n=1024 run >= 2x over serial on an "
                        "8+-thread machine");
    bench::expect_shape(g.barrier.overlapped_ns <=
                            g.barrier.eager_ns * 11 / 10,
                        "overlapped merge does not cost more barrier "
                        "time than the eager merge");
  } else {
    std::printf("  (only %u hardware thread(s): speedup recorded but "
                "monotonicity/2x checks not armed)\n",
                g.hw_threads);
  }
  return g;
}

// ---------------------------------------------------------------------------
// Perf gate: the recorded BENCH_sim_core.json holds the 64-host serial
// sweep wall time and the churn events/sec of the machine that recorded
// it. Re-running churn here measures *this* machine; scaling the
// recorded wall by the churn ratio predicts what the recorded build
// would score on this box, making the 10% regression gate portable
// across hardware.

/// Churn microbench probe (machine-speed scale), measured once per
/// process no matter how many callers normalize against it. The probe
/// is full-size regardless of --quick — the recorded baselines are
/// full-size — but hoisting it here means a quick-mode run pays for it
/// at most once instead of re-deriving it per gate invocation.
const bench::ChurnResult& churn_probe() {
  static const bench::ChurnResult probe = [] {
    (void)bench::churn_new(200'000, 512);  // warm-up
    return bench::churn_new(2'000'000, 512);
  }();
  return probe;
}

double extract_json_number(const std::string& text, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

struct GateResult {
  bool ran = false;
  double machine_scale = 0.0;   ///< churn now / churn recorded
  double recorded_wall_ms = 0.0;
  double predicted_wall_ms = 0.0;
  double actual_wall_ms = 0.0;
  bool passed = true;
};

GateResult run_gate(const std::string& baseline_path) {
  GateResult g;
  std::string text;
  if (FILE* f = std::fopen(baseline_path.c_str(), "r")) {
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, got);
    }
    std::fclose(f);
  } else {
    bench::expect_shape(false, "gate baseline not readable: " + baseline_path);
    return g;
  }
  const double recorded_churn = extract_json_number(text, "events_per_sec");
  g.recorded_wall_ms = extract_json_number(text, "wall_ms_serial");
  if (recorded_churn <= 0.0 || g.recorded_wall_ms <= 0.0) {
    bench::expect_shape(false, "gate baseline missing events_per_sec / "
                               "wall_ms_serial: " + baseline_path);
    return g;
  }

  // Full-size sweep regardless of --quick: the recorded numbers are
  // full-size, and it finishes in ~1 s. The churn probe is the shared
  // once-per-process one.
  g.machine_scale = churn_probe().events_per_sec / recorded_churn;

  harness::IrregularTestbed::Config cfg;  // the paper rig, full size
  const harness::IrregularTestbed bed{cfg};
  const auto start = Clock::now();
  for (const std::int32_t n : {16, 32, 64}) {
    for (const std::int32_t m : {1, 4}) {
      (void)bed.measure(n, m, harness::TreeSpec::optimal(),
                        mcast::NiStyle::kSmartFpfs,
                        harness::OrderingKind::kCco, 1);
    }
  }
  g.actual_wall_ms = ms_since(start);
  g.predicted_wall_ms = g.recorded_wall_ms / g.machine_scale;
  g.passed = g.actual_wall_ms <= 1.10 * g.predicted_wall_ms;
  g.ran = true;

  std::printf("\nperf gate: recorded %.1f ms, machine-scale %.2fx -> "
              "predicted %.1f ms; measured %.1f ms (%s)\n",
              g.recorded_wall_ms, g.machine_scale, g.predicted_wall_ms,
              g.actual_wall_ms, g.passed ? "PASS" : "FAIL");
  bench::expect_shape(g.passed,
                      "64-host serial sweep within 10% of recorded "
                      "baseline (machine-normalized)");
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = std::getenv("NIMCAST_QUICK") != nullptr;
  bool gate = false;
  std::string baseline_path = "results/BENCH_sim_core.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--gate-baseline") == 0) {
      gate = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') baseline_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("=== scale-out sweep (%s) ===\n\n", quick ? "quick" : "full");

  std::vector<PointResult> points;
  for (const harness::FabricKind fabric :
       {harness::FabricKind::kFatTree, harness::FabricKind::kIrregular}) {
    for (const std::int32_t hosts : {64, 256, 1024}) {
      for (const std::int32_t m : {1, 16}) {
        points.push_back(run_point(fabric, hosts, m, quick));
      }
    }
  }

  // Quick mode keeps the eager build affordable for sanitizer smoke
  // runs; the full run does the headline n=1024 comparison.
  const StorageCompare storage = compare_storage(quick ? 256 : 1024);

  const ShardedGrid grid = measure_sharded_grid(quick);

  GateResult gate_result;
  if (gate) gate_result = run_gate(baseline_path);

  const char* out_path = std::getenv("NIMCAST_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_scale.json";
  if (FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"scale\",\n"
                 "  \"config\": {\n"
                 "    \"quick\": %s,\n"
                 "    \"sweep\": \"fat_tree + irregular, n in "
                 "{64,256,1024} hosts, m in {1,16}, full broadcast, "
                 "optimal tree, smart-fpfs, compressed routes\"\n"
                 "  },\n"
                 "  \"points\": [\n",
                 quick ? "true" : "false");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const PointResult& r = points[i];
      std::fprintf(out,
                   "    {\"fabric\": \"%s\", \"hosts\": %d, \"m\": %d, "
                   "\"reps\": %d, \"build_ms\": %.2f, \"wall_ms\": %.2f, "
                   "\"events_total\": %.0f, \"events_per_sec\": %.1f, "
                   "\"latency_us_mean\": %.3f, \"route_bytes\": %zu, "
                   "\"peak_rss_kb\": %zu}%s\n",
                   r.fabric, r.hosts, r.m, r.reps, r.build_ms, r.wall_ms,
                   r.events_total, r.events_per_sec, r.latency_us_mean,
                   r.route_bytes, r.rss_kb,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"storage_compare\": {\"hosts\": %d, "
                 "\"eager_build_ms\": %.2f, \"compressed_build_ms\": %.3f, "
                 "\"eager_bytes\": %zu, \"compressed_bytes\": %zu, "
                 "\"memory_ratio\": %.2f},\n",
                 storage.hosts, storage.eager_build_ms,
                 storage.compressed_build_ms, storage.eager_bytes,
                 storage.compressed_bytes, storage.memory_ratio);
    if (gate_result.ran) {
      std::fprintf(out,
                   "  \"gate\": {\"machine_scale\": %.3f, "
                   "\"recorded_wall_ms\": %.2f, \"predicted_wall_ms\": "
                   "%.2f, \"actual_wall_ms\": %.2f, \"passed\": %s},\n",
                   gate_result.machine_scale, gate_result.recorded_wall_ms,
                   gate_result.predicted_wall_ms, gate_result.actual_wall_ms,
                   gate_result.passed ? "true" : "false");
    }
    // Machine-speed probe recorded alongside the wall-time metrics so a
    // downstream trend diff (scripts/bench_trend.py) can normalize two
    // runs taken on different machines onto one scale.
    std::fprintf(out,
                 "  \"machine_probe_events_per_sec\": %.1f,\n"
                 "  \"peak_rss_kb\": %zu,\n"
                 "  \"git_rev\": \"%s\"\n"
                 "}\n",
                 churn_probe().events_per_sec, peak_rss_kb(),
                 bench::git_rev().c_str());
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    bench::expect_shape(false, std::string("could not write ") + out_path);
  }

  // The intra-run sharding grid gets its own artifact so the CI leg (and
  // anyone comparing machines) can diff the thread-scaling shape without
  // parsing the sweep JSON.
  const char* sharded_path = std::getenv("NIMCAST_BENCH_SHARDED_OUT");
  if (sharded_path == nullptr) sharded_path = "BENCH_sharded.json";
  if (FILE* out = std::fopen(sharded_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"sharded\",\n"
                 "  \"config\": {\n"
                 "    \"quick\": %s,\n"
                 "    \"grid\": \"fat_tree full broadcast, m=%d, n in "
                 "{256,1024} hosts x threads in {1,2,4,8}, one shard "
                 "per thread; threads=1 is the serial engine\"\n"
                 "  },\n"
                 "  \"hw_threads\": %u,\n"
                 "  \"reps\": %d,\n"
                 "  \"points\": [\n",
                 quick ? "true" : "false", grid.m, grid.hw_threads,
                 grid.reps);
    for (std::size_t i = 0; i < grid.points.size(); ++i) {
      const ShardedPoint& p = grid.points[i];
      std::fprintf(out,
                   "    {\"hosts\": %d, \"threads\": %d, \"shards\": %d, "
                   "\"wall_ms\": %.2f, \"events_per_sec\": %.1f, "
                   "\"speedup\": %.3f, \"window_ns\": %" PRId64 ", "
                   "\"barrier_wall_ns\": %" PRId64 ", "
                   "\"windows_planned\": %" PRId64 ", "
                   "\"bit_identical\": %s}%s\n",
                   p.hosts, p.threads, p.shards, p.wall_ms,
                   p.events_per_sec, p.speedup, p.window_ns,
                   p.barrier_wall_ns, p.windows_planned,
                   p.identical ? "true" : "false",
                   i + 1 < grid.points.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"barrier_compare\": {\"hosts\": 1024, \"shards\": 4, "
                 "\"eager_barrier_ns\": %" PRId64 ", "
                 "\"overlapped_barrier_ns\": %" PRId64 ", "
                 "\"reduction\": %.3f, \"bit_identical\": %s},\n"
                 "  \"git_rev\": \"%s\"\n"
                 "}\n",
                 grid.barrier.eager_ns, grid.barrier.overlapped_ns,
                 grid.barrier.reduction,
                 grid.barrier.identical ? "true" : "false",
                 bench::git_rev().c_str());
    std::fclose(out);
    std::printf("wrote %s\n", sharded_path);
  } else {
    bench::expect_shape(false,
                        std::string("could not write ") + sharded_path);
  }

  return bench::finish("bench_scale");
}
