// Reproduces the Section 3.3.2 buffer-requirement comparison of the two
// smart-NI implementations. Analytic per-packet holding times
// (T_f = ((c-1)m + 1) t_nd vs T_p = c t_nd) side by side with measured
// NI buffer occupancy from full-system simulation of a fan-out
// intermediate node.

#include "analysis/buffer_model.hpp"
#include "bench/common.hpp"
#include "core/host_tree.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/up_down.hpp"

using namespace nimcast;

namespace {

struct Measured {
  double peak;
  double integral;
};

/// source -> intermediate -> c leaves, all on one switch (contention-free
/// apart from the intermediate's own injection channel — the paper's
/// best-case assumption).
Measured measure(std::int32_t children, std::int32_t m,
                 mcast::NiStyle style) {
  const auto hosts = static_cast<std::size_t>(children) + 2;
  topo::Topology topology{topo::Graph{1, {}},
                          std::vector<topo::SwitchId>(hosts, 0), "star"};
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  core::HostTree tree;
  tree.root = 0;
  tree.nodes = {0, 1};
  tree.children[0] = {1};
  tree.children[1] = {};
  for (std::int32_t c = 0; c < children; ++c) {
    const topo::HostId leaf = 2 + c;
    tree.nodes.push_back(leaf);
    tree.children[1].push_back(leaf);
    tree.children[leaf] = {};
  }
  mcast::MulticastEngine engine{
      topology, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{},
                                     net::NetworkConfig{}, style}};
  const auto result = engine.run(tree, m);
  for (const auto& b : result.buffers) {
    if (b.host == 1) return Measured{b.peak_packets, b.packet_us_integral};
  }
  return Measured{0, 0};
}

}  // namespace

int main() {
  std::printf("=== Sec. 3.3.2 reproduction: FCFS vs FPFS buffer demand at "
              "an intermediate NI ===\n\n");
  const sim::Time t_nd = netif::SystemParams{}.t_snd;

  harness::Table table{{"children c", "packets m", "T_f model (us)",
                        "T_p model (us)", "FCFS sim peak (pkts)",
                        "FPFS sim peak (pkts)", "FCFS sim integral",
                        "FPFS sim integral"}};
  for (const std::int32_t c : {1, 2, 4, 7}) {
    for (const std::int32_t m : {1, 2, 4, 8, 16}) {
      const auto fcfs = measure(c, m, mcast::NiStyle::kSmartFcfs);
      const auto fpfs = measure(c, m, mcast::NiStyle::kSmartFpfs);
      table.add_row(
          {harness::Table::num(std::int64_t{c}),
           harness::Table::num(std::int64_t{m}),
           harness::Table::num(
               analysis::fcfs_holding_time(c, m, t_nd).as_us()),
           harness::Table::num(analysis::fpfs_holding_time(c, t_nd).as_us()),
           harness::Table::num(fcfs.peak, 0),
           harness::Table::num(fpfs.peak, 0),
           harness::Table::num(fcfs.integral),
           harness::Table::num(fpfs.integral)});

      bench::expect_shape(fcfs.integral >= fpfs.integral - 1e-9,
                          "Sec3.3.2: FCFS buffer demand >= FPFS");
      bench::expect_shape(fcfs.peak >= fpfs.peak - 1e-9,
                          "Sec3.3.2: FCFS peak >= FPFS peak");
      if (c >= 2) {
        // FCFS must hold the whole message at the fan-out node.
        bench::expect_shape(fcfs.peak == static_cast<double>(m),
                            "Sec3.3.2: FCFS buffers all m packets");
      }
      if (c >= 2 && m >= 8) {
        bench::expect_shape(fpfs.peak <= static_cast<double>(m) / 2.0,
                            "Sec3.3.2: FPFS peak well below message size");
      }
    }
  }
  table.print(std::cout);
  table.write_csv("buffer_fcfs_vs_fpfs.csv");

  std::printf("\nPer-packet holding-time ratio T_f / T_p grows linearly in "
              "m (slope (c-1)/c):\n");
  for (const std::int32_t c : {2, 4, 7}) {
    std::printf("  c=%d: ", c);
    for (const std::int32_t m : {1, 4, 16, 64}) {
      const double ratio =
          analysis::fcfs_holding_time(c, m, t_nd).as_us() /
          analysis::fpfs_holding_time(c, t_nd).as_us();
      std::printf("m=%-3d %.1fx   ", m, ratio);
    }
    std::printf("\n");
  }

  return bench::finish("bench_buffer_fcfs_vs_fpfs");
}
