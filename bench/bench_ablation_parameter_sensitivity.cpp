// Ablation (ours): sensitivity of the k-binomial advantage to the system
// constants. The paper fixes t_s = t_r = 12.5us, t_snd = 3us,
// t_rcv = 2us, 64-byte packets. We sweep the NI send overhead and the
// link bandwidth and re-measure the binomial vs optimal-k-binomial ratio
// at the paper's headline point (47 destinations, 16 packets), showing
// the win is robust and which direction each knob moves it.

#include "bench/common.hpp"

using namespace nimcast;

namespace {

double ratio_at(harness::IrregularTestbed::Config cfg, std::int32_t n,
                std::int32_t m) {
  const harness::IrregularTestbed bed{cfg};
  const auto b = bed.measure(n, m, harness::TreeSpec::binomial(),
                             mcast::NiStyle::kSmartFpfs);
  const auto k = bed.measure(n, m, harness::TreeSpec::optimal(),
                             mcast::NiStyle::kSmartFpfs);
  return b.latency_us.mean() / k.latency_us.mean();
}

}  // namespace

int main() {
  std::printf("=== Ablation: parameter sensitivity of the k-binomial win "
              "(n=48, m=16) ===\n\n");

  auto base = bench::paper_testbed_config();
  // The sweep multiplies run count by its point count; trim repetitions.
  base.num_topologies = std::min(base.num_topologies, 4);
  base.sets_per_topology = std::min(base.sets_per_topology, 10);

  std::printf("NI send overhead t_snd (paper: 3.0 us):\n");
  harness::Table t1{{"t_snd (us)", "binomial/k-binomial"}};
  std::vector<double> by_tsnd;
  for (const double tsnd : {1.0, 2.0, 3.0, 5.0, 8.0}) {
    auto cfg = base;
    cfg.params.t_snd = sim::Time::us(tsnd);
    const double r = ratio_at(cfg, 48, 16);
    by_tsnd.push_back(r);
    t1.add_row({harness::Table::num(tsnd), harness::Table::num(r, 2)});
  }
  t1.print(std::cout);
  // Larger per-copy send cost amplifies the fan-out penalty of the
  // binomial tree, so the ratio must grow with t_snd.
  for (std::size_t i = 1; i < by_tsnd.size(); ++i) {
    bench::expect_shape(by_tsnd[i] >= by_tsnd[i - 1] - 0.03,
                        "ratio grows with t_snd");
  }
  bench::expect_shape(by_tsnd.front() > 1.1,
                      "k-binomial wins even with cheap sends");

  std::printf("\nHost software overhead t_s = t_r (paper: 12.5 us):\n");
  harness::Table t2{{"t_s=t_r (us)", "binomial/k-binomial"}};
  std::vector<double> by_host;
  for (const double th : {0.0, 5.0, 12.5, 25.0, 50.0}) {
    auto cfg = base;
    cfg.params.t_s = sim::Time::us(th);
    cfg.params.t_r = sim::Time::us(th);
    const double r = ratio_at(cfg, 48, 16);
    by_host.push_back(r);
    t2.add_row({harness::Table::num(th), harness::Table::num(r, 2)});
  }
  t2.print(std::cout);
  // Host overheads are constant adders for both trees; they dilute the
  // ratio. Must be monotone decreasing.
  for (std::size_t i = 1; i < by_host.size(); ++i) {
    bench::expect_shape(by_host[i] <= by_host[i - 1] + 0.03,
                        "host overhead dilutes the ratio");
  }

  std::printf("\nLink bandwidth, 64 B packets (paper-era: 160 MB/s):\n");
  harness::Table t3{{"bandwidth (MB/s)", "binomial/k-binomial"}};
  for (const double bw : {40.0, 160.0, 640.0}) {
    auto cfg = base;
    cfg.network.bandwidth_bytes_per_us = bw;
    const double r = ratio_at(cfg, 48, 16);
    t3.add_row({harness::Table::num(bw, 0), harness::Table::num(r, 2)});
    bench::expect_shape(r > 1.2, "k-binomial wins at every bandwidth");
  }
  t3.print(std::cout);

  return bench::finish("bench_ablation_parameter_sensitivity");
}
