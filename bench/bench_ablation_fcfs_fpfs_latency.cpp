// Ablation (ours): the paper argues for FPFS over FCFS on implementation
// and buffering grounds (Section 3.3) but never compares their *latency*.
// This bench does, on the full evaluation rig.
//
// Outcome worth knowing: in the paper's synchronous step model the two
// disciplines tie on saturated trees, and our finer NI model splits them
// *by tree shape*:
//   - on the optimal k-binomial trees (the ones this system deploys),
//     FPFS wins — FCFS stalls every child after the first until the
//     whole message has arrived, and deep low-fan-out trees compound
//     that stall at every level;
//   - on the plain binomial tree, FCFS's child-major source order hands
//     the complete message to the *deepest* subtree first, which
//     slightly beats FPFS's packet-major order (<= ~10%).
// Combined with the Section 3.3.2 buffer result, FPFS remains the right
// discipline for the deployed configuration.

#include "bench/common.hpp"

using namespace nimcast;

int main() {
  std::printf("=== Ablation: FPFS vs FCFS forwarding latency ===\n\n");
  const harness::IrregularTestbed bed{bench::paper_testbed_config()};

  for (const auto spec :
       {harness::TreeSpec::binomial(), harness::TreeSpec::optimal()}) {
    const bool optimal_tree =
        spec.kind == harness::TreeSpec::Kind::kOptimal;
    std::printf("--- %s tree ---\n", spec.name().c_str());
    harness::Table table{
        {"n", "m", "FPFS (us)", "FCFS (us)", "FCFS/FPFS"}};
    for (const std::int32_t n : {16, 48}) {
      for (const std::int32_t m : {1, 2, 4, 8, 16}) {
        const auto fpfs =
            bed.measure(n, m, spec, mcast::NiStyle::kSmartFpfs);
        const auto fcfs =
            bed.measure(n, m, spec, mcast::NiStyle::kSmartFcfs);
        const double ratio =
            fcfs.latency_us.mean() / fpfs.latency_us.mean();
        table.add_row({harness::Table::num(std::int64_t{n}),
                       harness::Table::num(std::int64_t{m}),
                       harness::Table::num(fpfs.latency_us.mean()),
                       harness::Table::num(fcfs.latency_us.mean()),
                       harness::Table::num(ratio, 2)});
        if (m == 1) {
          bench::expect_shape(std::abs(ratio - 1.0) < 0.01,
                              "single packet: disciplines coincide");
        } else if (optimal_tree) {
          bench::expect_shape(ratio >= 0.995,
                              "optimal k-binomial trees: FPFS never loses");
        } else {
          bench::expect_shape(ratio >= 0.85 && ratio <= 1.05,
                              "binomial trees: FCFS's child-major head "
                              "start stays within ~10%");
        }
      }
    }
    table.print(std::cout);
    table.write_csv(optimal_tree ? "ablation_fcfs_fpfs_opt.csv"
                                 : "ablation_fcfs_fpfs_binomial.csv");
    std::printf("\n");
  }

  return bench::finish("bench_ablation_fcfs_fpfs_latency");
}
