// Extension experiment (paper Section 7 future work / Section 4.3.2):
// k-binomial trees on *regular* k-ary n-cube networks using
// dimension-ordered routing and the dimension-ordered chain as the
// contention-free base ordering. Same headline comparison as Fig. 14 on
// an 8x8 mesh, a 4x4x4 mesh, and a binary 6-cube — all 64 hosts, so the
// results are directly comparable to the irregular-network figures.

#include "bench/common.hpp"
#include "routing/dimension_ordered.hpp"
#include "routing/up_down.hpp"
#include "topology/fat_tree.hpp"

using namespace nimcast;

namespace {

struct RegularRig {
  std::string label;
  topo::Topology topology;
  std::unique_ptr<routing::Router> router;
  routing::RouteTable routes;
  core::Chain chain;

  RegularRig(std::string name, topo::KAryNCubeConfig cfg)
      : label{std::move(name)},
        topology{topo::make_kary_ncube(cfg)},
        router{std::make_unique<routing::DimensionOrderedRouter>(
            topology.switches(), cfg)},
        routes{topology, *router},
        chain{core::dimension_chain(topology)} {}

  RegularRig(std::string name, topo::FatTreeConfig cfg)
      : label{std::move(name)},
        topology{topo::make_fat_tree(cfg)},
        router{std::make_unique<routing::UpDownRouter>(topology.switches())},
        routes{topology, *router},
        chain{core::cco_ordering(
            topology,
            static_cast<const routing::UpDownRouter&>(*router))} {}
};

}  // namespace

int main() {
  std::printf("=== Extension: k-binomial multicast on regular k-ary "
              "n-cubes ===\n\n");
  const netif::SystemParams params;
  const net::NetworkConfig network;
  const std::int32_t reps =
      std::getenv("NIMCAST_QUICK") != nullptr ? 10 : 60;

  std::vector<std::unique_ptr<RegularRig>> rigs;
  rigs.push_back(std::make_unique<RegularRig>(
      "8x8 mesh", topo::KAryNCubeConfig{8, 2, false}));
  rigs.push_back(std::make_unique<RegularRig>(
      "4x4x4 mesh", topo::KAryNCubeConfig{4, 3, false}));
  rigs.push_back(std::make_unique<RegularRig>(
      "binary 6-cube", topo::KAryNCubeConfig{2, 6, false}));
  rigs.push_back(std::make_unique<RegularRig>(
      "8x8 torus (2 VCs, dateline)", topo::KAryNCubeConfig{8, 2, true}));
  rigs.push_back(std::make_unique<RegularRig>(
      "fat-tree 8x4 (up*/down*)", topo::FatTreeConfig{}));

  for (const auto& rig : rigs) {
    std::printf("--- %s (64 hosts) ---\n", rig->label.c_str());
    harness::Table table{
        {"n", "m", "binomial (us)", "opt k-bin (us)", "ratio"}};
    for (const std::int32_t n : {16, 48}) {
      for (const std::int32_t m : {1, 4, 16, 32}) {
        const auto bin = harness::measure_point(
            rig->topology, rig->routes, rig->chain, params, network, n, m,
            harness::TreeSpec::binomial(), mcast::NiStyle::kSmartFpfs,
            harness::OrderingKind::kCco, reps, 7);
        const auto opt = harness::measure_point(
            rig->topology, rig->routes, rig->chain, params, network, n, m,
            harness::TreeSpec::optimal(), mcast::NiStyle::kSmartFpfs,
            harness::OrderingKind::kCco, reps, 7);
        const double ratio =
            bin.latency_us.mean() / opt.latency_us.mean();
        table.add_row({harness::Table::num(std::int64_t{n}),
                       harness::Table::num(std::int64_t{m}),
                       harness::Table::num(bin.latency_us.mean()),
                       harness::Table::num(opt.latency_us.mean()),
                       harness::Table::num(ratio, 2)});
        bench::expect_shape(ratio >= 0.999,
                            rig->label + ": k-binomial never loses");
        if (m >= 16 && n == 48) {
          bench::expect_shape(ratio > 1.5,
                              rig->label +
                                  ": large-m advantage carries over to "
                                  "regular networks");
        }
      }
    }
    table.print(std::cout);
    std::printf("\n");
  }

  return bench::finish("bench_regular_networks");
}
