// Ablation (ours): sensitivity of the results to the wormhole
// channel-release model. `kAtDelivery` (default) holds every channel of
// a worm until the packet has fully drained at the destination NI —
// conservative. `kPipelined` releases upstream channels as the tail
// passes. If the paper's conclusions depended on the conservative
// approximation, the two models would rank trees differently; they don't.

#include "bench/common.hpp"

using namespace nimcast;

namespace {

double ratio_for(net::ReleaseModel model) {
  auto cfg = bench::paper_testbed_config();
  cfg.network.release_model = model;
  cfg.num_topologies = std::min(cfg.num_topologies, 5);
  cfg.sets_per_topology = std::min(cfg.sets_per_topology, 15);
  const harness::IrregularTestbed bed{cfg};
  const auto bin = bed.measure(48, 16, harness::TreeSpec::binomial(),
                               mcast::NiStyle::kSmartFpfs);
  const auto opt = bed.measure(48, 16, harness::TreeSpec::optimal(),
                               mcast::NiStyle::kSmartFpfs);
  std::printf("  %-12s binomial %.1f us, opt k-bin %.1f us -> ratio %.2f\n",
              model == net::ReleaseModel::kAtDelivery ? "at-delivery"
                                                      : "pipelined",
              bin.latency_us.mean(), opt.latency_us.mean(),
              bin.latency_us.mean() / opt.latency_us.mean());
  return bin.latency_us.mean() / opt.latency_us.mean();
}

}  // namespace

int main() {
  std::printf("=== Ablation: wormhole channel-release model (n=48, m=16) "
              "===\n\n");
  const double conservative = ratio_for(net::ReleaseModel::kAtDelivery);
  const double pipelined = ratio_for(net::ReleaseModel::kPipelined);

  bench::expect_shape(std::abs(conservative - pipelined) < 0.15,
                      "headline ratio robust to the release model");
  bench::expect_shape(conservative > 1.5 && pipelined > 1.5,
                      "k-binomial wins clearly under both models");
  std::printf("\nconclusion: tree ranking is insensitive to the release "
              "approximation (%.2f vs %.2f)\n",
              conservative, pipelined);

  return bench::finish("bench_ablation_release_model");
}
