// Ablation (ours): oblivious multipath routing. The deterministic
// up*/down* router funnels every pair over the lexicographically
// smallest shortest path; the multipath variant hashes pairs across all
// shortest legal paths (ECMP-style). On a fat-tree — where level-based
// orientation gives one path per spine — this spreads concurrent
// multicast traffic across the spines. Measured under the
// multiple-multicast workload, where single-path spine congestion
// actually bites.

#include "bench/common.hpp"
#include "core/host_tree.hpp"
#include "core/optimal_k.hpp"
#include "routing/multipath_up_down.hpp"
#include "sim/rng.hpp"
#include "topology/fat_tree.hpp"

using namespace nimcast;

namespace {

struct Load {
  double latency_us = 0;
  double block_us = 0;
};

Load run_batch(const topo::Topology& topology,
               const routing::RouteTable& routes, const core::Chain& chain,
               std::int32_t ops, std::int32_t n, std::int32_t m,
               std::uint64_t seed) {
  sim::Rng rng{seed};
  const auto k = core::optimal_k(n, m).k;
  std::vector<mcast::MulticastSpec> specs;
  for (std::int32_t op = 0; op < ops; ++op) {
    const auto draw = rng.sample_without_replacement(
        static_cast<std::size_t>(topology.num_hosts()),
        static_cast<std::size_t>(n));
    std::vector<topo::HostId> dests;
    for (std::size_t i = 1; i < draw.size(); ++i) {
      dests.push_back(static_cast<topo::HostId>(draw[i]));
    }
    const auto members = core::arrange_participants(
        chain, static_cast<topo::HostId>(draw.front()), dests);
    specs.push_back(mcast::MulticastSpec{
        core::HostTree::bind(core::make_kbinomial(n, k), members), m});
  }
  const mcast::MulticastEngine engine{
      topology, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{},
                                     net::NetworkConfig{},
                                     mcast::NiStyle::kSmartFpfs}};
  const auto batch = engine.run_many(specs);
  Load load;
  for (const auto& op : batch.operations) {
    load.latency_us += op.latency.as_us() / ops;
  }
  load.block_us = batch.total_channel_block_time.as_us();
  return load;
}

}  // namespace

int main() {
  std::printf("=== Ablation: single-path vs multipath up*/down* on a "
              "fat-tree (concurrent multicasts) ===\n\n");
  const topo::FatTreeConfig cfg;
  const auto topology = topo::make_fat_tree(cfg);
  const routing::UpDownRouter single{topology.switches(),
                                     topo::fat_tree_levels(cfg)};
  const routing::MultipathUpDownRouter multi{topology.switches(),
                                             topo::fat_tree_levels(cfg)};
  const routing::RouteTable single_routes{topology, single};
  const routing::RouteTable multi_routes{topology, multi};
  const auto chain = core::cco_ordering(topology, single);

  const int seeds = std::getenv("NIMCAST_QUICK") != nullptr ? 3 : 10;
  harness::Table table{{"concurrent ops", "single lat (us)",
                        "multi lat (us)", "single block (us)",
                        "multi block (us)"}};
  double single_block_total = 0;
  double multi_block_total = 0;
  for (const std::int32_t ops : {2, 4, 8, 16}) {
    Load s{};
    Load mres{};
    for (int seed = 0; seed < seeds; ++seed) {
      const auto a = run_batch(topology, single_routes, chain, ops, 12, 8,
                               static_cast<std::uint64_t>(seed) + 1);
      const auto b = run_batch(topology, multi_routes, chain, ops, 12, 8,
                               static_cast<std::uint64_t>(seed) + 1);
      s.latency_us += a.latency_us / seeds;
      s.block_us += a.block_us / seeds;
      mres.latency_us += b.latency_us / seeds;
      mres.block_us += b.block_us / seeds;
    }
    single_block_total += s.block_us;
    multi_block_total += mres.block_us;
    table.add_row({harness::Table::num(std::int64_t{ops}),
                   harness::Table::num(s.latency_us),
                   harness::Table::num(mres.latency_us),
                   harness::Table::num(s.block_us),
                   harness::Table::num(mres.block_us)});
  }
  table.print(std::cout);
  table.write_csv("ablation_multipath.csv");

  std::printf("\naggregate block: single %.1f us, multipath %.1f us\n",
              single_block_total, multi_block_total);
  bench::expect_shape(multi_block_total < single_block_total,
                      "multipath spreads load and reduces blocking");

  return bench::finish("bench_ablation_multipath");
}
