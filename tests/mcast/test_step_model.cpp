#include "mcast/step_model.hpp"

#include <gtest/gtest.h>

#include "core/kbinomial.hpp"

namespace nimcast::mcast {
namespace {

TEST(StepModel, PaperFigure5BinomialTakesSixSteps) {
  // 3-packet message, 3 destinations, binomial tree: 6 steps (Fig. 5a).
  const auto sched =
      step_schedule(core::make_binomial(4), 3, Discipline::kFpfs);
  EXPECT_EQ(sched.total_steps, 6);
}

TEST(StepModel, PaperFigure5LinearTakesFiveSteps) {
  // Same multicast over the linear tree: 5 steps (Fig. 5b) — the paper's
  // proof that binomial is not optimal under packetization.
  const auto sched =
      step_schedule(core::make_linear(4), 3, Discipline::kFpfs);
  EXPECT_EQ(sched.total_steps, 5);
}

TEST(StepModel, PaperFigure8BinomialSevenDestsThreePackets) {
  // Fig. 8: 3-packet multicast to 7 destinations over the binomial tree
  // completes in 9 steps = t_1 + (m-1) * c_R = 3 + 2*3.
  const auto sched =
      step_schedule(core::make_binomial(8), 3, Discipline::kFpfs);
  EXPECT_EQ(sched.total_steps, 9);
  EXPECT_EQ(sched.completion[0], 3);
  EXPECT_EQ(sched.completion[1], 6);
  EXPECT_EQ(sched.completion[2], 9);
}

TEST(StepModel, SinglePacketMatchesTreeDepthFormula) {
  for (std::int32_t n : {2, 5, 8, 16, 33}) {
    for (std::int32_t k = 1; k <= 5; ++k) {
      const auto tree = core::make_kbinomial(n, k);
      const auto sched = step_schedule(tree, 1, Discipline::kFpfs);
      EXPECT_EQ(sched.total_steps, tree.steps_to_complete());
      // Per-rank arrival equals the tree's single-packet step labels.
      const auto labels = tree.single_packet_steps();
      for (std::int32_t r = 0; r < n; ++r) {
        EXPECT_EQ(sched.arrival[static_cast<std::size_t>(r)][0],
                  labels[static_cast<std::size_t>(r)]);
      }
    }
  }
}

TEST(StepModel, SourceHoldsAllPacketsAtStepZero) {
  const auto sched =
      step_schedule(core::make_binomial(8), 4, Discipline::kFpfs);
  for (std::int32_t j = 0; j < 4; ++j) {
    EXPECT_EQ(sched.arrival[0][static_cast<std::size_t>(j)], 0);
  }
}

TEST(StepModel, PacketsArriveInOrderEverywhere) {
  for (const Discipline d : {Discipline::kFpfs, Discipline::kFcfs}) {
    const auto sched = step_schedule(core::make_kbinomial(16, 2), 5, d);
    for (std::int32_t r = 1; r < 16; ++r) {
      for (std::int32_t j = 0; j + 1 < 5; ++j) {
        EXPECT_LT(sched.arrival[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(j)],
                  sched.arrival[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(j + 1)]);
      }
    }
  }
}

TEST(StepModel, FcfsDelaysLaterChildrenUntilMessageComplete) {
  // Tree: 0 -> 1 -> {2, 3}. Under FCFS, child 3 of node 1 cannot see
  // packet 0 before node 1 has received the whole message.
  core::RankTree t;
  t.parent = {-1, 0, 1, 1};
  t.children = {{1}, {2, 3}, {}, {}};
  const std::int32_t m = 4;
  const auto sched = step_schedule(t, m, Discipline::kFcfs);
  const std::int32_t last_arrival_at_1 =
      sched.arrival[1][static_cast<std::size_t>(m - 1)];
  EXPECT_GT(sched.arrival[3][0], last_arrival_at_1);
  // Whereas under FPFS child 3 gets packet 0 long before that.
  const auto fpfs = step_schedule(t, m, Discipline::kFpfs);
  EXPECT_LT(fpfs.arrival[3][0], last_arrival_at_1);
}

TEST(StepModel, FpfsNeverSlowerThanFcfsOnKBinomialTrees) {
  for (std::int32_t n : {4, 8, 16, 31}) {
    for (std::int32_t k = 1; k <= 4; ++k) {
      for (std::int32_t m : {1, 2, 4, 8}) {
        const auto tree = core::make_kbinomial(n, k);
        const auto fp = step_schedule(tree, m, Discipline::kFpfs);
        const auto fc = step_schedule(tree, m, Discipline::kFcfs);
        EXPECT_LE(fp.total_steps, fc.total_steps)
            << "n=" << n << " k=" << k << " m=" << m;
      }
    }
  }
}

TEST(StepModel, TrivialTreeNoDestinations) {
  const auto sched =
      step_schedule(core::make_binomial(1), 3, Discipline::kFpfs);
  EXPECT_EQ(sched.total_steps, 0);
}

TEST(StepModel, RejectsZeroPackets) {
  EXPECT_THROW((void)step_schedule(core::make_binomial(4), 0,
                                   Discipline::kFpfs),
               std::invalid_argument);
}

TEST(StepModel, DisciplineNames) {
  EXPECT_STREQ(to_string(Discipline::kFpfs), "FPFS");
  EXPECT_STREQ(to_string(Discipline::kFcfs), "FCFS");
}

}  // namespace
}  // namespace nimcast::mcast
