// Streaming broadcast on the full simulated system
// (MulticastEngine::run_streaming): equivalence of the R = 1 plan with
// the pre-streaming run() path, delivery accounting under rotation,
// sharded-engine bit-identity, saturation throughput, and repair under
// scheduled faults.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "core/rotation.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"

namespace nimcast::mcast {
namespace {

struct Rig {
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  core::Chain cco;
  std::int32_t k;

  explicit Rig(std::uint64_t seed = 1997)
      : topology([seed] {
          sim::Rng rng{seed};
          return topo::make_irregular(topo::IrregularConfig{}, rng);
        }()),
        router{topology.switches()},
        routes{topology, router},
        cco{core::cco_ordering(topology, router)},
        k{core::optimal_k(64, 4).k} {}

  [[nodiscard]] core::RotationPlan plan(std::int32_t rotation) const {
    core::RotationConfig rc;
    rc.rotation_trees = rotation;
    rc.fanout_bound = k;
    return core::plan_rotation(topology, routes, router, cco, rc);
  }

  [[nodiscard]] MulticastEngine engine(
      std::int32_t shards = 1,
      net::FaultPlan faults = net::FaultPlan{}) const {
    MulticastEngine::Config cfg;
    cfg.style = NiStyle::kSmartFpfs;
    cfg.shards = shards;
    cfg.network.faults = std::move(faults);
    return MulticastEngine{topology, routes, cfg};
  }
};

TEST(Streaming, SizeOnePlanMatchesRunExactly) {
  const Rig rig;
  const auto plan = rig.plan(1);
  const auto engine = rig.engine();
  for (const std::int32_t packets : {1, 6}) {
    const StreamingResult sr = engine.run_streaming(plan, packets);
    const MulticastResult mr = engine.run(plan.members[0].tree, packets);
    EXPECT_EQ(sr.makespan, mr.latency) << packets << " packets";
    EXPECT_EQ(sr.ni_makespan, mr.ni_latency);
    EXPECT_EQ(sr.packets_delivered, mr.packets_delivered);
    EXPECT_EQ(sr.rotation_used, 1);
    EXPECT_EQ(sr.outcome, Outcome::kComplete);
  }
}

TEST(Streaming, SinglePacketStreamUsesOnlyTheFixedTree) {
  // R = min(plan size, stream packets): one packet always travels down
  // member 0, so the result is byte-identical to the fixed tree's.
  const Rig rig;
  const auto engine = rig.engine();
  const StreamingResult sr = engine.run_streaming(rig.plan(4), 1);
  const MulticastResult mr = engine.run(rig.plan(1).members[0].tree, 1);
  EXPECT_EQ(sr.rotation_used, 1);
  EXPECT_EQ(sr.makespan, mr.latency);
  EXPECT_EQ(sr.ni_makespan, mr.ni_latency);
}

TEST(Streaming, RotationDeliversTheFullStreamEverywhere) {
  const Rig rig;
  const auto engine = rig.engine();
  const StreamingResult sr = engine.run_streaming(rig.plan(4), 32);
  EXPECT_EQ(sr.outcome, Outcome::kComplete);
  EXPECT_EQ(sr.rotation_used, 4);
  EXPECT_EQ(sr.stream_packets, 32);
  EXPECT_EQ(sr.packets_delivered, std::int64_t{63} * 32);
  ASSERT_EQ(sr.destinations.size(), 63u);
  for (const DestinationStatus& d : sr.destinations) {
    EXPECT_TRUE(d.delivered);
  }
  EXPECT_GE(sr.makespan, sr.ni_makespan);
  EXPECT_GT(sr.p99_gap, sim::Time::zero());
  EXPECT_GT(sr.flits_per_us, 0.0);
}

TEST(Streaming, ShardedEngineIsBitIdenticalToSerial) {
  const Rig rig;
  const auto plan = rig.plan(4);
  const StreamingResult serial = rig.engine(1).run_streaming(plan, 32);
  const StreamingResult sharded = rig.engine(4).run_streaming(plan, 32);
  EXPECT_EQ(serial.makespan, sharded.makespan);
  EXPECT_EQ(serial.ni_makespan, sharded.ni_makespan);
  EXPECT_EQ(serial.p99_gap, sharded.p99_gap);
  EXPECT_EQ(serial.packets_delivered, sharded.packets_delivered);
  EXPECT_EQ(serial.flits_per_us, sharded.flits_per_us);
  EXPECT_EQ(serial.total_channel_block_time, sharded.total_channel_block_time);
}

TEST(Streaming, RotationBeatsTheFixedTreeAtSaturation) {
  // The planner's load-balanced binding caps every host's cumulative NI
  // work near the k-limited floor, so a long stream sustains well above
  // the fixed tree's t_rcv + k*t_snd per-packet period.
  const Rig rig;
  const auto engine = rig.engine();
  const StreamingResult fixed = engine.run_streaming(rig.plan(1), 256);
  const StreamingResult rotated = engine.run_streaming(rig.plan(4), 256);
  EXPECT_GE(rotated.flits_per_us, 1.2 * fixed.flits_per_us);
}

TEST(Streaming, RepairRecoversReachableDestinationsAfterLinkFault) {
  const Rig rig;
  const auto plan = rig.plan(4);
  const auto num_links = rig.topology.switches().num_edges();
  ASSERT_GE(num_links, 3);
  for (const topo::LinkId link : {0, num_links / 2, num_links - 1}) {
    net::FaultPlan faults;
    faults.link_down(sim::Time::us(40.0), link);
    const auto engine = rig.engine(1, std::move(faults));
    StreamingResult sr;
    ASSERT_NO_THROW(sr = engine.run_streaming(plan, 16)) << "link " << link;
    EXPECT_NE(sr.outcome, Outcome::kFailed);
    ASSERT_EQ(sr.destinations.size(), 63u);
    for (const DestinationStatus& d : sr.destinations) {
      EXPECT_TRUE(d.delivered || !d.reachable)
          << "host " << d.host << " link " << link;
    }
  }
}

TEST(Streaming, RejectsInvalidRequests) {
  const Rig rig;
  const auto engine = rig.engine();
  EXPECT_THROW((void)engine.run_streaming(rig.plan(1), 0),
               std::invalid_argument);
  MulticastEngine::Config conventional;
  conventional.style = NiStyle::kConventional;
  const MulticastEngine wrong_style{rig.topology, rig.routes, conventional};
  EXPECT_THROW((void)wrong_style.run_streaming(rig.plan(1), 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::mcast
