// Congestion-aware adaptive per-packet member selection
// (Config::selection = kAdaptive): idle-fabric byte-identity with the
// static g mod R rotation, serial/sharded bit-identity of the telemetry
// snapshots, per-member accounting, contended-fabric wins over the
// static split, and composition with fault repair.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "core/rotation.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"

namespace nimcast::mcast {
namespace {

struct Rig {
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  core::Chain cco;
  std::int32_t k;

  explicit Rig(std::uint64_t seed = 1997)
      : topology([seed] {
          sim::Rng rng{seed};
          return topo::make_irregular(topo::IrregularConfig{}, rng);
        }()),
        router{topology.switches()},
        routes{topology, router},
        cco{core::cco_ordering(topology, router)},
        k{core::optimal_k(64, 4).k} {}

  [[nodiscard]] core::RotationPlan plan(std::int32_t rotation) const {
    core::RotationConfig rc;
    rc.rotation_trees = rotation;
    rc.fanout_bound = k;
    return core::plan_rotation(topology, routes, router, cco, rc);
  }

  [[nodiscard]] MulticastEngine::Config config(
      Selection selection, std::int32_t shards = 1) const {
    MulticastEngine::Config cfg;
    cfg.style = NiStyle::kSmartFpfs;
    cfg.selection = selection;
    cfg.shards = shards;
    return cfg;
  }

  [[nodiscard]] MulticastEngine engine(MulticastEngine::Config cfg) const {
    return MulticastEngine{topology, routes, std::move(cfg)};
  }
};

/// The first hop below `member`'s virtual root — the host every packet
/// down this member funnels through, so a unicast flow originating here
/// backs up exactly this member's forwarding path.
topo::HostId relay_of(const core::RotationMember& member) {
  return member.tree.children.at(member.tree.root).front();
}

/// Deepest first-child descent from `member`'s relay: a destination
/// whose route shares the member's subtree wires.
topo::HostId deep_leaf_of(const core::RotationMember& member) {
  topo::HostId h = relay_of(member);
  while (!member.tree.children.at(h).empty()) {
    h = member.tree.children.at(h).front();
  }
  return h;
}

/// Background flows that bury the coprocessors and wires of members 1
/// and 2 (the relays send `packets` extra unicasts each), leaving the
/// other members clean — the pattern the adaptive selector should
/// detect and steer around.
std::vector<MulticastEngine::Config::BackgroundFlow> hot_members_1_and_2(
    const core::RotationPlan& plan, std::int32_t packets = 400) {
  std::vector<MulticastEngine::Config::BackgroundFlow> flows;
  for (const std::size_t m : {std::size_t{1}, std::size_t{2}}) {
    MulticastEngine::Config::BackgroundFlow flow;
    flow.src = relay_of(plan.members[m]);
    flow.dst = deep_leaf_of(plan.members[m]);
    flow.packets = packets;
    flow.start = sim::Time::zero();
    flows.push_back(flow);
  }
  return flows;
}

TEST(AdaptiveStreaming, IdleFabricIsByteIdenticalToStatic) {
  // With nothing else on the fabric every telemetry snapshot scores the
  // members equal, the (g + i) mod R probe order breaks the tie toward
  // the static member, and the packet schedule — hence every timing
  // metric — reproduces g mod R exactly. Checked across seeds and both
  // engines; only the snapshot bookkeeping may differ.
  for (const std::uint64_t seed : {1997u, 2024u}) {
    const Rig rig{seed};
    const auto plan = rig.plan(4);
    for (const std::int32_t shards : {1, 4}) {
      const StreamingResult st =
          rig.engine(rig.config(Selection::kStatic, shards))
              .run_streaming(plan, 32);
      const StreamingResult ad =
          rig.engine(rig.config(Selection::kAdaptive, shards))
              .run_streaming(plan, 32);
      EXPECT_EQ(ad.makespan, st.makespan) << "seed " << seed;
      EXPECT_EQ(ad.ni_makespan, st.ni_makespan);
      EXPECT_EQ(ad.p99_gap, st.p99_gap);
      EXPECT_EQ(ad.flits_per_us, st.flits_per_us);
      EXPECT_EQ(ad.packets_delivered, st.packets_delivered);
      EXPECT_EQ(ad.total_channel_block_time, st.total_channel_block_time);
      EXPECT_EQ(ad.member_packets, st.member_packets);
      EXPECT_EQ(ad.selection, Selection::kAdaptive);
      EXPECT_EQ(st.selection, Selection::kStatic);
      EXPECT_GT(ad.telemetry_snapshots, 0);
    }
  }
}

TEST(AdaptiveStreaming, ShardedEngineIsBitIdenticalToSerial) {
  // Full bit-identity, including the snapshot count and the FNV digest
  // over every snapshot's score vector: the sharded engine's barrier
  // globals must observe exactly the telemetry the serial engine sees
  // at the same instants.
  for (const std::uint64_t seed : {1997u, 2024u}) {
    const Rig rig{seed};
    const auto plan = rig.plan(4);
    const auto cfg = rig.config(Selection::kAdaptive);
    auto contended = cfg;
    contended.background = hot_members_1_and_2(plan);
    for (const MulticastEngine::Config& base : {cfg, contended}) {
      const StreamingResult serial =
          rig.engine(base).run_streaming(plan, 48);
      for (const std::int32_t shards : {2, 4}) {
        auto scfg = base;
        scfg.shards = shards;
        const StreamingResult sharded =
            rig.engine(scfg).run_streaming(plan, 48);
        EXPECT_EQ(sharded.makespan, serial.makespan)
            << "seed " << seed << " shards " << shards;
        EXPECT_EQ(sharded.ni_makespan, serial.ni_makespan);
        EXPECT_EQ(sharded.p99_gap, serial.p99_gap);
        EXPECT_EQ(sharded.flits_per_us, serial.flits_per_us);
        EXPECT_EQ(sharded.packets_delivered, serial.packets_delivered);
        EXPECT_EQ(sharded.total_channel_block_time,
                  serial.total_channel_block_time);
        EXPECT_EQ(sharded.events_dispatched, serial.events_dispatched);
        EXPECT_EQ(sharded.member_packets, serial.member_packets);
        EXPECT_EQ(sharded.telemetry_snapshots, serial.telemetry_snapshots);
        EXPECT_EQ(sharded.telemetry_digest, serial.telemetry_digest);
      }
    }
  }
}

TEST(AdaptiveStreaming, StaticRunSchedulesNoTelemetry) {
  // Static selection must cost nothing: no snapshot events, no digest.
  const Rig rig;
  const StreamingResult st =
      rig.engine(rig.config(Selection::kStatic)).run_streaming(rig.plan(4), 32);
  EXPECT_EQ(st.telemetry_snapshots, 0);
  EXPECT_EQ(st.telemetry_digest, 0u);
  ASSERT_EQ(st.member_packets.size(), 4u);
  // The static split is the g mod R ceil split.
  EXPECT_EQ(st.member_packets, (std::vector<std::int64_t>{8, 8, 8, 8}));
  ASSERT_EQ(st.member_ni_work_us.size(), 4u);
  for (const double w : st.member_ni_work_us) EXPECT_GT(w, 0.0);
}

TEST(AdaptiveStreaming, SteersAroundContendedMembersAndWinsThroughput) {
  // Background unicasts bury members 1 and 2; the adaptive selector
  // must shift stream packets onto the clean members and come out with
  // strictly higher delivered throughput than the blind rotation.
  const Rig rig;
  const auto plan = rig.plan(4);
  const auto flows = hot_members_1_and_2(plan);

  auto scfg = rig.config(Selection::kStatic);
  scfg.background = flows;
  const StreamingResult st = rig.engine(scfg).run_streaming(plan, 64);

  auto acfg = rig.config(Selection::kAdaptive);
  acfg.background = flows;
  const StreamingResult ad = rig.engine(acfg).run_streaming(plan, 64);

  EXPECT_EQ(st.outcome, Outcome::kComplete);
  EXPECT_EQ(ad.outcome, Outcome::kComplete);
  EXPECT_GT(ad.flits_per_us, st.flits_per_us);

  // The static split stays ceil-even while adaptive drains the hot
  // members' share into the clean ones.
  ASSERT_EQ(ad.member_packets.size(), 4u);
  const std::int64_t total = std::accumulate(
      ad.member_packets.begin(), ad.member_packets.end(), std::int64_t{0});
  EXPECT_EQ(total, 64);
  EXPECT_LT(ad.member_packets[1] + ad.member_packets[2],
            st.member_packets[1] + st.member_packets[2]);
}

TEST(AdaptiveStreaming, ComposesWithLinkFaultRepair) {
  // A mid-stream link fault under adaptive selection: repair and
  // incremental re-planning still recover every reachable destination,
  // and the selector's dead-member penalty keeps it off broken trees.
  const Rig rig;
  const auto plan = rig.plan(4);
  const auto num_links = rig.topology.switches().num_edges();
  net::FaultPlan faults;
  faults.link_down(sim::Time::us(40.0), num_links / 2);
  auto cfg = rig.config(Selection::kAdaptive);
  cfg.network.faults = std::move(faults);
  StreamingResult sr;
  ASSERT_NO_THROW(sr = rig.engine(cfg).run_streaming(plan, 16));
  EXPECT_NE(sr.outcome, Outcome::kFailed);
  ASSERT_EQ(sr.destinations.size(), 63u);
  for (const DestinationStatus& d : sr.destinations) {
    EXPECT_TRUE(d.delivered || !d.reachable) << "host " << d.host;
  }
}

TEST(AdaptiveStreaming, RejectsMalformedBackgroundFlows) {
  const Rig rig;
  const auto plan = rig.plan(2);
  const auto run_with = [&](MulticastEngine::Config::BackgroundFlow flow) {
    auto cfg = rig.config(Selection::kStatic);
    cfg.background.push_back(flow);
    return rig.engine(cfg).run_streaming(plan, 4);
  };
  MulticastEngine::Config::BackgroundFlow flow;
  flow.src = 0;
  flow.dst = 1;
  flow.packets = 0;  // must send at least one packet
  EXPECT_THROW((void)run_with(flow), std::invalid_argument);
  flow.packets = 1;
  flow.dst = 0;  // self-send
  EXPECT_THROW((void)run_with(flow), std::invalid_argument);
  flow.dst = rig.topology.num_hosts();  // out of range
  EXPECT_THROW((void)run_with(flow), std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::mcast
