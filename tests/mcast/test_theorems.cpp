// Parameterized validation of the paper's theorems against the step-model
// executor. These are the load-bearing correctness tests of the
// reproduction: the executor knows nothing about the formulas, so
// agreement over a broad (n, k, m) sweep is strong evidence both are
// right.

#include <gtest/gtest.h>

#include "core/coverage.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "mcast/step_model.hpp"

namespace nimcast::mcast {
namespace {

struct Params {
  std::int32_t n;
  std::int32_t k;
  std::int32_t m;
};

class TheoremSweep : public ::testing::TestWithParam<Params> {};

TEST_P(TheoremSweep, Theorem1GapBetweenPacketCompletionsIsRootChildCount) {
  const auto [n, k, m] = GetParam();
  const core::RankTree tree = core::make_kbinomial(n, k);
  if (n == 1) return;
  const auto sched = step_schedule(tree, m, Discipline::kFpfs);
  const std::int32_t c_root = tree.root_children();
  for (std::int32_t j = 0; j + 1 < m; ++j) {
    EXPECT_EQ(sched.completion[static_cast<std::size_t>(j + 1)] -
                  sched.completion[static_cast<std::size_t>(j)],
              c_root)
        << "n=" << n << " k=" << k << " packet " << j;
  }
}

TEST_P(TheoremSweep, Theorem2TotalStepsIsT1PlusPipelineFill) {
  const auto [n, k, m] = GetParam();
  if (n == 1) return;
  const core::RankTree tree = core::make_kbinomial(n, k);
  const auto sched = step_schedule(tree, m, Discipline::kFpfs);
  core::CoverageTable cov;
  const std::int32_t t1 = cov.min_steps(static_cast<std::uint64_t>(n), k);
  EXPECT_EQ(sched.total_steps, t1 + (m - 1) * tree.root_children())
      << "n=" << n << " k=" << k << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TheoremSweep, ::testing::ValuesIn([] {
      std::vector<Params> ps;
      for (std::int32_t n : {2, 3, 4, 7, 8, 15, 16, 23, 31, 32, 48, 64}) {
        for (std::int32_t k : {1, 2, 3, 4, 5, 6}) {
          for (std::int32_t m : {1, 2, 3, 4, 8, 16}) {
            ps.push_back(Params{n, k, m});
          }
        }
      }
      return ps;
    }()),
    [](const ::testing::TestParamInfo<Params>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_k" +
             std::to_string(pinfo.param.k) + "_m" +
             std::to_string(pinfo.param.m);
    });

// Theorem 1 is stated for *any* multicast tree, not just k-binomial ones;
// spot-check irregular hand-built trees.
TEST(Theorem1General, HoldsOnArbitraryTrees) {
  const auto check = [](const core::RankTree& t, std::int32_t m) {
    const auto sched = step_schedule(t, m, Discipline::kFpfs);
    for (std::int32_t j = 0; j + 1 < m; ++j) {
      ASSERT_EQ(sched.completion[static_cast<std::size_t>(j + 1)] -
                    sched.completion[static_cast<std::size_t>(j)],
                t.root_children());
    }
  };
  // Lopsided tree: 0 -> (1 -> (2 -> (3,4), 5), 6).
  core::RankTree a;
  a.parent = {-1, 0, 1, 2, 2, 1, 0};
  a.children = {{1, 6}, {2, 5}, {3, 4}, {}, {}, {}, {}};
  a.validate();
  check(a, 5);

  // Star: root sends to 6 leaves.
  core::RankTree b;
  b.parent = {-1, 0, 0, 0, 0, 0, 0};
  b.children = {{1, 2, 3, 4, 5, 6}, {}, {}, {}, {}, {}, {}};
  b.validate();
  check(b, 4);
}

TEST(Theorem3, OptimalKBeatsEveryOtherKInTheStepModel) {
  // The claimed-optimal tree must be at least as fast as every other
  // k-binomial tree when actually executed.
  for (std::int32_t n : {4, 8, 15, 16, 31, 48, 64}) {
    for (std::int32_t m : {1, 2, 4, 8, 16, 32}) {
      const core::OptimalChoice choice = core::optimal_k(n, m);
      const auto best = step_schedule(core::make_kbinomial(n, choice.k), m,
                                      Discipline::kFpfs);
      EXPECT_EQ(best.total_steps, choice.total_steps);
      for (std::int32_t k = 1;
           k <= core::ceil_log2(static_cast<std::uint64_t>(n)); ++k) {
        const auto other = step_schedule(core::make_kbinomial(n, k), m,
                                         Discipline::kFpfs);
        EXPECT_LE(best.total_steps, other.total_steps)
            << "n=" << n << " m=" << m << " loses to k=" << k;
      }
    }
  }
}

TEST(Lemma1, CoverageMatchesActualTreeSizesAtEveryDepth) {
  // N(s, k) claims how many nodes a k-binomial tree reaches within s
  // steps. On a *saturated* tree (n == N(S, k) exactly) every step is
  // fully used, so the count of ranks reached by step s must equal
  // N(s, k) for every s <= S.
  core::CoverageTable cov;
  for (std::int32_t k = 1; k <= 5; ++k) {
    const std::int32_t S = 8;
    const auto n = static_cast<std::int32_t>(cov.coverage(S, k));
    const core::RankTree tree = core::make_kbinomial(n, k);
    const auto steps = tree.single_packet_steps();
    ASSERT_EQ(tree.steps_to_complete(), S);
    for (std::int32_t s = 0; s <= S; ++s) {
      std::uint64_t covered = 0;
      for (std::int32_t st : steps) {
        if (st <= s) ++covered;
      }
      EXPECT_EQ(covered, cov.coverage(s, k)) << "k=" << k << " s=" << s;
    }
  }
}

TEST(Lemma1, TruncatedTreesNeverExceedCoverage) {
  // For arbitrary n the realized reach at depth s is bounded by N(s, k).
  core::CoverageTable cov;
  for (std::int32_t k = 1; k <= 5; ++k) {
    for (std::int32_t n : {10, 50, 137, 200}) {
      const core::RankTree tree = core::make_kbinomial(n, k);
      const auto steps = tree.single_packet_steps();
      for (std::int32_t s = 0; s <= tree.steps_to_complete(); ++s) {
        std::uint64_t covered = 0;
        for (std::int32_t st : steps) {
          if (st <= s) ++covered;
        }
        EXPECT_LE(covered, cov.coverage(s, k))
            << "k=" << k << " n=" << n << " s=" << s;
      }
    }
  }
}

}  // namespace
}  // namespace nimcast::mcast
