// Concurrent (multiple) multicast: several operations share NIs, hosts
// and wires in one simulation — the workload of the authors' companion
// "multiple multicast" line of work and a stress test of the message-id
// demultiplexing in the NI firmware model.

#include <gtest/gtest.h>

#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"

namespace nimcast::mcast {
namespace {

struct StarRig {
  topo::Topology topology{topo::Graph{1, {}},
                          std::vector<topo::SwitchId>(8, 0), "star"};
  routing::UpDownRouter router{topology.switches()};
  routing::RouteTable routes{topology, router};
  MulticastEngine engine{
      topology, routes,
      MulticastEngine::Config{netif::SystemParams{}, net::NetworkConfig{},
                              NiStyle::kSmartFpfs}};
};

core::HostTree tree_over(std::vector<topo::HostId> hosts) {
  const auto shape =
      core::make_binomial(static_cast<std::int32_t>(hosts.size()));
  return core::HostTree::bind(shape, hosts);
}

TEST(MultiMulticast, SingleOpMatchesRunExactly) {
  StarRig rig;
  const auto tree = tree_over({0, 1, 2, 3});
  const auto single = rig.engine.run(tree, 4);
  const auto batch = rig.engine.run_many({MulticastSpec{tree, 4}});
  EXPECT_EQ(single.latency, batch.operations[0].latency);
  EXPECT_EQ(single.ni_latency, batch.operations[0].ni_latency);
  EXPECT_EQ(batch.makespan, single.latency);
}

TEST(MultiMulticast, DisjointOperationsDoNotInteract) {
  StarRig rig;
  const auto a = tree_over({0, 1, 2});
  const auto b = tree_over({4, 5, 6});
  const auto solo_a = rig.engine.run(a, 3);
  const auto solo_b = rig.engine.run(b, 3);
  const auto batch = rig.engine.run_many(
      {MulticastSpec{a, 3}, MulticastSpec{b, 3}});
  EXPECT_EQ(batch.operations[0].latency, solo_a.latency);
  EXPECT_EQ(batch.operations[1].latency, solo_b.latency);
}

TEST(MultiMulticast, SharedSourceSerializesOnHostAndNi) {
  StarRig rig;
  const auto a = tree_over({0, 1, 2});
  const auto b = tree_over({0, 3, 4});
  const auto solo = rig.engine.run(a, 2);
  const auto batch =
      rig.engine.run_many({MulticastSpec{a, 2}, MulticastSpec{b, 2}});
  // First op unaffected; second queues behind the first's t_s on host 0.
  EXPECT_EQ(batch.operations[0].latency, solo.latency);
  EXPECT_GT(batch.operations[1].latency, solo.latency);
}

TEST(MultiMulticast, SharedDestinationDemultiplexesByMessage) {
  StarRig rig;
  // Both ops target hosts 1 and 2 from different sources.
  const auto a = tree_over({0, 1, 2});
  const auto b = tree_over({3, 2, 1});
  const auto batch =
      rig.engine.run_many({MulticastSpec{a, 5}, MulticastSpec{b, 5}});
  for (const auto& op : batch.operations) {
    EXPECT_EQ(op.completions.size(), 2u);
    EXPECT_EQ(op.packets_delivered, 10);
  }
}

TEST(MultiMulticast, StaggeredStartMeasuredFromOwnStart) {
  StarRig rig;
  const auto a = tree_over({0, 1, 2});
  const auto delayed = MulticastSpec{tree_over({4, 5, 6}), 3,
                                     sim::Time::us(500.0)};
  const auto batch =
      rig.engine.run_many({MulticastSpec{a, 3}, delayed});
  const auto solo = rig.engine.run(delayed.tree, 3);
  EXPECT_EQ(batch.operations[1].latency, solo.latency);
  EXPECT_EQ(batch.makespan, sim::Time::us(500.0) + solo.latency);
}

TEST(MultiMulticast, ManyConcurrentOpsOnIrregularNetworkAllComplete) {
  sim::Rng rng{11};
  const auto topology = topo::make_irregular(topo::IrregularConfig{}, rng);
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  MulticastEngine engine{
      topology, routes,
      MulticastEngine::Config{netif::SystemParams{}, net::NetworkConfig{},
                              NiStyle::kSmartFpfs}};
  std::vector<MulticastSpec> specs;
  for (int op = 0; op < 8; ++op) {
    const auto draw = rng.sample_without_replacement(64, 9);
    std::vector<topo::HostId> hosts;
    for (auto h : draw) hosts.push_back(static_cast<topo::HostId>(h));
    specs.push_back(MulticastSpec{tree_over(hosts), 4});
  }
  const auto batch = engine.run_many(specs);
  ASSERT_EQ(batch.operations.size(), 8u);
  for (const auto& op : batch.operations) {
    EXPECT_EQ(op.completions.size(), 8u);
    EXPECT_GT(op.latency, sim::Time::zero());
  }
  EXPECT_GE(batch.total_channel_block_time, sim::Time::zero());
}

TEST(MultiMulticast, ContentionSlowsOverlappingOperations) {
  // Two ops over the SAME participants launched together must each take
  // at least as long as alone.
  StarRig rig;
  const auto tree = tree_over({0, 1, 2, 3, 4});
  const auto solo = rig.engine.run(tree, 4);
  const auto other = tree_over({4, 3, 2, 1, 0});
  const auto batch = rig.engine.run_many(
      {MulticastSpec{tree, 4}, MulticastSpec{other, 4}});
  EXPECT_GE(batch.operations[0].latency, solo.latency);
  EXPECT_GE(batch.operations[1].latency, solo.latency);
  EXPECT_GT(batch.operations[0].latency + batch.operations[1].latency,
            solo.latency * 2);
}

TEST(MultiMulticast, RejectsEmptyBatchAndBadSpecs) {
  StarRig rig;
  EXPECT_THROW((void)rig.engine.run_many({}), std::invalid_argument);
  EXPECT_THROW(
      (void)rig.engine.run_many({MulticastSpec{tree_over({0, 1}), 0}}),
      std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::mcast
