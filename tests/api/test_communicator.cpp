#include "api/communicator.hpp"

#include <gtest/gtest.h>

namespace nimcast::api {
namespace {

TEST(Communicator, IrregularDefaultIsPaperSystem) {
  const auto comm = Communicator::irregular();
  EXPECT_EQ(comm.num_hosts(), 64);
  EXPECT_NE(comm.system_name().find("irregular"), std::string::npos);
}

TEST(Communicator, MeshFactory) {
  const auto comm =
      Communicator::mesh(topo::KAryNCubeConfig{4, 2, false});
  EXPECT_EQ(comm.num_hosts(), 16);
  EXPECT_NE(comm.system_name().find("mesh"), std::string::npos);
}

TEST(Communicator, TorusWorksWithVirtualChannels) {
  const auto torus = Communicator::mesh(topo::KAryNCubeConfig{4, 2, true});
  EXPECT_EQ(torus.num_hosts(), 16);
  const auto r = torus.broadcast(0, 256);
  EXPECT_GT(r.latency, sim::Time::zero());
  EXPECT_EQ(r.packets_on_wire, 15 * 4);
}

TEST(Communicator, PacketizationRoundsUp) {
  const auto comm = Communicator::irregular();
  EXPECT_EQ(comm.packetize(0), 1);
  EXPECT_EQ(comm.packetize(1), 1);
  EXPECT_EQ(comm.packetize(64), 1);
  EXPECT_EQ(comm.packetize(65), 2);
  EXPECT_EQ(comm.packetize(1024), 16);
}

TEST(Communicator, PlanFanoutMatchesTheorem3) {
  const auto comm = Communicator::irregular();
  EXPECT_EQ(comm.plan_fanout(64, 64), core::optimal_k(64, 1).k);
  EXPECT_EQ(comm.plan_fanout(64, 8 * 64), core::optimal_k(64, 8).k);
  EXPECT_EQ(comm.plan_fanout(16, 32 * 64), core::optimal_k(16, 32).k);
}

TEST(Communicator, MulticastReportIsConsistent) {
  const auto comm = Communicator::irregular();
  const std::vector<topo::HostId> dests{1, 5, 9, 13, 22, 40, 63};
  const auto r = comm.multicast(0, dests, 512);
  EXPECT_EQ(r.packets, 8);
  EXPECT_EQ(r.packets_on_wire,
            static_cast<std::int64_t>(dests.size()) * 8);
  EXPECT_GT(r.latency, sim::Time::zero());
  EXPECT_EQ(r.fanout_bound, core::optimal_k(8, 8).k);
}

TEST(Communicator, MulticastDeterministicAcrossCalls) {
  const auto comm = Communicator::irregular();
  const std::vector<topo::HostId> dests{3, 7, 11};
  const auto a = comm.multicast(0, dests, 256);
  const auto b = comm.multicast(0, dests, 256);
  EXPECT_EQ(a.latency, b.latency);
}

TEST(Communicator, LongerMessagesTakeLonger) {
  const auto comm = Communicator::irregular();
  const std::vector<topo::HostId> dests{1, 2, 3, 4, 5, 6, 7};
  sim::Time prev;
  for (const std::int64_t bytes : {64, 256, 1024, 4096}) {
    const auto r = comm.multicast(8, dests, bytes);
    EXPECT_GT(r.latency, prev);
    prev = r.latency;
  }
}

TEST(Communicator, BroadcastHitsEveryHost) {
  const auto comm = Communicator::irregular();
  const auto r = comm.broadcast(0, 128);
  EXPECT_EQ(r.packets_on_wire, 63 * 2);
}

TEST(Communicator, CollectivesRunAndScaleSanely) {
  const auto comm = Communicator::irregular();
  const auto scatter = comm.scatter(0, 128);
  const auto gather = comm.gather(0, 128);
  const auto reduce = comm.reduce(0, 128);
  const auto allreduce = comm.allreduce(0, 128);
  EXPECT_GT(scatter.latency, sim::Time::zero());
  EXPECT_GT(gather.latency, sim::Time::zero());
  // In-network combining keeps reduce cheaper than funnelling all data.
  EXPECT_LT(reduce.latency, gather.latency);
  EXPECT_GT(allreduce.latency, reduce.latency);
  // Reduce moves one message per edge; gather moves sum-of-depths.
  EXPECT_LT(reduce.packets_on_wire, gather.packets_on_wire);
}

TEST(Communicator, BraceListOverloadMatchesSpan) {
  const auto comm = Communicator::irregular();
  const std::vector<topo::HostId> v{3, 9, 17, 21};
  const auto a = comm.multicast(0, v, 4096);
  const auto b = comm.multicast(0, {3, 9, 17, 21}, 4096);  // README snippet
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.fanout_bound, b.fanout_bound);
}

TEST(Communicator, MulticastRejectsEmptyDestinations) {
  const auto comm = Communicator::irregular();
  EXPECT_THROW((void)comm.multicast(0, {}, 64), std::invalid_argument);
}

TEST(Communicator, SeedSelectsDifferentClusters) {
  Communicator::Options a;
  a.seed = 1;
  Communicator::Options b;
  b.seed = 2;
  const auto ca = Communicator::irregular({}, a);
  const auto cb = Communicator::irregular({}, b);
  const std::vector<topo::HostId> dests{9, 17, 33, 41};
  // Different wirings virtually never give identical latency.
  EXPECT_NE(ca.multicast(0, dests, 1024).latency,
            cb.multicast(0, dests, 1024).latency);
}

TEST(Communicator, MoveSemantics) {
  auto comm = Communicator::irregular();
  const auto moved = std::move(comm);
  EXPECT_EQ(moved.num_hosts(), 64);
}

TEST(Communicator, StreamBroadcastRotationBeatsFixedTree) {
  Communicator::Options fixed_opts;
  const auto fixed =
      Communicator::irregular(topo::IrregularConfig{}, fixed_opts);
  Communicator::Options rot_opts;
  rot_opts.rotation_trees = 4;
  const auto rotated =
      Communicator::irregular(topo::IrregularConfig{}, rot_opts);

  const std::int64_t bytes = 256 * 64;  // 256 packets: saturation
  const auto base = fixed.stream_broadcast(0, bytes);
  const auto r = rotated.stream_broadcast(0, bytes);
  EXPECT_EQ(base.rotation_used, 1);
  EXPECT_EQ(r.rotation_requested, 4);
  EXPECT_EQ(r.rotation_used, 4);
  EXPECT_EQ(r.packets, 256);
  EXPECT_EQ(r.outcome, mcast::Outcome::kComplete);
  EXPECT_EQ(r.delivered, 63);
  EXPECT_GT(r.overlap_mean, 0.0);
  EXPECT_GE(r.flits_per_us, 1.2 * base.flits_per_us);
  // Determinism across calls.
  const auto again = rotated.stream_broadcast(0, bytes);
  EXPECT_EQ(r.makespan, again.makespan);
  EXPECT_EQ(r.flits_per_us, again.flits_per_us);
}

TEST(Communicator, StreamBroadcastRotationNeedsUpDownRoutes) {
  Communicator::Options opts;
  opts.rotation_trees = 2;
  const auto comm = Communicator::mesh(topo::KAryNCubeConfig{4, 2, false},
                                       opts);
  EXPECT_THROW((void)comm.stream_broadcast(0, 1024), std::invalid_argument);
  // The fixed-tree configuration still streams on any fabric.
  Communicator::Options fixed_opts;
  const auto fixed = Communicator::mesh(topo::KAryNCubeConfig{4, 2, false},
                                        fixed_opts);
  const auto r = fixed.stream_broadcast(0, 1024);
  EXPECT_EQ(r.rotation_used, 1);
  EXPECT_EQ(r.delivered, 15);
}

}  // namespace
}  // namespace nimcast::api
