// Tests of the streaming-broadcast rotation planner (core::plan_rotation):
// member-0 fixity, fan-out and span invariants, the predicted NI
// bottleneck the planner minimizes, channel decorrelation bounds on both
// fabric families, determinism, and graceful degradation when the fabric
// offers fewer distinct trees than requested.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "core/rotation.hpp"
#include "routing/route_table.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/fat_tree.hpp"
#include "topology/irregular.hpp"

namespace nimcast::core {
namespace {

struct IrregularRig {
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  Chain cco;

  explicit IrregularRig(std::uint64_t seed = 1997)
      : topology([seed] {
          sim::Rng rng{seed};
          return topo::make_irregular(topo::IrregularConfig{}, rng);
        }()),
        router{topology.switches()},
        routes{topology, router},
        cco{cco_ordering(topology, router)} {}
};

struct FatTreeRig {
  topo::FatTreeConfig cfg;  // default: 64 hosts, 8x8 leaves over 4 spines
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  Chain cco;

  FatTreeRig()
      : topology{topo::make_fat_tree(cfg)},
        router{topology.switches(), topo::fat_tree_levels(cfg)},
        routes{topology, router},
        cco{cco_ordering(topology, router)} {}
};

RotationConfig config_for(std::int32_t rotation, std::int32_t k) {
  RotationConfig rc;
  rc.rotation_trees = rotation;
  rc.fanout_bound = k;
  return rc;
}

std::vector<std::pair<topo::HostId, topo::HostId>> edges_of(
    const HostTree& tree) {
  std::vector<std::pair<topo::HostId, topo::HostId>> edges;
  for (topo::HostId h : tree.nodes) {
    for (topo::HostId c : tree.children.at(h)) edges.emplace_back(h, c);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Max over hosts of the cumulative per-window NI work — the quantity
/// ni_work_bound reports (t_rcv = 2 per receive, t_snd = 3 per child).
std::int32_t recompute_bound(const RotationPlan& plan) {
  std::map<topo::HostId, std::int32_t> work;
  for (const RotationMember& m : plan.members) {
    for (topo::HostId h : m.tree.nodes) {
      work[h] +=
          (h == m.tree.root ? 0 : 2) +
          3 * static_cast<std::int32_t>(m.tree.children.at(h).size());
    }
  }
  std::int32_t best = 0;
  for (const auto& [h, w] : work) best = std::max(best, w);
  return best;
}

TEST(RotationPlanner, MemberZeroIsAlwaysTheFixedTree) {
  const IrregularRig rig;
  const std::int32_t k = optimal_k(64, 4).k;
  const HostTree fixed = HostTree::bind(make_kbinomial(64, k), rig.cco);
  for (const std::int32_t rotation : {1, 2, 4}) {
    const RotationPlan plan = plan_rotation(
        rig.topology, rig.routes, rig.router, rig.cco, config_for(rotation, k));
    ASSERT_GE(plan.size(), 1);
    EXPECT_EQ(edges_of(plan.members[0].tree), edges_of(fixed));
    EXPECT_EQ(plan.members[0].salt, 0u);
    EXPECT_EQ(plan.members[0].overlap_fraction, 0.0);
  }
  const RotationPlan one = plan_rotation(rig.topology, rig.routes, rig.router,
                                         rig.cco, config_for(1, k));
  EXPECT_EQ(one.size(), 1);
  // The fixed tree's hottest NI does one receive plus k sends per packet.
  EXPECT_EQ(one.ni_work_bound, 2 + 3 * k);
}

TEST(RotationPlanner, MembersSpanParticipantsWithinFanoutBound) {
  const FatTreeRig rig;
  const std::int32_t k = optimal_k(64, 4).k;
  const RotationPlan plan = plan_rotation(rig.topology, rig.routes, rig.router,
                                          rig.cco, config_for(4, k));
  ASSERT_EQ(plan.size(), 4);
  Chain sorted_participants = rig.cco;
  std::sort(sorted_participants.begin(), sorted_participants.end());
  for (const RotationMember& m : plan.members) {
    EXPECT_EQ(m.tree.root, rig.cco.front());
    Chain nodes = m.tree.nodes;
    std::sort(nodes.begin(), nodes.end());
    EXPECT_EQ(nodes, sorted_participants);
    std::map<topo::HostId, int> child_count;
    for (topo::HostId h : m.tree.nodes) {
      EXPECT_LE(m.tree.children.at(h).size(), static_cast<std::size_t>(k));
      for (topo::HostId c : m.tree.children.at(h)) ++child_count[c];
    }
    // Every non-root host has exactly one parent; the root has none.
    for (topo::HostId h : m.tree.nodes) {
      EXPECT_EQ(child_count[h], h == m.tree.root ? 0 : 1);
    }
  }
}

TEST(RotationPlanner, RotationLowersThePredictedNiBottleneck) {
  const std::int32_t k = optimal_k(64, 4).k;
  const IrregularRig irr;
  const FatTreeRig fat;
  const auto check = [k](const topo::Topology& topology,
                         const routing::RouteTable& routes,
                         const routing::UpDownRouter& router,
                         const Chain& cco) {
    const RotationPlan one =
        plan_rotation(topology, routes, router, cco, config_for(1, k));
    for (const std::int32_t rotation : {2, 4}) {
      const RotationPlan plan =
          plan_rotation(topology, routes, router, cco,
                        config_for(rotation, k));
      ASSERT_EQ(plan.size(), rotation);
      EXPECT_EQ(plan.ni_work_bound, recompute_bound(plan));
      // Per-packet predicted period strictly beats the fixed tree's.
      EXPECT_LT(static_cast<double>(plan.ni_work_bound) /
                    static_cast<double>(plan.size()),
                static_cast<double>(one.ni_work_bound));
    }
  };
  check(irr.topology, irr.routes, irr.router, irr.cco);
  check(fat.topology, fat.routes, fat.router, fat.cco);
}

TEST(RotationPlanner, OverlapFractionsAreBoundedAndDecorrelated) {
  const std::int32_t k = optimal_k(64, 4).k;
  const IrregularRig irr;
  const FatTreeRig fat;
  for (const auto* rig_cco : {&irr.cco, &fat.cco}) {
    const bool is_fat = rig_cco == &fat.cco;
    const auto& topology = is_fat ? fat.topology : irr.topology;
    const auto& routes = is_fat ? fat.routes : irr.routes;
    const auto& router = is_fat ? fat.router : irr.router;
    const RotationPlan plan =
        plan_rotation(topology, routes, router, *rig_cco, config_for(4, k));
    for (const RotationMember& m : plan.members) {
      EXPECT_GE(m.overlap_fraction, 0.0);
      EXPECT_LE(m.overlap_fraction, 1.0);
      EXPECT_FALSE(m.footprint.empty());
      EXPECT_TRUE(
          std::is_sorted(m.footprint.begin(), m.footprint.end()));
    }
    EXPECT_LE(plan.overlap_mean(), plan.overlap_max());
    // No admitted member may fully duplicate the claimed channel set.
    EXPECT_LT(plan.overlap_max(), 1.0);
  }
  // A fat tree has disjoint up*/down* alternatives through distinct
  // spines, so the first rotation member decorrelates almost entirely.
  const RotationPlan fat2 = plan_rotation(fat.topology, fat.routes, fat.router,
                                          fat.cco, config_for(2, k));
  ASSERT_EQ(fat2.size(), 2);
  EXPECT_LE(fat2.overlap_max(), 0.5);
}

TEST(RotationPlanner, PlanningIsDeterministic) {
  const IrregularRig rig;
  const std::int32_t k = optimal_k(64, 4).k;
  const RotationPlan a = plan_rotation(rig.topology, rig.routes, rig.router,
                                       rig.cco, config_for(8, k));
  const RotationPlan b = plan_rotation(rig.topology, rig.routes, rig.router,
                                       rig.cco, config_for(8, k));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.ni_work_bound, b.ni_work_bound);
  for (std::int32_t r = 0; r < a.size(); ++r) {
    const auto rz = static_cast<std::size_t>(r);
    EXPECT_EQ(edges_of(a.members[rz].tree), edges_of(b.members[rz].tree));
    EXPECT_EQ(a.members[rz].footprint, b.members[rz].footprint);
    EXPECT_EQ(a.members[rz].chain_offset, b.members[rz].chain_offset);
    EXPECT_EQ(a.members[rz].salt, b.members[rz].salt);
    EXPECT_EQ(a.members[rz].overlap_fraction, b.members[rz].overlap_fraction);
  }
}

TEST(RotationPlanner, DegradesToMaximalFeasibleSetOnTinyFabric) {
  // Two hosts on one switch: every candidate tree is source -> dest with
  // an empty switch-channel footprint, so all candidates duplicate the
  // fixed tree and the plan degenerates to size 1 instead of cloning
  // members.
  topo::Topology topology{topo::Graph{1, {}},
                          std::vector<topo::SwitchId>(2, 0), "tiny"};
  routing::UpDownRouter router{topology.switches()};
  routing::RouteTable routes{topology, router};
  const Chain participants{0, 1};
  const RotationPlan plan = plan_rotation(topology, routes, router,
                                          participants, config_for(4, 2));
  EXPECT_EQ(plan.requested, 4);
  EXPECT_EQ(plan.size(), 1);
  // Hottest host is the source (one send, no receive): work 3*1.
  EXPECT_EQ(plan.ni_work_bound, 3);
}

TEST(RotationPlanner, RejectsDegenerateParticipantSets) {
  const IrregularRig rig;
  EXPECT_THROW(
      (void)plan_rotation(rig.topology, rig.routes, rig.router, Chain{0},
                          config_for(2, 2)),
      std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::core
