#include "core/ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/rng.hpp"
#include "topology/irregular.hpp"

namespace nimcast::core {
namespace {

struct Rig {
  topo::Topology topology;
  routing::UpDownRouter router;

  explicit Rig(std::uint64_t seed)
      : topology{[&] {
          sim::Rng rng{seed};
          return topo::make_irregular(topo::IrregularConfig{}, rng);
        }()},
        router{topology.switches()} {}
};

bool is_permutation_of_hosts(const Chain& c, std::int32_t n) {
  if (c.size() != static_cast<std::size_t>(n)) return false;
  std::set<topo::HostId> seen{c.begin(), c.end()};
  return seen.size() == c.size() && *seen.begin() == 0 &&
         *seen.rbegin() == n - 1;
}

TEST(Ordering, CcoIsAPermutation) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Rig rig{seed};
    const Chain c = cco_ordering(rig.topology, rig.router);
    EXPECT_TRUE(is_permutation_of_hosts(c, 64)) << "seed " << seed;
  }
}

TEST(Ordering, CcoKeepsSwitchHostsConsecutive) {
  const Rig rig{3};
  const Chain c = cco_ordering(rig.topology, rig.router);
  // Hosts of the same switch form one contiguous block.
  std::set<topo::SwitchId> closed;
  topo::SwitchId current = rig.topology.switch_of(c.front());
  for (topo::HostId h : c) {
    const topo::SwitchId s = rig.topology.switch_of(h);
    if (s != current) {
      EXPECT_FALSE(closed.contains(s)) << "switch " << s << " revisited";
      closed.insert(current);
      current = s;
    }
  }
}

TEST(Ordering, CcoStartsAtRootSwitch) {
  const Rig rig{4};
  const Chain c = cco_ordering(rig.topology, rig.router);
  EXPECT_EQ(rig.topology.switch_of(c.front()), rig.router.root());
}

TEST(Ordering, CcoSubtreeHostsStayContiguous) {
  // Hosts under any BFS subtree occupy one contiguous chain range —
  // the property that makes disjoint segments use disjoint subtree links.
  const Rig rig{5};
  const Chain c = cco_ordering(rig.topology, rig.router);
  // position of each host in the chain
  std::vector<std::size_t> pos(64);
  for (std::size_t i = 0; i < c.size(); ++i) {
    pos[static_cast<std::size_t>(c[i])] = i;
  }
  // For each switch, all hosts on it must be adjacent in the chain.
  for (topo::SwitchId s = 0; s < rig.topology.num_switches(); ++s) {
    const auto hosts = rig.topology.hosts_of(s);
    std::vector<std::size_t> ps;
    for (auto h : hosts) ps.push_back(pos[static_cast<std::size_t>(h)]);
    std::sort(ps.begin(), ps.end());
    for (std::size_t i = 0; i + 1 < ps.size(); ++i) {
      EXPECT_EQ(ps[i + 1], ps[i] + 1);
    }
  }
}

TEST(Ordering, DimensionChainIsIdentity) {
  const topo::Topology cube =
      topo::make_kary_ncube(topo::KAryNCubeConfig{4, 2, false});
  const Chain c = dimension_chain(cube);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c[i], static_cast<topo::HostId>(i));
  }
}

TEST(Ordering, RandomOrderingIsSeededPermutation) {
  sim::Rng a{9};
  sim::Rng b{9};
  const Chain ca = random_ordering(64, a);
  const Chain cb = random_ordering(64, b);
  EXPECT_EQ(ca, cb);
  EXPECT_TRUE(is_permutation_of_hosts(ca, 64));
  sim::Rng c{10};
  EXPECT_NE(random_ordering(64, c), ca);
}

TEST(ArrangeParticipants, SourceFirstRestInChainOrder) {
  const Chain chain{5, 3, 8, 1, 9, 0};
  const Chain got = arrange_participants(chain, 1, {9, 5, 8});
  EXPECT_EQ(got, (Chain{1, 9, 5, 8}));  // rotate at 1, wrap to 5, 8
}

TEST(ArrangeParticipants, SourceAlreadyFirst) {
  const Chain chain{0, 1, 2, 3};
  EXPECT_EQ(arrange_participants(chain, 0, {2, 3}), (Chain{0, 2, 3}));
}

TEST(ArrangeParticipants, FullSet) {
  const Chain chain{2, 0, 1};
  EXPECT_EQ(arrange_participants(chain, 1, {0, 2}), (Chain{1, 2, 0}));
}

TEST(ArrangeParticipants, RejectsDuplicatesAndSourceInDests) {
  const Chain chain{0, 1, 2, 3};
  EXPECT_THROW((void)arrange_participants(chain, 0, {1, 1}),
               std::invalid_argument);
  EXPECT_THROW((void)arrange_participants(chain, 0, {0, 1}),
               std::invalid_argument);
}

TEST(ArrangeParticipants, RejectsHostMissingFromChain) {
  const Chain chain{0, 1, 2};
  EXPECT_THROW((void)arrange_participants(chain, 0, {5}),
               std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::core
