// Tests of the incremental post-fault rotation patcher
// (core::replan_rotation): untouched members survive verbatim, members
// whose footprint or tree intersects the dead set are rebuilt over their
// surviving chain, dead-rooted members are dropped, and the patched plan
// keeps the planner's NI-work accounting and determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/ordering.hpp"
#include "core/rotation.hpp"
#include "routing/route_table.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"

namespace nimcast::core {
namespace {

struct Rig {
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  Chain cco;

  explicit Rig(std::uint64_t seed = 1997)
      : topology([seed] {
          sim::Rng rng{seed};
          return topo::make_irregular(topo::IrregularConfig{}, rng);
        }()),
        router{topology.switches()},
        routes{topology, router},
        cco{cco_ordering(topology, router)} {}

  [[nodiscard]] RotationPlan plan(std::int32_t n, std::int32_t rotation,
                                  std::int32_t k = 2) const {
    const Chain members{cco.begin(), cco.begin() + n};
    RotationConfig rc;
    rc.rotation_trees = rotation;
    rc.fanout_bound = k;
    return plan_rotation(topology, routes, router, members, rc);
  }
};

std::int32_t recompute_bound(const RotationPlan& plan) {
  std::map<topo::HostId, std::int32_t> work;
  for (const RotationMember& m : plan.members) {
    for (topo::HostId h : m.tree.nodes) {
      work[h] +=
          (h == m.tree.root ? 0 : 2) +
          3 * static_cast<std::int32_t>(m.tree.children.at(h).size());
    }
  }
  std::int32_t best = 0;
  for (const auto& [h, w] : work) best = std::max(best, w);
  return best;
}

TEST(ReplanRotation, EmptyDeadSetKeepsEveryMemberVerbatim) {
  const Rig rig;
  const RotationPlan plan = rig.plan(16, 4);
  ASSERT_GE(plan.size(), 2);
  const ReplanResult patched =
      replan_rotation(rig.topology, rig.routes, plan, {}, {});
  EXPECT_EQ(patched.rebuilt, 0);
  EXPECT_EQ(patched.dropped, 0);
  ASSERT_EQ(patched.plan.size(), plan.size());
  for (std::int32_t r = 0; r < plan.size(); ++r) {
    const auto i = static_cast<std::size_t>(r);
    EXPECT_EQ(patched.plan.members[i].tree.nodes, plan.members[i].tree.nodes);
    EXPECT_EQ(patched.plan.members[i].salt, plan.members[i].salt);
  }
  EXPECT_EQ(patched.plan.ni_work_bound, recompute_bound(patched.plan));
}

TEST(ReplanRotation, DeadHostRebuildsOnlyTheMembersContainingIt) {
  const Rig rig;
  const RotationPlan plan = rig.plan(16, 4);
  ASSERT_GE(plan.size(), 2);
  // Kill a non-root participant: every member's tree contains every
  // participant, so all members must be rebuilt without the victim —
  // but the patch keeps the rotation width instead of collapsing to one
  // surviving tree.
  const topo::HostId victim = plan.members[0].tree.nodes.back();
  ASSERT_NE(victim, plan.members[0].tree.root);
  const ReplanResult patched =
      replan_rotation(rig.topology, rig.routes, plan, {}, {victim});
  EXPECT_EQ(patched.rebuilt + patched.dropped, plan.size());
  EXPECT_GE(patched.plan.size(), plan.size() - 1);
  for (const RotationMember& m : patched.plan.members) {
    EXPECT_EQ(std::count(m.tree.nodes.begin(), m.tree.nodes.end(), victim),
              0)
        << "victim survived in a patched member";
    // Rebuilt members ride the primary table: salted alternatives are
    // stale after a fault.
    EXPECT_EQ(m.salt, 0u);
    EXPECT_EQ(m.table, nullptr);
  }
  EXPECT_EQ(patched.plan.ni_work_bound, recompute_bound(patched.plan));
}

TEST(ReplanRotation, DeadChannelRebuildsTheIntersectedMember) {
  const Rig rig;
  const RotationPlan plan = rig.plan(16, 4);
  ASSERT_GE(plan.size(), 2);
  // Condemn one channel of the last member's footprint only.
  const RotationMember& target = plan.members.back();
  ASSERT_FALSE(target.footprint.empty());
  std::vector<std::int32_t> dead{target.footprint.front()};
  const ReplanResult patched =
      replan_rotation(rig.topology, rig.routes, plan, dead, {});
  EXPECT_GE(patched.rebuilt + patched.dropped, 1);
  // Every surviving member's footprint dodges the dead channel.
  for (const RotationMember& m : patched.plan.members) {
    EXPECT_FALSE(std::binary_search(m.footprint.begin(), m.footprint.end(),
                                    dead.front()))
        << "patched member still crosses the dead channel";
  }
}

TEST(ReplanRotation, DeadRootDropsVirtualRootMembersCleanly) {
  const Rig rig;
  const RotationPlan plan = rig.plan(16, 4);
  ASSERT_GE(plan.size(), 2);
  // Killing member r's relay (virtual root) must drop or re-root that
  // member, never return a tree rooted at a dead host.
  const topo::HostId relay = plan.members[1].tree.root;
  const ReplanResult patched =
      replan_rotation(rig.topology, rig.routes, plan, {}, {relay});
  for (const RotationMember& m : patched.plan.members) {
    EXPECT_NE(m.tree.root, relay);
    EXPECT_EQ(std::count(m.tree.nodes.begin(), m.tree.nodes.end(), relay), 0);
  }
}

TEST(ReplanRotation, IsDeterministic) {
  const Rig rig;
  const RotationPlan plan = rig.plan(16, 4);
  const topo::HostId victim = plan.members[0].tree.nodes.back();
  const ReplanResult a =
      replan_rotation(rig.topology, rig.routes, plan, {}, {victim});
  const ReplanResult b =
      replan_rotation(rig.topology, rig.routes, plan, {}, {victim});
  ASSERT_EQ(a.plan.size(), b.plan.size());
  EXPECT_EQ(a.rebuilt, b.rebuilt);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.plan.ni_work_bound, b.plan.ni_work_bound);
  for (std::int32_t r = 0; r < a.plan.size(); ++r) {
    const auto i = static_cast<std::size_t>(r);
    EXPECT_EQ(a.plan.members[i].tree.nodes, b.plan.members[i].tree.nodes);
    EXPECT_EQ(a.plan.members[i].footprint, b.plan.members[i].footprint);
  }
}

}  // namespace
}  // namespace nimcast::core
