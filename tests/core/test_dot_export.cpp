#include "core/dot_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/kbinomial.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"

namespace nimcast::core {
namespace {

TEST(DotExport, RankTreeHasEdgesAndStepLabels) {
  const auto dot = to_dot(make_binomial(4));  // 0 -> (2 -> (3), 1)
  EXPECT_NE(dot.find("digraph ranktree"), std::string::npos);
  EXPECT_NE(dot.find("0 -> 2 [label=\"[1]\"]"), std::string::npos);
  EXPECT_NE(dot.find("0 -> 1 [label=\"[2]\"]"), std::string::npos);
  EXPECT_NE(dot.find("2 -> 3 [label=\"[2]\"]"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

TEST(DotExport, HostTreeUsesHostIdsAndSendOrder) {
  const HostTree ht = HostTree::bind(make_binomial(4), {10, 20, 30, 40});
  const auto dot = to_dot(ht);
  EXPECT_NE(dot.find("h10 [shape=doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("h10 -> h30 [label=\"1\"]"), std::string::npos);
  EXPECT_NE(dot.find("h10 -> h20 [label=\"2\"]"), std::string::npos);
  EXPECT_NE(dot.find("h30 -> h40"), std::string::npos);
}

TEST(DotExport, TopologyHasSwitchesHostsAndLinks) {
  sim::Rng rng{1};
  topo::IrregularConfig cfg;
  cfg.num_switches = 4;
  cfg.num_hosts = 8;
  cfg.ports_per_switch = 6;
  cfg.allow_parallel_links = true;  // 4 spare ports each need trunking
  const auto topology = topo::make_irregular(cfg, rng);
  const auto dot = to_dot(topology);
  EXPECT_NE(dot.find("graph system"), std::string::npos);
  EXPECT_NE(dot.find("s0 [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("h7"), std::string::npos);
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);
  // Every switch-switch link appears as an undirected edge.
  for (topo::LinkId e = 0; e < topology.switches().num_edges(); ++e) {
    const auto& edge = topology.switches().edge(e);
    const std::string expect = "s" + std::to_string(edge.a) + " -- s" +
                               std::to_string(edge.b) + ";";
    EXPECT_NE(dot.find(expect), std::string::npos) << expect;
  }
}

TEST(DotExport, WriteDotRoundTrips) {
  const std::string path = "/tmp/nimcast_dot_test.dot";
  write_dot(to_dot(make_linear(3)), path);
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string all{std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>()};
  EXPECT_NE(all.find("0 -> 1"), std::string::npos);
  EXPECT_NE(all.find("1 -> 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DotExport, WriteDotBadPathThrows) {
  EXPECT_THROW(write_dot("digraph {}", "/nonexistent/x.dot"),
               std::runtime_error);
}

}  // namespace
}  // namespace nimcast::core
