#include "core/optimal_k.hpp"

#include <gtest/gtest.h>

namespace nimcast::core {
namespace {

TEST(OptimalK, SinglePacketPrefersFullBinomial) {
  // Paper Fig. 12(a): for m = 1 the optimal k is ceil(log2 n).
  for (std::int32_t n : {4, 8, 15, 16, 31, 32, 48, 63, 64}) {
    const OptimalChoice c = optimal_k(n, 1);
    EXPECT_EQ(c.k, ceil_log2(static_cast<std::uint64_t>(n))) << "n=" << n;
    EXPECT_EQ(c.t1, ceil_log2(static_cast<std::uint64_t>(n)));
    EXPECT_EQ(c.total_steps, c.t1);
  }
}

TEST(OptimalK, MatchesExhaustiveSearch) {
  CoverageTable cov;
  for (std::int32_t n = 2; n <= 64; ++n) {
    for (std::int32_t m = 1; m <= 40; ++m) {
      const OptimalChoice c = optimal_k(n, m, cov);
      // Brute force over the full interval.
      std::int64_t best = INT64_MAX;
      for (std::int32_t k = 1;
           k <= ceil_log2(static_cast<std::uint64_t>(n)); ++k) {
        const std::int64_t total =
            cov.min_steps(static_cast<std::uint64_t>(n), k) +
            static_cast<std::int64_t>(m - 1) * k;
        best = std::min(best, total);
      }
      EXPECT_EQ(c.total_steps, best) << "n=" << n << " m=" << m;
      EXPECT_EQ(c.total_steps,
                c.t1 + static_cast<std::int64_t>(m - 1) * c.k);
      EXPECT_EQ(c.t1, cov.min_steps(static_cast<std::uint64_t>(n), c.k));
    }
  }
}

TEST(OptimalK, NonIncreasingInPacketCount) {
  // Paper Fig. 12(a): as m grows, optimal k comes down.
  CoverageTable cov;
  for (std::int32_t n : {8, 16, 32, 48, 64}) {
    std::int32_t prev = optimal_k(n, 1, cov).k;
    for (std::int32_t m = 2; m <= 64; ++m) {
      const std::int32_t k = optimal_k(n, m, cov).k;
      EXPECT_LE(k, prev) << "n=" << n << " m=" << m;
      prev = k;
    }
  }
}

TEST(OptimalK, ConvergesToLinearForManyPackets) {
  // Paper Section 5.1: after a crossover, k = 1 (linear) is optimal, and
  // the crossover comes earlier for smaller n.
  CoverageTable cov;
  std::int32_t prev_crossover = 0;
  for (std::int32_t n : {8, 16, 32, 64}) {
    std::int32_t crossover = -1;
    for (std::int32_t m = 1; m <= 2000; ++m) {
      if (optimal_k(n, m, cov).k == 1) {
        crossover = m;
        break;
      }
    }
    ASSERT_GT(crossover, 0) << "n=" << n << ": never reached k=1";
    EXPECT_GE(crossover, prev_crossover)
        << "crossover should come later for larger n";
    prev_crossover = crossover;
  }
}

TEST(OptimalK, DegenerateCases) {
  EXPECT_EQ(optimal_k(1, 5).k, 1);
  EXPECT_EQ(optimal_k(1, 5).total_steps, 0);
  EXPECT_EQ(optimal_k(2, 1).k, 1);
  EXPECT_EQ(optimal_k(2, 1).t1, 1);
}

TEST(OptimalK, RejectsBadArguments) {
  EXPECT_THROW((void)optimal_k(0, 1), std::invalid_argument);
  EXPECT_THROW((void)optimal_k(4, 0), std::invalid_argument);
}

TEST(OptimalKTable, AgreesWithDirectSolver) {
  const OptimalKTable table{64, 32};
  CoverageTable cov;
  for (std::int32_t n = 2; n <= 64; ++n) {
    for (std::int32_t m = 1; m <= 32; ++m) {
      const auto direct = optimal_k(n, m, cov);
      const auto looked = table.lookup(n, m);
      EXPECT_EQ(looked.k, direct.k) << "n=" << n << " m=" << m;
      EXPECT_EQ(looked.t1, direct.t1);
      EXPECT_EQ(looked.total_steps, direct.total_steps);
    }
  }
}

TEST(OptimalKTable, CompressedStorageIsSmall) {
  // The paper's feasibility argument (Section 4.3.1): optimal k is
  // constant over ranges of m, so breakpoint storage is far below the
  // dense n*m table.
  const OptimalKTable table{64, 32};
  EXPECT_LT(table.stored_entries(), 64u * 32u / 4u);
}

TEST(OptimalKTable, RejectsOutOfRangeLookups) {
  const OptimalKTable table{64, 32};
  EXPECT_THROW((void)table.lookup(1, 1), std::out_of_range);
  EXPECT_THROW((void)table.lookup(65, 1), std::out_of_range);
  EXPECT_THROW((void)table.lookup(10, 0), std::out_of_range);
  EXPECT_THROW((void)table.lookup(10, 33), std::out_of_range);
}

TEST(OptimalKTable, RejectsBadConstruction) {
  EXPECT_THROW((OptimalKTable{1, 4}), std::invalid_argument);
  EXPECT_THROW((OptimalKTable{8, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::core
