#include "core/host_tree.hpp"

#include <gtest/gtest.h>

#include "core/kbinomial.hpp"

namespace nimcast::core {
namespace {

TEST(HostTree, BindMapsRanksToHosts) {
  const RankTree rt = make_binomial(4);  // 0 -> (2 -> (3), 1)
  const Chain order{10, 20, 30, 40};
  const HostTree ht = HostTree::bind(rt, order);
  EXPECT_EQ(ht.root, 10);
  EXPECT_EQ(ht.size(), 4);
  EXPECT_EQ(ht.children.at(10), (std::vector<topo::HostId>{30, 20}));
  EXPECT_EQ(ht.children.at(30), (std::vector<topo::HostId>{40}));
  EXPECT_TRUE(ht.children.at(20).empty());
  EXPECT_TRUE(ht.children.at(40).empty());
  EXPECT_EQ(ht.root_children(), 2);
}

TEST(HostTree, NodesPreserveRankOrder) {
  const RankTree rt = make_linear(3);
  const HostTree ht = HostTree::bind(rt, {7, 5, 3});
  EXPECT_EQ(ht.nodes, (std::vector<topo::HostId>{7, 5, 3}));
}

TEST(HostTree, EveryParticipantHasChildrenEntry) {
  const RankTree rt = make_kbinomial(10, 2);
  Chain order;
  for (topo::HostId h = 0; h < 10; ++h) order.push_back(h * 3);
  const HostTree ht = HostTree::bind(rt, order);
  for (topo::HostId h : ht.nodes) {
    EXPECT_TRUE(ht.children.contains(h));
  }
}

TEST(HostTree, BindRejectsSizeMismatch) {
  const RankTree rt = make_binomial(4);
  EXPECT_THROW((void)HostTree::bind(rt, {1, 2, 3}), std::invalid_argument);
}

TEST(HostTree, SingletonTree) {
  const RankTree rt = make_binomial(1);
  const HostTree ht = HostTree::bind(rt, {42});
  EXPECT_EQ(ht.root, 42);
  EXPECT_EQ(ht.root_children(), 0);
}

}  // namespace
}  // namespace nimcast::core
