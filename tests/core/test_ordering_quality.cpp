#include "core/ordering_quality.hpp"

#include <gtest/gtest.h>

#include "routing/dimension_ordered.hpp"
#include "routing/up_down.hpp"
#include "topology/irregular.hpp"
#include "topology/kary_ncube.hpp"

namespace nimcast::core {
namespace {

TEST(OrderingQuality, DimensionChainOnMeshIsContentionFree) {
  // The classical result the paper builds on: the dimension-ordered
  // chain with e-cube routing is contention-free (McKinley et al.).
  const topo::KAryNCubeConfig cfg{4, 2, false};
  const topo::Topology mesh = topo::make_kary_ncube(cfg);
  const routing::DimensionOrderedRouter router{mesh.switches(), cfg};
  const routing::RouteTable routes{mesh, router};
  const auto q =
      assess_ordering_exhaustive(mesh, routes, dimension_chain(mesh));
  EXPECT_TRUE(q.contention_free()) << q.violations << "/" << q.checked;
  EXPECT_GT(q.checked, 0);
}

TEST(OrderingQuality, ShuffledChainOnMeshIsNot) {
  const topo::KAryNCubeConfig cfg{4, 2, false};
  const topo::Topology mesh = topo::make_kary_ncube(cfg);
  const routing::DimensionOrderedRouter router{mesh.switches(), cfg};
  const routing::RouteTable routes{mesh, router};
  sim::Rng rng{5};
  const auto q = assess_ordering_exhaustive(
      mesh, routes, random_ordering(mesh.num_hosts(), rng));
  EXPECT_FALSE(q.contention_free());
  EXPECT_GT(q.violation_rate(), 0.01);
}

TEST(OrderingQuality, CcoBeatsRandomOnIrregularNetworks) {
  // The paper: no contention-free ordering exists for up*/down* on
  // irregular networks, but CCO-style orderings minimize violations.
  double cco_total = 0;
  double random_total = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    sim::Rng rng{seed};
    const auto topology = topo::make_irregular(topo::IrregularConfig{}, rng);
    const routing::UpDownRouter router{topology.switches()};
    const routing::RouteTable routes{topology, router};
    sim::Rng sampler{seed + 100};
    const auto cco = assess_ordering_sampled(
        topology, routes, cco_ordering(topology, router), 20'000, sampler);
    sim::Rng sampler2{seed + 100};
    const auto rnd = assess_ordering_sampled(
        topology, routes, random_ordering(64, rng), 20'000, sampler2);
    cco_total += cco.violation_rate();
    random_total += rnd.violation_rate();
  }
  EXPECT_LT(cco_total, random_total);
}

TEST(OrderingQuality, SampledAgreesWithExhaustiveOnSmallSystem) {
  const topo::KAryNCubeConfig cfg{3, 2, false};  // 9 hosts
  const topo::Topology mesh = topo::make_kary_ncube(cfg);
  const routing::DimensionOrderedRouter router{mesh.switches(), cfg};
  const routing::RouteTable routes{mesh, router};
  sim::Rng rng{7};
  const Chain shuffled = random_ordering(9, rng);
  const auto exact = assess_ordering_exhaustive(mesh, routes, shuffled);
  sim::Rng sampler{11};
  const auto approx =
      assess_ordering_sampled(mesh, routes, shuffled, 50'000, sampler);
  EXPECT_NEAR(approx.violation_rate(), exact.violation_rate(), 0.05);
}

TEST(OrderingQuality, ExhaustiveGuardsAgainstHugeSystems) {
  sim::Rng rng{1};
  const auto topology = topo::make_irregular(topo::IrregularConfig{}, rng);
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  EXPECT_THROW((void)assess_ordering_exhaustive(
                   topology, routes, cco_ordering(topology, router)),
               std::invalid_argument);
}

TEST(OrderingQuality, SampledRejectsTinyChains) {
  const topo::KAryNCubeConfig cfg{2, 1, false};
  const topo::Topology pair = topo::make_kary_ncube(cfg);
  const routing::DimensionOrderedRouter router{pair.switches(), cfg};
  const routing::RouteTable routes{pair, router};
  sim::Rng rng{1};
  EXPECT_THROW((void)assess_ordering_sampled(pair, routes,
                                             dimension_chain(pair), 10, rng),
               std::invalid_argument);
}

TEST(OrderingQuality, RateArithmetics) {
  OrderingQuality q;
  EXPECT_DOUBLE_EQ(q.violation_rate(), 0.0);
  EXPECT_TRUE(q.contention_free());
  q.checked = 10;
  q.violations = 3;
  EXPECT_DOUBLE_EQ(q.violation_rate(), 0.3);
  EXPECT_FALSE(q.contention_free());
}

}  // namespace
}  // namespace nimcast::core
