#include "core/kbinomial.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace nimcast::core {
namespace {

TEST(KBinomial, SingleNodeTree) {
  const RankTree t = make_kbinomial(1, 3);
  t.validate();
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.root_children(), 0);
  EXPECT_EQ(t.steps_to_complete(), 0);
}

TEST(KBinomial, TwoNodes) {
  const RankTree t = make_kbinomial(2, 1);
  t.validate();
  EXPECT_EQ(t.children[0], (std::vector<std::int32_t>{1}));
}

TEST(KBinomial, LinearTreeIsChain) {
  const RankTree t = make_linear(5);
  t.validate();
  for (std::int32_t r = 0; r + 1 < 5; ++r) {
    EXPECT_EQ(t.children[static_cast<std::size_t>(r)],
              (std::vector<std::int32_t>{r + 1}));
  }
  EXPECT_EQ(t.steps_to_complete(), 4);
}

TEST(KBinomial, BinomialRecursiveHalving) {
  const RankTree t = make_binomial(8);
  t.validate();
  // Root's first child splits the chain in half, then quarters, ...
  EXPECT_EQ(t.children[0], (std::vector<std::int32_t>{4, 2, 1}));
  EXPECT_EQ(t.children[4], (std::vector<std::int32_t>{6, 5}));
  EXPECT_EQ(t.children[6], (std::vector<std::int32_t>{7}));
  EXPECT_EQ(t.steps_to_complete(), 3);
}

TEST(KBinomial, PaperFigure9Shapes) {
  // Fig. 9: 3-binomial and 4-binomial trees on multicast set size 16.
  const RankTree t3 = make_kbinomial(16, 3);
  t3.validate();
  EXPECT_EQ(t3.max_children(), 3);
  EXPECT_EQ(t3.steps_to_complete(), 5);  // N(4,3)=15 < 16 <= N(5,3)=28

  const RankTree t4 = make_kbinomial(16, 4);
  t4.validate();
  EXPECT_LE(t4.max_children(), 4);
  EXPECT_EQ(t4.steps_to_complete(), 4);  // 4-binomial == binomial for n=16
}

TEST(KBinomial, FanoutBoundRespected) {
  for (std::int32_t n = 1; n <= 150; ++n) {
    for (std::int32_t k = 1; k <= 7; ++k) {
      const RankTree t = make_kbinomial(n, k);
      t.validate();
      EXPECT_LE(t.max_children(), k) << "n=" << n << " k=" << k;
    }
  }
}

TEST(KBinomial, CompletesInExactlyMinSteps) {
  CoverageTable cov;
  for (std::int32_t n = 1; n <= 150; ++n) {
    for (std::int32_t k = 1; k <= 7; ++k) {
      const RankTree t = make_kbinomial(n, k);
      EXPECT_EQ(t.steps_to_complete(),
                cov.min_steps(static_cast<std::uint64_t>(n), k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(KBinomial, SubtreesOccupyContiguousChainSegmentsToTheRight) {
  // The Fig. 11 construction property that makes contention-freeness
  // work: each subtree covers a contiguous rank range starting at its
  // root, entirely to the right of (greater than) its parent.
  for (const auto& [n, k] : {std::pair{37, 2}, std::pair{64, 3},
                             std::pair{100, 4}, std::pair{48, 6}}) {
    const RankTree t = make_kbinomial(n, k);
    // Compute subtree [min,max] and size per node; verify contiguity.
    std::vector<std::int32_t> size(static_cast<std::size_t>(n), 1);
    std::vector<std::int32_t> maxr(static_cast<std::size_t>(n));
    for (std::int32_t r = n - 1; r >= 0; --r) {
      maxr[static_cast<std::size_t>(r)] = r;
      for (std::int32_t c : t.children[static_cast<std::size_t>(r)]) {
        EXPECT_GT(c, r) << "child left of parent";
        size[static_cast<std::size_t>(r)] += size[static_cast<std::size_t>(c)];
        maxr[static_cast<std::size_t>(r)] =
            std::max(maxr[static_cast<std::size_t>(r)],
                     maxr[static_cast<std::size_t>(c)]);
      }
      EXPECT_EQ(maxr[static_cast<std::size_t>(r)] - r + 1,
                size[static_cast<std::size_t>(r)])
          << "subtree of rank " << r << " not contiguous (n=" << n
          << ", k=" << k << ")";
    }
  }
}

TEST(KBinomial, FirstChildOwnsDeepestSubtree) {
  // Send order: earlier children get more steps, hence larger segments.
  const RankTree t = make_kbinomial(64, 3);
  const auto& kids = t.children[0];
  ASSERT_GE(kids.size(), 2u);
  for (std::size_t i = 0; i + 1 < kids.size(); ++i) {
    // Earlier child sits further right only if its segment is larger;
    // with the rightmost-first construction children descend in rank.
    EXPECT_GT(kids[i], kids[i + 1]);
  }
}

TEST(KBinomial, LargeKEqualsBinomial) {
  // k beyond ceil(log2 n) cannot help; the trees coincide.
  for (std::int32_t n : {5, 16, 33, 100}) {
    const RankTree a =
        make_kbinomial(n, ceil_log2(static_cast<std::uint64_t>(n)));
    const RankTree b = make_binomial(n);
    EXPECT_EQ(a.children, b.children);
  }
}

TEST(KBinomial, RejectsBadArguments) {
  EXPECT_THROW((void)make_kbinomial(0, 2), std::invalid_argument);
  EXPECT_THROW((void)make_kbinomial(4, 0), std::invalid_argument);
  EXPECT_THROW((void)make_binomial(0), std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::core
