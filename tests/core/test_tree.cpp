#include "core/tree.hpp"

#include <gtest/gtest.h>

#include "core/kbinomial.hpp"

namespace nimcast::core {
namespace {

RankTree manual_tree() {
  // 0 -> (2 -> (3), 1)
  RankTree t;
  t.parent = {-1, 0, 0, 2};
  t.children = {{2, 1}, {}, {3}, {}};
  return t;
}

TEST(RankTree, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(manual_tree().validate());
}

TEST(RankTree, ValidateRejectsParentMismatch) {
  RankTree t = manual_tree();
  t.parent[3] = 0;
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(RankTree, ValidateRejectsUnreachable) {
  RankTree t = manual_tree();
  t.children[2].clear();
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(RankTree, ValidateRejectsDoubleReach) {
  RankTree t = manual_tree();
  t.children[1].push_back(3);
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(RankTree, ValidateRejectsRootWithParent) {
  RankTree t = manual_tree();
  t.parent[0] = 2;
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(RankTree, ValidateRejectsChildOutOfRange) {
  RankTree t = manual_tree();
  t.children[1].push_back(17);
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(RankTree, SinglePacketStepsFollowSendOrder) {
  const RankTree t = manual_tree();
  const auto steps = t.single_packet_steps();
  EXPECT_EQ(steps[0], 0);
  EXPECT_EQ(steps[2], 1);  // first child of root
  EXPECT_EQ(steps[1], 2);  // second child of root
  EXPECT_EQ(steps[3], 2);  // first child of rank 2, sent at step 1+1
  EXPECT_EQ(t.steps_to_complete(), 2);
}

TEST(RankTree, MaxChildren) {
  EXPECT_EQ(manual_tree().max_children(), 2);
  EXPECT_EQ(make_binomial(32).max_children(), 5);
  EXPECT_EQ(make_linear(9).max_children(), 1);
}

TEST(RankTree, RootChildren) {
  EXPECT_EQ(manual_tree().root_children(), 2);
  EXPECT_EQ(make_binomial(32).root_children(), 5);
}

TEST(RankTree, ToStringRendersNesting) {
  EXPECT_EQ(manual_tree().to_string(), "0 -> (2 -> (3), 1)");
}

TEST(RankTree, StepsMatchBinomialDepth) {
  for (std::int32_t n : {2, 3, 4, 7, 8, 9, 16, 33, 64}) {
    EXPECT_EQ(make_binomial(n).steps_to_complete(),
              ceil_log2(static_cast<std::uint64_t>(n)))
        << "n=" << n;
  }
}

}  // namespace
}  // namespace nimcast::core
