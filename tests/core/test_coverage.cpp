#include "core/coverage.hpp"

#include <gtest/gtest.h>

namespace nimcast::core {
namespace {

TEST(Coverage, BinomialRegimeIsPowersOfTwo) {
  CoverageTable cov;
  for (std::int32_t k = 1; k <= 8; ++k) {
    for (std::int32_t s = 0; s <= k; ++s) {
      EXPECT_EQ(cov.coverage(s, k), UINT64_C(1) << s)
          << "s=" << s << " k=" << k;
    }
  }
}

TEST(Coverage, RecurrenceHolds) {
  CoverageTable cov;
  for (std::int32_t k = 1; k <= 6; ++k) {
    for (std::int32_t s = k + 1; s <= 20; ++s) {
      std::uint64_t expected = 1;
      for (std::int32_t i = 1; i <= k; ++i) expected += cov.coverage(s - i, k);
      EXPECT_EQ(cov.coverage(s, k), expected);
    }
  }
}

TEST(Coverage, KnownValuesForK2) {
  CoverageTable cov;
  // N(s,2): 1, 2, 4, 7, 12, 20, 33, 54 (Fibonacci-like).
  const std::uint64_t expected[] = {1, 2, 4, 7, 12, 20, 33, 54};
  for (std::int32_t s = 0; s < 8; ++s) {
    EXPECT_EQ(cov.coverage(s, 2), expected[s]);
  }
}

TEST(Coverage, LinearTreeCoversSPlusOne) {
  CoverageTable cov;
  for (std::int32_t s = 0; s <= 40; ++s) {
    EXPECT_EQ(cov.coverage(s, 1), static_cast<std::uint64_t>(s) + 1);
  }
}

TEST(Coverage, MonotoneInBothArguments) {
  CoverageTable cov;
  for (std::int32_t k = 1; k <= 6; ++k) {
    for (std::int32_t s = 0; s < 15; ++s) {
      EXPECT_LE(cov.coverage(s, k), cov.coverage(s + 1, k));
      if (k > 1) {
        EXPECT_LE(cov.coverage(s, k - 1), cov.coverage(s, k));
      }
    }
  }
}

TEST(Coverage, NeverExceedsBinomial) {
  CoverageTable cov;
  for (std::int32_t k = 1; k <= 8; ++k) {
    for (std::int32_t s = 0; s <= 30; ++s) {
      EXPECT_LE(cov.coverage(s, k), UINT64_C(1) << s);
    }
  }
}

TEST(Coverage, SaturatesInsteadOfOverflowing) {
  CoverageTable cov;
  EXPECT_EQ(cov.coverage(100, 8), kCoverageInfinity);
  EXPECT_EQ(cov.coverage(63, 63), kCoverageInfinity);
}

TEST(Coverage, RejectsBadArguments) {
  CoverageTable cov;
  EXPECT_THROW((void)cov.coverage(-1, 2), std::invalid_argument);
  EXPECT_THROW((void)cov.coverage(3, 0), std::invalid_argument);
}

TEST(MinSteps, MatchesDefinition) {
  CoverageTable cov;
  for (std::int32_t k = 1; k <= 6; ++k) {
    for (std::uint64_t n = 1; n <= 200; ++n) {
      const std::int32_t s = cov.min_steps(n, k);
      EXPECT_GE(cov.coverage(s, k), n);
      if (s > 0) {
        EXPECT_LT(cov.coverage(s - 1, k), n);
      }
    }
  }
}

TEST(MinSteps, BinomialFanoutGivesCeilLog2) {
  CoverageTable cov;
  for (std::uint64_t n = 2; n <= 1024; ++n) {
    const std::int32_t k = ceil_log2(n);
    EXPECT_EQ(cov.min_steps(n, k), k) << "n=" << n;
  }
}

TEST(MinSteps, LinearIsNMinusOne) {
  CoverageTable cov;
  for (std::uint64_t n = 1; n <= 100; ++n) {
    EXPECT_EQ(cov.min_steps(n, 1), static_cast<std::int32_t>(n) - 1);
  }
}

TEST(CeilLog2, KnownValues) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(64), 6);
  EXPECT_EQ(ceil_log2(65), 7);
  EXPECT_EQ(ceil_log2(UINT64_C(1) << 40), 40);
}

TEST(CeilLog2, RejectsZero) {
  EXPECT_THROW((void)ceil_log2(0), std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::core
