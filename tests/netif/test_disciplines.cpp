// Discipline-order tests: drive whole multicasts through the engine on a
// single-switch topology and read the per-NI send sequences out of the
// trace. FCFS and FPFS are *defined* by these orders (paper Figs. 6, 7).

#include <gtest/gtest.h>

#include <cstdio>

#include "core/host_tree.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/up_down.hpp"
#include "sim/trace.hpp"

namespace nimcast::netif {
namespace {

struct SendRecord {
  std::int32_t pkt;
  topo::HostId dest;
  bool operator==(const SendRecord&) const = default;
};

struct Rig {
  topo::Topology topology{topo::Graph{1, {}}, {0, 0, 0, 0, 0, 0}, "star"};
  routing::UpDownRouter router{topology.switches()};
  routing::RouteTable routes{topology, router};
  sim::Trace trace;

  Rig() { trace.enable(); }

  mcast::MulticastResult run(const core::HostTree& tree, std::int32_t m,
                             mcast::NiStyle style) {
    mcast::MulticastEngine engine{
        topology, routes,
        mcast::MulticastEngine::Config{SystemParams{}, net::NetworkConfig{},
                                       style},
        &trace};
    return engine.run(tree, m);
  }

  /// Send order of one NI, parsed from its trace lines.
  std::vector<SendRecord> sends_of(topo::HostId host) const {
    std::vector<SendRecord> out;
    for (const auto& r : trace.filter(sim::TraceCategory::kNi)) {
      if (r.entity != host) continue;
      int pkt = -1;
      int dest = -1;
      if (std::sscanf(r.message.c_str(), "sent msg=%*d pkt=%d -> host %d",
                      &pkt, &dest) == 2) {
        out.push_back(SendRecord{pkt, dest});
      }
    }
    return out;
  }
};

/// source 0 -> intermediate 1 -> leaves {2, 3}.
core::HostTree chain_fanout_tree() {
  core::HostTree t;
  t.root = 0;
  t.nodes = {0, 1, 2, 3};
  t.children[0] = {1};
  t.children[1] = {2, 3};
  t.children[2] = {};
  t.children[3] = {};
  return t;
}

/// source 0 -> children {1, 2} directly.
core::HostTree flat_tree() {
  core::HostTree t;
  t.root = 0;
  t.nodes = {0, 1, 2};
  t.children[0] = {1, 2};
  t.children[1] = {};
  t.children[2] = {};
  return t;
}

TEST(Disciplines, FpfsSourceIsPacketMajor) {
  Rig rig;
  (void)rig.run(flat_tree(), 2, mcast::NiStyle::kSmartFpfs);
  EXPECT_EQ(rig.sends_of(0),
            (std::vector<SendRecord>{{0, 1}, {0, 2}, {1, 1}, {1, 2}}));
}

TEST(Disciplines, FcfsSourceIsChildMajor) {
  Rig rig;
  (void)rig.run(flat_tree(), 2, mcast::NiStyle::kSmartFcfs);
  EXPECT_EQ(rig.sends_of(0),
            (std::vector<SendRecord>{{0, 1}, {1, 1}, {0, 2}, {1, 2}}));
}

TEST(Disciplines, FpfsIntermediateForwardsEachPacketToAllChildren) {
  Rig rig;
  (void)rig.run(chain_fanout_tree(), 2, mcast::NiStyle::kSmartFpfs);
  EXPECT_EQ(rig.sends_of(1),
            (std::vector<SendRecord>{{0, 2}, {0, 3}, {1, 2}, {1, 3}}));
}

TEST(Disciplines, FcfsIntermediateStreamsFirstChildThenBatchesRest) {
  Rig rig;
  (void)rig.run(chain_fanout_tree(), 3, mcast::NiStyle::kSmartFcfs);
  EXPECT_EQ(rig.sends_of(1),
            (std::vector<SendRecord>{
                {0, 2}, {1, 2}, {2, 2}, {0, 3}, {1, 3}, {2, 3}}));
}

TEST(Disciplines, LeavesForwardNothing) {
  Rig rig;
  (void)rig.run(chain_fanout_tree(), 2, mcast::NiStyle::kSmartFpfs);
  EXPECT_TRUE(rig.sends_of(2).empty());
  EXPECT_TRUE(rig.sends_of(3).empty());
}

TEST(Disciplines, EveryDestinationCompletesOnce) {
  for (auto style : {mcast::NiStyle::kSmartFpfs, mcast::NiStyle::kSmartFcfs,
                     mcast::NiStyle::kConventional}) {
    Rig rig;
    const auto result = rig.run(chain_fanout_tree(), 4, style);
    EXPECT_EQ(result.completions.size(), 3u) << mcast::to_string(style);
    EXPECT_EQ(result.packets_delivered, 4 * 3) << mcast::to_string(style);
  }
}

TEST(Disciplines, HostCompletionLagsNiCompletionByTr) {
  Rig rig;
  const auto result = rig.run(flat_tree(), 2, mcast::NiStyle::kSmartFpfs);
  EXPECT_EQ(result.latency, result.ni_latency + SystemParams{}.t_r);
}

TEST(Disciplines, SingleDestinationDegenerateTree) {
  Rig rig;
  core::HostTree t;
  t.root = 0;
  t.nodes = {0, 1};
  t.children[0] = {1};
  t.children[1] = {};
  const auto result = rig.run(t, 1, mcast::NiStyle::kSmartFpfs);
  // t_s + t_snd + network(0 hops) + t_rcv + t_r
  const SystemParams p;
  const auto expected = p.t_s + p.t_snd + sim::Time::us(0.6) + p.t_rcv + p.t_r;
  EXPECT_EQ(result.latency, expected);
}

TEST(Disciplines, FcfsBuffersWholeMessageAtIntermediate) {
  Rig rig;
  const auto result = rig.run(chain_fanout_tree(), 4,
                              mcast::NiStyle::kSmartFcfs);
  // Intermediate host 1 must hold all 4 packets at once (they can only
  // leave after the last copy to the last child).
  double peak1 = -1;
  for (const auto& b : result.buffers) {
    if (b.host == 1) peak1 = b.peak_packets;
  }
  EXPECT_EQ(peak1, 4.0);
}

TEST(Disciplines, FpfsBuffersLessThanFcfsAtIntermediate) {
  Rig fp;
  Rig fc;
  const auto rf = fp.run(chain_fanout_tree(), 6, mcast::NiStyle::kSmartFpfs);
  const auto rc = fc.run(chain_fanout_tree(), 6, mcast::NiStyle::kSmartFcfs);
  double fpfs_int = -1;
  double fcfs_int = -1;
  for (const auto& b : rf.buffers) {
    if (b.host == 1) fpfs_int = b.packet_us_integral;
  }
  for (const auto& b : rc.buffers) {
    if (b.host == 1) fcfs_int = b.packet_us_integral;
  }
  EXPECT_LT(fpfs_int, fcfs_int);
}

TEST(Disciplines, ConventionalSlowerThanSmartOnForwardingTree) {
  Rig conv;
  Rig smart;
  const auto rc = conv.run(chain_fanout_tree(), 4,
                           mcast::NiStyle::kConventional);
  const auto rs = smart.run(chain_fanout_tree(), 4,
                            mcast::NiStyle::kSmartFpfs);
  // The conventional path pays t_r + t_s at the intermediate host again.
  EXPECT_GT(rc.latency, rs.latency + SystemParams{}.t_r);
}

TEST(Disciplines, SmartStylesTieOnSingleChildChain) {
  // With one child per node the two disciplines degenerate to the same
  // schedule.
  core::HostTree t;
  t.root = 0;
  t.nodes = {0, 1, 2};
  t.children[0] = {1};
  t.children[1] = {2};
  t.children[2] = {};
  Rig a;
  Rig b;
  const auto ra = a.run(t, 5, mcast::NiStyle::kSmartFpfs);
  const auto rb = b.run(t, 5, mcast::NiStyle::kSmartFcfs);
  EXPECT_EQ(ra.latency, rb.latency);
}

}  // namespace
}  // namespace nimcast::netif
