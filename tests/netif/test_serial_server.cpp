#include "netif/serial_server.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace nimcast::netif {
namespace {

TEST(SerialServer, ExecutesTasksFifoBackToBack) {
  sim::Simulator simctx;
  SerialServer server{simctx};
  std::vector<std::pair<int, sim::Time>> done;
  for (int i = 0; i < 3; ++i) {
    server.enqueue(sim::Time::us(2.0),
                   [&, i] { done.emplace_back(i, simctx.now()); });
  }
  simctx.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], (std::pair{0, sim::Time::us(2.0)}));
  EXPECT_EQ(done[1], (std::pair{1, sim::Time::us(4.0)}));
  EXPECT_EQ(done[2], (std::pair{2, sim::Time::us(6.0)}));
}

TEST(SerialServer, IdleServerStartsImmediately) {
  sim::Simulator simctx;
  SerialServer server{simctx};
  sim::Time done_at;
  simctx.schedule_at(sim::Time::us(5.0), [&] {
    server.enqueue(sim::Time::us(1.0), [&] { done_at = simctx.now(); });
  });
  simctx.run();
  EXPECT_EQ(done_at, sim::Time::us(6.0));
}

TEST(SerialServer, CompletionActionMayEnqueueMoreWork) {
  sim::Simulator simctx;
  SerialServer server{simctx};
  sim::Time second_done;
  server.enqueue(sim::Time::us(1.0), [&] {
    server.enqueue(sim::Time::us(3.0), [&] { second_done = simctx.now(); });
  });
  simctx.run();
  EXPECT_EQ(second_done, sim::Time::us(4.0));
}

TEST(SerialServer, WorkEnqueuedByActionGoesBehindQueuedWork) {
  sim::Simulator simctx;
  SerialServer server{simctx};
  std::vector<int> order;
  server.enqueue(sim::Time::us(1.0), [&] {
    order.push_back(0);
    server.enqueue(sim::Time::us(1.0), [&] { order.push_back(2); });
  });
  server.enqueue(sim::Time::us(1.0), [&] { order.push_back(1); });
  simctx.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SerialServer, EnqueueFrontJumpsQueue) {
  sim::Simulator simctx;
  SerialServer server{simctx};
  std::vector<int> order;
  server.enqueue(sim::Time::us(1.0), [&] {
    order.push_back(0);
    server.enqueue_front(sim::Time::us(1.0), [&] { order.push_back(1); });
  });
  server.enqueue(sim::Time::us(1.0), [&] { order.push_back(2); });
  simctx.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SerialServer, BusyAndQueuedObservable) {
  sim::Simulator simctx;
  SerialServer server{simctx};
  server.enqueue(sim::Time::us(1.0), [] {});
  server.enqueue(sim::Time::us(1.0), [] {});
  EXPECT_TRUE(server.busy());
  EXPECT_EQ(server.queued(), 1u);
  simctx.run();
  EXPECT_FALSE(server.busy());
  EXPECT_EQ(server.queued(), 0u);
}

TEST(SerialServer, BusyTimeAccumulates) {
  sim::Simulator simctx;
  SerialServer server{simctx};
  server.enqueue(sim::Time::us(1.5), [] {});
  server.enqueue(sim::Time::us(2.5), [] {});
  simctx.run();
  EXPECT_EQ(server.busy_time(), sim::Time::us(4.0));
}

TEST(SerialServer, ZeroDurationTaskCompletesAtEnqueueTime) {
  sim::Simulator simctx;
  SerialServer server{simctx};
  sim::Time done_at = sim::Time::us(99.0);
  server.enqueue(sim::Time::zero(), [&] { done_at = simctx.now(); });
  simctx.run();
  EXPECT_EQ(done_at, sim::Time::zero());
}


// --- multi-worker (multi-engine NI) behaviour -----------------------------

TEST(SerialServerMultiWorker, TasksOverlapUpToWorkerCount) {
  sim::Simulator simctx;
  SerialServer server{simctx, 2};
  std::vector<std::pair<int, sim::Time>> done;
  for (int i = 0; i < 4; ++i) {
    server.enqueue(sim::Time::us(2.0),
                   [&, i] { done.emplace_back(i, simctx.now()); });
  }
  simctx.run();
  ASSERT_EQ(done.size(), 4u);
  // Pairs complete together: {0,1} at 2us, {2,3} at 4us.
  EXPECT_EQ(done[0].second, sim::Time::us(2.0));
  EXPECT_EQ(done[1].second, sim::Time::us(2.0));
  EXPECT_EQ(done[2].second, sim::Time::us(4.0));
  EXPECT_EQ(done[3].second, sim::Time::us(4.0));
}

TEST(SerialServerMultiWorker, FifoStartOrderPreserved) {
  sim::Simulator simctx;
  SerialServer server{simctx, 3};
  std::vector<int> order;
  // Different durations: starts remain FIFO even though completions
  // reorder.
  server.enqueue(sim::Time::us(5.0), [&] { order.push_back(0); });
  server.enqueue(sim::Time::us(1.0), [&] { order.push_back(1); });
  server.enqueue(sim::Time::us(3.0), [&] { order.push_back(2); });
  simctx.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(SerialServerMultiWorker, BusyTimeSumsAllWorkers) {
  sim::Simulator simctx;
  SerialServer server{simctx, 4};
  for (int i = 0; i < 4; ++i) server.enqueue(sim::Time::us(1.0), [] {});
  simctx.run();
  EXPECT_EQ(server.busy_time(), sim::Time::us(4.0));
}

TEST(SerialServerMultiWorker, SingleWorkerDefaultUnchanged) {
  sim::Simulator simctx;
  SerialServer server{simctx};
  EXPECT_EQ(server.workers(), 1);
}

TEST(SerialServerMultiWorker, RejectsZeroWorkers) {
  sim::Simulator simctx;
  EXPECT_THROW((SerialServer{simctx, 0}), std::invalid_argument);
}

TEST(SerialServerMultiWorker, LowPriorityStillYieldsToNormalLane) {
  sim::Simulator simctx;
  SerialServer server{simctx, 2};
  std::vector<int> order;
  // Saturate both workers, then queue one low and one normal task: the
  // normal one must start first when a worker frees.
  server.enqueue(sim::Time::us(1.0), [&] { order.push_back(0); });
  server.enqueue(sim::Time::us(1.0), [&] { order.push_back(1); });
  server.enqueue_low(sim::Time::us(1.0), [&] { order.push_back(3); });
  server.enqueue(sim::Time::us(0.5), [&] { order.push_back(2); });
  simctx.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_LT(std::find(order.begin(), order.end(), 2) - order.begin(),
            std::find(order.begin(), order.end(), 3) - order.begin());
}

}  // namespace
}  // namespace nimcast::netif
