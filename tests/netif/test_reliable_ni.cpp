// The reliable FPFS layer: ACK/retransmit multicast over a lossy fabric.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "mcast/multicast_engine.hpp"
#include "netif/host.hpp"
#include "netif/reliable_ni.hpp"
#include "routing/up_down.hpp"
#include "support/callback_sink.hpp"

namespace nimcast::netif {
namespace {

struct Rig {
  topo::Topology topology{topo::Graph{1, {}},
                          std::vector<topo::SwitchId>(10, 0), "star"};
  routing::UpDownRouter router{topology.switches()};
  routing::RouteTable routes{topology, router};

  mcast::MulticastResult run(std::int32_t n, std::int32_t m,
                             double loss_rate, mcast::NiStyle style,
                             std::uint64_t loss_seed = 0x1055) const {
    net::NetworkConfig netcfg;
    netcfg.loss_rate = loss_rate;
    netcfg.loss_seed = loss_seed;
    core::Chain order;
    for (std::int32_t i = 0; i < n; ++i) order.push_back(i);
    const auto tree = core::HostTree::bind(core::make_kbinomial(n, 2), order);
    const mcast::MulticastEngine engine{
        topology, routes,
        mcast::MulticastEngine::Config{SystemParams{}, netcfg, style}};
    return engine.run(tree, m);
  }
};

TEST(ReliableNi, LosslessBehavesLikeFpfsPlusAckTraffic) {
  Rig rig;
  const auto fpfs = rig.run(8, 4, 0.0, mcast::NiStyle::kSmartFpfs);
  const auto reliable = rig.run(8, 4, 0.0, mcast::NiStyle::kReliableFpfs);
  EXPECT_EQ(reliable.completions.size(), 7u);
  // Data path identical; ACK processing may add small coprocessor delays
  // but never retransmissions.
  EXPECT_GE(reliable.latency, fpfs.latency);
  EXPECT_LT(reliable.latency, fpfs.latency + sim::Time::us(30.0));
}

TEST(ReliableNi, DeliversDespiteHeavyLoss) {
  Rig rig;
  for (const double loss : {0.05, 0.2, 0.4}) {
    const auto result = rig.run(8, 6, loss, mcast::NiStyle::kReliableFpfs);
    EXPECT_EQ(result.completions.size(), 7u) << "loss=" << loss;
  }
}

TEST(ReliableNi, UnreliableFpfsHangsUnderLossButReliableDoesNot) {
  Rig rig;
  // Plain FPFS on a lossy fabric loses packets forever: the engine
  // detects the incomplete multicast.
  EXPECT_THROW((void)rig.run(8, 6, 0.3, mcast::NiStyle::kSmartFpfs),
               std::runtime_error);
  EXPECT_NO_THROW((void)rig.run(8, 6, 0.3, mcast::NiStyle::kReliableFpfs));
}

TEST(ReliableNi, LatencyDegradesGracefullyWithLoss) {
  Rig rig;
  sim::Time prev;
  for (const double loss : {0.0, 0.1, 0.3}) {
    sim::Time total;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      total += rig.run(8, 6, loss, mcast::NiStyle::kReliableFpfs, seed)
                   .latency;
    }
    EXPECT_GE(total, prev) << "loss=" << loss;
    prev = total;
  }
}

TEST(ReliableNi, DeterministicGivenLossSeed) {
  Rig rig;
  const auto a = rig.run(6, 4, 0.25, mcast::NiStyle::kReliableFpfs, 9);
  const auto b = rig.run(6, 4, 0.25, mcast::NiStyle::kReliableFpfs, 9);
  EXPECT_EQ(a.latency, b.latency);
  const auto c = rig.run(6, 4, 0.25, mcast::NiStyle::kReliableFpfs, 10);
  // Different loss pattern virtually always shifts timing.
  EXPECT_NE(a.latency, c.latency);
}

TEST(ReliableNi, GivesUpAfterMaxRetransmissions) {
  Rig rig;
  net::NetworkConfig netcfg;
  netcfg.loss_rate = 0.95;
  core::Chain order{0, 1};
  const auto tree = core::HostTree::bind(core::make_kbinomial(2, 1), order);
  ReliabilityParams rel;
  rel.max_retransmissions = 3;
  const mcast::MulticastEngine engine{
      rig.topology, rig.routes,
      mcast::MulticastEngine::Config{SystemParams{}, netcfg,
                                     mcast::NiStyle::kReliableFpfs, rel}};
  EXPECT_THROW((void)engine.run(tree, 2), std::runtime_error);
}

TEST(ReliableNi, BuffersHeldUntilAcked) {
  // With reliability the source cannot release a packet at injection; it
  // must wait for ACKs, so its buffer integral strictly exceeds plain
  // FPFS's even with zero loss.
  Rig rig;
  const auto fpfs = rig.run(6, 6, 0.0, mcast::NiStyle::kSmartFpfs);
  const auto reliable = rig.run(6, 6, 0.0, mcast::NiStyle::kReliableFpfs);
  double fp_src = 0;
  double rel_src = 0;
  for (const auto& b : fpfs.buffers) {
    if (b.host == 0) fp_src = b.packet_us_integral;
  }
  for (const auto& b : reliable.buffers) {
    if (b.host == 0) rel_src = b.packet_us_integral;
  }
  EXPECT_GT(rel_src, fp_src);
}

TEST(ReliableNi, LossyNetworkCountsDrops) {
  Rig rig;
  sim::Simulator simctx;
  net::NetworkConfig netcfg;
  netcfg.loss_rate = 0.5;
  netcfg.loss_seed = 3;
  net::WormholeNetwork network{simctx, rig.topology, rig.routes, netcfg};
  int delivered = 0;
  net::test_support::CallbackSink sink{
      [&](const net::Packet&) { ++delivered; }};
  net::test_support::bind_all_hosts(network, rig.topology.num_hosts(),
                                    &sink);
  for (int i = 0; i < 200; ++i) {
    net::Packet p;
    p.message = 1;
    p.packet_index = i;
    p.sender = 0;
    p.dest = 1;
    network.send(p);
  }
  simctx.run();
  EXPECT_EQ(network.packets_delivered() + network.packets_dropped(), 200);
  EXPECT_NEAR(static_cast<double>(network.packets_dropped()), 100.0, 30.0);
  EXPECT_EQ(delivered, network.packets_delivered());
}

TEST(ReliableNi, RejectsInvalidLossRate) {
  Rig rig;
  sim::Simulator simctx;
  net::NetworkConfig netcfg;
  netcfg.loss_rate = 1.0;
  EXPECT_THROW((net::WormholeNetwork{simctx, rig.topology, rig.routes,
                                     netcfg}),
               std::invalid_argument);
  netcfg.loss_rate = -0.1;
  EXPECT_THROW((net::WormholeNetwork{simctx, rig.topology, rig.routes,
                                     netcfg}),
               std::invalid_argument);
}

// --- Protocol corner cases, driven against bare NIs with a packet
// interceptor bound as each host's DeliverySink (overriding the NI's
// own self-binding). ---

/// Three hosts on one switch, wired directly: `drop` filters packets in
/// flight (return true to lose one), everything else is logged and
/// handed to the destination NI.
struct DirectRig {
  sim::Simulator simctx;
  topo::Topology topology{topo::Graph{1, {}},
                          std::vector<topo::SwitchId>(3, 0), "star3"};
  routing::UpDownRouter router{topology.switches()};
  routing::RouteTable routes{topology, router};
  net::WormholeNetwork network{simctx, topology, routes, {}};
  SystemParams params{};
  std::vector<std::unique_ptr<ReliableFpfsNi>> nis;
  std::function<bool(const net::Packet&)> drop;
  std::vector<net::Packet> delivered_log;

  /// Sink shim: filters in-flight packets, then hands survivors to the
  /// real NI's deliver().
  struct Tap final : net::DeliverySink {
    DirectRig* rig;
    ReliableFpfsNi* ni;
    Tap(DirectRig* r, ReliableFpfsNi* n) : rig{r}, ni{n} {}
    void on_packet_delivered(const net::Packet& p) override {
      if (rig->drop && rig->drop(p)) return;
      rig->delivered_log.push_back(p);
      ni->deliver(p);
    }
  };
  std::vector<std::unique_ptr<Tap>> taps;

  explicit DirectRig(ReliabilityParams rel = {}) {
    for (topo::HostId h = 0; h < 3; ++h) {
      nis.push_back(std::make_unique<ReliableFpfsNi>(simctx, network, params,
                                                     rel, h));
    }
    for (topo::HostId h = 0; h < 3; ++h) {
      taps.push_back(
          std::make_unique<Tap>(this, nis[static_cast<std::size_t>(h)].get()));
      network.bind_sink(h, taps.back().get());
    }
  }

  [[nodiscard]] int count(std::function<bool(const net::Packet&)> pred) const {
    int n = 0;
    for (const auto& p : delivered_log) {
      if (pred(p)) ++n;
    }
    return n;
  }

  [[nodiscard]] static bool is_ack(const net::Packet& p) {
    return p.tag == ReliableFpfsNi::kAckTag;
  }
};

TEST(ReliableNiCorners, LostAckDuplicateIsReAckedButNotReForwarded) {
  // Chain 0 -> 1 -> 2. The first ACK 1 -> 0 is lost, so 0 retransmits;
  // node 1 must re-ACK the duplicate without forwarding it to 2 again.
  DirectRig rig;
  rig.nis[0]->install(1, ForwardingEntry{{1}, 1, /*is_destination=*/false});
  rig.nis[1]->install(1, ForwardingEntry{{2}, 1, true});
  rig.nis[2]->install(1, ForwardingEntry{{}, 1, true});
  int acks_dropped = 0;
  rig.drop = [&](const net::Packet& p) {
    if (DirectRig::is_ack(p) && p.sender == 1 && p.dest == 0 &&
        acks_dropped == 0) {
      ++acks_dropped;
      return true;
    }
    return false;
  };
  std::vector<topo::HostId> completed;
  for (auto& ni : rig.nis) {
    ni->on_message_at_ni = [&](topo::HostId h, net::MessageId) {
      completed.push_back(h);
    };
  }
  Host source{rig.simctx, 0, rig.params};
  rig.nis[0]->start_from_host(1, source);
  rig.simctx.run();

  EXPECT_EQ(acks_dropped, 1);
  EXPECT_EQ(rig.nis[0]->retransmissions(), 1);
  // The duplicate was detected exactly once and swallowed...
  EXPECT_EQ(rig.nis[1]->duplicates_seen(), 1);
  // ...not re-forwarded: host 2 saw exactly one data packet,
  EXPECT_EQ(rig.count([](const net::Packet& p) {
              return !DirectRig::is_ack(p) && p.dest == 2;
            }),
            1);
  // and the re-ACK reached the parent so the protocol wound down.
  EXPECT_EQ(rig.count([](const net::Packet& p) {
              return DirectRig::is_ack(p) && p.sender == 1 && p.dest == 0;
            }),
            1);
  EXPECT_EQ(completed, (std::vector<topo::HostId>{1, 2}))
      << "each destination completes exactly once";
  EXPECT_EQ(rig.nis[0]->deliveries_failed(), 0);
  EXPECT_EQ(rig.nis[0]->buffer().current(), 0.0);
  EXPECT_EQ(rig.nis[1]->buffer().current(), 0.0);
}

TEST(ReliableNiCorners, RepeatedAckLossCountsEachDuplicateOnce) {
  DirectRig rig;
  rig.nis[0]->install(1, ForwardingEntry{{1}, 1, /*is_destination=*/false});
  rig.nis[1]->install(1, ForwardingEntry{{}, 1, true});
  int acks_dropped = 0;
  rig.drop = [&](const net::Packet& p) {
    if (DirectRig::is_ack(p) && acks_dropped < 2) {
      ++acks_dropped;
      return true;
    }
    return false;
  };
  Host source{rig.simctx, 0, rig.params};
  rig.nis[0]->start_from_host(1, source);
  rig.simctx.run();
  EXPECT_EQ(rig.nis[0]->retransmissions(), 2);
  EXPECT_EQ(rig.nis[1]->duplicates_seen(), 2);
  EXPECT_EQ(rig.nis[0]->buffer().current(), 0.0);
}

TEST(ReliableNiCorners, BufferSlotReleasedOnlyAfterLastChildAck) {
  // 0 -> {1, 2}; child 2's first ACK is lost. After child 1's ACK the
  // packet must still occupy its slot — only the last child ACK (via the
  // retransmission to 2) releases it.
  DirectRig rig;
  rig.nis[0]->install(1, ForwardingEntry{{1, 2}, 1, /*is_destination=*/false});
  rig.nis[1]->install(1, ForwardingEntry{{}, 1, true});
  rig.nis[2]->install(1, ForwardingEntry{{}, 1, true});
  int acks_dropped = 0;
  double occupancy_after_first_ack = -1.0;
  rig.drop = [&](const net::Packet& p) {
    if (DirectRig::is_ack(p) && p.sender == 2 && acks_dropped == 0) {
      ++acks_dropped;
      return true;
    }
    if (DirectRig::is_ack(p) && p.sender == 1) {
      // Probe well after this ACK is processed but long before the
      // retransmission timeout (~2x RTT) can re-reach child 2.
      rig.simctx.schedule_in(sim::Time::us(5.0), [&] {
        occupancy_after_first_ack = rig.nis[0]->buffer().current();
      });
    }
    return false;
  };
  Host source{rig.simctx, 0, rig.params};
  rig.nis[0]->start_from_host(1, source);
  rig.simctx.run();
  EXPECT_EQ(acks_dropped, 1);
  EXPECT_EQ(occupancy_after_first_ack, 1.0)
      << "slot must stay held while one child ACK is outstanding";
  EXPECT_EQ(rig.nis[0]->retransmissions(), 1);
  EXPECT_EQ(rig.nis[0]->buffer().current(), 0.0)
      << "last child ACK releases the slot";
}

TEST(ReliableNiCorners, BudgetExhaustionFiresCallbackInsteadOfThrowing) {
  ReliabilityParams rel;
  rel.max_retransmissions = 3;
  DirectRig rig{rel};
  rig.nis[0]->install(1, ForwardingEntry{{1}, 1, /*is_destination=*/false});
  rig.nis[1]->install(1, ForwardingEntry{{}, 1, true});
  // Lose every data packet: the edge can never be acknowledged.
  rig.drop = [](const net::Packet& p) { return !DirectRig::is_ack(p); };
  std::vector<topo::HostId> failed_children;
  rig.nis[0]->on_delivery_failure = [&](net::MessageId m, std::int32_t index,
                                        topo::HostId child) {
    EXPECT_EQ(m, 1);
    EXPECT_EQ(index, 0);
    failed_children.push_back(child);
  };
  Host source{rig.simctx, 0, rig.params};
  rig.nis[0]->start_from_host(1, source);
  EXPECT_NO_THROW(rig.simctx.run());
  EXPECT_EQ(rig.nis[0]->deliveries_failed(), 1);
  EXPECT_EQ(failed_children, (std::vector<topo::HostId>{1}));
  EXPECT_GE(rig.nis[0]->retransmissions(), rel.max_retransmissions);
  EXPECT_EQ(rig.nis[0]->buffer().current(), 0.0)
      << "giving up must release the buffer obligation";
}

}  // namespace
}  // namespace nimcast::netif
