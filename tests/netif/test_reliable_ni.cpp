// The reliable FPFS layer: ACK/retransmit multicast over a lossy fabric.

#include <gtest/gtest.h>

#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/up_down.hpp"

namespace nimcast::netif {
namespace {

struct Rig {
  topo::Topology topology{topo::Graph{1, {}},
                          std::vector<topo::SwitchId>(10, 0), "star"};
  routing::UpDownRouter router{topology.switches()};
  routing::RouteTable routes{topology, router};

  mcast::MulticastResult run(std::int32_t n, std::int32_t m,
                             double loss_rate, mcast::NiStyle style,
                             std::uint64_t loss_seed = 0x1055) const {
    net::NetworkConfig netcfg;
    netcfg.loss_rate = loss_rate;
    netcfg.loss_seed = loss_seed;
    core::Chain order;
    for (std::int32_t i = 0; i < n; ++i) order.push_back(i);
    const auto tree = core::HostTree::bind(core::make_kbinomial(n, 2), order);
    const mcast::MulticastEngine engine{
        topology, routes,
        mcast::MulticastEngine::Config{SystemParams{}, netcfg, style}};
    return engine.run(tree, m);
  }
};

TEST(ReliableNi, LosslessBehavesLikeFpfsPlusAckTraffic) {
  Rig rig;
  const auto fpfs = rig.run(8, 4, 0.0, mcast::NiStyle::kSmartFpfs);
  const auto reliable = rig.run(8, 4, 0.0, mcast::NiStyle::kReliableFpfs);
  EXPECT_EQ(reliable.completions.size(), 7u);
  // Data path identical; ACK processing may add small coprocessor delays
  // but never retransmissions.
  EXPECT_GE(reliable.latency, fpfs.latency);
  EXPECT_LT(reliable.latency, fpfs.latency + sim::Time::us(30.0));
}

TEST(ReliableNi, DeliversDespiteHeavyLoss) {
  Rig rig;
  for (const double loss : {0.05, 0.2, 0.4}) {
    const auto result = rig.run(8, 6, loss, mcast::NiStyle::kReliableFpfs);
    EXPECT_EQ(result.completions.size(), 7u) << "loss=" << loss;
  }
}

TEST(ReliableNi, UnreliableFpfsHangsUnderLossButReliableDoesNot) {
  Rig rig;
  // Plain FPFS on a lossy fabric loses packets forever: the engine
  // detects the incomplete multicast.
  EXPECT_THROW((void)rig.run(8, 6, 0.3, mcast::NiStyle::kSmartFpfs),
               std::runtime_error);
  EXPECT_NO_THROW((void)rig.run(8, 6, 0.3, mcast::NiStyle::kReliableFpfs));
}

TEST(ReliableNi, LatencyDegradesGracefullyWithLoss) {
  Rig rig;
  sim::Time prev;
  for (const double loss : {0.0, 0.1, 0.3}) {
    sim::Time total;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      total += rig.run(8, 6, loss, mcast::NiStyle::kReliableFpfs, seed)
                   .latency;
    }
    EXPECT_GE(total, prev) << "loss=" << loss;
    prev = total;
  }
}

TEST(ReliableNi, DeterministicGivenLossSeed) {
  Rig rig;
  const auto a = rig.run(6, 4, 0.25, mcast::NiStyle::kReliableFpfs, 9);
  const auto b = rig.run(6, 4, 0.25, mcast::NiStyle::kReliableFpfs, 9);
  EXPECT_EQ(a.latency, b.latency);
  const auto c = rig.run(6, 4, 0.25, mcast::NiStyle::kReliableFpfs, 10);
  // Different loss pattern virtually always shifts timing.
  EXPECT_NE(a.latency, c.latency);
}

TEST(ReliableNi, GivesUpAfterMaxRetransmissions) {
  Rig rig;
  net::NetworkConfig netcfg;
  netcfg.loss_rate = 0.95;
  core::Chain order{0, 1};
  const auto tree = core::HostTree::bind(core::make_kbinomial(2, 1), order);
  ReliabilityParams rel;
  rel.max_retransmissions = 3;
  const mcast::MulticastEngine engine{
      rig.topology, rig.routes,
      mcast::MulticastEngine::Config{SystemParams{}, netcfg,
                                     mcast::NiStyle::kReliableFpfs, rel}};
  EXPECT_THROW((void)engine.run(tree, 2), std::runtime_error);
}

TEST(ReliableNi, BuffersHeldUntilAcked) {
  // With reliability the source cannot release a packet at injection; it
  // must wait for ACKs, so its buffer integral strictly exceeds plain
  // FPFS's even with zero loss.
  Rig rig;
  const auto fpfs = rig.run(6, 6, 0.0, mcast::NiStyle::kSmartFpfs);
  const auto reliable = rig.run(6, 6, 0.0, mcast::NiStyle::kReliableFpfs);
  double fp_src = 0;
  double rel_src = 0;
  for (const auto& b : fpfs.buffers) {
    if (b.host == 0) fp_src = b.packet_us_integral;
  }
  for (const auto& b : reliable.buffers) {
    if (b.host == 0) rel_src = b.packet_us_integral;
  }
  EXPECT_GT(rel_src, fp_src);
}

TEST(ReliableNi, LossyNetworkCountsDrops) {
  Rig rig;
  sim::Simulator simctx;
  net::NetworkConfig netcfg;
  netcfg.loss_rate = 0.5;
  netcfg.loss_seed = 3;
  net::WormholeNetwork network{simctx, rig.topology, rig.routes, netcfg};
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    net::Packet p;
    p.message = 1;
    p.packet_index = i;
    p.sender = 0;
    p.dest = 1;
    network.send(p, [&](const net::Packet&) { ++delivered; });
  }
  simctx.run();
  EXPECT_EQ(network.packets_delivered() + network.packets_dropped(), 200);
  EXPECT_NEAR(static_cast<double>(network.packets_dropped()), 100.0, 30.0);
  EXPECT_EQ(delivered, network.packets_delivered());
}

TEST(ReliableNi, RejectsInvalidLossRate) {
  Rig rig;
  sim::Simulator simctx;
  net::NetworkConfig netcfg;
  netcfg.loss_rate = 1.0;
  EXPECT_THROW((net::WormholeNetwork{simctx, rig.topology, rig.routes,
                                     netcfg}),
               std::invalid_argument);
  netcfg.loss_rate = -0.1;
  EXPECT_THROW((net::WormholeNetwork{simctx, rig.topology, rig.routes,
                                     netcfg}),
               std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::netif
