#pragma once

#include <functional>
#include <utility>

#include "network/wormhole_network.hpp"

namespace nimcast::net::test_support {

/// DeliverySink adapter for tests: forwards every delivered packet to a
/// captured std::function. Production traffic binds real NIs; tests bind
/// one of these per destination host and use the sink-based send()
/// instead of the deprecated per-packet callback overload.
class CallbackSink final : public DeliverySink {
 public:
  CallbackSink() : fn_{[](const Packet&) {}} {}
  explicit CallbackSink(std::function<void(const Packet&)> fn)
      : fn_{std::move(fn)} {}

  void on_packet_delivered(const Packet& packet) override { fn_(packet); }

 private:
  std::function<void(const Packet&)> fn_;
};

/// Binds `sink` as the receiver for every host in `[0, num_hosts)`.
inline void bind_all_hosts(WormholeNetwork& net, std::int32_t num_hosts,
                           DeliverySink* sink) {
  for (topo::HostId h = 0; h < num_hosts; ++h) net.bind_sink(h, sink);
}

}  // namespace nimcast::net::test_support
