#include "analysis/latency_model.hpp"

#include <gtest/gtest.h>

#include "core/kbinomial.hpp"
#include "mcast/step_model.hpp"

namespace nimcast::analysis {
namespace {

const netif::SystemParams kParams;  // paper defaults
const sim::Time kStep = sim::Time::us(5.5);

TEST(LatencyModel, SmartFormulaSection25) {
  // Single packet over a binomial tree to 3 destinations (Fig. 4b):
  // t_s + 2 * t_step + t_r.
  const LatencyModel model{kParams, kStep};
  EXPECT_EQ(model.smart_binomial(4, 1),
            kParams.t_s + kStep * 2 + kParams.t_r);
}

TEST(LatencyModel, PipelinedFormulaTheorem2) {
  const LatencyModel model{kParams, kStep};
  // Fig. 5(a): binomial, n=4, m=3 -> 6 steps.
  EXPECT_EQ(model.smart_binomial(4, 3),
            kParams.t_s + kStep * 6 + kParams.t_r);
  // Fig. 5(b): linear, n=4, m=3 -> 5 steps.
  EXPECT_EQ(model.smart_linear(4, 3),
            kParams.t_s + kStep * 5 + kParams.t_r);
}

TEST(LatencyModel, MatchesStepModelOnEveryKBinomialTree) {
  const LatencyModel model{kParams, kStep};
  for (std::int32_t n : {2, 4, 9, 16, 33, 64}) {
    for (std::int32_t m : {1, 2, 4, 8}) {
      const auto tree = core::make_binomial(n);
      const auto sched =
          mcast::step_schedule(tree, m, mcast::Discipline::kFpfs);
      EXPECT_EQ(model.smart_binomial(n, m),
                kParams.t_s + kStep * sched.total_steps + kParams.t_r)
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(LatencyModel, OptimalNeverWorseThanBinomialOrLinear) {
  const LatencyModel model{kParams, kStep};
  for (std::int32_t n = 2; n <= 64; ++n) {
    for (std::int32_t m : {1, 2, 4, 8, 16, 32}) {
      const auto opt = model.smart_optimal(n, m);
      EXPECT_LE(opt, model.smart_binomial(n, m)) << "n=" << n << " m=" << m;
      EXPECT_LE(opt, model.smart_linear(n, m)) << "n=" << n << " m=" << m;
    }
  }
}

TEST(LatencyModel, ConventionalPaysPerLevelSoftwareCost) {
  const LatencyModel model{kParams, kStep};
  // Fig. 4(a) vs 4(b): for n=4 (2 levels), conventional pays (t_s + t_r)
  // twice over; smart pays it once.
  const auto conv = model.conventional_binomial(4, 1);
  const auto smart = model.smart_binomial(4, 1);
  EXPECT_EQ(conv, (kParams.t_s + kStep + kParams.t_r) * 2);
  EXPECT_GT(conv, smart);
}

TEST(LatencyModel, ConventionalGapGrowsWithSetSize) {
  const LatencyModel model{kParams, kStep};
  sim::Time prev_gap = sim::Time::zero();
  for (std::int32_t n : {4, 8, 16, 32, 64}) {
    const auto gap =
        model.conventional_binomial(n, 1) - model.smart_binomial(n, 1);
    EXPECT_GT(gap, prev_gap);
    prev_gap = gap;
  }
}

TEST(LatencyModel, FromNetworkComposesTStep) {
  const net::NetworkConfig netcfg;  // t_hop 0.1us, 64B @ 160B/us
  const auto model = LatencyModel::from_network(kParams, netcfg, 2);
  // t_snd + (2+2)*0.1 + 0.4 + t_rcv = 3.0 + 0.8 + 2.0
  EXPECT_EQ(model.t_step(), sim::Time::us(5.8));
}

TEST(LatencyModel, DegenerateSingleNode) {
  const LatencyModel model{kParams, kStep};
  EXPECT_EQ(model.smart_optimal(1, 4), kParams.t_s + kParams.t_r);
}

TEST(LatencyModel, RejectsBadArguments) {
  const LatencyModel model{kParams, kStep};
  EXPECT_THROW((void)model.smart(1, 1, 0), std::invalid_argument);
  EXPECT_THROW((void)model.smart_binomial(0, 1), std::invalid_argument);
  EXPECT_THROW((void)model.conventional_binomial(4, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::analysis
