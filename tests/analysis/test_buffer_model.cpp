#include "analysis/buffer_model.hpp"

#include <gtest/gtest.h>

namespace nimcast::analysis {
namespace {

const sim::Time kTnd = sim::Time::us(3.0);

TEST(BufferModel, FpfsHoldingIsChildrenTimesTnd) {
  EXPECT_EQ(fpfs_holding_time(1, kTnd), kTnd);
  EXPECT_EQ(fpfs_holding_time(4, kTnd), kTnd * 4);
}

TEST(BufferModel, FcfsHoldingFormula) {
  // T_f = ((c-1)m + 1) t_nd.
  EXPECT_EQ(fcfs_holding_time(3, 4, kTnd), kTnd * 9);
  EXPECT_EQ(fcfs_holding_time(2, 10, kTnd), kTnd * 11);
}

TEST(BufferModel, EqualityOnlyAtSinglePacketOrSingleChild) {
  EXPECT_EQ(fcfs_holding_time(5, 1, kTnd), fpfs_holding_time(5, kTnd));
  EXPECT_EQ(fcfs_holding_time(1, 7, kTnd), fpfs_holding_time(1, kTnd));
}

TEST(BufferModel, FcfsAlwaysAtLeastFpfs) {
  // The paper's Section 3.3.2 conclusion, swept broadly.
  for (std::int32_t c = 1; c <= 8; ++c) {
    for (std::int32_t m = 1; m <= 64; ++m) {
      EXPECT_GE(fcfs_holding_time(c, m, kTnd), fpfs_holding_time(c, kTnd))
          << "c=" << c << " m=" << m;
    }
  }
}

TEST(BufferModel, FcfsGapGrowsLinearlyInPackets) {
  const auto gap = [&](std::int32_t m) {
    return fcfs_holding_time(3, m, kTnd) - fpfs_holding_time(3, kTnd);
  };
  EXPECT_EQ(gap(2) - gap(1), kTnd * 2);  // slope (c-1) t_nd
  EXPECT_EQ(gap(9) - gap(8), kTnd * 2);
}

TEST(BufferModel, IntegralsScaleWithMessageLength) {
  EXPECT_DOUBLE_EQ(fpfs_buffer_integral_us(4, 8, kTnd), 8 * 4 * 3.0);
  EXPECT_DOUBLE_EQ(fcfs_buffer_integral_us(4, 8, kTnd), 8 * 25 * 3.0);
}

TEST(BufferModel, RejectsBadArguments) {
  EXPECT_THROW((void)fcfs_holding_time(0, 1, kTnd), std::invalid_argument);
  EXPECT_THROW((void)fcfs_holding_time(1, 0, kTnd), std::invalid_argument);
  EXPECT_THROW((void)fpfs_holding_time(0, kTnd), std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::analysis
