// End-to-end fault tolerance: multicasts over a fabric with scheduled
// link/switch failures must degrade gracefully — a queryable partial
// outcome, never an exception; every destination the surviving fabric
// can still reach must deliver (via retransmission and tree repair); and
// everything stays a pure function of seeds.

#include <gtest/gtest.h>

#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "mcast/multicast_engine.hpp"
#include "network/fault_plan.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"

namespace nimcast {
namespace {

struct Rig {
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  core::Chain cco;

  explicit Rig(std::uint64_t seed = 3)
      : topology{[&] {
          sim::Rng rng{seed};
          return topo::make_irregular(topo::IrregularConfig{}, rng);
        }()},
        router{topology.switches()},
        routes{topology, router},
        cco{core::cco_ordering(topology, router)} {}

  /// Optimal k-binomial tree over the first n hosts of the
  /// contention-free ordering.
  [[nodiscard]] core::HostTree tree(std::int32_t n, std::int32_t m) const {
    const core::Chain members{cco.begin(), cco.begin() + n};
    return core::HostTree::bind(
        core::make_kbinomial(n, core::optimal_k(n, m).k), members);
  }
};

mcast::MulticastEngine::Config reliable_config(net::FaultPlan faults) {
  mcast::MulticastEngine::Config cfg;
  cfg.style = mcast::NiStyle::kReliableFpfs;
  cfg.network.faults = std::move(faults);
  return cfg;
}

TEST(FaultTolerance, SingleLinkFailureNeverThrowsAndReachableDeliver) {
  const Rig rig;
  const auto tree = rig.tree(16, 4);
  const auto num_links = rig.topology.switches().num_edges();
  ASSERT_GE(num_links, 3);
  // Sweep the failing link and the failure instant across the operation
  // lifetime (early, mid-flight, after likely completion).
  for (const topo::LinkId link : {0, num_links / 2, num_links - 1}) {
    for (const double at_us : {1.0, 40.0, 500.0}) {
      net::FaultPlan plan;
      plan.link_down(sim::Time::us(at_us), link);
      const mcast::MulticastEngine engine{rig.topology, rig.routes,
                                          reliable_config(plan)};
      mcast::MulticastResult r;
      ASSERT_NO_THROW(r = engine.run(tree, 4))
          << "link " << link << " at " << at_us << "us";
      EXPECT_NE(r.outcome, mcast::Outcome::kFailed);
      ASSERT_EQ(r.destinations.size(), 15u);
      for (const auto& st : r.destinations) {
        if (st.reachable) {
          EXPECT_TRUE(st.delivered)
              << "host " << st.host << " reachable but undelivered (link "
              << link << " down at " << at_us << "us)";
        }
      }
    }
  }
}

TEST(FaultTolerance, DestinationSwitchDeathYieldsPartialOutcome) {
  const Rig rig;
  const auto tree = rig.tree(16, 4);
  // Kill the switch of the last destination in the chain, early enough
  // that nothing has been delivered there yet.
  const topo::HostId victim = tree.nodes.back();
  const topo::SwitchId dead = rig.topology.switch_of(victim);
  ASSERT_NE(dead, rig.topology.switch_of(tree.root));
  net::FaultPlan plan;
  plan.switch_down(sim::Time::us(1.0), dead);
  const mcast::MulticastEngine engine{rig.topology, rig.routes,
                                      reliable_config(plan)};
  mcast::MulticastResult r;
  ASSERT_NO_THROW(r = engine.run(tree, 4));
  EXPECT_EQ(r.outcome, mcast::Outcome::kPartial);
  EXPECT_LT(r.delivery_ratio(), 1.0);
  EXPECT_GT(r.delivered_count(), 0);
  bool victim_seen = false;
  for (const auto& st : r.destinations) {
    if (rig.topology.switch_of(st.host) == dead) {
      EXPECT_FALSE(st.reachable);
      EXPECT_FALSE(st.delivered);
      if (st.host == victim) victim_seen = true;
    } else if (st.reachable) {
      EXPECT_TRUE(st.delivered);
    }
  }
  EXPECT_TRUE(victim_seen);
}

TEST(FaultTolerance, RootSwitchDeathFailsWithoutThrowing) {
  const Rig rig;
  const auto tree = rig.tree(8, 2);
  net::FaultPlan plan;
  plan.switch_down(sim::Time::us(1.0), rig.topology.switch_of(tree.root));
  const mcast::MulticastEngine engine{rig.topology, rig.routes,
                                      reliable_config(plan)};
  mcast::MulticastResult r;
  ASSERT_NO_THROW(r = engine.run(tree, 2));
  // t_snd = 3us: the root dies before its first packet reaches the wire.
  EXPECT_EQ(r.outcome, mcast::Outcome::kFailed);
  EXPECT_EQ(r.delivered_count(), 0);
  EXPECT_EQ(r.repairs, 0);  // a dead root cannot re-initiate
}

TEST(FaultTolerance, RepairNeverDeliversLessThanNoRepair) {
  // Dense random plans orphan whole subtrees; tree repair re-parents
  // them, so with repair enabled delivery can only improve.
  const Rig rig;
  const auto tree = rig.tree(32, 4);
  net::FaultPlan::RandomConfig fcfg;
  fcfg.link_fail_prob = 0.2;
  fcfg.switch_fail_prob = 0.05;
  fcfg.window_end = sim::Time::us(120.0);
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    sim::Rng rng{seed};
    const auto plan =
        net::FaultPlan::random(rig.topology.switches(), fcfg, rng);
    auto with = reliable_config(plan);
    auto without = reliable_config(plan);
    without.repair.max_attempts = 0;
    without.repair.reroute = false;
    mcast::MulticastResult r_with, r_without;
    const mcast::MulticastEngine e1{rig.topology, rig.routes, with};
    const mcast::MulticastEngine e2{rig.topology, rig.routes, without};
    ASSERT_NO_THROW(r_with = e1.run(tree, 4));
    ASSERT_NO_THROW(r_without = e2.run(tree, 4));
    EXPECT_GE(r_with.delivered_count(), r_without.delivered_count());
  }
}

TEST(FaultTolerance, FaultyRunsAreDeterministicGivenSeeds) {
  const Rig rig;
  const auto tree = rig.tree(16, 4);
  net::FaultPlan::RandomConfig fcfg;
  fcfg.link_fail_prob = 0.15;
  fcfg.switch_fail_prob = 0.05;
  auto run_once = [&] {
    sim::Rng rng{99};
    const auto plan =
        net::FaultPlan::random(rig.topology.switches(), fcfg, rng);
    const mcast::MulticastEngine engine{rig.topology, rig.routes,
                                        reliable_config(plan)};
    return engine.run(tree, 4);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  ASSERT_EQ(a.completions.size(), b.completions.size());
  for (std::size_t i = 0; i < a.completions.size(); ++i) {
    EXPECT_EQ(a.completions[i], b.completions[i]);
  }
}

TEST(FaultTolerance, RecoveredLinkIsReusedAfterLinkUp) {
  // Two switches joined by exactly one bridge link; hosts 0,1 on switch
  // 0, hosts 2,3 on switch 1. The bridge dies at 1us and recovers at
  // 2000us. With tree repair disabled, an operation issued mid-outage
  // can only reach its own side of the cut (kPartial); an operation
  // issued after recovery must complete — possible only if the kLinkUp
  // fault hook rebuilt routes over the recovered bridge, since the
  // outage-epoch table has the cross-bridge pairs excised.
  const topo::Topology topology{topo::Graph{2, {{0, 1}}}, {0, 0, 1, 1},
                                "bridge"};
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};

  net::FaultPlan plan;
  plan.link_down(sim::Time::us(1.0), 0).link_up(sim::Time::us(2000.0), 0);
  mcast::MulticastEngine::Config cfg;
  cfg.network.faults = std::move(plan);
  cfg.repair.max_attempts = 0;  // isolate the route-rebuild path
  const mcast::MulticastEngine engine{topology, routes, cfg};

  const core::Chain members{0, 1, 2};
  const auto tree =
      core::HostTree::bind(core::make_kbinomial(3, 1), members);
  std::vector<mcast::MulticastSpec> specs;
  specs.push_back({tree, 2, sim::Time::us(5.0)});
  specs.push_back({tree, 2, sim::Time::us(2500.0)});
  const auto batch = engine.run_many(specs);

  ASSERT_EQ(batch.operations.size(), 2u);
  EXPECT_EQ(batch.operations[0].outcome, mcast::Outcome::kPartial);
  // Host 1 shares the root's switch, so it delivered during the outage;
  // host 2 sits across the dead bridge.
  for (const auto& st : batch.operations[0].destinations) {
    EXPECT_EQ(st.delivered, st.host == 1) << "host " << st.host;
  }
  EXPECT_EQ(batch.operations[1].outcome, mcast::Outcome::kComplete);
  EXPECT_EQ(batch.faults_applied, 2);
}

TEST(FaultTolerance, EmptyFaultPlanIsBitIdenticalToNoFaultLayer) {
  const Rig rig;
  const auto tree = rig.tree(16, 4);
  for (const auto style :
       {mcast::NiStyle::kSmartFpfs, mcast::NiStyle::kReliableFpfs}) {
    mcast::MulticastEngine::Config plain_cfg;
    plain_cfg.style = style;
    mcast::MulticastEngine::Config empty_cfg = plain_cfg;
    empty_cfg.network.faults = net::FaultPlan{};  // explicitly empty
    const mcast::MulticastEngine plain{rig.topology, rig.routes, plain_cfg};
    const mcast::MulticastEngine empty{rig.topology, rig.routes, empty_cfg};
    const auto a = plain.run(tree, 4);
    const auto b = empty.run(tree, 4);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.ni_latency, b.ni_latency);
    EXPECT_EQ(a.packets_delivered, b.packets_delivered);
    EXPECT_EQ(a.outcome, mcast::Outcome::kComplete);
    EXPECT_EQ(b.outcome, mcast::Outcome::kComplete);
    ASSERT_EQ(a.completions.size(), b.completions.size());
    for (std::size_t i = 0; i < a.completions.size(); ++i) {
      EXPECT_EQ(a.completions[i], b.completions[i]);
    }
  }
}

}  // namespace
}  // namespace nimcast
