// Cross-feature integration: combinations of the newer substrates
// (reliability, multipath, virtual channels, fat-trees, multi-engine
// NIs) running through the standard engines together.

#include <gtest/gtest.h>

#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/ordering.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/dimension_ordered.hpp"
#include "routing/multipath_up_down.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/fat_tree.hpp"
#include "topology/irregular.hpp"

namespace nimcast {
namespace {

core::HostTree tree_on(const core::Chain& chain, std::int32_t n,
                       std::int32_t k) {
  std::vector<topo::HostId> dests{chain.begin() + 1, chain.begin() + n};
  const auto members = core::arrange_participants(chain, chain[0], dests);
  return core::HostTree::bind(core::make_kbinomial(n, k), members);
}

TEST(FeatureCombos, ReliableMulticastOnIrregularNetworkUnderLoss) {
  sim::Rng rng{5};
  const auto topology = topo::make_irregular(topo::IrregularConfig{}, rng);
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  const auto chain = core::cco_ordering(topology, router);
  net::NetworkConfig lossy;
  lossy.loss_rate = 0.15;
  const mcast::MulticastEngine engine{
      topology, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{}, lossy,
                                     mcast::NiStyle::kReliableFpfs}};
  const auto result = engine.run(tree_on(chain, 20, 2), 6);
  EXPECT_EQ(result.completions.size(), 19u);
}

TEST(FeatureCombos, ConcurrentReliableMulticasts) {
  sim::Rng rng{6};
  const auto topology = topo::make_irregular(topo::IrregularConfig{}, rng);
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  const auto chain = core::cco_ordering(topology, router);
  net::NetworkConfig lossy;
  lossy.loss_rate = 0.1;
  const mcast::MulticastEngine engine{
      topology, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{}, lossy,
                                     mcast::NiStyle::kReliableFpfs}};
  // Two overlapping operations over distinct participant sets.
  core::Chain rev{chain.rbegin(), chain.rend()};
  const auto batch = engine.run_many(
      {mcast::MulticastSpec{tree_on(chain, 10, 2), 4},
       mcast::MulticastSpec{tree_on(rev, 10, 2), 4}});
  EXPECT_EQ(batch.operations[0].completions.size(), 9u);
  EXPECT_EQ(batch.operations[1].completions.size(), 9u);
}

TEST(FeatureCombos, MultipathRoutesDriveTheEngine) {
  const topo::FatTreeConfig cfg;
  const auto topology = topo::make_fat_tree(cfg);
  const routing::MultipathUpDownRouter router{topology.switches(),
                                              topo::fat_tree_levels(cfg)};
  const routing::RouteTable routes{topology, router};
  const routing::UpDownRouter plain{topology.switches(),
                                    topo::fat_tree_levels(cfg)};
  const auto chain = core::cco_ordering(topology, plain);
  const mcast::MulticastEngine engine{
      topology, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{},
                                     net::NetworkConfig{},
                                     mcast::NiStyle::kSmartFpfs}};
  const auto result = engine.run(tree_on(chain, 32, 3), 8);
  EXPECT_EQ(result.completions.size(), 31u);
}

TEST(FeatureCombos, MultiEngineNiSpeedsUpMulticast) {
  sim::Rng rng{7};
  const auto topology = topo::make_irregular(topo::IrregularConfig{}, rng);
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  const auto chain = core::cco_ordering(topology, router);
  const auto tree = tree_on(chain, 32, 3);

  netif::SystemParams single;
  netif::SystemParams quad;
  quad.ni_engines = 4;
  const mcast::MulticastEngine e1{
      topology, routes,
      mcast::MulticastEngine::Config{single, net::NetworkConfig{},
                                     mcast::NiStyle::kSmartFpfs}};
  const mcast::MulticastEngine e4{
      topology, routes,
      mcast::MulticastEngine::Config{quad, net::NetworkConfig{},
                                     mcast::NiStyle::kSmartFpfs}};
  const auto r1 = e1.run(tree, 16);
  const auto r4 = e4.run(tree, 16);
  EXPECT_LT(r4.latency, r1.latency);
  EXPECT_EQ(r4.completions.size(), 31u);
}

TEST(FeatureCombos, PipelinedReleaseWithVirtualChannelsOnTorus) {
  const topo::KAryNCubeConfig cfg{4, 2, true};
  const auto torus = topo::make_kary_ncube(cfg);
  const routing::DimensionOrderedRouter router{torus.switches(), cfg};
  const routing::RouteTable routes{torus, router};
  net::NetworkConfig netcfg;
  netcfg.release_model = net::ReleaseModel::kPipelined;
  const mcast::MulticastEngine engine{
      torus, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{}, netcfg,
                                     mcast::NiStyle::kSmartFpfs}};
  const auto chain = core::dimension_chain(torus);
  const auto result = engine.run(tree_on(chain, 16, 2), 8);
  EXPECT_EQ(result.completions.size(), 15u);
}

TEST(FeatureCombos, ReliableOverLossyTorusWithVcs) {
  const topo::KAryNCubeConfig cfg{4, 2, true};
  const auto torus = topo::make_kary_ncube(cfg);
  const routing::DimensionOrderedRouter router{torus.switches(), cfg};
  const routing::RouteTable routes{torus, router};
  net::NetworkConfig lossy;
  lossy.loss_rate = 0.2;
  const mcast::MulticastEngine engine{
      torus, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{}, lossy,
                                     mcast::NiStyle::kReliableFpfs}};
  const auto chain = core::dimension_chain(torus);
  const auto result = engine.run(tree_on(chain, 12, 2), 4);
  EXPECT_EQ(result.completions.size(), 11u);
}

}  // namespace
}  // namespace nimcast
