// Failure-injection tests: drive the system into states that must be
// *detected*, not silently mis-simulated — routing deadlock, missing
// forwarding state, malformed trees.

#include <gtest/gtest.h>

#include "core/host_tree.hpp"
#include "mcast/multicast_engine.hpp"
#include "netif/smart_ni.hpp"
#include "network/wormhole_network.hpp"
#include "routing/up_down.hpp"
#include "support/callback_sink.hpp"

namespace nimcast {
namespace {

/// Cyclic router on a triangle: every message takes the long way round
/// clockwise, building the classic circular channel dependency.
class ClockwiseRouter final : public routing::Router {
 public:
  explicit ClockwiseRouter(const topo::Graph& g) : g_{g} {}
  [[nodiscard]] routing::SwitchRoute route(
      topo::SwitchId src, topo::SwitchId dst) const override {
    routing::SwitchRoute r;
    r.switches.push_back(src);
    topo::SwitchId cur = src;
    while (cur != dst) {
      const topo::SwitchId next = (cur + 1) % 3;
      for (topo::LinkId e = 0; e < g_.num_edges(); ++e) {
        if ((g_.edge(e).a == cur && g_.edge(e).b == next) ||
            (g_.edge(e).b == cur && g_.edge(e).a == next)) {
          r.links.push_back(e);
          break;
        }
      }
      r.switches.push_back(next);
      cur = next;
    }
    return r;
  }
  [[nodiscard]] const char* name() const override { return "clockwise"; }

 private:
  const topo::Graph& g_;
};

TEST(FailureInjection, CircularWaitDeadlocksAndIsObservable) {
  // Three simultaneous two-hop worms chasing each other around a
  // triangle: each holds its first channel and waits forever for the
  // next. The simulator drains; the network reports worms in flight.
  topo::Topology topology{topo::Graph{3, {{0, 1}, {1, 2}, {2, 0}}},
                          {0, 1, 2},
                          "triangle"};
  const ClockwiseRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  // Sanity: the checker already predicts this.
  EXPECT_FALSE(routing::deadlock_free(topology.switches(), router));

  sim::Simulator simctx;
  net::WormholeNetwork network{simctx, topology, routes,
                               net::NetworkConfig{}};
  int delivered = 0;
  net::test_support::CallbackSink sink{
      [&](const net::Packet&) { ++delivered; }};
  net::test_support::bind_all_hosts(network, 3, &sink);
  for (topo::HostId h = 0; h < 3; ++h) {
    net::Packet p;
    p.message = 1;
    p.sender = h;
    p.dest = (h + 2) % 3;  // two clockwise hops away
    network.send(p);
  }
  simctx.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(network.in_flight(), 3);
}

TEST(FailureInjection, UpDownNeverDeadlocksOnTheSameWorkload) {
  topo::Topology topology{topo::Graph{3, {{0, 1}, {1, 2}, {2, 0}}},
                          {0, 1, 2},
                          "triangle"};
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  sim::Simulator simctx;
  net::WormholeNetwork network{simctx, topology, routes,
                               net::NetworkConfig{}};
  int delivered = 0;
  net::test_support::CallbackSink sink{
      [&](const net::Packet&) { ++delivered; }};
  net::test_support::bind_all_hosts(network, 3, &sink);
  for (topo::HostId h = 0; h < 3; ++h) {
    net::Packet p;
    p.message = 1;
    p.sender = h;
    p.dest = (h + 2) % 3;
    network.send(p);
  }
  simctx.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(network.in_flight(), 0);
}

struct EngineRig {
  topo::Topology topology{topo::Graph{1, {}}, {0, 0, 0, 0}, "star"};
  routing::UpDownRouter router{topology.switches()};
  routing::RouteTable routes{topology, router};
  mcast::MulticastEngine engine{
      topology, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{},
                                     net::NetworkConfig{},
                                     mcast::NiStyle::kSmartFpfs}};
};

TEST(FailureInjection, EngineRejectsForeignHosts) {
  EngineRig rig;
  core::HostTree t;
  t.root = 0;
  t.nodes = {0, 99};
  t.children[0] = {99};
  t.children[99] = {};
  EXPECT_THROW((void)rig.engine.run(t, 1), std::invalid_argument);
}

TEST(FailureInjection, EngineRejectsZeroPackets) {
  EngineRig rig;
  core::HostTree t;
  t.root = 0;
  t.nodes = {0, 1};
  t.children[0] = {1};
  t.children[1] = {};
  EXPECT_THROW((void)rig.engine.run(t, 0), std::invalid_argument);
}

TEST(FailureInjection, NiRejectsSelfChildAndBadEntries) {
  sim::Simulator simctx;
  topo::Topology topology{topo::Graph{1, {}}, {0, 0}, "pair"};
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  net::WormholeNetwork network{simctx, topology, routes,
                               net::NetworkConfig{}};
  netif::FpfsNi ni{simctx, network, netif::SystemParams{}, 0};
  netif::ForwardingEntry self_child;
  self_child.children = {0};
  EXPECT_THROW(ni.install(1, self_child), std::invalid_argument);
  netif::ForwardingEntry zero_packets;
  zero_packets.packet_count = 0;
  EXPECT_THROW(ni.install(1, zero_packets), std::invalid_argument);
}

TEST(FailureInjection, PacketForUnknownMessageThrowsAtReceiveTime) {
  sim::Simulator simctx;
  topo::Topology topology{topo::Graph{1, {}}, {0, 0}, "pair"};
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  net::WormholeNetwork network{simctx, topology, routes,
                               net::NetworkConfig{}};
  netif::FpfsNi ni{simctx, network, netif::SystemParams{}, 1};
  net::Packet stray;
  stray.message = 77;
  stray.sender = 0;
  stray.dest = 1;
  ni.deliver(stray);
  EXPECT_THROW(simctx.run(), std::logic_error);
}

}  // namespace
}  // namespace nimcast
