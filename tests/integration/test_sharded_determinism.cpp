// The sharded engine's contract: running a multicast batch on N shards
// with any thread count produces *bit-identical* results to the serial
// engine — completions, latencies, contention, event counts, fault
// outcomes, everything. These tests stress that equality across
// topologies (irregular, fat-tree), NI styles, fault plans (none,
// scripted, randomized) and shard counts (1, 2, 4, 8).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "mcast/multicast_engine.hpp"
#include "network/fault_plan.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/fat_tree.hpp"
#include "topology/irregular.hpp"

namespace nimcast {
namespace {

struct Rig {
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  core::Chain cco;

  explicit Rig(topo::Topology t)
      : topology{std::move(t)},
        router{topology.switches()},
        routes{topology, router},
        cco{core::cco_ordering(topology, router)} {}

  [[nodiscard]] core::HostTree tree(std::int32_t n, std::int32_t m,
                                    std::int32_t offset = 0) const {
    const core::Chain members{cco.begin() + offset,
                              cco.begin() + offset + n};
    return core::HostTree::bind(
        core::make_kbinomial(n, core::optimal_k(n, m).k), members);
  }
};

Rig irregular_rig(std::uint64_t seed = 3) {
  sim::Rng rng{seed};
  return Rig{topo::make_irregular(topo::IrregularConfig{}, rng)};
}

Rig fat_tree_rig() { return Rig{topo::make_fat_tree(topo::FatTreeConfig{})}; }

/// Three overlapping staggered operations — shared NIs demultiplex, the
/// wires contend.
std::vector<mcast::MulticastSpec> batch(const Rig& rig) {
  return {
      mcast::MulticastSpec{rig.tree(16, 4), 4, sim::Time::zero()},
      mcast::MulticastSpec{rig.tree(12, 4, 2), 4, sim::Time::us(2.0)},
      mcast::MulticastSpec{rig.tree(8, 4, 8), 4, sim::Time::us(5.0)},
  };
}

void expect_identical(const mcast::MultiMulticastResult& serial,
                      const mcast::MultiMulticastResult& sharded,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(serial.makespan, sharded.makespan);
  EXPECT_EQ(serial.total_channel_block_time,
            sharded.total_channel_block_time);
  EXPECT_EQ(serial.retransmissions, sharded.retransmissions);
  EXPECT_EQ(serial.deliveries_failed, sharded.deliveries_failed);
  EXPECT_EQ(serial.packets_killed, sharded.packets_killed);
  EXPECT_EQ(serial.faults_applied, sharded.faults_applied);
  EXPECT_EQ(serial.events_dispatched, sharded.events_dispatched);
  auto buffers = [](const mcast::MultiMulticastResult& r) {
    auto b = r.buffers;
    std::sort(b.begin(), b.end(),
              [](const auto& x, const auto& y) { return x.host < y.host; });
    return b;
  };
  const auto sb = buffers(serial);
  const auto hb = buffers(sharded);
  ASSERT_EQ(sb.size(), hb.size());
  for (std::size_t i = 0; i < sb.size(); ++i) {
    EXPECT_EQ(sb[i].host, hb[i].host);
    EXPECT_EQ(sb[i].peak_packets, hb[i].peak_packets);
    EXPECT_EQ(sb[i].packet_us_integral, hb[i].packet_us_integral);
  }
  ASSERT_EQ(serial.operations.size(), sharded.operations.size());
  for (std::size_t op = 0; op < serial.operations.size(); ++op) {
    SCOPED_TRACE("op " + std::to_string(op));
    const auto& a = serial.operations[op];
    const auto& b = sharded.operations[op];
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.ni_latency, b.ni_latency);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.repairs, b.repairs);
    EXPECT_EQ(a.packets_delivered, b.packets_delivered);
    EXPECT_EQ(a.completions, b.completions);
    ASSERT_EQ(a.destinations.size(), b.destinations.size());
    for (std::size_t d = 0; d < a.destinations.size(); ++d) {
      EXPECT_EQ(a.destinations[d].host, b.destinations[d].host);
      EXPECT_EQ(a.destinations[d].delivered, b.destinations[d].delivered);
      EXPECT_EQ(a.destinations[d].reachable, b.destinations[d].reachable);
      if (a.destinations[d].delivered) {
        EXPECT_EQ(a.destinations[d].completed_at,
                  b.destinations[d].completed_at);
      }
    }
  }
}

void expect_shard_counts_match_serial(const Rig& rig,
                                      mcast::MulticastEngine::Config cfg,
                                      const std::string& label) {
  const auto specs = batch(rig);
  cfg.shards = 1;
  const mcast::MulticastEngine serial{rig.topology, rig.routes, cfg};
  const auto baseline = serial.run_many(specs);
  for (std::int32_t shards : {2, 4, 8}) {
    cfg.shards = shards;
    const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
    expect_identical(baseline, engine.run_many(specs),
                     label + ", shards=" + std::to_string(shards));
  }
}

TEST(ShardedDeterminism, FaultFreeIrregularMatchesSerial) {
  const Rig rig = irregular_rig();
  mcast::MulticastEngine::Config cfg;
  cfg.style = mcast::NiStyle::kSmartFpfs;
  expect_shard_counts_match_serial(rig, cfg, "irregular fpfs");
}

TEST(ShardedDeterminism, FaultFreeFatTreeMatchesSerial) {
  const Rig rig = fat_tree_rig();
  mcast::MulticastEngine::Config cfg;
  cfg.style = mcast::NiStyle::kSmartFcfs;
  expect_shard_counts_match_serial(rig, cfg, "fat-tree fcfs");
}

TEST(ShardedDeterminism, ScriptedFaultsWithRepairMatchSerial) {
  const Rig rig = irregular_rig(7);
  const auto num_links = rig.topology.switches().num_edges();
  net::FaultPlan plan;
  plan.link_down(sim::Time::us(1.5), num_links / 3)
      .switch_down(sim::Time::us(3.0),
                   rig.topology.switch_of(rig.cco[5]))
      .link_up(sim::Time::us(40.0), num_links / 3);
  mcast::MulticastEngine::Config cfg;
  cfg.style = mcast::NiStyle::kReliableFpfs;
  cfg.network.faults = std::move(plan);
  expect_shard_counts_match_serial(rig, cfg, "irregular reliable+faults");
}

TEST(ShardedDeterminism, RandomFaultPlansMatchSerialAcrossSeeds) {
  const Rig rig = irregular_rig();
  for (const std::uint64_t seed : {11u, 12u}) {
    net::FaultPlan::RandomConfig fcfg;
    fcfg.link_fail_prob = 0.08;
    fcfg.switch_fail_prob = 0.03;
    fcfg.link_recover_after = sim::Time::us(60.0);
    sim::Rng rng{seed};
    mcast::MulticastEngine::Config cfg;
    cfg.style = mcast::NiStyle::kSmartFpfs;
    cfg.network.faults =
        net::FaultPlan::random(rig.topology.switches(), fcfg, rng);
    expect_shard_counts_match_serial(
        rig, cfg, "random faults seed=" + std::to_string(seed));
  }
}

TEST(ShardedDeterminism, ThreadCountNeverChangesResults) {
  const Rig rig = irregular_rig();
  const auto specs = batch(rig);
  mcast::MulticastEngine::Config cfg;
  cfg.shards = 4;
  cfg.shard_threads = 1;
  const mcast::MulticastEngine one{rig.topology, rig.routes, cfg};
  const auto baseline = one.run_many(specs);
  for (std::int32_t threads : {2, 4}) {
    cfg.shard_threads = threads;
    const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
    expect_identical(baseline, engine.run_many(specs),
                     "threads=" + std::to_string(threads));
  }
}

TEST(ShardedDeterminism, LossyPipelinedMatrixMatchesSerial) {
  // The v2 engine shards lossy (pure-hash draws keyed by packet
  // identity) and pipelined-release (window-safe remote releases)
  // configs that previously forced the serial fallback. Exercise the
  // full matrix: three loss seeds x two thread counts, all against the
  // serial baseline, and prove the sharded path actually engaged.
  const Rig rig = irregular_rig();
  const auto specs = batch(rig);
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    mcast::MulticastEngine::Config cfg;
    cfg.style = mcast::NiStyle::kReliableFpfs;
    cfg.network.loss_rate = 0.15;
    cfg.network.loss_seed = seed;
    cfg.network.release_model = net::ReleaseModel::kPipelined;
    cfg.network.packet_bytes = 1024;  // widen the pipelined window bound
    const mcast::MulticastEngine serial{rig.topology, rig.routes, cfg};
    const auto baseline = serial.run_many(specs);
    EXPECT_GT(baseline.retransmissions, 0) << "seed " << seed;
    cfg.shards = 4;
    for (std::int32_t threads : {2, 4}) {
      cfg.shard_threads = threads;
      const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
      const auto sharded = engine.run_many(specs);
      EXPECT_GT(sharded.window_ns, 0) << "fell back to serial";
      expect_identical(baseline, sharded,
                       "lossy+pipelined seed=" + std::to_string(seed) +
                           " threads=" + std::to_string(threads));
    }
  }
}

TEST(ShardedDeterminism, HashLossRetransmissionCountsMatchSerial) {
  // Loss draws are keyed by packet identity (message, packet index,
  // attempt, edge), not by global draw order, so every shard sees
  // exactly the losses the serial engine sees: retransmission counts
  // must be equal, not merely plausible.
  const Rig rig = fat_tree_rig();
  const auto specs = batch(rig);
  for (const std::uint64_t seed : {31u, 32u, 33u}) {
    mcast::MulticastEngine::Config cfg;
    cfg.style = mcast::NiStyle::kReliableFpfs;
    cfg.network.loss_rate = 0.2;
    cfg.network.loss_seed = seed;
    const mcast::MulticastEngine serial{rig.topology, rig.routes, cfg};
    const auto baseline = serial.run_many(specs);
    ASSERT_GT(baseline.retransmissions, 0) << "seed " << seed;
    cfg.shards = 4;
    for (std::int32_t threads : {1, 4}) {
      cfg.shard_threads = threads;
      const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
      const auto sharded = engine.run_many(specs);
      EXPECT_GT(sharded.window_ns, 0) << "fell back to serial";
      EXPECT_EQ(baseline.retransmissions, sharded.retransmissions)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(ShardedDeterminism, AttachedTraceFallsBackToSerial) {
  // A trace wants one globally ordered record stream, which shards
  // cannot produce; asking for shards with a trace attached must
  // silently run the serial engine and report window_ns == 0.
  const Rig rig = irregular_rig();
  const auto specs = batch(rig);
  mcast::MulticastEngine::Config cfg;
  cfg.style = mcast::NiStyle::kSmartFpfs;
  const mcast::MulticastEngine serial{rig.topology, rig.routes, cfg};
  const auto baseline = serial.run_many(specs);
  cfg.shards = 4;
  sim::Trace trace;
  const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg,
                                      &trace};
  const auto sharded = engine.run_many(specs);
  EXPECT_EQ(sharded.window_ns, 0) << "expected serial fallback";
  expect_identical(baseline, sharded, "trace fallback");
}

}  // namespace
}  // namespace nimcast
