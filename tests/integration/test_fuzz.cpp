// Randomized consistency fuzzing: hundreds of random configurations
// checked against invariants and against the analytic theory. All seeds
// are fixed, so failures reproduce deterministically.

#include <gtest/gtest.h>

#include "core/coverage.hpp"
#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "mcast/multicast_engine.hpp"
#include "mcast/step_model.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"

namespace nimcast {
namespace {

TEST(Fuzz, RandomKBinomialTreesHonorAllInvariants) {
  sim::Rng rng{20260706};
  core::CoverageTable cov;
  for (int trial = 0; trial < 500; ++trial) {
    const auto n = static_cast<std::int32_t>(rng.next_in(1, 400));
    const auto k = static_cast<std::int32_t>(rng.next_in(1, 9));
    const auto tree = core::make_kbinomial(n, k);
    ASSERT_NO_THROW(tree.validate()) << "n=" << n << " k=" << k;
    ASSERT_EQ(tree.size(), n);
    ASSERT_LE(tree.max_children(), k);
    ASSERT_LE(tree.max_children(), std::max(1, tree.root_children()))
        << "a descendant out-fans the root (breaks Theorem 1); n=" << n
        << " k=" << k;
    ASSERT_EQ(tree.steps_to_complete(),
              cov.min_steps(static_cast<std::uint64_t>(n), k));
  }
}

TEST(Fuzz, StepModelAlwaysMatchesTheorem2) {
  sim::Rng rng{424242};
  core::CoverageTable cov;
  for (int trial = 0; trial < 300; ++trial) {
    const auto n = static_cast<std::int32_t>(rng.next_in(2, 200));
    const auto k = static_cast<std::int32_t>(rng.next_in(1, 8));
    const auto m = static_cast<std::int32_t>(rng.next_in(1, 24));
    const auto tree = core::make_kbinomial(n, k);
    const auto sched =
        mcast::step_schedule(tree, m, mcast::Discipline::kFpfs);
    const auto t1 = cov.min_steps(static_cast<std::uint64_t>(n), k);
    ASSERT_EQ(sched.total_steps, t1 + (m - 1) * tree.root_children())
        << "n=" << n << " k=" << k << " m=" << m;
  }
}

TEST(Fuzz, OptimalKAlwaysWithinInterval) {
  sim::Rng rng{777};
  core::CoverageTable cov;
  for (int trial = 0; trial < 400; ++trial) {
    const auto n = static_cast<std::int32_t>(rng.next_in(2, 3000));
    const auto m = static_cast<std::int32_t>(rng.next_in(1, 200));
    const auto c = core::optimal_k(n, m, cov);
    ASSERT_GE(c.k, 1);
    ASSERT_LE(c.k, core::ceil_log2(static_cast<std::uint64_t>(n)));
    ASSERT_EQ(c.t1, cov.min_steps(static_cast<std::uint64_t>(n), c.k));
  }
}

TEST(Fuzz, ArrangeParticipantsAlwaysValid) {
  sim::Rng rng{31337};
  for (int trial = 0; trial < 200; ++trial) {
    const auto hosts = static_cast<std::int32_t>(rng.next_in(4, 128));
    core::Chain chain = core::random_ordering(hosts, rng);
    const auto n =
        static_cast<std::size_t>(rng.next_in(2, hosts));
    const auto draw = rng.sample_without_replacement(
        static_cast<std::size_t>(hosts), n);
    const auto source = static_cast<topo::HostId>(draw.front());
    std::vector<topo::HostId> dests;
    for (std::size_t i = 1; i < draw.size(); ++i) {
      dests.push_back(static_cast<topo::HostId>(draw[i]));
    }
    const auto members = core::arrange_participants(chain, source, dests);
    ASSERT_EQ(members.size(), n);
    ASSERT_EQ(members.front(), source);
    std::set<topo::HostId> uniq{members.begin(), members.end()};
    ASSERT_EQ(uniq.size(), n);
  }
}

TEST(Fuzz, RandomMulticastsOnRandomClustersAllComplete) {
  sim::Rng rng{55};
  for (int trial = 0; trial < 12; ++trial) {
    const auto topology =
        topo::make_irregular(topo::IrregularConfig{}, rng);
    const routing::UpDownRouter router{topology.switches()};
    const routing::RouteTable routes{topology, router};
    const auto chain = core::cco_ordering(topology, router);
    const auto n = static_cast<std::int32_t>(rng.next_in(2, 64));
    const auto m = static_cast<std::int32_t>(rng.next_in(1, 12));
    const auto spec_k = core::optimal_k(n, m).k;
    const auto draw = rng.sample_without_replacement(
        64, static_cast<std::size_t>(n));
    std::vector<topo::HostId> dests;
    for (std::size_t i = 1; i < draw.size(); ++i) {
      dests.push_back(static_cast<topo::HostId>(draw[i]));
    }
    const auto members = core::arrange_participants(
        chain, static_cast<topo::HostId>(draw.front()), dests);
    const auto tree =
        core::HostTree::bind(core::make_kbinomial(n, spec_k), members);

    for (const auto style :
         {mcast::NiStyle::kSmartFpfs, mcast::NiStyle::kSmartFcfs,
          mcast::NiStyle::kConventional, mcast::NiStyle::kReliableFpfs}) {
      const mcast::MulticastEngine engine{
          topology, routes,
          mcast::MulticastEngine::Config{netif::SystemParams{},
                                         net::NetworkConfig{}, style}};
      const auto result = engine.run(tree, m);
      ASSERT_EQ(result.completions.size(), static_cast<std::size_t>(n - 1))
          << "trial " << trial << " style " << mcast::to_string(style);
      ASSERT_GE(result.latency, result.ni_latency);
    }
  }
}

TEST(Fuzz, RandomConcurrentBatchesConserveCompletions) {
  sim::Rng rng{808};
  const auto topology = topo::make_irregular(topo::IrregularConfig{}, rng);
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  const auto chain = core::cco_ordering(topology, router);
  const mcast::MulticastEngine engine{
      topology, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{},
                                     net::NetworkConfig{},
                                     mcast::NiStyle::kSmartFpfs}};
  for (int trial = 0; trial < 10; ++trial) {
    const auto ops = static_cast<std::int32_t>(rng.next_in(1, 6));
    std::vector<mcast::MulticastSpec> specs;
    std::vector<std::int32_t> sizes;
    for (std::int32_t op = 0; op < ops; ++op) {
      const auto n = static_cast<std::int32_t>(rng.next_in(2, 20));
      const auto m = static_cast<std::int32_t>(rng.next_in(1, 6));
      const auto draw =
          rng.sample_without_replacement(64, static_cast<std::size_t>(n));
      std::vector<topo::HostId> dests;
      for (std::size_t i = 1; i < draw.size(); ++i) {
        dests.push_back(static_cast<topo::HostId>(draw[i]));
      }
      const auto members = core::arrange_participants(
          chain, static_cast<topo::HostId>(draw.front()), dests);
      specs.push_back(mcast::MulticastSpec{
          core::HostTree::bind(core::make_kbinomial(n, 2), members), m,
          sim::Time::us(static_cast<double>(rng.next_in(0, 100)))});
      sizes.push_back(n);
    }
    const auto batch = engine.run_many(specs);
    for (std::size_t op = 0; op < specs.size(); ++op) {
      ASSERT_EQ(batch.operations[op].completions.size(),
                static_cast<std::size_t>(sizes[op] - 1));
    }
  }
}

}  // namespace
}  // namespace nimcast
