// Parameterized property sweep of the full multicast engine on a
// single-switch (star) system, where contention is provably absent for
// tree traffic (each node has one parent, so no two worms ever share an
// injection or ejection channel at overlapping times given the NI's
// send serialization). Properties hold for every (n, m, k, style).

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/latency_model.hpp"
#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "mcast/multicast_engine.hpp"
#include "mcast/step_model.hpp"
#include "routing/up_down.hpp"

namespace nimcast {
namespace {

using Params = std::tuple<std::int32_t, std::int32_t, std::int32_t,
                          mcast::NiStyle>;  // n, m, k, style

class EngineSweep : public ::testing::TestWithParam<Params> {
 protected:
  static constexpr std::int32_t kHosts = 24;

  EngineSweep()
      : topology_{topo::Graph{1, {}},
                  std::vector<topo::SwitchId>(kHosts, 0), "star"},
        router_{topology_.switches()},
        routes_{topology_, router_} {}

  mcast::MulticastResult run(std::int32_t n, std::int32_t m, std::int32_t k,
                             mcast::NiStyle style,
                             bool reverse_hosts = false) const {
    core::Chain order;
    for (std::int32_t i = 0; i < n; ++i) {
      order.push_back(reverse_hosts ? kHosts - 1 - i : i);
    }
    const auto tree = core::HostTree::bind(core::make_kbinomial(n, k), order);
    const mcast::MulticastEngine engine{
        topology_, routes_,
        mcast::MulticastEngine::Config{netif::SystemParams{},
                                       net::NetworkConfig{}, style}};
    return engine.run(tree, m);
  }

  topo::Topology topology_;
  routing::UpDownRouter router_;
  routing::RouteTable routes_;
};

TEST_P(EngineSweep, CompletesEveryDestinationExactlyOnceWithoutContention) {
  const auto [n, m, k, style] = GetParam();
  const auto result = run(n, m, k, style);
  EXPECT_EQ(result.completions.size(), static_cast<std::size_t>(n - 1));
  std::set<topo::HostId> seen;
  for (const auto& [h, t] : result.completions) {
    EXPECT_TRUE(seen.insert(h).second) << "host completed twice";
    EXPECT_GT(t, sim::Time::zero());
    EXPECT_LE(t, result.latency);
  }
  EXPECT_EQ(result.packets_delivered,
            static_cast<std::int64_t>(n - 1) * m);
  // Tree traffic on one switch never blocks (see header comment).
  EXPECT_EQ(result.total_channel_block_time, sim::Time::zero());
}

TEST_P(EngineSweep, LatencyWithinAnalyticBounds) {
  const auto [n, m, k, style] = GetParam();
  if (style == mcast::NiStyle::kConventional) return;
  const auto result = run(n, m, k, style);
  const netif::SystemParams p;
  const net::NetworkConfig netcfg;
  const sim::Time net_time = netcfg.t_hop * 2 + netcfg.serialization_time();
  const sim::Time t_step = p.t_snd + net_time + p.t_rcv;
  const auto tree = core::make_kbinomial(n, k);
  const auto discipline = style == mcast::NiStyle::kSmartFpfs
                              ? mcast::Discipline::kFpfs
                              : mcast::Discipline::kFcfs;
  const auto steps = mcast::step_schedule(tree, m, discipline).total_steps;
  // Upper bound: the fully synchronous step model (no overlap at all).
  EXPECT_LE(result.latency,
            p.t_s + t_step * steps + p.t_r + sim::Time::us(0.001));
  // Lower bound: the first packet must cross every tree level and the
  // source must emit every copy of the first packet serially.
  const auto depth = tree.steps_to_complete();
  EXPECT_GE(result.latency,
            p.t_s + (p.t_snd + net_time + p.t_rcv) +
                p.t_snd * (depth > 1 ? 1 : 0) + p.t_r);
  (void)depth;
}

TEST_P(EngineSweep, MorePacketsNeverFaster) {
  const auto [n, m, k, style] = GetParam();
  if (m == 1) return;
  const auto less = run(n, m - 1, k, style);
  const auto more = run(n, m, k, style);
  EXPECT_GE(more.latency, less.latency);
}

TEST_P(EngineSweep, HostRelabelingInvariance) {
  // The engine must not care which concrete host ids participate when
  // they are topologically equivalent (all on one switch).
  const auto [n, m, k, style] = GetParam();
  const auto fwd = run(n, m, k, style, false);
  const auto rev = run(n, m, k, style, true);
  EXPECT_EQ(fwd.latency, rev.latency);
  EXPECT_EQ(fwd.ni_latency, rev.ni_latency);
}

TEST_P(EngineSweep, BufferPeakBounds) {
  const auto [n, m, k, style] = GetParam();
  const auto result = run(n, m, k, style);
  // No NI ever buffers more than the whole message.
  EXPECT_LE(result.peak_buffer(), static_cast<double>(m));
  if (style == mcast::NiStyle::kSmartFcfs && n > 2 &&
      core::make_kbinomial(n, k).max_children() >= 2 && m >= 2) {
    // Some fan-out node buffered the entire message under FCFS — unless
    // only the source fans out (its buffer also holds all m).
    EXPECT_EQ(result.peak_buffer(), static_cast<double>(m));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineSweep,
    ::testing::Combine(::testing::Values(2, 5, 8, 16, 24),   // n
                       ::testing::Values(1, 3, 8),            // m
                       ::testing::Values(1, 2, 4),            // k
                       ::testing::Values(mcast::NiStyle::kSmartFpfs,
                                         mcast::NiStyle::kSmartFcfs,
                                         mcast::NiStyle::kConventional)),
    [](const ::testing::TestParamInfo<Params>& pinfo) {
      // Note: no structured bindings here — commas inside [] would split
      // the macro arguments.
      const std::string style_name = mcast::to_string(std::get<3>(pinfo.param));
      std::string tag = style_name == "smart-fpfs"
                            ? "fpfs"
                            : (style_name == "smart-fcfs" ? "fcfs" : "conv");
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_m" +
             std::to_string(std::get<1>(pinfo.param)) + "_k" +
             std::to_string(std::get<2>(pinfo.param)) + "_" + tag;
    });

}  // namespace
}  // namespace nimcast
