// Multi-VC fault footgun: fault-time route rebuilds only know how to
// produce single-VC up*/down* tables, so requesting reroute-on-fault on
// a dateline torus (2 VCs) used to silently install a stale table. Both
// engines must now refuse loudly — and still run degraded (original
// routes, repair only) when the caller opts out of the rebuild.

#include <gtest/gtest.h>

#include <stdexcept>

#include "collectives/collective_engine.hpp"
#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/ordering.hpp"
#include "mcast/multicast_engine.hpp"
#include "network/fault_plan.hpp"
#include "routing/dimension_ordered.hpp"
#include "topology/kary_ncube.hpp"

namespace nimcast {
namespace {

struct TorusRig {
  topo::KAryNCubeConfig cfg{4, 2, true};  // 4-ary 2-cube with wraparound
  topo::Topology topology;
  routing::DimensionOrderedRouter router;
  routing::RouteTable routes;
  core::Chain chain;

  TorusRig()
      : topology{topo::make_kary_ncube(cfg)},
        router{topology.switches(), cfg},
        routes{topology, router},
        chain{core::dimension_chain(topology)} {}

  [[nodiscard]] core::HostTree tree(std::int32_t n) const {
    const core::Chain members{chain.begin(), chain.begin() + n};
    return core::HostTree::bind(core::make_kbinomial(n, 2), members);
  }
};

net::FaultPlan one_link_down() {
  net::FaultPlan plan;
  plan.link_down(sim::Time::us(1.0), 0);
  return plan;
}

TEST(MultiVcRepair, MulticastRerouteOnTorusThrowsLoudly) {
  const TorusRig rig;
  ASSERT_GT(rig.routes.virtual_channels(), 1);
  mcast::MulticastEngine::Config cfg;
  cfg.network.faults = one_link_down();
  ASSERT_TRUE(cfg.repair.reroute);  // the default must be the loud path
  const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
  EXPECT_THROW(static_cast<void>(engine.run(rig.tree(8), 2)),
               std::invalid_argument);
}

TEST(MultiVcRepair, MulticastRunsDegradedWhenRerouteIsOff) {
  const TorusRig rig;
  mcast::MulticastEngine::Config cfg;
  cfg.network.faults = one_link_down();
  cfg.repair.reroute = false;
  const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
  mcast::MulticastResult r;
  ASSERT_NO_THROW(r = engine.run(rig.tree(8), 2));
  // Dimension-ordered routing has a single path per pair and the stale
  // table is optimistic by design, so destinations behind the dead link
  // stay undelivered — degraded means a queryable outcome, not a repair
  // miracle.
  EXPECT_NE(r.outcome, mcast::Outcome::kComplete);
}

TEST(MultiVcRepair, CollectiveRerouteOnTorusThrowsLoudly) {
  const TorusRig rig;
  collectives::CollectiveEngine::Config cfg;
  cfg.network.faults = one_link_down();
  ASSERT_TRUE(cfg.repair.reroute);
  const collectives::CollectiveEngine engine{rig.topology, rig.routes, cfg};
  EXPECT_THROW(static_cast<void>(engine.run(
                   collectives::CollectiveKind::kBroadcast, rig.tree(8), 2)),
               std::invalid_argument);
}

TEST(MultiVcRepair, CollectiveRunsDegradedWhenRerouteIsOff) {
  const TorusRig rig;
  collectives::CollectiveEngine::Config cfg;
  cfg.network.faults = one_link_down();
  cfg.repair.reroute = false;
  const collectives::CollectiveEngine engine{rig.topology, rig.routes, cfg};
  collectives::CollectiveResult r;
  ASSERT_NO_THROW(r = engine.run(collectives::CollectiveKind::kBroadcast,
                                 rig.tree(8), 2));
  EXPECT_NE(r.outcome, mcast::Outcome::kComplete);
}

// A multi-VC rig with an *empty* fault plan keeps working untouched:
// the loud check only fires when there are faults to reroute around.
TEST(MultiVcRepair, FaultFreeTorusIsUnaffected) {
  const TorusRig rig;
  mcast::MulticastEngine::Config cfg;  // reroute defaults on, no faults
  const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
  mcast::MulticastResult r;
  ASSERT_NO_THROW(r = engine.run(rig.tree(8), 2));
  EXPECT_EQ(r.outcome, mcast::Outcome::kComplete);
}

}  // namespace
}  // namespace nimcast
