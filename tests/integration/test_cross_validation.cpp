// Cross-validation of the full-system simulator against the analytic
// models on contention-free configurations, plus exact hand-derived
// timings for pipeline behaviour. The simulator is finer-grained than the
// paper's step model (NI send/receive occupancies overlap with wire
// time), so the step model is an *upper bound*; chains, where nothing
// overlaps, match exactly.

#include <gtest/gtest.h>

#include "analysis/latency_model.hpp"
#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "harness/tree_spec.hpp"
#include "mcast/multicast_engine.hpp"
#include "mcast/step_model.hpp"
#include "routing/up_down.hpp"

namespace nimcast {
namespace {

/// Single 16-port switch with 10 hosts: every host pair is 0 link hops
/// apart, so the network term of t_step is constant and contention only
/// arises at injection/ejection channels.
struct StarRig {
  topo::Topology topology{topo::Graph{1, {}},
                          std::vector<topo::SwitchId>(10, 0), "star"};
  routing::UpDownRouter router{topology.switches()};
  routing::RouteTable routes{topology, router};
  netif::SystemParams params;
  net::NetworkConfig netcfg;

  mcast::MulticastResult run(const core::RankTree& tree, std::int32_t m,
                             mcast::NiStyle style) const {
    core::Chain order;
    for (std::int32_t r = 0; r < tree.size(); ++r) order.push_back(r);
    const auto host_tree = core::HostTree::bind(tree, order);
    mcast::MulticastEngine engine{
        topology, routes,
        mcast::MulticastEngine::Config{params, netcfg, style}};
    return engine.run(host_tree, m);
  }

  [[nodiscard]] sim::Time net_time() const {
    return netcfg.t_hop * 2 + netcfg.serialization_time();  // 0.6 us
  }
  [[nodiscard]] sim::Time t_step() const {
    return params.t_snd + net_time() + params.t_rcv;
  }
};

TEST(CrossValidation, LinearChainMatchesExactPipelineFormula) {
  const StarRig rig;
  for (std::int32_t n : {2, 3, 5, 8}) {
    for (std::int32_t m : {1, 2, 4, 7}) {
      const auto result =
          rig.run(core::make_linear(n), m, mcast::NiStyle::kSmartFpfs);
      // Derivation: the first packet walks the chain in (n-1) full steps;
      // each later packet lags by the slowest per-node cycle — an
      // intermediate costs t_rcv + t_snd per packet, while a chain with
      // no intermediate (n = 2) is paced by the source's t_snd alone
      // (t_snd > t_rcv with the paper's constants).
      const sim::Time cycle = n >= 3 ? rig.params.t_snd + rig.params.t_rcv
                                     : rig.params.t_snd;
      const sim::Time expected = rig.params.t_s + rig.t_step() * (n - 1) +
                                 cycle * (m - 1) + rig.params.t_r;
      EXPECT_EQ(result.latency, expected) << "n=" << n << " m=" << m;
    }
  }
}

TEST(CrossValidation, StepModelUpperBoundsSimulatorOnContentionFreeStar) {
  const StarRig rig;
  const analysis::LatencyModel model{rig.params, rig.t_step()};
  for (std::int32_t n : {2, 4, 8}) {
    for (std::int32_t m : {1, 3, 6}) {
      const auto sim_bin =
          rig.run(core::make_binomial(n), m, mcast::NiStyle::kSmartFpfs);
      EXPECT_LE(sim_bin.latency, model.smart_binomial(n, m))
          << "n=" << n << " m=" << m;
      const auto sim_lin =
          rig.run(core::make_linear(n), m, mcast::NiStyle::kSmartFpfs);
      EXPECT_LE(sim_lin.latency, model.smart_linear(n, m));
    }
  }
}

TEST(CrossValidation, SimulatorPreservesStepModelTreeRanking) {
  // Whenever the step model says tree A beats tree B by at least one
  // full pipeline interval, the simulator must agree on the winner.
  const StarRig rig;
  const std::int32_t n = 8;
  for (std::int32_t m : {4, 8}) {
    struct Entry {
      std::int32_t steps;
      sim::Time simulated;
    };
    std::vector<Entry> entries;
    for (std::int32_t k = 1; k <= 3; ++k) {
      const auto tree = core::make_kbinomial(n, k);
      entries.push_back(
          {mcast::step_schedule(tree, m, mcast::Discipline::kFpfs)
               .total_steps,
           rig.run(tree, m, mcast::NiStyle::kSmartFpfs).latency});
    }
    for (const auto& a : entries) {
      for (const auto& b : entries) {
        if (a.steps + 2 < b.steps) {
          EXPECT_LT(a.simulated, b.simulated)
              << "m=" << m << ": step model says " << a.steps << " < "
              << b.steps << " but simulation disagrees";
        }
      }
    }
  }
}

TEST(CrossValidation, Theorem1GapObservableInSimulatedArrivals) {
  // Gap between successive packet completions at the farthest leaf of a
  // chain equals the per-node cycle — the simulator-level analogue of
  // Theorem 1's constant inter-packet interval.
  const StarRig rig;
  const auto result =
      rig.run(core::make_linear(4), 5, mcast::NiStyle::kSmartFpfs);
  EXPECT_EQ(result.latency - rig.params.t_r - rig.params.t_s -
                rig.t_step() * 3,
            (rig.params.t_snd + rig.params.t_rcv) * 4);
}

TEST(CrossValidation, BufferHoldingRatioTracksAnalyticModel) {
  // Star tree: source 0 -> intermediate 1 -> 4 leaves; the intermediate
  // NI's buffer integral under FCFS vs FPFS should approach the
  // analytic ((c-1)m + 1) / c ratio for large m.
  core::RankTree t;
  t.parent = {-1, 0, 1, 1, 1, 1};
  t.children = {{1}, {2, 3, 4, 5}, {}, {}, {}, {}};
  t.validate();
  const StarRig rig;
  const std::int32_t m = 16;
  const auto fp = rig.run(t, m, mcast::NiStyle::kSmartFpfs);
  const auto fc = rig.run(t, m, mcast::NiStyle::kSmartFcfs);
  double fp_int = 0;
  double fc_int = 0;
  for (const auto& b : fp.buffers) {
    if (b.host == 1) fp_int = b.packet_us_integral;
  }
  for (const auto& b : fc.buffers) {
    if (b.host == 1) fc_int = b.packet_us_integral;
  }
  const double measured_ratio = fc_int / fp_int;
  const double analytic_ratio =
      static_cast<double>((4 - 1) * m + 1) / 4.0;
  EXPECT_GT(measured_ratio, 0.5 * analytic_ratio);
  EXPECT_GT(measured_ratio, 2.0);
}

TEST(CrossValidation, ConventionalMatchesPerLevelFormulaOnChain) {
  // Conventional NI on a 2-deep chain 0 -> 1 -> 2, single packet:
  // level cost = t_s + (t_snd + net + t_rcv) + t_r, paid twice, serially.
  const StarRig rig;
  const auto result =
      rig.run(core::make_linear(3), 1, mcast::NiStyle::kConventional);
  const sim::Time per_level =
      rig.params.t_s + rig.t_step() + rig.params.t_r;
  EXPECT_EQ(result.latency, per_level * 2);
}

}  // namespace
}  // namespace nimcast
