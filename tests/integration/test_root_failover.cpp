// Root fail-over: when the initiator host dies mid-operation the
// engines elect a deterministic replacement (a reachable destination
// already holding the payload), hand it the remaining send schedule and
// report a queryable kComplete/kPartial with root_handoffs accounting —
// instead of the seed behavior (kFailed, everything lost with the root).
//
// Exact completion instants depend on contention, so the mid-operation
// tests sweep the kill time across the operation lifetime and assert the
// invariants at every point plus the existence of a successful handoff.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "collectives/collective_engine.hpp"
#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "core/rotation.hpp"
#include "mcast/multicast_engine.hpp"
#include "network/fault_plan.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/fat_tree.hpp"
#include "topology/irregular.hpp"

namespace nimcast {
namespace {

/// 64 hosts over 16 random switches (IrregularConfig defaults).
struct IrregularRig {
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  core::Chain cco;

  explicit IrregularRig(std::uint64_t seed = 3)
      : topology{[&] {
          sim::Rng rng{seed};
          return topo::make_irregular(topo::IrregularConfig{}, rng);
        }()},
        router{topology.switches()},
        routes{topology, router},
        cco{core::cco_ordering(topology, router)} {}
};

/// 64 hosts over 8 edge + 4 spine switches (FatTreeConfig defaults).
struct FatTreeRig {
  topo::FatTreeConfig cfg{};
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  core::Chain cco;

  FatTreeRig()
      : topology{topo::make_fat_tree(cfg)},
        router{topology.switches(), topo::fat_tree_levels(cfg)},
        routes{topology, router},
        cco{core::cco_ordering(topology, router)} {}
};

core::HostTree tree_over(const core::Chain& cco, std::int32_t n,
                         std::int32_t m) {
  const core::Chain members{cco.begin(), cco.begin() + n};
  return core::HostTree::bind(
      core::make_kbinomial(n, core::optimal_k(n, m).k), members);
}

/// Reachable participants must have delivered unless the whole operation
/// failed (payload died with the root before anyone held it).
void expect_reachable_delivered(
    const std::vector<mcast::DestinationStatus>& statuses,
    mcast::Outcome outcome, const char* what) {
  if (outcome == mcast::Outcome::kFailed) return;
  for (const auto& st : statuses) {
    if (st.reachable) {
      EXPECT_TRUE(st.delivered)
          << what << ": host " << st.host << " reachable but undelivered";
    }
  }
}

TEST(RootFailover, RootHostDeathMidMulticastHandsOffToAPayloadHolder) {
  const IrregularRig rig;
  const auto tree = tree_over(rig.cco, 16, 4);
  bool handed_off = false;
  // The handoff window is [first, last) full-payload arrival at a
  // destination NI — roughly 30..38us here — so the sweep is fine-
  // grained around it (plus one early point that must fail cleanly).
  for (const double kill_us : {20.0, 30.0, 32.0, 34.0, 36.0, 38.0}) {
    net::FaultPlan plan;
    plan.host_down(sim::Time::us(kill_us), tree.root);
    mcast::MulticastEngine::Config cfg;
    cfg.network.faults = plan;
    const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
    mcast::MulticastResult r;
    ASSERT_NO_THROW(r = engine.run(tree, 4)) << "kill at " << kill_us;
    EXPECT_LE(r.root_handoffs, 1);
    expect_reachable_delivered(r.destinations, r.outcome, "handoff sweep");
    if (r.root_handoffs == 1) {
      // Only the root died, so every destination stays reachable from
      // the elected initiator and the handoff must finish the job.
      EXPECT_EQ(r.outcome, mcast::Outcome::kComplete) << "kill " << kill_us;
      EXPECT_NE(r.effective_root, tree.root);
      EXPECT_NE(std::find(tree.nodes.begin(), tree.nodes.end(),
                          r.effective_root),
                tree.nodes.end());
      handed_off = true;

      // The same kill without the policy reproduces the seed behavior.
      auto off = cfg;
      off.repair.root_handoff = false;
      const mcast::MulticastEngine strict{rig.topology, rig.routes, off};
      const auto r_off = strict.run(tree, 4);
      EXPECT_EQ(r_off.root_handoffs, 0);
      EXPECT_NE(r_off.outcome, mcast::Outcome::kComplete);
    }
  }
  EXPECT_TRUE(handed_off) << "no sweep point exercised the handoff";
}

// Acceptance: on both 64-host rigs, a root kill over a 10% link-fault
// background still reaches kComplete — or a kPartial that only excludes
// the unreachable — via the handoff.
template <typename Rig>
void handoff_under_link_background() {
  const Rig rig;
  const auto tree = tree_over(rig.cco, 24, 4);
  net::FaultPlan::RandomConfig fcfg;
  fcfg.link_fail_prob = 0.10;
  fcfg.window_end = sim::Time::us(60.0);
  bool handed_off = false;
  for (const double kill_us : {32.0, 34.0, 36.0, 38.0, 40.0}) {
    sim::Rng rng{2026};
    auto plan = net::FaultPlan::random(rig.topology.switches(), fcfg, rng);
    plan.host_down(sim::Time::us(kill_us), tree.root);
    mcast::MulticastEngine::Config cfg;
    cfg.network.faults = plan;
    const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
    mcast::MulticastResult r;
    ASSERT_NO_THROW(r = engine.run(tree, 4)) << "kill at " << kill_us;
    expect_reachable_delivered(r.destinations, r.outcome, "link background");
    if (r.root_handoffs == 1 && r.outcome != mcast::Outcome::kFailed) {
      handed_off = true;
    }
  }
  EXPECT_TRUE(handed_off)
      << "no sweep point completed through the handoff on this rig";
}

TEST(RootFailover, HandoffUnderLinkFaultBackgroundIrregular64) {
  handoff_under_link_background<IrregularRig>();
}

TEST(RootFailover, HandoffUnderLinkFaultBackgroundFatTree64) {
  handoff_under_link_background<FatTreeRig>();
}

TEST(RootFailover, RootDeathBeforeAnySendFailsCleanly) {
  const IrregularRig rig;
  const auto tree = tree_over(rig.cco, 16, 4);
  net::FaultPlan plan;
  // t_s + t_snd > 0.5us: the root dies before its first packet reaches
  // the wire, so no destination can hold the payload.
  plan.host_down(sim::Time::us(0.5), tree.root);
  mcast::MulticastEngine::Config cfg;
  cfg.network.faults = plan;
  const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
  mcast::MulticastResult r;
  ASSERT_NO_THROW(r = engine.run(tree, 4));
  EXPECT_EQ(r.outcome, mcast::Outcome::kFailed);
  EXPECT_EQ(r.root_handoffs, 0);
  EXPECT_EQ(r.delivered_count(), 0);
}

TEST(RootFailover, RootDeathWithAllParticipantsDeadFailsCleanly) {
  const IrregularRig rig;
  const auto tree = tree_over(rig.cco, 6, 2);
  net::FaultPlan plan;
  for (topo::HostId h : tree.nodes) plan.host_down(sim::Time::us(1.0), h);
  mcast::MulticastEngine::Config cfg;
  cfg.network.faults = plan;
  const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
  mcast::MulticastResult r;
  ASSERT_NO_THROW(r = engine.run(tree, 2));
  EXPECT_EQ(r.outcome, mcast::Outcome::kFailed);
  EXPECT_EQ(r.root_handoffs, 0);
  EXPECT_EQ(r.delivered_count(), 0);
  for (const auto& st : r.destinations) {
    EXPECT_FALSE(st.reachable) << "host " << st.host;
    EXPECT_FALSE(st.delivered) << "host " << st.host;
  }
}

TEST(RootFailover, HandoffIsDeterministicAcrossShardsAndThreads) {
  const IrregularRig rig;
  const auto tree = tree_over(rig.cco, 16, 4);
  auto run_with = [&](std::int32_t shards, std::int32_t threads) {
    net::FaultPlan plan;
    // 36us sits inside the handoff window (see the sweep test above),
    // so the elected initiator — not just the failure path — must be
    // identical across shard and thread counts.
    plan.host_down(sim::Time::us(36.0), tree.root);
    mcast::MulticastEngine::Config cfg;
    cfg.network.faults = plan;
    cfg.shards = shards;
    cfg.shard_threads = threads;
    const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
    return engine.run(tree, 4);
  };
  const auto serial = run_with(1, 0);
  for (const auto& [shards, threads] :
       std::vector<std::pair<std::int32_t, std::int32_t>>{{2, 1}, {2, 2}}) {
    const auto sharded = run_with(shards, threads);
    EXPECT_EQ(serial.outcome, sharded.outcome);
    EXPECT_EQ(serial.latency, sharded.latency);
    EXPECT_EQ(serial.root_handoffs, sharded.root_handoffs);
    EXPECT_EQ(serial.effective_root, sharded.effective_root);
    ASSERT_EQ(serial.completions.size(), sharded.completions.size());
    for (std::size_t i = 0; i < serial.completions.size(); ++i) {
      EXPECT_EQ(serial.completions[i], sharded.completions[i])
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

// ACK corner: the reliable NI holds buffer slots for packets received
// but not yet acknowledged. A host death while those slots are live must
// drain cleanly — senders give up against the reachability verdict, no
// slot leaks, no deadlock — and the handoff still works over the
// ACK/retransmit protocol.
TEST(RootFailover, ReliableRootDeathDrainsCleanAndHandsOff) {
  const IrregularRig rig;
  const auto tree = tree_over(rig.cco, 16, 4);
  bool handed_off = false;
  for (const double kill_us : {34.0, 36.0, 38.0, 40.0, 42.0, 44.0}) {
    net::FaultPlan plan;
    plan.host_down(sim::Time::us(kill_us), tree.root);
    mcast::MulticastEngine::Config cfg;
    cfg.style = mcast::NiStyle::kReliableFpfs;
    cfg.network.faults = plan;
    const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
    mcast::MulticastResult r;
    ASSERT_NO_THROW(r = engine.run(tree, 4)) << "kill at " << kill_us;
    expect_reachable_delivered(r.destinations, r.outcome, "reliable kill");
    if (r.root_handoffs == 1 && r.outcome != mcast::Outcome::kFailed) {
      handed_off = true;
    }
  }
  EXPECT_TRUE(handed_off);
}

TEST(RootFailover, ReliableInteriorHostDeathWithUnackedBuffersIsPartial) {
  const IrregularRig rig;
  const auto tree = tree_over(rig.cco, 16, 4);
  // The root's first child relays to its own subtree, so at 10us it sits
  // mid-protocol: received packets buffered, ACKs and forwards pending.
  const topo::HostId victim = tree.nodes[1];
  ASSERT_FALSE(tree.children.at(victim).empty());
  net::FaultPlan plan;
  plan.host_down(sim::Time::us(10.0), victim);
  mcast::MulticastEngine::Config cfg;
  cfg.style = mcast::NiStyle::kReliableFpfs;
  cfg.network.faults = plan;
  const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
  mcast::MulticastResult r;
  ASSERT_NO_THROW(r = engine.run(tree, 4));
  EXPECT_EQ(r.outcome, mcast::Outcome::kPartial);
  EXPECT_EQ(r.root_handoffs, 0);
  for (const auto& st : r.destinations) {
    if (st.host == victim) {
      EXPECT_FALSE(st.reachable);
      EXPECT_FALSE(st.delivered);
    } else if (st.reachable) {
      EXPECT_TRUE(st.delivered) << "host " << st.host;
    }
  }
}

// ---------------------------------------------------------------------
// Collectives: the handoff election is kind-aware — broadcast needs a
// completed payload holder, gather/reduce restart from any survivor,
// scatter can never hand off (the personalized payloads died with the
// root).
// ---------------------------------------------------------------------

collectives::CollectiveResult run_collective_with_kill(
    const IrregularRig& rig, collectives::CollectiveKind kind,
    const core::HostTree& tree, double kill_us) {
  net::FaultPlan plan;
  plan.host_down(sim::Time::us(kill_us), tree.root);
  collectives::CollectiveEngine::Config cfg;
  cfg.network.faults = plan;
  const collectives::CollectiveEngine engine{rig.topology, rig.routes, cfg};
  return engine.run(kind, tree, 3);
}

TEST(RootFailover, CollectiveRootDeathHandsOffPerKind) {
  const IrregularRig rig;
  const auto tree = tree_over(rig.cco, 12, 3);
  using collectives::CollectiveKind;
  for (const auto kind :
       {CollectiveKind::kBroadcast, CollectiveKind::kGather,
        CollectiveKind::kReduce, CollectiveKind::kAllReduce}) {
    bool handed_off = false;
    for (const double kill_us : {5.0, 30.0, 70.0, 120.0, 200.0}) {
      collectives::CollectiveResult r;
      ASSERT_NO_THROW(r = run_collective_with_kill(rig, kind, tree, kill_us))
          << collectives::to_string(kind) << " kill at " << kill_us;
      EXPECT_LE(r.root_handoffs, 1);
      if (r.root_handoffs == 1) {
        EXPECT_NE(r.effective_root, tree.root);
        expect_reachable_delivered(r.participants, r.outcome,
                                   collectives::to_string(kind));
        if (r.outcome != mcast::Outcome::kFailed) handed_off = true;
      }
    }
    EXPECT_TRUE(handed_off)
        << collectives::to_string(kind) << ": no sweep point handed off";
  }
}

TEST(RootFailover, ScatterRootDeathNeverHandsOff) {
  const IrregularRig rig;
  const auto tree = tree_over(rig.cco, 12, 3);
  for (const double kill_us : {5.0, 30.0, 70.0}) {
    collectives::CollectiveResult r;
    ASSERT_NO_THROW(r = run_collective_with_kill(
                        rig, collectives::CollectiveKind::kScatter, tree,
                        kill_us));
    EXPECT_EQ(r.root_handoffs, 0) << "kill at " << kill_us;
    EXPECT_EQ(r.effective_root, tree.root);
  }
  // An early kill loses every personalized payload outright.
  const auto r = run_collective_with_kill(
      rig, collectives::CollectiveKind::kScatter, tree, 1.0);
  EXPECT_EQ(r.outcome, mcast::Outcome::kFailed);
}

TEST(RootFailover, ReduceLeafDeathRefoldsOnlyMissingContributors) {
  const IrregularRig rig;
  const auto tree = tree_over(rig.cco, 12, 3);
  const topo::HostId victim = tree.nodes.back();
  ASSERT_TRUE(tree.children.at(victim).empty()) << "victim must be a leaf";
  net::FaultPlan plan;
  plan.host_down(sim::Time::us(1.0), victim);
  collectives::CollectiveEngine::Config cfg;
  cfg.network.faults = plan;
  const collectives::CollectiveEngine engine{rig.topology, rig.routes, cfg};
  collectives::CollectiveResult r;
  ASSERT_NO_THROW(
      r = engine.run(collectives::CollectiveKind::kReduce, tree, 3));
  EXPECT_EQ(r.outcome, mcast::Outcome::kPartial);
  EXPECT_EQ(r.root_handoffs, 0);
  // The victim's contribution is lost; every live participant's (root
  // included) must be folded into the root's result exactly once.
  const std::set<topo::HostId> contributors{r.contributors.begin(),
                                            r.contributors.end()};
  EXPECT_EQ(contributors.size(), r.contributors.size()) << "duplicate fold";
  EXPECT_EQ(contributors.count(victim), 0u);
  for (topo::HostId h : tree.nodes) {
    if (h != victim) {
      EXPECT_EQ(contributors.count(h), 1u) << "host " << h << " not folded";
    }
  }
}

// ---------------------------------------------------------------------
// Streaming: the source is the single injector, so its death triggers
// per-packet handoff — each missing stream index is re-injected by the
// lowest-ranked survivor that holds it.
// ---------------------------------------------------------------------

core::RotationPlan rotation_plan(const IrregularRig& rig, std::int32_t n,
                                 std::int32_t rotation) {
  const core::Chain members{rig.cco.begin(), rig.cco.begin() + n};
  core::RotationConfig rc;
  rc.rotation_trees = rotation;
  rc.fanout_bound = 2;
  return core::plan_rotation(rig.topology, rig.routes, rig.router, members,
                             rc);
}

TEST(RootFailover, StreamingRootDeathHandsOffPerPacket) {
  const IrregularRig rig;
  const auto plan = rotation_plan(rig, 16, 3);
  const topo::HostId source = plan.members.front().tree.root;
  bool handed_off = false;
  // A kill landing exactly between injection waves leaves every
  // destination holding the same prefix — nothing to hand off, honest
  // partial. The sweep therefore includes mid-wave instants where a
  // truncated wave leaves some destinations holding indices others miss.
  for (const double kill_us : {30.0, 42.0, 54.0, 66.0, 90.0}) {
    net::FaultPlan faults;
    faults.host_down(sim::Time::us(kill_us), source);
    mcast::MulticastEngine::Config cfg;
    cfg.network.faults = faults;
    const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
    mcast::StreamingResult r;
    ASSERT_NO_THROW(r = engine.run_streaming(plan, 24))
        << "kill at " << kill_us;
    if (r.root_handoffs > 0) {
      EXPECT_NE(r.effective_root, source);
      EXPECT_GT(r.packets_delivered, 0);
      handed_off = true;
    }
  }
  EXPECT_TRUE(handed_off) << "no sweep point exercised per-packet handoff";
}

// Acceptance: a mid-stream fault that kills a forwarding member must
// not collapse the rotation. The victim heads the fixed tree's largest
// subtree, so R=1 orphans that whole subtree for the rest of the stream
// — while the rotation gives the same host a leaf role in most members
// (only the classes where it forwards are hurt) and the incremental
// replan keeps the repair phase R-way. Measured ratio on this rig is
// ~1.7x; the acceptance floor is 1.2x.
TEST(RootFailover, StreamingMemberKillSustainsRotationThroughput) {
  const IrregularRig rig;
  const auto plan4 = rotation_plan(rig, 16, 4);
  ASSERT_GE(plan4.size(), 3);
  const auto plan1 = rotation_plan(rig, 16, 1);
  const core::HostTree& fixed_tree = plan1.members.front().tree;
  const topo::HostId victim = fixed_tree.children.at(fixed_tree.root)[0];
  ASSERT_FALSE(fixed_tree.children.at(victim).empty());

  auto run_plan = [&](const core::RotationPlan& plan) {
    net::FaultPlan faults;
    faults.host_down(sim::Time::us(40.0), victim);
    mcast::MulticastEngine::Config cfg;
    cfg.network.faults = faults;
    const mcast::MulticastEngine engine{rig.topology, rig.routes, cfg};
    return engine.run_streaming(plan, 48);
  };
  const auto rotated = run_plan(plan4);
  const auto fixed = run_plan(plan1);
  EXPECT_NE(rotated.outcome, mcast::Outcome::kFailed);
  EXPECT_GE(rotated.replans, 1) << "member kill should trigger a replan";
  EXPECT_GE(rotated.flits_per_us, 1.2 * fixed.flits_per_us)
      << "rotation " << rotated.flits_per_us << " vs fixed "
      << fixed.flits_per_us;
}

}  // namespace
}  // namespace nimcast
