// Golden determinism tests: exact latencies for fixed seeds.
//
// Purpose: any change in event ordering, RNG consumption, tie-breaking
// or model arithmetic shifts these values, and such changes must be
// *deliberate*. If you change the model on purpose, update the goldens
// and say so in the commit; if you didn't, you have introduced
// nondeterminism or an accidental semantic change.
//
// (The values were produced by this implementation; they pin behaviour,
// not external truth.)

#include <gtest/gtest.h>

#include "api/communicator.hpp"
#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "harness/testbed.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"

namespace nimcast {
namespace {

TEST(Goldens, RngStream) {
  sim::Rng rng{1997};
  EXPECT_EQ(rng.next_u64(), UINT64_C(0x62dec0605b915f34));
}

TEST(Goldens, SingleMulticastOnSeededCluster) {
  sim::Rng rng{1997};
  const auto topology = topo::make_irregular(topo::IrregularConfig{}, rng);
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  const auto chain = core::cco_ordering(topology, router);
  const auto members = core::arrange_participants(
      chain, chain[0],
      {chain[5], chain[9], chain[20], chain[33], chain[47], chain[60],
       chain[63]});
  const auto tree = core::HostTree::bind(core::make_kbinomial(8, 2), members);
  const mcast::MulticastEngine engine{
      topology, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{},
                                     net::NetworkConfig{},
                                     mcast::NiStyle::kSmartFpfs}};
  const auto result = engine.run(tree, 8);
  EXPECT_EQ(result.latency.count_ns(), 101'300);
  EXPECT_EQ(result.total_channel_block_time.count_ns(), 0);
}

TEST(Goldens, TestbedPoint) {
  harness::IrregularTestbed::Config cfg;
  cfg.num_topologies = 2;
  cfg.sets_per_topology = 5;
  cfg.seed = 77;
  const harness::IrregularTestbed bed{cfg};
  const auto p = bed.measure(16, 8, harness::TreeSpec::optimal(),
                             mcast::NiStyle::kSmartFpfs);
  EXPECT_NEAR(p.latency_us.mean(), 107.14, 1e-9);
}

TEST(Goldens, CommunicatorBroadcast) {
  const auto comm = api::Communicator::irregular();
  const auto r = comm.broadcast(0, 1024);
  EXPECT_EQ(r.latency.count_ns(), 188'300);
}

}  // namespace
}  // namespace nimcast
