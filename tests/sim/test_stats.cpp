#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nimcast::sim {
namespace {

TEST(Summary, EmptyThrowsOnMean) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.min(), std::logic_error);
  EXPECT_THROW((void)s.max(), std::logic_error);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic data set: 32 / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, MergeMatchesCombinedStream) {
  Summary a;
  Summary b;
  Summary whole;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    (i % 2 == 0 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Summary, MergeWithEmptyIsNoop) {
  Summary a;
  a.add(1.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Samples, PercentilesInterpolate) {
  Samples s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 25.0);
}

TEST(Samples, PercentileRejectsOutOfRange) {
  Samples s;
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-1.0), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101.0), std::invalid_argument);
}

TEST(Samples, MeanAndStddev) {
  Samples s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 1.0);
}

TEST(Occupancy, TracksLevelPeakAndIntegral) {
  Occupancy o;
  o.change(0.0, +2.0);   // level 2 over [0, 4]
  o.change(4.0, +3.0);   // level 5 over [4, 6]
  o.change(6.0, -4.0);   // level 1 over [6, 10]
  EXPECT_DOUBLE_EQ(o.level(), 1.0);
  EXPECT_DOUBLE_EQ(o.peak(), 5.0);
  EXPECT_DOUBLE_EQ(o.integral(10.0), 2 * 4 + 5 * 2 + 1 * 4);
  EXPECT_DOUBLE_EQ(o.time_average(10.0), 22.0 / 10.0);
}

TEST(Occupancy, RejectsTimeTravel) {
  Occupancy o;
  o.change(5.0, 1.0);
  EXPECT_THROW(o.change(4.0, 1.0), std::logic_error);
  EXPECT_THROW((void)o.integral(4.0), std::logic_error);
}

TEST(Occupancy, EmptyOccupancyIsZero) {
  Occupancy o;
  EXPECT_DOUBLE_EQ(o.integral(10.0), 0.0);
  EXPECT_DOUBLE_EQ(o.time_average(10.0), 0.0);
  EXPECT_DOUBLE_EQ(o.peak(), 0.0);
}

TEST(Occupancy, NonZeroStartTimeUsesFirstChangeAsOrigin) {
  Occupancy o;
  o.change(10.0, 1.0);  // level 1 over [10, 20]
  EXPECT_DOUBLE_EQ(o.integral(20.0), 10.0);
  EXPECT_DOUBLE_EQ(o.time_average(20.0), 1.0);
}

}  // namespace
}  // namespace nimcast::sim
