#include "sim/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace nimcast::sim {
namespace {

Trace sample_trace() {
  Trace t;
  t.enable();
  t.record(Time::us(1.5), TraceCategory::kNi, 3, "sent pkt=0");
  t.record(Time::us(2.0), TraceCategory::kPacket, 7, "deliver");
  return t;
}

TEST(TraceExport, ProducesJsonArrayWithEvents) {
  const auto json = to_chrome_trace_json(sample_trace());
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"sent pkt=0\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"ni\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(TraceExport, EmptyTraceIsValidEmptyArray) {
  Trace t;
  const auto json = to_chrome_trace_json(t);
  EXPECT_EQ(json, "[\n]\n");
}

TEST(TraceExport, EscapesSpecialCharacters) {
  Trace t;
  t.enable();
  t.record(Time::zero(), TraceCategory::kHost, 0, "say \"hi\"\\path\nend");
  const auto json = to_chrome_trace_json(t);
  EXPECT_NE(json.find("say \\\"hi\\\"\\\\path\\nend"), std::string::npos);
}

TEST(TraceExport, WritesFile) {
  const std::string path = "/tmp/nimcast_trace_test.json";
  write_chrome_trace(sample_trace(), path);
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string all{std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>()};
  EXPECT_NE(all.find("deliver"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceExport, WriteToBadPathThrows) {
  EXPECT_THROW(write_chrome_trace(sample_trace(), "/nonexistent/dir/x.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace nimcast::sim
