#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nimcast::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), Time::zero());
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, RunAdvancesClockToEventTimes) {
  Simulator s;
  std::vector<Time> seen;
  s.schedule_at(Time::us(5.0), [&] { seen.push_back(s.now()); });
  s.schedule_at(Time::us(2.0), [&] { seen.push_back(s.now()); });
  const auto fired = s.run();
  EXPECT_EQ(fired, 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], Time::us(2.0));
  EXPECT_EQ(seen[1], Time::us(5.0));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  Time fired_at;
  s.schedule_at(Time::us(10.0), [&] {
    s.schedule_in(Time::us(2.5), [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, Time::us(12.5));
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.schedule_at(Time::us(5.0), [&] {
    EXPECT_THROW(s.schedule_at(Time::us(1.0), [] {}), std::logic_error);
  });
  s.run();
}

TEST(Simulator, ZeroDelayFollowUpAllowed) {
  Simulator s;
  int order = 0;
  int first = 0;
  int second = 0;
  s.schedule_at(Time::us(1.0), [&] {
    first = ++order;
    s.schedule_in(Time::zero(), [&] { second = ++order; });
  });
  s.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator s;
  int fired = 0;
  s.schedule_at(Time::us(1.0), [&] { ++fired; });
  s.schedule_at(Time::us(10.0), [&] { ++fired; });
  s.run_until(Time::us(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), Time::us(5.0));
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesEventsAtBoundary) {
  Simulator s;
  int fired = 0;
  s.schedule_at(Time::us(5.0), [&] { ++fired; });
  s.run_until(Time::us(5.0));
  EXPECT_EQ(fired, 1);
}

// run_until is *inclusive*: an event re-entrantly scheduled at exactly
// the boundary (zero delay from a boundary event) must still fire in the
// same call. Window barriers in the sharded engine rely on this — a
// window [T, W] must drain every event chain that stays <= W.
TEST(Simulator, RunUntilRunsReentrantEventsAtBoundary) {
  Simulator s;
  std::vector<int> seen;
  s.schedule_at(Time::us(5.0), [&] {
    seen.push_back(1);
    s.schedule_in(Time::zero(), [&] {
      seen.push_back(2);
      s.schedule_in(Time::zero(), [&] { seen.push_back(3); });
    });
  });
  const auto fired = s.run_until(Time::us(5.0));
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.now(), Time::us(5.0));
}

// ...but an event the boundary event schedules *past* the boundary stays
// pending, and the clock still lands exactly on `until`.
TEST(Simulator, RunUntilLeavesPostBoundaryFollowUpsPending) {
  Simulator s;
  int late = 0;
  s.schedule_at(Time::us(5.0), [&] {
    s.schedule_in(Time::ns(1), [&] { ++late; });
  });
  const auto fired = s.run_until(Time::us(5.0));
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(late, 0);
  EXPECT_EQ(s.pending_events(), 1u);
  EXPECT_EQ(s.now(), Time::us(5.0));
  s.run();
  EXPECT_EQ(late, 1);
}

// Multiple events pinned at the boundary instant all fire, in schedule
// (FIFO) order — the same tie-break contract as run().
TEST(Simulator, RunUntilFiresAllBoundaryEventsInScheduleOrder) {
  Simulator s;
  std::vector<int> seen;
  s.schedule_at(Time::us(5.0), [&] { seen.push_back(1); });
  s.schedule_at(Time::us(5.0), [&] { seen.push_back(2); });
  s.schedule_at(Time::us(5.0), [&] { seen.push_back(3); });
  const auto fired = s.run_until(Time::us(5.0));
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

// An empty window still advances the clock (and never moves it backward
// when `until` is already in the past).
TEST(Simulator, RunUntilOnEmptyQueueAdvancesClockMonotonically) {
  Simulator s;
  EXPECT_EQ(s.run_until(Time::us(3.0)), 0u);
  EXPECT_EQ(s.now(), Time::us(3.0));
  EXPECT_EQ(s.run_until(Time::us(1.0)), 0u);  // until < now: no-op
  EXPECT_EQ(s.now(), Time::us(3.0));
}

TEST(Simulator, AdvanceToMovesClockWithoutDispatching) {
  Simulator s;
  int fired = 0;
  s.schedule_at(Time::us(2.0), [&] { ++fired; });
  s.advance_to(Time::us(1.0));
  EXPECT_EQ(s.now(), Time::us(1.0));
  EXPECT_EQ(fired, 0);
  EXPECT_THROW(s.advance_to(Time::us(0.5)), std::logic_error);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, LastEventTimeTracksDispatchNotClock) {
  Simulator s;
  EXPECT_EQ(s.last_event_time(), Time::zero());
  s.schedule_at(Time::us(2.0), [] {});
  s.run_until(Time::us(7.0));
  EXPECT_EQ(s.now(), Time::us(7.0));
  EXPECT_EQ(s.last_event_time(), Time::us(2.0));
}

// Shard-order keying must be order-identical to the default FIFO keying
// within a single simulator (the serial-equivalence property the sharded
// engine's determinism contract is built on).
TEST(Simulator, ShardOrderKeyingMatchesFifoWithinOneSimulator) {
  const auto trace = [](bool sharded) {
    Simulator s;
    if (sharded) s.enable_shard_order();
    std::vector<int> seen;
    s.schedule_at(Time::us(4.0), [&s, &seen] {
      seen.push_back(10);
      s.schedule_in(Time::zero(), [&seen] { seen.push_back(11); });
    });
    s.schedule_at(Time::us(4.0), [&seen] { seen.push_back(20); });
    s.schedule_at(Time::us(2.0), [&s, &seen] {
      seen.push_back(30);
      s.schedule_in(Time::us(2.0), [&seen] { seen.push_back(31); });
    });
    s.run();
    return seen;
  };
  EXPECT_EQ(trace(false), trace(true));
}

TEST(Simulator, StepRunsOneEvent) {
  Simulator s;
  int fired = 0;
  s.schedule_at(Time::us(1.0), [&] { ++fired; });
  s.schedule_at(Time::us(2.0), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelledEventNeverRuns) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(Time::us(1.0), [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EventLimitCatchesRunawayLoops) {
  Simulator s;
  // A self-rescheduling zero-delay event would spin forever.
  std::function<void()> loop = [&] { s.schedule_in(Time::zero(), loop); };
  s.schedule_at(Time::zero(), loop);
  EXPECT_THROW(s.run(1000), std::runtime_error);
}

TEST(Simulator, DispatchCountAccumulates) {
  Simulator s;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(Time::us(static_cast<double>(i)), [] {});
  }
  s.run();
  EXPECT_EQ(s.events_dispatched(), 5u);
}

}  // namespace
}  // namespace nimcast::sim
