#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nimcast::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), Time::zero());
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, RunAdvancesClockToEventTimes) {
  Simulator s;
  std::vector<Time> seen;
  s.schedule_at(Time::us(5.0), [&] { seen.push_back(s.now()); });
  s.schedule_at(Time::us(2.0), [&] { seen.push_back(s.now()); });
  const auto fired = s.run();
  EXPECT_EQ(fired, 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], Time::us(2.0));
  EXPECT_EQ(seen[1], Time::us(5.0));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  Time fired_at;
  s.schedule_at(Time::us(10.0), [&] {
    s.schedule_in(Time::us(2.5), [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, Time::us(12.5));
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.schedule_at(Time::us(5.0), [&] {
    EXPECT_THROW(s.schedule_at(Time::us(1.0), [] {}), std::logic_error);
  });
  s.run();
}

TEST(Simulator, ZeroDelayFollowUpAllowed) {
  Simulator s;
  int order = 0;
  int first = 0;
  int second = 0;
  s.schedule_at(Time::us(1.0), [&] {
    first = ++order;
    s.schedule_in(Time::zero(), [&] { second = ++order; });
  });
  s.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator s;
  int fired = 0;
  s.schedule_at(Time::us(1.0), [&] { ++fired; });
  s.schedule_at(Time::us(10.0), [&] { ++fired; });
  s.run_until(Time::us(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), Time::us(5.0));
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesEventsAtBoundary) {
  Simulator s;
  int fired = 0;
  s.schedule_at(Time::us(5.0), [&] { ++fired; });
  s.run_until(Time::us(5.0));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StepRunsOneEvent) {
  Simulator s;
  int fired = 0;
  s.schedule_at(Time::us(1.0), [&] { ++fired; });
  s.schedule_at(Time::us(2.0), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelledEventNeverRuns) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(Time::us(1.0), [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EventLimitCatchesRunawayLoops) {
  Simulator s;
  // A self-rescheduling zero-delay event would spin forever.
  std::function<void()> loop = [&] { s.schedule_in(Time::zero(), loop); };
  s.schedule_at(Time::zero(), loop);
  EXPECT_THROW(s.run(1000), std::runtime_error);
}

TEST(Simulator, DispatchCountAccumulates) {
  Simulator s;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(Time::us(static_cast<double>(i)), [] {});
  }
  s.run();
  EXPECT_EQ(s.events_dispatched(), 5u);
}

}  // namespace
}  // namespace nimcast::sim
