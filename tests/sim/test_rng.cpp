#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace nimcast::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r{7};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng r{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r{99};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r{3};
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NextInRejectsInvertedRange) {
  Rng r{3};
  EXPECT_THROW(r.next_in(2, 1), std::invalid_argument);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r{11};
  for (int i = 0; i < 10'000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng r{5};
  double sum = 0;
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(Rng, NextBoolExtremes) {
  Rng r{13};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, NextBoolProbabilityRoughlyHonored) {
  Rng r{17};
  int hits = 0;
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) hits += r.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{21};
  Rng child = a.fork();
  // The child must not replay the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePermutes) {
  Rng r{31};
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto shuffled = v;
  r.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng r{41};
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = r.sample_without_replacement(64, 16);
    EXPECT_EQ(s.size(), 16u);
    std::set<std::size_t> uniq{s.begin(), s.end()};
    EXPECT_EQ(uniq.size(), 16u);
    for (auto x : s) EXPECT_LT(x, 64u);
  }
}

TEST(Rng, SampleFullRangeIsPermutation) {
  Rng r{43};
  const auto s = r.sample_without_replacement(10, 10);
  std::set<std::size_t> uniq{s.begin(), s.end()};
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, SampleRejectsOverdraw) {
  Rng r{47};
  EXPECT_THROW(r.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a{5};
  const auto first = a.next_u64();
  a.reseed(5);
  EXPECT_EQ(a.next_u64(), first);
}

}  // namespace
}  // namespace nimcast::sim
