#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/rng.hpp"

namespace nimcast::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(Time::us(3.0), [&] { fired.push_back(3); });
  q.schedule(Time::us(1.0), [&] { fired.push_back(1); });
  q.schedule(Time::us(2.0), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(Time::us(5.0), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(Time::us(7.0), [] {});
  q.schedule(Time::us(4.0), [] {});
  EXPECT_EQ(q.next_time(), Time::us(4.0));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(Time::us(1.0), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(Time::us(1.0), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelledEventSkippedByNextTime) {
  EventQueue q;
  const EventId early = q.schedule(Time::us(1.0), [] {});
  q.schedule(Time::us(2.0), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), Time::us(2.0));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PopReturnsTimeAndCallback) {
  EventQueue q;
  int hits = 0;
  q.schedule(Time::us(9.0), [&] { ++hits; });
  auto fired = q.pop();
  EXPECT_EQ(fired.time, Time::us(9.0));
  fired.cb();
  EXPECT_EQ(hits, 1);
}

TEST(EventQueue, ManyInterleavedScheduleCancel) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(
        q.schedule(Time::us(static_cast<double>(i)), [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 50);
}

TEST(EventQueue, CancelFreesSlotImmediately) {
  // Regression: the seed implementation kept cancelled heap entries
  // queued until popped, so schedule/cancel churn (retry timers in
  // reliable_ni) grew the queue unboundedly within a run. The slab must
  // recycle the slot at cancel time.
  EventQueue q;
  for (int i = 0; i < 100'000; ++i) {
    const EventId id = q.schedule(Time::us(1e6), [] {});
    ASSERT_TRUE(q.cancel(id));
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  // One live event at a time -> one slot, ever.
  EXPECT_EQ(q.slot_capacity(), 1u);
}

TEST(EventQueue, ChurnWithPendingFloorKeepsSlabBounded) {
  EventQueue q;
  std::vector<EventId> pending;
  for (int i = 0; i < 64; ++i) {
    pending.push_back(q.schedule(Time::us(static_cast<double>(i)), [] {}));
  }
  for (int round = 0; round < 10'000; ++round) {
    const EventId id =
        q.schedule(Time::us(1000.0 + static_cast<double>(round)), [] {});
    ASSERT_TRUE(q.cancel(id));
  }
  EXPECT_EQ(q.size(), 64u);
  EXPECT_LE(q.slot_capacity(), 65u);
  for (const EventId id : pending) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleIdFromRecycledSlotIsRejected) {
  EventQueue q;
  const EventId first = q.schedule(Time::us(1.0), [] {});
  ASSERT_TRUE(q.cancel(first));
  // The slot is recycled for the next event; the old id must stay dead.
  const EventId second = q.schedule(Time::us(2.0), [] {});
  EXPECT_FALSE(q.cancel(first));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(second));
  EXPECT_FALSE(q.cancel(second));
}

TEST(EventQueue, LargeCallbackRoundTrips) {
  // Callables beyond the inline small-buffer go to the queue's pool;
  // behaviour must be identical.
  EventQueue q;
  std::array<std::uint64_t, 32> payload{};
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i + 1;
  static_assert(sizeof(payload) > EventCallback::kInlineCapacity);
  std::uint64_t got = 0;
  q.schedule(Time::us(1.0), [payload, &got] {
    for (const std::uint64_t v : payload) got += v;
  });
  q.pop().cb();
  EXPECT_EQ(got, 32u * 33u / 2u);

  // Cancelled oversize callbacks release their pool chunk cleanly.
  const EventId id = q.schedule(Time::us(1.0), [payload, &got] {
    got += payload[0];
  });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ReserveDoesNotDisturbPending) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) {
    q.schedule(Time::us(static_cast<double>(8 - i)), [&fired, i] {
      fired.push_back(i);
    });
  }
  q.reserve(1024);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, (std::vector<int>{7, 6, 5, 4, 3, 2, 1, 0}));
}

TEST(EventQueue, FuzzAgainstMultimapModel) {
  // Random schedule/cancel/pop interleavings checked against a
  // std::multimap reference ordered by (time, insertion order) — the
  // documented FIFO tie-break for same-time events.
  using Key = std::pair<Time::rep, std::uint64_t>;
  Rng rng{20260806};
  EventQueue q;
  std::multimap<Key, int> model;
  struct Live {
    EventId id;
    Key key;
  };
  std::vector<Live> live;
  int next_tag = 0;
  std::vector<int> fired;
  std::uint64_t order = 0;

  for (int step = 0; step < 20'000; ++step) {
    const std::uint64_t op = rng.next_below(10);
    if (op < 5 || live.empty()) {
      // Schedule. A small time range forces frequent same-time ties.
      const auto t = static_cast<Time::rep>(rng.next_below(64));
      const int tag = next_tag++;
      const Key key{t, order++};
      const EventId id =
          q.schedule(Time::ns(t), [tag, &fired] { fired.push_back(tag); });
      model.emplace(key, tag);
      live.push_back(Live{id, key});
    } else if (op < 7) {
      // Cancel a random live event.
      const std::size_t pick = rng.next_below(live.size());
      ASSERT_TRUE(q.cancel(live[pick].id));
      ASSERT_FALSE(q.cancel(live[pick].id)) << "double cancel succeeded";
      auto [lo, hi] = model.equal_range(live[pick].key);
      ASSERT_TRUE(lo != hi);
      model.erase(lo);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      // Pop the earliest; must match the model's front exactly.
      ASSERT_EQ(q.size(), model.size());
      auto front = model.begin();
      auto fired_event = q.pop();
      ASSERT_EQ(fired_event.time, Time::ns(front->first.first));
      const std::size_t before = fired.size();
      fired_event.cb();
      ASSERT_EQ(fired.size(), before + 1);
      ASSERT_EQ(fired.back(), front->second);
      const Key popped_key = front->first;
      model.erase(front);
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].key == popped_key) {
          // Popped ids must be dead for cancellation.
          EXPECT_FALSE(q.cancel(live[i].id));
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
  }

  // Drain what's left; order must match the model exactly.
  while (!model.empty()) {
    ASSERT_EQ(q.size(), model.size());
    auto front = model.begin();
    auto fired_event = q.pop();
    ASSERT_EQ(fired_event.time, Time::ns(front->first.first));
    fired_event.cb();
    ASSERT_EQ(fired.back(), front->second);
    model.erase(front);
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace nimcast::sim
