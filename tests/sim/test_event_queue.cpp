#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nimcast::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(Time::us(3.0), [&] { fired.push_back(3); });
  q.schedule(Time::us(1.0), [&] { fired.push_back(1); });
  q.schedule(Time::us(2.0), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(Time::us(5.0), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(Time::us(7.0), [] {});
  q.schedule(Time::us(4.0), [] {});
  EXPECT_EQ(q.next_time(), Time::us(4.0));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(Time::us(1.0), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(Time::us(1.0), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelledEventSkippedByNextTime) {
  EventQueue q;
  const EventId early = q.schedule(Time::us(1.0), [] {});
  q.schedule(Time::us(2.0), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), Time::us(2.0));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PopReturnsTimeAndCallback) {
  EventQueue q;
  int hits = 0;
  q.schedule(Time::us(9.0), [&] { ++hits; });
  auto fired = q.pop();
  EXPECT_EQ(fired.time, Time::us(9.0));
  fired.cb();
  EXPECT_EQ(hits, 1);
}

TEST(EventQueue, ManyInterleavedScheduleCancel) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(
        q.schedule(Time::us(static_cast<double>(i)), [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 50);
}

}  // namespace
}  // namespace nimcast::sim
