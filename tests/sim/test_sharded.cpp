#include "sim/sharded.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace nimcast::sim {
namespace {

TEST(ShardedSimulator, RejectsBadConstruction) {
  EXPECT_THROW(ShardedSimulator(0, Time::us(0.1)), std::invalid_argument);
  EXPECT_THROW(ShardedSimulator(2, Time::zero()), std::invalid_argument);
}

TEST(ShardedSimulator, DrainsIndependentShards) {
  ShardedSimulator sharded{2, Time::us(0.1)};
  int a = 0;
  int b = 0;
  sharded.shard(0).schedule_at(Time::us(1.0), [&] { ++a; });
  sharded.shard(1).schedule_at(Time::us(2.0), [&] { ++b; });
  const auto fired = sharded.run(/*threads=*/2);
  EXPECT_EQ(fired, 2u);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(sharded.events_dispatched(), 2u);
  EXPECT_EQ(sharded.last_event_time(), Time::us(2.0));
}

TEST(ShardedSimulator, CrossShardMailFiresAtTheMailedTime) {
  ShardedSimulator sharded{2, Time::us(0.1)};
  Time fired_at = Time::zero();
  sharded.shard(0).schedule_at(Time::us(1.0), [&] {
    sharded.post(0, 1, sharded.shard(0).now() + Time::us(0.1),
                 [&] { fired_at = sharded.shard(1).now(); });
  });
  sharded.run(2);
  EXPECT_EQ(fired_at, Time::us(1.1));
}

// The determinism pillar: each shard's dispatch sequence is a pure
// function of the simulation, not of the thread count. A ping-pong chain
// between two shards, interleaved with local chatter at coinciding
// instants, must dispatch identically per shard at 1 and 2 threads.
TEST(ShardedSimulator, ThreadCountNeverChangesEventOrder) {
  using Log = std::vector<std::pair<int, Time>>;
  const auto trace = [](int threads) {
    ShardedSimulator sharded{2, Time::us(0.1)};
    // Per-shard logs: only the owning shard's thread appends to each.
    std::vector<Log> seen(2);
    // Ping-pong: each hop re-mails the other shard 100ns ahead.
    struct Pong {
      ShardedSimulator& sharded;
      std::vector<Log>& seen;
      void bounce(int from, int hops_left) {
        auto& sim = sharded.shard(from);
        seen[static_cast<std::size_t>(from)].emplace_back(-1, sim.now());
        if (hops_left == 0) return;
        const int to = 1 - from;
        sharded.post(from, to, sim.now() + Time::us(0.1),
                     [this, to, hops_left] { bounce(to, hops_left - 1); });
      }
    };
    Pong pong{sharded, seen};
    sharded.shard(0).schedule_at(Time::zero(),
                                 [&] { pong.bounce(0, 20); });
    // Local chatter on both shards between and at the hop instants.
    for (int s = 0; s < 2; ++s) {
      for (int i = 0; i < 20; ++i) {
        sharded.shard(s).schedule_at(
            Time::ns(100 * i + 50),
            [&seen, s, i] { seen[static_cast<std::size_t>(s)].emplace_back(
                i, Time::ns(100 * i + 50)); });
      }
    }
    sharded.run(threads);
    return seen;
  };
  const auto serial = trace(1);
  EXPECT_EQ(serial[0].size() + serial[1].size(), 61u);
  EXPECT_EQ(trace(2), serial);
}

TEST(ShardedSimulator, GlobalEventsSeeAllShardsAtTheExactInstant) {
  ShardedSimulator sharded{2, Time::us(0.1)};
  std::vector<int> order;
  sharded.shard(0).schedule_at(Time::us(1.0), [&] { order.push_back(0); });
  sharded.shard(1).schedule_at(Time::us(5.0), [&] { order.push_back(2); });
  sharded.schedule_global(Time::us(3.0), [&] {
    EXPECT_EQ(sharded.shard(0).now(), Time::us(3.0));
    EXPECT_EQ(sharded.shard(1).now(), Time::us(3.0));
    order.push_back(1);
  });
  sharded.run(2);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  // Globals count toward the serial-equivalent event count.
  EXPECT_EQ(sharded.events_dispatched(), 3u);
}

TEST(ShardedSimulator, GlobalEventFiresBeforeShardEventsAtTheSameInstant) {
  ShardedSimulator sharded{2, Time::us(0.1)};
  std::vector<int> order;
  sharded.shard(1).schedule_at(Time::us(3.0), [&] { order.push_back(2); });
  sharded.schedule_global(Time::us(3.0), [&] { order.push_back(1); });
  sharded.run(1);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ShardedSimulator, KeyedGlobalsOrderByKeyAfterRegistrationKeyedOnes) {
  // Keyed globals can be registered from worker threads mid-window (the
  // network's hop-replay path); at equal times they fire in (hi, lo)
  // order, after every unkeyed (hi = 0) global at that instant — and a
  // mid-window registration targeting the exact next barrier must still
  // be honored.
  ShardedSimulator sharded{2, Time::us(0.1)};
  std::vector<int> order;
  sharded.schedule_global(Time::us(2.0), [&] { order.push_back(0); });
  sharded.shard(1).schedule_at(Time::us(1.0), [&] {
    sharded.schedule_global_keyed(Time::us(2.0), 1, 7,
                                  [&] { order.push_back(2); });
    sharded.schedule_global_keyed(Time::us(2.0), 1, 3,
                                  [&] { order.push_back(1); });
  });
  sharded.run(2);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sharded.events_dispatched(), 4u);
  EXPECT_EQ(sharded.last_event_time(), Time::us(2.0));
}

TEST(ShardedSimulator, TrailingGlobalEventsStillFire) {
  // Serial engines drain scheduled fault events even after traffic ends;
  // the sharded run must too, including when no shard event ever fires.
  ShardedSimulator sharded{2, Time::us(0.1)};
  int fired = 0;
  sharded.schedule_global(Time::us(7.0), [&] { ++fired; });
  sharded.run(2);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sharded.events_dispatched(), 1u);
}

TEST(ShardedSimulator, SyntheticEventsAreExcludedFromTheLogicalCount) {
  ShardedSimulator sharded{2, Time::us(0.1)};
  sharded.shard(0).schedule_at(Time::us(1.0), [&] {
    sharded.post(0, 1, sharded.shard(0).now() + Time::us(0.2),
                 [&] { sharded.note_synthetic(1); });
  });
  sharded.run(2);
  // Two physical dispatches, one marked synthetic.
  EXPECT_EQ(sharded.events_dispatched(), 1u);
}

TEST(ShardedSimulator, LookaheadViolationThrows) {
  ShardedSimulator sharded{2, Time::us(0.1)};
  sharded.shard(0).schedule_at(Time::us(1.0), [&] {
    // Mail targeted *inside* the current window: the receiver may have
    // dispatched past it already — the flush must reject it.
    sharded.post(0, 1, sharded.shard(0).now(), [] {});
  });
  EXPECT_THROW(sharded.run(2), std::logic_error);
}

TEST(ShardedSimulator, EventLimitStopsRunawayLoops) {
  ShardedSimulator sharded{2, Time::us(0.1)};
  std::function<void()> loop = [&] {
    sharded.shard(0).schedule_in(Time::zero(), loop);
  };
  sharded.shard(0).schedule_at(Time::zero(), loop);
  EXPECT_THROW(sharded.run(2, /*event_limit=*/1000), std::runtime_error);
}

TEST(ShardedSimulator, ExceptionsInShardEventsPropagate) {
  ShardedSimulator sharded{2, Time::us(0.1)};
  sharded.shard(1).schedule_at(Time::us(1.0), [] {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(sharded.run(2), std::runtime_error);
}

TEST(ShardedSimulator, RunCanBeCalledAgainAfterDraining) {
  ShardedSimulator sharded{2, Time::us(0.1)};
  int fired = 0;
  sharded.shard(0).schedule_at(Time::us(1.0), [&] { ++fired; });
  sharded.run(2);
  // Driver schedules follow-up work between runs (the engine's repair
  // rounds do exactly this).
  sharded.shard(1).schedule_at(sharded.last_event_time() + Time::us(30.0),
                               [&] { ++fired; });
  sharded.run(2);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sharded.events_dispatched(), 2u);
}

}  // namespace
}  // namespace nimcast::sim
