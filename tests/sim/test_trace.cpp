#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace nimcast::sim {
namespace {

TEST(Trace, DisabledByDefaultRecordsNothing) {
  Trace t;
  t.record(Time::us(1.0), TraceCategory::kNi, 3, "hello");
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, EnabledRecordsInOrder) {
  Trace t;
  t.enable();
  t.record(Time::us(1.0), TraceCategory::kNi, 3, "a");
  t.record(Time::us(2.0), TraceCategory::kPacket, 4, "b");
  ASSERT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records()[0].message, "a");
  EXPECT_EQ(t.records()[1].entity, 4);
}

TEST(Trace, FilterByCategory) {
  Trace t;
  t.enable();
  t.record(Time::us(1.0), TraceCategory::kNi, 0, "ni1");
  t.record(Time::us(2.0), TraceCategory::kChannel, 1, "ch");
  t.record(Time::us(3.0), TraceCategory::kNi, 2, "ni2");
  const auto ni = t.filter(TraceCategory::kNi);
  ASSERT_EQ(ni.size(), 2u);
  EXPECT_EQ(ni[0].message, "ni1");
  EXPECT_EQ(ni[1].message, "ni2");
}

TEST(Trace, ToTextContainsCategoryTags) {
  Trace t;
  t.enable();
  t.record(Time::us(1.5), TraceCategory::kMulticast, -1, "start");
  const auto text = t.to_text();
  EXPECT_NE(text.find("[mcast]"), std::string::npos);
  EXPECT_NE(text.find("start"), std::string::npos);
  // entity -1 omits the node tag
  EXPECT_EQ(text.find('#'), std::string::npos);
}

TEST(Trace, ClearEmpties) {
  Trace t;
  t.enable();
  t.record(Time::zero(), TraceCategory::kHost, 0, "x");
  t.clear();
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, CategoryNames) {
  EXPECT_STREQ(to_string(TraceCategory::kHost), "host");
  EXPECT_STREQ(to_string(TraceCategory::kNi), "ni");
  EXPECT_STREQ(to_string(TraceCategory::kChannel), "chan");
  EXPECT_STREQ(to_string(TraceCategory::kPacket), "pkt");
  EXPECT_STREQ(to_string(TraceCategory::kMulticast), "mcast");
}

}  // namespace
}  // namespace nimcast::sim
