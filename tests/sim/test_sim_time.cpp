#include "sim/sim_time.hpp"

#include <gtest/gtest.h>

namespace nimcast::sim {
namespace {

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(Time{}.count_ns(), 0);
  EXPECT_EQ(Time{}, Time::zero());
}

TEST(SimTime, MicrosecondConstructionIsExactForPaperConstants) {
  EXPECT_EQ(Time::us(12.5).count_ns(), 12'500);
  EXPECT_EQ(Time::us(3.0).count_ns(), 3'000);
  EXPECT_EQ(Time::us(2.0).count_ns(), 2'000);
}

TEST(SimTime, UsRoundsToNearestNanosecond) {
  EXPECT_EQ(Time::us(0.0004).count_ns(), 0);
  EXPECT_EQ(Time::us(0.0006).count_ns(), 1);
}

TEST(SimTime, ArithmeticAndOrdering) {
  const Time a = Time::us(3.0);
  const Time b = Time::us(2.0);
  EXPECT_EQ((a + b).count_ns(), 5'000);
  EXPECT_EQ((a - b).count_ns(), 1'000);
  EXPECT_EQ((a * 4).count_ns(), 12'000);
  EXPECT_EQ((4 * a).count_ns(), 12'000);
  EXPECT_LT(b, a);
  EXPECT_GT(a, b);
  EXPECT_LE(a, a);
}

TEST(SimTime, CompoundAssignment) {
  Time t = Time::us(1.0);
  t += Time::us(2.0);
  EXPECT_EQ(t, Time::us(3.0));
  t -= Time::us(0.5);
  EXPECT_EQ(t, Time::us(2.5));
}

TEST(SimTime, ConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(Time::us(12.5).as_us(), 12.5);
  EXPECT_DOUBLE_EQ(Time::ms(1.5).as_ms(), 1.5);
  EXPECT_EQ(Time::ms(1.0), Time::us(1000.0));
}

TEST(SimTime, ToStringShowsMicroseconds) {
  EXPECT_EQ(Time::us(12.5).to_string(), "12.500us");
}

TEST(SimTime, MaxIsLargerThanAnyPracticalTime) {
  EXPECT_GT(Time::max(), Time::ms(1e12));
}

}  // namespace
}  // namespace nimcast::sim
