#include "traffic/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "core/ordering.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"

namespace nimcast::traffic {
namespace {

struct Rig {
  topo::Topology topology;
  core::Chain cco;
};

Rig make_rig(std::uint64_t seed, std::int32_t hosts = 32) {
  topo::IrregularConfig cfg;
  cfg.num_hosts = hosts;
  cfg.num_switches = hosts / 4;
  sim::Rng rng{seed};
  topo::Topology topology = topo::make_irregular(cfg, rng);
  const routing::UpDownRouter router{topology.switches()};
  core::Chain cco = core::cco_ordering(topology, router);
  return Rig{std::move(topology), std::move(cco)};
}

WorkloadConfig small_config() {
  WorkloadConfig cfg;
  cfg.num_ops = 40;
  cfg.min_group = 3;
  cfg.max_group = 10;
  cfg.seed = 11;
  return cfg;
}

TEST(Workload, DeterministicForSameInputs) {
  const Rig rig = make_rig(5);
  const Workload a = generate_workload(32, rig.cco, small_config());
  const Workload b = generate_workload(32, rig.cco, small_config());
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].arrival, b.ops[i].arrival);
    EXPECT_EQ(a.ops[i].cls, b.ops[i].cls);
    EXPECT_EQ(a.ops[i].tree.nodes, b.ops[i].tree.nodes);
    EXPECT_EQ(a.ops[i].churn, b.ops[i].churn);
    EXPECT_EQ(a.ops[i].split, b.ops[i].split);
  }
}

TEST(Workload, SeedChangesTheMix) {
  const Rig rig = make_rig(5);
  WorkloadConfig cfg = small_config();
  const Workload a = generate_workload(32, rig.cco, cfg);
  cfg.seed = 12;
  const Workload b = generate_workload(32, rig.cco, cfg);
  bool differs = false;
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    if (a.ops[i].arrival != b.ops[i].arrival ||
        a.ops[i].tree.nodes != b.ops[i].tree.nodes) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Workload, RespectsBoundsAndCensus) {
  const Rig rig = make_rig(7);
  const WorkloadConfig cfg = small_config();
  const Workload wl = generate_workload(32, rig.cco, cfg);
  ASSERT_EQ(wl.ops.size(), static_cast<std::size_t>(cfg.num_ops));
  EXPECT_EQ(wl.multicasts + wl.streams + wl.collectives, cfg.num_ops);
  std::int32_t churns = 0;
  sim::Time prev = sim::Time::zero();
  for (const TrafficOp& op : wl.ops) {
    EXPECT_GT(op.arrival, prev);  // >= 1 ns quantized gaps
    prev = op.arrival;
    EXPECT_GE(op.group_size(), cfg.min_group);
    EXPECT_LE(op.group_size(), cfg.max_group);
    std::unordered_set<topo::HostId> uniq;
    for (topo::HostId h : op.tree.nodes) {
      EXPECT_GE(h, 0);
      EXPECT_LT(h, 32);
      EXPECT_TRUE(uniq.insert(h).second) << "duplicate member";
    }
    churns += op.churn ? 1 : 0;
  }
  EXPECT_EQ(churns, wl.churns);
  EXPECT_GT(wl.multicasts, 0);
  EXPECT_GT(wl.streams, 0);
  EXPECT_GT(wl.collectives, 0);
  EXPECT_GT(wl.churns, 0);
}

TEST(Workload, ChurnRebindIsWellFormed) {
  const Rig rig = make_rig(9);
  WorkloadConfig cfg = small_config();
  cfg.num_ops = 120;
  cfg.churn_probability = 1.0;
  cfg.stream_fraction = 0.8;
  cfg.collective_fraction = 0.1;
  const Workload wl = generate_workload(32, rig.cco, cfg);
  ASSERT_GT(wl.churns, 0);
  for (const TrafficOp& op : wl.ops) {
    if (!op.churn) continue;
    EXPECT_EQ(op.cls, OpClass::kStream);
    EXPECT_GE(op.split, 1);
    EXPECT_LT(op.split, op.packets);
    EXPECT_EQ(op.tree2.root, op.tree.root);
    const std::unordered_set<topo::HostId> before(op.tree.nodes.begin(),
                                                  op.tree.nodes.end());
    const std::unordered_set<topo::HostId> after(op.tree2.nodes.begin(),
                                                 op.tree2.nodes.end());
    // Exactly one member left; when a spare host existed one joined.
    std::int32_t left = 0;
    std::int32_t joined = 0;
    for (topo::HostId h : before) left += after.contains(h) ? 0 : 1;
    for (topo::HostId h : after) joined += before.contains(h) ? 0 : 1;
    EXPECT_EQ(left, 1);
    EXPECT_EQ(joined, 32 > op.group_size() ? 1 : 0);
    EXPECT_TRUE(after.contains(op.tree.root));
  }
}

TEST(Workload, RejectsBadConfigs) {
  const Rig rig = make_rig(3);
  WorkloadConfig cfg = small_config();
  cfg.num_ops = 0;
  EXPECT_THROW(generate_workload(32, rig.cco, cfg), std::invalid_argument);
  cfg = small_config();
  cfg.max_group = 64;  // > hosts
  EXPECT_THROW(generate_workload(32, rig.cco, cfg), std::invalid_argument);
  cfg = small_config();
  cfg.ops_per_ms = 0.0;
  EXPECT_THROW(generate_workload(32, rig.cco, cfg), std::invalid_argument);
  cfg = small_config();
  cfg.stream_fraction = 0.8;
  cfg.collective_fraction = 0.4;  // sums past 1
  EXPECT_THROW(generate_workload(32, rig.cco, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::traffic
