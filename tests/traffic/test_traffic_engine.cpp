#include "traffic/traffic_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"
#include "traffic/workload.hpp"

namespace nimcast::traffic {
namespace {

struct Rig {
  std::unique_ptr<topo::Topology> topology;
  std::unique_ptr<routing::UpDownRouter> router;
  std::unique_ptr<routing::RouteTable> routes;
  core::Chain cco;
};

Rig make_rig(std::uint64_t seed, std::int32_t hosts = 32) {
  topo::IrregularConfig cfg;
  cfg.num_hosts = hosts;
  cfg.num_switches = hosts / 4;
  sim::Rng rng{seed};
  Rig rig;
  rig.topology =
      std::make_unique<topo::Topology>(topo::make_irregular(cfg, rng));
  rig.router =
      std::make_unique<routing::UpDownRouter>(rig.topology->switches());
  rig.routes =
      std::make_unique<routing::RouteTable>(*rig.topology, *rig.router);
  rig.cco = core::cco_ordering(*rig.topology, *rig.router);
  return rig;
}

TrafficConfig engine_config(Policy policy, std::int32_t shards = 1) {
  TrafficConfig cfg;
  cfg.scheduler.policy = policy;
  cfg.shards = shards;
  return cfg;
}

WorkloadConfig mix_config(double ops_per_ms, std::int32_t num_ops = 16) {
  WorkloadConfig cfg;
  cfg.num_ops = num_ops;
  cfg.ops_per_ms = ops_per_ms;
  cfg.min_group = 3;
  cfg.max_group = 10;
  cfg.seed = 23;
  return cfg;
}

void expect_same_result(const TrafficResult& a, const TrafficResult& b) {
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.deferral_ticks, b.deferral_ticks);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].admitted, b.ops[i].admitted) << "op " << i;
    EXPECT_EQ(a.ops[i].completed, b.ops[i].completed) << "op " << i;
    EXPECT_EQ(a.ops[i].deferral_ticks, b.ops[i].deferral_ticks) << "op " << i;
  }
}

TEST(TrafficEngine, RunsAMixedWorkloadToCompletion) {
  const Rig rig = make_rig(3);
  WorkloadConfig wcfg = mix_config(5.0, 20);
  wcfg.churn_probability = 1.0;
  const Workload wl = generate_workload(32, rig.cco, wcfg);
  const TrafficEngine engine{*rig.topology, *rig.routes,
                             engine_config(Policy::kPaced)};
  const TrafficResult r = engine.run(wl);
  ASSERT_EQ(r.ops.size(), wl.ops.size());
  EXPECT_GT(r.makespan, sim::Time::zero());
  EXPECT_GT(r.ops_per_sec, 0.0);
  EXPECT_GT(r.flits_per_us, 0.0);
  EXPECT_NE(r.digest, 0u);
  for (std::size_t i = 0; i < r.ops.size(); ++i) {
    const OpRecord& rec = r.ops[i];
    EXPECT_GE(rec.admitted, rec.arrival) << "op " << i;
    EXPECT_GT(rec.completed, rec.admitted) << "op " << i;
    EXPECT_GT(rec.packets_delivered, 0) << "op " << i;
  }
}

TEST(TrafficEngine, ChurnDeliversPrefixPlusRebindSuffix) {
  const Rig rig = make_rig(7);
  WorkloadConfig wcfg = mix_config(2.0, 24);
  wcfg.stream_fraction = 0.7;
  wcfg.collective_fraction = 0.1;
  wcfg.churn_probability = 1.0;
  const Workload wl = generate_workload(32, rig.cco, wcfg);
  ASSERT_GT(wl.churns, 0);
  const TrafficEngine engine{*rig.topology, *rig.routes,
                             engine_config(Policy::kFifo)};
  const TrafficResult r = engine.run(wl);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < wl.ops.size(); ++i) {
    const TrafficOp& op = wl.ops[i];
    std::int64_t expect = 0;
    if (op.churn) {
      // The leaver receives only the prefix, the joiner only the suffix.
      expect = static_cast<std::int64_t>(op.tree.size() - 1) * op.split +
               static_cast<std::int64_t>(op.tree2.size() - 1) *
                   (op.packets - op.split);
    } else if (op.cls == OpClass::kCollective) {
      // Gather legs (one per member) plus the broadcast back down.
      expect = static_cast<std::int64_t>(op.tree.size() - 1) * op.packets * 2;
    } else {
      expect = static_cast<std::int64_t>(op.tree.size() - 1) * op.packets;
    }
    EXPECT_EQ(r.ops[i].packets_delivered, expect) << "op " << i;
    total += expect;
  }
  EXPECT_EQ(r.packets_delivered, total);
}

TEST(TrafficEngine, PacedIsByteIdenticalToFifoAtSingleGroupLoad) {
  const Rig rig = make_rig(11);
  // Offered load so low that each operation drains long before the next
  // arrives: pacing must be a strict no-op against the FIFO baseline.
  const Workload wl = generate_workload(32, rig.cco, mix_config(0.002, 8));
  const TrafficEngine fifo{*rig.topology, *rig.routes,
                           engine_config(Policy::kFifo)};
  const TrafficEngine paced{*rig.topology, *rig.routes,
                            engine_config(Policy::kPaced)};
  const TrafficResult rf = fifo.run(wl);
  const TrafficResult rp = paced.run(wl);
  EXPECT_EQ(rf.deferral_ticks, 0);
  EXPECT_EQ(rp.deferral_ticks, 0);
  EXPECT_EQ(rf.events_dispatched, rp.events_dispatched);
  expect_same_result(rf, rp);
  for (std::size_t i = 0; i < rp.ops.size(); ++i) {
    EXPECT_EQ(rp.ops[i].admitted, rp.ops[i].arrival) << "op " << i;
  }
}

TEST(TrafficEngine, PacedDefersOverlappingBurst) {
  const Rig rig = make_rig(13);
  // Four identical-footprint multicasts arriving back to back: with zero
  // overlap tolerance the paced scheduler must defer the tail of the
  // burst; FIFO launches everything immediately.
  const std::int32_t n = 8;
  const std::int32_t m = 4;
  std::vector<topo::HostId> dests;
  for (topo::HostId h = 1; h < n; ++h) dests.push_back(h);
  const core::Chain members = core::arrange_participants(rig.cco, 0, dests);
  const std::int32_t k = core::optimal_k(n, m).k;
  const core::HostTree tree =
      core::HostTree::bind(core::make_kbinomial(n, k), members);
  Workload wl;
  for (std::int32_t i = 0; i < 4; ++i) {
    TrafficOp op;
    op.cls = OpClass::kMulticast;
    op.arrival = sim::Time::ns(1 + i);
    op.tree = tree;
    op.packets = m;
    wl.ops.push_back(op);
    ++wl.multicasts;
  }
  TrafficConfig pcfg = engine_config(Policy::kPaced);
  pcfg.scheduler.overlap_tolerance_x1000 = 0;
  const TrafficEngine paced{*rig.topology, *rig.routes, pcfg};
  const TrafficEngine fifo{*rig.topology, *rig.routes,
                           engine_config(Policy::kFifo)};
  const TrafficResult rp = paced.run(wl);
  const TrafficResult rf = fifo.run(wl);
  EXPECT_EQ(rf.deferral_ticks, 0);
  EXPECT_GT(rp.deferral_ticks, 0);
  EXPECT_GT(rp.ticks, 0);
  // Both policies still deliver everything.
  EXPECT_EQ(rp.packets_delivered, rf.packets_delivered);
  // Deferred operations admit strictly after their arrival.
  bool any_later = false;
  for (const OpRecord& rec : rp.ops) {
    if (rec.admitted > rec.arrival) any_later = true;
  }
  EXPECT_TRUE(any_later);
}

TEST(TrafficEngine, SerialAndShardedAreBitIdentical) {
  const Rig rig = make_rig(17, 64);
  WorkloadConfig wcfg = mix_config(20.0, 24);
  wcfg.churn_probability = 0.8;
  const Workload wl = generate_workload(64, rig.cco, wcfg);
  const TrafficEngine serial{*rig.topology, *rig.routes,
                             engine_config(Policy::kPaced, 1)};
  const TrafficResult rs = serial.run(wl);
  for (std::int32_t shards : {2, 4}) {
    const TrafficEngine sharded{*rig.topology, *rig.routes,
                                engine_config(Policy::kPaced, shards)};
    const TrafficResult rx = sharded.run(wl);
    EXPECT_GT(rx.shards_used, 1) << shards;
    expect_same_result(rs, rx);
  }
}

TEST(TrafficEngine, AdmissionOrderDeterministicAcrossSeedsAndShards) {
  const Rig rig = make_rig(19, 64);
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    WorkloadConfig wcfg = mix_config(25.0, 16);
    wcfg.seed = seed;
    const Workload wl = generate_workload(64, rig.cco, wcfg);
    std::vector<sim::Time> reference;
    for (std::int32_t shards : {1, 2, 4}) {
      const TrafficEngine engine{*rig.topology, *rig.routes,
                                 engine_config(Policy::kPaced, shards)};
      const TrafficResult r = engine.run(wl);
      std::vector<sim::Time> admitted;
      admitted.reserve(r.ops.size());
      for (const OpRecord& rec : r.ops) admitted.push_back(rec.admitted);
      if (shards == 1) {
        reference = admitted;
      } else {
        EXPECT_EQ(admitted, reference) << "seed " << seed << " shards "
                                       << shards;
      }
    }
  }
}

TEST(TrafficEngine, SharedFabricWindowIsStableAcrossTheMix) {
  const Rig rig = make_rig(23, 64);
  WorkloadConfig wcfg = mix_config(10.0, 20);
  const Workload wl = generate_workload(64, rig.cco, wcfg);
  TrafficConfig tcfg = engine_config(Policy::kPaced, 4);
  tcfg.network.release_model = net::ReleaseModel::kPipelined;
  const TrafficEngine engine{*rig.topology, *rig.routes, tcfg};
  // The one shared-fabric window equals the min over per-op safe
  // windows (the per-op recomputation the traffic engine replaced):
  // every single-op sub-mix must plan a window at least as wide.
  const sim::Time shared = engine.planned_window(wl);
  sim::Time per_op_min;
  bool first = true;
  for (const TrafficOp& op : wl.ops) {
    Workload single;
    single.ops.push_back(op);
    const sim::Time w = engine.planned_window(single);
    per_op_min = first ? w : std::min(per_op_min, w);
    first = false;
    EXPECT_GE(w, shared);
  }
  EXPECT_EQ(per_op_min, shared);
  // And the run itself must use exactly that window (no mid-mix
  // re-shard; the engine throws std::logic_error if the choice could
  // diverge).
  const TrafficResult r = engine.run(wl);
  EXPECT_EQ(r.window_ns, shared.count_ns());
}

TEST(TrafficEngine, RejectsFaultyAndLossyFabrics) {
  const Rig rig = make_rig(29);
  TrafficConfig faulty = engine_config(Policy::kPaced);
  faulty.network.faults.link_down(sim::Time::us(1.0), 0);
  EXPECT_THROW((TrafficEngine{*rig.topology, *rig.routes, faulty}),
               std::invalid_argument);
  TrafficConfig lossy = engine_config(Policy::kPaced);
  lossy.network.loss_rate = 0.1;
  EXPECT_THROW((TrafficEngine{*rig.topology, *rig.routes, lossy}),
               std::invalid_argument);
}

TEST(TrafficEngine, RejectsMalformedWorkloads) {
  const Rig rig = make_rig(31);
  const TrafficEngine engine{*rig.topology, *rig.routes,
                             engine_config(Policy::kFifo)};
  EXPECT_THROW((void)engine.run(Workload{}), std::invalid_argument);
  Workload wl = generate_workload(32, rig.cco, mix_config(2.0, 4));
  std::swap(wl.ops.front().arrival, wl.ops.back().arrival);
  EXPECT_THROW((void)engine.run(wl), std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::traffic
