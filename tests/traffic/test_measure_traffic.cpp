#include <gtest/gtest.h>

#include "api/communicator.hpp"
#include "harness/testbed.hpp"

namespace nimcast::harness {
namespace {

TestbedSpec small_spec() {
  TestbedSpec spec = TestbedSpec::make_irregular(32);
  spec.num_topologies = 2;
  spec.sets_per_topology = 2;
  spec.seed = 7;
  return spec;
}

traffic::WorkloadConfig small_mix() {
  traffic::WorkloadConfig cfg;
  cfg.num_ops = 10;
  cfg.ops_per_ms = 10.0;
  cfg.min_group = 3;
  cfg.max_group = 8;
  return cfg;
}

TEST(MeasureTraffic, FoldsOneSamplePerReplication) {
  const Testbed bed{small_spec()};
  const TrafficPoint p =
      bed.measure_traffic(small_mix(), traffic::SchedulerConfig{});
  EXPECT_EQ(p.ops_per_sec.count(), 4u);
  EXPECT_EQ(p.makespan_us.count(), 4u);
  // Every op of every replication lands in the FCT pool.
  EXPECT_EQ(p.fct_us.count(), 4u * 10u);
  EXPECT_EQ(p.fct_multicast_us.count() + p.fct_stream_us.count() +
                p.fct_collective_us.count(),
            p.fct_us.count());
  EXPECT_GT(p.ops_per_sec.mean(), 0.0);
  EXPECT_GT(p.flits_per_us.mean(), 0.0);
}

TEST(MeasureTraffic, BitIdenticalAcrossInstancesAndThreads) {
  const Testbed a{small_spec()};
  const Testbed b{small_spec()};
  const traffic::SchedulerConfig sched;
  const TrafficPoint pa = a.measure_traffic(small_mix(), sched, 1);
  const TrafficPoint pb = b.measure_traffic(small_mix(), sched, 3);
  EXPECT_EQ(pa.digest, pb.digest);
  EXPECT_DOUBLE_EQ(pa.ops_per_sec.mean(), pb.ops_per_sec.mean());
  EXPECT_DOUBLE_EQ(pa.fct_us.percentile(99.0), pb.fct_us.percentile(99.0));
  EXPECT_DOUBLE_EQ(pa.makespan_us.max(), pb.makespan_us.max());
}

TEST(MeasureTraffic, PairedAcrossPolicies) {
  // The FIFO and paced sweeps replay identical workload draws, so at a
  // load this light (no contention to pace) the points coincide exactly.
  const Testbed bed{small_spec()};
  traffic::WorkloadConfig mix = small_mix();
  mix.ops_per_ms = 0.002;
  mix.num_ops = 4;
  traffic::SchedulerConfig fifo;
  fifo.policy = traffic::Policy::kFifo;
  traffic::SchedulerConfig paced;
  paced.policy = traffic::Policy::kPaced;
  const TrafficPoint pf = bed.measure_traffic(mix, fifo);
  const TrafficPoint pp = bed.measure_traffic(mix, paced);
  EXPECT_EQ(pf.digest, pp.digest);
  EXPECT_DOUBLE_EQ(pf.ops_per_sec.mean(), pp.ops_per_sec.mean());
  EXPECT_EQ(pp.deferral_ticks.mean(), 0.0);
}

TEST(CommunicatorTraffic, RunsAndReports) {
  topo::IrregularConfig topo_cfg;
  topo_cfg.num_hosts = 32;
  topo_cfg.num_switches = 8;
  api::Communicator::Options opt;
  opt.seed = 5;
  opt.traffic_workload.num_ops = 12;
  opt.traffic_workload.ops_per_ms = 5.0;
  opt.traffic_workload.min_group = 3;
  opt.traffic_workload.max_group = 8;
  const api::Communicator comm =
      api::Communicator::irregular(topo_cfg, opt);
  const api::Communicator::TrafficReport report = comm.run_traffic();
  EXPECT_EQ(report.ops, 12);
  EXPECT_EQ(report.multicasts + report.streams + report.collectives, 12);
  EXPECT_GT(report.ops_per_sec, 0.0);
  EXPECT_GT(report.packets_delivered, 0);
  EXPECT_GT(report.makespan, sim::Time::zero());
  EXPECT_GE(report.fct_p99, report.fct_p50);
  EXPECT_NE(report.digest, 0u);
}

}  // namespace
}  // namespace nimcast::harness
