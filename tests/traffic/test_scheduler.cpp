#include "traffic/scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace nimcast::traffic {
namespace {

SchedulerConfig paced(std::int32_t tolerance_x1000 = 200) {
  SchedulerConfig cfg;
  cfg.policy = Policy::kPaced;
  cfg.overlap_tolerance_x1000 = tolerance_x1000;
  cfg.hot_block_ns = 1000;
  cfg.max_defer_ticks = 4;
  return cfg;
}

TEST(GroupScheduler, FifoAlwaysAdmits) {
  SchedulerConfig cfg = paced();
  cfg.policy = Policy::kFifo;
  GroupScheduler sched{cfg, 8};
  sched.admit({0, 1, 2});
  EXPECT_TRUE(sched.would_admit({0, 1, 2}, 0));
  EXPECT_TRUE(sched.would_admit({0, 1, 2, 3, 4}, 0));
}

TEST(GroupScheduler, EmptyFabricAlwaysAdmits) {
  GroupScheduler sched{paced(0), 8};
  EXPECT_EQ(sched.in_flight(), 0);
  EXPECT_TRUE(sched.would_admit({0, 1, 2, 3, 4, 5, 6, 7}, 0));
}

TEST(GroupScheduler, DefersOverlapAdmitsDisjoint) {
  GroupScheduler sched{paced(200), 8};
  sched.admit({0, 1, 2, 3});
  // 4/4 channels busy: 4000 > 200 * 4 — defer.
  EXPECT_FALSE(sched.would_admit({0, 1, 2, 3}, 0));
  // 1/5 busy: 1000 <= 200 * 5 — boundary admits.
  EXPECT_TRUE(sched.would_admit({0, 4, 5, 6, 7}, 0));
  // Disjoint always scores 0.
  EXPECT_TRUE(sched.would_admit({4, 5, 6, 7}, 0));
  sched.release({0, 1, 2, 3});
  EXPECT_EQ(sched.in_flight(), 0);
  EXPECT_TRUE(sched.would_admit({0, 1, 2, 3}, 0));
}

TEST(GroupScheduler, AgingForceAdmits) {
  GroupScheduler sched{paced(0), 8};
  sched.admit({0, 1});
  EXPECT_FALSE(sched.would_admit({0, 1}, 0));
  EXPECT_FALSE(sched.would_admit({0, 1}, 3));
  EXPECT_TRUE(sched.would_admit({0, 1}, 4));  // max_defer_ticks reached
}

TEST(GroupScheduler, TelemetryMarksHotChannels) {
  GroupScheduler sched{paced(0), 4};
  sched.admit({0});  // something in flight so scoring applies
  EXPECT_EQ(sched.busy_channels({1, 2, 3}), 0);
  // Channel 2 accumulated 5000 ns of fresh block time > hot_block_ns.
  sched.refresh_telemetry({0, 0, 5000, 0});
  EXPECT_EQ(sched.busy_channels({1, 2, 3}), 1);
  EXPECT_FALSE(sched.would_admit({2}, 0));
  EXPECT_TRUE(sched.would_admit({1, 3}, 0));
  // No new block time since the last refresh: the delta cools off.
  sched.refresh_telemetry({0, 0, 5000, 0});
  EXPECT_EQ(sched.busy_channels({1, 2, 3}), 0);
  EXPECT_TRUE(sched.would_admit({2}, 0));
}

TEST(GroupScheduler, InFlightFootprintCountsAsBusy) {
  GroupScheduler sched{paced(500), 10};
  sched.admit({0, 1, 2});
  sched.admit({3, 4});
  EXPECT_EQ(sched.in_flight(), 2);
  EXPECT_EQ(sched.busy_channels({0, 3, 5, 6}), 2);
  // 2/4 busy: 2000 <= 500 * 4 — boundary admits at 50% tolerance.
  EXPECT_TRUE(sched.would_admit({0, 3, 5, 6}, 0));
  // 2/3 busy: 2000 > 500 * 3.
  EXPECT_FALSE(sched.would_admit({0, 3, 5}, 0));
}

TEST(GroupScheduler, RejectsBadConfig) {
  EXPECT_THROW(GroupScheduler(paced(-1), 4), std::invalid_argument);
  EXPECT_THROW(GroupScheduler(paced(1001), 4), std::invalid_argument);
  SchedulerConfig cfg = paced();
  cfg.max_defer_ticks = 0;
  EXPECT_THROW(GroupScheduler(cfg, 4), std::invalid_argument);
  EXPECT_THROW(GroupScheduler(paced(), -1), std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::traffic
