#include "topology/fat_tree.hpp"

#include <gtest/gtest.h>

#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/ordering.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/up_down.hpp"

namespace nimcast::topo {
namespace {

TEST(FatTree, DefaultStructure) {
  const Topology t = make_fat_tree(FatTreeConfig{});
  EXPECT_EQ(t.num_switches(), 12);
  EXPECT_EQ(t.num_hosts(), 64);
  EXPECT_EQ(t.switches().num_edges(), 8 * 4);
  EXPECT_TRUE(t.switches().connected());
  // Leaves host 8 each, spines none.
  for (SwitchId s = 0; s < 8; ++s) EXPECT_EQ(t.hosts_of(s).size(), 8u);
  for (SwitchId s = 8; s < 12; ++s) EXPECT_TRUE(t.hosts_of(s).empty());
}

TEST(FatTree, TrunkingMultipliesLinks) {
  FatTreeConfig cfg;
  cfg.trunk = 2;
  const Topology t = make_fat_tree(cfg);
  EXPECT_EQ(t.switches().num_edges(), 8 * 4 * 2);
}

TEST(FatTree, SpinesConnectToEveryLeaf) {
  const Topology t = make_fat_tree(FatTreeConfig{});
  for (SwitchId spine = 8; spine < 12; ++spine) {
    EXPECT_EQ(t.switches().degree(spine), 8);
  }
  for (SwitchId leaf = 0; leaf < 8; ++leaf) {
    EXPECT_EQ(t.switches().degree(leaf), 4);
  }
}

TEST(FatTree, UpDownRoutesAreTwoHopsAndDeadlockFree) {
  const Topology t = make_fat_tree(FatTreeConfig{});
  const routing::UpDownRouter router{t.switches()};
  EXPECT_TRUE(routing::deadlock_free(t.switches(), router));
  for (SwitchId a = 0; a < 8; ++a) {
    for (SwitchId b = 0; b < 8; ++b) {
      if (a == b) continue;
      // Leaf-to-leaf always goes through exactly one spine.
      EXPECT_EQ(router.route(a, b).hops(), 2u);
    }
  }
}

TEST(FatTree, MulticastRunsEndToEnd) {
  const Topology t = make_fat_tree(FatTreeConfig{});
  const routing::UpDownRouter router{t.switches()};
  const routing::RouteTable routes{t, router};
  const auto chain = core::cco_ordering(t, router);
  const auto members = core::arrange_participants(
      chain, chain[0], {chain[7], chain[15], chain[30], chain[45],
                        chain[60], chain[63], chain[33]});
  const auto tree = core::HostTree::bind(core::make_kbinomial(8, 2), members);
  const mcast::MulticastEngine engine{
      t, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{},
                                     net::NetworkConfig{},
                                     mcast::NiStyle::kSmartFpfs}};
  const auto result = engine.run(tree, 8);
  EXPECT_EQ(result.completions.size(), 7u);
}

TEST(FatTree, CcoGroupsLeavesContiguously) {
  const Topology t = make_fat_tree(FatTreeConfig{});
  const routing::UpDownRouter router{t.switches()};
  const auto chain = core::cco_ordering(t, router);
  ASSERT_EQ(chain.size(), 64u);
  // Each run of 8 consecutive chain entries shares one leaf switch.
  for (std::size_t block = 0; block < 8; ++block) {
    const SwitchId leaf = t.switch_of(chain[block * 8]);
    for (std::size_t i = 1; i < 8; ++i) {
      EXPECT_EQ(t.switch_of(chain[block * 8 + i]), leaf);
    }
  }
}

TEST(FatTree, RejectsBadConfig) {
  FatTreeConfig cfg;
  cfg.edge_switches = 0;
  EXPECT_THROW((void)make_fat_tree(cfg), std::invalid_argument);
  cfg = FatTreeConfig{};
  cfg.trunk = 0;
  EXPECT_THROW((void)make_fat_tree(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::topo
