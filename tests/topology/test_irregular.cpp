#include "topology/irregular.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace nimcast::topo {
namespace {

TEST(Irregular, PaperDefaultConfigIsFeasible) {
  sim::Rng rng{1};
  const Topology t = make_irregular(IrregularConfig{}, rng);
  EXPECT_EQ(t.num_switches(), 16);
  EXPECT_EQ(t.num_hosts(), 64);
  EXPECT_TRUE(t.switches().connected());
}

TEST(Irregular, PortBudgetRespected) {
  sim::Rng rng{2};
  const IrregularConfig cfg;
  const Topology t = make_irregular(cfg, rng);
  for (SwitchId s = 0; s < t.num_switches(); ++s) {
    EXPECT_LE(t.ports_used(s), cfg.ports_per_switch);
  }
}

TEST(Irregular, HostsSpreadRoundRobin) {
  sim::Rng rng{3};
  const Topology t = make_irregular(IrregularConfig{}, rng);
  for (SwitchId s = 0; s < 16; ++s) {
    EXPECT_EQ(t.hosts_of(s).size(), 4u);
  }
  EXPECT_EQ(t.switch_of(0), 0);
  EXPECT_EQ(t.switch_of(16), 0);
  EXPECT_EQ(t.switch_of(17), 1);
}

TEST(Irregular, NoParallelLinksByDefault) {
  sim::Rng rng{4};
  const Topology t = make_irregular(IrregularConfig{}, rng);
  const auto& g = t.switches();
  std::set<std::pair<SwitchId, SwitchId>> seen;
  for (LinkId e = 0; e < g.num_edges(); ++e) {
    auto a = g.edge(e).a;
    auto b = g.edge(e).b;
    if (a > b) std::swap(a, b);
    EXPECT_TRUE(seen.emplace(a, b).second) << "parallel link " << a << "-" << b;
  }
}

TEST(Irregular, DifferentSeedsGiveDifferentWirings) {
  sim::Rng r1{10};
  sim::Rng r2{11};
  const Topology a = make_irregular(IrregularConfig{}, r1);
  const Topology b = make_irregular(IrregularConfig{}, r2);
  bool differ = a.switches().num_edges() != b.switches().num_edges();
  if (!differ) {
    for (LinkId e = 0; e < a.switches().num_edges(); ++e) {
      if (a.switches().edge(e).a != b.switches().edge(e).a ||
          a.switches().edge(e).b != b.switches().edge(e).b) {
        differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differ);
}

TEST(Irregular, SameSeedReproducesWiring) {
  sim::Rng r1{10};
  sim::Rng r2{10};
  const Topology a = make_irregular(IrregularConfig{}, r1);
  const Topology b = make_irregular(IrregularConfig{}, r2);
  ASSERT_EQ(a.switches().num_edges(), b.switches().num_edges());
  for (LinkId e = 0; e < a.switches().num_edges(); ++e) {
    EXPECT_EQ(a.switches().edge(e).a, b.switches().edge(e).a);
    EXPECT_EQ(a.switches().edge(e).b, b.switches().edge(e).b);
  }
}

TEST(Irregular, RejectsTooManyHostsPerSwitch) {
  IrregularConfig cfg;
  cfg.num_switches = 2;
  cfg.num_hosts = 20;  // 10 hosts per switch > 8 ports
  cfg.ports_per_switch = 8;
  sim::Rng rng{5};
  EXPECT_THROW((void)make_irregular(cfg, rng), std::invalid_argument);
}

TEST(Irregular, RejectsWhenMinSwitchLinksUnmet) {
  IrregularConfig cfg;
  cfg.num_switches = 4;
  cfg.num_hosts = 28;  // 7 hosts per switch leaves 1 spare < min 2
  cfg.ports_per_switch = 8;
  sim::Rng rng{6};
  EXPECT_THROW((void)make_irregular(cfg, rng), std::invalid_argument);
}

TEST(Irregular, SmallConfigNeedsTrunking) {
  // Two switches that must carry >= 2 inter-switch links each can only be
  // wired with parallel links (a trunk); the simple-graph draw must report
  // infeasibility rather than loop forever.
  IrregularConfig cfg;
  cfg.num_switches = 2;
  cfg.num_hosts = 4;
  cfg.ports_per_switch = 4;
  sim::Rng rng{7};
  EXPECT_THROW((void)make_irregular(cfg, rng), std::runtime_error);

  cfg.allow_parallel_links = true;
  const Topology t = make_irregular(cfg, rng);
  EXPECT_TRUE(t.switches().connected());
  EXPECT_EQ(t.num_hosts(), 4);
  EXPECT_EQ(t.switches().num_edges(), 2);  // the 0-1 trunk
}

TEST(Irregular, ManySeedsAlwaysConnectedAndWithinPorts) {
  const IrregularConfig cfg;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    sim::Rng rng{seed};
    const Topology t = make_irregular(cfg, rng);
    EXPECT_TRUE(t.switches().connected()) << "seed " << seed;
    for (SwitchId s = 0; s < t.num_switches(); ++s) {
      EXPECT_LE(t.ports_used(s), cfg.ports_per_switch) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace nimcast::topo
