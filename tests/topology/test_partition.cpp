#include "topology/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"
#include "topology/fat_tree.hpp"
#include "topology/irregular.hpp"

namespace nimcast::topo {
namespace {

Graph ring(std::int32_t n) {
  std::vector<Graph::Edge> edges;
  for (std::int32_t i = 0; i < n; ++i) {
    edges.push_back(Graph::Edge{i, (i + 1) % n});
  }
  return Graph{n, std::move(edges)};
}

std::vector<std::int32_t> sizes(const std::vector<std::int32_t>& part,
                                std::int32_t parts) {
  std::vector<std::int32_t> count(static_cast<std::size_t>(parts), 0);
  for (std::int32_t p : part) ++count[static_cast<std::size_t>(p)];
  return count;
}

TEST(Partition, RejectsNonPositiveParts) {
  EXPECT_THROW(partition_switches(ring(4), 0), std::invalid_argument);
}

TEST(Partition, SinglePartAssignsEverythingToZero) {
  const auto part = partition_switches(ring(6), 1);
  EXPECT_EQ(part, (std::vector<std::int32_t>{0, 0, 0, 0, 0, 0}));
  EXPECT_EQ(cut_links(ring(6), part), 0);
}

TEST(Partition, BalancedAndCompleteOnARing) {
  const Graph g = ring(16);
  for (std::int32_t parts : {2, 3, 4, 8}) {
    const auto part = partition_switches(g, parts);
    ASSERT_EQ(part.size(), 16u);
    const auto count = sizes(part, parts);
    const auto [lo, hi] = std::minmax_element(count.begin(), count.end());
    EXPECT_LE(*hi - *lo, 1) << parts << " parts";
    // A contiguous-arc partition of a ring cuts exactly `parts` links;
    // the greedy growth must find it (the global optimum here).
    EXPECT_EQ(cut_links(g, part), parts) << parts << " parts";
  }
}

TEST(Partition, MorePartsThanSwitchesDegradesGracefully) {
  const auto part = partition_switches(ring(3), 8);
  ASSERT_EQ(part.size(), 3u);
  // Three singleton parts, indices within [0, 3).
  for (std::int32_t p : part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
  std::vector<std::int32_t> sorted = part;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::int32_t>{0, 1, 2}));
}

TEST(Partition, DeterministicOnGeneratedTopologies) {
  const Topology fat = make_fat_tree(FatTreeConfig{});
  const auto a = partition_switches(fat.switches(), 4);
  const auto b = partition_switches(fat.switches(), 4);
  EXPECT_EQ(a, b);

  sim::Rng rng{1234};
  const Topology irr = make_irregular(IrregularConfig{}, rng);
  EXPECT_EQ(partition_switches(irr.switches(), 4),
            partition_switches(irr.switches(), 4));
}

TEST(Partition, CutIsFarBelowWorstCaseOnIrregularFabrics) {
  sim::Rng rng{99};
  const Topology t = make_irregular(IrregularConfig{}, rng);
  const Graph& g = t.switches();
  const auto part = partition_switches(g, 4);
  const auto count = sizes(part, 4);
  const auto [lo, hi] = std::minmax_element(count.begin(), count.end());
  EXPECT_LE(*hi - *lo, 1);
  // A random balanced 4-way assignment cuts ~3/4 of the links in
  // expectation; the greedy grower must do meaningfully better.
  EXPECT_LT(cut_links(g, part), g.num_edges() * 3 / 4);
}

TEST(Partition, DisconnectedGraphsStillFullyAssigned) {
  // Two disjoint triangles.
  std::vector<Graph::Edge> edges{{0, 1}, {1, 2}, {2, 0},
                                 {3, 4}, {4, 5}, {5, 3}};
  const Graph g{6, std::move(edges)};
  const auto part = partition_switches(g, 2);
  ASSERT_EQ(part.size(), 6u);
  const auto count = sizes(part, 2);
  EXPECT_EQ(count[0], 3);
  EXPECT_EQ(count[1], 3);
  // The natural split is one triangle per part: zero cut links.
  EXPECT_EQ(cut_links(g, part), 0);
}

}  // namespace
}  // namespace nimcast::topo
