#include "topology/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace nimcast::topo {
namespace {

Graph triangle() { return Graph{3, {{0, 1}, {1, 2}, {0, 2}}}; }

TEST(Graph, SizesAndEdgeAccess) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.edge(0).a, 0);
  EXPECT_EQ(g.edge(0).b, 1);
}

TEST(Graph, EdgeOtherEndpoint) {
  const Graph g = triangle();
  EXPECT_EQ(g.edge(0).other(0), 1);
  EXPECT_EQ(g.edge(0).other(1), 0);
}

TEST(Graph, IncidenceAndDegree) {
  const Graph g = triangle();
  for (SwitchId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2);
  auto inc = g.incident(1);
  std::vector<LinkId> links{inc.begin(), inc.end()};
  std::sort(links.begin(), links.end());
  EXPECT_EQ(links, (std::vector<LinkId>{0, 1}));
}

TEST(Graph, ParallelLinksCountSeparately) {
  const Graph g{2, {{0, 1}, {0, 1}}};
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW((Graph{2, {{1, 1}}}), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW((Graph{2, {{0, 2}}}), std::invalid_argument);
  EXPECT_THROW((Graph{2, {{-1, 0}}}), std::invalid_argument);
}

TEST(Graph, BfsLevels) {
  // Path 0-1-2-3 plus chord 0-2.
  const Graph g{4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}}};
  const auto levels = g.bfs_levels(0);
  EXPECT_EQ(levels, (std::vector<std::int32_t>{0, 1, 1, 2}));
}

TEST(Graph, BfsLevelsUnreachableIsMinusOne) {
  const Graph g{3, {{0, 1}}};
  const auto levels = g.bfs_levels(0);
  EXPECT_EQ(levels[2], -1);
}

TEST(Graph, ConnectedDetection) {
  EXPECT_TRUE(triangle().connected());
  EXPECT_FALSE((Graph{3, {{0, 1}}}).connected());
  EXPECT_TRUE((Graph{1, {}}).connected());
  EXPECT_TRUE((Graph{0, {}}).connected());
}

TEST(Graph, IsolatedVertexGraph) {
  const Graph g{2, {}};
  EXPECT_EQ(g.degree(0), 0);
  EXPECT_TRUE(g.incident(0).empty());
  EXPECT_FALSE(g.connected());
}

}  // namespace
}  // namespace nimcast::topo
