#include "topology/kary_ncube.hpp"

#include <gtest/gtest.h>

namespace nimcast::topo {
namespace {

TEST(KAryNCube, MeshSizesAndEdges) {
  const KAryNCubeConfig cfg{4, 2, false};  // 4x4 mesh
  const Topology t = make_kary_ncube(cfg);
  EXPECT_EQ(t.num_switches(), 16);
  EXPECT_EQ(t.num_hosts(), 16);
  // 2 dims * 4 rows * 3 links = 24 links.
  EXPECT_EQ(t.switches().num_edges(), 24);
  EXPECT_TRUE(t.switches().connected());
}

TEST(KAryNCube, TorusAddsWraparound) {
  const KAryNCubeConfig cfg{4, 2, true};
  const Topology t = make_kary_ncube(cfg);
  // Each row/column gains one wrap link: 2 * 4 * 4 = 32 links.
  EXPECT_EQ(t.switches().num_edges(), 32);
}

TEST(KAryNCube, Radix2TorusDoesNotDoubleLinks) {
  // With radix 2 the wrap link would duplicate the mesh link.
  const KAryNCubeConfig cfg{2, 3, true};
  const Topology t = make_kary_ncube(cfg);
  EXPECT_EQ(t.switches().num_edges(), 12);  // binary 3-cube
}

TEST(KAryNCube, HypercubeStructure) {
  const KAryNCubeConfig cfg{2, 4, false};  // binary 4-cube
  const Topology t = make_kary_ncube(cfg);
  EXPECT_EQ(t.num_switches(), 16);
  EXPECT_EQ(t.switches().num_edges(), 32);  // n * 2^(n-1)
  for (SwitchId s = 0; s < 16; ++s) {
    EXPECT_EQ(t.switches().degree(s), 4);
  }
}

TEST(KAryNCube, OneHostPerRouter) {
  const Topology t = make_kary_ncube(KAryNCubeConfig{3, 2, false});
  for (HostId h = 0; h < t.num_hosts(); ++h) {
    EXPECT_EQ(t.switch_of(h), h);
  }
}

TEST(KAryNCube, CoordinateRoundTrip) {
  const KAryNCubeConfig cfg{5, 3, false};
  for (std::int32_t v = 0; v < 125; ++v) {
    const auto c = to_coords(v, cfg);
    EXPECT_EQ(from_coords(c, cfg), v);
    for (auto x : c) {
      EXPECT_GE(x, 0);
      EXPECT_LT(x, 5);
    }
  }
}

TEST(KAryNCube, CoordsAreLittleEndianInDimension) {
  const KAryNCubeConfig cfg{4, 2, false};
  const auto c = to_coords(7, cfg);  // 7 = 3 + 1*4
  EXPECT_EQ(c[0], 3);
  EXPECT_EQ(c[1], 1);
}

TEST(KAryNCube, MeshNeighborsDifferInOneCoordinate) {
  const KAryNCubeConfig cfg{3, 3, false};
  const Topology t = make_kary_ncube(cfg);
  const auto& g = t.switches();
  for (LinkId e = 0; e < g.num_edges(); ++e) {
    const auto ca = to_coords(g.edge(e).a, cfg);
    const auto cb = to_coords(g.edge(e).b, cfg);
    int diffs = 0;
    for (std::size_t d = 0; d < ca.size(); ++d) {
      if (ca[d] != cb[d]) {
        ++diffs;
        EXPECT_EQ(std::abs(ca[d] - cb[d]), 1);
      }
    }
    EXPECT_EQ(diffs, 1);
  }
}

TEST(KAryNCube, RejectsBadConfig) {
  EXPECT_THROW((void)make_kary_ncube(KAryNCubeConfig{1, 2, false}),
               std::invalid_argument);
  EXPECT_THROW((void)make_kary_ncube(KAryNCubeConfig{4, 0, false}),
               std::invalid_argument);
  EXPECT_THROW((void)make_kary_ncube(KAryNCubeConfig{100, 4, false}),
               std::invalid_argument);
}

TEST(KAryNCube, NameDescribesShape) {
  EXPECT_NE(make_kary_ncube(KAryNCubeConfig{4, 2, true}).name().find("torus"),
            std::string::npos);
  EXPECT_NE(make_kary_ncube(KAryNCubeConfig{4, 2, false}).name().find("mesh"),
            std::string::npos);
}

}  // namespace
}  // namespace nimcast::topo
