#include "topology/topology.hpp"

#include <gtest/gtest.h>

namespace nimcast::topo {
namespace {

Topology two_switch() {
  return Topology{Graph{2, {{0, 1}}}, {0, 0, 1, 1}, "test"};
}

TEST(Topology, BasicAccessors) {
  const Topology t = two_switch();
  EXPECT_EQ(t.num_switches(), 2);
  EXPECT_EQ(t.num_hosts(), 4);
  EXPECT_EQ(t.switch_of(0), 0);
  EXPECT_EQ(t.switch_of(3), 1);
  EXPECT_EQ(t.name(), "test");
}

TEST(Topology, HostsOfSwitchAscending) {
  const Topology t = two_switch();
  EXPECT_EQ(t.hosts_of(0), (std::vector<HostId>{0, 1}));
  EXPECT_EQ(t.hosts_of(1), (std::vector<HostId>{2, 3}));
}

TEST(Topology, PortsUsedCountsHostsAndLinks) {
  const Topology t = two_switch();
  EXPECT_EQ(t.ports_used(0), 3);  // 2 hosts + 1 link
  EXPECT_EQ(t.ports_used(1), 3);
}

TEST(Topology, RejectsHostOnMissingSwitch) {
  EXPECT_THROW((Topology{Graph{2, {{0, 1}}}, {0, 5}, "bad"}),
               std::invalid_argument);
}

TEST(Topology, SwitchWithNoHosts) {
  const Topology t{Graph{3, {{0, 1}, {1, 2}}}, {0, 2}, "sparse"};
  EXPECT_TRUE(t.hosts_of(1).empty());
  EXPECT_EQ(t.ports_used(1), 2);
}

}  // namespace
}  // namespace nimcast::topo
