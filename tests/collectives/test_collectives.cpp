#include "collectives/collective_engine.hpp"

#include <gtest/gtest.h>

#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"

namespace nimcast::collectives {
namespace {

struct StarRig {
  topo::Topology topology{topo::Graph{1, {}},
                          std::vector<topo::SwitchId>(12, 0), "star"};
  routing::UpDownRouter router{topology.switches()};
  routing::RouteTable routes{topology, router};
  CollectiveEngine engine{topology, routes, CollectiveEngine::Config{}};

  CollectiveResult run(CollectiveKind kind, std::int32_t n, std::int32_t m,
                       std::int32_t k = 2) const {
    core::Chain order;
    for (std::int32_t i = 0; i < n; ++i) order.push_back(i);
    const auto tree =
        core::HostTree::bind(core::make_kbinomial(n, k), order);
    return engine.run(kind, tree, m);
  }
};

TEST(Collectives, BroadcastMatchesFpfsMulticastExactly) {
  // The collective broadcast is the FPFS multicast with a different
  // implementation; latencies must agree to the nanosecond.
  StarRig rig;
  mcast::MulticastEngine mc{
      rig.topology, rig.routes,
      mcast::MulticastEngine::Config{netif::SystemParams{},
                                     net::NetworkConfig{},
                                     mcast::NiStyle::kSmartFpfs}};
  for (const std::int32_t n : {3, 6, 10}) {
    for (const std::int32_t m : {1, 4, 9}) {
      core::Chain order;
      for (std::int32_t i = 0; i < n; ++i) order.push_back(i);
      const auto tree =
          core::HostTree::bind(core::make_kbinomial(n, 2), order);
      EXPECT_EQ(rig.engine.run(CollectiveKind::kBroadcast, tree, m).latency,
                mc.run(tree, m).latency)
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(Collectives, BroadcastDeliversToEveryNode) {
  StarRig rig;
  const auto r = rig.run(CollectiveKind::kBroadcast, 8, 3);
  EXPECT_EQ(r.completions.size(), 7u);
  EXPECT_EQ(r.packets_injected, 7 * 3);
}

TEST(Collectives, ScatterDeliversDistinctMessages) {
  StarRig rig;
  const auto r = rig.run(CollectiveKind::kScatter, 8, 3);
  EXPECT_EQ(r.completions.size(), 7u);
  // Packets traverse one tree edge per level: sum of depths * m.
  const auto tree = core::make_kbinomial(8, 2);
  const auto depths = tree.single_packet_steps();
  // depth here = tree level count, not send steps; recompute levels.
  std::int64_t level_sum = 0;
  for (std::int32_t r2 = 1; r2 < 8; ++r2) {
    std::int32_t lv = 0;
    for (std::int32_t v = r2; v != 0;
         v = tree.parent[static_cast<std::size_t>(v)]) {
      ++lv;
    }
    level_sum += lv;
  }
  EXPECT_EQ(r.packets_injected, level_sum * 3);
  (void)depths;
}

TEST(Collectives, ScatterOnDirectStarHasExactSerializedLatency) {
  // Root with n-1 direct children on one switch: the root NI pushes
  // (n-1)*m packets back to back; the last one lands after
  // t_s + (n-1)*m*t_snd + wire + t_rcv + t_r.
  StarRig rig;
  const std::int32_t n = 6;
  const std::int32_t m = 4;
  const auto r =
      rig.run(CollectiveKind::kScatter, n, m, /*k=*/core::ceil_log2(n));
  core::Chain order;
  for (std::int32_t i = 0; i < n; ++i) order.push_back(i);
  core::HostTree star;
  star.root = 0;
  star.nodes = order;
  star.children[0] = {};
  for (std::int32_t i = 1; i < n; ++i) {
    star.children[0].push_back(i);
    star.children[i] = {};
  }
  const auto direct = rig.engine.run(CollectiveKind::kScatter, star, m);
  const netif::SystemParams p;
  const sim::Time expected = p.t_s + p.t_snd * ((n - 1) * m) +
                             sim::Time::us(0.6) + p.t_rcv + p.t_r;
  EXPECT_EQ(direct.latency, expected);
  (void)r;
}

TEST(Collectives, GatherRootReceivesEverything) {
  StarRig rig;
  const auto r = rig.run(CollectiveKind::kGather, 9, 2);
  ASSERT_EQ(r.completions.size(), 1u);
  EXPECT_EQ(r.completions.front().first, 0);
}

TEST(Collectives, GatherLatencyGrowsWithMessageLength) {
  StarRig rig;
  sim::Time prev;
  for (const std::int32_t m : {1, 2, 4, 8}) {
    const auto r = rig.run(CollectiveKind::kGather, 10, m);
    EXPECT_GT(r.latency, prev);
    prev = r.latency;
  }
}

TEST(Collectives, ReduceCompletesAtRootOnly) {
  StarRig rig;
  const auto r = rig.run(CollectiveKind::kReduce, 10, 4);
  ASSERT_EQ(r.completions.size(), 1u);
  EXPECT_EQ(r.completions.front().first, 0);
  // Exactly one packet per tree edge per index.
  EXPECT_EQ(r.packets_injected, 9 * 4);
}

TEST(Collectives, InNetworkReduceBeatsGatherAtScale) {
  // The point of in-network combining: the root folds only its own
  // children's streams instead of ingesting every node's full message.
  sim::Rng rng{3};
  const auto topology = topo::make_irregular(topo::IrregularConfig{}, rng);
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  const CollectiveEngine engine{topology, routes,
                                CollectiveEngine::Config{}};
  const auto chain = core::cco_ordering(topology, router);
  const auto tree = core::HostTree::bind(core::make_kbinomial(64, 3), chain);
  const auto gather = engine.run(CollectiveKind::kGather, tree, 4);
  const auto reduce = engine.run(CollectiveKind::kReduce, tree, 4);
  EXPECT_LT(reduce.latency, gather.latency);
  EXPECT_LT(reduce.packets_injected, gather.packets_injected);
}

TEST(Collectives, AllReduceBoundedByPhasesAndBeatsSequential) {
  StarRig rig;
  const std::int32_t n = 10;
  const std::int32_t m = 6;
  const auto reduce = rig.run(CollectiveKind::kReduce, n, m);
  const auto bcast = rig.run(CollectiveKind::kBroadcast, n, m);
  const auto allreduce = rig.run(CollectiveKind::kAllReduce, n, m);
  EXPECT_GT(allreduce.latency, reduce.latency);
  // Pipelining the down phase behind the up phase beats running the two
  // collectives back to back (minus the double-counted host overheads).
  EXPECT_LT(allreduce.latency, reduce.latency + bcast.latency);
  EXPECT_EQ(allreduce.completions.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(allreduce.packets_injected, 2 * (n - 1) * m);
}

TEST(Collectives, EveryKindRunsOnIrregularNetwork) {
  sim::Rng rng{17};
  const auto topology = topo::make_irregular(topo::IrregularConfig{}, rng);
  const routing::UpDownRouter router{topology.switches()};
  const routing::RouteTable routes{topology, router};
  const CollectiveEngine engine{topology, routes,
                                CollectiveEngine::Config{}};
  const auto chain = core::cco_ordering(topology, router);
  const auto tree = core::HostTree::bind(core::make_kbinomial(32, 2),
                                         core::Chain{chain.begin(),
                                                     chain.begin() + 32});
  for (const auto kind :
       {CollectiveKind::kBroadcast, CollectiveKind::kScatter,
        CollectiveKind::kGather, CollectiveKind::kReduce,
        CollectiveKind::kAllReduce}) {
    const auto r = engine.run(kind, tree, 3);
    EXPECT_GT(r.latency, sim::Time::zero()) << to_string(kind);
  }
}

TEST(Collectives, CombiningCostShiftsReduceLatency) {
  StarRig rig;
  CollectiveEngine::Config slow;
  slow.t_comb = sim::Time::us(10.0);
  const CollectiveEngine slow_engine{rig.topology, rig.routes, slow};
  core::Chain order;
  for (std::int32_t i = 0; i < 10; ++i) order.push_back(i);
  const auto tree = core::HostTree::bind(core::make_kbinomial(10, 2), order);
  const auto fast = rig.engine.run(CollectiveKind::kReduce, tree, 4);
  const auto expensive = slow_engine.run(CollectiveKind::kReduce, tree, 4);
  EXPECT_GT(expensive.latency, fast.latency);
}

TEST(Collectives, RejectsBadArguments) {
  StarRig rig;
  core::HostTree t;
  t.root = 0;
  t.nodes = {0};
  t.children[0] = {};
  EXPECT_THROW((void)rig.engine.run(CollectiveKind::kReduce, t, 1),
               std::invalid_argument);
  EXPECT_THROW((void)rig.run(CollectiveKind::kGather, 4, 0),
               std::invalid_argument);
}

TEST(Collectives, KindNames) {
  EXPECT_STREQ(to_string(CollectiveKind::kBroadcast), "broadcast");
  EXPECT_STREQ(to_string(CollectiveKind::kScatter), "scatter");
  EXPECT_STREQ(to_string(CollectiveKind::kGather), "gather");
  EXPECT_STREQ(to_string(CollectiveKind::kReduce), "reduce");
  EXPECT_STREQ(to_string(CollectiveKind::kAllReduce), "allreduce");
}

}  // namespace
}  // namespace nimcast::collectives
