// Parameterized property sweep over every collective kind and a grid of
// (n, m, k) shapes: completion semantics, packet conservation and
// latency ordering invariants.

#include <gtest/gtest.h>

#include <tuple>

#include "collectives/collective_engine.hpp"
#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "routing/up_down.hpp"

namespace nimcast::collectives {
namespace {

using Params = std::tuple<std::int32_t, std::int32_t, std::int32_t,
                          CollectiveKind>;  // n, m, k, kind

class CollectiveSweep : public ::testing::TestWithParam<Params> {
 protected:
  static constexpr std::int32_t kHosts = 20;

  CollectiveSweep()
      : topology_{topo::Graph{1, {}},
                  std::vector<topo::SwitchId>(kHosts, 0), "star"},
        router_{topology_.switches()},
        routes_{topology_, router_},
        engine_{topology_, routes_, CollectiveEngine::Config{}} {}

  CollectiveResult run(std::int32_t n, std::int32_t m, std::int32_t k,
                       CollectiveKind kind) const {
    core::Chain order;
    for (std::int32_t i = 0; i < n; ++i) order.push_back(i);
    return engine_.run(
        kind, core::HostTree::bind(core::make_kbinomial(n, k), order), m);
  }

  static std::int64_t sum_of_depths(const core::RankTree& t) {
    std::int64_t total = 0;
    for (std::int32_t r = 1; r < t.size(); ++r) {
      std::int32_t v = r;
      while (v != 0) {
        v = t.parent[static_cast<std::size_t>(v)];
        ++total;
      }
    }
    return total;
  }

  topo::Topology topology_;
  routing::UpDownRouter router_;
  routing::RouteTable routes_;
  CollectiveEngine engine_;
};

TEST_P(CollectiveSweep, CompletionSemantics) {
  const auto [n, m, k, kind] = GetParam();
  const auto result = run(n, m, k, kind);
  std::size_t expected = 0;
  switch (kind) {
    case CollectiveKind::kBroadcast:
    case CollectiveKind::kScatter:
      expected = static_cast<std::size_t>(n - 1);
      break;
    case CollectiveKind::kGather:
    case CollectiveKind::kReduce:
      expected = 1;
      break;
    case CollectiveKind::kAllReduce:
      expected = static_cast<std::size_t>(n);
      break;
  }
  EXPECT_EQ(result.completions.size(), expected);
  for (const auto& [h, t] : result.completions) {
    EXPECT_LE(t, result.latency);
    EXPECT_GT(t, sim::Time::zero());
  }
}

TEST_P(CollectiveSweep, PacketConservation) {
  const auto [n, m, k, kind] = GetParam();
  const auto result = run(n, m, k, kind);
  const auto tree = core::make_kbinomial(n, k);
  std::int64_t expected = 0;
  switch (kind) {
    case CollectiveKind::kBroadcast:
    case CollectiveKind::kReduce:
      expected = static_cast<std::int64_t>(n - 1) * m;  // one per edge
      break;
    case CollectiveKind::kAllReduce:
      expected = 2 * static_cast<std::int64_t>(n - 1) * m;
      break;
    case CollectiveKind::kScatter:
    case CollectiveKind::kGather:
      expected = sum_of_depths(tree) * m;  // every packet walks its path
      break;
  }
  EXPECT_EQ(result.packets_injected, expected);
}

TEST_P(CollectiveSweep, MorePacketsNeverFaster) {
  const auto [n, m, k, kind] = GetParam();
  if (m == 1) return;
  EXPECT_GE(run(n, m, k, kind).latency, run(n, m - 1, k, kind).latency);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollectiveSweep,
    ::testing::Combine(::testing::Values(2, 6, 12, 20),  // n
                       ::testing::Values(1, 4),          // m
                       ::testing::Values(1, 2, 4),       // k
                       ::testing::Values(CollectiveKind::kBroadcast,
                                         CollectiveKind::kScatter,
                                         CollectiveKind::kGather,
                                         CollectiveKind::kReduce,
                                         CollectiveKind::kAllReduce)),
    [](const ::testing::TestParamInfo<Params>& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_m" +
             std::to_string(std::get<1>(pinfo.param)) + "_k" +
             std::to_string(std::get<2>(pinfo.param)) + "_" +
             to_string(std::get<3>(pinfo.param));
    });

}  // namespace
}  // namespace nimcast::collectives
