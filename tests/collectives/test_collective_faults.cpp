// Degraded-mode collectives: every CollectiveKind must survive fabric
// faults under RepairMode::kDegradeAndContinue — a queryable per-host
// verdict instead of an exception, tree repair re-parenting the
// survivors in contention-free order, and a survivor set that matches
// the route table's reachability exactly.

#include <gtest/gtest.h>

#include <algorithm>

#include "collectives/collective_engine.hpp"
#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "network/fault_plan.hpp"
#include "routing/repair.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"

namespace nimcast::collectives {
namespace {

constexpr CollectiveKind kAllKinds[] = {
    CollectiveKind::kBroadcast, CollectiveKind::kScatter,
    CollectiveKind::kGather, CollectiveKind::kReduce,
    CollectiveKind::kAllReduce};

struct Rig {
  topo::Topology topology;
  routing::UpDownRouter router;
  routing::RouteTable routes;
  core::Chain cco;

  explicit Rig(std::uint64_t seed = 3)
      : topology{[&] {
          sim::Rng rng{seed};
          return topo::make_irregular(topo::IrregularConfig{}, rng);
        }()},
        router{topology.switches()},
        routes{topology, router},
        cco{core::cco_ordering(topology, router)} {}

  [[nodiscard]] core::HostTree tree(std::int32_t n, std::int32_t m) const {
    const core::Chain members{cco.begin(), cco.begin() + n};
    return core::HostTree::bind(
        core::make_kbinomial(n, core::optimal_k(n, m).k), members);
  }
};

CollectiveEngine::Config faulty_config(net::FaultPlan faults) {
  CollectiveEngine::Config cfg;
  cfg.network.faults = std::move(faults);
  return cfg;
}

/// Two switches joined by one bridge link; hosts 0,1 on switch 0 and
/// hosts 2,3 on switch 1 — the minimal partitionable fabric.
struct BridgeRig {
  topo::Topology topology{topo::Graph{2, {{0, 1}}}, {0, 0, 1, 1}, "bridge"};
  routing::UpDownRouter router{topology.switches()};
  routing::RouteTable routes{topology, router};

  /// Root 0 with children {1, 2} and 1 -> {3}: the down path to host 3
  /// hops through host 1's NI before crossing the bridge.
  [[nodiscard]] static core::HostTree chain_tree() {
    core::HostTree t;
    t.root = 0;
    t.nodes = {0, 1, 2, 3};
    t.children[0] = {1, 2};
    t.children[1] = {3};
    t.children[2] = {};
    t.children[3] = {};
    return t;
  }
};

TEST(CollectiveFaults, RootSwitchDeathMidScatterFailsWithoutThrowing) {
  const Rig rig;
  const auto tree = rig.tree(16, 4);
  net::FaultPlan plan;
  // t_s = 12.5us: the root dies before its first packet reaches the wire.
  plan.switch_down(sim::Time::us(1.0), rig.topology.switch_of(tree.root));
  const CollectiveEngine engine{rig.topology, rig.routes,
                                faulty_config(plan)};
  CollectiveResult r;
  ASSERT_NO_THROW(r = engine.run(CollectiveKind::kScatter, tree, 4));
  EXPECT_EQ(r.outcome, mcast::Outcome::kFailed);
  EXPECT_EQ(r.delivered_count(), 0);
  EXPECT_EQ(r.repairs, 0);  // a dead root cannot re-initiate
  EXPECT_FALSE(r.root_alive);
  EXPECT_TRUE(r.survivors().empty());
}

TEST(CollectiveFaults, LeafSwitchDeathMidGatherYieldsExactSurvivorSet) {
  const Rig rig;
  const auto tree = rig.tree(16, 4);
  const topo::HostId victim = tree.nodes.back();
  const topo::SwitchId dead = rig.topology.switch_of(victim);
  ASSERT_NE(dead, rig.topology.switch_of(tree.root));
  net::FaultPlan plan;
  plan.switch_down(sim::Time::us(1.0), dead);
  const CollectiveEngine engine{rig.topology, rig.routes,
                                faulty_config(plan)};
  CollectiveResult r;
  ASSERT_NO_THROW(r = engine.run(CollectiveKind::kGather, tree, 4));
  EXPECT_EQ(r.outcome, mcast::Outcome::kPartial);
  EXPECT_GT(r.delivered_count(), 0);
  EXPECT_LT(r.delivery_ratio(), 1.0);

  // The survivor set is exactly the rebuilt route table's reachability
  // verdict on the post-fault fabric — no more, no less.
  topo::SubgraphMask mask;
  mask.dead_switch.assign(
      static_cast<std::size_t>(rig.topology.num_switches()), false);
  mask.dead_switch[static_cast<std::size_t>(dead)] = true;
  const auto rebuilt = routing::rebuild_updown(rig.topology, mask, 1);
  ASSERT_EQ(r.participants.size(), 15u);
  for (const auto& st : r.participants) {
    EXPECT_EQ(st.reachable, rebuilt->reachable(tree.root, st.host))
        << "host " << st.host;
    // The fault lands before anyone's t_s, so delivery and reachability
    // coincide exactly here.
    EXPECT_EQ(st.delivered, st.reachable) << "host " << st.host;
  }
  const auto surv = r.survivors();
  EXPECT_TRUE(std::find(surv.begin(), surv.end(), victim) == surv.end());
}

TEST(CollectiveFaults, AllReduceDownPhaseFaultKeepsContributorsComplete) {
  // Cut the bridge just after the root finishes combining: the reduction
  // is complete (every contribution folded) but the result cannot reach
  // the hosts across the bridge — kPartial with full contributor
  // accounting, and no repair possible across a dead partition.
  const BridgeRig rig;
  const auto tree = BridgeRig::chain_tree();
  const std::int32_t m = 4;

  const CollectiveEngine clean{rig.topology, rig.routes,
                               CollectiveEngine::Config{}};
  const auto fault_free = clean.run(CollectiveKind::kAllReduce, tree, m);
  sim::Time root_completed;
  for (const auto& [h, t] : fault_free.completions) {
    if (h == tree.root) root_completed = t;
  }
  ASSERT_GT(root_completed, sim::Time::zero());
  // The root's NI finished the up phase t_r before the recorded host
  // completion; the last down-phase packets leave the NI t_snd later.
  const netif::SystemParams params;
  const sim::Time cut = root_completed - params.t_r + sim::Time::us(0.1);

  net::FaultPlan plan;
  plan.link_down(cut, 0);
  const CollectiveEngine engine{rig.topology, rig.routes,
                                faulty_config(plan)};
  CollectiveResult r;
  ASSERT_NO_THROW(r = engine.run(CollectiveKind::kAllReduce, tree, m));
  EXPECT_EQ(r.outcome, mcast::Outcome::kPartial);
  // Up phase completed before the cut: all four contributions folded.
  ASSERT_EQ(r.contributors.size(), 4u);
  EXPECT_EQ(r.repairs, 0);  // nothing reachable left to repair toward
  for (const auto& st : r.participants) {
    const bool same_side = rig.topology.switch_of(st.host) ==
                           rig.topology.switch_of(tree.root);
    EXPECT_EQ(st.delivered, same_side) << "host " << st.host;
    EXPECT_EQ(st.reachable, same_side) << "host " << st.host;
  }
}

TEST(CollectiveFaults, RevivedLinkLetsRepairRoundComplete) {
  // Bridge dies before the operation starts and recovers long after the
  // initial attempt drains; the kLinkUp rebuild (fresh route epoch) makes
  // the far side reachable again, and the repair round re-parents the
  // missing hosts and completes the broadcast.
  const BridgeRig rig;
  core::HostTree star;
  star.root = 0;
  star.nodes = {0, 1, 2, 3};
  star.children[0] = {1, 2, 3};
  star.children[1] = {};
  star.children[2] = {};
  star.children[3] = {};

  net::FaultPlan plan;
  plan.link_down(sim::Time::us(1.0), 0).link_up(sim::Time::us(300.0), 0);
  const CollectiveEngine engine{rig.topology, rig.routes,
                                faulty_config(plan)};
  CollectiveResult r;
  ASSERT_NO_THROW(r = engine.run(CollectiveKind::kBroadcast, star, 3));
  EXPECT_EQ(r.outcome, mcast::Outcome::kComplete);
  EXPECT_GE(r.repairs, 1);
  EXPECT_EQ(r.faults_applied, 2);
  EXPECT_EQ(r.route_epoch, 2);  // one rebuild per fault event
  for (const auto& st : r.participants) {
    EXPECT_TRUE(st.delivered) << "host " << st.host;
    EXPECT_TRUE(st.reachable) << "host " << st.host;
  }
}

TEST(CollectiveFaults, FailFastThrowsWhereDegradeReportsPartial) {
  const Rig rig;
  const auto tree = rig.tree(16, 4);
  const topo::SwitchId dead = rig.topology.switch_of(tree.nodes.back());
  ASSERT_NE(dead, rig.topology.switch_of(tree.root));
  net::FaultPlan plan;
  plan.switch_down(sim::Time::us(1.0), dead);

  auto strict = faulty_config(plan);
  strict.mode = RepairMode::kFailFast;
  const CollectiveEngine fail_fast{rig.topology, rig.routes, strict};
  EXPECT_THROW((void)fail_fast.run(CollectiveKind::kBroadcast, tree, 4),
               std::runtime_error);

  const CollectiveEngine degrade{rig.topology, rig.routes,
                                 faulty_config(plan)};
  CollectiveResult r;
  ASSERT_NO_THROW(r = degrade.run(CollectiveKind::kBroadcast, tree, 4));
  EXPECT_EQ(r.outcome, mcast::Outcome::kPartial);
}

TEST(CollectiveFaults, AllKindsSurviveTenPercentLinkFaultPlan) {
  // The acceptance sweep: a 10% random link-fault plan on the 64-host
  // testbed; every kind must run to a verdict without throwing, every
  // still-reachable participant must have its obligation met, and the
  // survivor set must equal the rebuilt route table's reachability.
  const Rig rig;
  const auto tree = rig.tree(64, 4);
  net::FaultPlan::RandomConfig fcfg;
  fcfg.link_fail_prob = 0.1;
  fcfg.window_end = sim::Time::us(150.0);
  for (const std::uint64_t seed : {5u, 29u, 71u}) {
    sim::Rng rng{seed};
    const auto plan =
        net::FaultPlan::random(rig.topology.switches(), fcfg, rng);
    // Replay the plan to the settled end-state mask.
    topo::SubgraphMask mask;
    mask.dead_link.assign(
        static_cast<std::size_t>(rig.topology.switches().num_edges()), false);
    mask.dead_switch.assign(
        static_cast<std::size_t>(rig.topology.num_switches()), false);
    for (const auto& ev : plan.events()) {
      const auto id = static_cast<std::size_t>(ev.id);
      if (ev.kind == net::FaultKind::kLinkDown) mask.dead_link[id] = true;
      if (ev.kind == net::FaultKind::kLinkUp) mask.dead_link[id] = false;
      if (ev.kind == net::FaultKind::kSwitchDown) mask.dead_switch[id] = true;
    }
    const auto rebuilt = routing::rebuild_updown(rig.topology, mask, 1);

    for (const auto kind : kAllKinds) {
      const CollectiveEngine engine{rig.topology, rig.routes,
                                    faulty_config(plan)};
      CollectiveResult r;
      ASSERT_NO_THROW(r = engine.run(kind, tree, 4))
          << to_string(kind) << " seed " << seed;
      ASSERT_EQ(r.participants.size(), 63u);
      bool any_unreachable = false;
      for (const auto& st : r.participants) {
        EXPECT_EQ(st.reachable, rebuilt->reachable(tree.root, st.host))
            << to_string(kind) << " seed " << seed << " host " << st.host;
        if (st.reachable) {
          EXPECT_TRUE(st.delivered)
              << to_string(kind) << " seed " << seed << " host " << st.host
              << " reachable but unserved";
        } else {
          any_unreachable = true;
        }
      }
      // A degraded verdict must trace to a genuine partition.
      if (r.outcome != mcast::Outcome::kComplete) {
        EXPECT_TRUE(any_unreachable) << to_string(kind) << " seed " << seed;
      }
      EXPECT_EQ(r.survivors().size(),
                static_cast<std::size_t>(
                    std::count_if(r.participants.begin(),
                                  r.participants.end(),
                                  [](const auto& st) { return st.reachable; })));
    }
  }
}

TEST(CollectiveFaults, FaultyCollectivesAreDeterministic) {
  const Rig rig;
  const auto tree = rig.tree(32, 4);
  net::FaultPlan::RandomConfig fcfg;
  fcfg.link_fail_prob = 0.15;
  fcfg.switch_fail_prob = 0.04;
  const auto run_once = [&](CollectiveKind kind) {
    sim::Rng rng{1234};
    const auto plan =
        net::FaultPlan::random(rig.topology.switches(), fcfg, rng);
    const CollectiveEngine engine{rig.topology, rig.routes,
                                  faulty_config(plan)};
    return engine.run(kind, tree, 4);
  };
  for (const auto kind : kAllKinds) {
    const auto a = run_once(kind);
    const auto b = run_once(kind);
    EXPECT_EQ(a.latency, b.latency) << to_string(kind);
    EXPECT_EQ(a.outcome, b.outcome) << to_string(kind);
    EXPECT_EQ(a.repairs, b.repairs) << to_string(kind);
    EXPECT_EQ(a.route_epoch, b.route_epoch) << to_string(kind);
    ASSERT_EQ(a.completions.size(), b.completions.size()) << to_string(kind);
    for (std::size_t i = 0; i < a.completions.size(); ++i) {
      EXPECT_EQ(a.completions[i], b.completions[i]) << to_string(kind);
    }
  }
}

TEST(CollectiveFaults, EmptyPlanKeepsStrictContractAndNoVerdicts) {
  // Fault-free runs never pay for the bookkeeping: no participants
  // vector, kComplete, ratio 1.0.
  const Rig rig;
  const auto tree = rig.tree(16, 4);
  const CollectiveEngine engine{rig.topology, rig.routes,
                                CollectiveEngine::Config{}};
  const auto r = engine.run(CollectiveKind::kBroadcast, tree, 4);
  EXPECT_EQ(r.outcome, mcast::Outcome::kComplete);
  EXPECT_TRUE(r.participants.empty());
  EXPECT_EQ(r.delivery_ratio(), 1.0);
  EXPECT_EQ(r.repairs, 0);
  EXPECT_EQ(r.route_epoch, 0);
}

TEST(CollectiveFaults, RepairModeNames) {
  EXPECT_STREQ(to_string(RepairMode::kFailFast), "fail-fast");
  EXPECT_STREQ(to_string(RepairMode::kDegradeAndContinue),
               "degrade-and-continue");
}

}  // namespace
}  // namespace nimcast::collectives
