#include "routing/up_down.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "topology/irregular.hpp"

namespace nimcast::routing {
namespace {

/// Checks a route's structural sanity against its graph: consecutive
/// switches joined by the named links, no repeated switch.
void check_route_shape(const topo::Graph& g, const SwitchRoute& r) {
  ASSERT_TRUE(r.valid_shape());
  for (std::size_t i = 0; i < r.links.size(); ++i) {
    const auto& e = g.edge(r.links[i]);
    const auto from = r.switches[i];
    const auto to = r.switches[i + 1];
    EXPECT_TRUE((e.a == from && e.b == to) || (e.b == from && e.a == to));
  }
  std::set<topo::SwitchId> seen{r.switches.begin(), r.switches.end()};
  EXPECT_EQ(seen.size(), r.switches.size()) << "route visits a switch twice";
}

/// A route is up*/down*-legal if no up move follows a down move.
void check_updown_legal(const UpDownRouter& router, const SwitchRoute& r) {
  bool went_down = false;
  for (std::size_t i = 0; i < r.links.size(); ++i) {
    const bool up = router.is_up(r.links[i], r.switches[i]);
    if (up) {
      EXPECT_FALSE(went_down) << "illegal down->up turn";
    } else {
      went_down = true;
    }
  }
}

TEST(UpDown, TrivialSelfRoute) {
  const topo::Graph g{2, {{0, 1}}};
  const UpDownRouter router{g};
  const auto r = router.route(1, 1);
  EXPECT_EQ(r.switches, (std::vector<topo::SwitchId>{1}));
  EXPECT_TRUE(r.links.empty());
}

TEST(UpDown, DirectNeighborIsOneHop) {
  const topo::Graph g{2, {{0, 1}}};
  const UpDownRouter router{g};
  const auto r = router.route(0, 1);
  EXPECT_EQ(r.hops(), 1u);
}

TEST(UpDown, DefaultRootIsHighestDegree) {
  // Star centered at 2.
  const topo::Graph g{4, {{2, 0}, {2, 1}, {2, 3}}};
  const UpDownRouter router{g};
  EXPECT_EQ(router.root(), 2);
}

TEST(UpDown, ExplicitRootHonored) {
  const topo::Graph g{3, {{0, 1}, {1, 2}}};
  const UpDownRouter router{g, 2};
  EXPECT_EQ(router.root(), 2);
  EXPECT_EQ(router.levels()[2], 0);
  EXPECT_EQ(router.levels()[0], 2);
}

TEST(UpDown, UpEndTieBreaksToLowerId) {
  // Square: 0-1, 1-3, 0-2, 2-3. Root 0; switches 1 and 2 are level 1 and
  // 3 is level 2; the 1-3 and 2-3 links point up toward 1 and 2; the 0-1
  // and 0-2 links point up toward 0.
  const topo::Graph g{4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}}};
  const UpDownRouter router{g, 0};
  EXPECT_EQ(router.up_end(0), 0);
  EXPECT_EQ(router.up_end(1), 1);
  EXPECT_EQ(router.up_end(2), 0);
  EXPECT_EQ(router.up_end(3), 2);
}

TEST(UpDown, SameLevelLinkUpEndIsLowerId) {
  // Triangle rooted at 0: link 1-2 connects equal levels.
  const topo::Graph g{3, {{0, 1}, {0, 2}, {1, 2}}};
  const UpDownRouter router{g, 0};
  EXPECT_EQ(router.up_end(2), 1);
}

TEST(UpDown, RouteIsDeterministic) {
  sim::Rng rng{5};
  const auto t = topo::make_irregular(topo::IrregularConfig{}, rng);
  const UpDownRouter router{t.switches()};
  for (topo::SwitchId s = 0; s < t.num_switches(); ++s) {
    for (topo::SwitchId d = 0; d < t.num_switches(); ++d) {
      const auto r1 = router.route(s, d);
      const auto r2 = router.route(s, d);
      EXPECT_EQ(r1.switches, r2.switches);
      EXPECT_EQ(r1.links, r2.links);
    }
  }
}

TEST(UpDown, AllRoutesLegalOnRandomIrregularNetworks) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    sim::Rng rng{seed};
    const auto t = topo::make_irregular(topo::IrregularConfig{}, rng);
    const UpDownRouter router{t.switches()};
    for (topo::SwitchId s = 0; s < t.num_switches(); ++s) {
      for (topo::SwitchId d = 0; d < t.num_switches(); ++d) {
        if (s == d) continue;
        const auto r = router.route(s, d);
        EXPECT_EQ(r.switches.front(), s);
        EXPECT_EQ(r.switches.back(), d);
        check_route_shape(t.switches(), r);
        check_updown_legal(router, r);
      }
    }
  }
}

TEST(UpDown, RoutesAreDeadlockFree) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    sim::Rng rng{100 + seed};
    const auto t = topo::make_irregular(topo::IrregularConfig{}, rng);
    const UpDownRouter router{t.switches()};
    EXPECT_TRUE(deadlock_free(t.switches(), router)) << "seed " << seed;
  }
}

TEST(UpDown, RouteNoLongerThanTwiceDiameterBound) {
  // up*/down* routes are at most (depth up) + (depth down).
  sim::Rng rng{7};
  const auto t = topo::make_irregular(topo::IrregularConfig{}, rng);
  const UpDownRouter router{t.switches()};
  std::int32_t max_level = 0;
  for (auto lv : router.levels()) max_level = std::max(max_level, lv);
  for (topo::SwitchId s = 0; s < t.num_switches(); ++s) {
    for (topo::SwitchId d = 0; d < t.num_switches(); ++d) {
      EXPECT_LE(router.route(s, d).hops(),
                static_cast<std::size_t>(2 * max_level));
    }
  }
}

TEST(UpDown, RequiresConnectedGraph) {
  const topo::Graph g{3, {{0, 1}}};
  EXPECT_THROW((UpDownRouter{g}), std::invalid_argument);
}

TEST(UpDown, RouteRejectsOutOfRange) {
  const topo::Graph g{2, {{0, 1}}};
  const UpDownRouter router{g};
  EXPECT_THROW((void)router.route(0, 2), std::invalid_argument);
  EXPECT_THROW((void)router.route(-1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::routing
