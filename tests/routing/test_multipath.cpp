#include "routing/multipath_up_down.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hpp"
#include "topology/fat_tree.hpp"
#include "topology/irregular.hpp"

namespace nimcast::routing {
namespace {

TEST(Multipath, FatTreeLevelsGiveOnePathPerSpine) {
  const topo::FatTreeConfig cfg;
  const auto t = topo::make_fat_tree(cfg);
  const MultipathUpDownRouter router{t.switches(),
                                     topo::fat_tree_levels(cfg)};
  // Leaf-to-leaf: one two-hop path through each of the 4 spines.
  const auto paths = router.all_shortest(0, 5);
  EXPECT_EQ(paths.size(), 4u);
  std::set<topo::SwitchId> spines;
  for (const auto& p : paths) {
    ASSERT_EQ(p.hops(), 2u);
    spines.insert(p.switches[1]);
  }
  EXPECT_EQ(spines.size(), 4u);
}

TEST(Multipath, BfsRootedFatTreeHasNoDiversity) {
  // The well-known up*/down* pathology this repo's level-based variant
  // exists to avoid: BFS from one spine makes the other spines level 2,
  // so leaf->spine'->leaf would be an illegal down->up turn and exactly
  // one legal shortest path remains.
  const auto t = topo::make_fat_tree(topo::FatTreeConfig{});
  const MultipathUpDownRouter router{t.switches()};
  EXPECT_EQ(router.all_shortest(0, 5).size(), 1u);
}

TEST(Multipath, EveryEnumeratedPathIsLegalAndShortest) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    sim::Rng rng{seed};
    const auto t = topo::make_irregular(topo::IrregularConfig{}, rng);
    const MultipathUpDownRouter router{t.switches()};
    const UpDownRouter& base = router.base();
    for (topo::SwitchId s = 0; s < t.num_switches(); s += 3) {
      for (topo::SwitchId d = 0; d < t.num_switches(); d += 5) {
        if (s == d) continue;
        const auto single = base.route(s, d);
        for (const auto& p : router.all_shortest(s, d)) {
          EXPECT_EQ(p.hops(), single.hops()) << "not shortest";
          ASSERT_TRUE(p.valid_shape());
          EXPECT_EQ(p.switches.front(), s);
          EXPECT_EQ(p.switches.back(), d);
          bool went_down = false;
          for (std::size_t i = 0; i < p.links.size(); ++i) {
            const bool up = base.is_up(p.links[i], p.switches[i]);
            if (up) {
              EXPECT_FALSE(went_down) << "illegal down->up turn";
            } else {
              went_down = true;
            }
          }
        }
      }
    }
  }
}

TEST(Multipath, RouteIsDeterministicAndAmongShortest) {
  sim::Rng rng{7};
  const auto t = topo::make_irregular(topo::IrregularConfig{}, rng);
  const MultipathUpDownRouter router{t.switches()};
  for (topo::SwitchId s = 0; s < 16; ++s) {
    for (topo::SwitchId d = 0; d < 16; ++d) {
      const auto a = router.route(s, d);
      const auto b = router.route(s, d);
      EXPECT_EQ(a.switches, b.switches);
    }
  }
}

TEST(Multipath, SaltSpreadsPairsAcrossAlternatives) {
  const topo::FatTreeConfig cfg;
  const auto t = topo::make_fat_tree(cfg);
  const MultipathUpDownRouter r0{t.switches(), topo::fat_tree_levels(cfg), 0};
  const MultipathUpDownRouter r1{t.switches(), topo::fat_tree_levels(cfg),
                                 99};
  int differs = 0;
  int pairs = 0;
  for (topo::SwitchId s = 0; s < 8; ++s) {
    for (topo::SwitchId d = 0; d < 8; ++d) {
      if (s == d) continue;
      ++pairs;
      if (r0.route(s, d).switches != r1.route(s, d).switches) ++differs;
    }
  }
  // With 4 alternatives per pair, two salts should disagree on ~75%.
  EXPECT_GT(differs, pairs / 3);
}

TEST(Multipath, StaysDeadlockFree) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    sim::Rng rng{100 + seed};
    const auto t = topo::make_irregular(topo::IrregularConfig{}, rng);
    const MultipathUpDownRouter router{t.switches()};
    EXPECT_TRUE(deadlock_free(t.switches(), router)) << "seed " << seed;
  }
  const topo::FatTreeConfig cfg;
  const auto ft = topo::make_fat_tree(cfg);
  const MultipathUpDownRouter router{ft.switches(),
                                     topo::fat_tree_levels(cfg)};
  EXPECT_TRUE(deadlock_free(ft.switches(), router));
}

TEST(Multipath, SelfRouteTrivial) {
  const auto t = topo::make_fat_tree(topo::FatTreeConfig{});
  const MultipathUpDownRouter router{t.switches()};
  EXPECT_EQ(router.all_shortest(3, 3).size(), 1u);
  EXPECT_EQ(router.route(3, 3).hops(), 0u);
}

}  // namespace
}  // namespace nimcast::routing
