// Bit-identity of the compressed (lazy) RouteTable against the eager
// all-pairs build: every query — path shape, reachability, hop counts,
// disjointness — must agree on every seed topology family, including
// tables rebuilt over a faulted subgraph. This is the contract that lets
// the testbed harness and the fault-repair path use compressed storage
// without perturbing a single measurement.

#include "routing/route_table.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "routing/dimension_ordered.hpp"
#include "routing/repair.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/fat_tree.hpp"
#include "topology/irregular.hpp"
#include "topology/kary_ncube.hpp"

namespace nimcast::routing {
namespace {

/// Exhaustive all-pairs comparison plus a strided disjointness sample.
void expect_equivalent(const topo::Topology& topology, const RouteTable& a,
                       const RouteTable& b) {
  ASSERT_EQ(a.num_hosts(), b.num_hosts());
  EXPECT_EQ(a.virtual_channels(), b.virtual_channels());
  EXPECT_EQ(a.unreachable_pairs(), b.unreachable_pairs());
  EXPECT_EQ(a.fully_connected(), b.fully_connected());
  const std::int32_t hosts = a.num_hosts();
  for (topo::HostId s = 0; s < hosts; ++s) {
    for (topo::HostId d = 0; d < hosts; ++d) {
      ASSERT_EQ(a.reachable(s, d), b.reachable(s, d))
          << "pair " << s << "->" << d;
      if (!a.reachable(s, d)) continue;
      const SwitchRoute& pa = a.path(s, d);
      const SwitchRoute& pb = b.path(s, d);
      ASSERT_EQ(pa.switches, pb.switches) << "pair " << s << "->" << d;
      ASSERT_EQ(pa.links, pb.links) << "pair " << s << "->" << d;
      ASSERT_EQ(pa.vcs, pb.vcs) << "pair " << s << "->" << d;
      ASSERT_EQ(a.hops(s, d), b.hops(s, d));
    }
  }
  const auto& g = topology.switches();
  for (topo::HostId x = 0; x < hosts; x += 13) {
    for (topo::HostId y = 1; y < hosts; y += 11) {
      for (topo::HostId u = 2; u < hosts; u += 7) {
        for (topo::HostId v = 3; v < hosts; v += 5) {
          if (x == y || u == v) continue;
          if (!a.reachable(x, y) || !a.reachable(u, v)) continue;
          EXPECT_EQ(a.disjoint(g, x, y, u, v), b.disjoint(g, x, y, u, v));
        }
      }
    }
  }
}

topo::Topology irregular(std::uint64_t seed) {
  sim::Rng rng{seed};
  return topo::make_irregular(topo::IrregularConfig{}, rng);
}

TEST(RouteTableLazy, MatchesEagerOnIrregularSeeds) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const topo::Topology topology = irregular(seed);
    const UpDownRouter router{topology.switches()};
    const RouteTable eager{topology, router};
    const RouteTable lazy{topology, router, /*epoch=*/0,
                          RouteStorage::kCompressed};
    EXPECT_EQ(eager.storage(), RouteStorage::kEager);
    EXPECT_EQ(lazy.storage(), RouteStorage::kCompressed);
    expect_equivalent(topology, eager, lazy);
  }
}

TEST(RouteTableLazy, MatchesEagerOnFatTree) {
  const topo::FatTreeConfig cfg;
  const topo::Topology topology = topo::make_fat_tree(cfg);
  const UpDownRouter router{topology.switches(), topo::fat_tree_levels(cfg)};
  const RouteTable eager{topology, router};
  const RouteTable lazy{topology, router, /*epoch=*/0,
                        RouteStorage::kCompressed};
  expect_equivalent(topology, eager, lazy);
}

TEST(RouteTableLazy, MatchesEagerOnMeshTorusHypercube) {
  const topo::KAryNCubeConfig mesh{4, 2, false};
  const topo::KAryNCubeConfig torus{4, 2, true};
  const topo::KAryNCubeConfig hypercube{2, 6, false};
  for (const auto& cfg : {mesh, torus, hypercube}) {
    const topo::Topology topology = topo::make_kary_ncube(cfg);
    const DimensionOrderedRouter router{topology.switches(), cfg};
    const RouteTable eager{topology, router};
    const RouteTable lazy{topology, router, /*epoch=*/0,
                          RouteStorage::kCompressed};
    // Dateline tori route on two VCs; the compressed path must carry the
    // per-hop VC assignments through unchanged.
    EXPECT_EQ(lazy.virtual_channels(), cfg.wraparound ? 2 : 1);
    expect_equivalent(topology, eager, lazy);
  }
}

topo::SubgraphMask mask_for(const topo::Graph& g,
                            std::initializer_list<topo::LinkId> dead_links,
                            std::initializer_list<topo::SwitchId> dead_switches
                            = {}) {
  topo::SubgraphMask mask;
  mask.dead_link.assign(static_cast<std::size_t>(g.num_edges()), false);
  mask.dead_switch.assign(static_cast<std::size_t>(g.num_vertices()), false);
  for (topo::LinkId e : dead_links) {
    mask.dead_link[static_cast<std::size_t>(e)] = true;
  }
  for (topo::SwitchId s : dead_switches) {
    mask.dead_switch[static_cast<std::size_t>(s)] = true;
  }
  return mask;
}

TEST(RouteTableLazy, MatchesEagerOnFaultedIrregular) {
  const topo::Topology topology = irregular(1);
  const auto& g = topology.switches();
  const UpDownRouter router{g, mask_for(g, {0, 5}, {3})};
  const RouteTable eager{topology, router, /*epoch=*/2};
  const RouteTable lazy{topology, router, /*epoch=*/2,
                        RouteStorage::kCompressed};
  // A dead switch orphans its hosts, so both sides must agree there are
  // unreachable pairs, not just on which ones.
  EXPECT_FALSE(eager.fully_connected());
  expect_equivalent(topology, eager, lazy);
}

TEST(RouteTableLazy, MatchesEagerOnPartitionedFabric) {
  // Square of switches; killing links 0 and 3 isolates switch 0 — the
  // partitioned case where component ids do real work.
  const topo::Topology topology{
      topo::Graph{4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}}, {0, 1, 2, 3},
      "square"};
  const auto& g = topology.switches();
  const UpDownRouter router{g, mask_for(g, {0, 3})};
  const RouteTable eager{topology, router, /*epoch=*/1};
  const RouteTable lazy{topology, router, /*epoch=*/1,
                        RouteStorage::kCompressed};
  EXPECT_EQ(eager.unreachable_pairs(), 6);
  expect_equivalent(topology, eager, lazy);
  // Isolated-but-alive hosts still reach themselves (singleton component).
  EXPECT_TRUE(lazy.reachable(0, 0));
}

TEST(RouteTableLazy, RepairRebuildMatchesEagerMaskedBuild) {
  // The fault-hook path: rebuild_updown produces a compressed table over
  // the surviving subgraph; it must agree with an eager table built from
  // an identical masked router.
  const topo::Topology topology = irregular(2);
  const auto& g = topology.switches();
  const auto mask = mask_for(g, {1, 4});
  const auto rebuilt = rebuild_updown(topology, mask, /*epoch=*/3);
  EXPECT_EQ(rebuilt->storage(), RouteStorage::kCompressed);
  EXPECT_EQ(rebuilt->epoch(), 3);
  const UpDownRouter masked{g, mask};
  const RouteTable eager{topology, masked, /*epoch=*/3};
  expect_equivalent(topology, eager, *rebuilt);
}

TEST(RouteTableLazy, MaterializationIsLazyAndSharedPerSwitchPair) {
  const topo::Topology topology = irregular(3);
  const UpDownRouter router{topology.switches()};
  const RouteTable lazy{topology, router, /*epoch=*/0,
                        RouteStorage::kCompressed};
  EXPECT_EQ(lazy.routes_materialized(), 0u);
  (void)lazy.path(0, 1);
  const std::size_t after_first = lazy.routes_materialized();
  EXPECT_GE(after_first, 1u);
  // Same switch pair (round-robin attachment: hosts 0/16 and 1/17 share
  // switches) must not add slots.
  (void)lazy.path(16, 17);
  EXPECT_EQ(lazy.routes_materialized(), after_first);
  const RouteTable eager{topology, router};
  EXPECT_LT(lazy.memory_bytes(), eager.memory_bytes());
}

TEST(RouteTableLazy, InvalidateCacheRematerializesIdentically) {
  const topo::Topology topology = irregular(1);
  const UpDownRouter router{topology.switches()};
  const RouteTable eager{topology, router};
  RouteTable lazy{topology, router, /*epoch=*/0, RouteStorage::kCompressed};
  const auto before = lazy.path(0, 63);
  const auto gen = lazy.cache_generation();
  lazy.invalidate_cache();
  EXPECT_GT(lazy.cache_generation(), gen);
  EXPECT_EQ(lazy.routes_materialized(), 0u);
  EXPECT_EQ(lazy.path(0, 63).switches, before.switches);
  expect_equivalent(topology, eager, lazy);
}

TEST(RouteTableLazy, OwningConstructorKeepsRouterAlive) {
  const topo::Topology topology = irregular(2);
  std::unique_ptr<RouteTable> lazy;
  {
    auto router =
        std::make_shared<const UpDownRouter>(topology.switches());
    lazy = std::make_unique<RouteTable>(topology, router);
  }  // local shared_ptr gone; the table's copy must keep routing
  const UpDownRouter fresh{topology.switches()};
  const RouteTable eager{topology, fresh};
  expect_equivalent(topology, eager, *lazy);
}

}  // namespace
}  // namespace nimcast::routing
