#include <gtest/gtest.h>

#include "routing/repair.hpp"
#include "routing/up_down.hpp"

namespace nimcast::routing {
namespace {

/// Square of switches 0-1-2-3 (edges 0:{0,1} 1:{1,2} 2:{2,3} 3:{3,0})
/// with one host per switch: every link failure leaves a detour.
struct SquareRig {
  topo::Topology topology{topo::Graph{4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}},
                          {0, 1, 2, 3},
                          "square"};
};

topo::SubgraphMask mask_for(const topo::Graph& g,
                            std::initializer_list<topo::LinkId> dead_links,
                            std::initializer_list<topo::SwitchId> dead_switches
                            = {}) {
  topo::SubgraphMask mask;
  mask.dead_link.assign(static_cast<std::size_t>(g.num_edges()), false);
  mask.dead_switch.assign(static_cast<std::size_t>(g.num_vertices()), false);
  for (topo::LinkId e : dead_links) {
    mask.dead_link[static_cast<std::size_t>(e)] = true;
  }
  for (topo::SwitchId s : dead_switches) {
    mask.dead_switch[static_cast<std::size_t>(s)] = true;
  }
  return mask;
}

TEST(MaskedUpDown, RoutesAroundADeadLink) {
  SquareRig rig;
  const auto& g = rig.topology.switches();
  const UpDownRouter router{g, mask_for(g, {0})};
  const auto r = router.try_route(0, 1);
  ASSERT_TRUE(r.has_value());
  // Only detour left: 0 - 3 - 2 - 1.
  EXPECT_EQ(r->hops(), 3u);
  for (topo::LinkId e : r->links) EXPECT_NE(e, 0);
}

TEST(MaskedUpDown, AllAliveMaskMatchesUnmaskedRouter) {
  SquareRig rig;
  const auto& g = rig.topology.switches();
  const UpDownRouter plain{g};
  const UpDownRouter masked{g, mask_for(g, {}), plain.root()};
  for (topo::SwitchId s = 0; s < g.num_vertices(); ++s) {
    for (topo::SwitchId d = 0; d < g.num_vertices(); ++d) {
      EXPECT_EQ(plain.route(s, d).switches, masked.route(s, d).switches);
    }
  }
}

TEST(MaskedUpDown, PartitionYieldsNulloptAndRouteThrows) {
  SquareRig rig;
  const auto& g = rig.topology.switches();
  // Killing links 0 and 3 isolates switch 0.
  const UpDownRouter router{g, mask_for(g, {0, 3})};
  EXPECT_FALSE(router.try_route(0, 2).has_value());
  EXPECT_THROW((void)router.route(0, 2), NoLegalRoute);
  // The surviving component still routes internally.
  ASSERT_TRUE(router.try_route(1, 3).has_value());
  // And the isolated switch routes to itself.
  ASSERT_TRUE(router.try_route(0, 0).has_value());
}

TEST(MaskedUpDown, DeadSwitchIsUnroutable) {
  SquareRig rig;
  const auto& g = rig.topology.switches();
  const UpDownRouter router{g, mask_for(g, {}, {2})};
  EXPECT_FALSE(router.try_route(0, 2).has_value());
  EXPECT_FALSE(router.try_route(2, 0).has_value());
  // 1 and 3 detour around the corpse via 0.
  const auto r = router.try_route(1, 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->hops(), 2u);
  for (topo::SwitchId s : r->switches) EXPECT_NE(s, 2);
}

TEST(MaskedUpDown, MaskSizeMismatchThrows) {
  SquareRig rig;
  const auto& g = rig.topology.switches();
  topo::SubgraphMask bad;
  bad.dead_link.assign(2, false);  // graph has 4 links
  EXPECT_THROW((UpDownRouter{g, bad}), std::invalid_argument);
}

TEST(RouteRepair, RebuildRecordsEpochAndReachability) {
  SquareRig rig;
  const auto& g = rig.topology.switches();
  const auto table =
      rebuild_updown(rig.topology, mask_for(g, {0, 3}), /*epoch=*/7);
  EXPECT_EQ(table->epoch(), 7);
  EXPECT_FALSE(table->fully_connected());
  // Host 0 sits on the isolated switch: 3 pairs out, 3 pairs in.
  EXPECT_EQ(table->unreachable_pairs(), 6);
  EXPECT_FALSE(table->reachable(0, 2));
  EXPECT_FALSE(table->reachable(2, 0));
  EXPECT_TRUE(table->reachable(1, 3));
  EXPECT_TRUE(table->reachable(0, 0));
}

TEST(RouteRepair, PristineMaskRebuildIsFullyConnected) {
  SquareRig rig;
  const auto table = rebuild_updown(rig.topology, topo::SubgraphMask{},
                                    /*epoch=*/1);
  EXPECT_TRUE(table->fully_connected());
  EXPECT_EQ(table->unreachable_pairs(), 0);
  EXPECT_EQ(table->virtual_channels(), 1);
}

TEST(RouteRepair, RebuiltRoutesAvoidDeadHardware) {
  SquareRig rig;
  const auto& g = rig.topology.switches();
  const auto table =
      rebuild_updown(rig.topology, mask_for(g, {1}), /*epoch=*/2);
  EXPECT_TRUE(table->fully_connected());
  for (topo::HostId s = 0; s < 4; ++s) {
    for (topo::HostId d = 0; d < 4; ++d) {
      for (topo::LinkId e : table->path(s, d).links) EXPECT_NE(e, 1);
    }
  }
}

}  // namespace
}  // namespace nimcast::routing
