#include "routing/dimension_ordered.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace nimcast::routing {
namespace {

struct Rig {
  topo::KAryNCubeConfig cfg;
  topo::Topology topology;
  explicit Rig(topo::KAryNCubeConfig c)
      : cfg{c}, topology{topo::make_kary_ncube(c)} {}
};

TEST(DimensionOrdered, MeshRouteLengthIsManhattan) {
  const Rig rig{{4, 2, false}};
  const DimensionOrderedRouter router{rig.topology.switches(), rig.cfg};
  for (topo::SwitchId s = 0; s < 16; ++s) {
    for (topo::SwitchId d = 0; d < 16; ++d) {
      const auto cs = topo::to_coords(s, rig.cfg);
      const auto cd = topo::to_coords(d, rig.cfg);
      std::size_t manhattan = 0;
      for (std::size_t i = 0; i < cs.size(); ++i) {
        manhattan += static_cast<std::size_t>(std::abs(cs[i] - cd[i]));
      }
      EXPECT_EQ(router.route(s, d).hops(), manhattan);
    }
  }
}

TEST(DimensionOrdered, LowestDimensionCorrectedFirst) {
  const Rig rig{{4, 2, false}};
  const DimensionOrderedRouter router{rig.topology.switches(), rig.cfg};
  // From (0,0)=0 to (3,2)=11: all X moves precede all Y moves.
  const auto r = router.route(0, 11);
  bool seen_y = false;
  for (std::size_t i = 0; i + 1 < r.switches.size(); ++i) {
    const auto a = topo::to_coords(r.switches[i], rig.cfg);
    const auto b = topo::to_coords(r.switches[i + 1], rig.cfg);
    if (a[1] != b[1]) {
      seen_y = true;
    } else {
      EXPECT_FALSE(seen_y) << "X move after Y move";
    }
  }
  EXPECT_TRUE(seen_y);
}

TEST(DimensionOrdered, MeshRoutesAreDeadlockFree) {
  const Rig rig{{3, 3, false}};
  const DimensionOrderedRouter router{rig.topology.switches(), rig.cfg};
  EXPECT_TRUE(deadlock_free(rig.topology.switches(), router));
}

TEST(DimensionOrdered, HypercubeRoutesAreDeadlockFree) {
  const Rig rig{{2, 4, false}};
  const DimensionOrderedRouter router{rig.topology.switches(), rig.cfg};
  EXPECT_TRUE(deadlock_free(rig.topology.switches(), router));
}

TEST(DimensionOrdered, TorusTakesShorterWrap) {
  const Rig rig{{5, 1, true}};  // ring of 5
  const DimensionOrderedRouter router{rig.topology.switches(), rig.cfg};
  EXPECT_EQ(router.route(0, 4).hops(), 1u);  // wrap: 0 -> 4 directly
  EXPECT_EQ(router.route(0, 2).hops(), 2u);  // forward is shorter
  // Equidistant tie (distance 2 or 3 around): forward preferred.
  const auto r = router.route(0, 2);
  EXPECT_EQ(r.switches[1], 1);
}

TEST(DimensionOrdered, SelfRouteEmpty) {
  const Rig rig{{4, 2, false}};
  const DimensionOrderedRouter router{rig.topology.switches(), rig.cfg};
  const auto r = router.route(5, 5);
  EXPECT_EQ(r.hops(), 0u);
  EXPECT_EQ(r.switches, (std::vector<topo::SwitchId>{5}));
}

TEST(DimensionOrdered, RouteShapeConsistent) {
  const Rig rig{{3, 2, true}};
  const DimensionOrderedRouter router{rig.topology.switches(), rig.cfg};
  for (topo::SwitchId s = 0; s < 9; ++s) {
    for (topo::SwitchId d = 0; d < 9; ++d) {
      const auto r = router.route(s, d);
      ASSERT_TRUE(r.valid_shape());
      EXPECT_EQ(r.switches.front(), s);
      EXPECT_EQ(r.switches.back(), d);
      for (std::size_t i = 0; i < r.links.size(); ++i) {
        const auto& e = rig.topology.switches().edge(r.links[i]);
        EXPECT_TRUE(e.a == r.switches[i] || e.b == r.switches[i]);
        EXPECT_EQ(e.other(r.switches[i]), r.switches[i + 1]);
      }
    }
  }
}

}  // namespace
}  // namespace nimcast::routing
