// Virtual channels and the dateline torus scheme.

#include <gtest/gtest.h>

#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "mcast/multicast_engine.hpp"
#include "routing/dimension_ordered.hpp"
#include "topology/kary_ncube.hpp"

namespace nimcast::routing {
namespace {

struct Rig {
  topo::KAryNCubeConfig cfg;
  topo::Topology topology;
  DimensionOrderedRouter router;

  explicit Rig(topo::KAryNCubeConfig c)
      : cfg{c}, topology{topo::make_kary_ncube(c)},
        router{topology.switches(), c} {}
};

TEST(VirtualChannels, MeshUsesOneVc) {
  const Rig rig{{4, 2, false}};
  EXPECT_EQ(rig.router.virtual_channels(), 1);
  EXPECT_TRUE(rig.router.route(0, 15).vcs.empty());
}

TEST(VirtualChannels, TorusDeclaresTwoVcs) {
  const Rig rig{{4, 2, true}};
  EXPECT_EQ(rig.router.virtual_channels(), 2);
}

TEST(VirtualChannels, TorusRoutesAssignVcPerHop) {
  const Rig rig{{5, 1, true}};  // ring of 5
  // 1 -> 4 backward (1 -> 0 -> 4): the 0 -> 4 hop is the wrap.
  const auto r = rig.router.route(1, 4);
  ASSERT_EQ(r.hops(), 2u);
  ASSERT_EQ(r.vcs.size(), 2u);
  EXPECT_EQ(r.vcs[0], 0);  // 1 -> 0, no dateline yet
  EXPECT_EQ(r.vcs[1], 1);  // 0 -> 4 wraps: dateline crossed
}

TEST(VirtualChannels, NonWrappingTorusRouteStaysOnVcZero) {
  const Rig rig{{5, 1, true}};
  const auto r = rig.router.route(0, 2);  // forward, no wrap
  ASSERT_EQ(r.vcs.size(), 2u);
  EXPECT_EQ(r.vcs[0], 0);
  EXPECT_EQ(r.vcs[1], 0);
}

TEST(VirtualChannels, DatelinePersistsWithinDimension) {
  const Rig rig{{8, 1, true}};  // ring of 8
  // 6 -> 2 forward: 6 -> 7 (vc0), 7 -> 0 (wrap, vc1), 0 -> 1, 1 -> 2 (vc1).
  const auto r = rig.router.route(6, 2);
  ASSERT_EQ(r.vcs.size(), 4u);
  EXPECT_EQ(r.vcs[0], 0);
  EXPECT_EQ(r.vcs[1], 1);
  EXPECT_EQ(r.vcs[2], 1);
  EXPECT_EQ(r.vcs[3], 1);
}

TEST(VirtualChannels, VcResetsPerDimension) {
  const Rig rig{{4, 2, true}};
  // (3,3) -> (0,0): wraps in X then wraps in Y; the first Y hop must be
  // back on VC 0.
  const topo::SwitchId src = topo::from_coords({3, 3}, rig.cfg);
  const topo::SwitchId dst = topo::from_coords({0, 0}, rig.cfg);
  const auto r = rig.router.route(src, dst);
  ASSERT_EQ(r.hops(), 2u);
  EXPECT_EQ(r.vcs[0], 1);  // X wrap 3->0
  EXPECT_EQ(r.vcs[1], 1);  // Y wrap 3->0 — wrap immediately, vc1
  // And a non-wrapping Y leg: (3,2) -> (0,1): X wrap (vc1), then the
  // single backward Y hop 2 -> 1 stays on vc0 — the dateline flag did
  // not leak across dimensions.
  const auto r2 = rig.router.route(topo::from_coords({3, 2}, rig.cfg),
                                   topo::from_coords({0, 1}, rig.cfg));
  ASSERT_EQ(r2.hops(), 2u);
  EXPECT_EQ(r2.vcs[0], 1);
  EXPECT_EQ(r2.vcs[1], 0);
}

TEST(VirtualChannels, TorusIsDeadlockFreeWithDateline) {
  for (const auto cfg :
       {topo::KAryNCubeConfig{4, 2, true}, topo::KAryNCubeConfig{5, 2, true},
        topo::KAryNCubeConfig{3, 3, true}, topo::KAryNCubeConfig{8, 1, true}}) {
    const Rig rig{cfg};
    EXPECT_TRUE(deadlock_free(rig.topology.switches(), rig.router))
        << cfg.radix << "-ary " << cfg.dimensions << "-torus";
  }
}

/// Single-VC torus router (dateline disabled) for contrast: the checker
/// must flag the classic ring cycle.
class NoVcTorusRouter final : public Router {
 public:
  explicit NoVcTorusRouter(const Rig& rig) : rig_{rig} {}
  [[nodiscard]] SwitchRoute route(topo::SwitchId s,
                                  topo::SwitchId d) const override {
    SwitchRoute r = rig_.router.route(s, d);
    r.vcs.clear();  // strip the dateline assignment
    return r;
  }
  [[nodiscard]] const char* name() const override { return "novc-torus"; }

 private:
  const Rig& rig_;
};

TEST(VirtualChannels, TorusWithoutDatelineDeadlocks) {
  const Rig rig{{5, 1, true}};
  const NoVcTorusRouter bad{rig};
  EXPECT_FALSE(deadlock_free(rig.topology.switches(), bad));
}

TEST(VirtualChannels, RouteChannelsExpandVcMultiplicity) {
  const Rig rig{{5, 1, true}};
  const auto r = rig.router.route(1, 4);  // vcs {0, 1}
  const auto chans = route_channels(rig.topology.switches(), r, 2);
  ASSERT_EQ(chans.size(), 2u);
  // VC1 channel id is odd (base*2 + 1), VC0 even.
  EXPECT_EQ(chans[0] % 2, 0);
  EXPECT_EQ(chans[1] % 2, 1);
}

TEST(VirtualChannels, RouteChannelsRejectsOutOfRangeVc) {
  const Rig rig{{5, 1, true}};
  const auto r = rig.router.route(1, 4);
  EXPECT_THROW((void)route_channels(rig.topology.switches(), r, 1),
               std::invalid_argument);
}

TEST(VirtualChannels, MulticastRunsOnTorusEndToEnd) {
  const Rig rig{{4, 2, true}};
  const RouteTable routes{rig.topology, rig.router};
  EXPECT_EQ(routes.virtual_channels(), 2);
  mcast::MulticastEngine engine{
      rig.topology, routes,
      mcast::MulticastEngine::Config{netif::SystemParams{},
                                     net::NetworkConfig{},
                                     mcast::NiStyle::kSmartFpfs}};
  core::Chain order;
  for (topo::HostId h = 0; h < 16; ++h) order.push_back(h);
  const auto tree = core::HostTree::bind(core::make_kbinomial(16, 2), order);
  const auto result = engine.run(tree, 8);
  EXPECT_EQ(result.completions.size(), 15u);
  EXPECT_GT(result.latency, sim::Time::zero());
}

}  // namespace
}  // namespace nimcast::routing
