#include "routing/route_table.hpp"

#include <gtest/gtest.h>

#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"

namespace nimcast::routing {
namespace {

struct Rig {
  topo::Topology topology;
  UpDownRouter router;
  RouteTable routes;

  explicit Rig(std::uint64_t seed)
      : topology{[&] {
          sim::Rng rng{seed};
          return topo::make_irregular(topo::IrregularConfig{}, rng);
        }()},
        router{topology.switches()},
        routes{topology, router} {}
};

TEST(RouteTable, CoversAllHostPairs) {
  const Rig rig{1};
  EXPECT_EQ(rig.routes.num_hosts(), 64);
  for (topo::HostId s = 0; s < 64; s += 7) {
    for (topo::HostId d = 0; d < 64; d += 5) {
      const auto& p = rig.routes.path(s, d);
      EXPECT_TRUE(p.valid_shape());
      EXPECT_EQ(p.switches.front(), rig.topology.switch_of(s));
      EXPECT_EQ(p.switches.back(), rig.topology.switch_of(d));
    }
  }
}

TEST(RouteTable, SameSwitchHostsHaveZeroHops) {
  const Rig rig{2};
  // Hosts 0 and 16 share switch 0 under round-robin attachment.
  EXPECT_EQ(rig.routes.hops(0, 16), 0u);
}

TEST(RouteTable, MatchesRouterOutput) {
  const Rig rig{3};
  for (topo::HostId s = 0; s < 64; s += 13) {
    for (topo::HostId d = 0; d < 64; d += 11) {
      const auto direct = rig.router.route(rig.topology.switch_of(s),
                                           rig.topology.switch_of(d));
      EXPECT_EQ(rig.routes.path(s, d).switches, direct.switches);
    }
  }
}

TEST(RouteTable, DisjointnessDetectsSharedChannel) {
  const Rig rig{4};
  // A route is never disjoint from itself unless it has no links.
  for (topo::HostId s = 0; s < 8; ++s) {
    for (topo::HostId d = 0; d < 8; ++d) {
      if (rig.routes.hops(s, d) == 0) continue;
      EXPECT_FALSE(
          rig.routes.disjoint(rig.topology.switches(), s, d, s, d));
    }
  }
}

TEST(RouteTable, OppositeDirectionsAreDisjointChannels) {
  const Rig rig{5};
  // a->b and b->a use opposite directed channels of the same links under
  // a deterministic shortest-path router, so they never conflict.
  for (topo::HostId a = 0; a < 16; ++a) {
    for (topo::HostId b = 0; b < 16; ++b) {
      if (a == b) continue;
      const auto& fwd = rig.routes.path(a, b);
      const auto& rev = rig.routes.path(b, a);
      // Only check when the router picked symmetric paths.
      if (fwd.links.size() != rev.links.size()) continue;
      auto sorted_f = fwd.links;
      auto sorted_r = rev.links;
      std::sort(sorted_f.begin(), sorted_f.end());
      std::sort(sorted_r.begin(), sorted_r.end());
      if (sorted_f != sorted_r) continue;
      EXPECT_TRUE(rig.routes.disjoint(rig.topology.switches(), a, b, b, a));
    }
  }
}

}  // namespace
}  // namespace nimcast::routing
