#include "routing/routing.hpp"

#include <gtest/gtest.h>

namespace nimcast::routing {
namespace {

TEST(RoutingUtil, DirectedChannelNumbering) {
  const topo::Graph g{3, {{0, 1}, {1, 2}}};
  EXPECT_EQ(directed_channel(g, 0, 0), 0);  // a->b of link 0
  EXPECT_EQ(directed_channel(g, 0, 1), 1);  // b->a of link 0
  EXPECT_EQ(directed_channel(g, 1, 1), 2);
  EXPECT_EQ(directed_channel(g, 1, 2), 3);
}

TEST(RoutingUtil, DirectedChannelRejectsForeignSwitch) {
  const topo::Graph g{3, {{0, 1}, {1, 2}}};
  EXPECT_THROW((void)directed_channel(g, 0, 2), std::invalid_argument);
}

TEST(RoutingUtil, RouteChannelsFollowRoute) {
  const topo::Graph g{3, {{0, 1}, {1, 2}}};
  const SwitchRoute r{{0, 1, 2}, {0, 1}, {}};
  EXPECT_EQ(route_channels(g, r), (std::vector<std::int32_t>{0, 2}));
  const SwitchRoute rev{{2, 1, 0}, {1, 0}, {}};
  EXPECT_EQ(route_channels(g, rev), (std::vector<std::int32_t>{3, 1}));
}

/// A deliberately cyclic "router" on a triangle: every message goes the
/// long way round (two hops clockwise), producing the classic circular
/// channel dependency that wormhole routing deadlocks on.
class ClockwiseRouter final : public Router {
 public:
  explicit ClockwiseRouter(const topo::Graph& g) : g_{g} {}
  [[nodiscard]] SwitchRoute route(topo::SwitchId src,
                                  topo::SwitchId dst) const override {
    if (src == dst) return SwitchRoute{{src}, {}, {}};
    SwitchRoute r;
    r.switches.push_back(src);
    topo::SwitchId cur = src;
    while (cur != dst) {
      const topo::SwitchId next = (cur + 1) % 3;
      for (topo::LinkId e = 0; e < g_.num_edges(); ++e) {
        const auto& edge = g_.edge(e);
        if ((edge.a == cur && edge.b == next) ||
            (edge.b == cur && edge.a == next)) {
          r.links.push_back(e);
          break;
        }
      }
      r.switches.push_back(next);
      cur = next;
    }
    return r;
  }
  [[nodiscard]] const char* name() const override { return "clockwise"; }

 private:
  const topo::Graph& g_;
};

TEST(RoutingUtil, DeadlockCheckerCatchesCyclicDependencies) {
  const topo::Graph g{3, {{0, 1}, {1, 2}, {2, 0}}};
  const ClockwiseRouter router{g};
  EXPECT_FALSE(deadlock_free(g, router));
}

TEST(RoutingUtil, SwitchRouteShapeValidation) {
  EXPECT_FALSE((SwitchRoute{{}, {}, {}}).valid_shape());
  EXPECT_TRUE((SwitchRoute{{3}, {}, {}}).valid_shape());
  EXPECT_TRUE((SwitchRoute{{0, 1}, {0}, {}}).valid_shape());
  EXPECT_FALSE((SwitchRoute{{0, 1}, {}, {}}).valid_shape());
}

}  // namespace
}  // namespace nimcast::routing
