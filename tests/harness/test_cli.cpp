#include "harness/cli.hpp"

#include <gtest/gtest.h>

namespace nimcast::harness {
namespace {

Cli make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Cli{static_cast<int>(args.size()), args.data()};
}

TEST(Cli, SpaceAndEqualsSyntax) {
  Cli cli = make({"--op", "multicast", "--bytes=1024"});
  EXPECT_EQ(cli.get_string("op", "x"), "multicast");
  EXPECT_EQ(cli.get_int("bytes", 0), 1024);
  EXPECT_TRUE(cli.finish());
}

TEST(Cli, FallbacksWhenAbsent) {
  Cli cli = make({});
  EXPECT_EQ(cli.get_string("op", "multicast"), "multicast");
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(cli.get_flag("verbose"));
  EXPECT_TRUE(cli.finish());
}

TEST(Cli, Flags) {
  Cli a = make({"--verbose"});
  EXPECT_TRUE(a.get_flag("verbose"));
  Cli b = make({"--verbose", "false"});
  EXPECT_FALSE(b.get_flag("verbose"));
  Cli c = make({"--verbose=true"});
  EXPECT_TRUE(c.get_flag("verbose"));
}

TEST(Cli, UnknownOptionRejectedAtFinish) {
  Cli cli = make({"--op", "x", "--oops", "1"});
  (void)cli.get_string("op", "");
  EXPECT_THROW((void)cli.finish(), std::invalid_argument);
}

TEST(Cli, HelpShortCircuits) {
  Cli cli = make({"--help"});
  EXPECT_FALSE(cli.finish());
  Cli dash = make({"-h"});
  EXPECT_FALSE(dash.finish());
}

TEST(Cli, BadNumbersThrow) {
  Cli cli = make({"--n", "12x", "--d", "1.5y"});
  EXPECT_THROW((void)cli.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)cli.get_double("d", 0), std::invalid_argument);
}

TEST(Cli, PositionalArgumentsRejected) {
  EXPECT_THROW(make({"stray"}), std::invalid_argument);
}

TEST(Cli, NegativeNumbersAsValues) {
  // "--n -5": the next token starts with '-' but not '--', so it is a
  // value.
  Cli cli = make({"--n", "-5"});
  EXPECT_EQ(cli.get_int("n", 0), -5);
}

TEST(Cli, UsageListsDescribedOptions) {
  Cli cli = make({});
  cli.describe("op", "what to run").describe("bytes", "message size");
  const auto u = cli.usage();
  EXPECT_NE(u.find("--op"), std::string::npos);
  EXPECT_NE(u.find("message size"), std::string::npos);
}

}  // namespace
}  // namespace nimcast::harness
