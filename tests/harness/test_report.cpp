#include "harness/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace nimcast::harness {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t{{"n", "latency"}};
  t.add_row({"8", "42.0"});
  t.add_row({"64", "199.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("n   latency"), std::string::npos);
  EXPECT_NE(out.find("64  199.5"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(std::int64_t{42}), "42");
}

TEST(Table, RowArityEnforced) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, EmptyHeadersRejected) {
  EXPECT_THROW((Table{{}}), std::invalid_argument);
}

TEST(Table, CsvRoundTrip) {
  Table t{{"x", "y"}};
  t.add_row({"1", "2.5"});
  t.add_row({"3", "4.5"});
  const std::string path = "/tmp/nimcast_test_table.csv";
  t.write_csv(path);
  std::ifstream in{path};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4.5");
  std::remove(path.c_str());
}

TEST(Table, CsvRejectsCommasInCells) {
  Table t{{"a"}};
  t.add_row({"1,2"});
  EXPECT_THROW(t.write_csv("/tmp/nimcast_bad.csv"), std::invalid_argument);
}

TEST(Table, RowsCounted) {
  Table t{{"a"}};
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"}).add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace nimcast::harness
