#include "harness/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/testbed.hpp"

namespace nimcast::harness {
namespace {

TEST(ConfiguredThreads, RespectsEnvironment) {
  setenv("NIMCAST_THREADS", "3", 1);
  EXPECT_EQ(configured_threads(), 3);
  setenv("NIMCAST_THREADS", "1", 1);
  EXPECT_EQ(configured_threads(), 1);
  setenv("NIMCAST_THREADS", "bogus", 1);
  EXPECT_GE(configured_threads(), 1);
  unsetenv("NIMCAST_THREADS");
  EXPECT_GE(configured_threads(), 1);
}

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    WorkerPool pool{threads};
    std::vector<std::atomic<int>> hits(257);
    pool.for_each_index(hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkerPool, ReusableAcrossBatches) {
  WorkerPool pool{4};
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> sum{0};
    pool.for_each_index(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(WorkerPool, EmptyBatchIsNoop) {
  WorkerPool pool{4};
  pool.for_each_index(0, [](std::size_t) { FAIL() << "job ran"; });
}

TEST(WorkerPool, PropagatesExceptions) {
  WorkerPool pool{4};
  EXPECT_THROW(pool.for_each_index(64,
                                   [](std::size_t i) {
                                     if (i == 13) {
                                       throw std::runtime_error("boom");
                                     }
                                   }),
               std::runtime_error);
  // The pool must stay usable after a failed batch.
  std::atomic<int> ran{0};
  pool.for_each_index(8, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 8);
}

TEST(WorkerPool, ThrowSurfacesOnCallingThreadAndPoolDrains) {
  // A replication that throws inside a worker must surface as a normal
  // catchable exception on the thread that called for_each_index, with
  // the batch fully drained before control returns.
  WorkerPool pool{4};
  const auto caller = std::this_thread::get_id();
  bool caught = false;
  try {
    pool.for_each_index(32, [](std::size_t i) {
      if (i == 7) throw std::logic_error("replication 7 failed");
    });
  } catch (const std::logic_error& e) {
    caught = true;
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_STREQ(e.what(), "replication 7 failed");
  }
  EXPECT_TRUE(caught);
  // Drained: the very next batch runs to completion on the same pool.
  std::atomic<int> ran{0};
  pool.for_each_index(16, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 16);
}

TEST(WorkerPool, FirstErrorWinsOnTheInlinePath) {
  // threads <= 1 runs inline in index order, so "first one wins" is
  // deterministic: the earliest throwing index is the one reported.
  WorkerPool pool{1};
  try {
    pool.for_each_index(64, [](std::size_t i) {
      if (i == 5 || i == 13) {
        throw std::runtime_error("job " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 5");
  }
}

TEST(WorkerPool, ExactlyOneOfManyConcurrentErrorsSurvives) {
  // Every job throws; exactly one of those exceptions must surface,
  // intact, and the rest are swallowed without corrupting the pool.
  WorkerPool pool{4};
  try {
    pool.for_each_index(64, [](std::size_t i) {
      throw std::runtime_error("job " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string{e.what()}.rfind("job ", 0), 0u)
        << "surviving error must be one of the thrown ones, unmangled";
  }
  std::atomic<int> ran{0};
  pool.for_each_index(8, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ParallelForEach, SerialFallbackRunsInOrder) {
  std::vector<std::size_t> order;
  parallel_for_each(
      10, [&](std::size_t i) { order.push_back(i); }, 1);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

// --- Determinism contract: parallel testbed == serial testbed, bit for
// bit, for every thread count. ---

IrregularTestbed::Config stress_config() {
  IrregularTestbed::Config cfg;
  cfg.num_topologies = 3;
  cfg.sets_per_topology = 7;
  cfg.seed = 20260806;
  return cfg;
}

void expect_identical(const sim::Summary& a, const sim::Summary& b) {
  ASSERT_EQ(a.count(), b.count());
  // Exact equality on purpose: the parallel path folds samples in
  // replication order, so there is no floating-point wiggle room.
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.sum(), b.sum());
}

void expect_identical(const MeasurePoint& a, const MeasurePoint& b) {
  expect_identical(a.latency_us, b.latency_us);
  expect_identical(a.block_us, b.block_us);
  expect_identical(a.peak_buffer, b.peak_buffer);
  expect_identical(a.buffer_integral, b.buffer_integral);
}

TEST(ParallelTestbed, BitIdenticalAcrossThreadCounts) {
  const IrregularTestbed bed{stress_config()};
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> counts{1, 4};
  if (hw > 1) counts.push_back(static_cast<int>(hw));

  for (const std::int32_t n : {8, 24}) {
    for (const auto style :
         {mcast::NiStyle::kSmartFcfs, mcast::NiStyle::kSmartFpfs}) {
      const auto serial =
          bed.measure(n, 4, TreeSpec::optimal(), style,
                      OrderingKind::kCco, /*threads=*/1);
      for (const int threads : counts) {
        const auto parallel = bed.measure(n, 4, TreeSpec::optimal(), style,
                                          OrderingKind::kCco, threads);
        expect_identical(serial, parallel);
      }
    }
  }
}

TEST(ParallelTestbed, RandomOrderingAlsoBitIdentical) {
  // kRandom draws the base chain from the per-replication stream; the
  // parallel path must preserve those draws exactly.
  const IrregularTestbed bed{stress_config()};
  const auto serial = bed.measure(12, 2, TreeSpec::binomial(),
                                  mcast::NiStyle::kSmartFpfs,
                                  OrderingKind::kRandom, /*threads=*/1);
  const auto parallel = bed.measure(12, 2, TreeSpec::binomial(),
                                    mcast::NiStyle::kSmartFpfs,
                                    OrderingKind::kRandom, /*threads=*/4);
  expect_identical(serial, parallel);
}

TEST(ParallelMeasurePoint, BitIdenticalAcrossThreadCounts) {
  // A 1-topology bed exercises the repetition-level parallel split that
  // measure_point also uses.
  IrregularTestbed::Config cfg = stress_config();
  cfg.num_topologies = 1;
  cfg.sets_per_topology = 13;
  const IrregularTestbed one{cfg};
  const auto serial = one.measure(16, 3, TreeSpec::kbinomial(2),
                                  mcast::NiStyle::kSmartFpfs,
                                  OrderingKind::kCco, /*threads=*/1);
  for (const int threads : {2, 4, 7}) {
    const auto parallel = one.measure(16, 3, TreeSpec::kbinomial(2),
                                      mcast::NiStyle::kSmartFpfs,
                                      OrderingKind::kCco, threads);
    expect_identical(serial, parallel);
  }
}

class ConfiguredThreadsTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("NIMCAST_THREADS"); }

  static int with_env(const char* value) {
    setenv("NIMCAST_THREADS", value, 1);
    return configured_threads();
  }

  static int fallback() {
    unsetenv("NIMCAST_THREADS");
    return configured_threads();
  }
};

TEST_F(ConfiguredThreadsTest, ValidValuesAreUsedVerbatim) {
  EXPECT_EQ(with_env("1"), 1);
  EXPECT_EQ(with_env("7"), 7);
  EXPECT_EQ(with_env(" 12 "), 12);  // surrounding whitespace tolerated
}

TEST_F(ConfiguredThreadsTest, ZeroAndNegativeFallBackToAuto) {
  const int expected = fallback();
  EXPECT_GE(expected, 1);
  EXPECT_EQ(with_env("0"), expected);
  EXPECT_EQ(with_env("-3"), expected);
}

TEST_F(ConfiguredThreadsTest, NonNumericFallsBackToAuto) {
  const int expected = fallback();
  EXPECT_EQ(with_env(""), expected);
  EXPECT_EQ(with_env("lots"), expected);
  EXPECT_EQ(with_env("4abc"), expected);  // no silent stoi truncation
  EXPECT_EQ(with_env("3.5"), expected);
  EXPECT_EQ(with_env("0x10"), expected);
}

TEST_F(ConfiguredThreadsTest, AbsurdValuesAreClamped) {
  EXPECT_EQ(with_env("100000"), kMaxThreads);
  EXPECT_EQ(with_env("99999999999999999999"), fallback());  // overflow
  EXPECT_EQ(with_env("512"), kMaxThreads);
}

class ConfiguredShardsTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("NIMCAST_SHARDS"); }

  static int with_env(const char* value) {
    setenv("NIMCAST_SHARDS", value, 1);
    return configured_shards();
  }
};

TEST_F(ConfiguredShardsTest, UnsetMeansAuto) {
  unsetenv("NIMCAST_SHARDS");
  EXPECT_EQ(configured_shards(), 0);
}

TEST_F(ConfiguredShardsTest, ParsesStrictlyAndClamps) {
  EXPECT_EQ(with_env("1"), 1);
  EXPECT_EQ(with_env("4"), 4);
  EXPECT_EQ(with_env(" 8 "), 8);
  EXPECT_EQ(with_env("0"), 0);       // auto
  EXPECT_EQ(with_env("-2"), 0);      // auto
  EXPECT_EQ(with_env("4abc"), 0);    // no silent truncation
  EXPECT_EQ(with_env("100000"), kMaxThreads);
}

TEST_F(ConfiguredShardsTest, EnvOverridesThePolicy) {
  setenv("NIMCAST_SHARDS", "3", 1);
  EXPECT_EQ(pick_shards(16, 64, 100), 3);
  EXPECT_EQ(pick_shards(1, 2048, 1), 3);
}

TEST_F(ConfiguredShardsTest, AutoPolicyFillsSpareThreadsWithShards) {
  unsetenv("NIMCAST_SHARDS");
  // Fabrics thinner than one shard's worth of hosts never shard:
  // barrier overhead would dominate.
  EXPECT_EQ(pick_shards(16, kMinHostsPerShard - 4, 1), 1);
  EXPECT_EQ(pick_shards(16, 2 * kMinHostsPerShard - 1, 1), 1);
  // Enough replications to fill the worker budget: replication
  // parallelism wins outright.
  EXPECT_EQ(pick_shards(8, 1024, 8), 1);
  EXPECT_EQ(pick_shards(8, 1024, 100), 1);
  // Under-filled budget: spare threads become shards, bounded by the
  // per-shard host floor — no ≥512-host cliff.
  EXPECT_EQ(pick_shards(16, 128, 1), 2);
  EXPECT_EQ(pick_shards(16, 256, 1), 4);
  EXPECT_EQ(pick_shards(8, 1024, 1), 8);
  EXPECT_EQ(pick_shards(8, 1024, 4), 2);
  EXPECT_EQ(pick_shards(64, 1024, 1), kMaxAutoShards);  // capped
  // A single spare thread per replication stays serial.
  EXPECT_EQ(pick_shards(9, 1024, 8), 1);
}

class ConfiguredSelectionTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("NIMCAST_SELECTION"); }

  static SelectionOverride with_env(const char* value) {
    setenv("NIMCAST_SELECTION", value, 1);
    return configured_selection();
  }
};

TEST_F(ConfiguredSelectionTest, UnsetKeepsTheConfiguredPolicy) {
  unsetenv("NIMCAST_SELECTION");
  EXPECT_EQ(configured_selection(), SelectionOverride::kUnset);
}

TEST_F(ConfiguredSelectionTest, ParsesTheTwoPolicies) {
  EXPECT_EQ(with_env("static"), SelectionOverride::kStatic);
  EXPECT_EQ(with_env("adaptive"), SelectionOverride::kAdaptive);
  EXPECT_EQ(with_env(" adaptive "), SelectionOverride::kAdaptive);
  EXPECT_EQ(with_env("\tstatic\n"), SelectionOverride::kStatic);
}

TEST_F(ConfiguredSelectionTest, RejectsMalformedValues) {
  EXPECT_EQ(with_env(""), SelectionOverride::kUnset);
  EXPECT_EQ(with_env("Adaptive"), SelectionOverride::kUnset);  // exact match
  EXPECT_EQ(with_env("adaptive extra"), SelectionOverride::kUnset);
  EXPECT_EQ(with_env("adaptivex"), SelectionOverride::kUnset);
  EXPECT_EQ(with_env("1"), SelectionOverride::kUnset);
}

class ConfiguredWindowTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("NIMCAST_WINDOW"); }

  static std::int64_t with_env(const char* value) {
    setenv("NIMCAST_WINDOW", value, 1);
    return configured_window_ns();
  }
};

TEST_F(ConfiguredWindowTest, UnsetMeansAuto) {
  unsetenv("NIMCAST_WINDOW");
  EXPECT_EQ(configured_window_ns(), 0);
}

TEST_F(ConfiguredWindowTest, ParsesStrictlyAndClamps) {
  EXPECT_EQ(with_env("1"), 1);
  EXPECT_EQ(with_env("100"), 100);
  EXPECT_EQ(with_env(" 50 "), 50);   // surrounding whitespace tolerated
  EXPECT_EQ(with_env("0"), 0);       // auto
  EXPECT_EQ(with_env("-7"), 0);      // auto
  EXPECT_EQ(with_env(""), 0);        // auto
  EXPECT_EQ(with_env("80ns"), 0);    // no silent truncation
  EXPECT_EQ(with_env("2.5"), 0);
  EXPECT_EQ(with_env("99999999999999999999"), 0);  // overflow
  EXPECT_EQ(with_env("2000000000"), kMaxWindowNs);
}

TEST_F(ConfiguredWindowTest, NarrowWindowPreservesTestbedResults) {
  // A narrower-than-auto window changes only how often the sharded
  // engine barriers, never what it computes: results stay bit-identical
  // to the serial reference.
  IrregularTestbed::Config cfg = stress_config();
  cfg.num_topologies = 1;
  cfg.sets_per_topology = 2;
  const IrregularTestbed bed{cfg};
  const auto serial = bed.measure(12, 2, TreeSpec::optimal(),
                                  mcast::NiStyle::kSmartFpfs,
                                  OrderingKind::kCco, /*threads=*/1);
  setenv("NIMCAST_SHARDS", "4", 1);
  setenv("NIMCAST_WINDOW", "40", 1);  // narrower than the 100 ns t_hop
  const auto narrow = bed.measure(12, 2, TreeSpec::optimal(),
                                  mcast::NiStyle::kSmartFpfs,
                                  OrderingKind::kCco, /*threads=*/4);
  unsetenv("NIMCAST_SHARDS");
  unsetenv("NIMCAST_WINDOW");
  expect_identical(serial, narrow);
}

TEST(ParallelTestbed, EnvVariableSelectsThreadCount) {
  // threads=0 defers to NIMCAST_THREADS; both must match the explicit
  // serial result.
  const IrregularTestbed bed{stress_config()};
  const auto serial = bed.measure(10, 2, TreeSpec::optimal(),
                                  mcast::NiStyle::kSmartFpfs,
                                  OrderingKind::kCco, /*threads=*/1);
  setenv("NIMCAST_THREADS", "4", 1);
  const auto via_env = bed.measure(10, 2, TreeSpec::optimal(),
                                   mcast::NiStyle::kSmartFpfs,
                                   OrderingKind::kCco, /*threads=*/0);
  unsetenv("NIMCAST_THREADS");
  expect_identical(serial, via_env);
}

}  // namespace
}  // namespace nimcast::harness
