// Chaos soak: seeded randomized campaigns of (fabric x operation x fault
// schedule) — including mid-stream root kills and link flaps — asserting
// the robustness invariants end to end, plus byte-determinism of every
// campaign across reruns and engine shard counts. Registered under the
// `soak` ctest label; NIMCAST_QUICK=1 shrinks the campaign count.

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/chaos.hpp"

namespace nimcast::harness {
namespace {

std::int32_t soak_campaigns() {
  return std::getenv("NIMCAST_QUICK") != nullptr ? 12 : 50;
}

TEST(ChaosSoak, SoakIsCleanAndByteDeterministic) {
  ChaosConfig config;
  config.campaigns = soak_campaigns();
  const ChaosSoak soak{config};
  const ChaosReport report = soak.run();

  ASSERT_EQ(report.campaigns, config.campaigns);
  EXPECT_EQ(report.complete + report.partial + report.failed,
            report.campaigns);
  // run() already reran every campaign (and a 2-shard variant of every
  // shard_check_every-th) and folded any digest mismatch into
  // violations, so 0 here certifies both the invariants and the
  // byte-determinism of the whole soak.
  EXPECT_EQ(report.violations, 0) << [&] {
    std::string all;
    for (const auto& msg : report.violation_messages) {
      all += msg;
      all += '\n';
    }
    return all;
  }();
  // The mix must actually exercise the fail-over machinery.
  EXPECT_GT(report.root_kills, 0);
  EXPECT_GT(report.root_handoffs, 0);
  EXPECT_GT(report.repairs + report.replans, 0);

  // A second full soak from the same seed is byte-identical.
  const ChaosReport again = soak.run();
  EXPECT_EQ(report.digest, again.digest);
}

TEST(ChaosSoak, CampaignIsPureInConfigAndIndex) {
  const ChaosConfig config;
  for (const std::int32_t index : {0, 1, 5}) {
    const auto a = ChaosSoak::campaign(config, index, 1, 0);
    const auto b = ChaosSoak::campaign(config, index, 1, 0);
    EXPECT_EQ(a.digest, b.digest) << "campaign " << index;
    EXPECT_EQ(a.outcome, b.outcome);
    // And independent of how the simulation is sharded.
    const auto sharded = ChaosSoak::campaign(config, index, 2, 2);
    EXPECT_EQ(a.digest, sharded.digest) << "campaign " << index;
  }
}

TEST(ChaosSoak, DifferentSeedsDrawDifferentCampaigns) {
  ChaosConfig a;
  a.campaigns = 6;
  ChaosConfig b = a;
  b.seed ^= 0xdeadbeef;
  const auto ra = ChaosSoak{a}.run();
  const auto rb = ChaosSoak{b}.run();
  EXPECT_NE(ra.digest, rb.digest);
}

}  // namespace
}  // namespace nimcast::harness
