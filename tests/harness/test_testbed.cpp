#include "harness/testbed.hpp"

#include <gtest/gtest.h>

namespace nimcast::harness {
namespace {

IrregularTestbed::Config small_config() {
  IrregularTestbed::Config cfg;
  cfg.num_topologies = 2;
  cfg.sets_per_topology = 3;
  cfg.seed = 7;
  return cfg;
}

TEST(Testbed, SampleCountMatchesRepetitions) {
  const IrregularTestbed bed{small_config()};
  const auto p = bed.measure(8, 2, TreeSpec::binomial(),
                             mcast::NiStyle::kSmartFpfs);
  EXPECT_EQ(p.latency_us.count(), 6u);
  EXPECT_EQ(p.block_us.count(), 6u);
}

TEST(Testbed, DeterministicAcrossInstances) {
  const IrregularTestbed a{small_config()};
  const IrregularTestbed b{small_config()};
  const auto pa =
      a.measure(12, 4, TreeSpec::optimal(), mcast::NiStyle::kSmartFpfs);
  const auto pb =
      b.measure(12, 4, TreeSpec::optimal(), mcast::NiStyle::kSmartFpfs);
  EXPECT_DOUBLE_EQ(pa.latency_us.mean(), pb.latency_us.mean());
  EXPECT_DOUBLE_EQ(pa.latency_us.min(), pb.latency_us.min());
  EXPECT_DOUBLE_EQ(pa.latency_us.max(), pb.latency_us.max());
}

TEST(Testbed, SeedChangesResults) {
  auto cfg = small_config();
  const IrregularTestbed a{cfg};
  cfg.seed = 8;
  const IrregularTestbed b{cfg};
  const auto pa =
      a.measure(12, 4, TreeSpec::optimal(), mcast::NiStyle::kSmartFpfs);
  const auto pb =
      b.measure(12, 4, TreeSpec::optimal(), mcast::NiStyle::kSmartFpfs);
  EXPECT_NE(pa.latency_us.mean(), pb.latency_us.mean());
}

TEST(Testbed, PairedDrawsAcrossTreeSpecs) {
  // Different specs over the same testbed use identical participant
  // draws, so single-packet binomial == single-packet optimal (the
  // optimal k-binomial at m=1 IS the binomial tree).
  const IrregularTestbed bed{small_config()};
  const auto pb =
      bed.measure(16, 1, TreeSpec::binomial(), mcast::NiStyle::kSmartFpfs);
  const auto po =
      bed.measure(16, 1, TreeSpec::optimal(), mcast::NiStyle::kSmartFpfs);
  EXPECT_DOUBLE_EQ(pb.latency_us.mean(), po.latency_us.mean());
}

TEST(Testbed, OptimalBeatsBinomialForManyPackets) {
  const IrregularTestbed bed{small_config()};
  const auto pb =
      bed.measure(16, 16, TreeSpec::binomial(), mcast::NiStyle::kSmartFpfs);
  const auto po =
      bed.measure(16, 16, TreeSpec::optimal(), mcast::NiStyle::kSmartFpfs);
  EXPECT_LT(po.latency_us.mean(), pb.latency_us.mean());
}

TEST(Testbed, RandomOrderingUsuallyBlocksMore) {
  const IrregularTestbed bed{small_config()};
  const auto cco = bed.measure(24, 4, TreeSpec::optimal(),
                               mcast::NiStyle::kSmartFpfs,
                               OrderingKind::kCco);
  const auto rnd = bed.measure(24, 4, TreeSpec::optimal(),
                               mcast::NiStyle::kSmartFpfs,
                               OrderingKind::kRandom);
  EXPECT_LE(cco.block_us.mean(), rnd.block_us.mean());
}

TEST(Testbed, RejectsBadArguments) {
  const IrregularTestbed bed{small_config()};
  EXPECT_THROW((void)bed.measure(1, 1, TreeSpec::binomial(),
                                 mcast::NiStyle::kSmartFpfs),
               std::invalid_argument);
  EXPECT_THROW((void)bed.measure(65, 1, TreeSpec::binomial(),
                                 mcast::NiStyle::kSmartFpfs),
               std::invalid_argument);
  EXPECT_THROW((void)bed.measure(8, 0, TreeSpec::binomial(),
                                 mcast::NiStyle::kSmartFpfs),
               std::invalid_argument);
  IrregularTestbed::Config bad = small_config();
  bad.num_topologies = 0;
  EXPECT_THROW((IrregularTestbed{bad}), std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::harness
