#include "harness/tree_spec.hpp"

#include <gtest/gtest.h>

namespace nimcast::harness {
namespace {

TEST(TreeSpec, BinomialResolvesToCeilLog2) {
  EXPECT_EQ(TreeSpec::binomial().resolve_k(16, 1), 4);
  EXPECT_EQ(TreeSpec::binomial().resolve_k(17, 9), 5);
}

TEST(TreeSpec, LinearAlwaysOne) {
  EXPECT_EQ(TreeSpec::linear().resolve_k(64, 1), 1);
  EXPECT_EQ(TreeSpec::linear().resolve_k(2, 32), 1);
}

TEST(TreeSpec, FixedKPassesThrough) {
  EXPECT_EQ(TreeSpec::kbinomial(3).resolve_k(64, 8), 3);
}

TEST(TreeSpec, OptimalTracksTheorem3) {
  for (std::int32_t n : {8, 16, 48, 64}) {
    for (std::int32_t m : {1, 2, 8, 32}) {
      EXPECT_EQ(TreeSpec::optimal().resolve_k(n, m),
                core::optimal_k(n, m).k);
    }
  }
}

TEST(TreeSpec, BuildProducesValidTreeOfRightSizeAndFanout) {
  for (const TreeSpec spec : {TreeSpec::binomial(), TreeSpec::linear(),
                              TreeSpec::kbinomial(2), TreeSpec::optimal()}) {
    const auto tree = spec.build(23, 4);
    tree.validate();
    EXPECT_EQ(tree.size(), 23);
    EXPECT_LE(tree.max_children(), spec.resolve_k(23, 4));
  }
}

TEST(TreeSpec, Names) {
  EXPECT_EQ(TreeSpec::binomial().name(), "binomial");
  EXPECT_EQ(TreeSpec::linear().name(), "linear");
  EXPECT_EQ(TreeSpec::kbinomial(4).name(), "4-binomial");
  EXPECT_EQ(TreeSpec::optimal().name(), "opt-k-binomial");
}

TEST(TreeSpec, RejectsBadFixedK) {
  EXPECT_THROW((void)TreeSpec::kbinomial(0).resolve_k(8, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace nimcast::harness
