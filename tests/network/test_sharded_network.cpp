#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "network/fault_plan.hpp"
#include "network/wormhole_network.hpp"
#include "routing/up_down.hpp"
#include "sim/sharded.hpp"
#include "support/callback_sink.hpp"

namespace nimcast::net {
namespace {

using test_support::CallbackSink;
using test_support::bind_all_hosts;

/// Line of four switches 0-1-2-3, one host per switch. Link i connects
/// switch i and i+1. The canonical 2-shard partition {0,0,1,1} puts the
/// cut on link 1: traffic between the halves crosses shards, and the
/// forward channel of link 1 is owned by shard 0 (upstream switch 1)
/// while the worm's drain completes on shard 1 — exercising cross-shard
/// hops, remote releases and cross-cut FIFO hand-off.
struct Fabric {
  topo::Topology topology{topo::Graph{4, {{0, 1}, {1, 2}, {2, 3}}},
                          {0, 1, 2, 3},
                          "line4"};
  routing::UpDownRouter router{topology.switches()};
  routing::RouteTable routes{topology, router};
};

Packet packet(topo::HostId from, topo::HostId to, std::int32_t idx) {
  Packet p;
  p.message = 1;
  p.packet_index = idx;
  p.packet_count = 8;
  p.sender = from;
  p.dest = to;
  return p;
}

struct Send {
  sim::Time at;
  topo::HostId from;
  topo::HostId to;
  std::int32_t idx;
};

struct RunResult {
  /// Per destination host, in delivery order: (packet_index, time).
  std::vector<std::vector<std::pair<std::int32_t, sim::Time>>> deliveries;
  std::int64_t delivered = 0;
  std::int64_t dropped = 0;
  std::int64_t killed = 0;
  sim::Time block = sim::Time::zero();
  std::uint64_t events = 0;
  sim::Time last = sim::Time::zero();
};

RunResult run_serial(const Fabric& f, NetworkConfig cfg,
                     const std::vector<Send>& script) {
  sim::Simulator simctx;
  WormholeNetwork net{simctx, f.topology, f.routes, std::move(cfg)};
  RunResult r;
  r.deliveries.resize(static_cast<std::size_t>(f.topology.num_hosts()));
  CallbackSink sink{[&](const Packet& p) {
    r.deliveries[static_cast<std::size_t>(p.dest)].emplace_back(
        p.packet_index, simctx.now());
  }};
  bind_all_hosts(net, f.topology.num_hosts(), &sink);
  for (const Send& s : script) {
    const Packet p = packet(s.from, s.to, s.idx);
    if (s.at == sim::Time::zero()) {
      net.send(p);
    } else {
      simctx.schedule_at(s.at, [&net, p] { net.send(p); });
    }
  }
  simctx.run();
  r.delivered = net.packets_delivered();
  r.dropped = net.packets_dropped();
  r.killed = net.packets_killed();
  r.block = net.total_block_time();
  r.events = simctx.events_dispatched();
  r.last = simctx.last_event_time();
  return r;
}

RunResult run_sharded(const Fabric& f, NetworkConfig cfg,
                      const std::vector<Send>& script,
                      std::vector<std::int32_t> part, int shards,
                      int threads) {
  sim::ShardedSimulator sharded{shards, cfg.t_hop};
  WormholeNetwork net{sharded, f.topology, f.routes, std::move(cfg),
                      std::move(part)};
  RunResult r;
  // Each destination's deliveries are written only by its owner shard;
  // the outer vector never reallocates, so multi-threaded runs are
  // race-free.
  r.deliveries.resize(static_cast<std::size_t>(f.topology.num_hosts()));
  // The sink fires on the destination's owner shard, so it reads that
  // shard's clock.
  CallbackSink sink{[&](const Packet& d) {
    r.deliveries[static_cast<std::size_t>(d.dest)].emplace_back(
        d.packet_index, sharded.shard(net.shard_of_host(d.dest)).now());
  }};
  bind_all_hosts(net, f.topology.num_hosts(), &sink);
  for (const Send& s : script) {
    const Packet p = packet(s.from, s.to, s.idx);
    sim::Simulator& home = sharded.shard(net.shard_of_host(s.from));
    if (s.at == sim::Time::zero()) {
      net.send(p);
    } else {
      home.schedule_at(s.at, [&net, p] { net.send(p); });
    }
  }
  sharded.run(threads);
  r.delivered = net.packets_delivered();
  r.dropped = net.packets_dropped();
  r.killed = net.packets_killed();
  r.block = net.total_block_time();
  r.events = sharded.events_dispatched();
  r.last = sharded.last_event_time();
  return r;
}

void expect_same(const RunResult& serial, const RunResult& sharded) {
  EXPECT_EQ(serial.delivered, sharded.delivered);
  EXPECT_EQ(serial.dropped, sharded.dropped);
  EXPECT_EQ(serial.killed, sharded.killed);
  EXPECT_EQ(serial.block, sharded.block);
  EXPECT_EQ(serial.events, sharded.events);
  EXPECT_EQ(serial.last, sharded.last);
  ASSERT_EQ(serial.deliveries.size(), sharded.deliveries.size());
  for (std::size_t d = 0; d < serial.deliveries.size(); ++d) {
    EXPECT_EQ(serial.deliveries[d], sharded.deliveries[d]) << "dest " << d;
  }
}

const std::vector<std::int32_t> kHalves{0, 0, 1, 1};

TEST(ShardedNet, CtorRejectsMalformedPartitions) {
  Fabric f;
  sim::ShardedSimulator sharded{2, sim::Time::us(0.1)};
  EXPECT_THROW(
      (WormholeNetwork{sharded, f.topology, f.routes, NetworkConfig{},
                       std::vector<std::int32_t>{0, 0, 1}}),
      std::invalid_argument);
  EXPECT_THROW(
      (WormholeNetwork{sharded, f.topology, f.routes, NetworkConfig{},
                       std::vector<std::int32_t>{0, 0, 1, 2}}),
      std::invalid_argument);
  EXPECT_THROW(
      (WormholeNetwork{sharded, f.topology, f.routes, NetworkConfig{},
                       std::vector<std::int32_t>{0, 0, -1, 1}}),
      std::invalid_argument);
}

TEST(ShardedNet, CtorRejectsWideLookaheadButShardsLossAndPipelined) {
  Fabric f;
  {
    // Driver lookahead wider than one hop would let cross-shard hops
    // land inside an already-executed window.
    sim::ShardedSimulator wide{2, sim::Time::us(0.2)};
    EXPECT_THROW((WormholeNetwork{wide, f.topology, f.routes, NetworkConfig{},
                                  kHalves}),
                 std::invalid_argument);
  }
  // Lossy and pipelined-release configurations now construct sharded:
  // loss is a pure hash of packet identity (no RNG stream to serialize)
  // and pipelined releases travel as ordinary cross-shard mail. Window
  // feasibility for pipelined paths is enforced per worm at drain time,
  // not at construction.
  {
    sim::ShardedSimulator sharded{2, sim::Time::us(0.1)};
    NetworkConfig cfg;
    cfg.loss_rate = 0.1;
    EXPECT_NO_THROW(
        (WormholeNetwork{sharded, f.topology, f.routes, cfg, kHalves}));
  }
  {
    sim::ShardedSimulator sharded{2, sim::Time::us(0.1)};
    NetworkConfig cfg;
    cfg.release_model = ReleaseModel::kPipelined;
    EXPECT_NO_THROW(
        (WormholeNetwork{sharded, f.topology, f.routes, cfg, kHalves}));
  }
}

TEST(ShardedNet, LossyDeliveryAndDropsMatchSerial) {
  // The loss draw is a pure function of packet identity, so the sharded
  // run must drop exactly the same packets at exactly the same times.
  Fabric f;
  std::vector<Send> script;
  for (std::int32_t i = 0; i < 8; ++i) {
    script.push_back({sim::Time::us(0.05 * i), 0, 3, i});
    script.push_back({sim::Time::us(0.05 * i), 3, 1, i});
  }
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    NetworkConfig cfg;
    cfg.loss_rate = 0.3;
    cfg.loss_seed = seed;
    const RunResult serial = run_serial(f, cfg, script);
    EXPECT_GT(serial.dropped, 0) << "seed " << seed
                                 << ": want an actually lossy scenario";
    EXPECT_GT(serial.delivered, 0);
    for (int threads : {1, 2}) {
      expect_same(serial, run_sharded(f, cfg, script, kHalves, 2, threads));
    }
  }
}

TEST(ShardedNet, PipelinedReleaseMatchesSerial) {
  // Staggered releases cross the cut as ordinary logical events; the
  // contended hand-off order and block times must match the serial
  // engine exactly.
  Fabric f;
  std::vector<Send> script;
  for (std::int32_t i = 0; i < 6; ++i) {
    script.push_back({sim::Time::zero(), 0, 3, i});
    script.push_back({sim::Time::zero(), 1, 3, i});
  }
  NetworkConfig cfg;
  cfg.release_model = ReleaseModel::kPipelined;
  const RunResult serial = run_serial(f, cfg, script);
  EXPECT_GT(serial.block.count_ns(), 0);
  for (int threads : {1, 2}) {
    // The longest path (0 -> 3) crosses 3 switch links, so the widest
    // safe window is serialization - 3 * t_hop = 400 - 300 = 100 ns —
    // exactly the t_hop lookahead this driver uses, so every staggered
    // release just clears the window.
    expect_same(serial, run_sharded(f, cfg, script, kHalves, 2, threads));
  }
}

TEST(ShardedNet, CrossShardDeliveryMatchesSerial) {
  Fabric f;
  const std::vector<Send> script{{sim::Time::zero(), 0, 3, 0}};
  const RunResult serial = run_serial(f, NetworkConfig{}, script);
  // Uncontended 0->3: 5 channels * t_hop + serialization = 0.9us.
  ASSERT_EQ(serial.deliveries[3],
            (std::vector<std::pair<std::int32_t, sim::Time>>{
                {0, sim::Time::us(0.9)}}));
  for (int threads : {1, 2}) {
    expect_same(serial,
                run_sharded(f, NetworkConfig{}, script, kHalves, 2, threads));
  }
}

TEST(ShardedNet, RemoteReleaseHandsOffAcrossTheCutAtTheSerialInstant) {
  Fabric f;
  // B (1->3) wins the forward channel of link 1 at 0.1 and holds it until
  // its delivery at 0.8 (at-delivery release, mailed from shard 1 back to
  // shard 0). A (0->3) parks on that channel at 0.2 and must acquire it
  // via FIFO hand-off at exactly 0.8, delivering at 1.5.
  const std::vector<Send> script{{sim::Time::zero(), 1, 3, 0},
                                 {sim::Time::zero(), 0, 3, 1}};
  const RunResult serial = run_serial(f, NetworkConfig{}, script);
  ASSERT_EQ(serial.deliveries[3],
            (std::vector<std::pair<std::int32_t, sim::Time>>{
                {0, sim::Time::us(0.8)}, {1, sim::Time::us(1.5)}}));
  EXPECT_EQ(serial.block, sim::Time::us(0.6));
  for (int threads : {1, 2}) {
    expect_same(serial,
                run_sharded(f, NetworkConfig{}, script, kHalves, 2, threads));
  }
}

TEST(ShardedNet, ContendedTrafficInBothDirectionsMatchesSerial) {
  Fabric f;
  std::vector<Send> script;
  std::int32_t idx = 0;
  // Staggered bursts from every host to the far corner in both
  // directions: injection contention, cut contention, and hand-off
  // chains in each half.
  for (const auto& [from, to] : std::vector<std::pair<int, int>>{
           {0, 3}, {1, 2}, {3, 0}, {2, 1}, {0, 2}, {3, 1}}) {
    script.push_back({sim::Time::zero(), from, to, idx++});
    script.push_back({sim::Time::us(0.15), from, to, idx++});
  }
  const RunResult serial = run_serial(f, NetworkConfig{}, script);
  EXPECT_EQ(serial.delivered, 12);
  for (int threads : {1, 2}) {
    expect_same(serial,
                run_sharded(f, NetworkConfig{}, script, kHalves, 2, threads));
  }
}

NetworkConfig with_faults(FaultPlan plan) {
  NetworkConfig cfg;
  cfg.faults = std::move(plan);
  return cfg;
}

TEST(ShardedNet, FaultSweepKillMatchesSerial) {
  Fabric f;
  // The worm 0->3 acquires link 1's forward channel at 0.2; link 1 dies
  // at 0.25 while the worm holds it -> truncated by the fault sweep in
  // both engines, at the same instant.
  FaultPlan plan;
  plan.link_down(sim::Time::us(0.25), 1);
  const std::vector<Send> script{{sim::Time::zero(), 0, 3, 0}};
  const RunResult serial = run_serial(f, with_faults(plan), script);
  EXPECT_EQ(serial.killed, 1);
  EXPECT_EQ(serial.dropped, 1);
  EXPECT_EQ(serial.delivered, 0);
  for (int threads : {1, 2}) {
    expect_same(serial,
                run_sharded(f, with_faults(plan), script, kHalves, 2, threads));
  }
}

TEST(ShardedNet, HopIntoCondemnedChannelReplaysAtTheSerialArrivalInstant) {
  Fabric f;
  // The worm 0->3 is mid-hop toward link 2's forward channel (scheduled
  // at 0.2, arriving 0.3) when link 2 dies at 0.25. The serial engine
  // lets the hop fire and kills the worm on arrival at 0.3; the sharded
  // engine must convert the hop into a barrier-phase replay at 0.3.
  FaultPlan plan;
  plan.link_down(sim::Time::us(0.25), 2);
  const std::vector<Send> script{{sim::Time::zero(), 0, 3, 0}};
  const RunResult serial = run_serial(f, with_faults(plan), script);
  EXPECT_EQ(serial.killed, 1);
  EXPECT_EQ(serial.last, sim::Time::us(0.3));
  for (int threads : {1, 2}) {
    expect_same(serial,
                run_sharded(f, with_faults(plan), script, kHalves, 2, threads));
  }
}

TEST(ShardedNet, ChannelRecoveringBeforeArrivalSparesTheWorm) {
  Fabric f;
  // Same hop, but link 2 recovers at 0.28 -- before the 0.3 arrival. The
  // serial engine's hop lands on a live channel and the worm survives;
  // the sharded replay must re-check liveness and do the same.
  FaultPlan plan;
  plan.link_down(sim::Time::us(0.25), 2).link_up(sim::Time::us(0.28), 2);
  const std::vector<Send> script{{sim::Time::zero(), 0, 3, 0}};
  const RunResult serial = run_serial(f, with_faults(plan), script);
  EXPECT_EQ(serial.killed, 0);
  ASSERT_EQ(serial.deliveries[3],
            (std::vector<std::pair<std::int32_t, sim::Time>>{
                {0, sim::Time::us(0.9)}}));
  for (int threads : {1, 2}) {
    expect_same(serial,
                run_sharded(f, with_faults(plan), script, kHalves, 2, threads));
  }
}

TEST(ShardedNet, SinkDeliveryAndInjectionDropWorkSharded) {
  Fabric f;
  struct CountingSink : DeliverySink {
    int count = 0;
    void on_packet_delivered(const Packet&) override { ++count; }
  };
  FaultPlan plan;
  plan.switch_down(sim::Time::us(0.0), 3);
  sim::ShardedSimulator sharded{2, sim::Time::us(0.1)};
  WormholeNetwork net{sharded, f.topology, f.routes, with_faults(plan),
                      kHalves};
  CountingSink sink;
  CountingSink sink3;
  net.bind_sink(2, &sink);
  net.bind_sink(3, &sink3);
  net.send(packet(0, 2, 0));
  // Host 3's switch is down from t=0: the send at 0.5 is dropped at
  // injection (unreachable), on the sender's shard.
  sharded.shard(net.shard_of_host(0)).schedule_at(
      sim::Time::us(0.5), [&] { net.send(packet(0, 3, 1)); });
  sharded.run(2);
  EXPECT_EQ(sink.count, 1);
  EXPECT_EQ(sink3.count, 0);
  EXPECT_EQ(net.packets_delivered(), 1);
  EXPECT_EQ(net.packets_dropped(), 1);
  EXPECT_EQ(net.packets_killed(), 0);
  EXPECT_EQ(net.in_flight(), 0);
  EXPECT_EQ(net.worm_pool_free(), net.worm_pool_slots());
}

}  // namespace
}  // namespace nimcast::net
