#include <gtest/gtest.h>

#include "network/fault_plan.hpp"
#include "network/wormhole_network.hpp"
#include "routing/repair.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "support/callback_sink.hpp"

namespace nimcast::net {
namespace {

using test_support::CallbackSink;
using test_support::bind_all_hosts;

/// Line of three switches 0-1-2 with one host on each (host i on switch
/// i) plus a second host (3) on switch 0. Link 0 is sw0-sw1, link 1 is
/// sw1-sw2.
struct Rig {
  topo::Topology topology{topo::Graph{3, {{0, 1}, {1, 2}}},
                          {0, 1, 2, 0},
                          "line"};
  routing::UpDownRouter router{topology.switches()};
  routing::RouteTable routes{topology, router};
  sim::Simulator simctx;
  WormholeNetwork net;

  explicit Rig(NetworkConfig cfg = {})
      : net{simctx, topology, routes, std::move(cfg)} {}

  Packet packet(topo::HostId from, topo::HostId to, std::int32_t idx = 0) {
    Packet p;
    p.message = 1;
    p.packet_index = idx;
    p.packet_count = 8;
    p.sender = from;
    p.dest = to;
    return p;
  }
};

NetworkConfig with_faults(FaultPlan plan,
                          ReleaseModel model = ReleaseModel::kAtDelivery) {
  NetworkConfig cfg;
  cfg.faults = std::move(plan);
  cfg.release_model = model;
  return cfg;
}

TEST(FaultPlan, SortsByTimeWithInsertionOrderOnTies) {
  FaultPlan plan;
  plan.link_down(sim::Time::us(5.0), 1)
      .switch_down(sim::Time::us(1.0), 2)
      .link_up(sim::Time::us(5.0), 0);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kSwitchDown);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kLinkDown);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kLinkUp);
}

TEST(FaultPlan, RejectsNegativeTimeAndId) {
  FaultPlan plan;
  EXPECT_THROW(plan.link_down(sim::Time::us(-1.0), 0), std::invalid_argument);
  EXPECT_THROW(plan.switch_down(sim::Time::us(1.0), -1),
               std::invalid_argument);
}

TEST(FaultPlan, RandomIsAPureFunctionOfTheSeed) {
  const topo::Graph g{4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}};
  FaultPlan::RandomConfig cfg;
  cfg.link_fail_prob = 0.5;
  cfg.switch_fail_prob = 0.25;
  cfg.link_recover_after = sim::Time::us(10.0);
  sim::Rng a{42}, b{42}, c{43};
  const FaultPlan pa = FaultPlan::random(g, cfg, a);
  const FaultPlan pb = FaultPlan::random(g, cfg, b);
  const FaultPlan pc = FaultPlan::random(g, cfg, c);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa.events()[i].at, pb.events()[i].at);
    EXPECT_EQ(pa.events()[i].kind, pb.events()[i].kind);
    EXPECT_EQ(pa.events()[i].id, pb.events()[i].id);
  }
  // A different seed draws a different plan (with these probabilities on
  // this graph the chance of an identical schedule is negligible).
  bool same = pa.size() == pc.size();
  for (std::size_t i = 0; same && i < pa.size(); ++i) {
    same = pa.events()[i].at == pc.events()[i].at &&
           pa.events()[i].id == pc.events()[i].id;
  }
  EXPECT_FALSE(same);
}

TEST(FaultPlan, RandomEventsStayInsideTheWindow) {
  const topo::Graph g{4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}};
  FaultPlan::RandomConfig cfg;
  cfg.link_fail_prob = 1.0;
  cfg.window_start = sim::Time::us(10.0);
  cfg.window_end = sim::Time::us(20.0);
  sim::Rng rng{7};
  const FaultPlan plan = FaultPlan::random(g, cfg, rng);
  ASSERT_EQ(plan.size(), 4u);  // every link fails, none recover
  for (const auto& ev : plan.events()) {
    EXPECT_GE(ev.at, sim::Time::us(10.0));
    EXPECT_LT(ev.at, sim::Time::us(20.0));
  }
}

TEST(FaultInjection, NetworkRejectsOutOfRangeFaultIds) {
  FaultPlan bad_link;
  bad_link.link_down(sim::Time::us(1.0), 2);  // only links 0 and 1 exist
  EXPECT_THROW(Rig{with_faults(bad_link)}, std::invalid_argument);
  FaultPlan bad_switch;
  bad_switch.switch_down(sim::Time::us(1.0), 3);
  EXPECT_THROW(Rig{with_faults(bad_switch)}, std::invalid_argument);
}

TEST(FaultInjection, LinkDownMidFlightTruncatesTheWorm) {
  // 0 -> 2 acquires injection at 0, link0 at 0.1, link1 at 0.2; killing
  // link 1 at 0.25 catches the worm holding three channels.
  FaultPlan plan;
  plan.link_down(sim::Time::us(0.25), 1);
  Rig rig{with_faults(plan)};
  bool delivered = false;
  CallbackSink sink{[&](const Packet&) { delivered = true; }};
  bind_all_hosts(rig.net, 4, &sink);
  rig.net.send(rig.packet(0, 2));
  rig.simctx.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(rig.net.in_flight(), 0);
  EXPECT_EQ(rig.net.packets_killed(), 1);
  EXPECT_EQ(rig.net.packets_dropped(), 1);
  EXPECT_EQ(rig.net.packets_delivered(), 0);
  EXPECT_EQ(rig.net.faults_applied(), 1);
  EXPECT_TRUE(rig.net.fault_state().any_dead());

  // Every channel the dead worm held must be free again: a send over the
  // surviving segment (same injection channel, same link 0) delivers at
  // the uncontended latency from now.
  const sim::Time resend = rig.simctx.now();
  sim::Time delivered_at;
  CallbackSink resend_sink{
      [&](const Packet&) { delivered_at = rig.simctx.now(); }};
  bind_all_hosts(rig.net, 4, &resend_sink);
  rig.net.send(rig.packet(0, 1, 1));
  rig.simctx.run();
  EXPECT_EQ(delivered_at - resend, rig.net.uncontended_latency(1));
  EXPECT_EQ(rig.net.in_flight(), 0);
}

TEST(FaultInjection, HeaderArrivingAtDeadChannelIsKilled) {
  // The fault fires before the worm reaches link 1: the header walks into
  // the dead channel and the worm truncates there (stale routes still
  // point through it).
  FaultPlan plan;
  plan.link_down(sim::Time::us(0.05), 1);
  Rig rig{with_faults(plan)};
  bool delivered = false;
  CallbackSink sink{[&](const Packet&) { delivered = true; }};
  bind_all_hosts(rig.net, 4, &sink);
  rig.net.send(rig.packet(0, 2));
  rig.simctx.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(rig.net.in_flight(), 0);
  EXPECT_EQ(rig.net.packets_killed(), 1);
}

TEST(FaultInjection, RebindingRepairedRoutesDropsUnreachableAtInjection) {
  FaultPlan plan;
  plan.link_down(sim::Time::us(0.05), 1);
  Rig rig{with_faults(plan)};
  std::unique_ptr<routing::RouteTable> repaired;
  rig.net.on_fault = [&](const FaultEvent&) {
    repaired = routing::rebuild_updown(rig.topology, rig.net.fault_state(),
                                       /*epoch=*/1);
    rig.net.rebind_routes(*repaired);
  };
  rig.simctx.run();  // apply the fault; nothing else scheduled
  ASSERT_NE(repaired, nullptr);
  EXPECT_EQ(rig.net.routes().epoch(), 1);
  EXPECT_FALSE(rig.net.reachable(0, 2));
  EXPECT_TRUE(rig.net.reachable(0, 1));

  // Now the injection-time check fires: the packet consumes no wire time
  // and is not a kill (the worm never existed).
  CallbackSink sink{[](const Packet&) { FAIL(); }};
  bind_all_hosts(rig.net, 4, &sink);
  rig.net.send(rig.packet(0, 2));
  rig.simctx.run();
  EXPECT_EQ(rig.net.packets_dropped(), 1);
  EXPECT_EQ(rig.net.packets_killed(), 0);
  EXPECT_EQ(rig.net.in_flight(), 0);
}

TEST(FaultInjection, LinkRecoversAndCarriesTrafficAgain) {
  FaultPlan plan;
  plan.link_down(sim::Time::us(1.0), 1).link_up(sim::Time::us(2.0), 1);
  Rig rig{with_faults(plan)};
  bool delivered = false;
  CallbackSink sink{[&](const Packet&) { delivered = true; }};
  bind_all_hosts(rig.net, 4, &sink);
  rig.simctx.schedule_at(sim::Time::us(3.0), [&] {
    rig.net.send(rig.packet(0, 2));
  });
  rig.simctx.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(rig.net.faults_applied(), 2);
  EXPECT_FALSE(rig.net.fault_state().any_dead());
  EXPECT_EQ(rig.net.packets_killed(), 0);
}

TEST(FaultInjection, SwitchDownKillsHolderAndStrandedWaiterAlike) {
  // Worms 0->2 and 3->2 contend on link 0's forward channel; killing
  // switch 2 condemns link 1 and both ejection channels. The holder dies
  // walking into the dead channel; the parked waiter inherits link 0 on
  // the kill hand-off and dies the same way. No occupancy leaks.
  FaultPlan plan;
  plan.switch_down(sim::Time::us(0.15), 2);
  Rig rig{with_faults(plan)};
  int delivered = 0;
  CallbackSink sink{[&](const Packet&) { ++delivered; }};
  bind_all_hosts(rig.net, 4, &sink);
  rig.net.send(rig.packet(0, 2));
  rig.net.send(rig.packet(3, 2, 1));
  rig.simctx.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rig.net.in_flight(), 0);
  EXPECT_EQ(rig.net.packets_killed(), 2);
  EXPECT_FALSE(rig.net.host_alive(2));
  EXPECT_TRUE(rig.net.host_alive(0));

  // Hosts 0, 1, 3 survive; 0 -> 1 still works over link 0.
  const sim::Time resend = rig.simctx.now();
  sim::Time at;
  CallbackSink resend_sink{[&](const Packet&) { at = rig.simctx.now(); }};
  bind_all_hosts(rig.net, 4, &resend_sink);
  rig.net.send(rig.packet(0, 1, 2));
  rig.simctx.run();
  EXPECT_EQ(at - resend, rig.net.uncontended_latency(1));
}

TEST(FaultInjection, PipelinedDrainKillCancelsPendingReleases) {
  // Kill link 0 at 0.55us: the 0 -> 2 worm is draining (final channel
  // acquired at 0.3), its injection channel already released by the
  // staggered schedule (at 0.5), link 0 and later still pending. The
  // kill must free exactly the still-held channels — a double release
  // would corrupt FIFO hand-off for the next worm.
  FaultPlan plan;
  plan.link_down(sim::Time::us(0.55), 0);
  Rig rig{with_faults(plan, ReleaseModel::kPipelined)};
  bool delivered = false;
  CallbackSink sink{[&](const Packet&) { delivered = true; }};
  bind_all_hosts(rig.net, 4, &sink);
  rig.net.send(rig.packet(0, 2));
  rig.simctx.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(rig.net.in_flight(), 0);
  EXPECT_EQ(rig.net.packets_killed(), 1);

  // Host 3 shares switch 0; its path to host 0 uses only injection +
  // ejection channels, both of which must be free.
  const sim::Time resend = rig.simctx.now();
  sim::Time at;
  CallbackSink resend_sink{[&](const Packet&) { at = rig.simctx.now(); }};
  bind_all_hosts(rig.net, 4, &resend_sink);
  rig.net.send(rig.packet(3, 0, 1));
  rig.simctx.run();
  EXPECT_EQ(at - resend, rig.net.uncontended_latency(0));
}

TEST(FaultInjection, DrainingWormSurvivesFaultBehindIt) {
  // By 0.55us the pipelined worm has released its injection channel; a
  // fault on a channel it no longer holds must not kill it.
  FaultPlan plan;
  plan.switch_down(sim::Time::us(0.55), 0);
  NetworkConfig cfg = with_faults(plan, ReleaseModel::kPipelined);
  Rig rig{std::move(cfg)};
  bool delivered = false;
  CallbackSink sink{[&](const Packet&) { delivered = true; }};
  bind_all_hosts(rig.net, 4, &sink);
  rig.net.send(rig.packet(0, 2));
  rig.simctx.run();
  // Switch 0's death condemns link 0 and host 0/3 channels. The worm
  // still holds link 0's channel at 0.55 (release due 0.6), so it dies;
  // re-run with the fault a touch later to see it survive.
  EXPECT_FALSE(delivered);

  FaultPlan late;
  late.switch_down(sim::Time::us(0.75), 0);
  Rig rig2{with_faults(late, ReleaseModel::kPipelined)};
  bool delivered2 = false;
  CallbackSink sink2{[&](const Packet&) { delivered2 = true; }};
  bind_all_hosts(rig2.net, 4, &sink2);
  rig2.net.send(rig2.packet(0, 2));
  rig2.simctx.run();
  // At 0.75 the worm holds only link 1 and the ejection channel, both
  // alive: it drains normally at 0.8 despite its source switch dying.
  EXPECT_TRUE(delivered2);
  EXPECT_EQ(rig2.net.packets_killed(), 0);
}

TEST(FaultInjection, OnFaultFiresWithTheAppliedEvent) {
  FaultPlan plan;
  plan.link_down(sim::Time::us(2.0), 0).switch_down(sim::Time::us(4.0), 2);
  Rig rig{with_faults(plan)};
  std::vector<FaultEvent> seen;
  rig.net.on_fault = [&](const FaultEvent& ev) { seen.push_back(ev); };
  rig.simctx.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(seen[0].id, 0);
  EXPECT_EQ(seen[0].at, sim::Time::us(2.0));
  EXPECT_EQ(seen[1].kind, FaultKind::kSwitchDown);
  EXPECT_EQ(seen[1].id, 2);
}

TEST(FaultInjection, HostDownDropsTrafficBothWaysButSparesTheSwitch) {
  FaultPlan plan;
  plan.host_down(sim::Time::us(1.0), 2);
  Rig rig{with_faults(plan)};
  int delivered = 0;
  CallbackSink sink{[&](const Packet&) { ++delivered; }};
  bind_all_hosts(rig.net, 4, &sink);
  rig.simctx.run();  // apply the fault
  EXPECT_EQ(rig.net.faults_applied(), 1);
  EXPECT_FALSE(rig.net.host_alive(2));
  EXPECT_TRUE(rig.net.host_alive(0));
  // The switch graph is untouched: no dead switches or links.
  EXPECT_FALSE(rig.net.fault_state().any_dead());
  EXPECT_FALSE(rig.net.reachable(0, 2));
  EXPECT_FALSE(rig.net.reachable(2, 0));
  EXPECT_TRUE(rig.net.reachable(0, 1));

  // Sends touching the dead host drop at injection (no worm, no kill);
  // unrelated traffic is untouched.
  rig.net.send(rig.packet(0, 2));
  rig.net.send(rig.packet(2, 0, 1));
  rig.net.send(rig.packet(0, 1, 2));
  rig.simctx.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(rig.net.packets_dropped(), 2);
  EXPECT_EQ(rig.net.packets_killed(), 0);
  EXPECT_EQ(rig.net.in_flight(), 0);
}

TEST(FaultInjection, HostDownMidFlightTruncatesWormsOnItsChannels) {
  // The 0 -> 2 worm still spans the path when host 2 dies at 0.25us: its
  // ejection channel is condemned and the worm must truncate, freeing
  // every switch channel it held.
  FaultPlan plan;
  plan.host_down(sim::Time::us(0.25), 2);
  Rig rig{with_faults(plan)};
  bool delivered = false;
  CallbackSink sink{[&](const Packet&) { delivered = true; }};
  bind_all_hosts(rig.net, 4, &sink);
  rig.net.send(rig.packet(0, 2));
  rig.simctx.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(rig.net.in_flight(), 0);
  EXPECT_EQ(rig.net.packets_killed(), 1);

  // The freed channels carry surviving traffic at uncontended latency.
  const sim::Time resend = rig.simctx.now();
  sim::Time at;
  CallbackSink resend_sink{[&](const Packet&) { at = rig.simctx.now(); }};
  bind_all_hosts(rig.net, 4, &resend_sink);
  rig.net.send(rig.packet(0, 1, 1));
  rig.simctx.run();
  EXPECT_EQ(at - resend, rig.net.uncontended_latency(1));
}

TEST(FaultInjection, HostDownRejectsOutOfRangeId) {
  FaultPlan plan;
  plan.host_down(sim::Time::us(1.0), 4);  // hosts 0..3 exist
  EXPECT_THROW(Rig{with_faults(plan)}, std::invalid_argument);
}

TEST(FaultPlan, HostAwareRandomPreservesTheLinkSwitchDrawStream) {
  const topo::Graph g{4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}};
  FaultPlan::RandomConfig cfg;
  cfg.link_fail_prob = 0.5;
  cfg.switch_fail_prob = 0.25;
  // host_fail_prob == 0: the host-aware overload must be byte-identical
  // to the graph-only one (no extra draws consumed).
  sim::Rng a{42}, b{42};
  const FaultPlan base = FaultPlan::random(g, cfg, a);
  const FaultPlan aware = FaultPlan::random(g, 16, cfg, b);
  ASSERT_EQ(base.size(), aware.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base.events()[i].at, aware.events()[i].at);
    EXPECT_EQ(base.events()[i].kind, aware.events()[i].kind);
    EXPECT_EQ(base.events()[i].id, aware.events()[i].id);
  }
  // With host_fail_prob > 0 the link/switch schedule is unchanged and
  // host deaths are appended from draws consumed after it.
  cfg.host_fail_prob = 1.0;
  sim::Rng c{42};
  const FaultPlan hosts = FaultPlan::random(g, 3, cfg, c);
  ASSERT_EQ(hosts.size(), base.size() + 3);
  std::size_t host_events = 0;
  for (const auto& ev : hosts.events()) {
    if (ev.kind == FaultKind::kHostDown) ++host_events;
  }
  EXPECT_EQ(host_events, 3u);
}

TEST(FaultInjection, ZeroFaultPlanLeavesTimingBitIdentical) {
  Rig pristine;  // no fault layer state at all
  FaultPlan empty;
  Rig with_empty{with_faults(empty)};
  sim::Time t1, t2;
  CallbackSink s1{[&](const Packet&) { t1 = pristine.simctx.now(); }};
  CallbackSink s2{[&](const Packet&) { t2 = with_empty.simctx.now(); }};
  bind_all_hosts(pristine.net, 4, &s1);
  bind_all_hosts(with_empty.net, 4, &s2);
  pristine.net.send(pristine.packet(0, 2));
  with_empty.net.send(with_empty.packet(0, 2));
  pristine.simctx.run();
  with_empty.simctx.run();
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(with_empty.net.faults_applied(), 0);
}

}  // namespace
}  // namespace nimcast::net
