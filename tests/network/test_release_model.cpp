// Pipelined channel release: upstream channels free as the tail passes
// rather than at delivery.

#include <gtest/gtest.h>

#include "network/wormhole_network.hpp"
#include "routing/up_down.hpp"
#include "support/callback_sink.hpp"

namespace nimcast::net {
namespace {

using test_support::CallbackSink;
using test_support::bind_all_hosts;

/// Line of four switches, one host each: long enough paths for the
/// release timing to differ between models.
struct Rig {
  topo::Topology topology{topo::Graph{4, {{0, 1}, {1, 2}, {2, 3}}},
                          {0, 1, 2, 3},
                          "line4"};
  routing::UpDownRouter router{topology.switches()};
  routing::RouteTable routes{topology, router};
  sim::Simulator simctx;
  NetworkConfig cfg;

  Packet packet(topo::HostId from, topo::HostId to, std::int32_t idx = 0) {
    Packet p;
    p.message = 1;
    p.packet_index = idx;
    p.sender = from;
    p.dest = to;
    return p;
  }
};

TEST(ReleaseModel, DeliveryTimeIdenticalAcrossModelsWhenUncontended) {
  for (const auto model :
       {ReleaseModel::kAtDelivery, ReleaseModel::kPipelined}) {
    Rig rig;
    rig.cfg.release_model = model;
    WormholeNetwork net{rig.simctx, rig.topology, rig.routes, rig.cfg};
    sim::Time delivered;
    CallbackSink sink{[&](const Packet&) { delivered = rig.simctx.now(); }};
    bind_all_hosts(net, 4, &sink);
    net.send(rig.packet(0, 3));
    rig.simctx.run();
    EXPECT_EQ(delivered, net.uncontended_latency(3));
  }
}

TEST(ReleaseModel, PipelinedFreesUpstreamChannelEarlier) {
  // Worm A: 0 -> 3 (holds the 0-1 link until its tail passes). Worm B:
  // 0 -> 1, injected immediately after A, waits on A's injection + first
  // link. Under pipelined release B proceeds before A is delivered.
  const auto run = [](ReleaseModel model) {
    Rig rig;
    rig.cfg.release_model = model;
    // Long serialization so the tail lag matters.
    rig.cfg.bandwidth_bytes_per_us = 32.0;  // 2.0us per packet
    WormholeNetwork net{rig.simctx, rig.topology, rig.routes, rig.cfg};
    sim::Time b_done;
    CallbackSink sink{[&](const Packet& p) {
      if (p.dest == 1) b_done = rig.simctx.now();
    }};
    bind_all_hosts(net, 4, &sink);
    net.send(rig.packet(0, 3, 0));
    net.send(rig.packet(0, 1, 1));
    rig.simctx.run();
    return b_done;
  };
  const sim::Time conservative = run(ReleaseModel::kAtDelivery);
  const sim::Time pipelined = run(ReleaseModel::kPipelined);
  EXPECT_LT(pipelined, conservative);
}

TEST(ReleaseModel, PipelinedNeverReleasesBeforePacketLeftChannel) {
  // A second worm that reuses A's first link must still observe full
  // serialization on it: B's delivery cannot come sooner than one full
  // packet time after it acquires the link.
  Rig rig;
  rig.cfg.release_model = ReleaseModel::kPipelined;
  WormholeNetwork net{rig.simctx, rig.topology, rig.routes, rig.cfg};
  std::vector<sim::Time> done(2);
  CallbackSink sink{[&](const Packet& p) {
    done[static_cast<std::size_t>(p.packet_index)] = rig.simctx.now();
  }};
  bind_all_hosts(net, 4, &sink);
  net.send(rig.packet(0, 3, 0));
  net.send(rig.packet(0, 3, 1));
  rig.simctx.run();
  // Second worm cannot finish less than a serialization time after the
  // first (they share every channel).
  EXPECT_GE(done[1] - done[0], rig.cfg.serialization_time());
}

TEST(ReleaseModel, AllWormsDrainUnderHeavyContention) {
  for (const auto model :
       {ReleaseModel::kAtDelivery, ReleaseModel::kPipelined}) {
    Rig rig;
    rig.cfg.release_model = model;
    WormholeNetwork net{rig.simctx, rig.topology, rig.routes, rig.cfg};
    int delivered = 0;
    CallbackSink sink{[&](const Packet&) { ++delivered; }};
    bind_all_hosts(net, 4, &sink);
    for (int i = 0; i < 8; ++i) {
      for (topo::HostId d = 1; d < 4; ++d) {
        net.send(rig.packet(0, d, i));
      }
    }
    rig.simctx.run();
    EXPECT_EQ(delivered, 24);
    EXPECT_EQ(net.in_flight(), 0);
  }
}

TEST(ReleaseModel, PipelinedBlockTimeNeverWorse) {
  const auto block = [](ReleaseModel model) {
    Rig rig;
    rig.cfg.release_model = model;
    WormholeNetwork net{rig.simctx, rig.topology, rig.routes, rig.cfg};
    CallbackSink sink;
    bind_all_hosts(net, 4, &sink);
    for (int i = 0; i < 6; ++i) {
      net.send(rig.packet(0, 3, i));
      net.send(rig.packet(1, 3, i + 100));
    }
    rig.simctx.run();
    return net.total_block_time();
  };
  EXPECT_LE(block(ReleaseModel::kPipelined),
            block(ReleaseModel::kAtDelivery));
}

}  // namespace
}  // namespace nimcast::net
