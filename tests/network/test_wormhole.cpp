#include "network/wormhole_network.hpp"

#include <gtest/gtest.h>

#include "routing/up_down.hpp"
#include "support/callback_sink.hpp"

namespace nimcast::net {
namespace {

using test_support::CallbackSink;
using test_support::bind_all_hosts;

/// Line of three switches 0-1-2 with one host on each (host i on switch
/// i) plus a second host (3) on switch 0. Routing is up*/down* rooted at
/// the max-degree switch (1).
struct Rig {
  topo::Topology topology{topo::Graph{3, {{0, 1}, {1, 2}}},
                          {0, 1, 2, 0},
                          "line"};
  routing::UpDownRouter router{topology.switches()};
  routing::RouteTable routes{topology, router};
  sim::Simulator simctx;
  NetworkConfig cfg;  // defaults: t_hop = 0.1us, 64B @ 160B/us => 0.4us
  WormholeNetwork net{simctx, topology, routes, cfg};

  Packet packet(topo::HostId from, topo::HostId to, std::int32_t idx = 0) {
    Packet p;
    p.message = 1;
    p.packet_index = idx;
    p.packet_count = 8;
    p.sender = from;
    p.dest = to;
    return p;
  }

  /// Binds `fn` as every host's delivery handler; the sink must outlive
  /// the sends, so tests keep the returned object alive on their stack.
  void bind(DeliverySink* sink) { bind_all_hosts(net, 4, sink); }
};

TEST(Wormhole, UncontendedLatencyFormula) {
  Rig rig;
  EXPECT_EQ(rig.net.uncontended_latency(0), sim::Time::us(0.6));
  EXPECT_EQ(rig.net.uncontended_latency(2), sim::Time::us(0.8));
}

TEST(Wormhole, SingleDeliveryMatchesUncontendedLatency) {
  Rig rig;
  sim::Time delivered_at;
  CallbackSink sink{[&](const Packet&) { delivered_at = rig.simctx.now(); }};
  rig.bind(&sink);
  rig.net.send(rig.packet(0, 2));
  rig.simctx.run();
  EXPECT_EQ(delivered_at, rig.net.uncontended_latency(2));
  EXPECT_EQ(rig.net.packets_delivered(), 1);
  EXPECT_EQ(rig.net.in_flight(), 0);
}

TEST(Wormhole, SameSwitchDeliveryUsesInjectionAndEjectionOnly) {
  Rig rig;
  sim::Time delivered_at;
  CallbackSink sink{[&](const Packet&) { delivered_at = rig.simctx.now(); }};
  rig.bind(&sink);
  rig.net.send(rig.packet(0, 3));
  rig.simctx.run();
  EXPECT_EQ(delivered_at, rig.net.uncontended_latency(0));
}

TEST(Wormhole, DeliveredPacketCarriesHeader) {
  Rig rig;
  Packet got;
  CallbackSink sink{[&](const Packet& p) { got = p; }};
  rig.bind(&sink);
  rig.net.send(rig.packet(0, 2, 5));
  rig.simctx.run();
  EXPECT_EQ(got.message, 1);
  EXPECT_EQ(got.packet_index, 5);
  EXPECT_EQ(got.packet_count, 8);
  EXPECT_EQ(got.sender, 0);
  EXPECT_EQ(got.dest, 2);
}

TEST(Wormhole, InjectionChannelSerializesSendsFromOneHost) {
  Rig rig;
  std::vector<sim::Time> deliveries;
  CallbackSink sink{
      [&](const Packet&) { deliveries.push_back(rig.simctx.now()); }};
  rig.bind(&sink);
  for (int i = 0; i < 2; ++i) rig.net.send(rig.packet(0, 2, i));
  rig.simctx.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], sim::Time::us(0.8));
  // Second worm waits on the injection channel until the first drains
  // (0.8), then needs the full path again.
  EXPECT_EQ(deliveries[1], sim::Time::us(1.6));
  EXPECT_EQ(rig.net.total_block_time(), sim::Time::us(0.8));
}

TEST(Wormhole, ContendedChannelIsFifo) {
  Rig rig;
  std::vector<std::int32_t> order;
  CallbackSink sink{
      [&](const Packet& p) { order.push_back(p.packet_index); }};
  rig.bind(&sink);
  for (int i = 0; i < 4; ++i) rig.net.send(rig.packet(0, 2, i));
  rig.simctx.run();
  EXPECT_EQ(order, (std::vector<std::int32_t>{0, 1, 2, 3}));
}

TEST(Wormhole, BlockedWormHoldsAcquiredChannels) {
  Rig rig;
  std::vector<std::pair<topo::HostId, sim::Time>> log;
  CallbackSink recorder{[&](const Packet& p) {
    log.emplace_back(p.dest, rig.simctx.now());
  }};
  rig.bind(&recorder);
  // X: 1 -> 2 occupies link L1 (switch1-switch2) until 0.7.
  rig.net.send(rig.packet(1, 2, 0));
  // Y: 0 -> 2 grabs L0 then blocks on L1 at 0.2, holding L0 the whole
  // time (wormhole!). It completes at 1.3.
  rig.net.send(rig.packet(0, 2, 1));
  // Z: 3 -> 1 (injected at 0.5) needs L0 and must wait for Y's tail even
  // though X and Y are "someone else's" traffic.
  rig.simctx.schedule_at(sim::Time::us(0.5), [&] {
    rig.net.send(rig.packet(3, 1, 2));
  });
  rig.simctx.run();

  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].first, 2);
  EXPECT_EQ(log[0].second, sim::Time::us(0.7));  // X: 1 hop
  EXPECT_EQ(log[1].first, 2);
  EXPECT_EQ(log[1].second, sim::Time::us(1.3));  // Y: handoff at 0.7
  EXPECT_EQ(log[2].first, 1);
  EXPECT_EQ(log[2].second, sim::Time::us(1.9));  // Z: waited for Y's L0
}

TEST(Wormhole, BlockTimeAccumulatesAcrossWorms) {
  Rig rig;
  CallbackSink sink;
  rig.bind(&sink);
  rig.net.send(rig.packet(1, 2, 0));
  rig.net.send(rig.packet(0, 2, 1));
  rig.simctx.run();
  // Y blocked on L1 from 0.2 until 0.7.
  EXPECT_EQ(rig.net.total_block_time(), sim::Time::us(0.5));
}

TEST(Wormhole, RejectsSelfSendAndBadHosts) {
  Rig rig;
  CallbackSink sink;
  rig.bind(&sink);
  EXPECT_THROW(rig.net.send(rig.packet(0, 0)), std::invalid_argument);
  EXPECT_THROW(rig.net.send(rig.packet(0, 99)), std::invalid_argument);
}

TEST(Wormhole, BandwidthScalesSerialization) {
  Rig rig;
  rig.cfg.bandwidth_bytes_per_us = 64.0;  // 1.0us per packet
  WormholeNetwork slow{rig.simctx, rig.topology, rig.routes, rig.cfg};
  sim::Time delivered_at;
  CallbackSink sink{[&](const Packet&) { delivered_at = rig.simctx.now(); }};
  bind_all_hosts(slow, 4, &sink);
  slow.send(rig.packet(0, 2));
  rig.simctx.run();
  EXPECT_EQ(delivered_at, sim::Time::us(0.4 + 1.0));
}

TEST(Wormhole, InvalidBandwidthRejected) {
  NetworkConfig cfg;
  cfg.bandwidth_bytes_per_us = 0.0;
  EXPECT_THROW((void)cfg.serialization_time(), std::invalid_argument);
}

TEST(Wormhole, TelemetryCountersStartAtZero) {
  // A fresh network (one per engine replication) carries no residue:
  // every per-channel counter starts at zero.
  Rig rig;
  ASSERT_GT(rig.net.num_channels(), 0);
  for (std::int32_t c = 0; c < rig.net.num_channels(); ++c) {
    EXPECT_EQ(rig.net.channel_block_ns(c), 0) << "channel " << c;
    EXPECT_EQ(rig.net.channel_acquisitions(c), 0u) << "channel " << c;
  }
}

TEST(Wormhole, UncontendedSendAcquiresWithoutBlocking) {
  Rig rig;
  CallbackSink sink;
  rig.bind(&sink);
  rig.net.send(rig.packet(0, 2));
  rig.simctx.run();
  std::int64_t block_sum = 0;
  std::uint64_t acq_sum = 0;
  for (std::int32_t c = 0; c < rig.net.num_channels(); ++c) {
    block_sum += rig.net.channel_block_ns(c);
    acq_sum += rig.net.channel_acquisitions(c);
  }
  EXPECT_EQ(block_sum, 0);
  // 0 -> 2 crosses injection, two switch hops and ejection: four grants.
  EXPECT_EQ(acq_sum, 4u);
  EXPECT_EQ(
      rig.net.channel_acquisitions(rig.net.injection_channel_id(0)), 1u);
}

TEST(Wormhole, ChannelBlockSumMatchesTotalBlockTime) {
  // Per-channel block time is an exact decomposition of the aggregate:
  // summing channel_block_ns over all channels reproduces
  // total_block_time to the nanosecond, in every contention pattern.
  Rig rig;
  CallbackSink sink;
  rig.bind(&sink);
  rig.net.send(rig.packet(1, 2, 0));
  rig.net.send(rig.packet(0, 2, 1));
  rig.simctx.schedule_at(sim::Time::us(0.5), [&] {
    rig.net.send(rig.packet(3, 1, 2));
  });
  rig.simctx.run();
  std::int64_t block_sum = 0;
  for (std::int32_t c = 0; c < rig.net.num_channels(); ++c) {
    block_sum += rig.net.channel_block_ns(c);
  }
  EXPECT_GT(block_sum, 0);
  EXPECT_EQ(block_sum, rig.net.total_block_time().count_ns());
}

TEST(Wormhole, TelemetryCountersAreMonotonic) {
  // The counters are cumulative within a run — later reads can only
  // grow, which is what lets the adaptive selector score deltas.
  Rig rig;
  std::vector<std::int64_t> mid_block;
  std::vector<std::uint64_t> mid_acq;
  CallbackSink sink;
  rig.bind(&sink);
  for (int i = 0; i < 2; ++i) rig.net.send(rig.packet(0, 2, i));
  rig.simctx.schedule_at(sim::Time::us(1.0), [&] {
    for (std::int32_t c = 0; c < rig.net.num_channels(); ++c) {
      mid_block.push_back(rig.net.channel_block_ns(c));
      mid_acq.push_back(rig.net.channel_acquisitions(c));
    }
    for (int i = 2; i < 4; ++i) rig.net.send(rig.packet(0, 2, i));
  });
  rig.simctx.run();
  ASSERT_EQ(mid_block.size(), static_cast<std::size_t>(rig.net.num_channels()));
  for (std::int32_t c = 0; c < rig.net.num_channels(); ++c) {
    const auto i = static_cast<std::size_t>(c);
    EXPECT_GE(rig.net.channel_block_ns(c), mid_block[i]) << "channel " << c;
    EXPECT_GE(rig.net.channel_acquisitions(c), mid_acq[i]) << "channel " << c;
  }
}

TEST(Wormhole, ManyParallelDisjointSendsDontInteract) {
  Rig rig;
  // 0->3 stays on switch 0; 1->2 uses L1 only: fully disjoint.
  std::vector<sim::Time> times;
  CallbackSink sink{[&](const Packet&) { times.push_back(rig.simctx.now()); }};
  rig.bind(&sink);
  rig.net.send(rig.packet(0, 3, 0));
  rig.net.send(rig.packet(1, 2, 1));
  rig.simctx.run();
  EXPECT_EQ(times[0], rig.net.uncontended_latency(0));
  EXPECT_EQ(times[1], rig.net.uncontended_latency(1));
  EXPECT_EQ(rig.net.total_block_time(), sim::Time::zero());
}

}  // namespace
}  // namespace nimcast::net
