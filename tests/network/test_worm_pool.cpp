// Invariants of the worm slab pool: slots are recycled (the high-water
// mark equals the peak of simultaneously live worms), nothing leaks after
// ordinary delivery OR after fault truncation, and delivery callbacks may
// reenter send() safely because the slot is freed before the callback
// runs.

#include <gtest/gtest.h>

#include "network/fault_plan.hpp"
#include "network/wormhole_network.hpp"
#include "routing/up_down.hpp"
#include "support/callback_sink.hpp"

namespace nimcast::net {
namespace {

using test_support::CallbackSink;
using test_support::bind_all_hosts;

/// Line of three switches 0-1-2 with one host on each (host i on switch
/// i) plus a second host (3) on switch 0. Link 0 is sw0-sw1, link 1 is
/// sw1-sw2.
struct Rig {
  topo::Topology topology{topo::Graph{3, {{0, 1}, {1, 2}}},
                          {0, 1, 2, 0},
                          "line"};
  routing::UpDownRouter router{topology.switches()};
  routing::RouteTable routes{topology, router};
  sim::Simulator simctx;
  WormholeNetwork net;

  explicit Rig(NetworkConfig cfg = {})
      : net{simctx, topology, routes, std::move(cfg)} {}

  Packet packet(topo::HostId from, topo::HostId to, std::int32_t idx = 0) {
    Packet p;
    p.message = 1;
    p.packet_index = idx;
    p.packet_count = 8;
    p.sender = from;
    p.dest = to;
    return p;
  }
};

TEST(WormPool, SequentialTrafficReusesOneSlot) {
  Rig rig;
  int delivered = 0;
  CallbackSink sink{[&](const Packet&) { ++delivered; }};
  bind_all_hosts(rig.net, 4, &sink);
  for (std::int32_t i = 0; i < 8; ++i) {
    rig.net.send(rig.packet(0, 2, i));
    rig.simctx.run();
    EXPECT_EQ(rig.net.worm_pool_slots(), 1u);
    EXPECT_EQ(rig.net.worm_pool_free(), 1u);
  }
  EXPECT_EQ(delivered, 8);
  EXPECT_EQ(rig.net.peak_in_flight(), 1);
}

TEST(WormPool, HighWaterEqualsPeakInFlight) {
  Rig rig;
  // Burst from every host: worms overlap on the wire (and park on busy
  // injection channels), so several slots go live at once.
  CallbackSink sink;
  bind_all_hosts(rig.net, 4, &sink);
  for (std::int32_t i = 0; i < 2; ++i) {
    rig.net.send(rig.packet(0, 2, i));
    rig.net.send(rig.packet(1, 0, i));
    rig.net.send(rig.packet(2, 3, i));
    rig.net.send(rig.packet(3, 1, i));
  }
  rig.simctx.run();
  EXPECT_EQ(rig.net.in_flight(), 0);
  EXPECT_GT(rig.net.peak_in_flight(), 1);
  EXPECT_EQ(rig.net.worm_pool_slots(),
            static_cast<std::size_t>(rig.net.peak_in_flight()));
  EXPECT_EQ(rig.net.worm_pool_free(), rig.net.worm_pool_slots());
}

TEST(WormPool, FaultTruncationLeaksNothing) {
  // Worm 0->2 holds link 1 (sw1-sw2) from 0.2; killing the link at 0.3
  // truncates it mid-flight. A second worm parked behind it must also
  // settle (rerouted dead at injection, it is dropped).
  FaultPlan plan;
  plan.link_down(sim::Time::us(0.3), 1);
  NetworkConfig cfg;
  cfg.faults = std::move(plan);
  Rig rig{cfg};
  int delivered = 0;
  CallbackSink sink{[&](const Packet&) { ++delivered; }};
  bind_all_hosts(rig.net, 4, &sink);
  rig.net.send(rig.packet(0, 2, 0));
  rig.net.send(rig.packet(1, 2, 1));
  rig.simctx.run();

  EXPECT_EQ(delivered, 0);
  EXPECT_GE(rig.net.packets_killed(), 1);
  EXPECT_EQ(rig.net.in_flight(), 0);
  // The leak invariant: at idle every slot ever allocated is free again,
  // and the slab never grew past the live-worm peak.
  EXPECT_EQ(rig.net.worm_pool_free(), rig.net.worm_pool_slots());
  EXPECT_EQ(rig.net.worm_pool_slots(),
            static_cast<std::size_t>(rig.net.peak_in_flight()));
}

TEST(WormPool, FaultTruncationLeaksNothingPipelined) {
  // Same scenario under pipelined release: the staggered release events
  // pending at kill time must be cancelled, not double-freed.
  FaultPlan plan;
  plan.link_down(sim::Time::us(0.3), 1);
  NetworkConfig cfg;
  cfg.faults = std::move(plan);
  cfg.release_model = ReleaseModel::kPipelined;
  Rig rig{cfg};
  CallbackSink sink;
  bind_all_hosts(rig.net, 4, &sink);
  rig.net.send(rig.packet(0, 2, 0));
  rig.simctx.run();
  EXPECT_EQ(rig.net.packets_killed(), 1);
  EXPECT_EQ(rig.net.in_flight(), 0);
  EXPECT_EQ(rig.net.worm_pool_free(), rig.net.worm_pool_slots());
}

/// Sink that immediately sends a reply: exercises the free-slot-before-
/// callback ordering (the reentrant send may reuse the just-freed slot or
/// grow the slab mid-callback).
struct ReplySink final : DeliverySink {
  WormholeNetwork* net = nullptr;
  topo::HostId self = topo::kInvalidId;
  std::vector<Packet> got;

  void on_packet_delivered(const Packet& p) override {
    got.push_back(p);
    if (p.packet_index == 0) {
      Packet reply = p;
      reply.sender = self;
      reply.dest = p.sender;
      reply.packet_index = 1;
      net->send(reply);
    }
  }
};

TEST(WormPool, ReentrantSendFromSinkReusesSlot) {
  Rig rig;
  ReplySink a;
  a.net = &rig.net;
  a.self = 0;
  ReplySink b;
  b.net = &rig.net;
  b.self = 2;
  rig.net.bind_sink(0, &a);
  rig.net.bind_sink(2, &b);

  rig.net.send(rig.packet(0, 2, 0));
  rig.simctx.run();

  ASSERT_EQ(b.got.size(), 1u);   // request
  ASSERT_EQ(a.got.size(), 1u);   // reply
  EXPECT_EQ(a.got.front().packet_index, 1);
  // The reply was injected from inside the delivery path after the
  // request's slot was freed, so one slot served both worms.
  EXPECT_EQ(rig.net.worm_pool_slots(), 1u);
  EXPECT_EQ(rig.net.worm_pool_free(), 1u);
  EXPECT_EQ(rig.net.packets_delivered(), 2);
}

TEST(WormPool, SendWithoutBoundSinkThrows) {
  Rig rig;
  EXPECT_THROW(rig.net.send(rig.packet(0, 2)), std::logic_error);
}

}  // namespace
}  // namespace nimcast::net
