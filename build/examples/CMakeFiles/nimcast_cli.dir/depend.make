# Empty dependencies file for nimcast_cli.
# This may be replaced when dependencies are built.
