file(REMOVE_RECURSE
  "CMakeFiles/nimcast_cli.dir/nimcast_cli.cpp.o"
  "CMakeFiles/nimcast_cli.dir/nimcast_cli.cpp.o.d"
  "nimcast_cli"
  "nimcast_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimcast_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
