# Empty compiler generated dependencies file for reliable_now.
# This may be replaced when dependencies are built.
