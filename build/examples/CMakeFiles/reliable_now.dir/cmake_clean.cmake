file(REMOVE_RECURSE
  "CMakeFiles/reliable_now.dir/reliable_now.cpp.o"
  "CMakeFiles/reliable_now.dir/reliable_now.cpp.o.d"
  "reliable_now"
  "reliable_now.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_now.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
