file(REMOVE_RECURSE
  "CMakeFiles/ni_design_study.dir/ni_design_study.cpp.o"
  "CMakeFiles/ni_design_study.dir/ni_design_study.cpp.o.d"
  "ni_design_study"
  "ni_design_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ni_design_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
