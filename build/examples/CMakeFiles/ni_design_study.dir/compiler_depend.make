# Empty compiler generated dependencies file for ni_design_study.
# This may be replaced when dependencies are built.
