file(REMOVE_RECURSE
  "CMakeFiles/mpp_mesh.dir/mpp_mesh.cpp.o"
  "CMakeFiles/mpp_mesh.dir/mpp_mesh.cpp.o.d"
  "mpp_mesh"
  "mpp_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpp_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
