# Empty compiler generated dependencies file for mpp_mesh.
# This may be replaced when dependencies are built.
