# Empty dependencies file for irregular_cluster.
# This may be replaced when dependencies are built.
