file(REMOVE_RECURSE
  "CMakeFiles/irregular_cluster.dir/irregular_cluster.cpp.o"
  "CMakeFiles/irregular_cluster.dir/irregular_cluster.cpp.o.d"
  "irregular_cluster"
  "irregular_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
