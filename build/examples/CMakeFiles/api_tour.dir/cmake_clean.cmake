file(REMOVE_RECURSE
  "CMakeFiles/api_tour.dir/api_tour.cpp.o"
  "CMakeFiles/api_tour.dir/api_tour.cpp.o.d"
  "api_tour"
  "api_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
