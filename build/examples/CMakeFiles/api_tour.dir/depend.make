# Empty dependencies file for api_tour.
# This may be replaced when dependencies are built.
