
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_smart_vs_conventional.cpp" "bench/CMakeFiles/bench_fig4_smart_vs_conventional.dir/bench_fig4_smart_vs_conventional.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_smart_vs_conventional.dir/bench_fig4_smart_vs_conventional.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/nimcast_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/nimcast_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/nimcast_api.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/nimcast_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/mcast/CMakeFiles/nimcast_mcast.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nimcast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netif/CMakeFiles/nimcast_netif.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/nimcast_network.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/nimcast_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/nimcast_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nimcast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
