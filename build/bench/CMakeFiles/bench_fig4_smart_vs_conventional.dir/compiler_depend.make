# Empty compiler generated dependencies file for bench_fig4_smart_vs_conventional.
# This may be replaced when dependencies are built.
