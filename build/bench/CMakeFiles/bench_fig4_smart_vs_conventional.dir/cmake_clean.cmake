file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_smart_vs_conventional.dir/bench_fig4_smart_vs_conventional.cpp.o"
  "CMakeFiles/bench_fig4_smart_vs_conventional.dir/bench_fig4_smart_vs_conventional.cpp.o.d"
  "bench_fig4_smart_vs_conventional"
  "bench_fig4_smart_vs_conventional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_smart_vs_conventional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
