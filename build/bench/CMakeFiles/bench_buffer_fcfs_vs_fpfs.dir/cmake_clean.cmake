file(REMOVE_RECURSE
  "CMakeFiles/bench_buffer_fcfs_vs_fpfs.dir/bench_buffer_fcfs_vs_fpfs.cpp.o"
  "CMakeFiles/bench_buffer_fcfs_vs_fpfs.dir/bench_buffer_fcfs_vs_fpfs.cpp.o.d"
  "bench_buffer_fcfs_vs_fpfs"
  "bench_buffer_fcfs_vs_fpfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buffer_fcfs_vs_fpfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
