# Empty dependencies file for bench_buffer_fcfs_vs_fpfs.
# This may be replaced when dependencies are built.
