file(REMOVE_RECURSE
  "CMakeFiles/bench_collectives.dir/bench_collectives.cpp.o"
  "CMakeFiles/bench_collectives.dir/bench_collectives.cpp.o.d"
  "bench_collectives"
  "bench_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
