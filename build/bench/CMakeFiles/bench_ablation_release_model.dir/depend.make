# Empty dependencies file for bench_ablation_release_model.
# This may be replaced when dependencies are built.
