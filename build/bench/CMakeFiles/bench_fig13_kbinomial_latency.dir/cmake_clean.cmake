file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_kbinomial_latency.dir/bench_fig13_kbinomial_latency.cpp.o"
  "CMakeFiles/bench_fig13_kbinomial_latency.dir/bench_fig13_kbinomial_latency.cpp.o.d"
  "bench_fig13_kbinomial_latency"
  "bench_fig13_kbinomial_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_kbinomial_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
