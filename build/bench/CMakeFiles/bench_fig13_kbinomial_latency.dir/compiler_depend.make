# Empty compiler generated dependencies file for bench_fig13_kbinomial_latency.
# This may be replaced when dependencies are built.
