# Empty dependencies file for bench_fig5_binomial_not_optimal.
# This may be replaced when dependencies are built.
