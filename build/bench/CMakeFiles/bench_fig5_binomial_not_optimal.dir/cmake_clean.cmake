file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_binomial_not_optimal.dir/bench_fig5_binomial_not_optimal.cpp.o"
  "CMakeFiles/bench_fig5_binomial_not_optimal.dir/bench_fig5_binomial_not_optimal.cpp.o.d"
  "bench_fig5_binomial_not_optimal"
  "bench_fig5_binomial_not_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_binomial_not_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
