# Empty compiler generated dependencies file for bench_ablation_parameter_sensitivity.
# This may be replaced when dependencies are built.
