# Empty dependencies file for bench_theorem_pipeline.
# This may be replaced when dependencies are built.
