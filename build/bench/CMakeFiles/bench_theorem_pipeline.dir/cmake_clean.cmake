file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem_pipeline.dir/bench_theorem_pipeline.cpp.o"
  "CMakeFiles/bench_theorem_pipeline.dir/bench_theorem_pipeline.cpp.o.d"
  "bench_theorem_pipeline"
  "bench_theorem_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
