file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multipath.dir/bench_ablation_multipath.cpp.o"
  "CMakeFiles/bench_ablation_multipath.dir/bench_ablation_multipath.cpp.o.d"
  "bench_ablation_multipath"
  "bench_ablation_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
