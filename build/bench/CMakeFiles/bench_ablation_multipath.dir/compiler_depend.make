# Empty compiler generated dependencies file for bench_ablation_multipath.
# This may be replaced when dependencies are built.
