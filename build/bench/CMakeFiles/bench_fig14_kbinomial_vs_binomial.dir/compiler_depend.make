# Empty compiler generated dependencies file for bench_fig14_kbinomial_vs_binomial.
# This may be replaced when dependencies are built.
