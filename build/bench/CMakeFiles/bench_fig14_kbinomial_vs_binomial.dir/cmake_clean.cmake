file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_kbinomial_vs_binomial.dir/bench_fig14_kbinomial_vs_binomial.cpp.o"
  "CMakeFiles/bench_fig14_kbinomial_vs_binomial.dir/bench_fig14_kbinomial_vs_binomial.cpp.o.d"
  "bench_fig14_kbinomial_vs_binomial"
  "bench_fig14_kbinomial_vs_binomial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_kbinomial_vs_binomial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
