# Empty compiler generated dependencies file for bench_fig12_optimal_k.
# This may be replaced when dependencies are built.
