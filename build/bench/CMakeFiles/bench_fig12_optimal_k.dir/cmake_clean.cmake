file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_optimal_k.dir/bench_fig12_optimal_k.cpp.o"
  "CMakeFiles/bench_fig12_optimal_k.dir/bench_fig12_optimal_k.cpp.o.d"
  "bench_fig12_optimal_k"
  "bench_fig12_optimal_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_optimal_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
