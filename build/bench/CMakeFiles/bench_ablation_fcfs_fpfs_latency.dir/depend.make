# Empty dependencies file for bench_ablation_fcfs_fpfs_latency.
# This may be replaced when dependencies are built.
