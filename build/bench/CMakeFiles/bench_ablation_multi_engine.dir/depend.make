# Empty dependencies file for bench_ablation_multi_engine.
# This may be replaced when dependencies are built.
