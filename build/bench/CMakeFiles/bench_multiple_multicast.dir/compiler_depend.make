# Empty compiler generated dependencies file for bench_multiple_multicast.
# This may be replaced when dependencies are built.
