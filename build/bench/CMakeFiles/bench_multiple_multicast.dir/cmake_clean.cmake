file(REMOVE_RECURSE
  "CMakeFiles/bench_multiple_multicast.dir/bench_multiple_multicast.cpp.o"
  "CMakeFiles/bench_multiple_multicast.dir/bench_multiple_multicast.cpp.o.d"
  "bench_multiple_multicast"
  "bench_multiple_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiple_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
