# Empty compiler generated dependencies file for bench_regular_networks.
# This may be replaced when dependencies are built.
