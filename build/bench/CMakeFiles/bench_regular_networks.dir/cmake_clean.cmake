file(REMOVE_RECURSE
  "CMakeFiles/bench_regular_networks.dir/bench_regular_networks.cpp.o"
  "CMakeFiles/bench_regular_networks.dir/bench_regular_networks.cpp.o.d"
  "bench_regular_networks"
  "bench_regular_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regular_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
