file(REMOVE_RECURSE
  "CMakeFiles/bench_reliability.dir/bench_reliability.cpp.o"
  "CMakeFiles/bench_reliability.dir/bench_reliability.cpp.o.d"
  "bench_reliability"
  "bench_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
