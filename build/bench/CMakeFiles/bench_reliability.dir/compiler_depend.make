# Empty compiler generated dependencies file for bench_reliability.
# This may be replaced when dependencies are built.
