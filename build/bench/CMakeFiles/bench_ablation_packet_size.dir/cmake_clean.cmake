file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_packet_size.dir/bench_ablation_packet_size.cpp.o"
  "CMakeFiles/bench_ablation_packet_size.dir/bench_ablation_packet_size.cpp.o.d"
  "bench_ablation_packet_size"
  "bench_ablation_packet_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_packet_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
