# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_netif[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_mcast[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_api[1]_include.cmake")
add_test(cli_multicast "/root/repo/build/examples/nimcast_cli" "--op" "multicast" "--dests" "10" "--bytes" "256")
set_tests_properties(cli_multicast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;85;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_reliable_lossy "/root/repo/build/examples/nimcast_cli" "--op" "multicast" "--dests" "6" "--bytes" "256" "--style" "reliable" "--loss" "0.2")
set_tests_properties(cli_reliable_lossy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;87;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_mesh_reduce "/root/repo/build/examples/nimcast_cli" "--system" "mesh" "--radix" "4" "--op" "reduce" "--bytes" "128")
set_tests_properties(cli_mesh_reduce PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;89;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_assess_ordering "/root/repo/build/examples/nimcast_cli" "--op" "assess-ordering")
set_tests_properties(cli_assess_ordering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;91;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_help "/root/repo/build/examples/nimcast_cli" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;93;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_flag "/root/repo/build/examples/nimcast_cli" "--definitely-not-a-flag")
set_tests_properties(cli_rejects_unknown_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;95;add_test;/root/repo/tests/CMakeLists.txt;0;")
