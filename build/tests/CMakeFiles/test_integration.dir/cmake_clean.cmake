file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_cross_validation.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_cross_validation.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_determinism_goldens.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_determinism_goldens.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_engine_properties.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_engine_properties.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_failure_injection.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_failure_injection.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_feature_combinations.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_feature_combinations.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_fuzz.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_fuzz.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
