file(REMOVE_RECURSE
  "CMakeFiles/test_routing.dir/routing/test_dimension_ordered.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_dimension_ordered.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_multipath.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_multipath.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_route_table.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_route_table.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_routing_util.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_routing_util.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_up_down.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_up_down.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_virtual_channels.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_virtual_channels.cpp.o.d"
  "test_routing"
  "test_routing.pdb"
  "test_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
