file(REMOVE_RECURSE
  "CMakeFiles/test_netif.dir/netif/test_disciplines.cpp.o"
  "CMakeFiles/test_netif.dir/netif/test_disciplines.cpp.o.d"
  "CMakeFiles/test_netif.dir/netif/test_reliable_ni.cpp.o"
  "CMakeFiles/test_netif.dir/netif/test_reliable_ni.cpp.o.d"
  "CMakeFiles/test_netif.dir/netif/test_serial_server.cpp.o"
  "CMakeFiles/test_netif.dir/netif/test_serial_server.cpp.o.d"
  "test_netif"
  "test_netif.pdb"
  "test_netif[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
