# Empty dependencies file for test_netif.
# This may be replaced when dependencies are built.
