file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_coverage.cpp.o"
  "CMakeFiles/test_core.dir/core/test_coverage.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_dot_export.cpp.o"
  "CMakeFiles/test_core.dir/core/test_dot_export.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_host_tree.cpp.o"
  "CMakeFiles/test_core.dir/core/test_host_tree.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_kbinomial.cpp.o"
  "CMakeFiles/test_core.dir/core/test_kbinomial.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_optimal_k.cpp.o"
  "CMakeFiles/test_core.dir/core/test_optimal_k.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ordering.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ordering.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ordering_quality.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ordering_quality.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_tree.cpp.o"
  "CMakeFiles/test_core.dir/core/test_tree.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
