file(REMOVE_RECURSE
  "CMakeFiles/test_mcast.dir/mcast/test_multi_multicast.cpp.o"
  "CMakeFiles/test_mcast.dir/mcast/test_multi_multicast.cpp.o.d"
  "CMakeFiles/test_mcast.dir/mcast/test_step_model.cpp.o"
  "CMakeFiles/test_mcast.dir/mcast/test_step_model.cpp.o.d"
  "CMakeFiles/test_mcast.dir/mcast/test_theorems.cpp.o"
  "CMakeFiles/test_mcast.dir/mcast/test_theorems.cpp.o.d"
  "test_mcast"
  "test_mcast.pdb"
  "test_mcast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
