# Empty compiler generated dependencies file for test_mcast.
# This may be replaced when dependencies are built.
