file(REMOVE_RECURSE
  "CMakeFiles/test_network.dir/network/test_release_model.cpp.o"
  "CMakeFiles/test_network.dir/network/test_release_model.cpp.o.d"
  "CMakeFiles/test_network.dir/network/test_wormhole.cpp.o"
  "CMakeFiles/test_network.dir/network/test_wormhole.cpp.o.d"
  "test_network"
  "test_network.pdb"
  "test_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
