# Empty dependencies file for test_collectives.
# This may be replaced when dependencies are built.
