file(REMOVE_RECURSE
  "CMakeFiles/test_topology.dir/topology/test_fat_tree.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_fat_tree.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_graph.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_graph.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_irregular.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_irregular.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_kary_ncube.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_kary_ncube.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_topology.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_topology.cpp.o.d"
  "test_topology"
  "test_topology.pdb"
  "test_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
