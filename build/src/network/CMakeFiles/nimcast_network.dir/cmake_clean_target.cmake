file(REMOVE_RECURSE
  "libnimcast_network.a"
)
