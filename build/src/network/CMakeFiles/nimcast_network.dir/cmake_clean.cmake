file(REMOVE_RECURSE
  "CMakeFiles/nimcast_network.dir/wormhole_network.cpp.o"
  "CMakeFiles/nimcast_network.dir/wormhole_network.cpp.o.d"
  "libnimcast_network.a"
  "libnimcast_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimcast_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
