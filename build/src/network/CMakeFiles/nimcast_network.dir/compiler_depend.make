# Empty compiler generated dependencies file for nimcast_network.
# This may be replaced when dependencies are built.
