file(REMOVE_RECURSE
  "libnimcast_harness.a"
)
