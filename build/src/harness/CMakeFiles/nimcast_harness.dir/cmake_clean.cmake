file(REMOVE_RECURSE
  "CMakeFiles/nimcast_harness.dir/cli.cpp.o"
  "CMakeFiles/nimcast_harness.dir/cli.cpp.o.d"
  "CMakeFiles/nimcast_harness.dir/report.cpp.o"
  "CMakeFiles/nimcast_harness.dir/report.cpp.o.d"
  "CMakeFiles/nimcast_harness.dir/testbed.cpp.o"
  "CMakeFiles/nimcast_harness.dir/testbed.cpp.o.d"
  "CMakeFiles/nimcast_harness.dir/tree_spec.cpp.o"
  "CMakeFiles/nimcast_harness.dir/tree_spec.cpp.o.d"
  "libnimcast_harness.a"
  "libnimcast_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimcast_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
