
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/cli.cpp" "src/harness/CMakeFiles/nimcast_harness.dir/cli.cpp.o" "gcc" "src/harness/CMakeFiles/nimcast_harness.dir/cli.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/harness/CMakeFiles/nimcast_harness.dir/report.cpp.o" "gcc" "src/harness/CMakeFiles/nimcast_harness.dir/report.cpp.o.d"
  "/root/repo/src/harness/testbed.cpp" "src/harness/CMakeFiles/nimcast_harness.dir/testbed.cpp.o" "gcc" "src/harness/CMakeFiles/nimcast_harness.dir/testbed.cpp.o.d"
  "/root/repo/src/harness/tree_spec.cpp" "src/harness/CMakeFiles/nimcast_harness.dir/tree_spec.cpp.o" "gcc" "src/harness/CMakeFiles/nimcast_harness.dir/tree_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcast/CMakeFiles/nimcast_mcast.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/nimcast_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nimcast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netif/CMakeFiles/nimcast_netif.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/nimcast_network.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/nimcast_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/nimcast_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nimcast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
