# Empty dependencies file for nimcast_harness.
# This may be replaced when dependencies are built.
