# Empty dependencies file for nimcast_core.
# This may be replaced when dependencies are built.
