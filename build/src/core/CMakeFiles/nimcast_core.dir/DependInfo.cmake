
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coverage.cpp" "src/core/CMakeFiles/nimcast_core.dir/coverage.cpp.o" "gcc" "src/core/CMakeFiles/nimcast_core.dir/coverage.cpp.o.d"
  "/root/repo/src/core/dot_export.cpp" "src/core/CMakeFiles/nimcast_core.dir/dot_export.cpp.o" "gcc" "src/core/CMakeFiles/nimcast_core.dir/dot_export.cpp.o.d"
  "/root/repo/src/core/host_tree.cpp" "src/core/CMakeFiles/nimcast_core.dir/host_tree.cpp.o" "gcc" "src/core/CMakeFiles/nimcast_core.dir/host_tree.cpp.o.d"
  "/root/repo/src/core/kbinomial.cpp" "src/core/CMakeFiles/nimcast_core.dir/kbinomial.cpp.o" "gcc" "src/core/CMakeFiles/nimcast_core.dir/kbinomial.cpp.o.d"
  "/root/repo/src/core/optimal_k.cpp" "src/core/CMakeFiles/nimcast_core.dir/optimal_k.cpp.o" "gcc" "src/core/CMakeFiles/nimcast_core.dir/optimal_k.cpp.o.d"
  "/root/repo/src/core/ordering.cpp" "src/core/CMakeFiles/nimcast_core.dir/ordering.cpp.o" "gcc" "src/core/CMakeFiles/nimcast_core.dir/ordering.cpp.o.d"
  "/root/repo/src/core/ordering_quality.cpp" "src/core/CMakeFiles/nimcast_core.dir/ordering_quality.cpp.o" "gcc" "src/core/CMakeFiles/nimcast_core.dir/ordering_quality.cpp.o.d"
  "/root/repo/src/core/tree.cpp" "src/core/CMakeFiles/nimcast_core.dir/tree.cpp.o" "gcc" "src/core/CMakeFiles/nimcast_core.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/nimcast_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nimcast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/nimcast_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
