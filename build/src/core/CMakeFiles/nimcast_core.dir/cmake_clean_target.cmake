file(REMOVE_RECURSE
  "libnimcast_core.a"
)
