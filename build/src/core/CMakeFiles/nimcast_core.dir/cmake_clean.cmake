file(REMOVE_RECURSE
  "CMakeFiles/nimcast_core.dir/coverage.cpp.o"
  "CMakeFiles/nimcast_core.dir/coverage.cpp.o.d"
  "CMakeFiles/nimcast_core.dir/dot_export.cpp.o"
  "CMakeFiles/nimcast_core.dir/dot_export.cpp.o.d"
  "CMakeFiles/nimcast_core.dir/host_tree.cpp.o"
  "CMakeFiles/nimcast_core.dir/host_tree.cpp.o.d"
  "CMakeFiles/nimcast_core.dir/kbinomial.cpp.o"
  "CMakeFiles/nimcast_core.dir/kbinomial.cpp.o.d"
  "CMakeFiles/nimcast_core.dir/optimal_k.cpp.o"
  "CMakeFiles/nimcast_core.dir/optimal_k.cpp.o.d"
  "CMakeFiles/nimcast_core.dir/ordering.cpp.o"
  "CMakeFiles/nimcast_core.dir/ordering.cpp.o.d"
  "CMakeFiles/nimcast_core.dir/ordering_quality.cpp.o"
  "CMakeFiles/nimcast_core.dir/ordering_quality.cpp.o.d"
  "CMakeFiles/nimcast_core.dir/tree.cpp.o"
  "CMakeFiles/nimcast_core.dir/tree.cpp.o.d"
  "libnimcast_core.a"
  "libnimcast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimcast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
