file(REMOVE_RECURSE
  "libnimcast_analysis.a"
)
