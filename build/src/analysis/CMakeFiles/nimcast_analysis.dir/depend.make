# Empty dependencies file for nimcast_analysis.
# This may be replaced when dependencies are built.
