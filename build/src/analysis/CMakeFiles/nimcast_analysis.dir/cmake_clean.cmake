file(REMOVE_RECURSE
  "CMakeFiles/nimcast_analysis.dir/buffer_model.cpp.o"
  "CMakeFiles/nimcast_analysis.dir/buffer_model.cpp.o.d"
  "CMakeFiles/nimcast_analysis.dir/latency_model.cpp.o"
  "CMakeFiles/nimcast_analysis.dir/latency_model.cpp.o.d"
  "libnimcast_analysis.a"
  "libnimcast_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimcast_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
