file(REMOVE_RECURSE
  "CMakeFiles/nimcast_topology.dir/fat_tree.cpp.o"
  "CMakeFiles/nimcast_topology.dir/fat_tree.cpp.o.d"
  "CMakeFiles/nimcast_topology.dir/graph.cpp.o"
  "CMakeFiles/nimcast_topology.dir/graph.cpp.o.d"
  "CMakeFiles/nimcast_topology.dir/irregular.cpp.o"
  "CMakeFiles/nimcast_topology.dir/irregular.cpp.o.d"
  "CMakeFiles/nimcast_topology.dir/kary_ncube.cpp.o"
  "CMakeFiles/nimcast_topology.dir/kary_ncube.cpp.o.d"
  "CMakeFiles/nimcast_topology.dir/topology.cpp.o"
  "CMakeFiles/nimcast_topology.dir/topology.cpp.o.d"
  "libnimcast_topology.a"
  "libnimcast_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimcast_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
