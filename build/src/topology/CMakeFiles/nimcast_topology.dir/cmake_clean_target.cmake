file(REMOVE_RECURSE
  "libnimcast_topology.a"
)
