
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/fat_tree.cpp" "src/topology/CMakeFiles/nimcast_topology.dir/fat_tree.cpp.o" "gcc" "src/topology/CMakeFiles/nimcast_topology.dir/fat_tree.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/topology/CMakeFiles/nimcast_topology.dir/graph.cpp.o" "gcc" "src/topology/CMakeFiles/nimcast_topology.dir/graph.cpp.o.d"
  "/root/repo/src/topology/irregular.cpp" "src/topology/CMakeFiles/nimcast_topology.dir/irregular.cpp.o" "gcc" "src/topology/CMakeFiles/nimcast_topology.dir/irregular.cpp.o.d"
  "/root/repo/src/topology/kary_ncube.cpp" "src/topology/CMakeFiles/nimcast_topology.dir/kary_ncube.cpp.o" "gcc" "src/topology/CMakeFiles/nimcast_topology.dir/kary_ncube.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/topology/CMakeFiles/nimcast_topology.dir/topology.cpp.o" "gcc" "src/topology/CMakeFiles/nimcast_topology.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nimcast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
