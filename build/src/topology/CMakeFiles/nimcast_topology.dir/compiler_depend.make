# Empty compiler generated dependencies file for nimcast_topology.
# This may be replaced when dependencies are built.
