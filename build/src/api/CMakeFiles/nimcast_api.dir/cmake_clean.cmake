file(REMOVE_RECURSE
  "CMakeFiles/nimcast_api.dir/communicator.cpp.o"
  "CMakeFiles/nimcast_api.dir/communicator.cpp.o.d"
  "libnimcast_api.a"
  "libnimcast_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimcast_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
