# Empty compiler generated dependencies file for nimcast_api.
# This may be replaced when dependencies are built.
