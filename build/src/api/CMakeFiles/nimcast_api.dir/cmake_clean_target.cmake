file(REMOVE_RECURSE
  "libnimcast_api.a"
)
