file(REMOVE_RECURSE
  "CMakeFiles/nimcast_collectives.dir/collective_engine.cpp.o"
  "CMakeFiles/nimcast_collectives.dir/collective_engine.cpp.o.d"
  "libnimcast_collectives.a"
  "libnimcast_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimcast_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
