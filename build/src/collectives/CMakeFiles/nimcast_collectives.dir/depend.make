# Empty dependencies file for nimcast_collectives.
# This may be replaced when dependencies are built.
