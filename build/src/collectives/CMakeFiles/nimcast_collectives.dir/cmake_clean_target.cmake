file(REMOVE_RECURSE
  "libnimcast_collectives.a"
)
