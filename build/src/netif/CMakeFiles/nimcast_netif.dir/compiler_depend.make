# Empty compiler generated dependencies file for nimcast_netif.
# This may be replaced when dependencies are built.
