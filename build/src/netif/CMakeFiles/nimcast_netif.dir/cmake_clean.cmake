file(REMOVE_RECURSE
  "CMakeFiles/nimcast_netif.dir/conventional_ni.cpp.o"
  "CMakeFiles/nimcast_netif.dir/conventional_ni.cpp.o.d"
  "CMakeFiles/nimcast_netif.dir/ni_base.cpp.o"
  "CMakeFiles/nimcast_netif.dir/ni_base.cpp.o.d"
  "CMakeFiles/nimcast_netif.dir/reliable_ni.cpp.o"
  "CMakeFiles/nimcast_netif.dir/reliable_ni.cpp.o.d"
  "CMakeFiles/nimcast_netif.dir/serial_server.cpp.o"
  "CMakeFiles/nimcast_netif.dir/serial_server.cpp.o.d"
  "CMakeFiles/nimcast_netif.dir/smart_ni.cpp.o"
  "CMakeFiles/nimcast_netif.dir/smart_ni.cpp.o.d"
  "libnimcast_netif.a"
  "libnimcast_netif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimcast_netif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
