
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netif/conventional_ni.cpp" "src/netif/CMakeFiles/nimcast_netif.dir/conventional_ni.cpp.o" "gcc" "src/netif/CMakeFiles/nimcast_netif.dir/conventional_ni.cpp.o.d"
  "/root/repo/src/netif/ni_base.cpp" "src/netif/CMakeFiles/nimcast_netif.dir/ni_base.cpp.o" "gcc" "src/netif/CMakeFiles/nimcast_netif.dir/ni_base.cpp.o.d"
  "/root/repo/src/netif/reliable_ni.cpp" "src/netif/CMakeFiles/nimcast_netif.dir/reliable_ni.cpp.o" "gcc" "src/netif/CMakeFiles/nimcast_netif.dir/reliable_ni.cpp.o.d"
  "/root/repo/src/netif/serial_server.cpp" "src/netif/CMakeFiles/nimcast_netif.dir/serial_server.cpp.o" "gcc" "src/netif/CMakeFiles/nimcast_netif.dir/serial_server.cpp.o.d"
  "/root/repo/src/netif/smart_ni.cpp" "src/netif/CMakeFiles/nimcast_netif.dir/smart_ni.cpp.o" "gcc" "src/netif/CMakeFiles/nimcast_netif.dir/smart_ni.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/network/CMakeFiles/nimcast_network.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nimcast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/nimcast_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/nimcast_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
