file(REMOVE_RECURSE
  "libnimcast_netif.a"
)
