file(REMOVE_RECURSE
  "CMakeFiles/nimcast_sim.dir/event_queue.cpp.o"
  "CMakeFiles/nimcast_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/nimcast_sim.dir/rng.cpp.o"
  "CMakeFiles/nimcast_sim.dir/rng.cpp.o.d"
  "CMakeFiles/nimcast_sim.dir/sim_time.cpp.o"
  "CMakeFiles/nimcast_sim.dir/sim_time.cpp.o.d"
  "CMakeFiles/nimcast_sim.dir/simulator.cpp.o"
  "CMakeFiles/nimcast_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/nimcast_sim.dir/stats.cpp.o"
  "CMakeFiles/nimcast_sim.dir/stats.cpp.o.d"
  "CMakeFiles/nimcast_sim.dir/trace.cpp.o"
  "CMakeFiles/nimcast_sim.dir/trace.cpp.o.d"
  "CMakeFiles/nimcast_sim.dir/trace_export.cpp.o"
  "CMakeFiles/nimcast_sim.dir/trace_export.cpp.o.d"
  "libnimcast_sim.a"
  "libnimcast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimcast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
