file(REMOVE_RECURSE
  "libnimcast_sim.a"
)
