# Empty dependencies file for nimcast_sim.
# This may be replaced when dependencies are built.
