file(REMOVE_RECURSE
  "CMakeFiles/nimcast_routing.dir/dimension_ordered.cpp.o"
  "CMakeFiles/nimcast_routing.dir/dimension_ordered.cpp.o.d"
  "CMakeFiles/nimcast_routing.dir/multipath_up_down.cpp.o"
  "CMakeFiles/nimcast_routing.dir/multipath_up_down.cpp.o.d"
  "CMakeFiles/nimcast_routing.dir/route_table.cpp.o"
  "CMakeFiles/nimcast_routing.dir/route_table.cpp.o.d"
  "CMakeFiles/nimcast_routing.dir/routing.cpp.o"
  "CMakeFiles/nimcast_routing.dir/routing.cpp.o.d"
  "CMakeFiles/nimcast_routing.dir/up_down.cpp.o"
  "CMakeFiles/nimcast_routing.dir/up_down.cpp.o.d"
  "libnimcast_routing.a"
  "libnimcast_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimcast_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
