file(REMOVE_RECURSE
  "libnimcast_routing.a"
)
