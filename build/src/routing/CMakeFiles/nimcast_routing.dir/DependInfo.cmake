
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/dimension_ordered.cpp" "src/routing/CMakeFiles/nimcast_routing.dir/dimension_ordered.cpp.o" "gcc" "src/routing/CMakeFiles/nimcast_routing.dir/dimension_ordered.cpp.o.d"
  "/root/repo/src/routing/multipath_up_down.cpp" "src/routing/CMakeFiles/nimcast_routing.dir/multipath_up_down.cpp.o" "gcc" "src/routing/CMakeFiles/nimcast_routing.dir/multipath_up_down.cpp.o.d"
  "/root/repo/src/routing/route_table.cpp" "src/routing/CMakeFiles/nimcast_routing.dir/route_table.cpp.o" "gcc" "src/routing/CMakeFiles/nimcast_routing.dir/route_table.cpp.o.d"
  "/root/repo/src/routing/routing.cpp" "src/routing/CMakeFiles/nimcast_routing.dir/routing.cpp.o" "gcc" "src/routing/CMakeFiles/nimcast_routing.dir/routing.cpp.o.d"
  "/root/repo/src/routing/up_down.cpp" "src/routing/CMakeFiles/nimcast_routing.dir/up_down.cpp.o" "gcc" "src/routing/CMakeFiles/nimcast_routing.dir/up_down.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/nimcast_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nimcast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
