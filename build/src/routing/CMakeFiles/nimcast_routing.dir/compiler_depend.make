# Empty compiler generated dependencies file for nimcast_routing.
# This may be replaced when dependencies are built.
