file(REMOVE_RECURSE
  "CMakeFiles/nimcast_mcast.dir/multicast_engine.cpp.o"
  "CMakeFiles/nimcast_mcast.dir/multicast_engine.cpp.o.d"
  "CMakeFiles/nimcast_mcast.dir/step_model.cpp.o"
  "CMakeFiles/nimcast_mcast.dir/step_model.cpp.o.d"
  "libnimcast_mcast.a"
  "libnimcast_mcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimcast_mcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
