# Empty compiler generated dependencies file for nimcast_mcast.
# This may be replaced when dependencies are built.
