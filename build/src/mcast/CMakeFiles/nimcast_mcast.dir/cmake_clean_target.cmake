file(REMOVE_RECURSE
  "libnimcast_mcast.a"
)
