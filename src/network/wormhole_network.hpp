#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "network/network_config.hpp"
#include "network/packet.hpp"
#include "routing/route_table.hpp"
#include "sim/rng.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "topology/topology.hpp"

namespace nimcast::net {

/// Receiver of fully-arrived packets, bound once per host. The hot send
/// path dispatches through this instead of carrying a per-packet
/// std::function — every NI delivered to itself anyway, so the closure
/// was pure allocation overhead at scale.
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;
  /// The packet has fully arrived (header + payload) at this host's NI.
  virtual void on_packet_delivered(const Packet& packet) = 0;
};

/// Channel-level wormhole network simulator.
///
/// Every undirected switch link contributes two directed channels; every
/// host contributes an injection channel (NI -> switch) and an ejection
/// channel (switch -> NI). A packet travels as a worm: the header acquires
/// the channels of its route in order, advancing one `t_hop` per acquired
/// channel; when a channel is busy the worm *blocks in place, holding
/// everything it has acquired so far* — the defining wormhole behaviour
/// and the reason the paper needs contention-free tree constructions.
/// Channels release when the packet has fully drained into the destination
/// NI (exact for short fixed-size packets whose worm spans the path).
///
/// Blocked worms wait in per-channel FIFO queues, so contention resolution
/// is deterministic given the event order.
///
/// Virtual channels (when the route table's router uses them, e.g.
/// dateline torus routing) are modeled as independent channels: each VC
/// has its own occupancy and FIFO. This preserves the deadlock behaviour
/// exactly; it idealizes bandwidth in the rare instants when two VCs of
/// one physical link carry flits simultaneously (a standard lightweight
/// simplification, noted in DESIGN.md).
///
/// Storage: worms live in per-shard deque arenas (stable addresses, so
/// `Worm*` survives growth) with intrusive free lists; a recycled slot
/// keeps its vectors' capacity, so steady-state traffic allocates
/// nothing. Channel state is three flat arrays indexed by channel id
/// (busy flag, waiter-FIFO head/tail), with the FIFO linked through the
/// worms themselves.
///
/// ## Sharded execution
///
/// The second constructor binds the network to a sim::ShardedSimulator
/// and a switch partition: every channel is owned by the shard of its
/// upstream switch (injection/ejection channels by the host's switch),
/// and all events touching a channel run on its owner shard. A hop that
/// crosses the partition travels as cross-shard mail timed `t_hop` ahead
/// — which is why the driver's lookahead must not exceed `t_hop`. Channel
/// releases that the serial engine performs inline at delivery are mailed
/// to the owning shards as synthetic events at the same simulated
/// instant. Fault application, and the teardown of any worm whose header
/// would run into a fault-condemned channel, execute in the
/// single-threaded barrier phase at the exact instant the serial engine
/// would have executed them (via keyed global events), because a teardown
/// releases channels on several shards at once. The dispatched event
/// sequence is a pure function of the workload — independent of thread
/// count — and matches the serial engine event for event; see
/// docs/perf.md ("Sharded engine") for the exact contract.
///
/// Lossy configs shard freely: a packet's fate is a pure hash of its
/// identity (loss_seed, message, packet index, attempt, sender, dest), so
/// the draw is the same on every shard in every window — no RNG stream to
/// serialize. Pipelined release also shards: each staggered release is an
/// ordinary logical event mailed to the channel's owner when remote, and
/// schedule_drain() enforces per worm that every release clears the
/// driver's lookahead (the engine picks a window narrow enough, or falls
/// back to serial when no positive window fits). Sharded mode still
/// requires no trace sink (trace records are a global order).
class WormholeNetwork {
 public:
  WormholeNetwork(sim::Simulator& simctx, const topo::Topology& topology,
                  const routing::RouteTable& routes, NetworkConfig config,
                  sim::Trace* trace = nullptr);

  /// Sharded-mode constructor: `switch_shard[s]` names the owning shard
  /// of switch `s` (one entry per switch, values in
  /// [0, sharded.num_shards())). Throws std::invalid_argument when the
  /// partition is malformed or the configuration cannot be sharded (see
  /// class comment).
  WormholeNetwork(sim::ShardedSimulator& sharded,
                  const topo::Topology& topology,
                  const routing::RouteTable& routes, NetworkConfig config,
                  std::vector<std::int32_t> switch_shard);

  WormholeNetwork(const WormholeNetwork&) = delete;
  WormholeNetwork& operator=(const WormholeNetwork&) = delete;

  /// Binds the packet receiver for `host`. Rebinding overwrites; sinks
  /// must outlive the network (NIs own their network reference, so NI
  /// construction order takes care of this).
  void bind_sink(topo::HostId host, DeliverySink* sink);

  /// Injects one packet from `packet.sender`'s NI toward `packet.dest`'s
  /// NI at the current simulated time; on full arrival the destination
  /// host's bound DeliverySink receives it. The injection channel may
  /// itself be busy, in which case the worm queues like at any other
  /// channel. Packets whose sender or destination sits on a dead switch,
  /// or whose pair is unreachable in the route table their route_class
  /// selects (0 = primary, see bind_route_class), are dropped at
  /// injection (counted in packets_dropped()). In sharded mode this
  /// must be called from the sender's owner-shard context (an NI event)
  /// or outside run().
  void send(const Packet& packet);

  /// Binds the route table packets of `route_class == cls` (cls >= 1)
  /// build their paths from; class 0 is the primary table. The table
  /// must match the primary's host count and virtual-channel
  /// multiplicity (channel numbering depends on both) and must outlive
  /// the network. Fault repair only rebuilds the primary table
  /// (rebind_routes); bound class tables go stale and their worms die
  /// at the first dead channel like any fault victim — the engine's
  /// surviving-member fallback handles redelivery.
  void bind_route_class(std::int32_t cls, const routing::RouteTable& routes);

  /// Fired after a `config.faults` event has been applied: the liveness
  /// mask is updated and every worm caught on a dying channel has been
  /// truncated. Fires for recoveries (kLinkUp) too — the multicast engine
  /// hooks this to rebuild routes on the *current* surviving subgraph,
  /// whichever direction it just changed. In sharded mode the hook runs
  /// in the single-threaded barrier phase.
  std::function<void(const FaultEvent&)> on_fault;

  /// Swaps the route table consulted for future injections — the
  /// fault-repair path after a rebuild on the surviving subgraph. Host
  /// count and virtual-channel multiplicity must match the original
  /// table (channel numbering depends on both). Worms already in flight
  /// keep their old paths.
  void rebind_routes(const routing::RouteTable& routes);

  [[nodiscard]] const routing::RouteTable& routes() const { return *routes_; }

  /// Current fault state; empty vectors mean the pristine fabric.
  [[nodiscard]] const topo::SubgraphMask& fault_state() const { return mask_; }

  /// False when the host's switch has died or the host itself was killed
  /// by a kHostDown fault.
  [[nodiscard]] bool host_alive(topo::HostId h) const;

  /// Both endpoints alive and connected under the bound route table.
  [[nodiscard]] bool reachable(topo::HostId src, topo::HostId dst) const;

  /// Shard owning `h`'s injection/ejection channels (0 in serial mode).
  [[nodiscard]] std::int32_t shard_of_host(topo::HostId h) const;

  /// Worms currently traversing the network (or blocked inside it). A
  /// simulator that goes idle while this is non-zero has hit a routing
  /// deadlock — possible with torus dimension-ordered routes, impossible
  /// with up*/down*. Sharded mode: only meaningful between runs or at a
  /// barrier (summed over shards).
  [[nodiscard]] std::int32_t in_flight() const;

  [[nodiscard]] std::int64_t packets_delivered() const;

  /// Packets dropped by the loss process (loss_rate > 0) or by faults
  /// (truncated worms, injections into a dead fabric segment). Dropped
  /// packets consumed wire time but never reached their delivery
  /// callback.
  [[nodiscard]] std::int64_t packets_dropped() const;

  /// Worms truncated mid-flight by a fault: their acquired channels were
  /// freed, the tail was killed, and the receiver saw a CRC-style drop.
  /// A subset of packets_dropped().
  [[nodiscard]] std::int64_t packets_killed() const;

  /// Fault events applied so far.
  [[nodiscard]] std::int32_t faults_applied() const { return faults_applied_; }

  /// Cumulative time worms spent blocked on busy channels; the
  /// contention metric reported by the ordering ablation.
  [[nodiscard]] sim::Time total_block_time() const;

  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// Latency of an uncontended traversal over `hops` switch-switch links
  /// (plus injection and ejection): the network component of the paper's
  /// t_step.
  [[nodiscard]] sim::Time uncontended_latency(std::size_t hops) const;

  /// Pool high-water mark: worm slots ever allocated (summed over shard
  /// arenas). Equals the peak number of simultaneously live worms in
  /// serial mode — the pool leak/reuse invariant the worm-pool tests pin.
  [[nodiscard]] std::size_t worm_pool_slots() const;

  /// Slots currently on the free lists (== worm_pool_slots() when the
  /// network is idle and nothing leaked).
  [[nodiscard]] std::size_t worm_pool_free() const;

  /// Maximum in_flight() ever observed. Exact in serial mode; in sharded
  /// mode an upper bound (the sum of per-shard peaks — shards don't
  /// share a cycle-exact global counter mid-window).
  [[nodiscard]] std::int32_t peak_in_flight() const;

  /// Per-switch channel-acquisition counts (one entry per switch; a
  /// host's injection/ejection traffic accrues to its switch). The
  /// engine's load-aware repartitioning reads this after a warmup run to
  /// weight topo::partition_switches. In sharded mode each counter is
  /// written only by the owning shard, so read it between runs or at a
  /// barrier.
  [[nodiscard]] const std::vector<std::uint64_t>& switch_load() const {
    return switch_load_;
  }

  /// Per-channel congestion telemetry, maintained on the existing
  /// channel-acquisition/release path (two array increments — no
  /// per-flit allocation, no extra events). Counters are cumulative and
  /// monotone over the network's lifetime; like switch_load(), each
  /// index is written only by its owner shard mid-window, so sample them
  /// between runs, at a barrier, or from a single-threaded global.
  /// Total channels (switch + injection + ejection); valid ids are
  /// [0, num_channels()).
  [[nodiscard]] std::int32_t num_channels() const {
    return static_cast<std::int32_t>(channel_busy_.size());
  }
  /// Cumulative ns worms spent parked waiting for `chan`, accrued at
  /// each FIFO hand-off. Sums to total_block_time() over all channels.
  [[nodiscard]] std::int64_t channel_block_ns(std::int32_t chan) const {
    return chan_block_ns_[static_cast<std::size_t>(chan)];
  }
  /// Times `chan` was acquired (first grab + every FIFO hand-off).
  [[nodiscard]] std::uint64_t channel_acquisitions(std::int32_t chan) const {
    return chan_acq_[static_cast<std::size_t>(chan)];
  }
  /// Public channel-id helper for telemetry consumers: the injection
  /// (NI -> switch) channel of host `h`. A rotation member's switch
  /// footprint plus its forwarders' injection channels is the channel
  /// set whose congestion the member actually feels.
  [[nodiscard]] std::int32_t injection_channel_id(topo::HostId h) const {
    return injection_channel(h);
  }

 private:
  struct PendingRelease {
    std::int32_t chan;
    sim::EventId id;
  };

  struct Worm {
    Packet packet;
    std::vector<std::int32_t> path;      ///< channel ids, injection..ejection
    std::vector<sim::Time> acquired_at;  ///< per-channel acquisition times
    /// Pipelined mode: staggered releases not yet fired. Sharded mode:
    /// the remote (cross-shard) at-delivery releases mailed by
    /// schedule_drain. Either way: cancel-and-release on kill.
    std::vector<PendingRelease> pending_releases;
    std::size_t next = 0;        ///< next channel to acquire
    sim::Time block_start{};     ///< set while parked on a busy channel
    sim::Time hop_at{};          ///< arrival time of the pending hop
    sim::EventId pending{};      ///< in-flight hop / drain-completion event
    std::int32_t pending_shard = 0;  ///< shard whose queue holds `pending`
    /// Waiter-FIFO link while parked; free-list link while the slot is
    /// free.
    Worm* next_waiter = nullptr;
    std::int32_t shard = 0;  ///< shard that allocated this incarnation
    /// Bumped on every free; replay globals capture it to detect that
    /// the worm they were scheduled for died (or was recycled) first.
    std::uint64_t doom_epoch = 0;
    /// Deterministic identity for replay-global tie-breaks:
    /// (birth arena << 32) | slot index within it. Never changes.
    std::uint64_t replay_key = 0;
    /// Channels [0, released_below) already freed by pipelined staggered
    /// releases; they must not be freed again when the worm is killed.
    std::size_t released_below = 0;
    bool parked = false;    ///< sitting in some channel's waiter FIFO
    bool draining = false;  ///< final channel acquired, payload draining
    bool in_use = false;    ///< live worm vs free slot (fault sweep filter)
    /// Sharded: the pending hop was replaced by a barrier-phase replay
    /// global (its target channel is currently condemned); `pending` is
    /// not a live event.
    bool doomed = false;
  };

  /// Per-shard mutable state: worm arena + free list + statistics. One
  /// instance in serial mode. Heap-allocated so shard-hot state never
  /// false-shares across worker threads.
  struct ShardState {
    std::deque<Worm> arena;  ///< stable addresses; grows at injection
    Worm* free_head = nullptr;
    std::size_t free_count = 0;
    std::int32_t in_flight = 0;
    std::int32_t peak_in_flight = 0;
    std::int64_t delivered = 0;
    std::int64_t dropped = 0;
    std::int64_t killed = 0;
    sim::Time total_block = sim::Time::zero();
  };

  /// Channel ids: [0, 2E*V) switch channels, [2E*V, 2E*V+H) injection,
  /// [2E*V+H, 2E*V+2H) ejection.
  [[nodiscard]] std::int32_t injection_channel(topo::HostId h) const;
  [[nodiscard]] std::int32_t ejection_channel(topo::HostId h) const;
  /// Table for a packet's route class: class 0, unbound or out-of-range
  /// classes fall back to the primary table.
  [[nodiscard]] const routing::RouteTable& class_table(std::int32_t cls) const;
  void build_path(topo::HostId src, topo::HostId dst, std::int32_t cls,
                  std::vector<std::int32_t>& out) const;

  [[nodiscard]] bool is_sharded() const { return sharded_ != nullptr; }
  [[nodiscard]] std::int32_t chan_shard(std::int32_t chan) const {
    return is_sharded() ? chan_shard_[static_cast<std::size_t>(chan)] : 0;
  }
  [[nodiscard]] sim::Simulator& sim_of(std::int32_t shard) const {
    return is_sharded() ? sharded_->shard(shard) : *serial_sim_;
  }
  [[nodiscard]] ShardState& state_of(std::int32_t shard) {
    return *shard_state_[static_cast<std::size_t>(shard)];
  }

  [[nodiscard]] Worm* alloc_worm(std::int32_t shard);
  void free_worm(Worm* w, std::int32_t shard);
  void push_waiter(std::int32_t chan, Worm* w);
  [[nodiscard]] Worm* pop_waiter(std::int32_t chan);
  void erase_waiter(std::int32_t chan, Worm* w);

  /// Advances the worm's header through free channels; parks it on the
  /// first busy one. Runs on the owner shard of path[next] (or in the
  /// barrier phase).
  void progress(Worm* w);
  /// Schedules the header's arrival at path[next], `t_hop` from now on
  /// shard `from`: locally, as cross-shard mail, or — when the target
  /// channel is currently condemned — as a barrier-phase replay global
  /// (the ensuing teardown touches many shards).
  void schedule_hop(Worm* w, std::int32_t from);
  void doom(Worm* w, sim::Time at);
  /// Called once the final channel is acquired: schedules the tail drain
  /// (and the upstream releases: staggered in pipelined mode, mailed to
  /// their owner shards in sharded mode).
  void schedule_drain(Worm* w);
  void complete(Worm* w);
  void release_channel(std::int32_t chan);

  /// Applies one fault event: updates the liveness mask, condemns the
  /// affected channels and truncates every worm caught on one.
  void apply_fault(const FaultEvent& ev);
  void refresh_dead_channels();
  /// Truncates a worm: unparks or cancels its pending events, frees every
  /// channel it still holds, counts the packet as dropped+killed.
  void kill_worm(Worm* w);
  [[nodiscard]] bool channel_dead(std::int32_t chan) const {
    return !channel_dead_.empty() &&
           channel_dead_[static_cast<std::size_t>(chan)];
  }

  void init_channels_and_faults();

  /// Loss draw for a delivered packet: a pure hash of (loss_seed,
  /// message, packet index, attempt, sender, dest) against loss_rate.
  /// No state, no draw order — identical on every shard in any window.
  [[nodiscard]] bool packet_lost(const Packet& p) const;

  sim::Simulator* serial_sim_ = nullptr;    ///< serial mode
  sim::ShardedSimulator* sharded_ = nullptr;  ///< sharded mode
  const topo::Topology& topology_;
  const routing::RouteTable* routes_;  ///< pointer: rebindable after faults
  /// Alternative tables by route class (index = class - 1); null slots
  /// fall back to the primary table.
  std::vector<const routing::RouteTable*> class_routes_;
  NetworkConfig config_;
  sim::Trace* trace_;

  // Flat per-channel state, indexed by channel id. In sharded mode each
  // index is touched only by its owner shard mid-window (barriers order
  // everything else).
  std::vector<std::uint8_t> channel_busy_;
  std::vector<Worm*> wait_head_;  ///< waiter-FIFO head, null when empty
  std::vector<Worm*> wait_tail_;
  /// Owner shard per channel id; empty in serial mode.
  std::vector<std::int32_t> chan_shard_;
  /// Driving switch per channel id (injection/ejection map to the
  /// host's switch) — the accounting key for switch_load_.
  std::vector<topo::SwitchId> chan_switch_;
  /// Channel acquisitions per switch; see switch_load().
  std::vector<std::uint64_t> switch_load_;
  /// Cumulative block ns per channel; see channel_block_ns().
  std::vector<std::int64_t> chan_block_ns_;
  /// Acquisition count per channel; see channel_acquisitions().
  std::vector<std::uint64_t> chan_acq_;

  std::vector<std::unique_ptr<ShardState>> shard_state_;

  std::vector<DeliverySink*> sinks_;  ///< per host, null until bound

  std::int32_t faults_applied_ = 0;
  topo::SubgraphMask mask_;
  /// Hosts killed by kHostDown. Kept out of SubgraphMask on purpose:
  /// host death does not change the switch graph, so route tables need
  /// no rebuild. Sized lazily like the mask (empty == all alive).
  std::vector<bool> dead_host_;
  /// Parallel to channel_busy_; sized lazily at the first fault so the
  /// zero-fault path touches nothing.
  std::vector<bool> channel_dead_;
};

}  // namespace nimcast::net
