#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "network/network_config.hpp"
#include "network/packet.hpp"
#include "routing/route_table.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "topology/topology.hpp"

namespace nimcast::net {

/// Receiver of fully-arrived packets, bound once per host. The hot send
/// path dispatches through this instead of carrying a per-packet
/// std::function — every NI delivered to itself anyway, so the closure
/// was pure allocation overhead at scale.
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;
  /// The packet has fully arrived (header + payload) at this host's NI.
  virtual void on_packet_delivered(const Packet& packet) = 0;
};

/// Channel-level wormhole network simulator.
///
/// Every undirected switch link contributes two directed channels; every
/// host contributes an injection channel (NI -> switch) and an ejection
/// channel (switch -> NI). A packet travels as a worm: the header acquires
/// the channels of its route in order, advancing one `t_hop` per acquired
/// channel; when a channel is busy the worm *blocks in place, holding
/// everything it has acquired so far* — the defining wormhole behaviour
/// and the reason the paper needs contention-free tree constructions.
/// Channels release when the packet has fully drained into the destination
/// NI (exact for short fixed-size packets whose worm spans the path).
///
/// Blocked worms wait in per-channel FIFO queues, so contention resolution
/// is deterministic given the event order.
///
/// Virtual channels (when the route table's router uses them, e.g.
/// dateline torus routing) are modeled as independent channels: each VC
/// has its own occupancy and FIFO. This preserves the deadlock behaviour
/// exactly; it idealizes bandwidth in the rare instants when two VCs of
/// one physical link carry flits simultaneously (a standard lightweight
/// simplification, noted in DESIGN.md).
///
/// Storage: worms live in a slab pool with an intrusive free list (the
/// event-core recipe from sim::event_pool) and are addressed by index —
/// slab growth only ever happens at injection, and a recycled slot keeps
/// its vectors' capacity, so steady-state traffic allocates nothing.
/// Channel state is three flat arrays indexed by channel id (busy flag,
/// waiter-FIFO head/tail), with the FIFO linked through the worms
/// themselves.
class WormholeNetwork {
 public:
  /// Per-packet delivery closure for the legacy send() overload; tests
  /// and one-off probes use it. Regular NI traffic goes through
  /// DeliverySink.
  using DeliveryCallback = std::function<void(const Packet&)>;

  WormholeNetwork(sim::Simulator& simctx, const topo::Topology& topology,
                  const routing::RouteTable& routes, NetworkConfig config,
                  sim::Trace* trace = nullptr);

  WormholeNetwork(const WormholeNetwork&) = delete;
  WormholeNetwork& operator=(const WormholeNetwork&) = delete;

  /// Binds the packet receiver for `host`. Rebinding overwrites; sinks
  /// must outlive the network (NIs own their network reference, so NI
  /// construction order takes care of this).
  void bind_sink(topo::HostId host, DeliverySink* sink);

  /// Injects one packet from `packet.sender`'s NI toward `packet.dest`'s
  /// NI at the current simulated time; on full arrival the destination
  /// host's bound DeliverySink receives it. The injection channel may
  /// itself be busy, in which case the worm queues like at any other
  /// channel. Packets whose sender or destination sits on a dead switch,
  /// or whose pair is unreachable in the bound route table, are dropped
  /// at injection (counted in packets_dropped()).
  void send(const Packet& packet);

  /// Legacy overload: delivery invokes `on_delivered` instead of the
  /// destination's sink.
  void send(const Packet& packet, DeliveryCallback on_delivered);

  /// Fired after a `config.faults` event has been applied: the liveness
  /// mask is updated and every worm caught on a dying channel has been
  /// truncated. Fires for recoveries (kLinkUp) too — the multicast engine
  /// hooks this to rebuild routes on the *current* surviving subgraph,
  /// whichever direction it just changed.
  std::function<void(const FaultEvent&)> on_fault;

  /// Swaps the route table consulted for future injections — the
  /// fault-repair path after a rebuild on the surviving subgraph. Host
  /// count and virtual-channel multiplicity must match the original
  /// table (channel numbering depends on both). Worms already in flight
  /// keep their old paths.
  void rebind_routes(const routing::RouteTable& routes);

  [[nodiscard]] const routing::RouteTable& routes() const { return *routes_; }

  /// Current fault state; empty vectors mean the pristine fabric.
  [[nodiscard]] const topo::SubgraphMask& fault_state() const { return mask_; }

  /// False when the host's switch has died.
  [[nodiscard]] bool host_alive(topo::HostId h) const;

  /// Both endpoints alive and connected under the bound route table.
  [[nodiscard]] bool reachable(topo::HostId src, topo::HostId dst) const;

  /// Worms currently traversing the network (or blocked inside it). A
  /// simulator that goes idle while this is non-zero has hit a routing
  /// deadlock — possible with torus dimension-ordered routes, impossible
  /// with up*/down*.
  [[nodiscard]] std::int32_t in_flight() const { return in_flight_; }

  [[nodiscard]] std::int64_t packets_delivered() const { return delivered_; }

  /// Packets dropped by the loss process (loss_rate > 0) or by faults
  /// (truncated worms, injections into a dead fabric segment). Dropped
  /// packets consumed wire time but never reached their delivery
  /// callback.
  [[nodiscard]] std::int64_t packets_dropped() const { return dropped_; }

  /// Worms truncated mid-flight by a fault: their acquired channels were
  /// freed, the tail was killed, and the receiver saw a CRC-style drop.
  /// A subset of packets_dropped().
  [[nodiscard]] std::int64_t packets_killed() const { return killed_; }

  /// Fault events applied so far.
  [[nodiscard]] std::int32_t faults_applied() const { return faults_applied_; }

  /// Cumulative time worms spent blocked on busy channels; the
  /// contention metric reported by the ordering ablation.
  [[nodiscard]] sim::Time total_block_time() const { return total_block_; }

  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// Latency of an uncontended traversal over `hops` switch-switch links
  /// (plus injection and ejection): the network component of the paper's
  /// t_step.
  [[nodiscard]] sim::Time uncontended_latency(std::size_t hops) const;

  /// Pool high-water mark: worm slots ever allocated. Equals the peak
  /// number of simultaneously live worms — the pool leak/reuse invariant
  /// the worm-pool tests pin.
  [[nodiscard]] std::size_t worm_pool_slots() const { return pool_.size(); }

  /// Slots currently on the free list (== worm_pool_slots() when the
  /// network is idle and nothing leaked).
  [[nodiscard]] std::size_t worm_pool_free() const { return pool_free_; }

  /// Maximum in_flight() ever observed.
  [[nodiscard]] std::int32_t peak_in_flight() const { return peak_in_flight_; }

 private:
  /// Worms are addressed by pool index: slab growth (vector
  /// reallocation) would invalidate pointers, and indices survive it.
  using WormId = std::int32_t;
  static constexpr WormId kNoWorm = -1;

  struct PendingRelease {
    std::int32_t chan;
    sim::EventId id;
  };

  struct Worm {
    Packet packet;
    DeliveryCallback cb;  ///< legacy-overload deliveries only
    std::vector<std::int32_t> path;      ///< channel ids, injection..ejection
    std::vector<sim::Time> acquired_at;  ///< per-channel acquisition times
    /// Staggered pipelined releases not yet fired (fault bookkeeping).
    std::vector<PendingRelease> pending_releases;
    std::size_t next = 0;        ///< next channel to acquire
    sim::Time block_start{};     ///< set while parked on a busy channel
    sim::EventId pending{};      ///< in-flight hop / drain-completion event
    /// Waiter-FIFO link while parked; free-list link while the slot is
    /// free.
    WormId next_waiter = kNoWorm;
    /// Channels [0, released_below) already freed by pipelined staggered
    /// releases; they must not be freed again when the worm is killed.
    std::size_t released_below = 0;
    bool parked = false;    ///< sitting in some channel's waiter FIFO
    bool draining = false;  ///< final channel acquired, payload draining
    bool use_sink = false;  ///< deliver via sink (hot path) vs cb (legacy)
    bool in_use = false;    ///< live worm vs free slot (fault sweep filter)
  };

  /// Channel ids: [0, 2E*V) switch channels, [2E*V, 2E*V+H) injection,
  /// [2E*V+H, 2E*V+2H) ejection.
  [[nodiscard]] std::int32_t injection_channel(topo::HostId h) const;
  [[nodiscard]] std::int32_t ejection_channel(topo::HostId h) const;
  void build_path(topo::HostId src, topo::HostId dst,
                  std::vector<std::int32_t>& out) const;

  [[nodiscard]] WormId alloc_worm();
  void free_worm(WormId id);
  void inject(const Packet& packet, DeliveryCallback cb, bool use_sink);
  void push_waiter(std::int32_t chan, WormId id);
  [[nodiscard]] WormId pop_waiter(std::int32_t chan);
  void erase_waiter(std::int32_t chan, WormId id);

  /// Advances the worm's header through free channels; parks it on the
  /// first busy one.
  void progress(WormId id);
  /// Called once the final channel is acquired: schedules the tail drain
  /// (and, in pipelined mode, the staggered upstream releases).
  void schedule_drain(WormId id);
  void complete(WormId id);
  void release_channel(std::int32_t chan);

  /// Applies one fault event: updates the liveness mask, condemns the
  /// affected channels and truncates every worm caught on one.
  void apply_fault(const FaultEvent& ev);
  void refresh_dead_channels();
  /// Truncates a worm: unparks or cancels its pending events, frees every
  /// channel it still holds, counts the packet as dropped+killed.
  void kill_worm(WormId id);
  [[nodiscard]] bool channel_dead(std::int32_t chan) const {
    return !channel_dead_.empty() &&
           channel_dead_[static_cast<std::size_t>(chan)];
  }

  sim::Simulator& sim_;
  const topo::Topology& topology_;
  const routing::RouteTable* routes_;  ///< pointer: rebindable after faults
  NetworkConfig config_;
  sim::Trace* trace_;

  // Flat per-channel state, indexed by channel id.
  std::vector<std::uint8_t> channel_busy_;
  std::vector<WormId> wait_head_;  ///< waiter-FIFO head, kNoWorm when empty
  std::vector<WormId> wait_tail_;

  // Worm slab + free list (threaded through Worm::next_waiter).
  std::vector<Worm> pool_;
  WormId free_head_ = kNoWorm;
  std::size_t pool_free_ = 0;

  std::vector<DeliverySink*> sinks_;  ///< per host, null until bound

  std::int32_t in_flight_ = 0;
  std::int32_t peak_in_flight_ = 0;
  std::int64_t delivered_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t killed_ = 0;
  std::int32_t faults_applied_ = 0;
  sim::Rng loss_rng_;
  sim::Time total_block_ = sim::Time::zero();
  topo::SubgraphMask mask_;
  /// Parallel to channel_busy_; sized lazily at the first fault so the
  /// zero-fault path touches nothing.
  std::vector<bool> channel_dead_;
};

}  // namespace nimcast::net
