#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "network/network_config.hpp"
#include "network/packet.hpp"
#include "routing/route_table.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "topology/topology.hpp"

namespace nimcast::net {

/// Channel-level wormhole network simulator.
///
/// Every undirected switch link contributes two directed channels; every
/// host contributes an injection channel (NI -> switch) and an ejection
/// channel (switch -> NI). A packet travels as a worm: the header acquires
/// the channels of its route in order, advancing one `t_hop` per acquired
/// channel; when a channel is busy the worm *blocks in place, holding
/// everything it has acquired so far* — the defining wormhole behaviour
/// and the reason the paper needs contention-free tree constructions.
/// Channels release when the packet has fully drained into the destination
/// NI (exact for short fixed-size packets whose worm spans the path).
///
/// Blocked worms wait in per-channel FIFO queues, so contention resolution
/// is deterministic given the event order.
///
/// Virtual channels (when the route table's router uses them, e.g.
/// dateline torus routing) are modeled as independent channels: each VC
/// has its own occupancy and FIFO. This preserves the deadlock behaviour
/// exactly; it idealizes bandwidth in the rare instants when two VCs of
/// one physical link carry flits simultaneously (a standard lightweight
/// simplification, noted in DESIGN.md).
class WormholeNetwork {
 public:
  /// Called when the packet has fully arrived at the destination NI's
  /// receive queue (header + payload).
  using DeliveryCallback = std::function<void(const Packet&)>;

  WormholeNetwork(sim::Simulator& simctx, const topo::Topology& topology,
                  const routing::RouteTable& routes, NetworkConfig config,
                  sim::Trace* trace = nullptr);

  ~WormholeNetwork();  // out-of-line: Worm is incomplete here

  WormholeNetwork(const WormholeNetwork&) = delete;
  WormholeNetwork& operator=(const WormholeNetwork&) = delete;

  /// Injects one packet from `packet.sender`'s NI toward `packet.dest`'s
  /// NI at the current simulated time. The injection channel may itself be
  /// busy, in which case the worm queues like at any other channel.
  /// Packets whose sender or destination sits on a dead switch, or whose
  /// pair is unreachable in the bound route table, are dropped at
  /// injection (counted in packets_dropped()).
  void send(const Packet& packet, DeliveryCallback on_delivered);

  /// Fired after a `config.faults` event has been applied: the liveness
  /// mask is updated and every worm caught on a dying channel has been
  /// truncated. The multicast engine hooks this to rebuild routes on the
  /// surviving subgraph.
  std::function<void(const FaultEvent&)> on_fault;

  /// Swaps the route table consulted for future injections — the
  /// fault-repair path after a rebuild on the surviving subgraph. Host
  /// count and virtual-channel multiplicity must match the original
  /// table (channel numbering depends on both). Worms already in flight
  /// keep their old paths.
  void rebind_routes(const routing::RouteTable& routes);

  [[nodiscard]] const routing::RouteTable& routes() const { return *routes_; }

  /// Current fault state; empty vectors mean the pristine fabric.
  [[nodiscard]] const topo::SubgraphMask& fault_state() const { return mask_; }

  /// False when the host's switch has died.
  [[nodiscard]] bool host_alive(topo::HostId h) const;

  /// Both endpoints alive and connected under the bound route table.
  [[nodiscard]] bool reachable(topo::HostId src, topo::HostId dst) const;

  /// Worms currently traversing the network (or blocked inside it). A
  /// simulator that goes idle while this is non-zero has hit a routing
  /// deadlock — possible with torus dimension-ordered routes, impossible
  /// with up*/down*.
  [[nodiscard]] std::int32_t in_flight() const { return in_flight_; }

  [[nodiscard]] std::int64_t packets_delivered() const { return delivered_; }

  /// Packets dropped by the loss process (loss_rate > 0) or by faults
  /// (truncated worms, injections into a dead fabric segment). Dropped
  /// packets consumed wire time but never reached their delivery
  /// callback.
  [[nodiscard]] std::int64_t packets_dropped() const { return dropped_; }

  /// Worms truncated mid-flight by a fault: their acquired channels were
  /// freed, the tail was killed, and the receiver saw a CRC-style drop.
  /// A subset of packets_dropped().
  [[nodiscard]] std::int64_t packets_killed() const { return killed_; }

  /// Fault events applied so far.
  [[nodiscard]] std::int32_t faults_applied() const { return faults_applied_; }

  /// Cumulative time worms spent blocked on busy channels; the
  /// contention metric reported by the ordering ablation.
  [[nodiscard]] sim::Time total_block_time() const { return total_block_; }

  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// Latency of an uncontended traversal over `hops` switch-switch links
  /// (plus injection and ejection): the network component of the paper's
  /// t_step.
  [[nodiscard]] sim::Time uncontended_latency(std::size_t hops) const;

 private:
  struct Worm;

  /// Channel ids: [0, 2E) switch channels, [2E, 2E+H) injection,
  /// [2E+H, 2E+2H) ejection.
  struct Channel {
    bool busy = false;
    std::deque<Worm*> waiters;
  };

  [[nodiscard]] std::int32_t injection_channel(topo::HostId h) const;
  [[nodiscard]] std::int32_t ejection_channel(topo::HostId h) const;
  [[nodiscard]] std::vector<std::int32_t> full_path(topo::HostId src,
                                                    topo::HostId dst) const;

  /// Advances the worm's header through free channels; parks it on the
  /// first busy one.
  void progress(Worm* worm);
  /// Called once the final channel is acquired: schedules the tail drain
  /// (and, in pipelined mode, the staggered upstream releases).
  void schedule_drain(Worm* worm);
  void complete(Worm* worm);
  void release_channel(std::int32_t chan);

  /// Applies one fault event: updates the liveness mask, condemns the
  /// affected channels and truncates every worm caught on one.
  void apply_fault(const FaultEvent& ev);
  void refresh_dead_channels();
  /// Truncates a worm: unparks or cancels its pending events, frees every
  /// channel it still holds, counts the packet as dropped+killed.
  void kill_worm(Worm* worm);
  [[nodiscard]] bool channel_dead(std::int32_t chan) const {
    return !channel_dead_.empty() &&
           channel_dead_[static_cast<std::size_t>(chan)];
  }

  sim::Simulator& sim_;
  const topo::Topology& topology_;
  const routing::RouteTable* routes_;  ///< pointer: rebindable after faults
  NetworkConfig config_;
  sim::Trace* trace_;

  std::vector<Channel> channels_;
  std::vector<std::unique_ptr<Worm>> live_worms_;
  std::int32_t in_flight_ = 0;
  std::int64_t delivered_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t killed_ = 0;
  std::int32_t faults_applied_ = 0;
  sim::Rng loss_rng_;
  sim::Time total_block_ = sim::Time::zero();
  topo::SubgraphMask mask_;
  /// Parallel to channels_; sized lazily at the first fault so the
  /// zero-fault path touches nothing.
  std::vector<bool> channel_dead_;
};

}  // namespace nimcast::net
