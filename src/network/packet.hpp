#pragma once

#include <cstdint>

#include "topology/ids.hpp"

namespace nimcast::net {

/// Identifies a multicast operation in flight; packets of different
/// operations are distinguished by this id at the receiving NI.
using MessageId = std::int32_t;

/// Wire-level packet metadata. The payload itself is never materialized —
/// the simulator moves time, not bytes — but the header fields the NI
/// coprocessor reads (message id, packet index, count) are carried so the
/// FCFS/FPFS forwarding logic sees exactly what firmware would see.
struct Packet {
  MessageId message = -1;
  std::int32_t packet_index = 0;   ///< 0-based index within the message
  std::int32_t packet_count = 1;   ///< total packets in the message
  topo::HostId sender = topo::kInvalidId;  ///< immediate upstream host
  topo::HostId dest = topo::kInvalidId;    ///< this copy's destination host
  /// Opaque per-protocol header field; multicast leaves it unused, the
  /// collectives layer carries the scatter final-destination or the
  /// gather origin here.
  std::int32_t tag = -1;
  /// Route table the network consults at injection: 0 is the primary
  /// table, higher classes select a bound alternative (streaming
  /// rotation members travel over decorrelated up*/down* alternatives).
  std::int32_t route_class = 0;
  /// Retransmission attempt number (0 = first transmission). The lossy
  /// fabric draws a packet's fate as a pure hash of its identity — so
  /// loss is lookahead-safe under sharding — and the attempt counter is
  /// part of that identity: a retransmitted copy (and the ACK it
  /// provokes) gets an independent draw instead of the original's.
  std::int32_t attempt = 0;
};

}  // namespace nimcast::net
