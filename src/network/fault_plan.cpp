#include "network/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.hpp"

namespace nimcast::net {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kSwitchDown: return "switch-down";
    case FaultKind::kHostDown: return "host-down";
  }
  return "?";
}

void FaultPlan::add(FaultEvent ev) {
  if (ev.at < sim::Time::zero()) {
    throw std::invalid_argument("FaultPlan: negative fault time");
  }
  if (ev.id < 0) {
    throw std::invalid_argument("FaultPlan: negative link/switch id");
  }
  // Keep sorted by time with insertion order on ties, so events() is
  // directly schedulable and plans built in any order are canonical.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), ev.at,
      [](sim::Time at, const FaultEvent& e) { return at < e.at; });
  events_.insert(pos, ev);
}

FaultPlan& FaultPlan::link_down(sim::Time at, topo::LinkId link) {
  add(FaultEvent{at, FaultKind::kLinkDown, link});
  return *this;
}

FaultPlan& FaultPlan::link_up(sim::Time at, topo::LinkId link) {
  add(FaultEvent{at, FaultKind::kLinkUp, link});
  return *this;
}

FaultPlan& FaultPlan::switch_down(sim::Time at, topo::SwitchId sw) {
  add(FaultEvent{at, FaultKind::kSwitchDown, sw});
  return *this;
}

FaultPlan& FaultPlan::host_down(sim::Time at, topo::HostId host) {
  add(FaultEvent{at, FaultKind::kHostDown, host});
  return *this;
}

FaultPlan FaultPlan::random(const topo::Graph& g, const RandomConfig& cfg,
                            sim::Rng& rng) {
  return random(g, 0, cfg, rng);
}

FaultPlan FaultPlan::random(const topo::Graph& g, std::int32_t num_hosts,
                            const RandomConfig& cfg, sim::Rng& rng) {
  if (cfg.window_end < cfg.window_start) {
    throw std::invalid_argument("FaultPlan::random: inverted window");
  }
  FaultPlan plan;
  const auto span = (cfg.window_end - cfg.window_start).count_ns();
  auto draw_time = [&]() {
    const auto offset =
        static_cast<sim::Time::rep>(rng.next_double() *
                                    static_cast<double>(span));
    return cfg.window_start + sim::Time::ns(offset);
  };
  for (topo::LinkId e = 0; e < g.num_edges(); ++e) {
    if (!rng.next_bool(cfg.link_fail_prob)) continue;
    const sim::Time at = draw_time();
    plan.link_down(at, e);
    if (cfg.link_recover_after > sim::Time::zero()) {
      plan.link_up(at + cfg.link_recover_after, e);
    }
  }
  for (topo::SwitchId s = 0; s < g.num_vertices(); ++s) {
    if (!rng.next_bool(cfg.switch_fail_prob)) continue;
    plan.switch_down(draw_time(), s);
  }
  // Host draws come last so plans drawn through the Graph overload (or
  // with host_fail_prob == 0) consume exactly the pre-host rng sequence.
  if (cfg.host_fail_prob > 0.0) {
    for (topo::HostId h = 0; h < num_hosts; ++h) {
      if (!rng.next_bool(cfg.host_fail_prob)) continue;
      plan.host_down(draw_time(), h);
    }
  }
  return plan;
}

}  // namespace nimcast::net
