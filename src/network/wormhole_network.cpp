#include "network/wormhole_network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace nimcast::net {

struct WormholeNetwork::Worm {
  Packet packet;
  DeliveryCallback cb;
  std::vector<std::int32_t> path;  ///< channel ids, injection..ejection
  std::vector<sim::Time> acquired_at;  ///< per-channel acquisition times
  std::size_t next = 0;            ///< next channel to acquire
  sim::Time block_start;           ///< set while parked on a busy channel

  // --- fault-truncation bookkeeping (idle on a pristine fabric) ---
  sim::EventId pending{};   ///< in-flight hop / drain-completion event
  bool parked = false;      ///< sitting in some channel's waiter queue
  bool draining = false;    ///< final channel acquired, payload draining
  /// Channels [0, released_below) already freed by pipelined staggered
  /// releases; they must not be freed again when the worm is killed.
  std::size_t released_below = 0;
  struct PendingRelease {
    std::int32_t chan;
    sim::EventId id;
  };
  std::vector<PendingRelease> pending_releases;
};

WormholeNetwork::~WormholeNetwork() = default;

WormholeNetwork::WormholeNetwork(sim::Simulator& simctx,
                                 const topo::Topology& topology,
                                 const routing::RouteTable& routes,
                                 NetworkConfig config, sim::Trace* trace)
    : sim_{simctx},
      topology_{topology},
      routes_{&routes},
      config_{std::move(config)},
      trace_{trace},
      loss_rng_{config_.loss_seed} {
  if (config_.loss_rate < 0.0 || config_.loss_rate >= 1.0) {
    throw std::invalid_argument(
        "WormholeNetwork: loss_rate must be in [0, 1)");
  }
  // Switch channels come first (expanded by the routes' virtual-channel
  // multiplicity), then per-host injection and ejection channels.
  const auto num_channels =
      2 * topology.switches().num_edges() * routes.virtual_channels() +
      2 * topology.num_hosts();
  channels_.resize(static_cast<std::size_t>(num_channels));
  for (const FaultEvent& ev : config_.faults.events()) {
    const auto bound = ev.kind == FaultKind::kSwitchDown
                           ? topology.num_switches()
                           : topology.switches().num_edges();
    if (ev.id < 0 || ev.id >= bound) {
      throw std::invalid_argument("WormholeNetwork: fault id out of range");
    }
    sim_.schedule_at(ev.at, [this, ev] { apply_fault(ev); });
  }
}

void WormholeNetwork::rebind_routes(const routing::RouteTable& routes) {
  if (routes.num_hosts() != routes_->num_hosts() ||
      routes.virtual_channels() != routes_->virtual_channels()) {
    throw std::invalid_argument(
        "WormholeNetwork::rebind_routes: table shape mismatch");
  }
  routes_ = &routes;
}

bool WormholeNetwork::host_alive(topo::HostId h) const {
  return mask_.switch_alive(topology_.switch_of(h));
}

bool WormholeNetwork::reachable(topo::HostId src, topo::HostId dst) const {
  return host_alive(src) && host_alive(dst) && routes_->reachable(src, dst);
}

std::int32_t WormholeNetwork::injection_channel(topo::HostId h) const {
  return 2 * topology_.switches().num_edges() * routes_->virtual_channels() +
         h;
}

std::int32_t WormholeNetwork::ejection_channel(topo::HostId h) const {
  return 2 * topology_.switches().num_edges() * routes_->virtual_channels() +
         topology_.num_hosts() + h;
}

std::vector<std::int32_t> WormholeNetwork::full_path(topo::HostId src,
                                                     topo::HostId dst) const {
  std::vector<std::int32_t> path;
  path.push_back(injection_channel(src));
  const auto& route = routes_->path(src, dst);
  for (std::int32_t c : routing::route_channels(topology_.switches(), route,
                                                routes_->virtual_channels())) {
    path.push_back(c);
  }
  path.push_back(ejection_channel(dst));
  return path;
}

sim::Time WormholeNetwork::uncontended_latency(std::size_t hops) const {
  // One t_hop per acquired channel (injection + hops + ejection gets the
  // header to the far side of each), then the payload drains.
  const auto total_channels = static_cast<sim::Time::rep>(hops) + 2;
  return config_.t_hop * total_channels + config_.serialization_time();
}

void WormholeNetwork::send(const Packet& packet, DeliveryCallback on_delivered) {
  if (packet.sender < 0 || packet.sender >= topology_.num_hosts() ||
      packet.dest < 0 || packet.dest >= topology_.num_hosts()) {
    throw std::invalid_argument("WormholeNetwork::send: host out of range");
  }
  if (packet.sender == packet.dest) {
    throw std::invalid_argument("WormholeNetwork::send: self-send");
  }
  if (!reachable(packet.sender, packet.dest)) {
    // The fabric segment between the endpoints is dead: a CRC-style
    // silent drop at injection. Reliable NIs see it as loss and retry or
    // give up against their reachability check.
    ++dropped_;
    if (trace_) {
      trace_->record(sim_.now(), sim::TraceCategory::kPacket, packet.sender,
                     "DROP-unreachable msg=" + std::to_string(packet.message) +
                         " pkt=" + std::to_string(packet.packet_index) +
                         " -> host " + std::to_string(packet.dest));
    }
    return;
  }
  auto worm = std::make_unique<Worm>();
  worm->packet = packet;
  worm->cb = std::move(on_delivered);
  worm->path = full_path(packet.sender, packet.dest);
  Worm* raw = worm.get();
  live_worms_.push_back(std::move(worm));
  ++in_flight_;
  if (trace_) {
    trace_->record(sim_.now(), sim::TraceCategory::kPacket, packet.sender,
                   "inject msg=" + std::to_string(packet.message) + " pkt=" +
                       std::to_string(packet.packet_index) + " -> host " +
                       std::to_string(packet.dest));
  }
  progress(raw);
}

void WormholeNetwork::progress(Worm* worm) {
  assert(worm->next < worm->path.size());
  const std::int32_t chan = worm->path[worm->next];
  if (channel_dead(chan)) {
    // The header ran into a link/switch that died after injection.
    kill_worm(worm);
    return;
  }
  auto& channel = channels_[static_cast<std::size_t>(chan)];
  if (channel.busy) {
    worm->block_start = sim_.now();
    worm->parked = true;
    channel.waiters.push_back(worm);
    if (trace_) {
      trace_->record(sim_.now(), sim::TraceCategory::kChannel, chan,
                     "block pkt=" +
                         std::to_string(worm->packet.packet_index) +
                         " dest=" + std::to_string(worm->packet.dest));
    }
    return;
  }
  channel.busy = true;
  worm->acquired_at.push_back(sim_.now());
  ++worm->next;
  if (worm->next == worm->path.size()) {
    schedule_drain(worm);
  } else {
    worm->pending = sim_.schedule_at(sim_.now() + config_.t_hop,
                                     [this, worm] { progress(worm); });
  }
}

void WormholeNetwork::schedule_drain(Worm* worm) {
  worm->draining = true;
  // Header crosses the final (ejection) channel, then the payload drains
  // into the destination NI.
  const sim::Time delivery =
      sim_.now() + config_.t_hop + config_.serialization_time();
  const std::size_t len = worm->path.size();
  if (config_.release_model == ReleaseModel::kPipelined) {
    // The tail flit trails the header by one hop per remaining channel;
    // upstream channels free as it passes (never before the head of the
    // packet has fully left them, and never after delivery). Release
    // times are non-decreasing in i and scheduled in index order, so the
    // FIFO tie-break makes released_below advance monotonically.
    for (std::size_t i = 0; i + 1 < len; ++i) {
      const sim::Time earliest = worm->acquired_at[i] + config_.t_hop +
                                 config_.serialization_time();
      const sim::Time tail_passes =
          delivery - config_.t_hop * static_cast<sim::Time::rep>(len - 1 - i);
      const std::int32_t chan = worm->path[i];
      const auto id = sim_.schedule_at(
          std::max(earliest, tail_passes), [this, worm, i, chan] {
            worm->released_below = i + 1;
            release_channel(chan);
          });
      worm->pending_releases.push_back(Worm::PendingRelease{chan, id});
    }
  }
  worm->pending = sim_.schedule_at(delivery, [this, worm] { complete(worm); });
}

void WormholeNetwork::release_channel(std::int32_t chan) {
  auto& channel = channels_[static_cast<std::size_t>(chan)];
  assert(channel.busy);
  if (channel_dead(chan)) {
    // A condemned channel never hands off; any worm still waiting on it
    // is truncated by the same fault sweep that condemned it.
    channel.busy = false;
    return;
  }
  if (channel.waiters.empty()) {
    channel.busy = false;
    return;
  }
  // Immediate FIFO hand-off: the channel never goes idle, the head waiter
  // owns it as of now. Keeps arbitration strictly first-come-first-served.
  Worm* next = channel.waiters.front();
  channel.waiters.pop_front();
  next->parked = false;
  total_block_ += sim_.now() - next->block_start;
  assert(next->path[next->next] == chan);
  next->acquired_at.push_back(sim_.now());
  ++next->next;
  if (next->next == next->path.size()) {
    schedule_drain(next);
  } else {
    next->pending = sim_.schedule_at(sim_.now() + config_.t_hop,
                                     [this, next] { progress(next); });
  }
}

void WormholeNetwork::complete(Worm* worm) {
  if (config_.release_model == ReleaseModel::kAtDelivery) {
    for (std::int32_t chan : worm->path) release_channel(chan);
  } else {
    // Pipelined mode already released the upstream channels; only the
    // final (ejection) channel is still held.
    release_channel(worm->path.back());
  }
  --in_flight_;
  const bool lost =
      config_.loss_rate > 0.0 && loss_rng_.next_bool(config_.loss_rate);
  if (lost) {
    ++dropped_;
  } else {
    ++delivered_;
  }
  if (trace_) {
    trace_->record(sim_.now(), sim::TraceCategory::kPacket, worm->packet.dest,
                   std::string(lost ? "DROP" : "deliver") + " msg=" +
                       std::to_string(worm->packet.message) + " pkt=" +
                       std::to_string(worm->packet.packet_index));
  }
  DeliveryCallback cb = lost ? DeliveryCallback{} : std::move(worm->cb);
  const Packet packet = worm->packet;
  auto it = std::find_if(live_worms_.begin(), live_worms_.end(),
                         [worm](const auto& p) { return p.get() == worm; });
  assert(it != live_worms_.end());
  live_worms_.erase(it);
  if (cb) cb(packet);
}

void WormholeNetwork::apply_fault(const FaultEvent& ev) {
  ++faults_applied_;
  if (mask_.dead_link.empty()) {
    mask_.dead_link.assign(
        static_cast<std::size_t>(topology_.switches().num_edges()), false);
    mask_.dead_switch.assign(static_cast<std::size_t>(topology_.num_switches()),
                             false);
  }
  const auto id = static_cast<std::size_t>(ev.id);
  switch (ev.kind) {
    case FaultKind::kLinkDown: mask_.dead_link[id] = true; break;
    case FaultKind::kLinkUp: mask_.dead_link[id] = false; break;
    case FaultKind::kSwitchDown: mask_.dead_switch[id] = true; break;
  }
  refresh_dead_channels();
  if (trace_) {
    trace_->record(sim_.now(), sim::TraceCategory::kChannel, ev.id,
                   std::string("FAULT ") + to_string(ev.kind) + " id=" +
                       std::to_string(ev.id));
  }
  if (ev.kind != FaultKind::kLinkUp) {
    // Collect the victims first: kill_worm mutates live_worms_ and may
    // hand surviving channels to other worms, so the sweep reads current
    // state one victim at a time.
    std::vector<Worm*> victims;
    for (const auto& owned : live_worms_) {
      Worm* w = owned.get();
      // Channels the worm currently pins: everything acquired but not yet
      // released, plus (for a parked worm) the dead channel it waits on —
      // that wait can never be satisfied once the channel is condemned.
      const std::size_t held_end =
          w->draining ? w->path.size() : w->next + (w->parked ? 1u : 0u);
      for (std::size_t i = w->released_below; i < held_end; ++i) {
        if (channel_dead(w->path[i])) {
          victims.push_back(w);
          break;
        }
      }
    }
    for (Worm* w : victims) kill_worm(w);
  }
  if (on_fault) on_fault(ev);
}

void WormholeNetwork::refresh_dead_channels() {
  channel_dead_.assign(channels_.size(), false);
  const auto& g = topology_.switches();
  const auto vcs = routes_->virtual_channels();
  for (topo::LinkId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    const bool dead = !mask_.link_alive(e) || !mask_.switch_alive(edge.a) ||
                      !mask_.switch_alive(edge.b);
    if (!dead) continue;
    for (std::int32_t dir = 0; dir < 2; ++dir) {
      const std::int32_t base = (2 * e + dir) * vcs;
      for (std::int32_t v = 0; v < vcs; ++v) {
        channel_dead_[static_cast<std::size_t>(base + v)] = true;
      }
    }
  }
  for (topo::HostId h = 0; h < topology_.num_hosts(); ++h) {
    if (mask_.switch_alive(topology_.switch_of(h))) continue;
    channel_dead_[static_cast<std::size_t>(injection_channel(h))] = true;
    channel_dead_[static_cast<std::size_t>(ejection_channel(h))] = true;
  }
}

void WormholeNetwork::kill_worm(Worm* worm) {
  if (worm->parked) {
    // Un-park: the worm leaves the waiter queue it sits in.
    auto& waiters =
        channels_[static_cast<std::size_t>(worm->path[worm->next])].waiters;
    auto w = std::find(waiters.begin(), waiters.end(), worm);
    assert(w != waiters.end());
    waiters.erase(w);
  } else {
    // Cancel the in-flight hop / drain-completion event. cancel() is a
    // no-op (false) if it already fired, in which case the worm's state
    // was advanced by the callback and reflects reality.
    sim_.cancel(worm->pending);
  }
  // Staggered pipelined releases that have not fired yet still hold their
  // channel: cancel each and release it here. Fired ones already advanced
  // released_below.
  for (const auto& pr : worm->pending_releases) {
    if (sim_.cancel(pr.id)) release_channel(pr.chan);
  }
  worm->pending_releases.clear();
  if (worm->draining) {
    if (config_.release_model == ReleaseModel::kAtDelivery) {
      for (std::int32_t chan : worm->path) release_channel(chan);
    } else {
      // Pipelined: upstream channels were handled above (fired or
      // canceled); only the final (ejection) channel remains held.
      release_channel(worm->path.back());
    }
  } else {
    for (std::size_t i = worm->released_below; i < worm->next; ++i) {
      release_channel(worm->path[i]);
    }
  }
  --in_flight_;
  ++dropped_;
  ++killed_;
  if (trace_) {
    trace_->record(sim_.now(), sim::TraceCategory::kPacket, worm->packet.dest,
                   "KILL msg=" + std::to_string(worm->packet.message) +
                       " pkt=" + std::to_string(worm->packet.packet_index) +
                       " from=" + std::to_string(worm->packet.sender));
  }
  auto it = std::find_if(live_worms_.begin(), live_worms_.end(),
                         [worm](const auto& p) { return p.get() == worm; });
  assert(it != live_worms_.end());
  live_worms_.erase(it);
}

}  // namespace nimcast::net
