#include "network/wormhole_network.hpp"

#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

namespace nimcast::net {

WormholeNetwork::WormholeNetwork(sim::Simulator& simctx,
                                 const topo::Topology& topology,
                                 const routing::RouteTable& routes,
                                 NetworkConfig config, sim::Trace* trace)
    : sim_{simctx},
      topology_{topology},
      routes_{&routes},
      config_{std::move(config)},
      trace_{trace},
      loss_rng_{config_.loss_seed} {
  if (config_.loss_rate < 0.0 || config_.loss_rate >= 1.0) {
    throw std::invalid_argument(
        "WormholeNetwork: loss_rate must be in [0, 1)");
  }
  // Switch channels come first (expanded by the routes' virtual-channel
  // multiplicity), then per-host injection and ejection channels.
  const auto num_channels = static_cast<std::size_t>(
      2 * topology.switches().num_edges() * routes.virtual_channels() +
      2 * topology.num_hosts());
  channel_busy_.assign(num_channels, 0);
  wait_head_.assign(num_channels, kNoWorm);
  wait_tail_.assign(num_channels, kNoWorm);
  sinks_.assign(static_cast<std::size_t>(topology.num_hosts()), nullptr);
  for (const FaultEvent& ev : config_.faults.events()) {
    const auto bound = ev.kind == FaultKind::kSwitchDown
                           ? topology.num_switches()
                           : topology.switches().num_edges();
    if (ev.id < 0 || ev.id >= bound) {
      throw std::invalid_argument("WormholeNetwork: fault id out of range");
    }
    sim_.schedule_at(ev.at, [this, ev] { apply_fault(ev); });
  }
}

void WormholeNetwork::bind_sink(topo::HostId host, DeliverySink* sink) {
  if (host < 0 || host >= topology_.num_hosts()) {
    throw std::invalid_argument("WormholeNetwork::bind_sink: host out of range");
  }
  sinks_[static_cast<std::size_t>(host)] = sink;
}

void WormholeNetwork::rebind_routes(const routing::RouteTable& routes) {
  if (routes.num_hosts() != routes_->num_hosts() ||
      routes.virtual_channels() != routes_->virtual_channels()) {
    throw std::invalid_argument(
        "WormholeNetwork::rebind_routes: table shape mismatch");
  }
  routes_ = &routes;
}

bool WormholeNetwork::host_alive(topo::HostId h) const {
  return mask_.switch_alive(topology_.switch_of(h));
}

bool WormholeNetwork::reachable(topo::HostId src, topo::HostId dst) const {
  return host_alive(src) && host_alive(dst) && routes_->reachable(src, dst);
}

std::int32_t WormholeNetwork::injection_channel(topo::HostId h) const {
  return 2 * topology_.switches().num_edges() * routes_->virtual_channels() +
         h;
}

std::int32_t WormholeNetwork::ejection_channel(topo::HostId h) const {
  return 2 * topology_.switches().num_edges() * routes_->virtual_channels() +
         topology_.num_hosts() + h;
}

void WormholeNetwork::build_path(topo::HostId src, topo::HostId dst,
                                 std::vector<std::int32_t>& out) const {
  out.push_back(injection_channel(src));
  const auto& route = routes_->path(src, dst);
  for (std::int32_t c : routing::route_channels(topology_.switches(), route,
                                                routes_->virtual_channels())) {
    out.push_back(c);
  }
  out.push_back(ejection_channel(dst));
}

sim::Time WormholeNetwork::uncontended_latency(std::size_t hops) const {
  // One t_hop per acquired channel (injection + hops + ejection gets the
  // header to the far side of each), then the payload drains.
  const auto total_channels = static_cast<sim::Time::rep>(hops) + 2;
  return config_.t_hop * total_channels + config_.serialization_time();
}

WormholeNetwork::WormId WormholeNetwork::alloc_worm() {
  WormId id;
  if (free_head_ != kNoWorm) {
    id = free_head_;
    free_head_ = pool_[static_cast<std::size_t>(id)].next_waiter;
    --pool_free_;
  } else {
    pool_.emplace_back();
    id = static_cast<WormId>(pool_.size()) - 1;
  }
  Worm& w = pool_[static_cast<std::size_t>(id)];
  // Recycled vectors keep their capacity — the steady state allocates
  // nothing per packet.
  w.path.clear();
  w.acquired_at.clear();
  w.pending_releases.clear();
  w.next = 0;
  w.pending = sim::EventId{};
  w.next_waiter = kNoWorm;
  w.released_below = 0;
  w.parked = false;
  w.draining = false;
  w.use_sink = false;
  w.in_use = true;
  return id;
}

void WormholeNetwork::free_worm(WormId id) {
  Worm& w = pool_[static_cast<std::size_t>(id)];
  assert(w.in_use);
  w.in_use = false;
  w.cb = DeliveryCallback{};  // drop the closure, not just the flag
  w.next_waiter = free_head_;
  free_head_ = id;
  ++pool_free_;
}

void WormholeNetwork::push_waiter(std::int32_t chan, WormId id) {
  const auto c = static_cast<std::size_t>(chan);
  pool_[static_cast<std::size_t>(id)].next_waiter = kNoWorm;
  if (wait_tail_[c] == kNoWorm) {
    wait_head_[c] = id;
  } else {
    pool_[static_cast<std::size_t>(wait_tail_[c])].next_waiter = id;
  }
  wait_tail_[c] = id;
}

WormholeNetwork::WormId WormholeNetwork::pop_waiter(std::int32_t chan) {
  const auto c = static_cast<std::size_t>(chan);
  const WormId id = wait_head_[c];
  if (id == kNoWorm) return kNoWorm;
  wait_head_[c] = pool_[static_cast<std::size_t>(id)].next_waiter;
  if (wait_head_[c] == kNoWorm) wait_tail_[c] = kNoWorm;
  pool_[static_cast<std::size_t>(id)].next_waiter = kNoWorm;
  return id;
}

void WormholeNetwork::erase_waiter(std::int32_t chan, WormId id) {
  // Mid-queue removal for the fault path only; the list walk is fine
  // there — truncation is rare and queues are short.
  const auto c = static_cast<std::size_t>(chan);
  WormId prev = kNoWorm;
  WormId cur = wait_head_[c];
  while (cur != kNoWorm && cur != id) {
    prev = cur;
    cur = pool_[static_cast<std::size_t>(cur)].next_waiter;
  }
  assert(cur == id);
  const WormId after = pool_[static_cast<std::size_t>(id)].next_waiter;
  if (prev == kNoWorm) {
    wait_head_[c] = after;
  } else {
    pool_[static_cast<std::size_t>(prev)].next_waiter = after;
  }
  if (wait_tail_[c] == id) wait_tail_[c] = prev;
  pool_[static_cast<std::size_t>(id)].next_waiter = kNoWorm;
}

void WormholeNetwork::send(const Packet& packet) {
  inject(packet, DeliveryCallback{}, /*use_sink=*/true);
}

void WormholeNetwork::send(const Packet& packet, DeliveryCallback on_delivered) {
  inject(packet, std::move(on_delivered), /*use_sink=*/false);
}

void WormholeNetwork::inject(const Packet& packet, DeliveryCallback cb,
                             bool use_sink) {
  if (packet.sender < 0 || packet.sender >= topology_.num_hosts() ||
      packet.dest < 0 || packet.dest >= topology_.num_hosts()) {
    throw std::invalid_argument("WormholeNetwork::send: host out of range");
  }
  if (packet.sender == packet.dest) {
    throw std::invalid_argument("WormholeNetwork::send: self-send");
  }
  if (use_sink && sinks_[static_cast<std::size_t>(packet.dest)] == nullptr) {
    throw std::logic_error("WormholeNetwork::send: no sink bound for dest");
  }
  if (!reachable(packet.sender, packet.dest)) {
    // The fabric segment between the endpoints is dead: a CRC-style
    // silent drop at injection. Reliable NIs see it as loss and retry or
    // give up against their reachability check.
    ++dropped_;
    if (trace_) {
      trace_->record(sim_.now(), sim::TraceCategory::kPacket, packet.sender,
                     "DROP-unreachable msg=" + std::to_string(packet.message) +
                         " pkt=" + std::to_string(packet.packet_index) +
                         " -> host " + std::to_string(packet.dest));
    }
    return;
  }
  const WormId id = alloc_worm();
  Worm& w = pool_[static_cast<std::size_t>(id)];
  w.packet = packet;
  w.cb = std::move(cb);
  w.use_sink = use_sink;
  build_path(packet.sender, packet.dest, w.path);
  ++in_flight_;
  if (in_flight_ > peak_in_flight_) peak_in_flight_ = in_flight_;
  if (trace_) {
    trace_->record(sim_.now(), sim::TraceCategory::kPacket, packet.sender,
                   "inject msg=" + std::to_string(packet.message) + " pkt=" +
                       std::to_string(packet.packet_index) + " -> host " +
                       std::to_string(packet.dest));
  }
  progress(id);
}

void WormholeNetwork::progress(WormId id) {
  Worm& w = pool_[static_cast<std::size_t>(id)];
  assert(w.in_use && w.next < w.path.size());
  const std::int32_t chan = w.path[w.next];
  if (channel_dead(chan)) {
    // The header ran into a link/switch that died after injection.
    kill_worm(id);
    return;
  }
  if (channel_busy_[static_cast<std::size_t>(chan)]) {
    w.block_start = sim_.now();
    w.parked = true;
    push_waiter(chan, id);
    if (trace_) {
      trace_->record(sim_.now(), sim::TraceCategory::kChannel, chan,
                     "block pkt=" + std::to_string(w.packet.packet_index) +
                         " dest=" + std::to_string(w.packet.dest));
    }
    return;
  }
  channel_busy_[static_cast<std::size_t>(chan)] = 1;
  w.acquired_at.push_back(sim_.now());
  ++w.next;
  if (w.next == w.path.size()) {
    schedule_drain(id);
  } else {
    w.pending = sim_.schedule_at(sim_.now() + config_.t_hop,
                                 [this, id] { progress(id); });
  }
}

void WormholeNetwork::schedule_drain(WormId id) {
  Worm& w = pool_[static_cast<std::size_t>(id)];
  w.draining = true;
  // Header crosses the final (ejection) channel, then the payload drains
  // into the destination NI.
  const sim::Time delivery =
      sim_.now() + config_.t_hop + config_.serialization_time();
  const std::size_t len = w.path.size();
  if (config_.release_model == ReleaseModel::kPipelined) {
    // The tail flit trails the header by one hop per remaining channel;
    // upstream channels free as it passes (never before the head of the
    // packet has fully left them, and never after delivery). Release
    // times are non-decreasing in i and scheduled in index order, so the
    // FIFO tie-break makes released_below advance monotonically.
    for (std::size_t i = 0; i + 1 < len; ++i) {
      const sim::Time earliest = w.acquired_at[i] + config_.t_hop +
                                 config_.serialization_time();
      const sim::Time tail_passes =
          delivery - config_.t_hop * static_cast<sim::Time::rep>(len - 1 - i);
      const std::int32_t chan = w.path[i];
      const auto eid = sim_.schedule_at(
          std::max(earliest, tail_passes), [this, id, i, chan] {
            pool_[static_cast<std::size_t>(id)].released_below = i + 1;
            release_channel(chan);
          });
      w.pending_releases.push_back(PendingRelease{chan, eid});
    }
  }
  w.pending = sim_.schedule_at(delivery, [this, id] { complete(id); });
}

void WormholeNetwork::release_channel(std::int32_t chan) {
  const auto c = static_cast<std::size_t>(chan);
  assert(channel_busy_[c]);
  if (channel_dead(chan)) {
    // A condemned channel never hands off; any worm still waiting on it
    // is truncated by the same fault sweep that condemned it.
    channel_busy_[c] = 0;
    return;
  }
  const WormId id = pop_waiter(chan);
  if (id == kNoWorm) {
    channel_busy_[c] = 0;
    return;
  }
  // Immediate FIFO hand-off: the channel never goes idle, the head waiter
  // owns it as of now. Keeps arbitration strictly first-come-first-served.
  Worm& next = pool_[static_cast<std::size_t>(id)];
  next.parked = false;
  total_block_ += sim_.now() - next.block_start;
  assert(next.path[next.next] == chan);
  next.acquired_at.push_back(sim_.now());
  ++next.next;
  if (next.next == next.path.size()) {
    schedule_drain(id);
  } else {
    next.pending = sim_.schedule_at(sim_.now() + config_.t_hop,
                                    [this, id] { progress(id); });
  }
}

void WormholeNetwork::complete(WormId id) {
  Worm& w = pool_[static_cast<std::size_t>(id)];
  if (config_.release_model == ReleaseModel::kAtDelivery) {
    for (std::int32_t chan : w.path) release_channel(chan);
  } else {
    // Pipelined mode already released the upstream channels; only the
    // final (ejection) channel is still held.
    release_channel(w.path.back());
  }
  --in_flight_;
  const bool lost =
      config_.loss_rate > 0.0 && loss_rng_.next_bool(config_.loss_rate);
  if (lost) {
    ++dropped_;
  } else {
    ++delivered_;
  }
  if (trace_) {
    trace_->record(sim_.now(), sim::TraceCategory::kPacket, w.packet.dest,
                   std::string(lost ? "DROP" : "deliver") + " msg=" +
                       std::to_string(w.packet.message) + " pkt=" +
                       std::to_string(w.packet.packet_index));
  }
  // Free the slot before invoking delivery: a reentrant send() from the
  // receiver may recycle it (and may grow the slab, so `w` dies here).
  const Packet packet = w.packet;
  const bool use_sink = w.use_sink;
  DeliveryCallback cb = lost ? DeliveryCallback{} : std::move(w.cb);
  free_worm(id);
  if (lost) return;
  if (use_sink) {
    sinks_[static_cast<std::size_t>(packet.dest)]->on_packet_delivered(packet);
  } else if (cb) {
    cb(packet);
  }
}

void WormholeNetwork::apply_fault(const FaultEvent& ev) {
  ++faults_applied_;
  if (mask_.dead_link.empty()) {
    mask_.dead_link.assign(
        static_cast<std::size_t>(topology_.switches().num_edges()), false);
    mask_.dead_switch.assign(static_cast<std::size_t>(topology_.num_switches()),
                             false);
  }
  const auto id = static_cast<std::size_t>(ev.id);
  switch (ev.kind) {
    case FaultKind::kLinkDown: mask_.dead_link[id] = true; break;
    case FaultKind::kLinkUp: mask_.dead_link[id] = false; break;
    case FaultKind::kSwitchDown: mask_.dead_switch[id] = true; break;
  }
  refresh_dead_channels();
  if (trace_) {
    trace_->record(sim_.now(), sim::TraceCategory::kChannel, ev.id,
                   std::string("FAULT ") + to_string(ev.kind) + " id=" +
                       std::to_string(ev.id));
  }
  if (ev.kind != FaultKind::kLinkUp) {
    // Collect the victims first: kill_worm may hand surviving channels to
    // other worms, so the sweep reads current state one victim at a time.
    std::vector<WormId> victims;
    for (WormId i = 0; i < static_cast<WormId>(pool_.size()); ++i) {
      const Worm& w = pool_[static_cast<std::size_t>(i)];
      if (!w.in_use) continue;
      // Channels the worm currently pins: everything acquired but not yet
      // released, plus (for a parked worm) the dead channel it waits on —
      // that wait can never be satisfied once the channel is condemned.
      const std::size_t held_end =
          w.draining ? w.path.size() : w.next + (w.parked ? 1u : 0u);
      for (std::size_t i2 = w.released_below; i2 < held_end; ++i2) {
        if (channel_dead(w.path[i2])) {
          victims.push_back(i);
          break;
        }
      }
    }
    for (WormId w : victims) kill_worm(w);
  }
  if (on_fault) on_fault(ev);
}

void WormholeNetwork::refresh_dead_channels() {
  channel_dead_.assign(channel_busy_.size(), false);
  const auto& g = topology_.switches();
  const auto vcs = routes_->virtual_channels();
  for (topo::LinkId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    const bool dead = !mask_.link_alive(e) || !mask_.switch_alive(edge.a) ||
                      !mask_.switch_alive(edge.b);
    if (!dead) continue;
    for (std::int32_t dir = 0; dir < 2; ++dir) {
      const std::int32_t base = (2 * e + dir) * vcs;
      for (std::int32_t v = 0; v < vcs; ++v) {
        channel_dead_[static_cast<std::size_t>(base + v)] = true;
      }
    }
  }
  for (topo::HostId h = 0; h < topology_.num_hosts(); ++h) {
    if (mask_.switch_alive(topology_.switch_of(h))) continue;
    channel_dead_[static_cast<std::size_t>(injection_channel(h))] = true;
    channel_dead_[static_cast<std::size_t>(ejection_channel(h))] = true;
  }
}

void WormholeNetwork::kill_worm(WormId id) {
  Worm& w = pool_[static_cast<std::size_t>(id)];
  if (w.parked) {
    // Un-park: the worm leaves the waiter FIFO it sits in.
    erase_waiter(w.path[w.next], id);
    w.parked = false;
  } else {
    // Cancel the in-flight hop / drain-completion event. cancel() is a
    // no-op (false) if it already fired, in which case the worm's state
    // was advanced by the callback and reflects reality.
    sim_.cancel(w.pending);
  }
  // Staggered pipelined releases that have not fired yet still hold their
  // channel: cancel each and release it here. Fired ones already advanced
  // released_below.
  for (const auto& pr : w.pending_releases) {
    if (sim_.cancel(pr.id)) release_channel(pr.chan);
  }
  w.pending_releases.clear();
  if (w.draining) {
    if (config_.release_model == ReleaseModel::kAtDelivery) {
      for (std::int32_t chan : w.path) release_channel(chan);
    } else {
      // Pipelined: upstream channels were handled above (fired or
      // canceled); only the final (ejection) channel remains held.
      release_channel(w.path.back());
    }
  } else {
    for (std::size_t i = w.released_below; i < w.next; ++i) {
      release_channel(w.path[i]);
    }
  }
  --in_flight_;
  ++dropped_;
  ++killed_;
  if (trace_) {
    trace_->record(sim_.now(), sim::TraceCategory::kPacket, w.packet.dest,
                   "KILL msg=" + std::to_string(w.packet.message) +
                       " pkt=" + std::to_string(w.packet.packet_index) +
                       " from=" + std::to_string(w.packet.sender));
  }
  free_worm(id);
}

}  // namespace nimcast::net
