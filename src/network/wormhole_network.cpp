#include "network/wormhole_network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

namespace nimcast::net {

namespace {
/// Global-event tie-break class for hop replays: after fault events
/// (which use hi = 0) at the same instant.
constexpr std::uint64_t kReplayHi = 1;
}  // namespace

WormholeNetwork::WormholeNetwork(sim::Simulator& simctx,
                                 const topo::Topology& topology,
                                 const routing::RouteTable& routes,
                                 NetworkConfig config, sim::Trace* trace)
    : serial_sim_{&simctx},
      topology_{topology},
      routes_{&routes},
      config_{std::move(config)},
      trace_{trace} {
  init_channels_and_faults();
}

WormholeNetwork::WormholeNetwork(sim::ShardedSimulator& sharded,
                                 const topo::Topology& topology,
                                 const routing::RouteTable& routes,
                                 NetworkConfig config,
                                 std::vector<std::int32_t> switch_shard)
    : sharded_{&sharded},
      topology_{topology},
      routes_{&routes},
      config_{std::move(config)},
      trace_{nullptr} {
  if (switch_shard.size() !=
      static_cast<std::size_t>(topology.num_switches())) {
    throw std::invalid_argument(
        "WormholeNetwork: switch_shard size != num_switches");
  }
  for (std::int32_t s : switch_shard) {
    if (s < 0 || s >= sharded.num_shards()) {
      throw std::invalid_argument(
          "WormholeNetwork: switch_shard entry out of range");
    }
  }
  if (sharded.lookahead() > config_.t_hop) {
    throw std::invalid_argument(
        "WormholeNetwork: driver lookahead exceeds t_hop — cross-shard "
        "hops would violate the conservative window");
  }
  // Lossy configs shard freely: a packet's fate is a pure hash of its
  // identity (see packet_lost()), not an ordered RNG draw. Pipelined
  // release shards too, but its staggered remote releases fire
  // serialization_time - (path_len-2)*t_hop after the drain is scheduled;
  // schedule_drain() enforces per worm that this clears the driver
  // lookahead and says which window width would work.
  init_channels_and_faults();
  // Channel ownership: a directed switch channel belongs to the shard of
  // its upstream (sending) switch, so consecutive channels of a route
  // change owner exactly where the route crosses the partition — every
  // cut link is one cross-shard mailbox hop.
  chan_shard_.assign(channel_busy_.size(), 0);
  const auto& g = topology_.switches();
  const std::int32_t vcs = routes_->virtual_channels();
  for (topo::LinkId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    for (std::int32_t dir = 0; dir < 2; ++dir) {
      const topo::SwitchId from = dir == 0 ? edge.a : edge.b;
      const std::int32_t base = (2 * e + dir) * vcs;
      for (std::int32_t v = 0; v < vcs; ++v) {
        chan_shard_[static_cast<std::size_t>(base + v)] =
            switch_shard[static_cast<std::size_t>(from)];
      }
    }
  }
  for (topo::HostId h = 0; h < topology_.num_hosts(); ++h) {
    const std::int32_t s =
        switch_shard[static_cast<std::size_t>(topology_.switch_of(h))];
    chan_shard_[static_cast<std::size_t>(injection_channel(h))] = s;
    chan_shard_[static_cast<std::size_t>(ejection_channel(h))] = s;
  }
}

void WormholeNetwork::init_channels_and_faults() {
  if (config_.loss_rate < 0.0 || config_.loss_rate >= 1.0) {
    throw std::invalid_argument(
        "WormholeNetwork: loss_rate must be in [0, 1)");
  }
  // Switch channels come first (expanded by the routes' virtual-channel
  // multiplicity), then per-host injection and ejection channels.
  const auto num_channels = static_cast<std::size_t>(
      2 * topology_.switches().num_edges() * routes_->virtual_channels() +
      2 * topology_.num_hosts());
  channel_busy_.assign(num_channels, 0);
  wait_head_.assign(num_channels, nullptr);
  wait_tail_.assign(num_channels, nullptr);
  sinks_.assign(static_cast<std::size_t>(topology_.num_hosts()), nullptr);
  // Channel -> driving switch, and the per-switch acquisition counters
  // behind switch_load(): the measured weights load-aware partitioning
  // feeds back into topo::partition_switches. A switch's counter is only
  // ever touched from the shard that owns its channels, so the counts
  // are race-free and thread-count-independent.
  chan_switch_.assign(num_channels, 0);
  {
    const auto& g = topology_.switches();
    const std::int32_t vcs = routes_->virtual_channels();
    for (topo::LinkId e = 0; e < g.num_edges(); ++e) {
      const auto& edge = g.edge(e);
      for (std::int32_t dir = 0; dir < 2; ++dir) {
        const topo::SwitchId from = dir == 0 ? edge.a : edge.b;
        const std::int32_t base = (2 * e + dir) * vcs;
        for (std::int32_t v = 0; v < vcs; ++v) {
          chan_switch_[static_cast<std::size_t>(base + v)] = from;
        }
      }
    }
    for (topo::HostId h = 0; h < topology_.num_hosts(); ++h) {
      const topo::SwitchId sw = topology_.switch_of(h);
      chan_switch_[static_cast<std::size_t>(injection_channel(h))] = sw;
      chan_switch_[static_cast<std::size_t>(ejection_channel(h))] = sw;
    }
  }
  switch_load_.assign(static_cast<std::size_t>(topology_.num_switches()), 0);
  // Per-channel congestion telemetry (block ns + acquisition counts):
  // bumped at the two acquisition sites below, read by the adaptive
  // streaming selector at barrier-consistent snapshots.
  chan_block_ns_.assign(num_channels, 0);
  chan_acq_.assign(num_channels, 0);
  const int shards = is_sharded() ? sharded_->num_shards() : 1;
  shard_state_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    shard_state_.push_back(std::make_unique<ShardState>());
  }
  for (const FaultEvent& ev : config_.faults.events()) {
    const auto bound = ev.kind == FaultKind::kSwitchDown
                           ? topology_.num_switches()
                       : ev.kind == FaultKind::kHostDown
                           ? topology_.num_hosts()
                           : topology_.switches().num_edges();
    if (ev.id < 0 || ev.id >= bound) {
      throw std::invalid_argument("WormholeNetwork: fault id out of range");
    }
    if (is_sharded()) {
      // Fault application mutates channel state across every shard, so
      // it runs in the single-threaded barrier phase with all clocks
      // advanced to exactly ev.at — the instant the serial engine runs
      // it (fault events carry the lowest insertion order there too).
      sharded_->schedule_global(ev.at, [this, ev] { apply_fault(ev); });
    } else {
      serial_sim_->schedule_at(ev.at, [this, ev] { apply_fault(ev); });
    }
  }
}

void WormholeNetwork::bind_sink(topo::HostId host, DeliverySink* sink) {
  if (host < 0 || host >= topology_.num_hosts()) {
    throw std::invalid_argument(
        "WormholeNetwork::bind_sink: host out of range");
  }
  sinks_[static_cast<std::size_t>(host)] = sink;
}

void WormholeNetwork::rebind_routes(const routing::RouteTable& routes) {
  if (routes.num_hosts() != routes_->num_hosts() ||
      routes.virtual_channels() != routes_->virtual_channels()) {
    throw std::invalid_argument(
        "WormholeNetwork::rebind_routes: table shape mismatch");
  }
  routes_ = &routes;
}

void WormholeNetwork::bind_route_class(std::int32_t cls,
                                       const routing::RouteTable& routes) {
  if (cls < 1) {
    throw std::invalid_argument(
        "WormholeNetwork::bind_route_class: class must be >= 1");
  }
  if (routes.num_hosts() != routes_->num_hosts() ||
      routes.virtual_channels() != routes_->virtual_channels()) {
    throw std::invalid_argument(
        "WormholeNetwork::bind_route_class: table shape mismatch");
  }
  const auto ix = static_cast<std::size_t>(cls - 1);
  if (class_routes_.size() <= ix) class_routes_.resize(ix + 1, nullptr);
  class_routes_[ix] = &routes;
}

const routing::RouteTable& WormholeNetwork::class_table(
    std::int32_t cls) const {
  if (cls < 1 || static_cast<std::size_t>(cls) > class_routes_.size()) {
    return *routes_;
  }
  const routing::RouteTable* t =
      class_routes_[static_cast<std::size_t>(cls - 1)];
  return t != nullptr ? *t : *routes_;
}

bool WormholeNetwork::host_alive(topo::HostId h) const {
  if (!dead_host_.empty() && dead_host_[static_cast<std::size_t>(h)]) {
    return false;
  }
  return mask_.switch_alive(topology_.switch_of(h));
}

bool WormholeNetwork::reachable(topo::HostId src, topo::HostId dst) const {
  return host_alive(src) && host_alive(dst) && routes_->reachable(src, dst);
}

std::int32_t WormholeNetwork::shard_of_host(topo::HostId h) const {
  if (h < 0 || h >= topology_.num_hosts()) {
    throw std::invalid_argument(
        "WormholeNetwork::shard_of_host: host out of range");
  }
  return chan_shard(injection_channel(h));
}

std::int32_t WormholeNetwork::injection_channel(topo::HostId h) const {
  return 2 * topology_.switches().num_edges() * routes_->virtual_channels() +
         h;
}

std::int32_t WormholeNetwork::ejection_channel(topo::HostId h) const {
  return 2 * topology_.switches().num_edges() * routes_->virtual_channels() +
         topology_.num_hosts() + h;
}

void WormholeNetwork::build_path(topo::HostId src, topo::HostId dst,
                                 std::int32_t cls,
                                 std::vector<std::int32_t>& out) const {
  out.push_back(injection_channel(src));
  const auto& route = class_table(cls).path(src, dst);
  for (std::int32_t c : routing::route_channels(topology_.switches(), route,
                                                routes_->virtual_channels())) {
    out.push_back(c);
  }
  out.push_back(ejection_channel(dst));
}

sim::Time WormholeNetwork::uncontended_latency(std::size_t hops) const {
  // One t_hop per acquired channel (injection + hops + ejection gets the
  // header to the far side of each), then the payload drains.
  const auto total_channels = static_cast<sim::Time::rep>(hops) + 2;
  return config_.t_hop * total_channels + config_.serialization_time();
}

std::int32_t WormholeNetwork::in_flight() const {
  std::int32_t total = 0;
  for (const auto& st : shard_state_) total += st->in_flight;
  return total;
}

std::int64_t WormholeNetwork::packets_delivered() const {
  std::int64_t total = 0;
  for (const auto& st : shard_state_) total += st->delivered;
  return total;
}

std::int64_t WormholeNetwork::packets_dropped() const {
  std::int64_t total = 0;
  for (const auto& st : shard_state_) total += st->dropped;
  return total;
}

std::int64_t WormholeNetwork::packets_killed() const {
  std::int64_t total = 0;
  for (const auto& st : shard_state_) total += st->killed;
  return total;
}

sim::Time WormholeNetwork::total_block_time() const {
  sim::Time total = sim::Time::zero();
  for (const auto& st : shard_state_) total += st->total_block;
  return total;
}

std::size_t WormholeNetwork::worm_pool_slots() const {
  std::size_t total = 0;
  for (const auto& st : shard_state_) total += st->arena.size();
  return total;
}

std::size_t WormholeNetwork::worm_pool_free() const {
  std::size_t total = 0;
  for (const auto& st : shard_state_) total += st->free_count;
  return total;
}

std::int32_t WormholeNetwork::peak_in_flight() const {
  std::int32_t total = 0;
  for (const auto& st : shard_state_) total += st->peak_in_flight;
  return total;
}

WormholeNetwork::Worm* WormholeNetwork::alloc_worm(std::int32_t shard) {
  ShardState& st = state_of(shard);
  Worm* w;
  if (st.free_head != nullptr) {
    w = st.free_head;
    st.free_head = w->next_waiter;
    --st.free_count;
  } else {
    st.arena.emplace_back();
    w = &st.arena.back();
    w->replay_key = (static_cast<std::uint64_t>(shard) << 32) |
                    static_cast<std::uint64_t>(st.arena.size() - 1);
  }
  // Recycled vectors keep their capacity — the steady state allocates
  // nothing per packet.
  w->path.clear();
  w->acquired_at.clear();
  w->pending_releases.clear();
  w->next = 0;
  w->pending = sim::EventId{};
  w->pending_shard = 0;
  w->next_waiter = nullptr;
  w->shard = shard;
  w->released_below = 0;
  w->parked = false;
  w->draining = false;
  w->in_use = true;
  w->doomed = false;
  return w;
}

void WormholeNetwork::free_worm(Worm* w, std::int32_t shard) {
  ShardState& st = state_of(shard);
  assert(w->in_use);
  w->in_use = false;
  ++w->doom_epoch;  // invalidate any replay global still pointing here
  w->next_waiter = st.free_head;
  st.free_head = w;
  ++st.free_count;
}

void WormholeNetwork::push_waiter(std::int32_t chan, Worm* w) {
  const auto c = static_cast<std::size_t>(chan);
  w->next_waiter = nullptr;
  if (wait_tail_[c] == nullptr) {
    wait_head_[c] = w;
  } else {
    wait_tail_[c]->next_waiter = w;
  }
  wait_tail_[c] = w;
}

WormholeNetwork::Worm* WormholeNetwork::pop_waiter(std::int32_t chan) {
  const auto c = static_cast<std::size_t>(chan);
  Worm* w = wait_head_[c];
  if (w == nullptr) return nullptr;
  wait_head_[c] = w->next_waiter;
  if (wait_head_[c] == nullptr) wait_tail_[c] = nullptr;
  w->next_waiter = nullptr;
  return w;
}

void WormholeNetwork::erase_waiter(std::int32_t chan, Worm* w) {
  // Mid-queue removal for the fault path only; the list walk is fine
  // there — truncation is rare and queues are short.
  const auto c = static_cast<std::size_t>(chan);
  Worm* prev = nullptr;
  Worm* cur = wait_head_[c];
  while (cur != nullptr && cur != w) {
    prev = cur;
    cur = cur->next_waiter;
  }
  assert(cur == w);
  Worm* after = w->next_waiter;
  if (prev == nullptr) {
    wait_head_[c] = after;
  } else {
    prev->next_waiter = after;
  }
  if (wait_tail_[c] == w) wait_tail_[c] = prev;
  w->next_waiter = nullptr;
}

void WormholeNetwork::send(const Packet& packet) {
  if (packet.sender < 0 || packet.sender >= topology_.num_hosts() ||
      packet.dest < 0 || packet.dest >= topology_.num_hosts()) {
    throw std::invalid_argument("WormholeNetwork::send: host out of range");
  }
  if (packet.sender == packet.dest) {
    throw std::invalid_argument("WormholeNetwork::send: self-send");
  }
  if (sinks_[static_cast<std::size_t>(packet.dest)] == nullptr) {
    throw std::logic_error("WormholeNetwork::send: no sink bound for dest");
  }
  const std::int32_t s = chan_shard(injection_channel(packet.sender));
  if (!host_alive(packet.sender) || !host_alive(packet.dest) ||
      !class_table(packet.route_class)
           .reachable(packet.sender, packet.dest)) {
    // The fabric segment between the endpoints is dead: a CRC-style
    // silent drop at injection. Reliable NIs see it as loss and retry or
    // give up against their reachability check.
    ++state_of(s).dropped;
    if (trace_) {
      trace_->record(serial_sim_->now(), sim::TraceCategory::kPacket,
                     packet.sender,
                     "DROP-unreachable msg=" + std::to_string(packet.message) +
                         " pkt=" + std::to_string(packet.packet_index) +
                         " -> host " + std::to_string(packet.dest));
    }
    return;
  }
  Worm* w = alloc_worm(s);
  w->packet = packet;
  build_path(packet.sender, packet.dest, packet.route_class, w->path);
  ShardState& st = state_of(s);
  ++st.in_flight;
  if (st.in_flight > st.peak_in_flight) st.peak_in_flight = st.in_flight;
  if (trace_) {
    trace_->record(serial_sim_->now(), sim::TraceCategory::kPacket,
                   packet.sender,
                   "inject msg=" + std::to_string(packet.message) + " pkt=" +
                       std::to_string(packet.packet_index) + " -> host " +
                       std::to_string(packet.dest));
  }
  progress(w);
}

void WormholeNetwork::progress(Worm* w) {
  assert(w->in_use && w->next < w->path.size());
  // A replay global that reached progress() is resolved either way — the
  // worm acquires/parks (channel recovered) or dies right here.
  w->doomed = false;
  const std::int32_t chan = w->path[w->next];
  const std::int32_t s = chan_shard(chan);
  sim::Simulator& shard_sim = sim_of(s);
  if (channel_dead(chan)) {
    // The header ran into a link/switch that died after injection. In
    // sharded mode this only happens inside the barrier phase (the
    // replay path), where the cross-shard teardown is safe.
    kill_worm(w);
    return;
  }
  if (channel_busy_[static_cast<std::size_t>(chan)]) {
    w->block_start = shard_sim.now();
    w->parked = true;
    push_waiter(chan, w);
    if (trace_) {
      trace_->record(shard_sim.now(), sim::TraceCategory::kChannel, chan,
                     "block pkt=" + std::to_string(w->packet.packet_index) +
                         " dest=" + std::to_string(w->packet.dest));
    }
    return;
  }
  channel_busy_[static_cast<std::size_t>(chan)] = 1;
  ++switch_load_[static_cast<std::size_t>(
      chan_switch_[static_cast<std::size_t>(chan)])];
  ++chan_acq_[static_cast<std::size_t>(chan)];
  w->acquired_at.push_back(shard_sim.now());
  ++w->next;
  if (w->next == w->path.size()) {
    schedule_drain(w);
  } else {
    schedule_hop(w, s);
  }
}

void WormholeNetwork::schedule_hop(Worm* w, std::int32_t from) {
  sim::Simulator& shard_sim = sim_of(from);
  const sim::Time at = shard_sim.now() + config_.t_hop;
  const std::int32_t target = w->path[w->next];
  const std::int32_t to = chan_shard(target);
  w->hop_at = at;
  if (is_sharded() && channel_dead(target)) {
    // The arrival would tear the worm down mid-window with channel
    // releases on several shards; route it through the barrier phase at
    // the exact arrival instant instead (and let it re-check liveness —
    // the channel may have recovered by then, as in the serial engine).
    doom(w, at);
    return;
  }
  w->pending_shard = to;
  if (to == from) {
    w->pending = shard_sim.schedule_at(at, [this, w] { progress(w); });
  } else {
    sharded_->post(from, to, at, [this, w] { progress(w); }, &w->pending);
  }
}

void WormholeNetwork::doom(Worm* w, sim::Time at) {
  w->doomed = true;
  w->pending = sim::EventId{};
  const std::uint64_t ep = w->doom_epoch;
  sharded_->schedule_global_keyed(at, kReplayHi, w->replay_key,
                                  [this, w, ep] {
                                    // The worm may have been killed (and
                                    // even recycled) by a fault sweep in
                                    // the meantime.
                                    if (!w->in_use || w->doom_epoch != ep) {
                                      return;
                                    }
                                    progress(w);
                                  });
}

void WormholeNetwork::schedule_drain(Worm* w) {
  const std::int32_t ds = chan_shard(w->path.back());
  sim::Simulator& shard_sim = sim_of(ds);
  w->draining = true;
  // Header crosses the final (ejection) channel, then the payload drains
  // into the destination NI.
  const sim::Time delivery =
      shard_sim.now() + config_.t_hop + config_.serialization_time();
  const std::size_t len = w->path.size();
  if (config_.release_model == ReleaseModel::kPipelined) {
    // The tail flit trails the header by one hop per remaining channel;
    // upstream channels free as it passes (never before the head of the
    // packet has fully left them, and never after delivery). Release
    // times are non-decreasing in i (consecutive acquisitions and tail
    // positions are both >= t_hop apart) and scheduled in index order,
    // so the FIFO tie-break makes released_below advance monotonically —
    // and under sharding, two releases of one worm never share a window,
    // which makes the cross-shard released_below updates barrier-ordered.
    w->pending_releases.reserve(len);
    for (std::size_t i = 0; i + 1 < len; ++i) {
      const sim::Time earliest = w->acquired_at[i] + config_.t_hop +
                                 config_.serialization_time();
      const sim::Time tail_passes =
          delivery - config_.t_hop * static_cast<sim::Time::rep>(len - 1 - i);
      const sim::Time at = std::max(earliest, tail_passes);
      const std::int32_t chan = w->path[i];
      const std::int32_t owner = chan_shard(chan);
      if (!is_sharded() || owner == ds) {
        const auto eid =
            shard_sim.schedule_at(at, [this, w, i, chan] {
              w->released_below = i + 1;
              release_channel(chan);
            });
        w->pending_releases.push_back(PendingRelease{chan, eid});
      } else {
        // A remote release is an ordinary logical event (the serial
        // engine schedules it too), mailed to the channel's owner. It
        // must clear the conservative window; when it cannot, report the
        // window width that would have worked instead of letting the
        // flush die on a generic lookahead violation.
        if (at < shard_sim.now() + sharded_->lookahead()) {
          const sim::Time slack = at - shard_sim.now();
          throw std::invalid_argument(
              "WormholeNetwork: pipelined release needs a conservative "
              "window of at most " +
              std::to_string(std::max<sim::Time::rep>(slack.count_ns(), 0)) +
              " ns on this path (driver lookahead is " +
              std::to_string(sharded_->lookahead().count_ns()) +
              " ns) — shrink NIMCAST_WINDOW, use fewer shards, or raise "
              "packet_bytes");
        }
        w->pending_releases.push_back(PendingRelease{chan, sim::EventId{}});
        sharded_->post(ds, owner, at,
                       [this, w, i, chan] {
                         w->released_below = i + 1;
                         release_channel(chan);
                       },
                       &w->pending_releases.back().id);
      }
    }
  } else if (is_sharded()) {
    // At-delivery releases of channels owned by other shards cannot run
    // inside complete() (that would mutate foreign channel state
    // mid-window); mail each one to its owner, timed at the delivery
    // instant — which is at least one lookahead away, since delivery is
    // t_hop + serialization past now. They are synthetic: the serial
    // engine performs them inline, so they must not count as logical
    // events. reserve() up front: post() keeps a pointer into the
    // vector until the next barrier flush binds the EventId.
    w->pending_releases.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      const std::int32_t chan = w->path[i];
      const std::int32_t owner = chan_shard(chan);
      if (owner == ds) continue;
      w->pending_releases.push_back(PendingRelease{chan, sim::EventId{}});
      sharded_->post(ds, owner, delivery,
                     [this, chan, owner] {
                       sharded_->note_synthetic(owner);
                       release_channel(chan);
                     },
                     &w->pending_releases.back().id);
    }
  }
  w->pending_shard = ds;
  w->pending = shard_sim.schedule_at(delivery, [this, w] { complete(w); });
}

void WormholeNetwork::release_channel(std::int32_t chan) {
  const auto c = static_cast<std::size_t>(chan);
  assert(channel_busy_[c]);
  if (channel_dead(chan)) {
    // A condemned channel never hands off; any worm still waiting on it
    // is truncated by the same fault sweep that condemned it.
    channel_busy_[c] = 0;
    return;
  }
  Worm* next = pop_waiter(chan);
  if (next == nullptr) {
    channel_busy_[c] = 0;
    return;
  }
  // Immediate FIFO hand-off: the channel never goes idle, the head waiter
  // owns it as of now. Keeps arbitration strictly first-come-first-served.
  const std::int32_t s = chan_shard(chan);
  sim::Simulator& shard_sim = sim_of(s);
  next->parked = false;
  state_of(s).total_block += shard_sim.now() - next->block_start;
  chan_block_ns_[c] += (shard_sim.now() - next->block_start).count_ns();
  assert(next->path[next->next] == chan);
  ++switch_load_[static_cast<std::size_t>(
      chan_switch_[static_cast<std::size_t>(chan)])];
  ++chan_acq_[c];
  next->acquired_at.push_back(shard_sim.now());
  ++next->next;
  if (next->next == next->path.size()) {
    schedule_drain(next);
  } else {
    schedule_hop(next, s);
  }
}

bool WormholeNetwork::packet_lost(const Packet& p) const {
  if (config_.loss_rate <= 0.0) return false;
  // Chain the identity components through the SplitMix64 finalizer; the
  // attempt counter makes each retransmission (and its ACK) an
  // independent draw.
  std::uint64_t h = sim::hash_mix(config_.loss_seed);
  h = sim::hash_mix(h ^ static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(p.message)));
  h = sim::hash_mix(
      h ^ ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                p.packet_index))
            << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.attempt))));
  h = sim::hash_mix(
      h ^
      ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.sender))
        << 32) |
       static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.dest))));
  return sim::hash_unit(h) < config_.loss_rate;
}

void WormholeNetwork::complete(Worm* w) {
  const std::int32_t ds = chan_shard(w->path.back());
  if (config_.release_model == ReleaseModel::kAtDelivery) {
    if (is_sharded()) {
      // Locally-owned channels release here; the rest were mailed to
      // their owner shards at drain-scheduling time and fire at this
      // same instant over there.
      for (std::int32_t chan : w->path) {
        if (chan_shard(chan) == ds) release_channel(chan);
      }
    } else {
      for (std::int32_t chan : w->path) release_channel(chan);
    }
  } else {
    // Pipelined mode already released the upstream channels; only the
    // final (ejection) channel is still held.
    release_channel(w->path.back());
  }
  w->pending_releases.clear();
  ShardState& st = state_of(ds);
  --st.in_flight;
  const bool lost = packet_lost(w->packet);
  if (lost) {
    ++st.dropped;
  } else {
    ++st.delivered;
  }
  if (trace_) {
    trace_->record(serial_sim_->now(), sim::TraceCategory::kPacket,
                   w->packet.dest,
                   std::string(lost ? "DROP" : "deliver") + " msg=" +
                       std::to_string(w->packet.message) + " pkt=" +
                       std::to_string(w->packet.packet_index));
  }
  // Free the slot before invoking delivery: a reentrant send() from the
  // receiver may recycle it.
  const Packet packet = w->packet;
  free_worm(w, ds);
  if (lost) return;
  sinks_[static_cast<std::size_t>(packet.dest)]->on_packet_delivered(packet);
}

void WormholeNetwork::apply_fault(const FaultEvent& ev) {
  ++faults_applied_;
  if (mask_.dead_link.empty()) {
    mask_.dead_link.assign(
        static_cast<std::size_t>(topology_.switches().num_edges()), false);
    mask_.dead_switch.assign(static_cast<std::size_t>(topology_.num_switches()),
                             false);
  }
  const auto id = static_cast<std::size_t>(ev.id);
  switch (ev.kind) {
    case FaultKind::kLinkDown: mask_.dead_link[id] = true; break;
    case FaultKind::kLinkUp: mask_.dead_link[id] = false; break;
    case FaultKind::kSwitchDown: mask_.dead_switch[id] = true; break;
    case FaultKind::kHostDown:
      if (dead_host_.empty()) {
        dead_host_.assign(static_cast<std::size_t>(topology_.num_hosts()),
                          false);
      }
      dead_host_[id] = true;
      break;
  }
  refresh_dead_channels();
  if (trace_) {
    trace_->record(serial_sim_->now(), sim::TraceCategory::kChannel, ev.id,
                   std::string("FAULT ") + to_string(ev.kind) + " id=" +
                       std::to_string(ev.id));
  }
  if (ev.kind != FaultKind::kLinkUp) {
    // Collect the victims first: kill_worm may hand surviving channels to
    // other worms, so the sweep reads current state one victim at a time.
    std::vector<Worm*> victims;
    for (auto& stp : shard_state_) {
      for (Worm& w : stp->arena) {
        if (!w.in_use) continue;
        // Channels the worm currently pins: everything acquired but not
        // yet released, plus (for a parked worm) the dead channel it
        // waits on — that wait can never be satisfied once the channel
        // is condemned.
        const std::size_t held_end =
            w.draining ? w.path.size() : w.next + (w.parked ? 1u : 0u);
        for (std::size_t i = w.released_below; i < held_end; ++i) {
          if (channel_dead(w.path[i])) {
            victims.push_back(&w);
            break;
          }
        }
      }
    }
    for (Worm* w : victims) kill_worm(w);
    if (is_sharded()) {
      // Survivors whose *pending hop* targets a channel this fault just
      // condemned: the serial engine lets the hop fire and the worm die
      // on arrival. Here that teardown would release channels on several
      // shards mid-window, so convert each such hop into a barrier-phase
      // replay at the same arrival instant (which double-checks
      // liveness, preserving the recovered-in-time case).
      for (auto& stp : shard_state_) {
        for (Worm& w : stp->arena) {
          if (!w.in_use || w.parked || w.draining || w.doomed) continue;
          if (!channel_dead(w.path[w.next])) continue;
          const bool canceled = sim_of(w.pending_shard).cancel(w.pending);
          assert(canceled);
          static_cast<void>(canceled);
          doom(&w, w.hop_at);
        }
      }
    }
  }
  if (on_fault) on_fault(ev);
}

void WormholeNetwork::refresh_dead_channels() {
  channel_dead_.assign(channel_busy_.size(), false);
  const auto& g = topology_.switches();
  const auto vcs = routes_->virtual_channels();
  for (topo::LinkId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    const bool dead = !mask_.link_alive(e) || !mask_.switch_alive(edge.a) ||
                      !mask_.switch_alive(edge.b);
    if (!dead) continue;
    for (std::int32_t dir = 0; dir < 2; ++dir) {
      const std::int32_t base = (2 * e + dir) * vcs;
      for (std::int32_t v = 0; v < vcs; ++v) {
        channel_dead_[static_cast<std::size_t>(base + v)] = true;
      }
    }
  }
  for (topo::HostId h = 0; h < topology_.num_hosts(); ++h) {
    const bool host_dead =
        !dead_host_.empty() && dead_host_[static_cast<std::size_t>(h)];
    if (!host_dead && mask_.switch_alive(topology_.switch_of(h))) continue;
    channel_dead_[static_cast<std::size_t>(injection_channel(h))] = true;
    channel_dead_[static_cast<std::size_t>(ejection_channel(h))] = true;
  }
}

void WormholeNetwork::kill_worm(Worm* w) {
  if (w->parked) {
    // Un-park: the worm leaves the waiter FIFO it sits in.
    erase_waiter(w->path[w->next], w);
    w->parked = false;
  } else if (!w->doomed) {
    // Cancel the in-flight hop / drain-completion event. cancel() is a
    // no-op (false) if it already fired, in which case the worm's state
    // was advanced by the callback and reflects reality. A doomed worm
    // has no live event — its replay global no-ops via the epoch guard.
    sim_of(w->pending_shard).cancel(w->pending);
  }
  // Releases that have not fired yet (pipelined staggered releases, or
  // sharded remote at-delivery releases) still hold their channel:
  // cancel each and release it here. Fired pipelined ones already
  // advanced released_below.
  for (const auto& pr : w->pending_releases) {
    if (sim_of(chan_shard(pr.chan)).cancel(pr.id)) release_channel(pr.chan);
  }
  w->pending_releases.clear();
  if (w->draining) {
    if (config_.release_model == ReleaseModel::kAtDelivery) {
      if (is_sharded()) {
        // The remote at-delivery releases were canceled-and-released
        // just above; only the destination shard's channels remain.
        const std::int32_t ds = chan_shard(w->path.back());
        for (std::int32_t chan : w->path) {
          if (chan_shard(chan) == ds) release_channel(chan);
        }
      } else {
        for (std::int32_t chan : w->path) release_channel(chan);
      }
    } else {
      // Pipelined: upstream channels were handled above (fired or
      // canceled); only the final (ejection) channel remains held.
      release_channel(w->path.back());
    }
  } else {
    for (std::size_t i = w->released_below; i < w->next; ++i) {
      release_channel(w->path[i]);
    }
  }
  ShardState& st = state_of(w->shard);
  --st.in_flight;
  ++st.dropped;
  ++st.killed;
  if (trace_) {
    trace_->record(serial_sim_->now(), sim::TraceCategory::kPacket,
                   w->packet.dest,
                   "KILL msg=" + std::to_string(w->packet.message) +
                       " pkt=" + std::to_string(w->packet.packet_index) +
                       " from=" + std::to_string(w->packet.sender));
  }
  free_worm(w, w->shard);
}

}  // namespace nimcast::net
