#include "network/wormhole_network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace nimcast::net {

struct WormholeNetwork::Worm {
  Packet packet;
  DeliveryCallback cb;
  std::vector<std::int32_t> path;  ///< channel ids, injection..ejection
  std::vector<sim::Time> acquired_at;  ///< per-channel acquisition times
  std::size_t next = 0;            ///< next channel to acquire
  sim::Time block_start;           ///< set while parked on a busy channel
};

WormholeNetwork::~WormholeNetwork() = default;

WormholeNetwork::WormholeNetwork(sim::Simulator& simctx,
                                 const topo::Topology& topology,
                                 const routing::RouteTable& routes,
                                 NetworkConfig config, sim::Trace* trace)
    : sim_{simctx},
      topology_{topology},
      routes_{routes},
      config_{config},
      trace_{trace},
      loss_rng_{config.loss_seed} {
  if (config.loss_rate < 0.0 || config.loss_rate >= 1.0) {
    throw std::invalid_argument(
        "WormholeNetwork: loss_rate must be in [0, 1)");
  }
  // Switch channels come first (expanded by the routes' virtual-channel
  // multiplicity), then per-host injection and ejection channels.
  const auto num_channels =
      2 * topology.switches().num_edges() * routes.virtual_channels() +
      2 * topology.num_hosts();
  channels_.resize(static_cast<std::size_t>(num_channels));
}

std::int32_t WormholeNetwork::injection_channel(topo::HostId h) const {
  return 2 * topology_.switches().num_edges() * routes_.virtual_channels() +
         h;
}

std::int32_t WormholeNetwork::ejection_channel(topo::HostId h) const {
  return 2 * topology_.switches().num_edges() * routes_.virtual_channels() +
         topology_.num_hosts() + h;
}

std::vector<std::int32_t> WormholeNetwork::full_path(topo::HostId src,
                                                     topo::HostId dst) const {
  std::vector<std::int32_t> path;
  path.push_back(injection_channel(src));
  const auto& route = routes_.path(src, dst);
  for (std::int32_t c : routing::route_channels(topology_.switches(), route,
                                                routes_.virtual_channels())) {
    path.push_back(c);
  }
  path.push_back(ejection_channel(dst));
  return path;
}

sim::Time WormholeNetwork::uncontended_latency(std::size_t hops) const {
  // One t_hop per acquired channel (injection + hops + ejection gets the
  // header to the far side of each), then the payload drains.
  const auto total_channels = static_cast<sim::Time::rep>(hops) + 2;
  return config_.t_hop * total_channels + config_.serialization_time();
}

void WormholeNetwork::send(const Packet& packet, DeliveryCallback on_delivered) {
  if (packet.sender < 0 || packet.sender >= topology_.num_hosts() ||
      packet.dest < 0 || packet.dest >= topology_.num_hosts()) {
    throw std::invalid_argument("WormholeNetwork::send: host out of range");
  }
  if (packet.sender == packet.dest) {
    throw std::invalid_argument("WormholeNetwork::send: self-send");
  }
  auto worm = std::make_unique<Worm>();
  worm->packet = packet;
  worm->cb = std::move(on_delivered);
  worm->path = full_path(packet.sender, packet.dest);
  Worm* raw = worm.get();
  live_worms_.push_back(std::move(worm));
  ++in_flight_;
  if (trace_) {
    trace_->record(sim_.now(), sim::TraceCategory::kPacket, packet.sender,
                   "inject msg=" + std::to_string(packet.message) + " pkt=" +
                       std::to_string(packet.packet_index) + " -> host " +
                       std::to_string(packet.dest));
  }
  progress(raw);
}

void WormholeNetwork::progress(Worm* worm) {
  assert(worm->next < worm->path.size());
  const std::int32_t chan = worm->path[worm->next];
  auto& channel = channels_[static_cast<std::size_t>(chan)];
  if (channel.busy) {
    worm->block_start = sim_.now();
    channel.waiters.push_back(worm);
    if (trace_) {
      trace_->record(sim_.now(), sim::TraceCategory::kChannel, chan,
                     "block pkt=" +
                         std::to_string(worm->packet.packet_index) +
                         " dest=" + std::to_string(worm->packet.dest));
    }
    return;
  }
  channel.busy = true;
  worm->acquired_at.push_back(sim_.now());
  ++worm->next;
  if (worm->next == worm->path.size()) {
    schedule_drain(worm);
  } else {
    sim_.schedule_at(sim_.now() + config_.t_hop,
                     [this, worm] { progress(worm); });
  }
}

void WormholeNetwork::schedule_drain(Worm* worm) {
  // Header crosses the final (ejection) channel, then the payload drains
  // into the destination NI.
  const sim::Time delivery =
      sim_.now() + config_.t_hop + config_.serialization_time();
  const std::size_t len = worm->path.size();
  if (config_.release_model == ReleaseModel::kPipelined) {
    // The tail flit trails the header by one hop per remaining channel;
    // upstream channels free as it passes (never before the head of the
    // packet has fully left them, and never after delivery).
    for (std::size_t i = 0; i + 1 < len; ++i) {
      const sim::Time earliest = worm->acquired_at[i] + config_.t_hop +
                                 config_.serialization_time();
      const sim::Time tail_passes =
          delivery - config_.t_hop * static_cast<sim::Time::rep>(len - 1 - i);
      const std::int32_t chan = worm->path[i];
      sim_.schedule_at(std::max(earliest, tail_passes),
                       [this, chan] { release_channel(chan); });
    }
  }
  sim_.schedule_at(delivery, [this, worm] { complete(worm); });
}

void WormholeNetwork::release_channel(std::int32_t chan) {
  auto& channel = channels_[static_cast<std::size_t>(chan)];
  assert(channel.busy);
  if (channel.waiters.empty()) {
    channel.busy = false;
    return;
  }
  // Immediate FIFO hand-off: the channel never goes idle, the head waiter
  // owns it as of now. Keeps arbitration strictly first-come-first-served.
  Worm* next = channel.waiters.front();
  channel.waiters.pop_front();
  total_block_ += sim_.now() - next->block_start;
  assert(next->path[next->next] == chan);
  next->acquired_at.push_back(sim_.now());
  ++next->next;
  if (next->next == next->path.size()) {
    schedule_drain(next);
  } else {
    sim_.schedule_at(sim_.now() + config_.t_hop,
                     [this, next] { progress(next); });
  }
}

void WormholeNetwork::complete(Worm* worm) {
  if (config_.release_model == ReleaseModel::kAtDelivery) {
    for (std::int32_t chan : worm->path) release_channel(chan);
  } else {
    // Pipelined mode already released the upstream channels; only the
    // final (ejection) channel is still held.
    release_channel(worm->path.back());
  }
  --in_flight_;
  const bool lost =
      config_.loss_rate > 0.0 && loss_rng_.next_bool(config_.loss_rate);
  if (lost) {
    ++dropped_;
  } else {
    ++delivered_;
  }
  if (trace_) {
    trace_->record(sim_.now(), sim::TraceCategory::kPacket, worm->packet.dest,
                   std::string(lost ? "DROP" : "deliver") + " msg=" +
                       std::to_string(worm->packet.message) + " pkt=" +
                       std::to_string(worm->packet.packet_index));
  }
  DeliveryCallback cb = lost ? DeliveryCallback{} : std::move(worm->cb);
  const Packet packet = worm->packet;
  auto it = std::find_if(live_worms_.begin(), live_worms_.end(),
                         [worm](const auto& p) { return p.get() == worm; });
  assert(it != live_worms_.end());
  live_worms_.erase(it);
  if (cb) cb(packet);
}

}  // namespace nimcast::net
