#pragma once

#include <cstdint>
#include <vector>

#include "sim/sim_time.hpp"
#include "topology/graph.hpp"
#include "topology/ids.hpp"

namespace nimcast::sim {
class Rng;
}

namespace nimcast::net {

enum class FaultKind : std::uint8_t {
  kLinkDown,    ///< one switch-switch link fails (both directions)
  kLinkUp,      ///< a previously failed link recovers
  kSwitchDown,  ///< a switch dies: all its links and attached hosts with it
  kHostDown,    ///< one host/NI dies; its switch and the fabric stay up
};

[[nodiscard]] const char* to_string(FaultKind k);

/// One scheduled fabric fault. `id` is a LinkId for link events, a
/// SwitchId for kSwitchDown and a HostId for kHostDown.
struct FaultEvent {
  sim::Time at;
  FaultKind kind = FaultKind::kLinkDown;
  std::int32_t id = -1;
};

/// Deterministic schedule of fabric faults for one simulation run.
///
/// A default-constructed (empty) plan is the pristine fabric: the
/// network schedules nothing and every code path is bit-identical to a
/// build without the fault layer. Plans are either scripted through the
/// builder calls or drawn from `random()`, whose only entropy source is
/// the caller's sim::Rng — same seed, same schedule, byte for byte.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& link_down(sim::Time at, topo::LinkId link);
  FaultPlan& link_up(sim::Time at, topo::LinkId link);
  FaultPlan& switch_down(sim::Time at, topo::SwitchId sw);
  FaultPlan& host_down(sim::Time at, topo::HostId host);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Sorted by time; simultaneous events keep insertion order.
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }

  struct RandomConfig {
    /// Independent failure probability per link / per switch / per host.
    /// Host draws only happen through the host-aware random() overload.
    double link_fail_prob = 0.0;
    double switch_fail_prob = 0.0;
    double host_fail_prob = 0.0;
    /// Failure instants are uniform in [window_start, window_end).
    sim::Time window_start = sim::Time::zero();
    sim::Time window_end = sim::Time::us(100.0);
    /// When positive, every failed link recovers this long after it
    /// failed (switches stay down).
    sim::Time link_recover_after = sim::Time::zero();
  };

  /// Draws a plan over `g`'s links and switches. Consumes one Bernoulli
  /// draw per link and per switch (plus one uniform per failure), in
  /// ascending id order, so the schedule is a pure function of the rng
  /// state.
  [[nodiscard]] static FaultPlan random(const topo::Graph& g,
                                        const RandomConfig& cfg,
                                        sim::Rng& rng);

  /// Host-aware overload: identical draw sequence to the Graph overload
  /// (links, then switches — so existing seeded schedules are preserved),
  /// followed by one Bernoulli per host in ascending id order when
  /// `cfg.host_fail_prob > 0`.
  [[nodiscard]] static FaultPlan random(const topo::Graph& g,
                                        std::int32_t num_hosts,
                                        const RandomConfig& cfg,
                                        sim::Rng& rng);

 private:
  void add(FaultEvent ev);

  std::vector<FaultEvent> events_;
};

}  // namespace nimcast::net
