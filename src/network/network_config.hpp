#pragma once

#include <cstdint>
#include <stdexcept>

#include "network/fault_plan.hpp"
#include "sim/sim_time.hpp"

namespace nimcast::net {

/// When a worm's held channels are released.
enum class ReleaseModel : std::uint8_t {
  /// All channels release when the packet has fully drained into the
  /// destination NI. Conservative (slightly over-serializes upstream
  /// links) and the default — matches the behaviour assumed by the
  /// hand-computed timings in the test suite.
  kAtDelivery,
  /// Channel i releases when the tail flit has passed it: the tail runs
  /// (path_len-1-i) hops behind the header, so upstream channels free
  /// earlier. More faithful for long paths; see the release-model
  /// ablation bench for the measured difference.
  kPipelined,
};

/// Physical-layer parameters of the wormhole network.
///
/// The paper folds the wire into t_step = (NI send overhead) + (propagation)
/// + (NI receive overhead); the NI overheads live in `netif::SystemParams`.
/// These parameters define the propagation part: per-hop header latency and
/// the serialization time of one packet over a channel.
struct NetworkConfig {
  /// Fixed per-hop cost of the header flit: switch routing decision plus
  /// wire flight time.
  sim::Time t_hop = sim::Time::us(0.1);

  /// Channel bandwidth in bytes per microsecond (== MB/s). A 64-byte
  /// packet at 160 MB/s serializes in 0.4 us, in line with mid-90s
  /// Myrinet-class links the paper targets.
  double bandwidth_bytes_per_us = 160.0;

  /// Fixed packet size enforced by the network (paper Section 5.2: 64 B).
  std::int32_t packet_bytes = 64;

  ReleaseModel release_model = ReleaseModel::kAtDelivery;

  /// Probability that a packet is corrupted/dropped at the receiving NI
  /// (checked after the worm has traversed — it still occupied the wire).
  /// 0 models the paper's lossless wormhole fabric; non-zero values
  /// exercise the reliable-multicast layer (netif::ReliableFpfsNi), the
  /// problem the paper's references [4] and [12] address.
  double loss_rate = 0.0;

  /// Seed for the loss process (independent of workload seeds).
  std::uint64_t loss_seed = 0x10551055;

  /// Scheduled link/switch faults applied during the run. Empty (the
  /// default) keeps the fabric pristine and every simulation
  /// bit-identical to a fault-free build.
  FaultPlan faults;

  [[nodiscard]] sim::Time serialization_time() const {
    if (bandwidth_bytes_per_us <= 0.0) {
      throw std::invalid_argument("NetworkConfig: non-positive bandwidth");
    }
    return sim::Time::us(static_cast<double>(packet_bytes) /
                         bandwidth_bytes_per_us);
  }
};

}  // namespace nimcast::net
