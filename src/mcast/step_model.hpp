#pragma once

#include <cstdint>
#include <vector>

#include "core/tree.hpp"

namespace nimcast::mcast {

/// NI forwarding discipline (paper Section 3).
enum class Discipline : std::uint8_t {
  kFpfs,  ///< First-Packet-First-Served (Figure 7)
  kFcfs,  ///< First-Child-First-Served (Figure 6)
};

[[nodiscard]] const char* to_string(Discipline d);

/// Step-level schedule of a multi-packet multicast over a tree — the
/// paper's abstract pipelined model of Section 4.1, where transmitting
/// one packet NI-to-NI is one *step*, each NI performs at most one send
/// per step, and a received packet is forwardable from the next step.
///
/// This executor is the reference the theorems are stated against:
/// Theorem 1 (inter-packet completion gap equals the root's child count)
/// and Theorem 2 (total = t_1 + (m-1) * c_R) are validated against it,
/// and multiplying `total_steps` by t_step reproduces the paper's latency
/// expressions exactly.
struct StepSchedule {
  /// arrival[rank][pkt]: step at which `rank` has received packet `pkt`
  /// (0 for the source, which holds all packets at step 0).
  std::vector<std::vector<std::int32_t>> arrival;
  /// completion[pkt]: step at which packet `pkt` has reached every rank.
  std::vector<std::int32_t> completion;
  std::int32_t total_steps = 0;

  [[nodiscard]] std::int32_t num_ranks() const {
    return static_cast<std::int32_t>(arrival.size());
  }
  [[nodiscard]] std::int32_t num_packets() const {
    return static_cast<std::int32_t>(completion.size());
  }
};

/// Computes the schedule for `m` packets over `tree` under `discipline`.
/// Requires m >= 1; the tree must validate().
[[nodiscard]] StepSchedule step_schedule(const core::RankTree& tree,
                                         std::int32_t m,
                                         Discipline discipline);

}  // namespace nimcast::mcast
