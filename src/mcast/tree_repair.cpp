#include "mcast/tree_repair.hpp"

#include <algorithm>

#include "core/kbinomial.hpp"

namespace nimcast::mcast {

std::optional<core::HostTree> plan_repair_tree(
    topo::HostId root, const std::vector<topo::HostId>& order,
    const std::function<bool(topo::HostId)>& needs,
    const std::function<bool(topo::HostId)>& reachable,
    std::int32_t fanout_hint) {
  core::Chain chain;
  chain.push_back(root);
  for (topo::HostId h : order) {
    if (h == root || !needs(h)) continue;
    if (!reachable(h)) continue;
    chain.push_back(h);
  }
  if (chain.size() < 2) return std::nullopt;
  const auto n = static_cast<std::int32_t>(chain.size());
  const std::int32_t k = std::clamp(fanout_hint, 1, std::max(n - 1, 1));
  return core::HostTree::bind(core::make_kbinomial(n, k), chain);
}

}  // namespace nimcast::mcast
