#include "mcast/multicast_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "core/kbinomial.hpp"
#include "mcast/fabric.hpp"
#include "mcast/tree_repair.hpp"
#include "netif/conventional_ni.hpp"
#include "netif/reliable_ni.hpp"
#include "netif/host.hpp"
#include "netif/smart_ni.hpp"
#include "network/wormhole_network.hpp"
#include "routing/repair.hpp"
#include "routing/route_alternatives.hpp"
#include "sim/simulator.hpp"

namespace nimcast::mcast {

namespace {

/// Directed switch-channel ids condemned by the current fault state, in
/// the numbering routing::edge_channel_footprint uses — so a footprint
/// intersection against this set tells whether a rotation member's
/// static routes dodge every dead link and switch. Sorted by
/// construction (link id ascending, then direction, then VC).
std::vector<std::int32_t> dead_switch_channels(const topo::Topology& topology,
                                               const topo::SubgraphMask& mask,
                                               std::int32_t vcs) {
  std::vector<std::int32_t> dead;
  if (!mask.any_dead()) return dead;
  const topo::Graph& g = topology.switches();
  for (topo::LinkId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    if (mask.link_alive(e) && mask.switch_alive(edge.a) &&
        mask.switch_alive(edge.b)) {
      continue;
    }
    for (std::int32_t dir = 0; dir < 2; ++dir) {
      for (std::int32_t v = 0; v < vcs; ++v) {
        dead.push_back((2 * e + dir) * vcs + v);
      }
    }
  }
  return dead;
}

}  // namespace

const char* to_string(NiStyle s) {
  switch (s) {
    case NiStyle::kConventional: return "conventional";
    case NiStyle::kSmartFcfs: return "smart-fcfs";
    case NiStyle::kSmartFpfs: return "smart-fpfs";
    case NiStyle::kReliableFpfs: return "reliable-fpfs";
  }
  return "?";
}

const char* to_string(Selection s) {
  switch (s) {
    case Selection::kStatic: return "static";
    case Selection::kAdaptive: return "adaptive";
  }
  return "?";
}

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kComplete: return "complete";
    case Outcome::kPartial: return "partial";
    case Outcome::kFailed: return "failed";
  }
  return "?";
}

std::int32_t MulticastResult::delivered_count() const {
  std::int32_t n = 0;
  for (const auto& d : destinations) n += d.delivered ? 1 : 0;
  return n;
}

double MulticastResult::delivery_ratio() const {
  if (destinations.empty()) return 1.0;
  return static_cast<double>(delivered_count()) /
         static_cast<double>(destinations.size());
}

double MulticastResult::peak_buffer() const {
  double best = 0.0;
  for (const auto& b : buffers) best = std::max(best, b.peak_packets);
  return best;
}

double MulticastResult::max_buffer_integral() const {
  double best = 0.0;
  for (const auto& b : buffers) best = std::max(best, b.packet_us_integral);
  return best;
}

MulticastEngine::MulticastEngine(const topo::Topology& topology,
                                 const routing::RouteTable& routes,
                                 Config config, sim::Trace* trace)
    : topology_{topology}, routes_{routes}, config_{config}, trace_{trace} {}

sim::Time MulticastEngine::pick_window(std::size_t max_hops) const {
  return Fabric::conservative_window(config_.network, max_hops,
                                     config_.window);
}

std::vector<std::uint64_t> MulticastEngine::partition_weights() const {
  std::lock_guard lock{load_cache_->mutex};
  return load_cache_->load;
}

void MulticastEngine::record_switch_load(
    const std::vector<std::uint64_t>& load) const {
  std::lock_guard lock{load_cache_->mutex};
  load_cache_->load = load;
}

MulticastResult MulticastEngine::run(const core::HostTree& tree,
                                     std::int32_t packet_count) const {
  MultiMulticastResult batch =
      run_many({MulticastSpec{tree, packet_count, sim::Time::zero()}});
  MulticastResult result = std::move(batch.operations.front());
  result.buffers = std::move(batch.buffers);
  result.total_channel_block_time = batch.total_channel_block_time;
  result.retransmissions = batch.retransmissions;
  result.events_dispatched = batch.events_dispatched;
  return result;
}

MultiMulticastResult MulticastEngine::run_many(
    const std::vector<MulticastSpec>& specs) const {
  if (specs.empty()) {
    throw std::invalid_argument("run_many: no operations");
  }
  std::unordered_set<topo::HostId> participants;
  for (const auto& spec : specs) {
    if (spec.packet_count < 1) {
      throw std::invalid_argument("run_many: packet_count < 1");
    }
    if (spec.tree.size() < 1) {
      throw std::invalid_argument("run_many: empty tree");
    }
    for (topo::HostId h : spec.tree.nodes) {
      if (h < 0 || h >= topology_.num_hosts()) {
        throw std::invalid_argument("run_many: host out of range");
      }
      participants.insert(h);
    }
  }

  const bool faulty = !config_.network.faults.empty();

  // Engine selection. The sharded engine reproduces the serial engine
  // bit for bit, so callers opt into speed, never into different
  // results; it only falls back to the serial path when no positive
  // conservative window exists (pipelined release on paths too long for
  // the serialization time — under a fault plan repair can route any
  // pair, so the bound is the longest simple path) or when a trace is
  // attached (trace records are a global order).
  sim::Time window = sim::Time::zero();
  if (config_.shards > 1 && trace_ == nullptr) {
    std::size_t max_hops = 0;
    if (config_.network.release_model == net::ReleaseModel::kPipelined) {
      if (faulty) {
        max_hops = static_cast<std::size_t>(
            std::max(topology_.num_switches() - 1, 1));
      } else {
        for (const auto& spec : specs) {
          for (topo::HostId h : spec.tree.nodes) {
            for (topo::HostId c : spec.tree.children.at(h)) {
              // Both directions: ACKs retrace the edge the other way.
              max_hops = std::max({max_hops, routes_.hops(h, c),
                                   routes_.hops(c, h)});
            }
          }
        }
      }
    }
    window = pick_window(max_hops);
  }
  // Every per-host actor (NI, host, its timers and receive events) lives
  // on the shard owning that host's switch; in serial mode everything
  // shares the one simulator.
  Fabric fabric{topology_,      routes_, config_.network,     config_.shards,
                window,         partition_weights(),          trace_};
  const bool sharded_mode = fabric.sharded();
  const std::int32_t num_shards = fabric.num_shards();
  net::WormholeNetwork& network = fabric.network();
  const auto sim_for_host = [&](topo::HostId h) -> sim::Simulator& {
    return fabric.sim_for_host(h);
  };
  const auto run_sim = [&] { fabric.run(config_.shard_threads); };
  const auto end_time = [&] { return fabric.end_time(); };

  // Fault-time route repair: rebuild up*/down* on the surviving subgraph
  // and rebind. The hook fires on *every* fault event — failures AND
  // kLinkUp recoveries — each with a fresh epoch, so a recovered link
  // rejoins the routes immediately instead of staying excised until the
  // next failure. Multi-VC tables (dateline tori) cannot be rebuilt —
  // rebuild_updown emits a single-VC table, which would change channel
  // numbering under the fabric's feet — so requesting reroute there is a
  // loud error instead of a silently stale table.
  std::vector<std::unique_ptr<routing::RouteTable>> repaired_tables;
  if (faulty && config_.repair.reroute) {
    if (routes_.virtual_channels() != 1) {
      throw std::invalid_argument(
          "MulticastEngine: fault-time reroute cannot rebuild a multi-VC "
          "route table (dateline torus); set RepairPolicy::reroute = false "
          "to run degraded on the original routes");
    }
    network.on_fault = [&](const net::FaultEvent& ev) {
      // A host death leaves the switch graph (and thus every route)
      // unchanged — no rebuild needed.
      if (ev.kind == net::FaultKind::kHostDown) return;
      auto table = routing::rebuild_updown(
          topology_, network.fault_state(),
          static_cast<std::int32_t>(repaired_tables.size()) + 1);
      network.rebind_routes(*table);
      repaired_tables.push_back(std::move(table));
    };
  }

  // A zero retx_timeout asks for the derived default: size it to the
  // deepest tree edge and widest fan-out actually in this batch.
  netif::ReliabilityParams reliability = config_.reliability;
  if (config_.style == NiStyle::kReliableFpfs &&
      reliability.retx_timeout == sim::Time::zero()) {
    std::size_t max_hops = 1;
    std::int32_t max_fanout = 1;
    for (const auto& spec : specs) {
      for (topo::HostId h : spec.tree.nodes) {
        const auto& kids = spec.tree.children.at(h);
        max_fanout =
            std::max(max_fanout, static_cast<std::int32_t>(kids.size()));
        for (topo::HostId c : kids) {
          max_hops = std::max(max_hops, routes_.hops(h, c));
        }
      }
    }
    reliability.retx_timeout = netif::derived_retx_timeout(
        config_.params, config_.network, max_hops, max_fanout,
        reliability.t_ack);
  }

  std::unordered_map<topo::HostId, std::unique_ptr<netif::NetworkInterface>>
      nis;
  std::unordered_map<topo::HostId, std::unique_ptr<netif::Host>> hosts;
  for (topo::HostId h : participants) {
    sim::Simulator& hsim = sim_for_host(h);
    switch (config_.style) {
      case NiStyle::kConventional:
        nis.emplace(h, std::make_unique<netif::ConventionalNi>(
                           hsim, network, config_.params, h, trace_));
        break;
      case NiStyle::kSmartFcfs:
        nis.emplace(h, std::make_unique<netif::FcfsNi>(
                           hsim, network, config_.params, h, trace_));
        break;
      case NiStyle::kSmartFpfs:
        nis.emplace(h, std::make_unique<netif::FpfsNi>(
                           hsim, network, config_.params, h, trace_));
        break;
      case NiStyle::kReliableFpfs:
        nis.emplace(h, std::make_unique<netif::ReliableFpfsNi>(
                           hsim, network, config_.params, reliability, h,
                           trace_));
        break;
    }
    hosts.emplace(h, std::make_unique<netif::Host>(hsim, h, config_.params));
  }

  // Forwarding state: one message id per operation.
  for (std::size_t op = 0; op < specs.size(); ++op) {
    const auto message = static_cast<net::MessageId>(op + 1);
    const auto& spec = specs[op];
    for (topo::HostId h : spec.tree.nodes) {
      netif::ForwardingEntry entry;
      entry.children = spec.tree.children.at(h);
      entry.packet_count = spec.packet_count;
      entry.is_destination = (h != spec.tree.root);
      nis.at(h)->install(message, entry);
    }
  }

  MultiMulticastResult batch;
  batch.operations.resize(specs.size());

  // Message id -> operation index. Repair rounds mint fresh message ids
  // for the same operation, so the map grows past specs.size().
  std::vector<std::size_t> msg_op(specs.size());
  for (std::size_t op = 0; op < specs.size(); ++op) msg_op[op] = op;
  // Destinations whose NI has completed the operation (under any of its
  // message ids) — guards against a repair resend double-counting a host
  // that made it through after all. Flat per-host bytes, not a set: each
  // slot is touched only by its owner shard's thread.
  std::vector<std::vector<std::uint8_t>> arrived(
      specs.size(),
      std::vector<std::uint8_t>(static_cast<std::size_t>(topology_.num_hosts()),
                                0));

  // Completion records, buffered per shard during the run (each shard's
  // worker appends only to its own log) and merged afterwards. Both
  // engines assemble results from these, sorted by (time, host, op) —
  // the one place the sharded engine has no dispatch order to inherit —
  // so serial and sharded reports are bit-identical.
  struct CompletionLog {
    /// (op, dest, time) at NI completion (before the host receive t_r).
    std::vector<std::tuple<std::size_t, topo::HostId, sim::Time>> ni_done;
    /// (op, dest, time) at host-level completion.
    std::vector<std::tuple<std::size_t, topo::HostId, sim::Time>> host_done;
  };
  std::vector<std::unique_ptr<CompletionLog>> logs;
  for (std::int32_t s = 0; s < num_shards; ++s) {
    logs.push_back(std::make_unique<CompletionLog>());
  }

  for (auto& [h, ni] : nis) {
    ni->on_message_at_ni = [&](topo::HostId dest, net::MessageId msg) {
      const auto op = msg_op[static_cast<std::size_t>(msg - 1)];
      auto& seen = arrived[op][static_cast<std::size_t>(dest)];
      if (seen != 0) return;
      seen = 1;
      sim::Simulator& hsim = sim_for_host(dest);
      CompletionLog& log = *logs[static_cast<std::size_t>(
          sharded_mode ? network.shard_of_host(dest) : 0)];
      log.ni_done.emplace_back(op, dest, hsim.now());
      auto& host = *hosts.at(dest);
      host.software_receive([&, logp = &log, dest, msg, op] {
        logp->host_done.emplace_back(op, dest, sim_for_host(dest).now());
        nis.at(dest)->after_host_receive(msg, *hosts.at(dest));
      });
    };
  }

  for (std::size_t op = 0; op < specs.size(); ++op) {
    const auto message = static_cast<net::MessageId>(op + 1);
    const topo::HostId root = specs[op].tree.root;
    sim_for_host(root).schedule_at(specs[op].start,
                                   [&nis, &hosts, root, message] {
                                     nis.at(root)->start_from_host(
                                         message, *hosts.at(root));
                                   });
  }
  run_sim();

  if (network.in_flight() != 0) {
    throw std::runtime_error(
        "MulticastEngine: network deadlock (worms still in flight)");
  }

  // The initiator each operation's repair rounds (and final reachability
  // verdicts) run from: the original root until it dies, then the elected
  // replacement. All fault events fire during the first drain (plans are
  // scheduled up front), so an election happens at most once per op.
  std::vector<topo::HostId> eff_root(specs.size());
  for (std::size_t op = 0; op < specs.size(); ++op) {
    eff_root[op] = specs[op].tree.root;
  }

  // Tree repair: re-parent destinations orphaned by faults. Each round
  // rebuilds a k-binomial tree over the still-missing, still-reachable
  // destinations in their contention-free (nodes) order — failed hosts
  // are simply excised — and resends under a fresh message id. When the
  // root itself died, elect the lowest-ranked surviving destination that
  // already holds the full payload and hand the schedule to it.
  if (faulty && config_.repair.max_attempts > 0) {
    auto next_message = static_cast<std::int32_t>(specs.size()) + 1;
    for (std::int32_t round = 1; round <= config_.repair.max_attempts;
         ++round) {
      bool scheduled_any = false;
      for (std::size_t op = 0; op < specs.size(); ++op) {
        const auto& spec = specs[op];
        topo::HostId root = eff_root[op];
        if (!network.host_alive(root)) {
          if (!config_.repair.root_handoff) continue;
          // Nothing to hand off when every destination already holds the
          // message: the root died after finishing its work.
          bool missing = false;
          for (topo::HostId h : spec.tree.nodes) {
            if (h != spec.tree.root &&
                arrived[op][static_cast<std::size_t>(h)] == 0) {
              missing = true;
              break;
            }
          }
          if (!missing) continue;
          topo::HostId elected = topo::kInvalidId;
          for (topo::HostId h : spec.tree.nodes) {
            if (h == spec.tree.root) continue;
            if (arrived[op][static_cast<std::size_t>(h)] != 0 &&
                network.host_alive(h)) {
              elected = h;
              break;
            }
          }
          // Nobody holds the payload: it died with the root.
          if (elected == topo::kInvalidId) continue;
          root = elected;
          eff_root[op] = elected;
          ++batch.operations[op].root_handoffs;
        }
        const auto rtree = plan_repair_tree(
            root, spec.tree.nodes,
            [&](topo::HostId h) {
              return arrived[op][static_cast<std::size_t>(h)] == 0;
            },
            [&](topo::HostId h) { return network.reachable(root, h); },
            spec.tree.root_children());
        if (!rtree) continue;
        const auto message = static_cast<net::MessageId>(next_message++);
        msg_op.push_back(op);
        for (topo::HostId h : rtree->nodes) {
          netif::ForwardingEntry entry;
          entry.children = rtree->children.at(h);
          entry.packet_count = spec.packet_count;
          entry.is_destination = (h != root);
          nis.at(h)->install(message, entry);
        }
        ++batch.operations[op].repairs;
        const sim::Time wait =
            config_.repair.backoff * (sim::Time::rep{1} << (round - 1));
        sim_for_host(root).schedule_at(end_time() + wait,
                                       [&nis, &hosts, root, message] {
                                         nis.at(root)->start_from_host(
                                             message, *hosts.at(root));
                                       });
        scheduled_any = true;
      }
      if (!scheduled_any) break;
      run_sim();
      if (network.in_flight() != 0) {
        throw std::runtime_error(
            "MulticastEngine: network deadlock (worms still in flight)");
      }
    }
  }

  // Merge the per-shard completion logs. Sorted by (time, host, op) in
  // both modes: the serial engine's historical order was dispatch order,
  // which for distinct completion events is time order with rare
  // same-instant ties — fixing the tie-break keeps the two engines (and
  // any two thread counts) bit-identical.
  {
    std::vector<std::tuple<std::size_t, topo::HostId, sim::Time>> ni_all;
    std::vector<std::tuple<std::size_t, topo::HostId, sim::Time>> host_all;
    for (const auto& log : logs) {
      ni_all.insert(ni_all.end(), log->ni_done.begin(), log->ni_done.end());
      host_all.insert(host_all.end(), log->host_done.begin(),
                      log->host_done.end());
    }
    const auto by_time_host_op = [](const auto& a, const auto& b) {
      return std::make_tuple(std::get<2>(a), std::get<1>(a), std::get<0>(a)) <
             std::make_tuple(std::get<2>(b), std::get<1>(b), std::get<0>(b));
    };
    std::sort(host_all.begin(), host_all.end(), by_time_host_op);
    for (const auto& [op, h, t] : host_all) {
      batch.operations[op].completions.emplace_back(h, t);
    }
    for (const auto& [op, h, t] : ni_all) {
      batch.operations[op].ni_latency =
          std::max(batch.operations[op].ni_latency, t - specs[op].start);
    }
  }

  for (std::size_t op = 0; op < specs.size(); ++op) {
    auto& result = batch.operations[op];
    const auto& spec = specs[op];
    const auto expected = static_cast<std::size_t>(spec.tree.size() - 1);
    if (!faulty && result.completions.size() != expected) {
      throw std::runtime_error(
          "MulticastEngine: not every destination completed (op " +
          std::to_string(op) + ")");
    }
    result.effective_root = eff_root[op];
    std::unordered_map<topo::HostId, sim::Time> done;
    for (const auto& [h, t] : result.completions) done.emplace(h, t);
    for (topo::HostId h : spec.tree.nodes) {
      if (h == spec.tree.root) continue;
      DestinationStatus st;
      st.host = h;
      st.reachable = network.reachable(eff_root[op], h);
      if (auto it = done.find(h); it != done.end()) {
        st.delivered = true;
        st.completed_at = it->second;
      }
      result.destinations.push_back(st);
    }
    const auto delivered = static_cast<std::size_t>(result.delivered_count());
    result.outcome = (expected == 0 || delivered == expected)
                         ? Outcome::kComplete
                         : (delivered == 0 ? Outcome::kFailed
                                           : Outcome::kPartial);
    for (const auto& [h, t] : result.completions) {
      result.latency = std::max(result.latency, t - spec.start);
      batch.makespan = std::max(batch.makespan, t);
    }
    result.packets_delivered =
        static_cast<std::int64_t>(result.completions.size()) *
        spec.packet_count;
  }
  for (topo::HostId h : participants) {
    const auto& buf = nis.at(h)->buffer();
    batch.buffers.push_back(BufferStat{h, buf.peak(), buf.integral()});
  }
  batch.total_channel_block_time = network.total_block_time();
  batch.packets_killed = network.packets_killed();
  batch.faults_applied = network.faults_applied();
  batch.events_dispatched = fabric.events_dispatched();
  if (sharded_mode) {
    batch.window_ns = window.count_ns();
    batch.barrier_wall_ns = fabric.barrier_wall_ns();
    batch.windows_planned = fabric.windows_planned();
    record_switch_load(network.switch_load());
  }
  if (config_.style == NiStyle::kReliableFpfs) {
    for (const auto& [h, ni] : nis) {
      const auto* rni = static_cast<const netif::ReliableFpfsNi*>(ni.get());
      batch.retransmissions += rni->retransmissions();
      batch.deliveries_failed += rni->deliveries_failed();
    }
  }
  return batch;
}

StreamingResult MulticastEngine::run_streaming(
    const core::RotationPlan& plan, std::int32_t stream_packets) const {
  if (config_.style != NiStyle::kSmartFpfs) {
    throw std::invalid_argument(
        "run_streaming: rotation streaming requires NiStyle::kSmartFpfs");
  }
  if (stream_packets < 1) {
    throw std::invalid_argument("run_streaming: stream_packets < 1");
  }
  if (plan.members.empty()) {
    throw std::invalid_argument("run_streaming: empty rotation plan");
  }
  const core::HostTree& base = plan.members.front().tree;
  const topo::HostId root = base.root;
  std::vector<topo::HostId> base_sorted = base.nodes;
  std::sort(base_sorted.begin(), base_sorted.end());
  for (topo::HostId h : base_sorted) {
    if (h < 0 || h >= topology_.num_hosts()) {
      throw std::invalid_argument("run_streaming: host out of range");
    }
  }
  for (const auto& member : plan.members) {
    if (member.tree.root != root) {
      throw std::invalid_argument("run_streaming: members disagree on root");
    }
    std::vector<topo::HostId> nodes = member.tree.nodes;
    std::sort(nodes.begin(), nodes.end());
    if (nodes != base_sorted) {
      throw std::invalid_argument(
          "run_streaming: members disagree on participants");
    }
  }

  const std::int32_t S = stream_packets;
  // Classes that actually carry packets: packet g rides class g mod R.
  const std::int32_t R = std::min(plan.size(), S);

  for (const auto& flow : config_.background) {
    if (flow.src < 0 || flow.src >= topology_.num_hosts() || flow.dst < 0 ||
        flow.dst >= topology_.num_hosts() || flow.src == flow.dst) {
      throw std::invalid_argument("run_streaming: bad background flow");
    }
    if (flow.packets < 1) {
      throw std::invalid_argument(
          "run_streaming: background flow packets < 1");
    }
  }

  const bool faulty = !config_.network.faults.empty();
  const bool lossy = config_.network.loss_rate > 0.0;
  // An R = 1 plan degrades adaptive to static: nothing to choose.
  const bool adaptive = config_.selection == Selection::kAdaptive && R > 1;

  // Engine selection — identical rules to run_many (see there); the
  // pipelined path bound additionally covers every rotation member's
  // tree on its own route class table.
  sim::Time window = sim::Time::zero();
  if (config_.shards > 1 && trace_ == nullptr) {
    std::size_t max_hops = 0;
    if (config_.network.release_model == net::ReleaseModel::kPipelined) {
      if (faulty) {
        max_hops = static_cast<std::size_t>(
            std::max(topology_.num_switches() - 1, 1));
      } else {
        for (std::int32_t r = 0; r < R; ++r) {
          const auto& member = plan.members[static_cast<std::size_t>(r)];
          const routing::RouteTable& table =
              member.table ? *member.table : routes_;
          for (topo::HostId h : member.tree.nodes) {
            for (topo::HostId c : member.tree.children.at(h)) {
              max_hops =
                  std::max({max_hops, table.hops(h, c), table.hops(c, h)});
            }
          }
        }
        for (const auto& flow : config_.background) {
          max_hops = std::max(max_hops, routes_.hops(flow.src, flow.dst));
        }
      }
    }
    window = pick_window(max_hops);
  }
  Fabric fabric{topology_,      routes_, config_.network,     config_.shards,
                window,         partition_weights(),          trace_};
  const bool sharded_mode = fabric.sharded();
  const std::int32_t num_shards = fabric.num_shards();
  net::WormholeNetwork& network = fabric.network();
  const auto sim_for_host = [&](topo::HostId h) -> sim::Simulator& {
    return fabric.sim_for_host(h);
  };
  const auto run_sim = [&] { fabric.run(config_.shard_threads); };
  const auto end_time = [&] { return fabric.end_time(); };

  // Rotation members ride their decorrelated routes via route classes;
  // member 0 (and any member planned on the primary table) stays on
  // class 0, so an R = 1 plan leaves the network untouched.
  for (std::int32_t r = 1; r < R; ++r) {
    const auto& member = plan.members[static_cast<std::size_t>(r)];
    if (member.table) network.bind_route_class(r, *member.table);
  }

  // Fault-time primary-route repair, as in run_many (including the loud
  // multi-VC refusal). Class tables go stale on purpose: their worms die
  // at dead channels and the incremental replan below redelivers.
  std::vector<std::unique_ptr<routing::RouteTable>> repaired_tables;
  if (faulty && config_.repair.reroute) {
    if (routes_.virtual_channels() != 1) {
      throw std::invalid_argument(
          "MulticastEngine: fault-time reroute cannot rebuild a multi-VC "
          "route table (dateline torus); set RepairPolicy::reroute = false "
          "to run degraded on the original routes");
    }
    network.on_fault = [&](const net::FaultEvent& ev) {
      if (ev.kind == net::FaultKind::kHostDown) return;
      auto table = routing::rebuild_updown(
          topology_, network.fault_state(),
          static_cast<std::int32_t>(repaired_tables.size()) + 1);
      network.rebind_routes(*table);
      repaired_tables.push_back(std::move(table));
    };
  }

  std::unordered_map<topo::HostId, std::unique_ptr<netif::NetworkInterface>>
      nis;
  std::unordered_map<topo::HostId, std::unique_ptr<netif::Host>> hosts;
  for (topo::HostId h : base.nodes) {
    sim::Simulator& hsim = sim_for_host(h);
    nis.emplace(h, std::make_unique<netif::FpfsNi>(hsim, network,
                                                   config_.params, h, trace_));
    hosts.emplace(h, std::make_unique<netif::Host>(hsim, h, config_.params));
  }
  for (const auto& flow : config_.background) {
    for (topo::HostId h : {flow.src, flow.dst}) {
      if (nis.contains(h)) continue;
      sim::Simulator& hsim = sim_for_host(h);
      nis.emplace(h, std::make_unique<netif::FpfsNi>(
                         hsim, network, config_.params, h, trace_));
      hosts.emplace(h, std::make_unique<netif::Host>(hsim, h, config_.params));
    }
  }

  // One message per streaming class; member r's tree carries class r.
  // Static: class r holds the stream packets congruent to r mod R, with
  // per-class packet indices. Adaptive: any packet may ride any class,
  // so every class is installed with the full stream as packet_count and
  // the *global* stream index as packet index — a class carries the
  // sparse index subset the selector routes to it.
  for (std::int32_t r = 0; r < R; ++r) {
    const auto message = static_cast<net::MessageId>(r + 1);
    const auto& member = plan.members[static_cast<std::size_t>(r)];
    const std::int32_t count = adaptive ? S : (S - r + R - 1) / R;
    for (topo::HostId h : member.tree.nodes) {
      netif::ForwardingEntry entry;
      entry.children = member.tree.children.at(h);
      entry.packet_count = count;
      entry.is_destination = (h != root);
      entry.route_class = r;
      nis.at(h)->install(message, entry);
    }
  }

  // Stream index of message m's packet j. Streaming classes interleave
  // affinely (mul R, add r); repair and handoff messages carry an
  // explicit index list — an arbitrary subset of the stream.
  struct MsgMap {
    std::int32_t mul = 1;
    std::int32_t add = 0;
    std::vector<std::int32_t> indices;  ///< non-empty: j -> indices[j]
    bool background = false;  ///< not part of the stream; skip accounting
  };
  std::vector<MsgMap> msg_stream;
  for (std::int32_t r = 0; r < R; ++r) {
    msg_stream.push_back(adaptive ? MsgMap{1, 0, {}, false}
                                  : MsgMap{R, r, {}, false});
  }

  // Background unicast flows: one message per flow, a two-node chain on
  // the primary table. Their packets contend for wires and coprocessors
  // but never enter stream accounting.
  const auto F = static_cast<std::int32_t>(config_.background.size());
  for (std::int32_t f = 0; f < F; ++f) {
    const auto& flow = config_.background[static_cast<std::size_t>(f)];
    const auto message = static_cast<net::MessageId>(R + 1 + f);
    netif::ForwardingEntry at_src;
    at_src.children = {flow.dst};
    at_src.packet_count = flow.packets;
    at_src.is_destination = false;
    nis.at(flow.src)->install(message, at_src);
    netif::ForwardingEntry at_dst;
    at_dst.packet_count = flow.packets;
    at_dst.is_destination = false;
    nis.at(flow.dst)->install(message, at_dst);
    msg_stream.push_back(MsgMap{1, 0, {}, true});
  }

  // Per-destination reassembly state. Flat per-host arrays: each slot is
  // touched only by its owner shard's thread.
  std::vector<std::vector<std::uint8_t>> seen(
      static_cast<std::size_t>(topology_.num_hosts()));
  std::vector<std::int32_t> seen_count(
      static_cast<std::size_t>(topology_.num_hosts()), 0);
  for (topo::HostId h : base.nodes) {
    if (h != root) seen[static_cast<std::size_t>(h)].assign(
        static_cast<std::size_t>(S), 0);
  }

  // Per-shard append-only logs, merged and sorted afterwards — the same
  // determinism contract as run_many's CompletionLog.
  struct StreamLog {
    /// (dest, stream index, time) at first receive-processing.
    std::vector<std::tuple<topo::HostId, std::int32_t, sim::Time>> packets;
    /// (dest, time) at host-level completion of the whole stream.
    std::vector<std::pair<topo::HostId, sim::Time>> host_done;
  };
  std::vector<std::unique_ptr<StreamLog>> logs;
  for (std::int32_t s = 0; s < num_shards; ++s) {
    logs.push_back(std::make_unique<StreamLog>());
  }

  for (auto& [h, ni] : nis) {
    ni->on_packet_at_ni = [&](topo::HostId dest, const net::Packet& p) {
      const MsgMap& mm = msg_stream[static_cast<std::size_t>(p.message - 1)];
      if (mm.background || dest == root) return;
      const std::int32_t g =
          mm.indices.empty()
              ? p.packet_index * mm.mul + mm.add
              : mm.indices[static_cast<std::size_t>(p.packet_index)];
      auto& bit =
          seen[static_cast<std::size_t>(dest)][static_cast<std::size_t>(g)];
      if (bit != 0) return;  // repair resend of a packet already seen
      bit = 1;
      StreamLog& log = *logs[static_cast<std::size_t>(
          sharded_mode ? network.shard_of_host(dest) : 0)];
      log.packets.emplace_back(dest, g, sim_for_host(dest).now());
      if (++seen_count[static_cast<std::size_t>(dest)] == S) {
        hosts.at(dest)->software_receive([&, logp = &log, dest] {
          logp->host_done.emplace_back(dest, sim_for_host(dest).now());
        });
      }
    };
  }

  // Adaptive selector state. All scores are integer nanoseconds; member
  // r's snapshot score snap[r] is the block-time delta over its channel
  // footprint since the previous snapshot, plus its forwarders' current
  // injection-queue backlog, plus a penalty for members a fault broke.
  // The stream's own wake shows up in these scores too — footprints
  // overlap only partially and forwarders momentarily hold copies in
  // their queues — so raw argmin over snap would drift off the static
  // rotation even on an otherwise idle fabric. The selector therefore
  // splits detection from choice: a member is *hot* only on a decisive
  // signal (a fault broke it, or its forwarders' queued sends exceed
  // kHotQueueFactor × participants — the stream itself can never queue
  // more than about one copy per participant, while a backed-up
  // coprocessor holds hundreds), and the full score only arbitrates
  // *which* clean member covers for a hot one. A clean home member is
  // always kept, which makes an idle fabric byte-identical to the
  // static g mod R rotation.
  struct Selector {
    std::vector<std::vector<std::int32_t>> footprint;  ///< sorted chan ids
    std::vector<std::vector<topo::HostId>> senders;    ///< forwarders
    std::vector<std::int64_t> snap;
    std::vector<std::int64_t> queue_ns;  ///< backlog term of snap
    std::vector<std::int64_t> sent;
    std::vector<std::uint8_t> dead_member;
    std::vector<std::int64_t> prev_block;  ///< per channel, last snapshot
    std::vector<std::int32_t> union_channels;
    std::int64_t issued = 0;
    std::int64_t snapshots = 0;
    std::uint64_t digest = 14695981039346656037ull;  // FNV-1a offset basis
    std::int32_t faults_seen = 0;
  } sel;
  const std::int64_t t_snd_ns = config_.params.t_snd.count_ns();
  const std::int64_t w_pkt =
      config_.params.t_rcv.count_ns() +
      static_cast<std::int64_t>(std::max(plan.fanout_bound, 1)) * t_snd_ns;
  if (adaptive) {
    sel.footprint.resize(static_cast<std::size_t>(R));
    sel.senders.resize(static_cast<std::size_t>(R));
    sel.snap.assign(static_cast<std::size_t>(R), 0);
    sel.queue_ns.assign(static_cast<std::size_t>(R), 0);
    sel.sent.assign(static_cast<std::size_t>(R), 0);
    sel.dead_member.assign(static_cast<std::size_t>(R), 0);
    sel.prev_block.assign(static_cast<std::size_t>(network.num_channels()),
                          0);
    std::vector<std::uint8_t> in_union(
        static_cast<std::size_t>(network.num_channels()), 0);
    for (std::int32_t r = 0; r < R; ++r) {
      const auto& member = plan.members[static_cast<std::size_t>(r)];
      auto& foot = sel.footprint[static_cast<std::size_t>(r)];
      foot = member.footprint;
      // The member's congestion is felt on its switch footprint plus
      // its forwarders' injection channels. The root's injection
      // channel and every ejection channel are member-independent
      // (same source, same destinations) and would only add common-mode
      // noise to every score.
      for (topo::HostId h : member.tree.nodes) {
        if (h == root || member.tree.children.at(h).empty()) continue;
        sel.senders[static_cast<std::size_t>(r)].push_back(h);
        foot.push_back(network.injection_channel_id(h));
      }
      std::sort(foot.begin(), foot.end());
      foot.erase(std::unique(foot.begin(), foot.end()), foot.end());
      for (std::int32_t c : foot) {
        if (in_union[static_cast<std::size_t>(c)] == 0) {
          in_union[static_cast<std::size_t>(c)] = 1;
          sel.union_channels.push_back(c);
        }
      }
    }
  }

  // A member is dead once a fault killed one of its hosts or condemned
  // a channel its static routes cross; the penalty steers every
  // subsequent packet to surviving members (repair still redelivers
  // what was lost before the fault landed). Re-derived only when the
  // applied-fault count moves.
  constexpr std::int64_t kDeadPenalty = std::int64_t{1} << 50;
  const auto refresh_dead_members = [&] {
    if (network.faults_applied() == sel.faults_seen) return;
    sel.faults_seen = network.faults_applied();
    const auto dead = dead_switch_channels(topology_, network.fault_state(),
                                           routes_.virtual_channels());
    for (std::int32_t r = 0; r < R; ++r) {
      const auto& member = plan.members[static_cast<std::size_t>(r)];
      bool broken = false;
      for (topo::HostId h : member.tree.nodes) {
        if (!network.host_alive(h)) {
          broken = true;
          break;
        }
      }
      if (!broken) {
        // Both lists are sorted: linear intersection test.
        const auto& foot = sel.footprint[static_cast<std::size_t>(r)];
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < foot.size() && j < dead.size()) {
          if (foot[i] == dead[j]) {
            broken = true;
            break;
          }
          foot[i] < dead[j] ? ++i : ++j;
        }
      }
      sel.dead_member[static_cast<std::size_t>(r)] = broken ? 1 : 0;
    }
  };

  const auto score_snapshot = [&] {
    refresh_dead_members();
    for (std::int32_t r = 0; r < R; ++r) {
      std::int64_t s = 0;
      for (std::int32_t c : sel.footprint[static_cast<std::size_t>(r)]) {
        s += network.channel_block_ns(c) -
             sel.prev_block[static_cast<std::size_t>(c)];
      }
      std::int64_t backlog = 0;
      for (topo::HostId h : sel.senders[static_cast<std::size_t>(r)]) {
        backlog += nis.at(h)->injection_queue_depth() * t_snd_ns;
      }
      sel.queue_ns[static_cast<std::size_t>(r)] = backlog;
      s += backlog;
      if (sel.dead_member[static_cast<std::size_t>(r)] != 0) {
        s += kDeadPenalty;
      }
      sel.snap[static_cast<std::size_t>(r)] = s;
      for (std::int32_t b = 0; b < 64; b += 8) {
        sel.digest ^= static_cast<std::uint64_t>(s >> b) & 0xffu;
        sel.digest *= 1099511628211ull;  // FNV-1a prime
      }
    }
    for (std::int32_t c : sel.union_channels) {
      sel.prev_block[static_cast<std::size_t>(c)] =
          network.channel_block_ns(c);
    }
    ++sel.snapshots;
  };

  // Hotness threshold on the forwarder backlog: the stream's own copies
  // never queue more than about one send per participant fabric-wide
  // (each in-flight packet occupies one coprocessor at a time), so a
  // member whose forwarders hold kHotQueueFactor × participants' worth
  // of queued sends is buried under exogenous traffic, not its own.
  constexpr std::int64_t kHotQueueFactor = 2;
  const std::int64_t hot_queue_ns =
      kHotQueueFactor * static_cast<std::int64_t>(base.size()) * t_snd_ns;
  const auto member_hot = [&](std::size_t r) {
    return sel.dead_member[r] != 0 || sel.queue_ns[r] > hot_queue_ns;
  };
  const auto select_member = [&](std::int32_t g) -> std::size_t {
    const auto home = static_cast<std::size_t>(g % R);
    std::size_t best = home;
    if (member_hot(home)) {
      // The static member is decisively congested or broken: cover with
      // the cheapest clean member — score plus a sent-count balance
      // term, strict-< argmin over the (g + i) mod R probe order so
      // covering work round-robins when scores tie. If every member is
      // hot there is nothing better to do than stay on the rotation.
      std::int64_t best_score = std::numeric_limits<std::int64_t>::max();
      for (std::int32_t i = 0; i < R; ++i) {
        const auto r = static_cast<std::size_t>((g + i) % R);
        if (member_hot(r)) continue;
        const std::int64_t score = sel.snap[r] + sel.sent[r] * w_pkt;
        if (score < best_score) {
          best = r;
          best_score = score;
        }
      }
    }
    ++sel.sent[best];
    ++sel.issued;
    return best;
  };

  // Telemetry snapshots: a self-rescheduling chain with one steady-state
  // packet period between samples — long enough for fresh block-time
  // deltas, short enough to react within a handful of packets. Serial
  // and sharded engines see identical data at each instant: the sharded
  // chain rides globals (all shards parked at the barrier, same-time
  // shard events not yet fired), the serial chain replays one
  // setup-reserved FIFO key (firing before any same-time runtime event)
  // — both orderings put the sample before the instant's dispatches.
  // The chain stops once the stream has fully issued or the root died;
  // at most one trailing no-op snapshot fires, identically in both
  // engines, so end_time() parity holds.
  const sim::Time snap_period = sim::Time::ns(w_pkt);
  std::function<void()> snapshot_tick;
  sim::Time next_snap = snap_period;
  std::uint64_t snap_key = 0;
  if (adaptive) snap_key = fabric.reserve_coordination_key();
  const auto schedule_snapshot = [&] {
    fabric.schedule_coordinated(next_snap, snap_key, snapshot_tick);
  };
  snapshot_tick = [&] {
    if (sel.issued >= S || !network.host_alive(root)) return;
    score_snapshot();
    next_snap = next_snap + snap_period;
    schedule_snapshot();
  };
  if (adaptive) schedule_snapshot();

  std::vector<net::MessageId> stream_messages;
  for (std::int32_t r = 0; r < R; ++r) {
    stream_messages.push_back(static_cast<net::MessageId>(r + 1));
  }
  if (adaptive) {
    sim_for_host(root).schedule_at(
        sim::Time::zero(),
        [&nis, &hosts, &select_member, stream_messages, root, S] {
          static_cast<netif::FpfsNi&>(*nis.at(root))
              .start_streaming_adaptive(stream_messages, S, *hosts.at(root),
                                        select_member);
        });
  } else {
    sim_for_host(root).schedule_at(
        sim::Time::zero(), [&nis, &hosts, stream_messages, root] {
          static_cast<netif::FpfsNi&>(*nis.at(root))
              .start_streaming(stream_messages, *hosts.at(root));
        });
  }
  for (std::int32_t f = 0; f < F; ++f) {
    const auto& flow = config_.background[static_cast<std::size_t>(f)];
    const auto message = static_cast<net::MessageId>(R + 1 + f);
    sim_for_host(flow.src).schedule_at(
        flow.start, [&nis, &hosts, src = flow.src, message] {
          nis.at(src)->start_from_host(message, *hosts.at(src));
        });
  }
  run_sim();
  if (network.in_flight() != 0) {
    throw std::runtime_error(
        "MulticastEngine: network deadlock (worms still in flight)");
  }

  StreamingResult result;
  result.stream_packets = S;
  result.rotation_requested = plan.requested;
  result.rotation_used = R;
  result.overlap_mean = plan.overlap_mean();
  result.overlap_max = plan.overlap_max();

  // Repair. All fault events fire during the first drain (plans are
  // scheduled up front), so the dead set below is final.
  //
  // Root alive: patch the rotation set incrementally (replan_rotation —
  // members untouched by the dead set survive verbatim, broken members
  // are re-planned over their surviving chain) and resend only the
  // *missing* stream indices, round-robin across the patched members, so
  // the repair phase keeps R-way rotation throughput instead of
  // collapsing to one whole-stream resend down a single surviving tree.
  //
  // Root dead: per-packet initiator handoff — for every missing index
  // the lowest-ranked surviving destination that holds it becomes that
  // packet's initiator; indices group by initiator into handoff
  // messages. Indices no survivor holds died with the root (honest
  // partial). Repair and handoff messages ride route class 0: the
  // primary table is the one rebuilt around the faults, and a repair
  // tree's edges are not the edges a member's salted footprint cleared.
  topo::HostId eff_root = root;
  if ((faulty || lossy) && config_.repair.max_attempts > 0) {
    std::int32_t next_message = R + F + 1;
    const auto dead = dead_switch_channels(
        topology_, network.fault_state(), routes_.virtual_channels());
    std::vector<topo::HostId> dead_hosts;
    for (topo::HostId h : base.nodes) {
      if (!network.host_alive(h)) dead_hosts.push_back(h);
    }
    core::RotationPlan live;
    if (network.host_alive(root)) {
      auto patched = core::replan_rotation(topology_, network.routes(), plan,
                                           dead, dead_hosts);
      live = std::move(patched.plan);
      result.replans = patched.rebuilt;
    }
    const std::int32_t fanout = std::max(plan.fanout_bound, 1);
    const auto needs = [&](topo::HostId h) {
      return h != root && seen_count[static_cast<std::size_t>(h)] < S;
    };
    for (std::int32_t round = 1; round <= config_.repair.max_attempts;
         ++round) {
      const sim::Time wait =
          config_.repair.backoff * (sim::Time::rep{1} << (round - 1));
      const sim::Time start_at = end_time() + wait;
      bool scheduled = false;
      const auto launch = [&](topo::HostId initiator,
                              const std::vector<topo::HostId>& order,
                              std::vector<std::int32_t> share) {
        const auto rtree = plan_repair_tree(
            initiator, order, needs,
            [&](topo::HostId h) { return network.reachable(initiator, h); },
            fanout);
        if (!rtree) return false;
        const auto message = static_cast<net::MessageId>(next_message++);
        const auto count = static_cast<std::int32_t>(share.size());
        for (topo::HostId h : rtree->nodes) {
          netif::ForwardingEntry entry;
          entry.children = rtree->children.at(h);
          entry.packet_count = count;
          entry.is_destination = (h != initiator);
          entry.route_class = 0;
          nis.at(h)->install(message, entry);
        }
        result.packets_resent += count;
        msg_stream.push_back(MsgMap{1, 0, std::move(share)});
        sim_for_host(initiator)
            .schedule_at(start_at, [&nis, &hosts, initiator, message] {
              nis.at(initiator)->start_from_host(message,
                                                 *hosts.at(initiator));
            });
        return true;
      };
      if (network.host_alive(root)) {
        // Union of missing indices over still-needy reachable dests.
        std::vector<std::uint8_t> miss(static_cast<std::size_t>(S), 0);
        for (topo::HostId h : base.nodes) {
          if (!needs(h) || !network.reachable(root, h)) continue;
          const auto& bits = seen[static_cast<std::size_t>(h)];
          for (std::int32_t g = 0; g < S; ++g) {
            if (bits[static_cast<std::size_t>(g)] == 0) {
              miss[static_cast<std::size_t>(g)] = 1;
            }
          }
        }
        std::vector<std::int32_t> missing;
        for (std::int32_t g = 0; g < S; ++g) {
          if (miss[static_cast<std::size_t>(g)] != 0) missing.push_back(g);
        }
        if (missing.empty()) break;
        const std::int32_t M = std::max(live.size(), 1);
        // Adaptive: rescore the patched members — rank them by the
        // cumulative block time their footprints absorbed (stable by
        // index), so the larger round-robin shares land on the members
        // the fabric treated best. Static keeps plan order.
        std::vector<std::size_t> rank(static_cast<std::size_t>(M));
        for (std::size_t i = 0; i < rank.size(); ++i) rank[i] = i;
        if (adaptive && !live.members.empty()) {
          std::vector<std::int64_t> cost(live.members.size(), 0);
          for (std::size_t i = 0; i < live.members.size(); ++i) {
            for (std::int32_t c : live.members[i].footprint) {
              cost[i] += network.channel_block_ns(c);
            }
          }
          std::stable_sort(rank.begin(), rank.end(),
                           [&cost](std::size_t a, std::size_t b) {
                             return cost[a] < cost[b];
                           });
        }
        for (std::int32_t i = 0; i < M; ++i) {
          std::vector<std::int32_t> share;
          for (std::size_t j = static_cast<std::size_t>(i);
               j < missing.size(); j += static_cast<std::size_t>(M)) {
            share.push_back(missing[j]);
          }
          if (share.empty()) continue;
          const std::size_t mi = rank[static_cast<std::size_t>(i)];
          const std::vector<topo::HostId>& order =
              live.members.empty() ? base.nodes
                                   : live.members[mi].tree.nodes;
          if (launch(root, order, std::move(share))) {
            ++result.repairs;
            scheduled = true;
          }
        }
      } else if (config_.repair.root_handoff) {
        // The reachability reference after the root died: the
        // lowest-ranked surviving destination holding any packet.
        if (eff_root == root) {
          for (topo::HostId h : base.nodes) {
            if (h != root && network.host_alive(h) &&
                seen_count[static_cast<std::size_t>(h)] > 0) {
              eff_root = h;
              break;
            }
          }
          if (eff_root == root) break;  // the stream died with the root
        }
        // Per-packet election over surviving holders, grouped by
        // initiator. base.nodes order makes the election deterministic.
        std::vector<std::pair<topo::HostId, std::vector<std::int32_t>>>
            groups;
        std::vector<std::uint8_t> miss(static_cast<std::size_t>(S), 0);
        for (topo::HostId h : base.nodes) {
          if (!needs(h) || !network.host_alive(h)) continue;
          const auto& bits = seen[static_cast<std::size_t>(h)];
          for (std::int32_t g = 0; g < S; ++g) {
            if (bits[static_cast<std::size_t>(g)] == 0) {
              miss[static_cast<std::size_t>(g)] = 1;
            }
          }
        }
        for (std::int32_t g = 0; g < S; ++g) {
          if (miss[static_cast<std::size_t>(g)] == 0) continue;
          topo::HostId init = topo::kInvalidId;
          for (topo::HostId h : base.nodes) {
            if (h == root || !network.host_alive(h)) continue;
            if (seen[static_cast<std::size_t>(h)]
                    [static_cast<std::size_t>(g)] != 0) {
              init = h;
              break;
            }
          }
          if (init == topo::kInvalidId) continue;  // died with the root
          auto it = std::find_if(groups.begin(), groups.end(),
                                 [init](const auto& grp) {
                                   return grp.first == init;
                                 });
          if (it == groups.end()) {
            groups.emplace_back(init, std::vector<std::int32_t>{});
            it = groups.end() - 1;
          }
          it->second.push_back(g);
        }
        if (groups.empty()) break;
        for (auto& [init, share] : groups) {
          if (launch(init, base.nodes, std::move(share))) {
            ++result.root_handoffs;
            scheduled = true;
          }
        }
      }
      if (!scheduled) break;
      run_sim();
      if (network.in_flight() != 0) {
        throw std::runtime_error(
            "MulticastEngine: network deadlock (worms still in flight)");
      }
    }
  }
  result.effective_root = eff_root;

  // Merge per-shard logs; (time, host, index) keys are unique, so the
  // sort gives one total order regardless of shard or thread count.
  std::vector<std::tuple<topo::HostId, std::int32_t, sim::Time>> packets_all;
  std::vector<std::pair<topo::HostId, sim::Time>> host_all;
  for (const auto& log : logs) {
    packets_all.insert(packets_all.end(), log->packets.begin(),
                       log->packets.end());
    host_all.insert(host_all.end(), log->host_done.begin(),
                    log->host_done.end());
  }
  std::sort(packets_all.begin(), packets_all.end(),
            [](const auto& a, const auto& b) {
              return std::make_tuple(std::get<2>(a), std::get<0>(a),
                                     std::get<1>(a)) <
                     std::make_tuple(std::get<2>(b), std::get<0>(b),
                                     std::get<1>(b));
            });
  std::sort(host_all.begin(), host_all.end(),
            [](const auto& a, const auto& b) {
              return std::make_tuple(a.second, a.first) <
                     std::make_tuple(b.second, b.first);
            });

  if (!packets_all.empty()) {
    result.ni_makespan = std::get<2>(packets_all.back());
  }
  if (!host_all.empty()) result.makespan = host_all.back().second;
  result.packets_delivered = static_cast<std::int64_t>(packets_all.size());

  // Per-destination in-order completion: packet g completes once
  // packets 0..g have all arrived, i.e. at the running max of their
  // arrival times along the stream. The gaps between consecutive
  // in-order completions are what an in-order consumer stalls on; p99
  // is pooled over every destination's gap sequence.
  {
    std::unordered_map<topo::HostId, std::vector<sim::Time>> arrival;
    for (topo::HostId h : base.nodes) {
      if (h != root &&
          seen_count[static_cast<std::size_t>(h)] == S) {
        arrival.emplace(h, std::vector<sim::Time>(static_cast<std::size_t>(S)));
      }
    }
    for (const auto& [h, g, t] : packets_all) {
      if (auto it = arrival.find(h); it != arrival.end()) {
        it->second[static_cast<std::size_t>(g)] = t;
      }
    }
    std::vector<sim::Time> gaps;
    for (topo::HostId h : base.nodes) {
      const auto it = arrival.find(h);
      if (it == arrival.end()) continue;
      sim::Time inorder = it->second.front();
      for (std::int32_t g = 1; g < S; ++g) {
        const sim::Time next =
            std::max(inorder, it->second[static_cast<std::size_t>(g)]);
        gaps.push_back(next - inorder);
        inorder = next;
      }
    }
    if (!gaps.empty()) {
      std::sort(gaps.begin(), gaps.end());
      const auto n = gaps.size();
      const std::size_t ix = std::min(n - 1, (n * 99 + 99) / 100 - 1);
      result.p99_gap = gaps[ix];
    }
  }

  std::unordered_map<topo::HostId, sim::Time> done;
  for (const auto& [h, t] : host_all) done.emplace(h, t);
  for (topo::HostId h : base.nodes) {
    if (h == root) continue;
    DestinationStatus st;
    st.host = h;
    st.reachable = network.reachable(eff_root, h);
    if (auto it = done.find(h); it != done.end()) {
      st.delivered = true;
      st.completed_at = it->second;
    }
    result.destinations.push_back(st);
  }
  const auto expected = result.destinations.size();
  if (!faulty && !lossy &&
      static_cast<std::size_t>(
          std::count_if(result.destinations.begin(),
                        result.destinations.end(),
                        [](const DestinationStatus& d) {
                          return d.delivered;
                        })) != expected) {
    throw std::runtime_error(
        "MulticastEngine: streaming broadcast did not complete");
  }
  {
    std::size_t delivered = 0;
    for (const auto& d : result.destinations) delivered += d.delivered ? 1 : 0;
    result.outcome = (expected == 0 || delivered == expected)
                         ? Outcome::kComplete
                         : (delivered == 0 ? Outcome::kFailed
                                           : Outcome::kPartial);
  }

  if (result.ni_makespan > sim::Time::zero()) {
    const double flits =
        static_cast<double>(result.packets_delivered) *
        (static_cast<double>(config_.network.packet_bytes) / 8.0);
    result.flits_per_us = flits / result.ni_makespan.as_us();
  }
  result.selection = adaptive ? Selection::kAdaptive : Selection::kStatic;
  result.member_packets.assign(static_cast<std::size_t>(R), 0);
  result.member_ni_work_us.assign(static_cast<std::size_t>(R), 0.0);
  for (std::int32_t r = 0; r < R; ++r) {
    const std::int64_t n =
        adaptive ? sel.sent[static_cast<std::size_t>(r)]
                 : static_cast<std::int64_t>((S - r + R - 1) / R);
    result.member_packets[static_cast<std::size_t>(r)] = n;
    const auto& member = plan.members[static_cast<std::size_t>(r)];
    std::int64_t bottleneck_ns = 0;
    for (topo::HostId h : member.tree.nodes) {
      std::int64_t work =
          static_cast<std::int64_t>(member.tree.children.at(h).size()) *
          t_snd_ns;
      if (h != root) work += config_.params.t_rcv.count_ns();
      bottleneck_ns = std::max(bottleneck_ns, work);
    }
    result.member_ni_work_us[static_cast<std::size_t>(r)] =
        static_cast<double>(n) * static_cast<double>(bottleneck_ns) / 1000.0;
  }
  result.telemetry_snapshots = adaptive ? sel.snapshots : 0;
  result.telemetry_digest = adaptive ? sel.digest : 0;
  result.total_channel_block_time = network.total_block_time();
  result.events_dispatched = fabric.events_dispatched();
  if (sharded_mode) {
    result.window_ns = window.count_ns();
    result.barrier_wall_ns = fabric.barrier_wall_ns();
    result.windows_planned = fabric.windows_planned();
    record_switch_load(network.switch_load());
  }
  return result;
}

}  // namespace nimcast::mcast
