#include "mcast/multicast_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "netif/conventional_ni.hpp"
#include "netif/reliable_ni.hpp"
#include "netif/host.hpp"
#include "netif/smart_ni.hpp"
#include "network/wormhole_network.hpp"
#include "sim/simulator.hpp"

namespace nimcast::mcast {

const char* to_string(NiStyle s) {
  switch (s) {
    case NiStyle::kConventional: return "conventional";
    case NiStyle::kSmartFcfs: return "smart-fcfs";
    case NiStyle::kSmartFpfs: return "smart-fpfs";
    case NiStyle::kReliableFpfs: return "reliable-fpfs";
  }
  return "?";
}

double MulticastResult::peak_buffer() const {
  double best = 0.0;
  for (const auto& b : buffers) best = std::max(best, b.peak_packets);
  return best;
}

double MulticastResult::max_buffer_integral() const {
  double best = 0.0;
  for (const auto& b : buffers) best = std::max(best, b.packet_us_integral);
  return best;
}

MulticastEngine::MulticastEngine(const topo::Topology& topology,
                                 const routing::RouteTable& routes,
                                 Config config, sim::Trace* trace)
    : topology_{topology}, routes_{routes}, config_{config}, trace_{trace} {}

MulticastResult MulticastEngine::run(const core::HostTree& tree,
                                     std::int32_t packet_count) const {
  MultiMulticastResult batch =
      run_many({MulticastSpec{tree, packet_count, sim::Time::zero()}});
  MulticastResult result = std::move(batch.operations.front());
  result.buffers = std::move(batch.buffers);
  result.total_channel_block_time = batch.total_channel_block_time;
  return result;
}

MultiMulticastResult MulticastEngine::run_many(
    const std::vector<MulticastSpec>& specs) const {
  if (specs.empty()) {
    throw std::invalid_argument("run_many: no operations");
  }
  std::unordered_set<topo::HostId> participants;
  for (const auto& spec : specs) {
    if (spec.packet_count < 1) {
      throw std::invalid_argument("run_many: packet_count < 1");
    }
    if (spec.tree.size() < 1) {
      throw std::invalid_argument("run_many: empty tree");
    }
    for (topo::HostId h : spec.tree.nodes) {
      if (h < 0 || h >= topology_.num_hosts()) {
        throw std::invalid_argument("run_many: host out of range");
      }
      participants.insert(h);
    }
  }

  sim::Simulator simctx;
  net::WormholeNetwork network{simctx, topology_, routes_, config_.network,
                               trace_};

  std::unordered_map<topo::HostId, std::unique_ptr<netif::NetworkInterface>>
      nis;
  std::unordered_map<topo::HostId, std::unique_ptr<netif::Host>> hosts;
  for (topo::HostId h : participants) {
    switch (config_.style) {
      case NiStyle::kConventional:
        nis.emplace(h, std::make_unique<netif::ConventionalNi>(
                           simctx, network, config_.params, h, trace_));
        break;
      case NiStyle::kSmartFcfs:
        nis.emplace(h, std::make_unique<netif::FcfsNi>(
                           simctx, network, config_.params, h, trace_));
        break;
      case NiStyle::kSmartFpfs:
        nis.emplace(h, std::make_unique<netif::FpfsNi>(
                           simctx, network, config_.params, h, trace_));
        break;
      case NiStyle::kReliableFpfs:
        nis.emplace(h, std::make_unique<netif::ReliableFpfsNi>(
                           simctx, network, config_.params,
                           config_.reliability, h, trace_));
        break;
    }
    hosts.emplace(h, std::make_unique<netif::Host>(simctx, h, config_.params));
  }

  // Forwarding state: one message id per operation.
  for (std::size_t op = 0; op < specs.size(); ++op) {
    const auto message = static_cast<net::MessageId>(op + 1);
    const auto& spec = specs[op];
    for (topo::HostId h : spec.tree.nodes) {
      netif::ForwardingEntry entry;
      entry.children = spec.tree.children.at(h);
      entry.packet_count = spec.packet_count;
      entry.is_destination = (h != spec.tree.root);
      nis.at(h)->install(message, entry);
    }
  }

  MultiMulticastResult batch;
  batch.operations.resize(specs.size());
  for (auto& [h, ni] : nis) {
    ni->deliver_to = [&nis](topo::HostId dest, const net::Packet& p) {
      nis.at(dest)->deliver(p);
    };
    ni->on_message_at_ni = [&, this](topo::HostId dest, net::MessageId msg) {
      const auto op = static_cast<std::size_t>(msg - 1);
      auto& result = batch.operations[op];
      result.ni_latency =
          std::max(result.ni_latency, simctx.now() - specs[op].start);
      auto& host = *hosts.at(dest);
      host.software_receive([&, dest, msg, op] {
        batch.operations[op].completions.emplace_back(dest, simctx.now());
        nis.at(dest)->after_host_receive(msg, *hosts.at(dest));
      });
    };
  }

  for (std::size_t op = 0; op < specs.size(); ++op) {
    const auto message = static_cast<net::MessageId>(op + 1);
    const topo::HostId root = specs[op].tree.root;
    simctx.schedule_at(specs[op].start, [&nis, &hosts, root, message] {
      nis.at(root)->start_from_host(message, *hosts.at(root));
    });
  }
  simctx.run();

  if (network.in_flight() != 0) {
    throw std::runtime_error(
        "MulticastEngine: network deadlock (worms still in flight)");
  }

  for (std::size_t op = 0; op < specs.size(); ++op) {
    auto& result = batch.operations[op];
    if (result.completions.size() !=
        static_cast<std::size_t>(specs[op].tree.size() - 1)) {
      throw std::runtime_error(
          "MulticastEngine: not every destination completed (op " +
          std::to_string(op) + ")");
    }
    for (const auto& [h, t] : result.completions) {
      result.latency = std::max(result.latency, t - specs[op].start);
      batch.makespan = std::max(batch.makespan, t);
    }
    result.packets_delivered =
        static_cast<std::int64_t>(specs[op].tree.size() - 1) *
        specs[op].packet_count;
  }
  for (topo::HostId h : participants) {
    const auto& buf = nis.at(h)->buffer();
    batch.buffers.push_back(BufferStat{h, buf.peak(), buf.integral()});
  }
  batch.total_channel_block_time = network.total_block_time();
  return batch;
}

}  // namespace nimcast::mcast
