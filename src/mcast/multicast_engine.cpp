#include "mcast/multicast_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/kbinomial.hpp"
#include "netif/conventional_ni.hpp"
#include "netif/reliable_ni.hpp"
#include "netif/host.hpp"
#include "netif/smart_ni.hpp"
#include "network/wormhole_network.hpp"
#include "routing/repair.hpp"
#include "sim/simulator.hpp"

namespace nimcast::mcast {

const char* to_string(NiStyle s) {
  switch (s) {
    case NiStyle::kConventional: return "conventional";
    case NiStyle::kSmartFcfs: return "smart-fcfs";
    case NiStyle::kSmartFpfs: return "smart-fpfs";
    case NiStyle::kReliableFpfs: return "reliable-fpfs";
  }
  return "?";
}

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kComplete: return "complete";
    case Outcome::kPartial: return "partial";
    case Outcome::kFailed: return "failed";
  }
  return "?";
}

std::int32_t MulticastResult::delivered_count() const {
  std::int32_t n = 0;
  for (const auto& d : destinations) n += d.delivered ? 1 : 0;
  return n;
}

double MulticastResult::delivery_ratio() const {
  if (destinations.empty()) return 1.0;
  return static_cast<double>(delivered_count()) /
         static_cast<double>(destinations.size());
}

double MulticastResult::peak_buffer() const {
  double best = 0.0;
  for (const auto& b : buffers) best = std::max(best, b.peak_packets);
  return best;
}

double MulticastResult::max_buffer_integral() const {
  double best = 0.0;
  for (const auto& b : buffers) best = std::max(best, b.packet_us_integral);
  return best;
}

MulticastEngine::MulticastEngine(const topo::Topology& topology,
                                 const routing::RouteTable& routes,
                                 Config config, sim::Trace* trace)
    : topology_{topology}, routes_{routes}, config_{config}, trace_{trace} {}

MulticastResult MulticastEngine::run(const core::HostTree& tree,
                                     std::int32_t packet_count) const {
  MultiMulticastResult batch =
      run_many({MulticastSpec{tree, packet_count, sim::Time::zero()}});
  MulticastResult result = std::move(batch.operations.front());
  result.buffers = std::move(batch.buffers);
  result.total_channel_block_time = batch.total_channel_block_time;
  result.retransmissions = batch.retransmissions;
  result.events_dispatched = batch.events_dispatched;
  return result;
}

MultiMulticastResult MulticastEngine::run_many(
    const std::vector<MulticastSpec>& specs) const {
  if (specs.empty()) {
    throw std::invalid_argument("run_many: no operations");
  }
  std::unordered_set<topo::HostId> participants;
  for (const auto& spec : specs) {
    if (spec.packet_count < 1) {
      throw std::invalid_argument("run_many: packet_count < 1");
    }
    if (spec.tree.size() < 1) {
      throw std::invalid_argument("run_many: empty tree");
    }
    for (topo::HostId h : spec.tree.nodes) {
      if (h < 0 || h >= topology_.num_hosts()) {
        throw std::invalid_argument("run_many: host out of range");
      }
      participants.insert(h);
    }
  }

  const bool faulty = !config_.network.faults.empty();

  sim::Simulator simctx;
  net::WormholeNetwork network{simctx, topology_, routes_, config_.network,
                               trace_};

  // Fault-time route repair: rebuild up*/down* on the surviving subgraph
  // and rebind. The hook fires on *every* fault event — failures AND
  // kLinkUp recoveries — each with a fresh epoch, so a recovered link
  // rejoins the routes immediately instead of staying excised until the
  // next failure. Multi-VC tables (dateline tori) keep their original
  // routes — the rebuilt router is single-VC and would change channel
  // numbering — so they degrade without rerouting.
  std::vector<std::unique_ptr<routing::RouteTable>> repaired_tables;
  if (faulty && config_.repair.reroute && routes_.virtual_channels() == 1) {
    network.on_fault = [&](const net::FaultEvent&) {
      auto table = routing::rebuild_updown(
          topology_, network.fault_state(),
          static_cast<std::int32_t>(repaired_tables.size()) + 1);
      network.rebind_routes(*table);
      repaired_tables.push_back(std::move(table));
    };
  }

  // A zero retx_timeout asks for the derived default: size it to the
  // deepest tree edge and widest fan-out actually in this batch.
  netif::ReliabilityParams reliability = config_.reliability;
  if (config_.style == NiStyle::kReliableFpfs &&
      reliability.retx_timeout == sim::Time::zero()) {
    std::size_t max_hops = 1;
    std::int32_t max_fanout = 1;
    for (const auto& spec : specs) {
      for (topo::HostId h : spec.tree.nodes) {
        const auto& kids = spec.tree.children.at(h);
        max_fanout =
            std::max(max_fanout, static_cast<std::int32_t>(kids.size()));
        for (topo::HostId c : kids) {
          max_hops = std::max(max_hops, routes_.hops(h, c));
        }
      }
    }
    reliability.retx_timeout = netif::derived_retx_timeout(
        config_.params, config_.network, max_hops, max_fanout,
        reliability.t_ack);
  }

  std::unordered_map<topo::HostId, std::unique_ptr<netif::NetworkInterface>>
      nis;
  std::unordered_map<topo::HostId, std::unique_ptr<netif::Host>> hosts;
  for (topo::HostId h : participants) {
    switch (config_.style) {
      case NiStyle::kConventional:
        nis.emplace(h, std::make_unique<netif::ConventionalNi>(
                           simctx, network, config_.params, h, trace_));
        break;
      case NiStyle::kSmartFcfs:
        nis.emplace(h, std::make_unique<netif::FcfsNi>(
                           simctx, network, config_.params, h, trace_));
        break;
      case NiStyle::kSmartFpfs:
        nis.emplace(h, std::make_unique<netif::FpfsNi>(
                           simctx, network, config_.params, h, trace_));
        break;
      case NiStyle::kReliableFpfs:
        nis.emplace(h, std::make_unique<netif::ReliableFpfsNi>(
                           simctx, network, config_.params, reliability, h,
                           trace_));
        break;
    }
    hosts.emplace(h, std::make_unique<netif::Host>(simctx, h, config_.params));
  }

  // Forwarding state: one message id per operation.
  for (std::size_t op = 0; op < specs.size(); ++op) {
    const auto message = static_cast<net::MessageId>(op + 1);
    const auto& spec = specs[op];
    for (topo::HostId h : spec.tree.nodes) {
      netif::ForwardingEntry entry;
      entry.children = spec.tree.children.at(h);
      entry.packet_count = spec.packet_count;
      entry.is_destination = (h != spec.tree.root);
      nis.at(h)->install(message, entry);
    }
  }

  MultiMulticastResult batch;
  batch.operations.resize(specs.size());

  // Message id -> operation index. Repair rounds mint fresh message ids
  // for the same operation, so the map grows past specs.size().
  std::vector<std::size_t> msg_op(specs.size());
  for (std::size_t op = 0; op < specs.size(); ++op) msg_op[op] = op;
  // Destinations whose NI has completed the operation (under any of its
  // message ids) — guards against a repair resend double-counting a host
  // that made it through after all.
  std::vector<std::unordered_set<topo::HostId>> arrived(specs.size());

  for (auto& [h, ni] : nis) {
    ni->on_message_at_ni = [&, this](topo::HostId dest, net::MessageId msg) {
      const auto op = msg_op[static_cast<std::size_t>(msg - 1)];
      if (!arrived[op].insert(dest).second) return;
      auto& result = batch.operations[op];
      result.ni_latency =
          std::max(result.ni_latency, simctx.now() - specs[op].start);
      auto& host = *hosts.at(dest);
      host.software_receive([&, dest, msg, op] {
        batch.operations[op].completions.emplace_back(dest, simctx.now());
        nis.at(dest)->after_host_receive(msg, *hosts.at(dest));
      });
    };
  }

  for (std::size_t op = 0; op < specs.size(); ++op) {
    const auto message = static_cast<net::MessageId>(op + 1);
    const topo::HostId root = specs[op].tree.root;
    simctx.schedule_at(specs[op].start, [&nis, &hosts, root, message] {
      nis.at(root)->start_from_host(message, *hosts.at(root));
    });
  }
  simctx.run();

  if (network.in_flight() != 0) {
    throw std::runtime_error(
        "MulticastEngine: network deadlock (worms still in flight)");
  }

  // Tree repair: re-parent destinations orphaned by faults. Each round
  // rebuilds a k-binomial tree over the still-missing, still-reachable
  // destinations in their contention-free (nodes) order — failed hosts
  // are simply excised — and resends under a fresh message id.
  if (faulty && config_.repair.max_attempts > 0) {
    auto next_message = static_cast<std::int32_t>(specs.size()) + 1;
    for (std::int32_t round = 1; round <= config_.repair.max_attempts;
         ++round) {
      bool scheduled_any = false;
      for (std::size_t op = 0; op < specs.size(); ++op) {
        const auto& spec = specs[op];
        const topo::HostId root = spec.tree.root;
        if (!network.host_alive(root)) continue;
        core::Chain chain;
        chain.push_back(root);
        for (topo::HostId h : spec.tree.nodes) {
          if (h == root || arrived[op].contains(h)) continue;
          if (!network.reachable(root, h)) continue;
          chain.push_back(h);
        }
        if (chain.size() < 2) continue;
        const auto n2 = static_cast<std::int32_t>(chain.size());
        const std::int32_t k =
            std::clamp(spec.tree.root_children(), 1, std::max(n2 - 1, 1));
        const core::HostTree rtree =
            core::HostTree::bind(core::make_kbinomial(n2, k), chain);
        const auto message = static_cast<net::MessageId>(next_message++);
        msg_op.push_back(op);
        for (topo::HostId h : rtree.nodes) {
          netif::ForwardingEntry entry;
          entry.children = rtree.children.at(h);
          entry.packet_count = spec.packet_count;
          entry.is_destination = (h != root);
          nis.at(h)->install(message, entry);
        }
        ++batch.operations[op].repairs;
        const sim::Time wait =
            config_.repair.backoff * (sim::Time::rep{1} << (round - 1));
        simctx.schedule_at(simctx.now() + wait,
                           [&nis, &hosts, root, message] {
                             nis.at(root)->start_from_host(message,
                                                           *hosts.at(root));
                           });
        scheduled_any = true;
      }
      if (!scheduled_any) break;
      simctx.run();
      if (network.in_flight() != 0) {
        throw std::runtime_error(
            "MulticastEngine: network deadlock (worms still in flight)");
      }
    }
  }

  for (std::size_t op = 0; op < specs.size(); ++op) {
    auto& result = batch.operations[op];
    const auto& spec = specs[op];
    const auto expected = static_cast<std::size_t>(spec.tree.size() - 1);
    if (!faulty && result.completions.size() != expected) {
      throw std::runtime_error(
          "MulticastEngine: not every destination completed (op " +
          std::to_string(op) + ")");
    }
    std::unordered_map<topo::HostId, sim::Time> done;
    for (const auto& [h, t] : result.completions) done.emplace(h, t);
    for (topo::HostId h : spec.tree.nodes) {
      if (h == spec.tree.root) continue;
      DestinationStatus st;
      st.host = h;
      st.reachable = network.reachable(spec.tree.root, h);
      if (auto it = done.find(h); it != done.end()) {
        st.delivered = true;
        st.completed_at = it->second;
      }
      result.destinations.push_back(st);
    }
    const auto delivered = static_cast<std::size_t>(result.delivered_count());
    result.outcome = (expected == 0 || delivered == expected)
                         ? Outcome::kComplete
                         : (delivered == 0 ? Outcome::kFailed
                                           : Outcome::kPartial);
    for (const auto& [h, t] : result.completions) {
      result.latency = std::max(result.latency, t - spec.start);
      batch.makespan = std::max(batch.makespan, t);
    }
    result.packets_delivered =
        static_cast<std::int64_t>(result.completions.size()) *
        spec.packet_count;
  }
  for (topo::HostId h : participants) {
    const auto& buf = nis.at(h)->buffer();
    batch.buffers.push_back(BufferStat{h, buf.peak(), buf.integral()});
  }
  batch.total_channel_block_time = network.total_block_time();
  batch.packets_killed = network.packets_killed();
  batch.faults_applied = network.faults_applied();
  batch.events_dispatched =
      static_cast<std::int64_t>(simctx.events_dispatched());
  if (config_.style == NiStyle::kReliableFpfs) {
    for (const auto& [h, ni] : nis) {
      const auto* rni = static_cast<const netif::ReliableFpfsNi*>(ni.get());
      batch.retransmissions += rni->retransmissions();
      batch.deliveries_failed += rni->deliveries_failed();
    }
  }
  return batch;
}

}  // namespace nimcast::mcast
