#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/host_tree.hpp"
#include "core/rotation.hpp"
#include "netif/reliable_ni.hpp"
#include "netif/system_params.hpp"
#include "network/network_config.hpp"
#include "routing/route_table.hpp"
#include "sim/sim_time.hpp"
#include "sim/trace.hpp"
#include "topology/topology.hpp"

namespace nimcast::mcast {

/// Which network-interface architecture the system runs (paper Sections
/// 2.3 vs 3.1/3.2).
enum class NiStyle : std::uint8_t {
  kConventional,   ///< host forwards every copy
  kSmartFcfs,      ///< NI forwards, child-major
  kSmartFpfs,      ///< NI forwards, packet-major
  kReliableFpfs,   ///< FPFS + hop-by-hop ACK/retransmit (lossy networks)
};

[[nodiscard]] const char* to_string(NiStyle s);

/// Per-packet rotation-member policy for run_streaming.
enum class Selection : std::uint8_t {
  /// Packet g rides member g mod R — the statically planned rotation.
  kStatic,
  /// Packet g rides the member with the lowest congestion score
  /// (channel block-time snapshot + NI injection-queue depth over the
  /// member's footprint, plus a per-packet balance term). Ties break
  /// lexicographically from g mod R, so an idle fabric reproduces the
  /// static stream byte-for-byte. See docs/perf.md, "Adaptive tree
  /// selection".
  kAdaptive,
};

[[nodiscard]] const char* to_string(Selection s);

/// Per-participant NI buffer statistics from one run.
struct BufferStat {
  topo::HostId host = topo::kInvalidId;
  double peak_packets = 0.0;
  double packet_us_integral = 0.0;
};

/// How an operation ended under faults. Fault-free runs are always
/// kComplete (anything else throws, preserving the strict pre-fault
/// contract).
enum class Outcome : std::uint8_t {
  kComplete,  ///< every destination delivered
  kPartial,   ///< some destinations delivered, some lost to faults
  kFailed,    ///< no destination delivered
};

[[nodiscard]] const char* to_string(Outcome o);

/// Per-destination delivery verdict for one operation.
struct DestinationStatus {
  topo::HostId host = topo::kInvalidId;
  bool delivered = false;
  /// Whether the destination was still reachable from the root at the
  /// end of the run (false: excised by a switch death or partition).
  bool reachable = true;
  sim::Time completed_at;  ///< only meaningful when delivered
};

/// What the engine does about destinations orphaned by a fault.
struct RepairPolicy {
  /// Tree-repair rounds after the initial attempt drains (0 disables
  /// repair entirely). Each round re-parents the still-missing,
  /// still-reachable destinations into a fresh k-binomial tree in
  /// contention-free order with failed hosts excised, and resends.
  std::int32_t max_attempts = 2;
  /// Delay before repair round r starts: backoff * 2^(r-1).
  sim::Time backoff = sim::Time::us(30.0);
  /// Rebuild up*/down* routes on the surviving subgraph after each fault.
  /// Only single-VC route tables can be rebuilt; requesting reroute on a
  /// multi-VC table (dateline torus) with a non-empty fault plan throws
  /// std::invalid_argument — set this false to run such rigs degraded.
  bool reroute = true;
  /// When the initiator dies mid-operation, elect a deterministic
  /// replacement (the lowest-ranked reachable destination already
  /// holding the payload — per packet for streaming) and hand the
  /// remaining send schedule to it, instead of reporting kFailed.
  bool root_handoff = true;
};

/// Outcome of one multicast operation.
struct MulticastResult {
  /// Start to last destination *host* completion (includes the final t_r)
  /// — the paper's multicast latency.
  sim::Time latency;
  /// Start to last destination *NI* completion (all packets received and
  /// receive-processed; excludes t_r).
  sim::Time ni_latency;
  /// Host-level completion time per destination.
  std::vector<std::pair<topo::HostId, sim::Time>> completions;
  std::vector<BufferStat> buffers;
  sim::Time total_channel_block_time;
  std::int64_t packets_delivered = 0;

  Outcome outcome = Outcome::kComplete;
  /// One entry per destination (tree nodes minus root), in tree order.
  /// Empty for single-host trees.
  std::vector<DestinationStatus> destinations;
  /// Tree-repair rounds this operation consumed.
  std::int32_t repairs = 0;
  /// 1 when the root died and a replacement initiator finished the
  /// operation (RepairPolicy::root_handoff), else 0.
  std::int32_t root_handoffs = 0;
  /// The initiator that drove the final repair round: the original root,
  /// or the elected replacement after a handoff.
  topo::HostId effective_root = topo::kInvalidId;
  /// Batch-wide retransmission count (reliable style only); populated by
  /// run(), zero from run_many() (use MultiMulticastResult there).
  std::int64_t retransmissions = 0;
  /// Simulator events the whole run consumed; populated by run(), zero
  /// from run_many() (use MultiMulticastResult there).
  std::int64_t events_dispatched = 0;

  [[nodiscard]] std::int32_t delivered_count() const;
  /// delivered / destinations; 1.0 for single-host trees.
  [[nodiscard]] double delivery_ratio() const;
  [[nodiscard]] double peak_buffer() const;
  [[nodiscard]] double max_buffer_integral() const;
};

/// One multicast operation for the multi-operation entry point.
struct MulticastSpec {
  core::HostTree tree;
  std::int32_t packet_count = 1;
  /// When the source host issues the send (multiple concurrent
  /// multicasts model the paper's reference [6] "multiple multicast"
  /// workload; staggered starts model bursty traffic).
  sim::Time start = sim::Time::zero();
};

/// Result of a batch of concurrent multicasts.
struct MultiMulticastResult {
  /// Per operation, in spec order. `latency` is measured from that
  /// operation's own start time.
  std::vector<MulticastResult> operations;
  /// Completion of the last operation, from time zero.
  sim::Time makespan;
  /// System-wide contention across all operations.
  sim::Time total_channel_block_time;
  /// Buffer stats per NI across the whole batch.
  std::vector<BufferStat> buffers;
  /// Reliable-style protocol counters summed over all NIs (zero for
  /// other styles).
  std::int64_t retransmissions = 0;
  std::int64_t deliveries_failed = 0;
  /// Worms truncated mid-flight by faults.
  std::int64_t packets_killed = 0;
  std::int32_t faults_applied = 0;
  /// Simulator events this batch consumed — the denominator-free side of
  /// the events/sec throughput metric bench_scale reports.
  std::int64_t events_dispatched = 0;
  /// Sharded-engine instrumentation, all zero in serial mode: the
  /// conservative window width the engine picked, the wall-clock time
  /// the single-threaded inter-window phase consumed, and the number of
  /// windows planned. bench_scale reports these to quantify the barrier
  /// cost (compare NIMCAST_EAGER_MERGE=1 against the overlapped merge).
  std::int64_t window_ns = 0;
  std::int64_t barrier_wall_ns = 0;
  std::int64_t windows_planned = 0;
};

/// Result of one streaming broadcast (run_streaming): a sustained stream
/// of fixed-size packets from one source to every other participant,
/// packet g dispatched down rotation tree g mod R.
struct StreamingResult {
  /// Start to the last destination *host* completion of the full stream.
  sim::Time makespan;
  /// Start to the last receive-processed stream packet at any
  /// destination NI — the denominator of the throughput metric.
  sim::Time ni_makespan;
  /// Sustained delivered throughput: distinct (destination, packet)
  /// deliveries, in 8-byte flits, per microsecond of ni_makespan.
  double flits_per_us = 0.0;
  /// p99 gap between consecutive in-order packet completions at a
  /// destination, pooled over all destinations. Packet g completes
  /// in order once packets 0..g have all been receive-processed, so
  /// this is the tail stall an in-order consumer of the stream sees.
  sim::Time p99_gap;
  std::int32_t stream_packets = 0;
  /// R the caller asked the planner for.
  std::int32_t rotation_requested = 1;
  /// Classes that actually carried packets:
  /// min(plan size, stream_packets).
  std::int32_t rotation_used = 1;
  /// Measured channel-overlap fractions of the plan (RotationPlan).
  double overlap_mean = 0.0;
  double overlap_max = 0.0;

  Outcome outcome = Outcome::kComplete;
  /// One entry per destination, in member-0 tree order; `delivered`
  /// means the destination received the *entire* stream.
  std::vector<DestinationStatus> destinations;
  /// Repair messages launched by the (live) root.
  std::int32_t repairs = 0;
  /// Rotation members incrementally re-planned after a fault
  /// (core::replan_rotation) — 0 means every member survived verbatim.
  std::int32_t replans = 0;
  /// Handoff messages launched by elected replacement initiators after
  /// the root died (one per per-packet initiator group per round).
  std::int32_t root_handoffs = 0;
  /// Stream indices re-injected by repair and handoff messages.
  std::int64_t packets_resent = 0;
  /// The reachability reference: the root, or (after the root died) the
  /// lowest-ranked surviving destination holding any packet.
  topo::HostId effective_root = topo::kInvalidId;
  /// Distinct (destination, packet) deliveries — counts partial streams.
  std::int64_t packets_delivered = 0;
  sim::Time total_channel_block_time;
  std::int64_t events_dispatched = 0;
  /// Sharded-engine instrumentation; see MultiMulticastResult.
  std::int64_t window_ns = 0;
  std::int64_t barrier_wall_ns = 0;
  std::int64_t windows_planned = 0;

  /// Effective per-packet policy this run (an R = 1 plan degrades
  /// adaptive to static — there is nothing to choose between).
  Selection selection = Selection::kStatic;
  /// Stream packets issued down each rotation member, index = member.
  /// Static: the g mod R ceil-split; adaptive: the measured choice.
  /// Repair and handoff resends ride dedicated repair messages and are
  /// not attributed to members (see packets_resent).
  std::vector<std::int64_t> member_packets;
  /// Bottleneck NI work each member's share cost, in µs: member_packets
  /// × max over the member's hosts of (t_rcv for non-roots + children ×
  /// t_snd). Per-packet total work is member-independent (every member
  /// spans the same hosts), so the bottleneck host is what
  /// differentiates members — this is the per-member slice of the
  /// planner's ni_work_bound.
  std::vector<double> member_ni_work_us;
  /// Telemetry snapshots the adaptive selector scored (0 when static —
  /// the static path schedules no snapshot events at all).
  std::int64_t telemetry_snapshots = 0;
  /// FNV-1a digest over every snapshot's member score vector — the
  /// serial-vs-sharded snapshot-equality witness (0 when static).
  std::uint64_t telemetry_digest = 0;
};

/// Runs complete multicast operations on the full simulated system:
/// wormhole network + NIs + hosts. Each `run`/`run_many` builds a fresh
/// simulation over the shared (topology, routes), so results are
/// independent and reproducible.
class MulticastEngine {
 public:
  struct Config {
    netif::SystemParams params;
    net::NetworkConfig network;
    NiStyle style = NiStyle::kSmartFpfs;
    /// Only used by kReliableFpfs. A zero retx_timeout is resolved per
    /// run from the actual tree depth and fan-out via
    /// netif::derived_retx_timeout.
    netif::ReliabilityParams reliability = {};
    /// Only consulted when `network.faults` is non-empty.
    RepairPolicy repair = {};
    /// Intra-run parallelism: > 1 partitions the fabric's switches into
    /// (up to) that many shards and runs the whole simulation — network,
    /// NIs and hosts — on a conservative-parallel sharded engine whose
    /// results are bit-identical to the serial one (see docs/perf.md,
    /// "Sharded engine"). Lossy and pipelined-release configurations
    /// shard too; the engine falls back to the serial path only when it
    /// cannot pick a positive conservative window (pipelined release on
    /// paths too long for the serialization time, or under a fault plan
    /// whose repairs could create such paths) or when a trace is
    /// attached.
    std::int32_t shards = 1;
    /// OS threads driving the sharded engine; 0 means one per shard.
    std::int32_t shard_threads = 0;
    /// Conservative window (lookahead) override for the sharded engine;
    /// zero means auto — the engine adapts the window to the
    /// configuration (t_hop, tightened when pipelined release needs
    /// headroom). Values wider than the safe bound are clamped down, so
    /// the override can only narrow the window. The harness plumbs
    /// NIMCAST_WINDOW (nanoseconds) into this field.
    sim::Time window = sim::Time::zero();
    /// Rotation members (R) a streaming broadcast plans. Consulted by
    /// the layers that plan on the engine's behalf (api::Communicator,
    /// harness::Testbed); run_streaming itself takes the plan
    /// explicitly. 1 keeps the paper's fixed tree.
    std::int32_t rotation_trees = 1;
    /// Per-packet member policy for run_streaming (run()/run_many()
    /// ignore it). Static keeps the g mod R rotation; adaptive scores
    /// members against barrier-consistent telemetry snapshots.
    Selection selection = Selection::kStatic;
    /// Background unicast flows run_streaming injects alongside the
    /// stream (contended-fabric scenarios): `packets` fixed-size
    /// packets from src's NI to dst on the primary routes, launched at
    /// `start`. Endpoints need not be stream participants; the flows
    /// contend for wires and coprocessors but stay out of every stream
    /// metric. run()/run_many() ignore them.
    struct BackgroundFlow {
      topo::HostId src = topo::kInvalidId;
      topo::HostId dst = topo::kInvalidId;
      std::int32_t packets = 1;
      sim::Time start = sim::Time::zero();
    };
    std::vector<BackgroundFlow> background{};
  };

  MulticastEngine(const topo::Topology& topology,
                  const routing::RouteTable& routes, Config config,
                  sim::Trace* trace = nullptr);

  /// Multicasts a `packet_count`-packet message over `tree`. The tree's
  /// nodes must be valid hosts of the topology.
  [[nodiscard]] MulticastResult run(const core::HostTree& tree,
                                    std::int32_t packet_count) const;

  /// Runs several multicasts in one simulation; they share NIs, hosts
  /// and wires and therefore contend. An NI participating in several
  /// operations demultiplexes by message id exactly as the firmware
  /// would.
  [[nodiscard]] MultiMulticastResult run_many(
      const std::vector<MulticastSpec>& specs) const;

  /// Streams `stream_packets` fixed-size packets from the plan's root to
  /// every other participant, packet g dispatched down rotation member
  /// g mod R (R = min(plan size, stream_packets)) under that member's
  /// route class — or, with Config::selection = kAdaptive, down the
  /// member the telemetry-driven selector scores cheapest per packet.
  /// Requires NiStyle::kSmartFpfs: the source interleaves
  /// the classes in one packet-major round-robin (FpfsNi::
  /// start_streaming), so consecutive stream packets leave down
  /// *different* trees and the per-packet NI forwarding load rotates
  /// across hosts. A plan of size 1 is byte-identical to run() over the
  /// fixed tree with the same packet count.
  ///
  /// Under faults, repair prefers a surviving rotation member — the
  /// first whose channel footprint dodges every dead channel — and only
  /// re-plans on the rebuilt primary routes when none survived.
  [[nodiscard]] StreamingResult run_streaming(const core::RotationPlan& plan,
                                              std::int32_t stream_packets)
      const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  /// Conservative window for a run whose longest packet path crosses
  /// `max_hops` switch links: t_hop, tightened for pipelined release
  /// (the earliest staggered release of a (max_hops + 2)-channel worm
  /// fires serialization_time - max_hops * t_hop after its drain is
  /// scheduled, and the release mail must clear the window), further
  /// narrowed by Config::window. Returns zero when no positive window
  /// exists — the caller falls back to the serial engine.
  [[nodiscard]] sim::Time pick_window(std::size_t max_hops) const;
  /// Switch weights for load-aware partitioning: the previous sharded
  /// run's per-switch channel-acquisition counts (empty before the
  /// first run). Copied under load_mutex_ — replications may run
  /// concurrently; since results are partition-independent (bit-identity
  /// holds for every partition), racing replications merely read a
  /// possibly-older load profile.
  [[nodiscard]] std::vector<std::uint64_t> partition_weights() const;
  void record_switch_load(const std::vector<std::uint64_t>& load) const;

  /// Heap-allocated so the engine stays movable (Testbed keeps engines
  /// in a vector) despite the mutex.
  struct LoadCache {
    std::mutex mutex;
    std::vector<std::uint64_t> load;
  };

  const topo::Topology& topology_;
  const routing::RouteTable& routes_;
  Config config_;
  sim::Trace* trace_;
  std::unique_ptr<LoadCache> load_cache_ = std::make_unique<LoadCache>();
};

}  // namespace nimcast::mcast
