#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "network/network_config.hpp"
#include "network/wormhole_network.hpp"
#include "routing/route_table.hpp"
#include "sim/sharded.hpp"
#include "sim/sim_time.hpp"
#include "sim/trace.hpp"
#include "topology/topology.hpp"

namespace nimcast::mcast {

/// One simulation fabric: the serial-or-sharded simulator plus the
/// WormholeNetwork bound to it. Extracted from MulticastEngine::run_many
/// / run_streaming so every engine entry point — and the multi-tenant
/// traffic engine, which drives many operations re-entrantly over one
/// shared network — builds and drains the fabric through the same code
/// path with the same serial-vs-sharded bit-identity contract.
///
/// The caller resolves engine selection before construction: a positive
/// `window` selects the conservative-parallel sharded engine (shards
/// clamped to the switch count), zero selects the serial engine. Use
/// `conservative_window` to derive the widest safe window for a
/// workload's longest path.
class Fabric {
 public:
  /// Conservative window for a run whose longest packet path crosses
  /// `max_hops` switch links: t_hop, tightened for pipelined release
  /// (the earliest staggered release of a (max_hops + 2)-channel worm
  /// fires serialization_time - max_hops * t_hop after its drain is
  /// scheduled, and the release mail must clear the window), further
  /// narrowed by `override_window` (zero = no override). Returns zero
  /// when no positive window exists — the caller falls back to the
  /// serial engine.
  [[nodiscard]] static sim::Time conservative_window(
      const net::NetworkConfig& network, std::size_t max_hops,
      sim::Time override_window);

  /// Builds the fabric. `window` > 0 selects the sharded engine with
  /// min(`shards`, num switches) shards partitioned by
  /// `partition_weights` (empty = unweighted); `window` == 0 selects the
  /// serial engine (the only mode that accepts a trace sink).
  Fabric(const topo::Topology& topology, const routing::RouteTable& routes,
         const net::NetworkConfig& network, std::int32_t shards,
         sim::Time window, const std::vector<std::uint64_t>& partition_weights,
         sim::Trace* trace);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] bool sharded() const { return shardsim_ != nullptr; }
  [[nodiscard]] std::int32_t num_shards() const { return num_shards_; }
  [[nodiscard]] sim::Time window() const { return window_; }
  [[nodiscard]] net::WormholeNetwork& network() { return *network_; }

  /// The simulator every per-host actor (NI, host, its timers and
  /// receive events) must live on: the shard owning the host's switch,
  /// or the one serial simulator.
  [[nodiscard]] sim::Simulator& sim_for_host(topo::HostId h);

  /// Owning shard of `h` (0 in serial mode) — the per-shard log index
  /// for append-only completion records.
  [[nodiscard]] std::int32_t shard_of_host(topo::HostId h) const;

  /// Drains the fabric to quiescence. `shard_threads` > 0 caps the OS
  /// threads driving the sharded engine (0 = one per shard); ignored in
  /// serial mode. Callable repeatedly (repair rounds schedule more work
  /// between drains).
  void run(std::int32_t shard_threads);

  /// Time of the last dispatched event — what the serial engine's now()
  /// reads once run() drains; the anchor for repair-round backoff.
  [[nodiscard]] sim::Time end_time() const;

  [[nodiscard]] std::int64_t events_dispatched() const;
  /// Sharded-engine instrumentation (zero in serial mode).
  [[nodiscard]] std::int64_t barrier_wall_ns() const;
  [[nodiscard]] std::int64_t windows_planned() const;

  /// Claims a serial FIFO key for a chain of coordinated events (0 in
  /// sharded mode, where registration order plays the same role). Keys
  /// must be reserved before run() in the order the first same-instant
  /// coordinated events will be registered, so both engines agree on
  /// same-time coordinated-event order.
  [[nodiscard]] std::uint64_t reserve_coordination_key();

  /// Schedules `fn` at `at`, firing *before* every same-instant runtime
  /// event in both engines: the sharded form rides a global event (all
  /// shards parked at the barrier, same-time shard events not yet
  /// fired), the serial form replays the reserved FIFO key. This is the
  /// one ordering a coordinator (telemetry snapshot, admission decision)
  /// may observe and mutate cross-shard state in — both engines present
  /// identical state at the instant. Work scheduled from inside `fn`
  /// lands after the instant's coordinated events and before anything
  /// the instant's runtime events schedule, identically in both modes.
  void schedule_coordinated(sim::Time at, std::uint64_t key,
                            std::function<void()> fn);

 private:
  std::unique_ptr<sim::Simulator> serial_;
  std::unique_ptr<sim::ShardedSimulator> shardsim_;
  std::unique_ptr<net::WormholeNetwork> network_;
  std::int32_t num_shards_ = 1;
  sim::Time window_;
};

}  // namespace nimcast::mcast
