#include "mcast/step_model.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <tuple>

namespace nimcast::mcast {

const char* to_string(Discipline d) {
  switch (d) {
    case Discipline::kFpfs: return "FPFS";
    case Discipline::kFcfs: return "FCFS";
  }
  return "?";
}

namespace {

/// Per-node sending state. Sends are appended in discipline order and
/// execute back-to-back, one step each; appends happen in arrival-time
/// order, so greedy assignment of start steps is exact.
struct NodeState {
  std::int32_t busy_until = 0;   ///< first step this node is free to send
  std::int32_t arrived = 0;      ///< packets received so far (FCFS counter)
};

struct Arrival {
  std::int32_t step;
  std::uint64_t seq;  ///< FIFO tie-break, mirrors the event queue
  std::int32_t rank;
  std::int32_t pkt;
};
struct Later {
  bool operator()(const Arrival& a, const Arrival& b) const {
    return std::tie(a.step, a.seq) > std::tie(b.step, b.seq);
  }
};

}  // namespace

StepSchedule step_schedule(const core::RankTree& tree, std::int32_t m,
                           Discipline discipline) {
  if (m < 1) throw std::invalid_argument("step_schedule: m < 1");
  tree.validate();
  const std::int32_t n = tree.size();

  StepSchedule sched;
  sched.arrival.assign(static_cast<std::size_t>(n),
                       std::vector<std::int32_t>(static_cast<std::size_t>(m),
                                                 -1));
  for (auto& a : sched.arrival[0]) a = 0;  // source holds everything

  std::vector<NodeState> state(static_cast<std::size_t>(n));
  std::priority_queue<Arrival, std::vector<Arrival>, Later> events;
  std::uint64_t seq = 0;

  // One send occupies the sender for exactly one step; the packet is at
  // the child at the end of that step.
  const auto emit = [&](std::int32_t from, std::int32_t pkt, std::int32_t to,
                        std::int32_t ready_step) {
    auto& st = state[static_cast<std::size_t>(from)];
    const std::int32_t start = std::max(st.busy_until, ready_step);
    st.busy_until = start + 1;
    events.push(Arrival{start + 1, seq++, to, pkt});
  };

  const auto& root_kids = tree.children[0];
  if (discipline == Discipline::kFpfs) {
    for (std::int32_t j = 0; j < m; ++j) {
      for (std::int32_t c : root_kids) emit(0, j, c, 0);
    }
  } else {
    for (std::int32_t c : root_kids) {
      for (std::int32_t j = 0; j < m; ++j) emit(0, j, c, 0);
    }
  }

  while (!events.empty()) {
    const Arrival a = events.top();
    events.pop();
    auto& slot = sched.arrival[static_cast<std::size_t>(a.rank)]
                              [static_cast<std::size_t>(a.pkt)];
    if (slot != -1) throw std::logic_error("step_schedule: duplicate arrival");
    slot = a.step;

    const auto& kids = tree.children[static_cast<std::size_t>(a.rank)];
    auto& st = state[static_cast<std::size_t>(a.rank)];
    ++st.arrived;
    if (kids.empty()) continue;

    if (discipline == Discipline::kFpfs) {
      for (std::int32_t c : kids) emit(a.rank, a.pkt, c, a.step);
    } else {
      emit(a.rank, a.pkt, kids.front(), a.step);
      if (st.arrived == m) {
        for (std::size_t i = 1; i < kids.size(); ++i) {
          for (std::int32_t j = 0; j < m; ++j) {
            emit(a.rank, j, kids[i], a.step);
          }
        }
      }
    }
  }

  sched.completion.assign(static_cast<std::size_t>(m), 0);
  for (std::int32_t r = 0; r < n; ++r) {
    for (std::int32_t j = 0; j < m; ++j) {
      const std::int32_t s = sched.arrival[static_cast<std::size_t>(r)]
                                          [static_cast<std::size_t>(j)];
      if (s < 0) throw std::logic_error("step_schedule: packet never arrived");
      auto& comp = sched.completion[static_cast<std::size_t>(j)];
      comp = std::max(comp, s);
    }
  }
  sched.total_steps = *std::max_element(sched.completion.begin(),
                                        sched.completion.end());
  return sched;
}

}  // namespace nimcast::mcast
