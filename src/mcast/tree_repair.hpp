#pragma once

#include <functional>
#include <optional>

#include "core/host_tree.hpp"
#include "topology/ids.hpp"

namespace nimcast::mcast {

/// CCO-order orphan re-parenting, shared by MulticastEngine tree repair
/// and the degraded-mode collectives.
///
/// Builds a fresh k-binomial repair tree over `root` plus every host of
/// `order` (the original participants, already in contention-free order)
/// for which both `needs(h)` and `reachable(h)` hold. Hosts that already
/// got what they came for and hosts the surviving fabric cannot reach
/// are excised; the survivors keep their relative contention-free order,
/// so the repair tree inherits as much of the original link-disjointness
/// as the fault left intact. `fanout_hint` (typically the original
/// tree's root fan-out) is clamped to the repair population.
///
/// Returns nullopt when nobody needs re-parenting — the caller's signal
/// to stop scheduling repair rounds.
[[nodiscard]] std::optional<core::HostTree> plan_repair_tree(
    topo::HostId root, const std::vector<topo::HostId>& order,
    const std::function<bool(topo::HostId)>& needs,
    const std::function<bool(topo::HostId)>& reachable,
    std::int32_t fanout_hint);

}  // namespace nimcast::mcast
