#include "mcast/fabric.hpp"

#include <algorithm>
#include <utility>

#include "topology/partition.hpp"

namespace nimcast::mcast {

sim::Time Fabric::conservative_window(const net::NetworkConfig& network,
                                      std::size_t max_hops,
                                      sim::Time override_window) {
  sim::Time w = network.t_hop;
  if (network.release_model == net::ReleaseModel::kPipelined) {
    // The earliest staggered release of a worm whose path crosses
    // max_hops switch links (max_hops + 2 channels with injection and
    // ejection) fires serialization_time - max_hops * t_hop after its
    // drain is scheduled; a cross-shard release must clear the window.
    const sim::Time bound =
        network.serialization_time() -
        network.t_hop * static_cast<sim::Time::rep>(max_hops);
    w = std::min(w, bound);
  }
  if (override_window > sim::Time::zero()) w = std::min(w, override_window);
  return w > sim::Time::zero() ? w : sim::Time::zero();
}

Fabric::Fabric(const topo::Topology& topology,
               const routing::RouteTable& routes,
               const net::NetworkConfig& network, std::int32_t shards,
               sim::Time window,
               const std::vector<std::uint64_t>& partition_weights,
               sim::Trace* trace)
    : window_{window} {
  const bool sharded_mode = window > sim::Time::zero();
  num_shards_ =
      sharded_mode ? std::min(shards, topology.num_switches()) : 1;
  if (sharded_mode) {
    shardsim_ = std::make_unique<sim::ShardedSimulator>(num_shards_, window);
    network_ = std::make_unique<net::WormholeNetwork>(
        *shardsim_, topology, routes, network,
        topo::partition_switches(topology.switches(), num_shards_,
                                 partition_weights));
  } else {
    serial_ = std::make_unique<sim::Simulator>();
    network_ = std::make_unique<net::WormholeNetwork>(*serial_, topology,
                                                      routes, network, trace);
  }
}

sim::Simulator& Fabric::sim_for_host(topo::HostId h) {
  return shardsim_ ? shardsim_->shard(network_->shard_of_host(h)) : *serial_;
}

std::int32_t Fabric::shard_of_host(topo::HostId h) const {
  return shardsim_ ? network_->shard_of_host(h) : 0;
}

void Fabric::run(std::int32_t shard_threads) {
  if (shardsim_) {
    const int threads = shard_threads > 0 ? static_cast<int>(shard_threads)
                                          : static_cast<int>(num_shards_);
    shardsim_->run(threads);
  } else {
    serial_->run();
  }
}

sim::Time Fabric::end_time() const {
  return shardsim_ ? shardsim_->last_event_time() : serial_->now();
}

std::int64_t Fabric::events_dispatched() const {
  return static_cast<std::int64_t>(shardsim_ ? shardsim_->events_dispatched()
                                             : serial_->events_dispatched());
}

std::int64_t Fabric::barrier_wall_ns() const {
  return shardsim_ ? static_cast<std::int64_t>(shardsim_->barrier_wall_ns())
                   : 0;
}

std::int64_t Fabric::windows_planned() const {
  return shardsim_ ? static_cast<std::int64_t>(shardsim_->windows_planned())
                   : 0;
}

std::uint64_t Fabric::reserve_coordination_key() {
  return shardsim_ ? 0 : serial_->reserve_order();
}

void Fabric::schedule_coordinated(sim::Time at, std::uint64_t key,
                                  std::function<void()> fn) {
  if (shardsim_) {
    shardsim_->schedule_global(at, std::move(fn));
  } else {
    serial_->schedule_at_keyed(at, 0, key, std::move(fn));
  }
}

}  // namespace nimcast::mcast
