#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "netif/buffer_tracker.hpp"
#include "netif/forwarding.hpp"
#include "netif/host.hpp"
#include "netif/serial_server.hpp"
#include "netif/system_params.hpp"
#include "network/wormhole_network.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace nimcast::netif {

/// Base network interface model.
///
/// One per host. The NI owns a coprocessor (a `SerialServer`): accepting a
/// packet from the network costs `t_rcv`, injecting one copy costs
/// `t_snd`. Subclasses implement the multicast forwarding discipline —
/// what the coprocessor firmware does with a received multicast packet and
/// how the source side schedules the initial copies.
///
/// The engine wires `on_message_at_ni` to fire when this NI has received
/// (and finished receive-processing of) every packet of a message for
/// which it is a destination; host-level completion (the +t_r) is layered
/// on top by the engine through the Host object.
class NetworkInterface : public net::DeliverySink {
 public:
  /// Binds itself as `self`'s delivery sink on `network` — packets
  /// addressed to `self` arrive through deliver() with no per-packet
  /// closure or engine-installed dispatch in between.
  NetworkInterface(sim::Simulator& simctx, net::WormholeNetwork& network,
                   SystemParams params, topo::HostId self,
                   sim::Trace* trace = nullptr);
  ~NetworkInterface() override = default;

  NetworkInterface(const NetworkInterface&) = delete;
  NetworkInterface& operator=(const NetworkInterface&) = delete;

  /// Installs multicast forwarding state for `message`. Must be called on
  /// every participant's NI before the source begins.
  void install(net::MessageId message, ForwardingEntry entry);

  /// Source-side entry point: begins the multicast at this node, charging
  /// whatever host software cost the NI style requires (smart NIs: one
  /// t_s to move the message into NI memory; conventional NIs: one t_s
  /// per child, with the message staying in host memory).
  virtual void start_from_host(net::MessageId message, Host& host) = 0;

  /// Network delivery entry point: a packet has fully arrived in the NI
  /// receive queue. Receive processing (t_rcv) is queued on the
  /// coprocessor; the discipline hook runs when it completes. Virtual so
  /// protocol layers (e.g. the reliable NI) can interpose on raw
  /// arrivals (ACKs, duplicates) before the standard path.
  virtual void deliver(const net::Packet& packet);

  /// DeliverySink: the network hands this NI its own fully-arrived
  /// packets; routes through the virtual deliver() so protocol layers
  /// keep their interposition point.
  void on_packet_delivered(const net::Packet& packet) final {
    deliver(packet);
  }

  /// Called by the engine after the destination host finished its t_r for
  /// `message` (the message is now in application memory). Conventional
  /// NIs forward to children from here; smart NIs ignore it.
  virtual void after_host_receive(net::MessageId message, Host& host);

  /// Fired once per (destination NI, message): all packets received and
  /// receive-processed.
  std::function<void(topo::HostId, net::MessageId)> on_message_at_ni;

  /// Fired once per receive-processed data packet, after the forwarding
  /// discipline ran. Unset (the default) costs the hot path one branch;
  /// the streaming engine binds it to drive per-packet in-order
  /// reassembly accounting.
  std::function<void(topo::HostId, const net::Packet&)> on_packet_at_ni;

  [[nodiscard]] topo::HostId id() const { return self_; }
  [[nodiscard]] const BufferTracker& buffer() const { return buffer_; }
  [[nodiscard]] const SerialServer& coprocessor() const { return coproc_; }
  /// Coprocessor backlog: tasks queued plus tasks in service. The
  /// adaptive streaming selector samples this at telemetry snapshots as
  /// the NI-side congestion signal.
  [[nodiscard]] std::int64_t injection_queue_depth() const {
    return static_cast<std::int64_t>(coproc_.queued()) + coproc_.active();
  }
  [[nodiscard]] const SystemParams& params() const { return params_; }
  [[nodiscard]] virtual const char* style() const = 0;

 protected:
  /// Discipline hook: a multicast packet finished receive processing.
  /// Forward copies as the discipline dictates (leaves do nothing).
  virtual void on_packet_received(const net::Packet& packet,
                                  const ForwardingEntry& entry) = 0;

  /// Queues one copy of packet `index` on the coprocessor (t_snd), then
  /// injects it into the network under `route_class`. No buffer
  /// accounting.
  void inject_copy(net::MessageId message, std::int32_t index,
                   std::int32_t packet_count, topo::HostId child,
                   std::int32_t route_class = 0);

  /// Buffer-accounted variant: decrements the packet's outstanding-copy
  /// count when the injection completes, releasing the buffer slot at
  /// zero. The packet must be held (see hold_packet).
  void send_copy(net::MessageId message, std::int32_t index,
                 std::int32_t packet_count, topo::HostId child,
                 std::int32_t route_class = 0);

  /// send_copy with a continuation: `then` runs inside the same
  /// coprocessor completion action, after the injection and buffer
  /// release. The adaptive streaming source hangs the *next* packet's
  /// member selection off its last copy this way — the continuation
  /// enqueues before the coprocessor picks its next task, so the issue
  /// stream's timing is byte-identical to enqueueing everything upfront.
  void send_copy_then(net::MessageId message, std::int32_t index,
                      std::int32_t packet_count, topo::HostId child,
                      std::int32_t route_class, std::function<void()> then);

  /// Declares that packet `index` is resident in NI memory and will be
  /// copied out `copies` times. Acquires a buffer slot (released
  /// immediately when copies == 0).
  void hold_packet(net::MessageId message, std::int32_t index,
                   std::int32_t copies);

  /// Decrements a held packet's outstanding-copy count without sending
  /// (the reliable NI releases on acknowledgment, not on injection).
  void release_copy(net::MessageId message, std::int32_t index);

  /// Counts one successfully receive-processed *distinct* data packet and
  /// fires on_message_at_ni when the message completes. deliver() calls
  /// this; subclasses that override deliver() must call it themselves for
  /// each distinct packet.
  void note_data_processed(const net::Packet& packet,
                           const ForwardingEntry& entry);

  [[nodiscard]] const ForwardingEntry* find_entry(net::MessageId m) const;

  sim::Simulator& sim_;
  net::WormholeNetwork& network_;
  SystemParams params_;
  topo::HostId self_;
  sim::Trace* trace_;
  SerialServer coproc_;
  BufferTracker buffer_;

 private:
  void release_if_done(std::uint64_t key);
  static std::uint64_t packet_key(net::MessageId m, std::int32_t index) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m)) << 32) |
           static_cast<std::uint32_t>(index);
  }

  std::unordered_map<net::MessageId, ForwardingEntry> entries_;
  std::unordered_map<net::MessageId, std::int32_t> received_count_;
  std::unordered_map<std::uint64_t, std::int32_t> outstanding_;
};

}  // namespace nimcast::netif
