#pragma once

#include <cstdint>

#include "sim/sim_time.hpp"

namespace nimcast::netif {

/// Host and NI overhead parameters.
///
/// Defaults are the paper's Section 5.2 values, "representing the current
/// trend in technology" (1997): software start-up t_s and receive overhead
/// t_r at the host processor, and per-packet send/receive occupancy of the
/// NI coprocessor.
struct SystemParams {
  /// Host software start-up overhead: incurred once per send *operation*
  /// (smart NI: once per multicast at the source; conventional NI: once
  /// per forwarded copy of the message).
  sim::Time t_s = sim::Time::us(12.5);

  /// Host software receive overhead: once per received message.
  sim::Time t_r = sim::Time::us(12.5);

  /// NI coprocessor occupancy to push one packet copy into the network
  /// (the paper's overhead "at the network interface for sending a
  /// packet", and the t_nd of the Section 3.3.2 buffer analysis).
  sim::Time t_snd = sim::Time::us(3.0);

  /// NI coprocessor occupancy to accept one packet from the network
  /// (header decode + DMA initiation toward host memory).
  sim::Time t_rcv = sim::Time::us(2.0);

  /// Parallel engines on the NI coprocessor. The paper's 1997 NIs have
  /// one; values > 1 model modern multi-queue NICs that can replicate
  /// several multicast copies concurrently — see the multi-engine
  /// ablation bench for how that shifts the optimal fan-out bound.
  std::int32_t ni_engines = 1;
};

}  // namespace nimcast::netif
