#include "netif/conventional_ni.hpp"

#include <stdexcept>

namespace nimcast::netif {

void ConventionalNi::forward_to_children(net::MessageId message, Host& host,
                                         const ForwardingEntry& entry) {
  // One software send per child: the host re-fragments the message and
  // pushes the packets to the NI send queue each time (Figure 2). The
  // t_s start-ups serialize on the host CPU; the NI pipeline drains each
  // child's packets while the host prepares the next send.
  for (topo::HostId child : entry.children) {
    host.software_send([this, message, child, count = entry.packet_count] {
      for (std::int32_t j = 0; j < count; ++j) {
        inject_copy(message, j, count, child);
      }
    });
  }
}

void ConventionalNi::start_from_host(net::MessageId message, Host& host) {
  const ForwardingEntry* entry = find_entry(message);
  if (entry == nullptr) {
    throw std::logic_error("ConventionalNi: no forwarding entry at source");
  }
  forward_to_children(message, host, *entry);
}

void ConventionalNi::after_host_receive(net::MessageId message, Host& host) {
  const ForwardingEntry* entry = find_entry(message);
  if (entry == nullptr) {
    throw std::logic_error("ConventionalNi: no forwarding entry");
  }
  forward_to_children(message, host, *entry);
}

void ConventionalNi::on_packet_received(const net::Packet&,
                                        const ForwardingEntry&) {
  // Nothing beyond the base t_rcv + DMA: the host does all forwarding,
  // triggered by after_host_receive once the message completes.
}

}  // namespace nimcast::netif
