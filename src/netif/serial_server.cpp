#include "netif/serial_server.hpp"

#include <utility>

namespace nimcast::netif {

void SerialServer::enqueue(sim::Time duration, Action on_done) {
  queue_.push_back(Task{duration, std::move(on_done)});
  start_next();
}

void SerialServer::enqueue_front(sim::Time duration, Action on_done) {
  queue_.push_front(Task{duration, std::move(on_done)});
  start_next();
}

void SerialServer::enqueue_low(sim::Time duration, Action on_done) {
  low_queue_.push_back(Task{duration, std::move(on_done)});
  start_next();
}

void SerialServer::start_next() {
  while (active_ < workers_) {
    auto& source = !queue_.empty() ? queue_ : low_queue_;
    if (source.empty()) return;
    Task task = std::move(source.front());
    source.pop_front();
    ++active_;
    busy_time_ += task.duration;
    sim_.schedule_in(task.duration, [this, action = std::move(task.on_done)] {
      // Run the completion action before dequeuing further work so a task
      // enqueued by the action lands behind everything already queued.
      if (action) action();
      --active_;
      start_next();
    });
  }
}

}  // namespace nimcast::netif
