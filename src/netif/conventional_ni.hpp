#pragma once

#include "netif/ni_base.hpp"

namespace nimcast::netif {

/// Conventional network interface (paper Section 2.3, Figure 2).
///
/// The NI moves packets but makes no forwarding decisions: every multicast
/// copy is initiated by host software. At the source and at every
/// intermediate node, the host pays one t_s software start-up *per child*;
/// an intermediate node additionally cannot begin forwarding until the
/// complete message has reached host memory and been received (t_r).
/// This is the baseline the smart NI designs beat (Figure 4).
class ConventionalNi final : public NetworkInterface {
 public:
  using NetworkInterface::NetworkInterface;

  void start_from_host(net::MessageId message, Host& host) override;
  void after_host_receive(net::MessageId message, Host& host) override;
  [[nodiscard]] const char* style() const override { return "conventional"; }

 protected:
  void on_packet_received(const net::Packet& packet,
                          const ForwardingEntry& entry) override;

 private:
  void forward_to_children(net::MessageId message, Host& host,
                           const ForwardingEntry& entry);
};

}  // namespace nimcast::netif
