#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>

#include "sim/sim_time.hpp"
#include "sim/simulator.hpp"

namespace nimcast::netif {

/// A serializing work server: models a processing element (an NI
/// coprocessor, or a host CPU doing communication software) that executes
/// queued tasks FIFO.
///
/// Each task occupies one worker for a fixed duration, then its
/// completion action runs (still "on" the server conceptually, but at
/// zero additional cost — the action typically hands a packet to the
/// network or notifies the engine). Completion actions may enqueue
/// further tasks.
///
/// `workers` > 1 models a multi-engine NI (multiple DMA/send engines à
/// la modern multi-queue NICs): up to that many tasks run concurrently,
/// still started in FIFO order. The paper's 1997 NIs are workers == 1.
class SerialServer {
 public:
  explicit SerialServer(sim::Simulator& simctx, std::int32_t workers = 1)
      : sim_{simctx}, workers_{workers} {
    if (workers < 1) {
      throw std::invalid_argument("SerialServer: workers < 1");
    }
  }

  SerialServer(const SerialServer&) = delete;
  SerialServer& operator=(const SerialServer&) = delete;

  using Action = std::function<void()>;

  /// Appends a task taking `duration` of server time; `on_done` runs when
  /// the task finishes.
  void enqueue(sim::Time duration, Action on_done);

  /// Inserts a task ahead of all queued (but behind the in-service) work.
  void enqueue_front(sim::Time duration, Action on_done);

  /// Appends to the *low-priority* lane, served only when the normal
  /// queue is empty. This models NI firmware that finishes forwarding the
  /// current packet before polling the receive queue for the next one —
  /// the structure of the paper's FCFS/FPFS pseudo-code (Figs. 6, 7):
  /// receive processing is enqueued here, send work in the normal lane.
  void enqueue_low(sim::Time duration, Action on_done);

  [[nodiscard]] bool busy() const { return active_ > 0; }
  /// Tasks currently occupying a worker (<= workers()).
  [[nodiscard]] std::int32_t active() const { return active_; }
  [[nodiscard]] std::int32_t workers() const { return workers_; }
  [[nodiscard]] std::size_t queued() const {
    return queue_.size() + low_queue_.size();
  }
  /// Total time this server has spent executing tasks.
  [[nodiscard]] sim::Time busy_time() const { return busy_time_; }

 private:
  struct Task {
    sim::Time duration;
    Action on_done;
  };

  void start_next();

  sim::Simulator& sim_;
  std::int32_t workers_;
  std::deque<Task> queue_;
  std::deque<Task> low_queue_;
  std::int32_t active_ = 0;
  sim::Time busy_time_ = sim::Time::zero();
};

}  // namespace nimcast::netif
