#pragma once

#include <cstdint>
#include <vector>

#include "network/packet.hpp"
#include "topology/ids.hpp"

namespace nimcast::netif {

/// Per-message forwarding state installed at an NI before a multicast
/// starts — the moral equivalent of a multicast-group entry in NI
/// firmware. `children` is ordered: both disciplines send to children in
/// this order, and the contention-free constructions depend on it.
struct ForwardingEntry {
  std::vector<topo::HostId> children;
  std::int32_t packet_count = 1;
  /// True for every participant except the multicast source (the source
  /// already has the message; it is not a destination).
  bool is_destination = true;
  /// Network route class every copy of this message is injected under
  /// (0 = primary table). Streaming rotation members carry their own
  /// class so forwarded copies stay on the member's decorrelated routes.
  std::int32_t route_class = 0;
};

}  // namespace nimcast::netif
