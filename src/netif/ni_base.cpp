#include "netif/ni_base.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace nimcast::netif {

NetworkInterface::NetworkInterface(sim::Simulator& simctx,
                                   net::WormholeNetwork& network,
                                   SystemParams params, topo::HostId self,
                                   sim::Trace* trace)
    : sim_{simctx},
      network_{network},
      params_{params},
      self_{self},
      trace_{trace},
      coproc_{simctx, params.ni_engines},
      buffer_{simctx} {
  network.bind_sink(self, this);
}

void NetworkInterface::install(net::MessageId message, ForwardingEntry entry) {
  if (entry.packet_count < 1) {
    throw std::invalid_argument("ForwardingEntry: packet_count < 1");
  }
  for (topo::HostId c : entry.children) {
    if (c == self_) {
      throw std::invalid_argument("ForwardingEntry: node is its own child");
    }
  }
  entries_[message] = std::move(entry);
  received_count_[message] = 0;
}

const ForwardingEntry* NetworkInterface::find_entry(net::MessageId m) const {
  const auto it = entries_.find(m);
  return it == entries_.end() ? nullptr : &it->second;
}

void NetworkInterface::after_host_receive(net::MessageId, Host&) {}

void NetworkInterface::deliver(const net::Packet& packet) {
  // Receive processing occupies the coprocessor for t_rcv; only then does
  // the firmware see the header and react. Low priority: firmware
  // finishes forwarding the packet in hand before polling the receive
  // queue (the loop structure of Figs. 6 and 7).
  coproc_.enqueue_low(params_.t_rcv, [this, packet] {
    const ForwardingEntry* entry = find_entry(packet.message);
    if (entry == nullptr) {
      throw std::logic_error("NI " + std::to_string(self_) +
                             ": packet for unknown message " +
                             std::to_string(packet.message));
    }
    if (trace_) {
      trace_->record(sim_.now(), sim::TraceCategory::kNi, self_,
                     "rcv done msg=" + std::to_string(packet.message) +
                         " pkt=" + std::to_string(packet.packet_index));
    }
    on_packet_received(packet, *entry);
    note_data_processed(packet, *entry);
    if (on_packet_at_ni) on_packet_at_ni(self_, packet);
  });
}

void NetworkInterface::note_data_processed(const net::Packet& packet,
                                           const ForwardingEntry& entry) {
  auto& count = received_count_[packet.message];
  ++count;
  if (count > entry.packet_count) {
    throw std::logic_error("NI " + std::to_string(self_) +
                           ": duplicate packet delivery");
  }
  if (count == entry.packet_count && entry.is_destination &&
      on_message_at_ni) {
    on_message_at_ni(self_, packet.message);
  }
}

void NetworkInterface::release_copy(net::MessageId message,
                                    std::int32_t index) {
  const auto key = packet_key(message, index);
  auto it = outstanding_.find(key);
  assert(it != outstanding_.end() && "release_copy on packet not held");
  --it->second;
  release_if_done(key);
}

void NetworkInterface::hold_packet(net::MessageId message, std::int32_t index,
                                   std::int32_t copies) {
  const auto key = packet_key(message, index);
  assert(!outstanding_.contains(key) && "packet already held");
  outstanding_[key] = copies;
  buffer_.acquire();
  if (copies == 0) release_if_done(key);
}

void NetworkInterface::release_if_done(std::uint64_t key) {
  auto it = outstanding_.find(key);
  if (it != outstanding_.end() && it->second <= 0) {
    outstanding_.erase(it);
    buffer_.release();
  }
}

void NetworkInterface::inject_copy(net::MessageId message, std::int32_t index,
                                   std::int32_t packet_count,
                                   topo::HostId child,
                                   std::int32_t route_class) {
  coproc_.enqueue(params_.t_snd, [this, message, index, packet_count, child,
                                  route_class] {
    net::Packet p;
    p.message = message;
    p.packet_index = index;
    p.packet_count = packet_count;
    p.sender = self_;
    p.dest = child;
    p.route_class = route_class;
    network_.send(p);
    if (trace_) {
      trace_->record(sim_.now(), sim::TraceCategory::kNi, self_,
                     "sent msg=" + std::to_string(message) + " pkt=" +
                         std::to_string(index) + " -> host " +
                         std::to_string(child));
    }
  });
}

void NetworkInterface::send_copy(net::MessageId message, std::int32_t index,
                                 std::int32_t packet_count, topo::HostId child,
                                 std::int32_t route_class) {
  coproc_.enqueue(params_.t_snd, [this, message, index, packet_count, child,
                                  route_class] {
    net::Packet p;
    p.message = message;
    p.packet_index = index;
    p.packet_count = packet_count;
    p.sender = self_;
    p.dest = child;
    p.route_class = route_class;
    network_.send(p);
    const auto key = packet_key(message, index);
    auto it = outstanding_.find(key);
    assert(it != outstanding_.end() && "send_copy without hold_packet");
    --it->second;
    release_if_done(key);
    if (trace_) {
      trace_->record(sim_.now(), sim::TraceCategory::kNi, self_,
                     "sent msg=" + std::to_string(message) + " pkt=" +
                         std::to_string(index) + " -> host " +
                         std::to_string(child));
    }
  });
}

void NetworkInterface::send_copy_then(net::MessageId message,
                                      std::int32_t index,
                                      std::int32_t packet_count,
                                      topo::HostId child,
                                      std::int32_t route_class,
                                      std::function<void()> then) {
  coproc_.enqueue(params_.t_snd, [this, message, index, packet_count, child,
                                  route_class, then = std::move(then)] {
    net::Packet p;
    p.message = message;
    p.packet_index = index;
    p.packet_count = packet_count;
    p.sender = self_;
    p.dest = child;
    p.route_class = route_class;
    network_.send(p);
    const auto key = packet_key(message, index);
    auto it = outstanding_.find(key);
    assert(it != outstanding_.end() && "send_copy_then without hold_packet");
    --it->second;
    release_if_done(key);
    then();
    if (trace_) {
      trace_->record(sim_.now(), sim::TraceCategory::kNi, self_,
                     "sent msg=" + std::to_string(message) + " pkt=" +
                         std::to_string(index) + " -> host " +
                         std::to_string(child));
    }
  });
}

}  // namespace nimcast::netif
