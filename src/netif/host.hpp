#pragma once

#include "netif/serial_server.hpp"
#include "netif/system_params.hpp"
#include "topology/ids.hpp"

namespace nimcast::netif {

/// Host processor model: a serializing server for communication software.
///
/// Only the communication-software overheads run here (t_s per send
/// operation, t_r per received message); application compute is outside
/// the model. Keeping the host a separate server from the NI coprocessor
/// is the paper's point: with a smart NI the host drops out of the
/// forwarding path entirely.
class Host {
 public:
  Host(sim::Simulator& simctx, topo::HostId id, SystemParams params)
      : id_{id}, params_{params}, cpu_{simctx} {}

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] topo::HostId id() const { return id_; }
  [[nodiscard]] SerialServer& cpu() { return cpu_; }
  [[nodiscard]] const SerialServer& cpu() const { return cpu_; }

  /// Queues one software send start-up (t_s); `then` runs at completion.
  void software_send(SerialServer::Action then) {
    cpu_.enqueue(params_.t_s, std::move(then));
  }

  /// Queues one software message-receive (t_r); `then` runs at completion.
  void software_receive(SerialServer::Action then) {
    cpu_.enqueue(params_.t_r, std::move(then));
  }

 private:
  topo::HostId id_;
  SystemParams params_;
  SerialServer cpu_;
};

}  // namespace nimcast::netif
