#include "netif/reliable_ni.hpp"

#include <stdexcept>
#include <string>

namespace nimcast::netif {

ReliableFpfsNi::ReliableFpfsNi(sim::Simulator& simctx,
                               net::WormholeNetwork& network,
                               SystemParams params,
                               ReliabilityParams reliability,
                               topo::HostId self, sim::Trace* trace)
    : NetworkInterface{simctx, network, params, self, trace},
      reliability_{reliability} {}

void ReliableFpfsNi::start_from_host(net::MessageId message, Host& host) {
  host.software_send([this, message] {
    const ForwardingEntry* entry = find_entry(message);
    if (entry == nullptr) {
      throw std::logic_error("ReliableFpfsNi: no forwarding entry at source");
    }
    const auto copies = static_cast<std::int32_t>(entry->children.size());
    for (std::int32_t j = 0; j < entry->packet_count; ++j) {
      hold_packet(message, j, copies);
    }
    for (std::int32_t j = 0; j < entry->packet_count; ++j) {
      for (topo::HostId child : entry->children) {
        pending_.emplace(edge_key(message, j, child), PendingSend{});
        reliable_send(message, j, entry->packet_count, child);
      }
    }
  });
}

void ReliableFpfsNi::reliable_send(net::MessageId message, std::int32_t index,
                                   std::int32_t packet_count,
                                   topo::HostId child) {
  coproc_.enqueue(params_.t_snd, [this, message, index, packet_count, child] {
    // The ACK may have arrived while this (re)transmission sat in the
    // coprocessor queue; if so the pending entry is gone and sending a
    // copy now would only waste wire time (and double-release buffers).
    if (!pending_.contains(edge_key(message, index, child))) return;
    net::Packet p;
    p.message = message;
    p.packet_index = index;
    p.packet_count = packet_count;
    p.sender = self_;
    p.dest = child;
    network_.send(p, [this](const net::Packet& delivered) {
      deliver_to(delivered.dest, delivered);
    });
    // Arm (or re-arm) the retransmission timer as of injection time.
    auto& pending = pending_[edge_key(message, index, child)];
    pending.timer = sim_.schedule_in(
        reliability_.retx_timeout,
        [this, message, index, packet_count, child] {
          on_timeout(message, index, packet_count, child);
        });
    if (trace_) {
      trace_->record(sim_.now(), sim::TraceCategory::kNi, self_,
                     "rsent msg=" + std::to_string(message) + " pkt=" +
                         std::to_string(index) + " -> host " +
                         std::to_string(child));
    }
  });
}

void ReliableFpfsNi::on_timeout(net::MessageId message, std::int32_t index,
                                std::int32_t packet_count,
                                topo::HostId child) {
  auto it = pending_.find(edge_key(message, index, child));
  if (it == pending_.end()) return;  // ACKed in the meantime
  auto& pending = it->second;
  ++pending.attempts;
  ++retx_count_;
  if (pending.attempts > reliability_.max_retransmissions) {
    throw std::runtime_error("ReliableFpfsNi " + std::to_string(self_) +
                             ": gave up on packet " + std::to_string(index) +
                             " to host " + std::to_string(child));
  }
  if (trace_) {
    trace_->record(sim_.now(), sim::TraceCategory::kNi, self_,
                   "retx msg=" + std::to_string(message) + " pkt=" +
                       std::to_string(index) + " -> host " +
                       std::to_string(child));
  }
  reliable_send(message, index, packet_count, child);
}

void ReliableFpfsNi::send_ack(const net::Packet& data) {
  coproc_.enqueue_front(reliability_.t_ack, [this, data] {
    net::Packet ack;
    ack.message = data.message;
    ack.packet_index = data.packet_index;
    ack.packet_count = data.packet_count;
    ack.sender = self_;
    ack.dest = data.sender;
    ack.tag = kAckTag;
    network_.send(ack, [this](const net::Packet& delivered) {
      deliver_to(delivered.dest, delivered);
    });
  });
}

void ReliableFpfsNi::handle_ack(const net::Packet& ack) {
  const auto key = edge_key(ack.message, ack.packet_index, ack.sender);
  auto it = pending_.find(key);
  if (it == pending_.end()) return;  // duplicate ACK
  sim_.cancel(it->second.timer);
  pending_.erase(it);
  // The child has the packet; this copy's buffer obligation is met.
  release_copy(ack.message, ack.packet_index);
}

void ReliableFpfsNi::deliver(const net::Packet& packet) {
  // Control traffic jumps the queue: a data or ACK packet behind a long
  // forwarding backlog would otherwise delay acknowledgments past the
  // retransmission timeout and trigger spurious retransmit storms even
  // on a lossless fabric (real NIs prioritize tiny control responses for
  // exactly this reason).
  if (packet.tag == kAckTag) {
    coproc_.enqueue_front(reliability_.t_ack,
                          [this, packet] { handle_ack(packet); });
    return;
  }
  // Acknowledge at arrival — the sender may be retransmitting because a
  // previous ACK was lost, and duplicates must be re-ACKed too.
  send_ack(packet);
  coproc_.enqueue_low(params_.t_rcv, [this, packet] {
    const ForwardingEntry* entry = find_entry(packet.message);
    if (entry == nullptr) {
      throw std::logic_error("ReliableFpfsNi: packet for unknown message");
    }
    const auto id = std::pair{packet.message, packet.packet_index};
    if (!seen_.insert(id).second) {
      ++dup_count_;
      return;  // duplicate data: do not re-forward or re-count
    }
    on_packet_received(packet, *entry);
    note_data_processed(packet, *entry);
  });
}

void ReliableFpfsNi::on_packet_received(const net::Packet& packet,
                                        const ForwardingEntry& entry) {
  if (entry.children.empty()) return;
  hold_packet(packet.message, packet.packet_index,
              static_cast<std::int32_t>(entry.children.size()));
  for (topo::HostId child : entry.children) {
    pending_.emplace(edge_key(packet.message, packet.packet_index, child),
                     PendingSend{});
    reliable_send(packet.message, packet.packet_index, packet.packet_count,
                  child);
  }
}

}  // namespace nimcast::netif
