#include "netif/reliable_ni.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace nimcast::netif {

sim::Time derived_retx_timeout(const SystemParams& params,
                               const net::NetworkConfig& config,
                               std::size_t hops, std::int32_t fanout,
                               sim::Time t_ack) {
  const auto h = static_cast<sim::Time::rep>(std::max<std::size_t>(hops, 1));
  // One direction: coprocessor send pass, header over injection + h
  // switch links + ejection, payload drain, coprocessor receive pass.
  const sim::Time t_step = params.t_snd + config.t_hop * (h + 2) +
                           config.serialization_time() + params.t_rcv;
  // Full ACK round trip, plus the ACK possibly queueing behind the
  // coprocessor passes of `fanout` sibling copies at either end.
  const sim::Time rtt =
      t_step + t_step + params.t_snd + params.t_rcv +
      t_ack * static_cast<sim::Time::rep>(std::max(fanout, 1));
  return rtt * 2;
}

ReliableFpfsNi::ReliableFpfsNi(sim::Simulator& simctx,
                               net::WormholeNetwork& network,
                               SystemParams params,
                               ReliabilityParams reliability,
                               topo::HostId self, sim::Trace* trace)
    : NetworkInterface{simctx, network, params, self, trace},
      reliability_{reliability},
      base_timeout_{reliability.retx_timeout == sim::Time::zero()
                        ? derived_retx_timeout(params, network.config(),
                                               /*hops=*/4, /*fanout=*/8,
                                               reliability.t_ack)
                        : reliability.retx_timeout},
      backoff_rng_{reliability.jitter_seed ^
                   (std::uint64_t{0x9E3779B97F4A7C15} *
                    static_cast<std::uint64_t>(self + 1))} {}

sim::Time ReliableFpfsNi::backoff_timeout(std::int32_t attempts) {
  const auto exponent =
      std::min(std::max(attempts, 0), reliability_.backoff_cap);
  double scale = std::pow(reliability_.backoff_factor, exponent);
  if (reliability_.backoff_jitter > 0.0 && attempts > 0) {
    scale *= 1.0 + reliability_.backoff_jitter * backoff_rng_.next_double();
  }
  return sim::Time::us(base_timeout_.as_us() * scale);
}

void ReliableFpfsNi::start_from_host(net::MessageId message, Host& host) {
  host.software_send([this, message] {
    const ForwardingEntry* entry = find_entry(message);
    if (entry == nullptr) {
      throw std::logic_error("ReliableFpfsNi: no forwarding entry at source");
    }
    const auto copies = static_cast<std::int32_t>(entry->children.size());
    for (std::int32_t j = 0; j < entry->packet_count; ++j) {
      hold_packet(message, j, copies);
    }
    for (std::int32_t j = 0; j < entry->packet_count; ++j) {
      for (topo::HostId child : entry->children) {
        pending_.emplace(edge_key(message, j, child), PendingSend{});
        reliable_send(message, j, entry->packet_count, child);
      }
    }
  });
}

void ReliableFpfsNi::reliable_send(net::MessageId message, std::int32_t index,
                                   std::int32_t packet_count,
                                   topo::HostId child) {
  coproc_.enqueue(params_.t_snd, [this, message, index, packet_count, child] {
    // The ACK may have arrived while this (re)transmission sat in the
    // coprocessor queue; if so the pending entry is gone and sending a
    // copy now would only waste wire time (and double-release buffers).
    if (!pending_.contains(edge_key(message, index, child))) return;
    auto& pending = pending_[edge_key(message, index, child)];
    net::Packet p;
    p.message = message;
    p.packet_index = index;
    p.packet_count = packet_count;
    p.sender = self_;
    p.dest = child;
    // The attempt number is part of the packet's loss-hash identity:
    // each retransmitted copy gets an independent drop draw.
    p.attempt = pending.attempts;
    network_.send(p);
    // Arm (or re-arm) the retransmission timer as of injection time,
    // exponentially backed off by the attempts already burned.
    pending.timer = sim_.schedule_in(
        backoff_timeout(pending.attempts),
        [this, message, index, packet_count, child] {
          on_timeout(message, index, packet_count, child);
        });
    if (trace_) {
      trace_->record(sim_.now(), sim::TraceCategory::kNi, self_,
                     "rsent msg=" + std::to_string(message) + " pkt=" +
                         std::to_string(index) + " -> host " +
                         std::to_string(child));
    }
  });
}

void ReliableFpfsNi::on_timeout(net::MessageId message, std::int32_t index,
                                std::int32_t packet_count,
                                topo::HostId child) {
  auto it = pending_.find(edge_key(message, index, child));
  if (it == pending_.end()) return;  // ACKed in the meantime
  auto& pending = it->second;
  // A child cut off by a fault cannot ACK no matter how often we retry;
  // abandon the edge immediately instead of burning the budget.
  const bool unreachable = !network_.reachable(self_, child);
  if (!unreachable) {
    ++pending.attempts;
    ++retx_count_;
  }
  if (unreachable || pending.attempts > reliability_.max_retransmissions) {
    pending_.erase(it);
    ++gave_up_;
    // The edge's buffer obligation is met by abandonment: without this
    // the slot would leak and the NI would report held buffers forever.
    release_copy(message, index);
    if (trace_) {
      trace_->record(sim_.now(), sim::TraceCategory::kNi, self_,
                     std::string("giveup") +
                         (unreachable ? "-unreachable" : "-budget") +
                         " msg=" + std::to_string(message) + " pkt=" +
                         std::to_string(index) + " -> host " +
                         std::to_string(child));
    }
    if (on_delivery_failure) on_delivery_failure(message, index, child);
    return;
  }
  if (trace_) {
    trace_->record(sim_.now(), sim::TraceCategory::kNi, self_,
                   "retx msg=" + std::to_string(message) + " pkt=" +
                       std::to_string(index) + " -> host " +
                       std::to_string(child));
  }
  reliable_send(message, index, packet_count, child);
}

void ReliableFpfsNi::send_ack(const net::Packet& data) {
  coproc_.enqueue_front(reliability_.t_ack, [this, data] {
    net::Packet ack;
    ack.message = data.message;
    ack.packet_index = data.packet_index;
    ack.packet_count = data.packet_count;
    ack.sender = self_;
    ack.dest = data.sender;
    ack.tag = kAckTag;
    // Inherit the data copy's attempt number so the ACK for each
    // (re)transmission is its own independent loss draw.
    ack.attempt = data.attempt;
    network_.send(ack);
  });
}

void ReliableFpfsNi::handle_ack(const net::Packet& ack) {
  const auto key = edge_key(ack.message, ack.packet_index, ack.sender);
  auto it = pending_.find(key);
  if (it == pending_.end()) return;  // duplicate ACK
  sim_.cancel(it->second.timer);
  pending_.erase(it);
  // The child has the packet; this copy's buffer obligation is met.
  release_copy(ack.message, ack.packet_index);
}

void ReliableFpfsNi::deliver(const net::Packet& packet) {
  // Control traffic jumps the queue: a data or ACK packet behind a long
  // forwarding backlog would otherwise delay acknowledgments past the
  // retransmission timeout and trigger spurious retransmit storms even
  // on a lossless fabric (real NIs prioritize tiny control responses for
  // exactly this reason).
  if (packet.tag == kAckTag) {
    coproc_.enqueue_front(reliability_.t_ack,
                          [this, packet] { handle_ack(packet); });
    return;
  }
  // Acknowledge at arrival — the sender may be retransmitting because a
  // previous ACK was lost, and duplicates must be re-ACKed too.
  send_ack(packet);
  coproc_.enqueue_low(params_.t_rcv, [this, packet] {
    const ForwardingEntry* entry = find_entry(packet.message);
    if (entry == nullptr) {
      throw std::logic_error("ReliableFpfsNi: packet for unknown message");
    }
    const auto id = std::pair{packet.message, packet.packet_index};
    if (!seen_.insert(id).second) {
      ++dup_count_;
      return;  // duplicate data: do not re-forward or re-count
    }
    on_packet_received(packet, *entry);
    note_data_processed(packet, *entry);
  });
}

void ReliableFpfsNi::on_packet_received(const net::Packet& packet,
                                        const ForwardingEntry& entry) {
  if (entry.children.empty()) return;
  hold_packet(packet.message, packet.packet_index,
              static_cast<std::int32_t>(entry.children.size()));
  for (topo::HostId child : entry.children) {
    pending_.emplace(edge_key(packet.message, packet.packet_index, child),
                     PendingSend{});
    reliable_send(packet.message, packet.packet_index, packet.packet_count,
                  child);
  }
}

}  // namespace nimcast::netif
