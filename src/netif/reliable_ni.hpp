#pragma once

#include <set>
#include <unordered_map>

#include "netif/ni_base.hpp"

namespace nimcast::netif {

/// Parameters of the hop-by-hop reliability protocol.
struct ReliabilityParams {
  /// Retransmission timeout, armed when a data packet is injected and
  /// disarmed by the matching ACK. Should comfortably exceed one
  /// round-trip (data + ACK traversal + both coprocessor passes).
  sim::Time retx_timeout = sim::Time::us(60.0);
  /// Give-up bound; exceeding it throws (the simulation equivalent of a
  /// link-dead alarm). High enough that a loss rate < ~50% practically
  /// never trips it.
  std::int32_t max_retransmissions = 64;
  /// Coprocessor occupancy to emit or absorb one ACK (ACKs are tiny
  /// control packets; they still traverse the network as worms).
  sim::Time t_ack = sim::Time::us(1.0);
};

/// Reliable FPFS smart NI: the paper's FPFS discipline layered with a
/// hop-by-hop positive-acknowledgment protocol, the problem addressed by
/// the reliable-multicast systems the paper cites ([4] ATM, [12]
/// Myrinet).
///
/// Every tree edge runs its own ACK/retransmit loop:
///   - each forwarded data packet arms a retransmission timer; the
///     receiver ACKs every copy it sees (including duplicates — ACKs can
///     be lost too);
///   - duplicate data packets are detected by (message, index) and not
///     re-forwarded or re-counted;
///   - a packet's NI buffer slot is released when every child has
///     ACKed it, not when the copies were injected — reliability is what
///     actually forces multicast buffering at NIs.
///
/// With loss_rate == 0 the discipline behaves exactly like FpfsNi except
/// for the added ACK traffic.
class ReliableFpfsNi final : public NetworkInterface {
 public:
  ReliableFpfsNi(sim::Simulator& simctx, net::WormholeNetwork& network,
                 SystemParams params, ReliabilityParams reliability,
                 topo::HostId self, sim::Trace* trace = nullptr);

  void start_from_host(net::MessageId message, Host& host) override;
  void deliver(const net::Packet& packet) override;
  [[nodiscard]] const char* style() const override { return "reliable-fpfs"; }

  /// Wire tag marking acknowledgment packets.
  static constexpr std::int32_t kAckTag = -77;

  [[nodiscard]] std::int64_t retransmissions() const { return retx_count_; }
  [[nodiscard]] std::int64_t duplicates_seen() const { return dup_count_; }

 protected:
  void on_packet_received(const net::Packet& packet,
                          const ForwardingEntry& entry) override;

 private:
  struct PendingSend {
    sim::EventId timer;
    std::int32_t attempts = 0;
  };

  static std::uint64_t edge_key(net::MessageId m, std::int32_t index,
                                topo::HostId child) {
    return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(m)) << 48) |
           (static_cast<std::uint64_t>(static_cast<std::uint16_t>(index))
            << 32) |
           static_cast<std::uint32_t>(child);
  }

  /// Queues (or re-queues) one copy and arms the timer at injection.
  void reliable_send(net::MessageId message, std::int32_t index,
                     std::int32_t packet_count, topo::HostId child);
  void on_timeout(net::MessageId message, std::int32_t index,
                  std::int32_t packet_count, topo::HostId child);
  void handle_ack(const net::Packet& ack);
  void send_ack(const net::Packet& data);

  ReliabilityParams reliability_;
  std::unordered_map<std::uint64_t, PendingSend> pending_;
  std::set<std::pair<net::MessageId, std::int32_t>> seen_;
  std::int64_t retx_count_ = 0;
  std::int64_t dup_count_ = 0;
};

}  // namespace nimcast::netif
