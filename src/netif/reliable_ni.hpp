#pragma once

#include <functional>
#include <set>
#include <unordered_map>

#include "netif/ni_base.hpp"
#include "network/network_config.hpp"
#include "sim/rng.hpp"

namespace nimcast::netif {

/// Parameters of the hop-by-hop reliability protocol.
struct ReliabilityParams {
  /// Base retransmission timeout, armed when a data packet is injected
  /// and disarmed by the matching ACK. Should comfortably exceed one
  /// round-trip (data + ACK traversal + both coprocessor passes).
  /// `Time::zero()` (the default) derives it from the system parameters
  /// via `derived_retx_timeout` instead of hardcoding a magic constant.
  sim::Time retx_timeout = sim::Time::zero();
  /// Give-up bound: after this many retransmissions of one copy the edge
  /// is declared dead and the NI reports a per-destination delivery
  /// failure (`on_delivery_failure`) instead of retrying forever. High
  /// enough that a loss rate < ~50% practically never trips it.
  std::int32_t max_retransmissions = 64;
  /// Coprocessor occupancy to emit or absorb one ACK (ACKs are tiny
  /// control packets; they still traverse the network as worms).
  sim::Time t_ack = sim::Time::us(1.0);
  /// Exponential backoff: retransmission i waits
  /// retx_timeout * backoff_factor^min(i, backoff_cap), stretched by a
  /// deterministic jitter in [1, 1 + backoff_jitter) to de-synchronize
  /// retransmit storms across NIs. factor 1 disables backoff. The gentle
  /// default (1.5^4 ~ 5x cap) suits random wire loss, where waiting
  /// longer buys nothing; raise it when loss is congestion-driven.
  double backoff_factor = 1.5;
  std::int32_t backoff_cap = 4;
  double backoff_jitter = 0.25;
  /// Seed of the jitter stream; each NI folds its host id in, so the
  /// whole protocol stays a pure function of seeds.
  std::uint64_t jitter_seed = 0x5eedfa17;
};

/// Retransmission timeout implied by the system parameters: one
/// ACK-inclusive round trip over `hops` switch-switch links — request
/// t_step, response t_step, both coprocessor passes, plus worst-case ACK
/// queueing behind `fanout` sibling ACKs — doubled as a safety margin
/// against transient channel contention.
[[nodiscard]] sim::Time derived_retx_timeout(const SystemParams& params,
                                             const net::NetworkConfig& config,
                                             std::size_t hops,
                                             std::int32_t fanout,
                                             sim::Time t_ack);

/// Reliable FPFS smart NI: the paper's FPFS discipline layered with a
/// hop-by-hop positive-acknowledgment protocol, the problem addressed by
/// the reliable-multicast systems the paper cites ([4] ATM, [12]
/// Myrinet).
///
/// Every tree edge runs its own ACK/retransmit loop:
///   - each forwarded data packet arms a retransmission timer; the
///     receiver ACKs every copy it sees (including duplicates — ACKs can
///     be lost too);
///   - duplicate data packets are detected by (message, index) and not
///     re-forwarded or re-counted;
///   - a packet's NI buffer slot is released when every child has
///     ACKed it, not when the copies were injected — reliability is what
///     actually forces multicast buffering at NIs.
///
/// With loss_rate == 0 the discipline behaves exactly like FpfsNi except
/// for the added ACK traffic.
class ReliableFpfsNi final : public NetworkInterface {
 public:
  ReliableFpfsNi(sim::Simulator& simctx, net::WormholeNetwork& network,
                 SystemParams params, ReliabilityParams reliability,
                 topo::HostId self, sim::Trace* trace = nullptr);

  void start_from_host(net::MessageId message, Host& host) override;
  void deliver(const net::Packet& packet) override;
  [[nodiscard]] const char* style() const override { return "reliable-fpfs"; }

  /// Wire tag marking acknowledgment packets.
  static constexpr std::int32_t kAckTag = -77;

  [[nodiscard]] std::int64_t retransmissions() const { return retx_count_; }
  [[nodiscard]] std::int64_t duplicates_seen() const { return dup_count_; }

  /// Tree edges abandoned: retransmission budget exhausted or the child
  /// became unreachable. Each abandonment released its buffer obligation
  /// and fired on_delivery_failure; the NI itself never throws for them.
  [[nodiscard]] std::int64_t deliveries_failed() const { return gave_up_; }

  /// Fired when a copy is abandoned (message, packet index, child).
  std::function<void(net::MessageId, std::int32_t, topo::HostId)>
      on_delivery_failure;

  /// The resolved base timeout (explicit or derived).
  [[nodiscard]] sim::Time base_timeout() const { return base_timeout_; }

 protected:
  void on_packet_received(const net::Packet& packet,
                          const ForwardingEntry& entry) override;

 private:
  struct PendingSend {
    sim::EventId timer;
    std::int32_t attempts = 0;
  };

  static std::uint64_t edge_key(net::MessageId m, std::int32_t index,
                                topo::HostId child) {
    return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(m)) << 48) |
           (static_cast<std::uint64_t>(static_cast<std::uint16_t>(index))
            << 32) |
           static_cast<std::uint32_t>(child);
  }

  /// Queues (or re-queues) one copy and arms the timer at injection.
  void reliable_send(net::MessageId message, std::int32_t index,
                     std::int32_t packet_count, topo::HostId child);
  void on_timeout(net::MessageId message, std::int32_t index,
                  std::int32_t packet_count, topo::HostId child);
  void handle_ack(const net::Packet& ack);
  void send_ack(const net::Packet& data);
  /// Timeout for the (attempts+1)-th transmission, backoff and jitter
  /// applied.
  [[nodiscard]] sim::Time backoff_timeout(std::int32_t attempts);

  ReliabilityParams reliability_;
  sim::Time base_timeout_;
  sim::Rng backoff_rng_;
  std::unordered_map<std::uint64_t, PendingSend> pending_;
  std::set<std::pair<net::MessageId, std::int32_t>> seen_;
  std::int64_t retx_count_ = 0;
  std::int64_t dup_count_ = 0;
  std::int64_t gave_up_ = 0;
};

}  // namespace nimcast::netif
