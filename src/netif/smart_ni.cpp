#include "netif/smart_ni.hpp"

namespace nimcast::netif {

void FpfsNi::start_from_host(net::MessageId message, Host& host) {
  // One software start-up moves the whole message into NI memory; the
  // coprocessor owns everything from there (Figure 4(b)).
  host.software_send([this, message] {
    const ForwardingEntry* entry = find_entry(message);
    if (entry == nullptr) {
      throw std::logic_error("FpfsNi: no forwarding entry at source");
    }
    const auto copies = static_cast<std::int32_t>(entry->children.size());
    for (std::int32_t j = 0; j < entry->packet_count; ++j) {
      hold_packet(message, j, copies);
    }
    // Packet-major: pkt j to every child before pkt j+1 to any.
    for (std::int32_t j = 0; j < entry->packet_count; ++j) {
      for (topo::HostId child : entry->children) {
        send_copy(message, j, entry->packet_count, child,
                  entry->route_class);
      }
    }
  });
}

void FpfsNi::start_streaming(const std::vector<net::MessageId>& messages,
                             Host& host) {
  if (messages.empty()) {
    throw std::logic_error("FpfsNi: start_streaming with no messages");
  }
  host.software_send([this, messages] {
    std::vector<const ForwardingEntry*> entries;
    entries.reserve(messages.size());
    for (net::MessageId m : messages) {
      const ForwardingEntry* entry = find_entry(m);
      if (entry == nullptr) {
        throw std::logic_error("FpfsNi: no forwarding entry at source");
      }
      entries.push_back(entry);
      const auto copies = static_cast<std::int32_t>(entry->children.size());
      for (std::int32_t j = 0; j < entry->packet_count; ++j) {
        hold_packet(m, j, copies);
      }
    }
    // Round-robin over the classes, packet-major within each: stream
    // packet g = copy g/R of class g mod R (exhausted classes are
    // skipped, so an uneven split stays in global stream order).
    std::vector<std::int32_t> cursor(messages.size(), 0);
    bool more = true;
    while (more) {
      more = false;
      for (std::size_t r = 0; r < messages.size(); ++r) {
        const ForwardingEntry& entry = *entries[r];
        if (cursor[r] >= entry.packet_count) continue;
        const std::int32_t j = cursor[r]++;
        more = true;
        for (topo::HostId child : entry.children) {
          send_copy(messages[r], j, entry.packet_count, child,
                    entry.route_class);
        }
      }
    }
  });
}

void FpfsNi::start_streaming_adaptive(
    const std::vector<net::MessageId>& messages, std::int32_t stream_packets,
    Host& host, std::function<std::size_t(std::int32_t)> select) {
  if (messages.empty()) {
    throw std::logic_error("FpfsNi: start_streaming_adaptive with no messages");
  }
  if (stream_packets < 1) {
    throw std::logic_error("FpfsNi: start_streaming_adaptive needs packets");
  }
  host.software_send([this, messages, stream_packets,
                      select = std::move(select)]() mutable {
    auto stream = std::make_shared<AdaptiveStream>();
    stream->messages = messages;
    stream->stream_packets = stream_packets;
    stream->select = std::move(select);
    stream->entries.reserve(messages.size());
    for (net::MessageId m : messages) {
      const ForwardingEntry* entry = find_entry(m);
      if (entry == nullptr) {
        throw std::logic_error("FpfsNi: no forwarding entry at source");
      }
      if (entry->packet_count != stream_packets) {
        throw std::logic_error(
            "FpfsNi: adaptive classes must be installed with the full "
            "stream as packet_count");
      }
      stream->entries.push_back(entry);
    }
    issue_adaptive(stream, 0);
  });
}

void FpfsNi::issue_adaptive(const std::shared_ptr<AdaptiveStream>& stream,
                            std::int32_t g) {
  // Childless classes advance synchronously; the loop re-enters from the
  // last copy's completion otherwise, so selection for packet g+1 sees
  // the fabric as of the instant packet g finished injecting.
  while (g < stream->stream_packets) {
    const std::size_t r = stream->select(g);
    const ForwardingEntry& entry = *stream->entries.at(r);
    const auto copies = static_cast<std::int32_t>(entry.children.size());
    hold_packet(stream->messages[r], g, copies);
    if (copies == 0) {
      ++g;
      continue;
    }
    for (std::size_t i = 0; i + 1 < entry.children.size(); ++i) {
      send_copy(stream->messages[r], g, entry.packet_count, entry.children[i],
                entry.route_class);
    }
    send_copy_then(stream->messages[r], g, entry.packet_count,
                   entry.children.back(), entry.route_class,
                   [this, stream, g] { issue_adaptive(stream, g + 1); });
    return;
  }
}

void FpfsNi::on_packet_received(const net::Packet& packet,
                                const ForwardingEntry& entry) {
  if (entry.children.empty()) return;  // leaf: DMA to host only
  hold_packet(packet.message, packet.packet_index,
              static_cast<std::int32_t>(entry.children.size()));
  for (topo::HostId child : entry.children) {
    send_copy(packet.message, packet.packet_index, packet.packet_count,
              child, entry.route_class);
  }
}

void FcfsNi::start_from_host(net::MessageId message, Host& host) {
  host.software_send([this, message] {
    const ForwardingEntry* entry = find_entry(message);
    if (entry == nullptr) {
      throw std::logic_error("FcfsNi: no forwarding entry at source");
    }
    const auto copies = static_cast<std::int32_t>(entry->children.size());
    for (std::int32_t j = 0; j < entry->packet_count; ++j) {
      hold_packet(message, j, copies);
    }
    // Child-major: the whole message to child i before child i+1 sees
    // anything.
    for (topo::HostId child : entry->children) {
      for (std::int32_t j = 0; j < entry->packet_count; ++j) {
        send_copy(message, j, entry->packet_count, child);
      }
    }
  });
}

void FcfsNi::on_packet_received(const net::Packet& packet,
                                const ForwardingEntry& entry) {
  if (entry.children.empty()) return;
  // Every packet will eventually be copied to every child; the copies to
  // children 2..c only get queued when the message is complete, which is
  // exactly why FCFS holds buffers so long.
  hold_packet(packet.message, packet.packet_index,
              static_cast<std::int32_t>(entry.children.size()));
  send_copy(packet.message, packet.packet_index, packet.packet_count,
            entry.children.front());

  auto& seen = arrivals_[packet.message];
  ++seen;
  if (seen == entry.packet_count) {
    for (std::size_t i = 1; i < entry.children.size(); ++i) {
      for (std::int32_t j = 0; j < entry.packet_count; ++j) {
        send_copy(packet.message, j, entry.packet_count, entry.children[i]);
      }
    }
  }
}

}  // namespace nimcast::netif
