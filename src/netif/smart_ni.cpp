#include "netif/smart_ni.hpp"

namespace nimcast::netif {

void FpfsNi::start_from_host(net::MessageId message, Host& host) {
  // One software start-up moves the whole message into NI memory; the
  // coprocessor owns everything from there (Figure 4(b)).
  host.software_send([this, message] {
    const ForwardingEntry* entry = find_entry(message);
    if (entry == nullptr) {
      throw std::logic_error("FpfsNi: no forwarding entry at source");
    }
    const auto copies = static_cast<std::int32_t>(entry->children.size());
    for (std::int32_t j = 0; j < entry->packet_count; ++j) {
      hold_packet(message, j, copies);
    }
    // Packet-major: pkt j to every child before pkt j+1 to any.
    for (std::int32_t j = 0; j < entry->packet_count; ++j) {
      for (topo::HostId child : entry->children) {
        send_copy(message, j, entry->packet_count, child);
      }
    }
  });
}

void FpfsNi::on_packet_received(const net::Packet& packet,
                                const ForwardingEntry& entry) {
  if (entry.children.empty()) return;  // leaf: DMA to host only
  hold_packet(packet.message, packet.packet_index,
              static_cast<std::int32_t>(entry.children.size()));
  for (topo::HostId child : entry.children) {
    send_copy(packet.message, packet.packet_index, packet.packet_count,
              child);
  }
}

void FcfsNi::start_from_host(net::MessageId message, Host& host) {
  host.software_send([this, message] {
    const ForwardingEntry* entry = find_entry(message);
    if (entry == nullptr) {
      throw std::logic_error("FcfsNi: no forwarding entry at source");
    }
    const auto copies = static_cast<std::int32_t>(entry->children.size());
    for (std::int32_t j = 0; j < entry->packet_count; ++j) {
      hold_packet(message, j, copies);
    }
    // Child-major: the whole message to child i before child i+1 sees
    // anything.
    for (topo::HostId child : entry->children) {
      for (std::int32_t j = 0; j < entry->packet_count; ++j) {
        send_copy(message, j, entry->packet_count, child);
      }
    }
  });
}

void FcfsNi::on_packet_received(const net::Packet& packet,
                                const ForwardingEntry& entry) {
  if (entry.children.empty()) return;
  // Every packet will eventually be copied to every child; the copies to
  // children 2..c only get queued when the message is complete, which is
  // exactly why FCFS holds buffers so long.
  hold_packet(packet.message, packet.packet_index,
              static_cast<std::int32_t>(entry.children.size()));
  send_copy(packet.message, packet.packet_index, packet.packet_count,
            entry.children.front());

  auto& seen = arrivals_[packet.message];
  ++seen;
  if (seen == entry.packet_count) {
    for (std::size_t i = 1; i < entry.children.size(); ++i) {
      for (std::int32_t j = 0; j < entry.packet_count; ++j) {
        send_copy(packet.message, j, entry.packet_count, entry.children[i]);
      }
    }
  }
}

}  // namespace nimcast::netif
