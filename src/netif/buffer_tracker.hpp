#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace nimcast::netif {

/// Tracks how many packets are resident in one NI's memory over time.
///
/// This is the measurement behind the Section 3.3.2 comparison: under FCFS
/// a packet stays buffered until the whole message has gone to every
/// child; under FPFS it leaves as soon as its own copies have gone out.
/// Peak and time-averaged occupancy are both reported.
class BufferTracker {
 public:
  explicit BufferTracker(sim::Simulator& simctx) : sim_{simctx} {}

  void acquire() { occ_.change(sim_.now().as_us(), +1.0); }
  void release() { occ_.change(sim_.now().as_us(), -1.0); }

  [[nodiscard]] double current() const { return occ_.level(); }
  [[nodiscard]] double peak() const { return occ_.peak(); }
  [[nodiscard]] double time_average() const {
    return occ_.time_average(sim_.now().as_us());
  }
  /// Integral of occupancy over time (packet·us) — proportional to the
  /// buffer *holding time* the paper's T_f / T_p analysis bounds.
  [[nodiscard]] double integral() const {
    return occ_.integral(sim_.now().as_us());
  }

 private:
  sim::Simulator& sim_;
  sim::Occupancy occ_;
};

}  // namespace nimcast::netif
