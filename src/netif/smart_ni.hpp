#pragma once

#include <memory>
#include <unordered_map>

#include "netif/ni_base.hpp"

namespace nimcast::netif {

/// First-Packet-First-Served smart NI (paper Section 3.2, Figure 7).
///
/// Source: packet-major order — packet 1 to every child, then packet 2 to
/// every child, ... Intermediate: each received packet is forwarded to all
/// children immediately; the firmware keeps no per-message counter. A
/// packet's buffer slot frees once its last copy has been injected, giving
/// the T_p = c * t_nd holding time of Section 3.3.2.
class FpfsNi final : public NetworkInterface {
 public:
  using NetworkInterface::NetworkInterface;

  void start_from_host(net::MessageId message, Host& host) override;

  /// Streaming source entry point: one software start-up, then the
  /// coprocessor interleaves the installed `messages` round-robin in
  /// packet-major order — stream packet g is copy g/|messages| of
  /// message g mod |messages|. This is what lets consecutive stream
  /// packets leave down *different* rotation trees; starting the
  /// messages via start_from_host would serialize them class by class
  /// (each enqueues its whole message at once). With one message this
  /// is exactly start_from_host.
  void start_streaming(const std::vector<net::MessageId>& messages,
                       Host& host);

  /// Adaptive streaming source: stream packet g goes down class
  /// `select(g)`, decided when the coprocessor is about to issue it (the
  /// last copy of packet g-1 hangs packet g's selection off its own
  /// completion via send_copy_then). Each class must be installed with
  /// `packet_count == stream_packets` — the global stream index is the
  /// packet index, so a class carries the sparse subset of indices the
  /// selector routes to it. With one coprocessor engine the issue
  /// timing is byte-identical to start_streaming whenever `select`
  /// reproduces g mod |messages| (with >1 engines the deferred enqueue
  /// would serialize what start_streaming overlaps).
  void start_streaming_adaptive(
      const std::vector<net::MessageId>& messages, std::int32_t stream_packets,
      Host& host, std::function<std::size_t(std::int32_t)> select);

  [[nodiscard]] const char* style() const override { return "smart-fpfs"; }

 protected:
  void on_packet_received(const net::Packet& packet,
                          const ForwardingEntry& entry) override;

 private:
  struct AdaptiveStream {
    std::vector<net::MessageId> messages;
    std::vector<const ForwardingEntry*> entries;
    std::int32_t stream_packets = 0;
    std::function<std::size_t(std::int32_t)> select;
  };
  void issue_adaptive(const std::shared_ptr<AdaptiveStream>& stream,
                      std::int32_t g);
};

/// First-Child-First-Served smart NI (paper Section 3.1, Figure 6).
///
/// Source: child-major order — the whole message to child 1, then to
/// child 2, ... Intermediate: each received packet is forwarded to the
/// *first* child immediately; once all packets have arrived, the whole
/// message is sent to each remaining child. Packets therefore stay
/// buffered until the message has gone to every child — the
/// T_f = ((c-1)m + 1) * t_nd holding time the paper charges against FCFS.
class FcfsNi final : public NetworkInterface {
 public:
  using NetworkInterface::NetworkInterface;

  void start_from_host(net::MessageId message, Host& host) override;
  [[nodiscard]] const char* style() const override { return "smart-fcfs"; }

 protected:
  void on_packet_received(const net::Packet& packet,
                          const ForwardingEntry& entry) override;

 private:
  std::unordered_map<net::MessageId, std::int32_t> arrivals_;
};

}  // namespace nimcast::netif
