#include "sim/event_queue.hpp"

#include <algorithm>

namespace nimcast::sim {

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slab_[slot];
  s.cb.reset();
  s.heap_index = kNoHeapIndex;
  ++s.generation;  // invalidates every outstanding EventId for this slot
  free_slots_.push_back(slot);
}

void EventQueue::heap_push(Time time, std::uint64_t hi, std::uint64_t lo,
                           std::uint32_t slot) {
  heap_.push_back(HeapEntry{time, hi, lo, slot});
  slab_[slot].heap_index =
      static_cast<std::uint32_t>(sift_up(heap_.size() - 1));
}

std::size_t EventQueue::sift_up(std::size_t index) {
  const HeapEntry entry = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / 4;
    if (!earlier(entry, heap_[parent])) break;
    heap_[index] = heap_[parent];
    slab_[heap_[index].slot].heap_index = static_cast<std::uint32_t>(index);
    index = parent;
  }
  heap_[index] = entry;
  slab_[entry.slot].heap_index = static_cast<std::uint32_t>(index);
  return index;
}

void EventQueue::sift_down(std::size_t index) {
  const std::size_t n = heap_.size();
  const HeapEntry entry = heap_[index];
  for (;;) {
    const std::size_t first = 4 * index + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], entry)) break;
    heap_[index] = heap_[best];
    slab_[heap_[index].slot].heap_index = static_cast<std::uint32_t>(index);
    index = best;
  }
  heap_[index] = entry;
  slab_[entry.slot].heap_index = static_cast<std::uint32_t>(index);
}

void EventQueue::heap_remove(std::size_t index) {
  const std::size_t last = heap_.size() - 1;
  if (index != last) {
    heap_[index] = heap_[last];
    slab_[heap_[index].slot].heap_index = static_cast<std::uint32_t>(index);
    heap_.pop_back();
    // The displaced entry may belong above or below its new position.
    if (sift_up(index) == index) sift_down(index);
  } else {
    heap_.pop_back();
  }
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id.seq & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id.seq >> 32);
  if (slot >= slab_.size()) return false;
  Slot& s = slab_[slot];
  if (s.heap_index == kNoHeapIndex || s.generation != generation) {
    return false;
  }
  heap_remove(s.heap_index);
  release_slot(slot);
  return true;
}

void EventQueue::reserve(std::size_t n) {
  slab_.reserve(n);
  heap_.reserve(n);
  free_slots_.reserve(n);
}

EventQueue::Fired EventQueue::pop() {
  assert(!heap_.empty() && "pop() on empty queue");
  const HeapEntry top = heap_.front();
  Slot& s = slab_[top.slot];
  Fired fired{top.time, top.hi, top.lo, std::move(s.cb)};
  release_slot(top.slot);
  const std::size_t last = heap_.size() - 1;
  if (last > 0) {
    heap_[0] = heap_[last];
    slab_[heap_[0].slot].heap_index = 0;
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  return fired;
}

}  // namespace nimcast::sim
